# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/queueing_tests[1]_include.cmake")
include("/root/repo/build/tests/solver_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/traffic_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/ssd_tests[1]_include.cmake")
include("/root/repo/build/tests/devices_tests[1]_include.cmake")
include("/root/repo/build/tests/apps_tests[1]_include.cmake")
include("/root/repo/build/tests/io_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
