# Empty dependencies file for devices_tests.
# This may be replaced when dependencies are built.
