file(REMOVE_RECURSE
  "CMakeFiles/devices_tests.dir/devices/devices_test.cpp.o"
  "CMakeFiles/devices_tests.dir/devices/devices_test.cpp.o.d"
  "devices_tests"
  "devices_tests.pdb"
  "devices_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/devices_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
