file(REMOVE_RECURSE
  "CMakeFiles/ssd_tests.dir/ssd/ssd_test.cpp.o"
  "CMakeFiles/ssd_tests.dir/ssd/ssd_test.cpp.o.d"
  "ssd_tests"
  "ssd_tests.pdb"
  "ssd_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
