file(REMOVE_RECURSE
  "CMakeFiles/queueing_tests.dir/queueing/mg1_test.cpp.o"
  "CMakeFiles/queueing_tests.dir/queueing/mg1_test.cpp.o.d"
  "CMakeFiles/queueing_tests.dir/queueing/mm1n_test.cpp.o"
  "CMakeFiles/queueing_tests.dir/queueing/mm1n_test.cpp.o.d"
  "queueing_tests"
  "queueing_tests.pdb"
  "queueing_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queueing_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
