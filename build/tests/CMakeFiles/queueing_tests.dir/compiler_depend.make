# Empty compiler generated dependencies file for queueing_tests.
# This may be replaced when dependencies are built.
