file(REMOVE_RECURSE
  "CMakeFiles/solver_tests.dir/solver/annealing_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/annealing_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver/discrete_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/discrete_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver/least_squares_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/least_squares_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver/linalg_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/linalg_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver/optimizers_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/optimizers_test.cpp.o.d"
  "CMakeFiles/solver_tests.dir/solver/special_test.cpp.o"
  "CMakeFiles/solver_tests.dir/solver/special_test.cpp.o.d"
  "solver_tests"
  "solver_tests.pdb"
  "solver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
