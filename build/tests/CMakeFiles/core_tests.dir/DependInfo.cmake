
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/execution_graph_test.cpp" "tests/CMakeFiles/core_tests.dir/core/execution_graph_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/execution_graph_test.cpp.o.d"
  "/root/repo/tests/core/extensions_test.cpp" "tests/CMakeFiles/core_tests.dir/core/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/extensions_test.cpp.o.d"
  "/root/repo/tests/core/latency_model_test.cpp" "tests/CMakeFiles/core_tests.dir/core/latency_model_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/latency_model_test.cpp.o.d"
  "/root/repo/tests/core/model_properties_test.cpp" "tests/CMakeFiles/core_tests.dir/core/model_properties_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/model_properties_test.cpp.o.d"
  "/root/repo/tests/core/model_test.cpp" "tests/CMakeFiles/core_tests.dir/core/model_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/model_test.cpp.o.d"
  "/root/repo/tests/core/optimizer_test.cpp" "tests/CMakeFiles/core_tests.dir/core/optimizer_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/optimizer_test.cpp.o.d"
  "/root/repo/tests/core/reporting_test.cpp" "tests/CMakeFiles/core_tests.dir/core/reporting_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/reporting_test.cpp.o.d"
  "/root/repo/tests/core/roofline_test.cpp" "tests/CMakeFiles/core_tests.dir/core/roofline_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/roofline_test.cpp.o.d"
  "/root/repo/tests/core/satisfice_test.cpp" "tests/CMakeFiles/core_tests.dir/core/satisfice_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/satisfice_test.cpp.o.d"
  "/root/repo/tests/core/sensitivity_test.cpp" "tests/CMakeFiles/core_tests.dir/core/sensitivity_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/sensitivity_test.cpp.o.d"
  "/root/repo/tests/core/tail_latency_test.cpp" "tests/CMakeFiles/core_tests.dir/core/tail_latency_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/tail_latency_test.cpp.o.d"
  "/root/repo/tests/core/throughput_model_test.cpp" "tests/CMakeFiles/core_tests.dir/core/throughput_model_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/throughput_model_test.cpp.o.d"
  "/root/repo/tests/core/traffic_profile_test.cpp" "tests/CMakeFiles/core_tests.dir/core/traffic_profile_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/traffic_profile_test.cpp.o.d"
  "/root/repo/tests/core/units_test.cpp" "tests/CMakeFiles/core_tests.dir/core/units_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/units_test.cpp.o.d"
  "/root/repo/tests/core/vertex_analysis_test.cpp" "tests/CMakeFiles/core_tests.dir/core/vertex_analysis_test.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/vertex_analysis_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/lognic_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/lognic_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/lognic_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lognic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/lognic_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lognic_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lognic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/lognic_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lognic_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
