# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_example_roundtrip "sh" "-c" "/root/repo/build/tools/lognic example > cli_scenario.json              && /root/repo/build/tools/lognic estimate cli_scenario.json              && /root/repo/build/tools/lognic simulate cli_scenario.json 0.01              && /root/repo/build/tools/lognic sweep cli_scenario.json 5 15 30              && /root/repo/build/tools/lognic sensitivity cli_scenario.json              && /root/repo/build/tools/lognic dot cli_scenario.json > /dev/null")
set_tests_properties(cli_example_roundtrip PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_garbage "sh" "-c" "! /root/repo/build/tools/lognic estimate /nonexistent.json              && ! /root/repo/build/tools/lognic bogus-command x")
set_tests_properties(cli_rejects_garbage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
