file(REMOVE_RECURSE
  "CMakeFiles/lognic_cli.dir/lognic_cli.cpp.o"
  "CMakeFiles/lognic_cli.dir/lognic_cli.cpp.o.d"
  "lognic"
  "lognic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
