# Empty compiler generated dependencies file for lognic_cli.
# This may be replaced when dependencies are built.
