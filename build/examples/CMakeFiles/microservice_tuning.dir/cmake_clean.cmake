file(REMOVE_RECURSE
  "CMakeFiles/microservice_tuning.dir/microservice_tuning.cpp.o"
  "CMakeFiles/microservice_tuning.dir/microservice_tuning.cpp.o.d"
  "microservice_tuning"
  "microservice_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservice_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
