# Empty compiler generated dependencies file for microservice_tuning.
# This may be replaced when dependencies are built.
