# Empty compiler generated dependencies file for bottleneck_hunting.
# This may be replaced when dependencies are built.
