file(REMOVE_RECURSE
  "CMakeFiles/bottleneck_hunting.dir/bottleneck_hunting.cpp.o"
  "CMakeFiles/bottleneck_hunting.dir/bottleneck_hunting.cpp.o.d"
  "bottleneck_hunting"
  "bottleneck_hunting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bottleneck_hunting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
