# Empty dependencies file for scenario_io.
# This may be replaced when dependencies are built.
