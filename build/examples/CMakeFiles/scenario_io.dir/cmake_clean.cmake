file(REMOVE_RECURSE
  "CMakeFiles/scenario_io.dir/scenario_io.cpp.o"
  "CMakeFiles/scenario_io.dir/scenario_io.cpp.o.d"
  "scenario_io"
  "scenario_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
