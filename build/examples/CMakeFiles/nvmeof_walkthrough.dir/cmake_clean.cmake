file(REMOVE_RECURSE
  "CMakeFiles/nvmeof_walkthrough.dir/nvmeof_walkthrough.cpp.o"
  "CMakeFiles/nvmeof_walkthrough.dir/nvmeof_walkthrough.cpp.o.d"
  "nvmeof_walkthrough"
  "nvmeof_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvmeof_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
