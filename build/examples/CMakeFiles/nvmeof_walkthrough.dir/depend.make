# Empty dependencies file for nvmeof_walkthrough.
# This may be replaced when dependencies are built.
