file(REMOVE_RECURSE
  "CMakeFiles/nf_placement.dir/nf_placement.cpp.o"
  "CMakeFiles/nf_placement.dir/nf_placement.cpp.o.d"
  "nf_placement"
  "nf_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nf_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
