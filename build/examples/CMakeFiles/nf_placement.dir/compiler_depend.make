# Empty compiler generated dependencies file for nf_placement.
# This may be replaced when dependencies are built.
