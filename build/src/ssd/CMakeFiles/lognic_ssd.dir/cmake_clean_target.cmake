file(REMOVE_RECURSE
  "liblognic_ssd.a"
)
