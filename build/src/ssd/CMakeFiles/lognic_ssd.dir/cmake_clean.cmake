file(REMOVE_RECURSE
  "CMakeFiles/lognic_ssd.dir/calibration.cpp.o"
  "CMakeFiles/lognic_ssd.dir/calibration.cpp.o.d"
  "CMakeFiles/lognic_ssd.dir/ssd_model.cpp.o"
  "CMakeFiles/lognic_ssd.dir/ssd_model.cpp.o.d"
  "liblognic_ssd.a"
  "liblognic_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
