
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/calibration.cpp" "src/ssd/CMakeFiles/lognic_ssd.dir/calibration.cpp.o" "gcc" "src/ssd/CMakeFiles/lognic_ssd.dir/calibration.cpp.o.d"
  "/root/repo/src/ssd/ssd_model.cpp" "src/ssd/CMakeFiles/lognic_ssd.dir/ssd_model.cpp.o" "gcc" "src/ssd/CMakeFiles/lognic_ssd.dir/ssd_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lognic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/lognic_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lognic_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/lognic_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
