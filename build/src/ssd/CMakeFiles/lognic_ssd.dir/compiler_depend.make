# Empty compiler generated dependencies file for lognic_ssd.
# This may be replaced when dependencies are built.
