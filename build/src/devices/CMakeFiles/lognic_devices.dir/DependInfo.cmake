
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/bluefield2.cpp" "src/devices/CMakeFiles/lognic_devices.dir/bluefield2.cpp.o" "gcc" "src/devices/CMakeFiles/lognic_devices.dir/bluefield2.cpp.o.d"
  "/root/repo/src/devices/liquidio.cpp" "src/devices/CMakeFiles/lognic_devices.dir/liquidio.cpp.o" "gcc" "src/devices/CMakeFiles/lognic_devices.dir/liquidio.cpp.o.d"
  "/root/repo/src/devices/panic_proto.cpp" "src/devices/CMakeFiles/lognic_devices.dir/panic_proto.cpp.o" "gcc" "src/devices/CMakeFiles/lognic_devices.dir/panic_proto.cpp.o.d"
  "/root/repo/src/devices/stingray.cpp" "src/devices/CMakeFiles/lognic_devices.dir/stingray.cpp.o" "gcc" "src/devices/CMakeFiles/lognic_devices.dir/stingray.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lognic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lognic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/lognic_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/lognic_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lognic_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
