file(REMOVE_RECURSE
  "CMakeFiles/lognic_devices.dir/bluefield2.cpp.o"
  "CMakeFiles/lognic_devices.dir/bluefield2.cpp.o.d"
  "CMakeFiles/lognic_devices.dir/liquidio.cpp.o"
  "CMakeFiles/lognic_devices.dir/liquidio.cpp.o.d"
  "CMakeFiles/lognic_devices.dir/panic_proto.cpp.o"
  "CMakeFiles/lognic_devices.dir/panic_proto.cpp.o.d"
  "CMakeFiles/lognic_devices.dir/stingray.cpp.o"
  "CMakeFiles/lognic_devices.dir/stingray.cpp.o.d"
  "liblognic_devices.a"
  "liblognic_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
