# Empty dependencies file for lognic_devices.
# This may be replaced when dependencies are built.
