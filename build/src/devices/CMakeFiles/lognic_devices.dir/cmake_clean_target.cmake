file(REMOVE_RECURSE
  "liblognic_devices.a"
)
