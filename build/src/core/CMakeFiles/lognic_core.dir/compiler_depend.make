# Empty compiler generated dependencies file for lognic_core.
# This may be replaced when dependencies are built.
