
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/execution_graph.cpp" "src/core/CMakeFiles/lognic_core.dir/execution_graph.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/execution_graph.cpp.o.d"
  "/root/repo/src/core/extensions.cpp" "src/core/CMakeFiles/lognic_core.dir/extensions.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/extensions.cpp.o.d"
  "/root/repo/src/core/hardware_model.cpp" "src/core/CMakeFiles/lognic_core.dir/hardware_model.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/hardware_model.cpp.o.d"
  "/root/repo/src/core/latency_model.cpp" "src/core/CMakeFiles/lognic_core.dir/latency_model.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/latency_model.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/lognic_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/model.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/lognic_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/reporting.cpp" "src/core/CMakeFiles/lognic_core.dir/reporting.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/reporting.cpp.o.d"
  "/root/repo/src/core/roofline.cpp" "src/core/CMakeFiles/lognic_core.dir/roofline.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/roofline.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/lognic_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/sensitivity.cpp.o.d"
  "/root/repo/src/core/throughput_model.cpp" "src/core/CMakeFiles/lognic_core.dir/throughput_model.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/throughput_model.cpp.o.d"
  "/root/repo/src/core/traffic_profile.cpp" "src/core/CMakeFiles/lognic_core.dir/traffic_profile.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/traffic_profile.cpp.o.d"
  "/root/repo/src/core/vertex_analysis.cpp" "src/core/CMakeFiles/lognic_core.dir/vertex_analysis.cpp.o" "gcc" "src/core/CMakeFiles/lognic_core.dir/vertex_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queueing/CMakeFiles/lognic_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lognic_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
