file(REMOVE_RECURSE
  "liblognic_core.a"
)
