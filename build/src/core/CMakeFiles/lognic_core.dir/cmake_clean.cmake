file(REMOVE_RECURSE
  "CMakeFiles/lognic_core.dir/execution_graph.cpp.o"
  "CMakeFiles/lognic_core.dir/execution_graph.cpp.o.d"
  "CMakeFiles/lognic_core.dir/extensions.cpp.o"
  "CMakeFiles/lognic_core.dir/extensions.cpp.o.d"
  "CMakeFiles/lognic_core.dir/hardware_model.cpp.o"
  "CMakeFiles/lognic_core.dir/hardware_model.cpp.o.d"
  "CMakeFiles/lognic_core.dir/latency_model.cpp.o"
  "CMakeFiles/lognic_core.dir/latency_model.cpp.o.d"
  "CMakeFiles/lognic_core.dir/model.cpp.o"
  "CMakeFiles/lognic_core.dir/model.cpp.o.d"
  "CMakeFiles/lognic_core.dir/optimizer.cpp.o"
  "CMakeFiles/lognic_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/lognic_core.dir/reporting.cpp.o"
  "CMakeFiles/lognic_core.dir/reporting.cpp.o.d"
  "CMakeFiles/lognic_core.dir/roofline.cpp.o"
  "CMakeFiles/lognic_core.dir/roofline.cpp.o.d"
  "CMakeFiles/lognic_core.dir/sensitivity.cpp.o"
  "CMakeFiles/lognic_core.dir/sensitivity.cpp.o.d"
  "CMakeFiles/lognic_core.dir/throughput_model.cpp.o"
  "CMakeFiles/lognic_core.dir/throughput_model.cpp.o.d"
  "CMakeFiles/lognic_core.dir/traffic_profile.cpp.o"
  "CMakeFiles/lognic_core.dir/traffic_profile.cpp.o.d"
  "CMakeFiles/lognic_core.dir/vertex_analysis.cpp.o"
  "CMakeFiles/lognic_core.dir/vertex_analysis.cpp.o.d"
  "liblognic_core.a"
  "liblognic_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
