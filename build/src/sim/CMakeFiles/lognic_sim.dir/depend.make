# Empty dependencies file for lognic_sim.
# This may be replaced when dependencies are built.
