file(REMOVE_RECURSE
  "liblognic_sim.a"
)
