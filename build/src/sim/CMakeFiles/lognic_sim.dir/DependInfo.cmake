
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/lognic_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/lognic_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/nic_simulator.cpp" "src/sim/CMakeFiles/lognic_sim.dir/nic_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/lognic_sim.dir/nic_simulator.cpp.o.d"
  "/root/repo/src/sim/panic.cpp" "src/sim/CMakeFiles/lognic_sim.dir/panic.cpp.o" "gcc" "src/sim/CMakeFiles/lognic_sim.dir/panic.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/lognic_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/lognic_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lognic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/lognic_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/lognic_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lognic_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
