file(REMOVE_RECURSE
  "CMakeFiles/lognic_sim.dir/event_queue.cpp.o"
  "CMakeFiles/lognic_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/lognic_sim.dir/nic_simulator.cpp.o"
  "CMakeFiles/lognic_sim.dir/nic_simulator.cpp.o.d"
  "CMakeFiles/lognic_sim.dir/panic.cpp.o"
  "CMakeFiles/lognic_sim.dir/panic.cpp.o.d"
  "CMakeFiles/lognic_sim.dir/stats.cpp.o"
  "CMakeFiles/lognic_sim.dir/stats.cpp.o.d"
  "liblognic_sim.a"
  "liblognic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
