file(REMOVE_RECURSE
  "liblognic_queueing.a"
)
