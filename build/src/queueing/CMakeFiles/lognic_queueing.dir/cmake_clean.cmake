file(REMOVE_RECURSE
  "CMakeFiles/lognic_queueing.dir/mg1.cpp.o"
  "CMakeFiles/lognic_queueing.dir/mg1.cpp.o.d"
  "CMakeFiles/lognic_queueing.dir/mm1n.cpp.o"
  "CMakeFiles/lognic_queueing.dir/mm1n.cpp.o.d"
  "liblognic_queueing.a"
  "liblognic_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
