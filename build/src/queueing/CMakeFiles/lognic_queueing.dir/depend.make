# Empty dependencies file for lognic_queueing.
# This may be replaced when dependencies are built.
