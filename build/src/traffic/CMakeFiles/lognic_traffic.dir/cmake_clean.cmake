file(REMOVE_RECURSE
  "CMakeFiles/lognic_traffic.dir/io_workload.cpp.o"
  "CMakeFiles/lognic_traffic.dir/io_workload.cpp.o.d"
  "CMakeFiles/lognic_traffic.dir/profiles.cpp.o"
  "CMakeFiles/lognic_traffic.dir/profiles.cpp.o.d"
  "CMakeFiles/lognic_traffic.dir/trace.cpp.o"
  "CMakeFiles/lognic_traffic.dir/trace.cpp.o.d"
  "liblognic_traffic.a"
  "liblognic_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
