# Empty compiler generated dependencies file for lognic_traffic.
# This may be replaced when dependencies are built.
