file(REMOVE_RECURSE
  "liblognic_traffic.a"
)
