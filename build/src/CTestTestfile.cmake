# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("queueing")
subdirs("solver")
subdirs("core")
subdirs("traffic")
subdirs("sim")
subdirs("ssd")
subdirs("devices")
subdirs("apps")
subdirs("io")
