# Empty compiler generated dependencies file for lognic_io.
# This may be replaced when dependencies are built.
