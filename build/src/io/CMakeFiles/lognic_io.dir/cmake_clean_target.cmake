file(REMOVE_RECURSE
  "liblognic_io.a"
)
