file(REMOVE_RECURSE
  "CMakeFiles/lognic_io.dir/json.cpp.o"
  "CMakeFiles/lognic_io.dir/json.cpp.o.d"
  "CMakeFiles/lognic_io.dir/serialize.cpp.o"
  "CMakeFiles/lognic_io.dir/serialize.cpp.o.d"
  "liblognic_io.a"
  "liblognic_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
