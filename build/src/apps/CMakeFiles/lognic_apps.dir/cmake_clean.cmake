file(REMOVE_RECURSE
  "CMakeFiles/lognic_apps.dir/inline_accel.cpp.o"
  "CMakeFiles/lognic_apps.dir/inline_accel.cpp.o.d"
  "CMakeFiles/lognic_apps.dir/microservices.cpp.o"
  "CMakeFiles/lognic_apps.dir/microservices.cpp.o.d"
  "CMakeFiles/lognic_apps.dir/nf_chain.cpp.o"
  "CMakeFiles/lognic_apps.dir/nf_chain.cpp.o.d"
  "CMakeFiles/lognic_apps.dir/nvmeof.cpp.o"
  "CMakeFiles/lognic_apps.dir/nvmeof.cpp.o.d"
  "CMakeFiles/lognic_apps.dir/panic_models.cpp.o"
  "CMakeFiles/lognic_apps.dir/panic_models.cpp.o.d"
  "liblognic_apps.a"
  "liblognic_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
