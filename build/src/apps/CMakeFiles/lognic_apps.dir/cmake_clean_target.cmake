file(REMOVE_RECURSE
  "liblognic_apps.a"
)
