# Empty compiler generated dependencies file for lognic_apps.
# This may be replaced when dependencies are built.
