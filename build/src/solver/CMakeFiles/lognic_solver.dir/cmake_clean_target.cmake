file(REMOVE_RECURSE
  "liblognic_solver.a"
)
