
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/annealing.cpp" "src/solver/CMakeFiles/lognic_solver.dir/annealing.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/annealing.cpp.o.d"
  "/root/repo/src/solver/bfgs.cpp" "src/solver/CMakeFiles/lognic_solver.dir/bfgs.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/bfgs.cpp.o.d"
  "/root/repo/src/solver/constrained.cpp" "src/solver/CMakeFiles/lognic_solver.dir/constrained.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/constrained.cpp.o.d"
  "/root/repo/src/solver/discrete.cpp" "src/solver/CMakeFiles/lognic_solver.dir/discrete.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/discrete.cpp.o.d"
  "/root/repo/src/solver/least_squares.cpp" "src/solver/CMakeFiles/lognic_solver.dir/least_squares.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/least_squares.cpp.o.d"
  "/root/repo/src/solver/linalg.cpp" "src/solver/CMakeFiles/lognic_solver.dir/linalg.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/linalg.cpp.o.d"
  "/root/repo/src/solver/nelder_mead.cpp" "src/solver/CMakeFiles/lognic_solver.dir/nelder_mead.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/solver/objective.cpp" "src/solver/CMakeFiles/lognic_solver.dir/objective.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/objective.cpp.o.d"
  "/root/repo/src/solver/special.cpp" "src/solver/CMakeFiles/lognic_solver.dir/special.cpp.o" "gcc" "src/solver/CMakeFiles/lognic_solver.dir/special.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
