file(REMOVE_RECURSE
  "CMakeFiles/lognic_solver.dir/annealing.cpp.o"
  "CMakeFiles/lognic_solver.dir/annealing.cpp.o.d"
  "CMakeFiles/lognic_solver.dir/bfgs.cpp.o"
  "CMakeFiles/lognic_solver.dir/bfgs.cpp.o.d"
  "CMakeFiles/lognic_solver.dir/constrained.cpp.o"
  "CMakeFiles/lognic_solver.dir/constrained.cpp.o.d"
  "CMakeFiles/lognic_solver.dir/discrete.cpp.o"
  "CMakeFiles/lognic_solver.dir/discrete.cpp.o.d"
  "CMakeFiles/lognic_solver.dir/least_squares.cpp.o"
  "CMakeFiles/lognic_solver.dir/least_squares.cpp.o.d"
  "CMakeFiles/lognic_solver.dir/linalg.cpp.o"
  "CMakeFiles/lognic_solver.dir/linalg.cpp.o.d"
  "CMakeFiles/lognic_solver.dir/nelder_mead.cpp.o"
  "CMakeFiles/lognic_solver.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/lognic_solver.dir/objective.cpp.o"
  "CMakeFiles/lognic_solver.dir/objective.cpp.o.d"
  "CMakeFiles/lognic_solver.dir/special.cpp.o"
  "CMakeFiles/lognic_solver.dir/special.cpp.o.d"
  "liblognic_solver.a"
  "liblognic_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lognic_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
