# Empty compiler generated dependencies file for lognic_solver.
# This may be replaced when dependencies are built.
