file(REMOVE_RECURSE
  "CMakeFiles/ablation_model_components.dir/ablation_model_components.cpp.o"
  "CMakeFiles/ablation_model_components.dir/ablation_model_components.cpp.o.d"
  "ablation_model_components"
  "ablation_model_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
