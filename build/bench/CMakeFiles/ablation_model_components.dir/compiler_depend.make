# Empty compiler generated dependencies file for ablation_model_components.
# This may be replaced when dependencies are built.
