file(REMOVE_RECURSE
  "CMakeFiles/fig07_nvmeof_mixed.dir/fig07_nvmeof_mixed.cpp.o"
  "CMakeFiles/fig07_nvmeof_mixed.dir/fig07_nvmeof_mixed.cpp.o.d"
  "fig07_nvmeof_mixed"
  "fig07_nvmeof_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_nvmeof_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
