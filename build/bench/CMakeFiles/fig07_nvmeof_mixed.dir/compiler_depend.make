# Empty compiler generated dependencies file for fig07_nvmeof_mixed.
# This may be replaced when dependencies are built.
