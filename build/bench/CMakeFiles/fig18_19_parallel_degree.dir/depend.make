# Empty dependencies file for fig18_19_parallel_degree.
# This may be replaced when dependencies are built.
