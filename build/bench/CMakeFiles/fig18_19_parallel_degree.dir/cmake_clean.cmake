file(REMOVE_RECURSE
  "CMakeFiles/fig18_19_parallel_degree.dir/fig18_19_parallel_degree.cpp.o"
  "CMakeFiles/fig18_19_parallel_degree.dir/fig18_19_parallel_degree.cpp.o.d"
  "fig18_19_parallel_degree"
  "fig18_19_parallel_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_19_parallel_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
