file(REMOVE_RECURSE
  "CMakeFiles/fig05_granularity.dir/fig05_granularity.cpp.o"
  "CMakeFiles/fig05_granularity.dir/fig05_granularity.cpp.o.d"
  "fig05_granularity"
  "fig05_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
