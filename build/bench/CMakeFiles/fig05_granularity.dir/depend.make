# Empty dependencies file for fig05_granularity.
# This may be replaced when dependencies are built.
