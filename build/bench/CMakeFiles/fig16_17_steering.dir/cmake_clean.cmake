file(REMOVE_RECURSE
  "CMakeFiles/fig16_17_steering.dir/fig16_17_steering.cpp.o"
  "CMakeFiles/fig16_17_steering.dir/fig16_17_steering.cpp.o.d"
  "fig16_17_steering"
  "fig16_17_steering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_17_steering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
