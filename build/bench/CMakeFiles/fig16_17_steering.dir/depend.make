# Empty dependencies file for fig16_17_steering.
# This may be replaced when dependencies are built.
