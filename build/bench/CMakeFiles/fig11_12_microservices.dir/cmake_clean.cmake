file(REMOVE_RECURSE
  "CMakeFiles/fig11_12_microservices.dir/fig11_12_microservices.cpp.o"
  "CMakeFiles/fig11_12_microservices.dir/fig11_12_microservices.cpp.o.d"
  "fig11_12_microservices"
  "fig11_12_microservices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_12_microservices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
