# Empty dependencies file for fig11_12_microservices.
# This may be replaced when dependencies are built.
