# Empty compiler generated dependencies file for fig09_parallelism.
# This may be replaced when dependencies are built.
