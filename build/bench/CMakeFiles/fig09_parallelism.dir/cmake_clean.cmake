file(REMOVE_RECURSE
  "CMakeFiles/fig09_parallelism.dir/fig09_parallelism.cpp.o"
  "CMakeFiles/fig09_parallelism.dir/fig09_parallelism.cpp.o.d"
  "fig09_parallelism"
  "fig09_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
