file(REMOVE_RECURSE
  "CMakeFiles/model_microbench.dir/model_microbench.cpp.o"
  "CMakeFiles/model_microbench.dir/model_microbench.cpp.o.d"
  "model_microbench"
  "model_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
