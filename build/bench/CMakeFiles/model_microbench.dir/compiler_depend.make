# Empty compiler generated dependencies file for model_microbench.
# This may be replaced when dependencies are built.
