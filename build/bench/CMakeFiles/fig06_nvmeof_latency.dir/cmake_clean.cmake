file(REMOVE_RECURSE
  "CMakeFiles/fig06_nvmeof_latency.dir/fig06_nvmeof_latency.cpp.o"
  "CMakeFiles/fig06_nvmeof_latency.dir/fig06_nvmeof_latency.cpp.o.d"
  "fig06_nvmeof_latency"
  "fig06_nvmeof_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_nvmeof_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
