# Empty dependencies file for fig06_nvmeof_latency.
# This may be replaced when dependencies are built.
