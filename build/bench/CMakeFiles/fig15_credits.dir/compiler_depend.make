# Empty compiler generated dependencies file for fig15_credits.
# This may be replaced when dependencies are built.
