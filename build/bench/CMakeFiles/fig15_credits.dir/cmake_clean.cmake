file(REMOVE_RECURSE
  "CMakeFiles/fig15_credits.dir/fig15_credits.cpp.o"
  "CMakeFiles/fig15_credits.dir/fig15_credits.cpp.o.d"
  "fig15_credits"
  "fig15_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
