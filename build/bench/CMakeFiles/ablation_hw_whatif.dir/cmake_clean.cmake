file(REMOVE_RECURSE
  "CMakeFiles/ablation_hw_whatif.dir/ablation_hw_whatif.cpp.o"
  "CMakeFiles/ablation_hw_whatif.dir/ablation_hw_whatif.cpp.o.d"
  "ablation_hw_whatif"
  "ablation_hw_whatif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hw_whatif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
