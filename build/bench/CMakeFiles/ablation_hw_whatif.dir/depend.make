# Empty dependencies file for ablation_hw_whatif.
# This may be replaced when dependencies are built.
