# Empty dependencies file for fig13_14_placement.
# This may be replaced when dependencies are built.
