file(REMOVE_RECURSE
  "CMakeFiles/fig13_14_placement.dir/fig13_14_placement.cpp.o"
  "CMakeFiles/fig13_14_placement.dir/fig13_14_placement.cpp.o.d"
  "fig13_14_placement"
  "fig13_14_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_14_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
