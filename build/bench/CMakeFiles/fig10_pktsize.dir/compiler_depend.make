# Empty compiler generated dependencies file for fig10_pktsize.
# This may be replaced when dependencies are built.
