
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_pktsize.cpp" "bench/CMakeFiles/fig10_pktsize.dir/fig10_pktsize.cpp.o" "gcc" "bench/CMakeFiles/fig10_pktsize.dir/fig10_pktsize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/lognic_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/lognic_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/lognic_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lognic_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/lognic_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/lognic_io.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lognic_core.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/lognic_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/solver/CMakeFiles/lognic_solver.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
