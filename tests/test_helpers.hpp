/**
 * @file
 * Shared builders for model tests: a small configurable SmartNIC and
 * canonical execution graphs.
 */
#ifndef LOGNIC_TESTS_TEST_HELPERS_HPP_
#define LOGNIC_TESTS_TEST_HELPERS_HPP_

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"

namespace lognic::test {

/// A NIC with one CPU IP ("cores", 8 engines, 1 us + size/4GBps per request)
/// and one accelerator IP ("accel", 2 engines, 0.5 us/op, 50 Gbps feed).
inline core::HardwareModel
small_nic(Bandwidth line_rate = Bandwidth::from_gbps(25.0))
{
    core::HardwareModel hw("test-nic", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0), line_rate);
    core::IpSpec cores;
    cores.name = "cores";
    cores.kind = core::IpKind::kCpuCores;
    cores.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.0),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    cores.max_engines = 8;
    cores.default_queue_capacity = 64;
    hw.add_ip(cores);

    core::IpSpec accel;
    accel.name = "accel";
    accel.kind = core::IpKind::kAccelerator;
    accel.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(0.5),
                           Bandwidth::from_gbps(400.0)},
        {{"feed", Bandwidth::from_gbps(50.0)}});
    accel.max_engines = 2;
    accel.default_queue_capacity = 32;
    hw.add_ip(accel);
    return hw;
}

/// ingress -> cores -> egress.
inline core::ExecutionGraph
single_stage_graph(const core::HardwareModel& hw,
                   core::VertexParams params = {})
{
    core::ExecutionGraph g("single");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"), params);
    g.add_edge(in, v);
    g.add_edge(v, out);
    return g;
}

/// ingress -> cores -> accel -> egress, accel fed via memory (beta = 1).
inline core::ExecutionGraph
two_stage_graph(const core::HardwareModel& hw)
{
    core::ExecutionGraph g("two-stage");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v1 = g.add_ip_vertex("cores", *hw.find_ip("cores"));
    const auto v2 = g.add_ip_vertex("accel", *hw.find_ip("accel"));
    g.add_edge(in, v1);
    g.add_edge(v1, v2, core::EdgeParams{1.0, 0.0, 1.0, {}});
    g.add_edge(v2, out);
    return g;
}

inline core::TrafficProfile
mtu_traffic(double gbps)
{
    return core::TrafficProfile::fixed(Bytes{1500.0},
                                       Bandwidth::from_gbps(gbps));
}

} // namespace lognic::test

#endif // LOGNIC_TESTS_TEST_HELPERS_HPP_
