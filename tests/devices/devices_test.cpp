#include <gtest/gtest.h>

#include "lognic/devices/bluefield2.hpp"
#include "lognic/devices/liquidio.hpp"
#include "lognic/devices/panic_proto.hpp"
#include "lognic/devices/stingray.hpp"

namespace lognic::devices {
namespace {

TEST(LiquidIo, CatalogIsComplete)
{
    const core::HardwareModel hw = liquidio_cn2360();
    EXPECT_EQ(hw.line_rate().gbps(), 25.0);
    for (LiquidIoKernel k : liquidio_kernels()) {
        const auto ip = hw.find_ip(to_string(k));
        ASSERT_TRUE(ip.has_value()) << to_string(k);
        EXPECT_EQ(hw.ip(*ip).kind, core::IpKind::kAccelerator);
        EXPECT_GT(liquidio_accel_rate(k).per_sec(), 0.0);
    }
}

TEST(LiquidIo, OffChipEnginesUseIoInterconnect)
{
    EXPECT_TRUE(is_off_chip(LiquidIoKernel::kHfa));
    EXPECT_TRUE(is_off_chip(LiquidIoKernel::kZip));
    EXPECT_FALSE(is_off_chip(LiquidIoKernel::kMd5));
    const core::HardwareModel hw = liquidio_cn2360();
    const auto& hfa = hw.ip(*hw.find_ip("hfa"));
    ASSERT_EQ(hfa.roofline.ceilings().size(), 1u);
    EXPECT_EQ(hfa.roofline.ceilings()[0].name, "io-interconnect");
    EXPECT_DOUBLE_EQ(hfa.roofline.ceilings()[0].bw.gbps(), 40.0);
    const auto& md5 = hw.ip(*hw.find_ip("md5"));
    EXPECT_EQ(md5.roofline.ceilings()[0].name, "cmi");
    EXPECT_DOUBLE_EQ(md5.roofline.ceilings()[0].bw.gbps(), 50.0);
}

TEST(LiquidIo, AcceleratorRatesMatchFigure5Calibration)
{
    // Peak op rates were derived from the paper's 16 KB-granularity
    // fractions (13.6 / 17.3 / 21.2 / 25.8 % of max for CRC/3DES/MD5/HFA).
    auto pct_at_16k = [](LiquidIoKernel k) {
        const double peak = liquidio_accel_rate(k).per_sec();
        const double feed_gbps = is_off_chip(k) ? 40.0 : 50.0;
        const double ceiling = feed_gbps * 1e9 / 8.0 / 16384.0;
        return 100.0 * ceiling / peak;
    };
    EXPECT_NEAR(pct_at_16k(LiquidIoKernel::kCrc), 13.6, 0.3);
    EXPECT_NEAR(pct_at_16k(LiquidIoKernel::k3Des), 17.3, 0.4);
    EXPECT_NEAR(pct_at_16k(LiquidIoKernel::kMd5), 21.2, 0.4);
    EXPECT_NEAR(pct_at_16k(LiquidIoKernel::kHfa), 25.8, 0.5);
}

TEST(LiquidIo, CoreIpBoundsChecked)
{
    core::HardwareModel hw = liquidio_cn2360();
    EXPECT_THROW(add_core_ip(hw, LiquidIoKernel::kMd5, 0),
                 std::invalid_argument);
    EXPECT_THROW(add_core_ip(hw, LiquidIoKernel::kMd5, 17),
                 std::invalid_argument);
    const auto id = add_core_ip(hw, LiquidIoKernel::kMd5, 12);
    EXPECT_EQ(hw.ip(id).max_engines, 12u);
    EXPECT_EQ(hw.ip(id).name, "cores-md5");
}

TEST(LiquidIo, CoreCostGrowsWithPacketSize)
{
    const Seconds small =
        liquidio_core_cost(LiquidIoKernel::kMd5, Bytes{64.0});
    const Seconds large =
        liquidio_core_cost(LiquidIoKernel::kMd5, Bytes{1500.0});
    EXPECT_GT(large.seconds(), small.seconds());
    // HFA orchestration is the most expensive (the 11-core kernel).
    EXPECT_GT(
        liquidio_core_cost(LiquidIoKernel::kHfa, Bytes{1500.0}).seconds(),
        large.seconds());
}

TEST(BlueField2, CatalogAndChain)
{
    const core::HardwareModel hw = bluefield2();
    EXPECT_EQ(hw.line_rate().gbps(), 100.0);
    for (const char* name : {"regex", "hash", "conntrack", "crypto"})
        EXPECT_TRUE(hw.find_ip(name).has_value()) << name;
    const auto chain = nf_chain_order();
    ASSERT_EQ(chain.size(), 5u);
    EXPECT_EQ(chain[2], NetworkFunction::kDpi);
}

TEST(BlueField2, DpiHasNoAccelerator)
{
    EXPECT_FALSE(nf_accelerable(NetworkFunction::kDpi));
    EXPECT_THROW(nf_accelerator(NetworkFunction::kDpi),
                 std::invalid_argument);
    EXPECT_TRUE(nf_accelerable(NetworkFunction::kEncryption));
    EXPECT_STREQ(nf_accelerator(NetworkFunction::kEncryption), "crypto");
}

TEST(BlueField2, ArmWinsSmallPacketsOffloadWinsLarge)
{
    // The case-study premise: at 64 B the offload prep exceeds the ARM
    // cost; at MTU the ARM streaming cost exceeds the prep.
    for (NetworkFunction nf :
         {NetworkFunction::kFirewall, NetworkFunction::kLoadBalancer,
          NetworkFunction::kNat}) {
        EXPECT_LT(bf2_arm_cost(nf, Bytes{64.0}).seconds(),
                  bf2_offload_prep(nf).seconds())
            << to_string(nf);
        EXPECT_GT(bf2_arm_cost(nf, Bytes{1500.0}).seconds(),
                  bf2_offload_prep(nf).seconds())
            << to_string(nf);
    }
}

TEST(BlueField2, ArmIpBuilder)
{
    core::HardwareModel hw = bluefield2();
    const auto id = add_arm_ip(hw, "arm", Seconds::from_micros(1.0), 2.0);
    EXPECT_EQ(hw.ip(id).max_engines, 8u);
    // Two streamed passes halve the effective byte rate.
    EXPECT_NEAR(hw.ip(id).roofline.engine().byte_rate.gbps(),
                bf2_arm_stream_rate().gbps() / 2.0, 1e-9);
    EXPECT_THROW(add_arm_ip(hw, "arm2", Seconds{0.0}, 1.0, 9),
                 std::invalid_argument);
}

TEST(Stingray, CatalogHasTwoCoreStages)
{
    const core::HardwareModel hw = stingray_ps1100r();
    EXPECT_TRUE(hw.find_ip("cores-submit").has_value());
    EXPECT_TRUE(hw.find_ip("cores-complete").has_value());
    EXPECT_GT(stingray_ssd_link().gbps(), 0.0);
    EXPECT_GT(stingray_submit_cost().seconds(),
              stingray_complete_cost().seconds() * 0.5);
}

TEST(PanicProto, DefaultsAndUnits)
{
    const sim::PanicConfig cfg = panic_defaults();
    EXPECT_DOUBLE_EQ(cfg.fabric_bw.gbps(), 100.0);
    EXPECT_GT(cfg.hop_latency.seconds(), 0.0);
    const sim::PanicUnit u = panic_unit(
        "u", Seconds::from_nanos(50.0), Bandwidth::from_gbps(10.0), 2, 4);
    EXPECT_EQ(u.parallelism, 2u);
    EXPECT_EQ(u.credits, 4u);
    EXPECT_NEAR(u.service.service_time(Bytes{1250.0}).micros(),
                0.05 + 1.0, 1e-9);
}

TEST(PanicProto, ParallelChainRatioIs4To7To3)
{
    const core::HardwareModel hw = panic_parallel_chain_hw();
    const Bytes mtu{1500.0};
    const double a1 =
        hw.ip(*hw.find_ip("a1"))
            .roofline.attainable(mtu, hw.ip(*hw.find_ip("a1")).max_engines)
            .gbps();
    const double a2 =
        hw.ip(*hw.find_ip("a2"))
            .roofline.attainable(mtu, hw.ip(*hw.find_ip("a2")).max_engines)
            .gbps();
    const double a3 =
        hw.ip(*hw.find_ip("a3"))
            .roofline.attainable(mtu, hw.ip(*hw.find_ip("a3")).max_engines)
            .gbps();
    EXPECT_NEAR(a2 / a1, 7.0 / 4.0, 1e-6);
    EXPECT_NEAR(a3 / a1, 3.0 / 4.0, 1e-6);
    EXPECT_NEAR(a1, 40.0, 0.5);
}

TEST(PanicProto, HybridChainUnitRates)
{
    const core::HardwareModel hw = panic_hybrid_chain_hw();
    const auto& ip4 = hw.ip(*hw.find_ip("ip4"));
    EXPECT_EQ(ip4.max_engines, 8u);
    // Per-engine ~11.5 Gbps at MTU (the Figures 18/19 knob).
    EXPECT_NEAR(ip4.roofline.attainable(Bytes{1500.0}, 1).gbps(), 11.5,
                0.05);
}

} // namespace
} // namespace lognic::devices
