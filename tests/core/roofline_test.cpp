#include "lognic/core/roofline.hpp"

#include <gtest/gtest.h>

namespace lognic::core {
namespace {

TEST(ServiceModel, ServiceTimeCombinesFixedAndStreaming)
{
    const ServiceModel m{Seconds::from_micros(1.0),
                         Bandwidth::from_gigabytes_per_sec(1.0)};
    // 1 us fixed + 1024 B / 1 GB/s = 1.024 us streaming.
    EXPECT_NEAR(m.service_time(Bytes{1024.0}).micros(), 2.024, 1e-9);
}

TEST(ServiceModel, OpRateIsInverseServiceTime)
{
    const ServiceModel m{Seconds::from_micros(2.0),
                         Bandwidth::from_gbps(1e6)};
    EXPECT_NEAR(m.op_rate(Bytes{64.0}).mops(), 0.5, 1e-6);
}

TEST(ServiceModel, FromOpRate)
{
    const ServiceModel m = ServiceModel::from_op_rate(OpsRate::from_mops(2.0));
    EXPECT_NEAR(m.service_time(Bytes{64.0}).micros(), 0.5, 1e-6);
    EXPECT_NEAR(m.service_time(Bytes{16384.0}).micros(), 0.5, 1e-3);
}

TEST(ServiceModel, ThroughputScalesWithSizeWhenOpDominated)
{
    const ServiceModel m = ServiceModel::from_op_rate(OpsRate::from_mops(1.0));
    const Bandwidth small = m.throughput(Bytes{64.0});
    const Bandwidth large = m.throughput(Bytes{1500.0});
    EXPECT_NEAR(large.bits_per_sec() / small.bits_per_sec(), 1500.0 / 64.0,
                0.01);
}

TEST(ExtendedRoofline, ComputeBoundWithoutCeilings)
{
    const ExtendedRoofline r(
        ServiceModel{Seconds::from_micros(1.0), Bandwidth::from_gbps(1e6)},
        {});
    // One engine, 1 us/op, 1500 B packets -> 12 Gbps.
    EXPECT_NEAR(r.attainable(Bytes{1500.0}, 1).gbps(), 12.0, 0.01);
    // Four engines quadruple it.
    EXPECT_NEAR(r.attainable(Bytes{1500.0}, 4).gbps(), 48.0, 0.04);
    EXPECT_EQ(r.binding_factor(Bytes{1500.0}, 4), "compute");
}

TEST(ExtendedRoofline, CeilingBindsAtLargeRequests)
{
    const ExtendedRoofline r(
        ServiceModel::from_op_rate(OpsRate::from_mops(2.0)),
        {{"cmi", Bandwidth::from_gbps(50.0)}});
    // Small requests: compute-bound (2 Mops * 512 B = 8.2 Gbps < 50).
    EXPECT_EQ(r.binding_factor(Bytes{512.0}, 1), "compute");
    // Large requests: 2 Mops * 16 KiB = 262 Gbps -> the 50 Gbps feed binds.
    EXPECT_EQ(r.binding_factor(Bytes{16384.0}, 1), "cmi");
    EXPECT_NEAR(r.attainable(Bytes{16384.0}, 1).gbps(), 50.0, 1e-9);
}

TEST(ExtendedRoofline, PartitionScalesBothComputeAndCeilings)
{
    const ExtendedRoofline r(
        ServiceModel::from_op_rate(OpsRate::from_mops(2.0)),
        {{"cmi", Bandwidth::from_gbps(50.0)}});
    const Bandwidth full = r.attainable(Bytes{16384.0}, 1, 1.0);
    const Bandwidth half = r.attainable(Bytes{16384.0}, 1, 0.5);
    EXPECT_NEAR(half.bits_per_sec(), 0.5 * full.bits_per_sec(), 1e-3);
}

TEST(ExtendedRoofline, TightestCeilingWins)
{
    const ExtendedRoofline r(
        ServiceModel{Seconds{0.0}, Bandwidth::from_gbps(1e6)},
        {{"wide", Bandwidth::from_gbps(100.0)},
         {"narrow", Bandwidth::from_gbps(10.0)}});
    EXPECT_NEAR(r.attainable(Bytes{1500.0}, 8).gbps(), 10.0, 1e-9);
    EXPECT_EQ(r.binding_factor(Bytes{1500.0}, 8), "narrow");
}

TEST(ExtendedRoofline, AttainableOpsConsistentWithBandwidth)
{
    const ExtendedRoofline r(
        ServiceModel::from_op_rate(OpsRate::from_mops(1.5)), {});
    const Bytes size{1024.0};
    const OpsRate ops = r.attainable_ops(size, 2);
    const Bandwidth bw = r.attainable(size, 2);
    EXPECT_NEAR(to_bandwidth(ops, size).bits_per_sec(), bw.bits_per_sec(),
                1.0);
}

} // namespace
} // namespace lognic::core
