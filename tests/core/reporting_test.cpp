#include "lognic/core/reporting.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/extensions.hpp"

namespace lognic::core {
namespace {

TEST(Reporting, ThroughputShowsBottleneckAndTerms)
{
    const Model model(test::small_nic());
    const auto g = test::two_stage_graph(model.hardware());
    const auto traffic = test::mtu_traffic(10.0);
    const auto text =
        render_throughput(model.throughput(g, traffic), traffic);
    EXPECT_NE(text.find("[bottleneck]"), std::string::npos);
    EXPECT_NE(text.find("cores"), std::string::npos);
    EXPECT_NE(text.find("accel"), std::string::npos);
    EXPECT_NE(text.find("Gbps"), std::string::npos);
}

TEST(Reporting, LatencyShowsHopBreakdown)
{
    const Model model(test::small_nic());
    const auto g = test::two_stage_graph(model.hardware());
    const auto traffic = test::mtu_traffic(10.0);
    const auto text = render_latency(model.latency(g, traffic), traffic);
    EXPECT_NE(text.find("path (weight"), std::string::npos);
    EXPECT_NE(text.find("Q="), std::string::npos);
    EXPECT_NE(text.find("xfer="), std::string::npos);
    EXPECT_NE(text.find("goodput"), std::string::npos);
}

TEST(Reporting, FullReportConcatenatesBothSides)
{
    const Model model(test::small_nic());
    const auto g = test::single_stage_graph(model.hardware());
    const auto traffic = test::mtu_traffic(5.0);
    const auto text = render_report(model.estimate(g, traffic), traffic);
    EXPECT_NE(text.find("Throughput:"), std::string::npos);
    EXPECT_NE(text.find("Latency:"), std::string::npos);
}

TEST(Reporting, MixedProfilesLabelClasses)
{
    const Model model(test::small_nic());
    const auto g = test::single_stage_graph(model.hardware());
    const auto mixed = TrafficProfile::mixed(
        {{Bytes{64.0}, 0.5}, {Bytes{1500.0}, 0.5}},
        Bandwidth::from_gbps(4.0));
    const auto text =
        render_throughput(model.throughput(g, mixed), mixed);
    EXPECT_NE(text.find("64B (50% of bytes)"), std::string::npos);
    EXPECT_NE(text.find("1500B (50% of bytes)"), std::string::npos);
}

TEST(Reporting, DotExportContainsStructure)
{
    const auto hw = test::small_nic();
    ExecutionGraph g = test::two_stage_graph(hw);
    g.edge(1).params.dedicated_bw = Bandwidth::from_gbps(12.0);
    insert_rate_limiter(g, *g.find_vertex("accel"),
                        Bandwidth::from_gbps(5.0), 4);
    const auto dot = to_dot(g, hw);
    EXPECT_EQ(dot.rfind("digraph", 0), 0u); // starts with digraph
    EXPECT_NE(dot.find("cores"), std::string::npos);
    EXPECT_NE(dot.find("shaper"), std::string::npos);
    EXPECT_NE(dot.find("hexagon"), std::string::npos); // rate limiter shape
    EXPECT_NE(dot.find("ellipse"), std::string::npos); // ingress/egress
    EXPECT_NE(dot.find("bw=12.0G"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
    EXPECT_EQ(dot.back(), '\n');
}

TEST(Reporting, DotShowsEffectiveParallelismAndPartition)
{
    const auto hw = test::small_nic();
    VertexParams p;
    p.parallelism = 3;
    p.partition = 0.5;
    const auto g = test::single_stage_graph(hw, p);
    const auto dot = to_dot(g, hw);
    EXPECT_NE(dot.find("D=3"), std::string::npos);
    EXPECT_NE(dot.find("g=0.50"), std::string::npos);
}

} // namespace
} // namespace lognic::core
