#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/optimizer.hpp"

namespace lognic::core {
namespace {

using test::single_stage_graph;
using test::small_nic;

SatisficeProblem
base_problem(const HardwareModel& hw)
{
    SatisficeProblem p;
    p.graph = single_stage_graph(hw);
    p.traffic = test::mtu_traffic(20.0);
    p.apply = [](ExecutionGraph& g, TrafficProfile&,
                 const solver::IntVector& x) {
        g.vertex(*g.find_vertex("cores")).params.parallelism =
            static_cast<std::uint32_t>(x[0]);
    };
    p.ranges = {{1, 8, 1}};
    return p;
}

TEST(Satisfice, FindsMinimalSatisfyingConfiguration)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    SatisficeProblem p = base_problem(hw);
    // Goal: capacity >= 30 Gbps (each engine gives ~8.7 at MTU -> need 4).
    p.goals.push_back(PerformanceGoal{
        "capacity>=30G",
        [](const Report& r) {
            return 30.0 - r.throughput.capacity.gbps();
        },
        0.0});
    // Tie-break toward *low* resource usage by minimizing latency? No:
    // use a custom preference encoded as the objective — here maximize
    // throughput, so the optimizer returns the highest-capacity config
    // among satisfying ones.
    const Optimizer opt(hw);
    const auto res = opt.satisfice(p);
    EXPECT_TRUE(res.satisfied);
    EXPECT_EQ(res.relax_rounds_used, 0u);
    EXPECT_GE(res.report.throughput.capacity.gbps(), 30.0);
}

TEST(Satisfice, MultipleGoalsIntersect)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    SatisficeProblem p = base_problem(hw);
    p.traffic = test::mtu_traffic(20.0);
    // Capacity at least 25 Gbps AND capacity at most 45 Gbps (resource
    // budget stand-in): engines 3..5 qualify (26.2 / 34.9 / 43.6).
    p.goals.push_back(PerformanceGoal{
        "cap>=25", [](const Report& r) {
            return 25.0 - r.throughput.capacity.gbps();
        }});
    p.goals.push_back(PerformanceGoal{
        "cap<=45", [](const Report& r) {
            return r.throughput.capacity.gbps() - 45.0;
        }});
    const Optimizer opt(hw);
    const auto res = opt.satisfice(p);
    ASSERT_TRUE(res.satisfied);
    EXPECT_GE(res.xi[0], 3);
    EXPECT_LE(res.xi[0], 5);
    // Maximize-throughput tie-break picks 5 engines.
    EXPECT_EQ(res.xi[0], 5);
}

TEST(Satisfice, RelaxesUnreachableGoal)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    SatisficeProblem p = base_problem(hw);
    // Max capacity is ~69.8 Gbps; demand 90 and allow 10 Gbps relaxation
    // per round.
    p.goals.push_back(PerformanceGoal{
        "cap>=90",
        [](const Report& r) {
            return 90.0 - r.throughput.capacity.gbps();
        },
        10.0});
    p.max_relax_rounds = 3;
    const Optimizer opt(hw);
    const auto res = opt.satisfice(p);
    EXPECT_TRUE(res.satisfied);
    // Needs 90 - 69.8 = 20.2 Gbps of slack -> 3 rounds of 10.
    EXPECT_EQ(res.relax_rounds_used, 3u);
    EXPECT_NEAR(res.slack[0], 30.0, 1e-9);
    EXPECT_EQ(res.xi[0], 8);
}

TEST(Satisfice, FailsWhenGoalCannotRelax)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    SatisficeProblem p = base_problem(hw);
    p.goals.push_back(PerformanceGoal{
        "cap>=500",
        [](const Report& r) {
            return 500.0 - r.throughput.capacity.gbps();
        },
        0.0}); // relaxation not permitted
    const Optimizer opt(hw);
    const auto res = opt.satisfice(p);
    EXPECT_FALSE(res.satisfied);
}

TEST(Satisfice, ValidatesInputs)
{
    const HardwareModel hw = small_nic();
    const Optimizer opt(hw);
    SatisficeProblem empty;
    EXPECT_THROW(opt.satisfice(empty), std::invalid_argument);

    SatisficeProblem no_goals = base_problem(hw);
    EXPECT_THROW(opt.satisfice(no_goals), std::invalid_argument);
}

TEST(Satisfice, LatencyBoundGoal)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    SatisficeProblem p = base_problem(hw);
    p.traffic = test::mtu_traffic(15.0);
    // Mean latency under 3 us: needs enough engines to kill queueing.
    p.goals.push_back(PerformanceGoal{
        "latency<=3us",
        [](const Report& r) { return r.latency.mean.micros() - 3.0; },
        0.0});
    p.objective = Objective::kMinimizeLatency;
    const Optimizer opt(hw);
    const auto res = opt.satisfice(p);
    ASSERT_TRUE(res.satisfied);
    EXPECT_LE(res.report.latency.mean.micros(), 3.0);
}

} // namespace
} // namespace lognic::core
