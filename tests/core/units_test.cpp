#include "lognic/core/units.hpp"

#include <gtest/gtest.h>

namespace lognic {
namespace {

TEST(Units, SecondsConversions)
{
    const Seconds s = Seconds::from_micros(1500.0);
    EXPECT_DOUBLE_EQ(s.seconds(), 1.5e-3);
    EXPECT_DOUBLE_EQ(s.millis(), 1.5);
    EXPECT_DOUBLE_EQ(s.nanos(), 1.5e6);
    EXPECT_DOUBLE_EQ(Seconds::from_nanos(500.0).micros(), 0.5);
    EXPECT_DOUBLE_EQ(Seconds::from_millis(2.0).seconds(), 2e-3);
}

TEST(Units, BytesConversions)
{
    const Bytes b = Bytes::from_kib(4.0);
    EXPECT_DOUBLE_EQ(b.bytes(), 4096.0);
    EXPECT_DOUBLE_EQ(b.bits(), 32768.0);
    EXPECT_DOUBLE_EQ(b.kib(), 4.0);
    EXPECT_DOUBLE_EQ(Bytes::from_bits(80.0).bytes(), 10.0);
}

TEST(Units, BandwidthConversions)
{
    const Bandwidth bw = Bandwidth::from_gbps(25.0);
    EXPECT_DOUBLE_EQ(bw.bits_per_sec(), 25e9);
    EXPECT_DOUBLE_EQ(bw.gbps(), 25.0);
    EXPECT_DOUBLE_EQ(bw.bytes_per_sec(), 3.125e9);
    EXPECT_DOUBLE_EQ(Bandwidth::from_gigabytes_per_sec(1.0).gbps(), 8.0);
    EXPECT_DOUBLE_EQ(Bandwidth::from_mbps(500.0).gbps(), 0.5);
    EXPECT_DOUBLE_EQ(Bandwidth::from_bytes_per_sec(1e9).gbps(), 8.0);
}

TEST(Units, ArithmeticAndComparison)
{
    const Seconds a = Seconds::from_micros(2.0);
    const Seconds b = Seconds::from_micros(3.0);
    EXPECT_DOUBLE_EQ((a + b).micros(), 5.0);
    EXPECT_DOUBLE_EQ((b - a).micros(), 1.0);
    EXPECT_DOUBLE_EQ((a * 4.0).micros(), 8.0);
    EXPECT_DOUBLE_EQ((4.0 * a).micros(), 8.0);
    EXPECT_DOUBLE_EQ((b / 3.0).micros(), 1.0);
    EXPECT_DOUBLE_EQ(b / a, 1.5);
    EXPECT_LT(a, b);
    EXPECT_DOUBLE_EQ(a.seconds(), Seconds::from_nanos(2000.0).seconds());
}

TEST(Units, CompoundAssignment)
{
    Seconds t = Seconds::from_micros(1.0);
    t += Seconds::from_micros(2.0);
    EXPECT_DOUBLE_EQ(t.micros(), 3.0);
    t -= Seconds::from_micros(0.5);
    EXPECT_DOUBLE_EQ(t.micros(), 2.5);
}

TEST(Units, TransferTimePhysics)
{
    // 1500 B over 25 Gbps = 480 ns.
    const Seconds t = Bytes{1500.0} / Bandwidth::from_gbps(25.0);
    EXPECT_NEAR(t.nanos(), 480.0, 1e-9);
}

TEST(Units, BandwidthTimesTime)
{
    const Bytes moved = Bandwidth::from_gbps(10.0) * Seconds{1.0};
    EXPECT_DOUBLE_EQ(moved.bytes(), 1.25e9);
    EXPECT_DOUBLE_EQ((Seconds{2.0} * Bandwidth::from_gbps(4.0)).bits(), 8e9);
}

TEST(Units, RateHelpers)
{
    const OpsRate pps =
        packets_per_sec(Bandwidth::from_gbps(25.0), Bytes{1500.0});
    EXPECT_NEAR(pps.per_sec(), 25e9 / 12000.0, 1e-6);
    const Bandwidth back = to_bandwidth(pps, Bytes{1500.0});
    EXPECT_NEAR(back.gbps(), 25.0, 1e-9);
    EXPECT_DOUBLE_EQ(service_time(OpsRate::from_mops(1.0)).micros(), 1.0);
    EXPECT_DOUBLE_EQ(OpsRate::from_kops(2000.0).mops(), 2.0);
}

TEST(Units, BytesPerTimeGivesRate)
{
    const Bandwidth bw = Bytes{1250.0} / Seconds::from_micros(1.0);
    EXPECT_DOUBLE_EQ(bw.gbps(), 10.0);
}

} // namespace
} // namespace lognic
