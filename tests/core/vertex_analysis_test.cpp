#include "lognic/core/vertex_analysis.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/extensions.hpp"
#include "lognic/core/latency_model.hpp"

namespace lognic::core {
namespace {

using test::single_stage_graph;
using test::small_nic;

TEST(VertexAnalysis, PassthroughForIngressEgress)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto traffic = test::mtu_traffic(10.0);
    const auto in = analyze_vertex(g, hw, g.ingress_vertices()[0], traffic);
    EXPECT_TRUE(in.passthrough);
    const auto out = analyze_vertex(g, hw, g.egress_vertices()[0], traffic);
    EXPECT_TRUE(out.passthrough);
}

TEST(VertexAnalysis, ComputesOperatingPoint)
{
    const auto hw = small_nic();
    VertexParams p;
    p.parallelism = 4;
    p.queue_capacity = 10;
    const auto g = single_stage_graph(hw, p);
    const auto traffic = test::mtu_traffic(10.0);
    const auto va =
        analyze_vertex(g, hw, *g.find_vertex("cores"), traffic);
    EXPECT_FALSE(va.passthrough);
    EXPECT_EQ(va.parallelism, 4u);
    EXPECT_EQ(va.queue_capacity, 10u);
    EXPECT_DOUBLE_EQ(va.request_size.bytes(), 1500.0);
    // Per-engine service time: 1 us + 1500 B / 4 GB/s = 1.375 us.
    EXPECT_NEAR(va.compute_time.micros(), 1.375, 1e-9);
    // lambda per engine: 10 Gbps / (4 * 12000 b) = 208.3 k/s.
    EXPECT_NEAR(va.lambda, 10e9 / (4.0 * 12000.0), 1e-6);
    EXPECT_NEAR(va.mu, 1.0 / 1.375e-6, 1.0);
    // rho = BW_in / P_v.
    const double p_v = 4.0 * 12000.0 / 1.375e-6;
    EXPECT_NEAR(va.rho, 10e9 / p_v, 1e-9);
}

TEST(VertexAnalysis, DefaultsComeFromIpSpec)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw); // parallelism/queue unset
    const auto va = analyze_vertex(g, hw, *g.find_vertex("cores"),
                                   test::mtu_traffic(10.0));
    EXPECT_EQ(va.parallelism, 8u);  // spec.max_engines
    EXPECT_EQ(va.queue_capacity, 64u); // spec default
}

TEST(VertexAnalysis, RhoScalesWithDeltaShare)
{
    const auto hw = small_nic();
    ExecutionGraph g("split");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"));
    g.add_edge(in, v, EdgeParams{0.4, 0, 0, {}}); // 40% of traffic
    g.add_edge(v, out, EdgeParams{0.4, 0, 0, {}});
    const auto va =
        analyze_vertex(g, hw, v, test::mtu_traffic(10.0));
    const auto g_full = single_stage_graph(hw);
    const auto va_full = analyze_vertex(
        g_full, hw, *g_full.find_vertex("cores"), test::mtu_traffic(10.0));
    EXPECT_NEAR(va.rho, 0.4 * va_full.rho, 1e-12);
    // Request size stays the full packet.
    EXPECT_DOUBLE_EQ(va.request_size.bytes(), 1500.0);
}

TEST(VertexAnalysis, RateLimiterUsesShapingRate)
{
    const auto hw = small_nic();
    ExecutionGraph g = single_stage_graph(hw);
    const auto rl = insert_rate_limiter(g, *g.find_vertex("cores"),
                                        Bandwidth::from_gbps(6.0), 8);
    const auto va = analyze_vertex(g, hw, rl, test::mtu_traffic(3.0));
    EXPECT_NEAR(va.attainable.gbps(), 6.0, 1e-12);
    EXPECT_EQ(va.queue_capacity, 8u);
    EXPECT_NEAR(va.rho, 0.5, 1e-12); // 3 of 6 Gbps
}

TEST(VertexAnalysis, ZeroTrafficVertexIsInert)
{
    const auto hw = small_nic();
    ExecutionGraph g("zero");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto a = g.add_ip_vertex("cores", *hw.find_ip("cores"));
    const auto b = g.add_ip_vertex("accel", *hw.find_ip("accel"));
    g.add_edge(in, a, EdgeParams{1.0, 0, 0, {}});
    g.add_edge(in, b, EdgeParams{0.0, 0, 0, {}}); // no traffic
    g.add_edge(a, out);
    g.add_edge(b, out, EdgeParams{0.0, 0, 0, {}});
    const auto va = analyze_vertex(g, hw, b, test::mtu_traffic(10.0));
    EXPECT_DOUBLE_EQ(va.rho, 0.0);
    EXPECT_DOUBLE_EQ(va.lambda, 0.0);
    EXPECT_DOUBLE_EQ(va.compute_time.seconds(), 0.0);
}

TEST(Goodput, MatchesAchievedWhenLossless)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto traffic = test::mtu_traffic(5.0);
    const auto est = estimate_latency(g, hw, traffic);
    EXPECT_NEAR(est.goodput.gbps(), 5.0, 0.01);
}

TEST(Goodput, SurvivalWeightedUnderOverload)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 8;
    const auto g = single_stage_graph(hw, p);
    const auto traffic = test::mtu_traffic(20.0);
    const auto est = estimate_latency(g, hw, traffic);
    EXPECT_NEAR(est.goodput.gbps(),
                20.0 * (1.0 - est.max_drop_probability), 1e-6);
    // Goodput can never exceed the vertex capacity by much (blocking
    // probability throttles it to ~capacity).
    EXPECT_LT(est.goodput.gbps(), 10.0);
}

TEST(Goodput, CappedByLineRate)
{
    const auto hw = small_nic(Bandwidth::from_gbps(25.0));
    const auto g = single_stage_graph(hw);
    const auto traffic = test::mtu_traffic(80.0); // over the port speed
    const auto est = estimate_latency(g, hw, traffic);
    EXPECT_LE(est.goodput.gbps(), 25.0 + 1e-9);
}

} // namespace
} // namespace lognic::core
