#include "lognic/core/latency_model.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/queueing/mm1n.hpp"

namespace lognic::core {
namespace {

using test::mtu_traffic;
using test::single_stage_graph;
using test::small_nic;
using test::two_stage_graph;

TEST(LatencyModel, SingleStageHandComputed)
{
    const HardwareModel hw = small_nic();
    const ExecutionGraph g = single_stage_graph(hw);
    // Very light load: queueing ~ 0, latency ~ service time.
    const auto est = estimate_latency(g, hw, mtu_traffic(0.01));
    const double service_us = 1.0 + 1500.0 / 4000.0; // 1.375 us
    EXPECT_NEAR(est.mean.micros(), service_us, 0.05);
    ASSERT_EQ(est.paths.size(), 1u);
    EXPECT_EQ(est.paths[0].hops.size(), 2u);
}

TEST(LatencyModel, QueueingGrowsWithLoad)
{
    const HardwareModel hw = small_nic();
    const ExecutionGraph g = single_stage_graph(hw);
    double prev = 0.0;
    for (double load : {1.0, 10.0, 20.0, 24.0}) {
        const auto est = estimate_latency(g, hw, mtu_traffic(load));
        EXPECT_GT(est.mean.micros(), prev);
        prev = est.mean.micros();
    }
}

TEST(LatencyModel, QueueingMatchesMm1nClosedForm)
{
    const HardwareModel hw = small_nic();
    VertexParams one;
    one.parallelism = 1;
    one.queue_capacity = 16;
    const ExecutionGraph g = single_stage_graph(hw, one);
    const auto traffic = mtu_traffic(5.0);
    const auto est = estimate_latency(g, hw, traffic);

    const double service = 1.375e-6;
    const double lambda = 5e9 / (1500.0 * 8.0);
    const queueing::Mm1nQueue q(lambda, 1.0 / service, 16);
    const double expected =
        q.paper_closed_form_delay() + service; // Q + C, no O, no transfer
    EXPECT_NEAR(est.mean.seconds(), expected, 1e-9);
}

TEST(LatencyModel, OverheadAddsPerHop)
{
    const HardwareModel hw = small_nic();
    VertexParams with_overhead;
    with_overhead.overhead = Seconds::from_micros(3.0);
    const auto base = estimate_latency(single_stage_graph(hw), hw,
                                       mtu_traffic(0.01));
    const auto plus = estimate_latency(single_stage_graph(hw, with_overhead),
                                       hw, mtu_traffic(0.01));
    EXPECT_NEAR(plus.mean.micros() - base.mean.micros(), 3.0, 1e-6);
}

TEST(LatencyModel, AccelerationShrinksCompute)
{
    const HardwareModel hw = small_nic();
    VertexParams fast;
    fast.acceleration = 2.0;
    const auto base = estimate_latency(single_stage_graph(hw), hw,
                                       mtu_traffic(0.01));
    const auto accel = estimate_latency(single_stage_graph(hw, fast), hw,
                                        mtu_traffic(0.01));
    // Compute time 1.375 us halves (queueing at this load is negligible).
    EXPECT_NEAR(base.mean.micros() - accel.mean.micros(), 1.375 / 2.0, 0.01);
}

TEST(LatencyModel, TransferTimeUsesMediumBandwidths)
{
    const HardwareModel hw = small_nic();
    ExecutionGraph g = single_stage_graph(hw);
    g.edge(0).params.alpha = 1.0; // 1500 B over 100 Gbps = 0.12 us
    g.edge(0).params.beta = 1.0;  // 1500 B over 80 Gbps = 0.15 us
    const auto base = estimate_latency(single_stage_graph(hw), hw,
                                       mtu_traffic(0.01));
    const auto with = estimate_latency(g, hw, mtu_traffic(0.01));
    EXPECT_NEAR(with.mean.micros() - base.mean.micros(), 0.12 + 0.15, 1e-6);
}

TEST(LatencyModel, DedicatedEdgeTransferTime)
{
    const HardwareModel hw = small_nic();
    ExecutionGraph g = single_stage_graph(hw);
    g.edge(1).params.dedicated_bw = Bandwidth::from_gbps(12.0); // 1 us/MTU
    const auto base = estimate_latency(single_stage_graph(hw), hw,
                                       mtu_traffic(0.01));
    const auto with = estimate_latency(g, hw, mtu_traffic(0.01));
    EXPECT_NEAR(with.mean.micros() - base.mean.micros(), 1.0, 1e-6);
}

TEST(LatencyModel, PathWeightsAverageAcrossDiamond)
{
    const HardwareModel hw = small_nic();
    // Fast branch (accel) and slow branch (cores), 50/50.
    ExecutionGraph g("diamond");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto slow = g.add_ip_vertex("cores", *hw.find_ip("cores"));
    const auto fast = g.add_ip_vertex("accel", *hw.find_ip("accel"));
    g.add_edge(in, slow, EdgeParams{0.5, 0, 0, {}});
    g.add_edge(in, fast, EdgeParams{0.5, 0, 0, {}});
    g.add_edge(slow, out, EdgeParams{0.5, 0, 0, {}});
    g.add_edge(fast, out, EdgeParams{0.5, 0, 0, {}});
    const auto est = estimate_latency(g, hw, mtu_traffic(0.01));
    ASSERT_EQ(est.paths.size(), 2u);
    const double t0 = est.paths[0].total.seconds();
    const double t1 = est.paths[1].total.seconds();
    EXPECT_NEAR(est.mean.seconds(), 0.5 * (t0 + t1), 1e-12);
}

TEST(LatencyModel, DropProbabilityReportedUnderOverload)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    VertexParams tiny;
    tiny.parallelism = 1;
    tiny.queue_capacity = 2;
    const ExecutionGraph g = single_stage_graph(hw, tiny);
    const auto est = estimate_latency(g, hw, mtu_traffic(50.0));
    EXPECT_GT(est.max_drop_probability, 0.5); // grossly overloaded
}

TEST(LatencyModel, HopBreakdownSumsToPathTotal)
{
    const HardwareModel hw = small_nic();
    const auto est = estimate_latency(two_stage_graph(hw), hw,
                                      mtu_traffic(5.0));
    for (const auto& path : est.paths) {
        Seconds sum{0.0};
        for (const auto& hop : path.hops)
            sum += hop.total();
        EXPECT_NEAR(sum.seconds(), path.total.seconds(), 1e-15);
    }
}

TEST(LatencyModel, BoundedUnderExtremeOverloadByQueueCapacity)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 8;
    const ExecutionGraph g = single_stage_graph(hw, p);
    const auto est = estimate_latency(g, hw, mtu_traffic(500.0));
    // Waiting behind at most N requests of 1.375 us each plus own service.
    EXPECT_LT(est.mean.micros(), (8 + 1) * 1.375 + 0.1);
}

} // namespace
} // namespace lognic::core
