#include "lognic/core/traffic_profile.hpp"

#include <gtest/gtest.h>

namespace lognic::core {
namespace {

TEST(TrafficProfile, FixedProfile)
{
    const auto p =
        TrafficProfile::fixed(Bytes{1500.0}, Bandwidth::from_gbps(25.0));
    ASSERT_EQ(p.classes().size(), 1u);
    EXPECT_DOUBLE_EQ(p.classes()[0].weight, 1.0);
    EXPECT_DOUBLE_EQ(p.mean_packet_size().bytes(), 1500.0);
    EXPECT_DOUBLE_EQ(p.granularity(0).bytes(), 1500.0);
    EXPECT_DOUBLE_EQ(p.ingress_bandwidth().gbps(), 25.0);
}

TEST(TrafficProfile, MixedWeightsNormalize)
{
    const auto p = TrafficProfile::mixed(
        {{Bytes{64.0}, 2.0}, {Bytes{1500.0}, 6.0}},
        Bandwidth::from_gbps(10.0));
    EXPECT_DOUBLE_EQ(p.classes()[0].weight, 0.25);
    EXPECT_DOUBLE_EQ(p.classes()[1].weight, 0.75);
    EXPECT_DOUBLE_EQ(p.mean_packet_size().bytes(),
                     0.25 * 64.0 + 0.75 * 1500.0);
}

TEST(TrafficProfile, RejectsBadInput)
{
    EXPECT_THROW(TrafficProfile::mixed({}, Bandwidth::from_gbps(1.0)),
                 std::invalid_argument);
    EXPECT_THROW(TrafficProfile::mixed({{Bytes{0.0}, 1.0}},
                                       Bandwidth::from_gbps(1.0)),
                 std::invalid_argument);
    EXPECT_THROW(TrafficProfile::mixed({{Bytes{64.0}, 0.0}},
                                       Bandwidth::from_gbps(1.0)),
                 std::invalid_argument);
    EXPECT_THROW(
        TrafficProfile::fixed(Bytes{64.0}, Bandwidth::from_gbps(0.0)),
        std::invalid_argument);
}

TEST(TrafficProfile, GranularityOverride)
{
    auto p = TrafficProfile::fixed(Bytes{1024.0}, Bandwidth::from_gbps(5.0));
    p.set_granularity(Bytes::from_kib(16.0));
    EXPECT_DOUBLE_EQ(p.granularity(0).bytes(), 16384.0);
    EXPECT_THROW(p.granularity(5), std::out_of_range);
}

TEST(TrafficProfile, ClassProfileExtractsOneClass)
{
    const auto p = TrafficProfile::mixed(
        {{Bytes{64.0}, 1.0}, {Bytes{512.0}, 1.0}},
        Bandwidth::from_gbps(8.0));
    const auto c1 = p.class_profile(1);
    ASSERT_EQ(c1.classes().size(), 1u);
    EXPECT_DOUBLE_EQ(c1.classes()[0].size.bytes(), 512.0);
    EXPECT_DOUBLE_EQ(c1.classes()[0].weight, 1.0);
    EXPECT_DOUBLE_EQ(c1.ingress_bandwidth().gbps(), 8.0);
    EXPECT_THROW(p.class_profile(2), std::out_of_range);
}

TEST(TrafficProfile, DefaultIsValidPlaceholder)
{
    const TrafficProfile p;
    ASSERT_EQ(p.classes().size(), 1u);
    EXPECT_GT(p.mean_packet_size().bytes(), 0.0);
    EXPECT_GT(p.ingress_bandwidth().bits_per_sec(), 0.0);
}

} // namespace
} // namespace lognic::core
