#include "lognic/core/execution_graph.hpp"

#include <gtest/gtest.h>

namespace lognic::core {
namespace {

HardwareModel
toy_hw()
{
    HardwareModel hw("toy", Bandwidth::from_gbps(100.0),
                     Bandwidth::from_gbps(100.0), Bandwidth::from_gbps(25.0));
    IpSpec ip;
    ip.name = "cores";
    ip.roofline = ExtendedRoofline(
        ServiceModel{Seconds::from_micros(1.0), Bandwidth::from_gbps(1e6)},
        {});
    ip.max_engines = 8;
    hw.add_ip(ip);
    return hw;
}

ExecutionGraph
chain_graph(const HardwareModel& hw)
{
    ExecutionGraph g("chain");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v = g.add_ip_vertex("work", *hw.find_ip("cores"));
    g.add_edge(in, v);
    g.add_edge(v, out);
    return g;
}

TEST(ExecutionGraph, BuildsAndValidatesChain)
{
    const HardwareModel hw = toy_hw();
    const ExecutionGraph g = chain_graph(hw);
    EXPECT_EQ(g.vertex_count(), 3u);
    EXPECT_EQ(g.edge_count(), 2u);
    EXPECT_NO_THROW(g.validate(hw));
}

TEST(ExecutionGraph, RejectsDuplicateVertexNames)
{
    ExecutionGraph g;
    g.add_ingress("a");
    EXPECT_THROW(g.add_egress("a"), std::invalid_argument);
}

TEST(ExecutionGraph, RejectsSelfLoopsAndBadIds)
{
    ExecutionGraph g;
    const auto in = g.add_ingress();
    EXPECT_THROW(g.add_edge(in, in), std::invalid_argument);
    EXPECT_THROW(g.add_edge(in, 99), std::out_of_range);
    EXPECT_THROW(g.vertex(42), std::out_of_range);
    EXPECT_THROW(g.edge(42), std::out_of_range);
}

TEST(ExecutionGraph, ValidateRequiresIngressAndEgress)
{
    const HardwareModel hw = toy_hw();
    ExecutionGraph no_ingress;
    no_ingress.add_egress();
    EXPECT_THROW(no_ingress.validate(hw), std::invalid_argument);

    ExecutionGraph no_egress;
    no_egress.add_ingress();
    EXPECT_THROW(no_egress.validate(hw), std::invalid_argument);
}

TEST(ExecutionGraph, ValidateDetectsCycle)
{
    const HardwareModel hw = toy_hw();
    ExecutionGraph g;
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto a = g.add_ip_vertex("a", 0);
    const auto b = g.add_ip_vertex("b", 0);
    g.add_edge(in, a);
    g.add_edge(a, b);
    g.add_edge(b, a); // cycle
    g.add_edge(b, out);
    EXPECT_THROW(g.validate(hw), std::invalid_argument);
    EXPECT_THROW(g.topological_order(), std::invalid_argument);
}

TEST(ExecutionGraph, ValidateDetectsDeadEndAndUnreachable)
{
    const HardwareModel hw = toy_hw();
    ExecutionGraph g;
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto a = g.add_ip_vertex("a", 0);
    g.add_edge(in, a);
    g.add_edge(a, out);
    g.add_ip_vertex("orphan", 0); // no edges at all
    EXPECT_THROW(g.validate(hw), std::invalid_argument);
}

TEST(ExecutionGraph, ValidateChecksParameterRanges)
{
    const HardwareModel hw = toy_hw();
    {
        ExecutionGraph g = chain_graph(hw);
        g.vertex(*g.find_vertex("work")).params.parallelism = 99;
        EXPECT_THROW(g.validate(hw), std::invalid_argument);
    }
    {
        ExecutionGraph g = chain_graph(hw);
        g.vertex(*g.find_vertex("work")).params.partition = 0.0;
        EXPECT_THROW(g.validate(hw), std::invalid_argument);
    }
    {
        ExecutionGraph g = chain_graph(hw);
        g.vertex(*g.find_vertex("work")).params.acceleration = -1.0;
        EXPECT_THROW(g.validate(hw), std::invalid_argument);
    }
    {
        ExecutionGraph g = chain_graph(hw);
        g.edge(0).params.delta = 1.5;
        EXPECT_THROW(g.validate(hw), std::invalid_argument);
    }
    {
        ExecutionGraph g = chain_graph(hw);
        g.edge(0).params.alpha = -0.1;
        EXPECT_THROW(g.validate(hw), std::invalid_argument);
    }
}

TEST(ExecutionGraph, ValidationErrorsNameTheOffender)
{
    const HardwareModel hw = toy_hw();
    // Parallelism violations name the graph, the vertex, the bad value,
    // and the IP's limit — a sweep over many generated graphs needs the
    // message alone to identify the culprit.
    {
        ExecutionGraph g = chain_graph(hw);
        g.vertex(*g.find_vertex("work")).params.parallelism = 99;
        try {
            g.validate(hw);
            FAIL() << "expected invalid_argument";
        } catch (const std::invalid_argument& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("chain"), std::string::npos) << what;
            EXPECT_NE(what.find("work"), std::string::npos) << what;
            EXPECT_NE(what.find("99"), std::string::npos) << what;
            EXPECT_NE(what.find("cores"), std::string::npos) << what;
            EXPECT_NE(what.find("8"), std::string::npos) << what;
        }
    }
    // Dangling IP references name the hardware model and its IP count.
    {
        ExecutionGraph g("dangling");
        const auto in = g.add_ingress();
        const auto out = g.add_egress();
        const auto v = g.add_ip_vertex("phantom", 7);
        g.add_edge(in, v);
        g.add_edge(v, out);
        try {
            g.validate(hw);
            FAIL() << "expected invalid_argument";
        } catch (const std::invalid_argument& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("phantom"), std::string::npos) << what;
            EXPECT_NE(what.find("toy"), std::string::npos) << what;
            EXPECT_NE(what.find("7"), std::string::npos) << what;
        }
    }
    // Accessor and edge errors carry the graph name and the bad id.
    {
        ExecutionGraph g("lookup");
        g.add_ingress();
        try {
            g.vertex(42);
            FAIL() << "expected out_of_range";
        } catch (const std::out_of_range& e) {
            const std::string what = e.what();
            EXPECT_NE(what.find("lookup"), std::string::npos) << what;
            EXPECT_NE(what.find("42"), std::string::npos) << what;
        }
    }
}

TEST(HardwareModel, ErrorsNameTheModelAndTheIp)
{
    // Which of the three constructor bandwidths was bad is in the message.
    try {
        HardwareModel bad("half-built", Bandwidth::from_gbps(100.0),
                          Bandwidth::from_gbps(0.0),
                          Bandwidth::from_gbps(25.0));
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("half-built"), std::string::npos) << what;
        EXPECT_NE(what.find("memory"), std::string::npos) << what;
    }

    HardwareModel hw = toy_hw();
    IpSpec dup;
    dup.name = "cores";
    dup.max_engines = 1;
    try {
        hw.add_ip(dup);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("toy"), std::string::npos) << what;
        EXPECT_NE(what.find("cores"), std::string::npos) << what;
    }

    try {
        hw.ip(9);
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("toy"), std::string::npos) << what;
        EXPECT_NE(what.find("9"), std::string::npos) << what;
    }

    try {
        hw.set_ip_bandwidth(0, 5, Bandwidth::from_gbps(10.0));
        FAIL() << "expected out_of_range";
    } catch (const std::out_of_range& e) {
        EXPECT_NE(std::string(e.what()).find("5"), std::string::npos)
            << e.what();
    }
}

TEST(ExecutionGraph, TopologicalOrderRespectsEdges)
{
    const HardwareModel hw = toy_hw();
    ExecutionGraph g;
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto a = g.add_ip_vertex("a", 0);
    const auto b = g.add_ip_vertex("b", 0);
    g.add_edge(in, a);
    g.add_edge(a, b);
    g.add_edge(b, out);
    const auto order = g.topological_order();
    auto pos = [&](VertexId v) {
        for (std::size_t i = 0; i < order.size(); ++i)
            if (order[i] == v)
                return i;
        return order.size();
    };
    EXPECT_LT(pos(in), pos(a));
    EXPECT_LT(pos(a), pos(b));
    EXPECT_LT(pos(b), pos(out));
}

TEST(ExecutionGraph, EnumeratesDiamondPathsWithWeights)
{
    ExecutionGraph g;
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto a = g.add_ip_vertex("a", 0);
    const auto b = g.add_ip_vertex("b", 0);
    g.add_edge(in, a, EdgeParams{0.75, 0, 0, {}});
    g.add_edge(in, b, EdgeParams{0.25, 0, 0, {}});
    g.add_edge(a, out, EdgeParams{0.75, 0, 0, {}});
    g.add_edge(b, out, EdgeParams{0.25, 0, 0, {}});

    const auto paths = g.enumerate_paths();
    ASSERT_EQ(paths.size(), 2u);
    double total = 0.0;
    for (const auto& p : paths) {
        EXPECT_EQ(p.edges.size(), 2u);
        total += p.weight;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    // The heavier branch carries 75% of traffic.
    const double w0 = paths[0].weight;
    EXPECT_TRUE(std::abs(w0 - 0.75) < 1e-9 || std::abs(w0 - 0.25) < 1e-9);
}

TEST(ExecutionGraph, PathExplosionGuard)
{
    ExecutionGraph g;
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    // A ladder of 2-way fanouts: 2^10 paths.
    VertexId prev_a = in;
    VertexId prev_b = in;
    for (int level = 0; level < 10; ++level) {
        const auto a = g.add_ip_vertex("a" + std::to_string(level), 0);
        const auto b = g.add_ip_vertex("b" + std::to_string(level), 0);
        if (level == 0) {
            g.add_edge(in, a);
            g.add_edge(in, b);
        } else {
            g.add_edge(prev_a, a);
            g.add_edge(prev_a, b);
            g.add_edge(prev_b, a);
            g.add_edge(prev_b, b);
        }
        prev_a = a;
        prev_b = b;
    }
    g.add_edge(prev_a, out);
    g.add_edge(prev_b, out);
    EXPECT_THROW(g.enumerate_paths(16), std::invalid_argument);
    EXPECT_NO_THROW(g.enumerate_paths(100000));
}

TEST(ExecutionGraph, InDeltaSumAggregates)
{
    ExecutionGraph g;
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto a = g.add_ip_vertex("a", 0);
    const auto b = g.add_ip_vertex("b", 0);
    g.add_edge(in, a, EdgeParams{0.6, 0, 0, {}});
    g.add_edge(in, b, EdgeParams{0.4, 0, 0, {}});
    g.add_edge(a, b, EdgeParams{0.6, 0, 0, {}});
    g.add_edge(b, out, EdgeParams{1.0, 0, 0, {}});
    EXPECT_DOUBLE_EQ(g.in_delta_sum(b), 1.0);
    EXPECT_DOUBLE_EQ(g.in_delta_sum(a), 0.6);
    EXPECT_EQ(g.in_degree(b), 2u);
}

TEST(ExecutionGraph, RateLimiterVertexValidation)
{
    ExecutionGraph g;
    EXPECT_THROW(g.add_rate_limiter("rl", Bandwidth::from_gbps(0.0), 4),
                 std::invalid_argument);
    EXPECT_NO_THROW(g.add_rate_limiter("rl", Bandwidth::from_gbps(5.0), 4));
}

TEST(ExecutionGraph, FindVertexByName)
{
    ExecutionGraph g;
    g.add_ingress("rx");
    EXPECT_TRUE(g.find_vertex("rx").has_value());
    EXPECT_FALSE(g.find_vertex("nope").has_value());
}

} // namespace
} // namespace lognic::core
