#include "lognic/core/sensitivity.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace lognic::core {
namespace {

using test::single_stage_graph;
using test::small_nic;

double
find(const std::vector<Sensitivity>& results, const std::string& name,
     bool capacity = true)
{
    for (const auto& s : results) {
        if (s.parameter == name)
            return capacity ? s.capacity_elasticity : s.latency_elasticity;
    }
    ADD_FAILURE() << "missing parameter " << name;
    return 0.0;
}

TEST(SensitivityAnalysis, LineRateBoundScenarioBlamesThePort)
{
    // small_nic at MTU: cores capacity ~69.8 G >> the 25 G port.
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto results =
        analyze_sensitivity(g, hw, test::mtu_traffic(10.0));
    EXPECT_NEAR(find(results, "hw:line-rate"), 1.0, 0.02);
    // Nothing else moves capacity.
    EXPECT_NEAR(find(results, "hw:memory-bandwidth"), 0.0, 1e-9);
    EXPECT_NEAR(find(results, "hw:interface-bandwidth"), 0.0, 1e-9);
    // And the ranking puts the port first.
    EXPECT_EQ(results.front().parameter, "hw:line-rate");
}

TEST(SensitivityAnalysis, ComputeBoundScenarioBlamesTheVertex)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    VertexParams p;
    p.parallelism = 4; // interior point: two-sided engine probe
    const auto g = single_stage_graph(hw, p);
    const auto results =
        analyze_sensitivity(g, hw, test::mtu_traffic(10.0));
    // Capacity scales ~linearly with the core count.
    EXPECT_NEAR(find(results, "vertex:cores:parallelism"), 1.0, 0.05);
    EXPECT_NEAR(find(results, "hw:line-rate"), 0.0, 1e-9);
    // gamma scales capacity linearly too (it cannot exceed 1, so the
    // default partition of 1.0 is skipped -- set one).
}

TEST(SensitivityAnalysis, PartitionProbeScalesCapacity)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    VertexParams p;
    p.partition = 0.5;
    const auto g = single_stage_graph(hw, p);
    const auto results =
        analyze_sensitivity(g, hw, test::mtu_traffic(10.0));
    EXPECT_NEAR(find(results, "vertex:cores:partition"), 1.0, 0.02);
}

TEST(SensitivityAnalysis, OfferedLoadDrivesLatencyNotCapacity)
{
    const auto hw = small_nic();
    VertexParams p;
    p.parallelism = 1;
    const auto g = single_stage_graph(hw, p);
    const auto results =
        analyze_sensitivity(g, hw, test::mtu_traffic(7.0)); // rho ~ 0.8
    EXPECT_NEAR(find(results, "traffic:offered-load"), 0.0, 1e-9);
    EXPECT_GT(find(results, "traffic:offered-load", false), 0.5);
}

TEST(SensitivityAnalysis, FanOutDeltaProbed)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    ExecutionGraph g("split");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    VertexParams one;
    one.parallelism = 1;
    const auto a = g.add_ip_vertex("a", *hw.find_ip("cores"), one);
    const auto b = g.add_ip_vertex("b", *hw.find_ip("cores"), one);
    g.add_edge(in, a, EdgeParams{0.7, 0, 0, {}});
    g.add_edge(in, b, EdgeParams{0.3, 0, 0, {}});
    g.add_edge(a, out, EdgeParams{0.7, 0, 0, {}});
    g.add_edge(b, out, EdgeParams{0.3, 0, 0, {}});
    const auto results =
        analyze_sensitivity(g, hw, test::mtu_traffic(10.0));
    // The hot branch's delta (0.7, feeding the binding vertex) moves
    // capacity inversely: more share -> lower capacity.
    EXPECT_LT(find(results, "edge:ingress->a:delta"), -0.5);
    // The cold branch's delta barely matters for capacity.
    EXPECT_NEAR(find(results, "edge:ingress->b:delta"), 0.0, 0.1);
}

TEST(SensitivityAnalysis, DeterministicOutput)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto a = analyze_sensitivity(g, hw, test::mtu_traffic(5.0));
    const auto b = analyze_sensitivity(g, hw, test::mtu_traffic(5.0));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].parameter, b[i].parameter);
        EXPECT_DOUBLE_EQ(a[i].capacity_elasticity,
                         b[i].capacity_elasticity);
    }
}

} // namespace
} // namespace lognic::core
