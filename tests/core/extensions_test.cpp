#include "lognic/core/extensions.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace lognic::core {
namespace {

using test::single_stage_graph;
using test::small_nic;

TEST(Consolidate, RejectsBadInput)
{
    const HardwareModel hw = small_nic();
    EXPECT_THROW(consolidate(hw, {}), std::invalid_argument);

    const ExecutionGraph g = single_stage_graph(hw);
    TenantWorkload t;
    t.graph = nullptr;
    t.traffic = test::mtu_traffic(1.0);
    EXPECT_THROW(consolidate(hw, {t}), std::invalid_argument);

    TenantWorkload multi;
    multi.graph = &g;
    multi.traffic = TrafficProfile::mixed(
        {{Bytes{64.0}, 1.0}, {Bytes{1500.0}, 1.0}},
        Bandwidth::from_gbps(1.0));
    EXPECT_THROW(consolidate(hw, {multi}), std::invalid_argument);
}

TEST(Consolidate, SingleTenantMatchesDirectEstimate)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    const ExecutionGraph g = single_stage_graph(hw);
    const auto traffic = test::mtu_traffic(5.0);
    TenantWorkload t{&g, traffic, 1.0};
    const auto cons = consolidate(hw, {t});
    const auto direct = estimate_throughput(g, hw, traffic);
    EXPECT_NEAR(cons.total_capacity.bits_per_sec(),
                direct.capacity.bits_per_sec(), 1.0);
    ASSERT_EQ(cons.tenants.size(), 1u);
    EXPECT_NEAR(cons.tenants[0].capacity.bits_per_sec(),
                direct.capacity.bits_per_sec(), 1.0);
}

TEST(Consolidate, EqualTenantsSplitCapacity)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    // Each tenant owns half the cores via gamma.
    VertexParams half;
    half.partition = 0.5;
    ExecutionGraph g1("t1");
    {
        const auto in = g1.add_ingress();
        const auto out = g1.add_egress();
        const auto v = g1.add_ip_vertex("cores", *hw.find_ip("cores"), half);
        g1.add_edge(in, v);
        g1.add_edge(v, out);
    }
    ExecutionGraph g2 = g1;
    const auto traffic = test::mtu_traffic(5.0);
    const auto cons = consolidate(
        hw, {{&g1, traffic, 1.0}, {&g2, traffic, 1.0}});

    // Full-machine capacity with gamma = 0.5 per tenant and 50% of W each:
    // each tenant's term is (0.5 * P) / (0.5 * 1) = P, so the consolidated
    // capacity equals the unpartitioned single-tenant capacity.
    const ExecutionGraph solo = single_stage_graph(hw);
    const auto direct = estimate_throughput(solo, hw, traffic);
    EXPECT_NEAR(cons.total_capacity.bits_per_sec(),
                direct.capacity.bits_per_sec(), 1.0);
    // And each tenant gets half of it.
    EXPECT_NEAR(cons.tenants[0].capacity.bits_per_sec(),
                0.5 * cons.total_capacity.bits_per_sec(), 1.0);
}

TEST(Consolidate, SharedMediumAggregatesAcrossTenants)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    // Both tenants push their payloads over memory (beta = 1).
    auto make = [&](const std::string& name) {
        ExecutionGraph g(name);
        const auto in = g.add_ingress();
        const auto out = g.add_egress();
        VertexParams half;
        half.partition = 0.5;
        const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"), half);
        g.add_edge(in, v, EdgeParams{1.0, 0.0, 1.0, {}});
        g.add_edge(v, out);
        return g;
    };
    const ExecutionGraph g1 = make("t1");
    const ExecutionGraph g2 = make("t2");
    const auto traffic = test::mtu_traffic(5.0);
    const auto cons =
        consolidate(hw, {{&g1, traffic, 1.0}, {&g2, traffic, 1.0}});
    // Aggregate beta demand: 0.5 * 1 + 0.5 * 1 = 1 -> memory allows 80 Gbps.
    bool memory_term_found = false;
    if (cons.bottleneck.kind == TermKind::kMemory)
        memory_term_found = true;
    // Whatever binds, capacity can never exceed the memory ceiling.
    EXPECT_LE(cons.total_capacity.gbps(), 80.0 + 1e-9);
    (void)memory_term_found;
}

TEST(Consolidate, WeightsSkewTenantShares)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    const ExecutionGraph g1 = single_stage_graph(hw);
    ExecutionGraph g2 = g1;
    const auto traffic = test::mtu_traffic(5.0);
    const auto cons =
        consolidate(hw, {{&g1, traffic, 3.0}, {&g2, traffic, 1.0}});
    EXPECT_NEAR(cons.tenants[0].capacity.bits_per_sec(),
                3.0 * cons.tenants[1].capacity.bits_per_sec(), 1.0);
}

TEST(RateLimiter, InsertRewiresEdges)
{
    const HardwareModel hw = small_nic();
    ExecutionGraph g = single_stage_graph(hw);
    const auto target = *g.find_vertex("cores");
    const auto rl =
        insert_rate_limiter(g, target, Bandwidth::from_gbps(5.0), 4);
    EXPECT_NO_THROW(g.validate(hw));
    // Ingress now feeds the limiter; the limiter feeds the target.
    EXPECT_EQ(g.in_degree(target), 1u);
    EXPECT_EQ(g.edge(g.in_edges(target)[0]).from, rl);
    EXPECT_EQ(g.vertex(rl).kind, VertexKind::kRateLimiter);
}

TEST(RateLimiter, InsertOnSourcelessVertexThrows)
{
    const HardwareModel hw = small_nic();
    ExecutionGraph g = single_stage_graph(hw);
    const auto ingress = g.ingress_vertices().front();
    EXPECT_THROW(
        insert_rate_limiter(g, ingress, Bandwidth::from_gbps(1.0), 4),
        std::invalid_argument);
}

TEST(RateLimiter, LimitsLatencyModelThroughputToo)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    ExecutionGraph g = single_stage_graph(hw);
    insert_rate_limiter(g, *g.find_vertex("cores"),
                        Bandwidth::from_gbps(2.0), 4);
    // Offered 10 G through a 2 G shaper: the shaper's queue saturates and
    // drops; the model must report a high drop probability at the limiter.
    const auto est = estimate_latency(g, hw, test::mtu_traffic(10.0));
    EXPECT_GT(est.max_drop_probability, 0.5);
}

TEST(Recirculation, UnrollHalvesCapacityPerExtraPass)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    ExecutionGraph g = single_stage_graph(hw);
    const auto base =
        estimate_throughput(g, hw, test::mtu_traffic(10.0)).capacity;

    const auto passes = unroll_recirculation(g, *g.find_vertex("cores"), 1);
    ASSERT_EQ(passes.size(), 1u);
    EXPECT_NO_THROW(g.validate(hw));
    const auto est = estimate_throughput(g, hw, test::mtu_traffic(10.0));
    // Two passes share the cores: each pass owns gamma = 0.5, so the
    // data-plane capacity halves.
    EXPECT_NEAR(est.capacity.bits_per_sec(), 0.5 * base.bits_per_sec(),
                1.0);
}

TEST(Recirculation, LatencyGrowsWithPasses)
{
    const HardwareModel hw = small_nic();
    ExecutionGraph one_pass = single_stage_graph(hw);
    ExecutionGraph three_pass = single_stage_graph(hw);
    unroll_recirculation(three_pass, *three_pass.find_vertex("cores"), 2);
    const auto t = test::mtu_traffic(0.5); // light load: compute dominates
    const auto a = estimate_latency(one_pass, hw, t);
    const auto b = estimate_latency(three_pass, hw, t);
    // Three passes at one third of the IP each: per-pass compute triples
    // and there are three of them -> roughly 9x the compute time.
    EXPECT_GT(b.mean.seconds(), 5.0 * a.mean.seconds());
    ASSERT_EQ(b.paths.size(), 1u);
    EXPECT_EQ(b.paths[0].hops.size(), 4u); // ingress + 3 passes
}

TEST(Recirculation, OutEdgesMoveToLastPass)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    ExecutionGraph g = test::two_stage_graph(hw);
    const auto target = *g.find_vertex("cores");
    const auto passes = unroll_recirculation(g, target, 2);
    // The original vertex now feeds pass 2; accel receives from pass 3.
    EXPECT_EQ(g.out_edges(target).size(), 1u);
    const auto accel = *g.find_vertex("accel");
    const auto in_edges = g.in_edges(accel);
    ASSERT_EQ(in_edges.size(), 1u);
    EXPECT_EQ(g.edge(in_edges[0]).from, passes.back());
    EXPECT_NO_THROW(g.validate(hw));
}

TEST(Recirculation, Validation)
{
    const HardwareModel hw = small_nic();
    ExecutionGraph g = single_stage_graph(hw);
    EXPECT_THROW(
        unroll_recirculation(g, *g.find_vertex("cores"), 0),
        std::invalid_argument);
    EXPECT_THROW(
        unroll_recirculation(g, g.ingress_vertices()[0], 1),
        std::invalid_argument);
}

} // namespace
} // namespace lognic::core
