#include "lognic/core/model.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace lognic::core {
namespace {

using test::single_stage_graph;
using test::small_nic;

TEST(Model, SingleClassMatchesDirectEstimates)
{
    const Model model(small_nic());
    const ExecutionGraph g = single_stage_graph(model.hardware());
    const auto traffic = test::mtu_traffic(10.0);
    const Report rep = model.estimate(g, traffic);
    const auto direct_t = estimate_throughput(g, model.hardware(), traffic);
    const auto direct_l = estimate_latency(g, model.hardware(), traffic);
    EXPECT_DOUBLE_EQ(rep.throughput.capacity.bits_per_sec(),
                     direct_t.capacity.bits_per_sec());
    EXPECT_DOUBLE_EQ(rep.latency.mean.seconds(), direct_l.mean.seconds());
}

TEST(Model, MixedTrafficCapacityIsHarmonicInClassCapacities)
{
    const Model model(small_nic(Bandwidth::from_gbps(1000.0)));
    const ExecutionGraph g = single_stage_graph(model.hardware());
    const auto mixed = TrafficProfile::mixed(
        {{Bytes{64.0}, 0.5}, {Bytes{1500.0}, 0.5}},
        Bandwidth::from_gbps(10.0));
    const auto rep = model.throughput(g, mixed);
    ASSERT_EQ(rep.per_class.size(), 2u);
    // Both classes bind on the same IP engine here, so the mixed capacity
    // is the weighted harmonic mean of the per-class capacities: each
    // ingress byte of class i costs 1/cap_i engine-seconds per second, so
    // the engine saturates at 1 / sum(w_i / cap_i). The arithmetic mean
    // would describe two dedicated engine slices and overestimate.
    const double expected = 1.0
        / (0.5 / rep.per_class[0].capacity.bits_per_sec()
           + 0.5 / rep.per_class[1].capacity.bits_per_sec());
    EXPECT_NEAR(rep.capacity.bits_per_sec(), expected, 1.0);
}

TEST(Model, MixedTrafficLatencyIsWeightedAverage)
{
    const Model model(small_nic());
    const ExecutionGraph g = single_stage_graph(model.hardware());
    const auto mixed = TrafficProfile::mixed(
        {{Bytes{64.0}, 0.25}, {Bytes{1500.0}, 0.75}},
        Bandwidth::from_gbps(1.0));
    const auto rep = model.latency(g, mixed);
    ASSERT_EQ(rep.per_class.size(), 2u);
    const double expected = 0.25 * rep.per_class[0].mean.seconds()
        + 0.75 * rep.per_class[1].mean.seconds();
    EXPECT_NEAR(rep.mean.seconds(), expected, 1e-12);
}

TEST(Model, MixedClassesSeeTheirBandwidthShare)
{
    const Model model(small_nic());
    const ExecutionGraph g = single_stage_graph(model.hardware());
    // 90% of bytes are MTU: the 64 B class runs at a light 1 Gbps share and
    // must see near-zero queueing even when the total load is 10 Gbps.
    const auto mixed = TrafficProfile::mixed(
        {{Bytes{64.0}, 0.1}, {Bytes{1500.0}, 0.9}},
        Bandwidth::from_gbps(10.0));
    const auto rep = model.latency(g, mixed);
    const auto solo_light = model.latency(
        g, TrafficProfile::fixed(Bytes{64.0}, Bandwidth::from_gbps(1.0)));
    EXPECT_NEAR(rep.per_class[0].mean.micros(),
                solo_light.per_class[0].mean.micros(), 0.35);
}

TEST(Model, BottleneckPicksWorstClass)
{
    const Model model(small_nic());
    const ExecutionGraph g = single_stage_graph(model.hardware());
    const auto mixed = TrafficProfile::mixed(
        {{Bytes{64.0}, 0.5}, {Bytes{1500.0}, 0.5}},
        Bandwidth::from_gbps(10.0));
    const auto rep = model.throughput(g, mixed);
    // 64 B class is compute-bound far below the MTU class.
    EXPECT_EQ(rep.bottleneck().kind, TermKind::kIpCompute);
}

TEST(Model, EmptyReportBottleneckThrows)
{
    ThroughputReport empty;
    EXPECT_THROW(empty.bottleneck(), std::logic_error);
}

} // namespace
} // namespace lognic::core
