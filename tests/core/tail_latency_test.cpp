/**
 * @file
 * Tests for the p99 tail-latency extension: analytic checks against the
 * M/M/1 closed form and end-to-end validation against the simulator.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/latency_model.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::core {
namespace {

using test::mtu_traffic;
using test::single_stage_graph;
using test::small_nic;

TEST(TailLatency, SingleMm1StageMatchesClosedForm)
{
    // One M/M/1 stage: sojourn is exponential with the mean W, so
    // p99 = W * ln(100). The gamma moment match has shape exactly 1 here.
    const auto hw = small_nic();
    VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 2000; // effectively infinite
    const auto g = single_stage_graph(hw, p);
    const auto est = estimate_latency(g, hw, mtu_traffic(5.0));
    EXPECT_NEAR(est.p99.seconds(), est.mean.seconds() * std::log(100.0),
                0.01 * est.p99.seconds());
}

TEST(TailLatency, P99AboveMean)
{
    const auto hw = small_nic();
    const auto g = test::two_stage_graph(hw);
    const auto est = estimate_latency(g, hw, mtu_traffic(15.0));
    EXPECT_GT(est.p99.seconds(), est.mean.seconds());
    EXPECT_LT(est.p99.seconds(), 10.0 * est.mean.seconds());
}

TEST(TailLatency, DeterministicOverheadShiftsNotStretches)
{
    const auto hw = small_nic();
    VertexParams base;
    base.parallelism = 1;
    VertexParams shifted = base;
    shifted.overhead = Seconds::from_micros(50.0);
    const auto est_a =
        estimate_latency(single_stage_graph(hw, base), hw, mtu_traffic(5.0));
    const auto est_b = estimate_latency(single_stage_graph(hw, shifted), hw,
                                        mtu_traffic(5.0));
    // A pure deterministic delay moves the whole distribution.
    EXPECT_NEAR(est_b.p99.seconds() - est_a.p99.seconds(), 50e-6, 1e-7);
}

TEST(TailLatency, MatchesSimulatedP99SingleEngine)
{
    const auto hw = small_nic();
    VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 256;
    const auto g = single_stage_graph(hw, p);
    const auto traffic = mtu_traffic(6.0); // rho ~ 0.69
    const auto est = estimate_latency(g, hw, traffic);
    sim::SimOptions opts;
    opts.duration = 0.5;
    opts.seed = 4;
    const auto res = sim::simulate(hw, g, traffic, opts);
    EXPECT_NEAR(res.p99_latency.seconds(), est.p99.seconds(),
                0.12 * est.p99.seconds());
}

TEST(TailLatency, MatchesSimulatedP99TwoStages)
{
    // Two stochastic stages: the gamma moment match is an approximation;
    // it must still land within ~25% of the simulated tail.
    const auto hw = small_nic();
    const auto g = test::two_stage_graph(hw);
    const auto traffic = mtu_traffic(14.0);
    const auto est = estimate_latency(g, hw, traffic);
    sim::SimOptions opts;
    opts.duration = 0.3;
    opts.seed = 8;
    const auto res = sim::simulate(hw, g, traffic, opts);
    EXPECT_NEAR(res.p99_latency.seconds(), est.p99.seconds(),
                0.25 * est.p99.seconds());
}

TEST(TailLatency, LowVariabilityEnginesTightenTheTail)
{
    // The same operating point with deterministic-ish service has a much
    // shorter tail: scv drives both the P-K wait and the tail spread.
    auto make_hw = [](double scv) {
        core::HardwareModel hw("scv-nic", Bandwidth::from_gbps(100.0),
                               Bandwidth::from_gbps(80.0),
                               Bandwidth::from_gbps(25.0));
        core::IpSpec ip;
        ip.name = "cores";
        ip.roofline = core::ExtendedRoofline(
            core::ServiceModel{Seconds::from_micros(1.0),
                               Bandwidth::from_gigabytes_per_sec(4.0)},
            {});
        ip.max_engines = 1;
        ip.default_queue_capacity = 256;
        ip.service_scv = scv;
        hw.add_ip(ip);
        return hw;
    };
    const auto hw_exp = make_hw(1.0);
    const auto hw_det = make_hw(0.05);
    const auto g_exp = single_stage_graph(hw_exp);
    const auto g_det = single_stage_graph(hw_det);
    const auto traffic = mtu_traffic(6.0);
    const auto est_exp = estimate_latency(g_exp, hw_exp, traffic);
    const auto est_det = estimate_latency(g_det, hw_det, traffic);
    EXPECT_LT(est_det.mean.seconds(), est_exp.mean.seconds());
    EXPECT_LT(est_det.p99.seconds(), 0.8 * est_exp.p99.seconds());

    // And the simulator agrees with the direction.
    sim::SimOptions opts;
    opts.duration = 0.2;
    const auto sim_exp = sim::simulate(hw_exp, g_exp, traffic, opts);
    const auto sim_det = sim::simulate(hw_det, g_det, traffic, opts);
    EXPECT_LT(sim_det.p99_latency.seconds(),
              sim_exp.p99_latency.seconds());
    EXPECT_NEAR(sim_det.mean_latency.seconds(), est_det.mean.seconds(),
                0.15 * est_det.mean.seconds());
}

} // namespace
} // namespace lognic::core
