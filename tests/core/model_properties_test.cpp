/**
 * @file
 * Property sweeps over the model's invariants: monotonicity in every
 * resource knob, composition rules for mixed traffic, and internal
 * consistency between the throughput and latency sides.
 */
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/model.hpp"

namespace lognic::core {
namespace {

using test::single_stage_graph;
using test::small_nic;
using test::two_stage_graph;

class LoadSweep : public testing::TestWithParam<double>
{
};

TEST_P(LoadSweep, AchievedNeverExceedsOfferOrCapacity)
{
    const Model model(small_nic());
    const auto g = two_stage_graph(model.hardware());
    const auto traffic = test::mtu_traffic(GetParam());
    const auto rep = model.throughput(g, traffic);
    EXPECT_LE(rep.achieved.bits_per_sec(),
              traffic.ingress_bandwidth().bits_per_sec() + 1.0);
    EXPECT_LE(rep.achieved.bits_per_sec(),
              rep.capacity.bits_per_sec() + 1.0);
}

TEST_P(LoadSweep, CapacityIndependentOfOfferedLoad)
{
    const Model model(small_nic());
    const auto g = two_stage_graph(model.hardware());
    const auto at_load =
        model.throughput(g, test::mtu_traffic(GetParam()));
    const auto at_one = model.throughput(g, test::mtu_traffic(1.0));
    EXPECT_DOUBLE_EQ(at_load.capacity.bits_per_sec(),
                     at_one.capacity.bits_per_sec());
}

TEST_P(LoadSweep, GoodputBoundedByOfferAndNonNegative)
{
    const Model model(small_nic());
    const auto g = two_stage_graph(model.hardware());
    const auto rep = model.latency(g, test::mtu_traffic(GetParam()));
    const double goodput = rep.per_class[0].goodput.bits_per_sec();
    EXPECT_GE(goodput, 0.0);
    EXPECT_LE(goodput,
              std::min(GetParam() * 1e9,
                       model.hardware().line_rate().bits_per_sec())
                  + 1.0);
}

TEST_P(LoadSweep, TailAboveMean)
{
    const Model model(small_nic());
    const auto g = two_stage_graph(model.hardware());
    const auto rep = model.latency(g, test::mtu_traffic(GetParam()));
    EXPECT_GE(rep.per_class[0].p99.seconds(),
              rep.per_class[0].mean.seconds());
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweep,
                         testing::Values(0.5, 2.0, 8.0, 16.0, 24.0, 40.0,
                                         90.0));

TEST(ModelProperties, LatencyMonotoneInLoad)
{
    const Model model(small_nic());
    const auto g = single_stage_graph(model.hardware());
    double prev = 0.0;
    for (double load : {0.5, 4.0, 10.0, 18.0, 24.0}) {
        const double mean =
            model.latency(g, test::mtu_traffic(load)).mean.seconds();
        EXPECT_GE(mean, prev) << load;
        prev = mean;
    }
}

TEST(ModelProperties, CapacityMonotoneInParallelism)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    const Model model(hw);
    double prev = 0.0;
    for (std::uint32_t d = 1; d <= 8; ++d) {
        VertexParams p;
        p.parallelism = d;
        const double cap =
            model.throughput(single_stage_graph(hw, p),
                             test::mtu_traffic(1.0))
                .capacity.bits_per_sec();
        EXPECT_GT(cap, prev) << d;
        prev = cap;
    }
}

TEST(ModelProperties, CapacityLinearInPartition)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    const Model model(hw);
    VertexParams base;
    base.partition = 1.0;
    const double full =
        model.throughput(single_stage_graph(hw, base),
                         test::mtu_traffic(1.0))
            .capacity.bits_per_sec();
    for (double gamma : {0.25, 0.5, 0.75}) {
        VertexParams p;
        p.partition = gamma;
        const double cap =
            model.throughput(single_stage_graph(hw, p),
                             test::mtu_traffic(1.0))
                .capacity.bits_per_sec();
        EXPECT_NEAR(cap, gamma * full, 1.0) << gamma;
    }
}

TEST(ModelProperties, MixedCapacityIsHarmonicWeightedCombination)
{
    const Model model(small_nic(Bandwidth::from_gbps(1000.0)));
    const auto g = single_stage_graph(model.hardware());
    for (double w64 : {0.2, 0.5, 0.8}) {
        const auto mixed = TrafficProfile::mixed(
            {{Bytes{64.0}, w64}, {Bytes{1500.0}, 1.0 - w64}},
            Bandwidth::from_gbps(10.0));
        const auto rep = model.throughput(g, mixed);
        // Single shared bottleneck: mixed capacity is the weighted
        // harmonic mean of the per-class capacities (see Model test
        // MixedTrafficCapacityIsHarmonicInClassCapacities). It must sit
        // between the two class capacities and below the arithmetic mean
        // the old aggregation used.
        const double cap0 = rep.per_class[0].capacity.bits_per_sec();
        const double cap1 = rep.per_class[1].capacity.bits_per_sec();
        const double harmonic = 1.0 / (w64 / cap0 + (1.0 - w64) / cap1);
        const double arithmetic = w64 * cap0 + (1.0 - w64) * cap1;
        EXPECT_NEAR(rep.capacity.bits_per_sec(), harmonic, 1.0) << w64;
        EXPECT_LT(rep.capacity.bits_per_sec(), arithmetic) << w64;
        EXPECT_GE(rep.capacity.bits_per_sec(), std::min(cap0, cap1))
            << w64;
    }
}

TEST(ModelProperties, AccelerationScalesComputeOnly)
{
    const Model model(small_nic());
    const auto traffic = test::mtu_traffic(0.1); // negligible queueing
    VertexParams slow;
    VertexParams fast;
    fast.acceleration = 4.0;
    const auto a =
        model.latency(single_stage_graph(model.hardware(), slow), traffic);
    const auto b =
        model.latency(single_stage_graph(model.hardware(), fast), traffic);
    // Compute is 1.375 us; 4x acceleration removes 3/4 of it.
    EXPECT_NEAR(a.mean.seconds() - b.mean.seconds(), 1.375e-6 * 0.75,
                5e-8);
}

TEST(ModelProperties, QueueCapacityTradesDropsForDelay)
{
    // Overloaded vertex: growing N raises delay and lowers drops,
    // monotonically on both axes.
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    const Model model(hw);
    double prev_delay = 0.0;
    double prev_drop = 1.0;
    for (std::uint32_t n : {2u, 4u, 8u, 16u, 32u}) {
        VertexParams p;
        p.parallelism = 1;
        p.queue_capacity = n;
        const auto rep = model.latency(single_stage_graph(hw, p),
                                       test::mtu_traffic(20.0));
        EXPECT_GT(rep.mean.seconds(), prev_delay) << n;
        EXPECT_LT(rep.max_drop_probability, prev_drop) << n;
        prev_delay = rep.mean.seconds();
        prev_drop = rep.max_drop_probability;
    }
}

TEST(ModelProperties, InterfaceBandwidthMonotone)
{
    // Raising a shared-medium bandwidth can only help capacity.
    double prev = 0.0;
    for (double intf : {20.0, 40.0, 80.0, 160.0}) {
        HardwareModel hw("x", Bandwidth::from_gbps(intf),
                         Bandwidth::from_gbps(80.0),
                         Bandwidth::from_gbps(1000.0));
        IpSpec ip;
        ip.name = "cores";
        ip.roofline = ExtendedRoofline(
            ServiceModel{Seconds::from_micros(0.1),
                         Bandwidth::from_gigabytes_per_sec(8.0)},
            {});
        ip.max_engines = 8;
        hw.add_ip(ip);
        ExecutionGraph g("chain");
        const auto in = g.add_ingress();
        const auto out = g.add_egress();
        const auto v = g.add_ip_vertex("cores", 0);
        g.add_edge(in, v, EdgeParams{1.0, 1.0, 0.0, {}});
        g.add_edge(v, out, EdgeParams{1.0, 1.0, 0.0, {}});
        const double cap = Model(hw)
                               .throughput(g, test::mtu_traffic(1.0))
                               .capacity.bits_per_sec();
        EXPECT_GE(cap, prev);
        prev = cap;
    }
}

TEST(ModelProperties, EstimatesAreDeterministic)
{
    const Model model(small_nic());
    const auto g = two_stage_graph(model.hardware());
    const auto traffic = test::mtu_traffic(12.0);
    const auto a = model.estimate(g, traffic);
    const auto b = model.estimate(g, traffic);
    EXPECT_DOUBLE_EQ(a.throughput.capacity.bits_per_sec(),
                     b.throughput.capacity.bits_per_sec());
    EXPECT_DOUBLE_EQ(a.latency.mean.seconds(), b.latency.mean.seconds());
    EXPECT_DOUBLE_EQ(a.latency.per_class[0].p99.seconds(),
                     b.latency.per_class[0].p99.seconds());
}

} // namespace
} // namespace lognic::core
