#include "lognic/core/throughput_model.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/extensions.hpp"

namespace lognic::core {
namespace {

using test::mtu_traffic;
using test::single_stage_graph;
using test::small_nic;
using test::two_stage_graph;

TEST(ThroughputModel, ComputeBoundSingleStage)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    const ExecutionGraph g = single_stage_graph(hw);
    const auto est = estimate_throughput(g, hw, mtu_traffic(10.0));
    // 8 engines, t(1500 B) = 1 us + 0.375 us = 1.375 us -> 69.8 Gbps.
    const double expected = 8.0 * 1500.0 * 8.0 / 1.375e-6 / 1e9;
    EXPECT_NEAR(est.capacity.gbps(), expected, 0.01);
    EXPECT_EQ(est.bottleneck.kind, TermKind::kIpCompute);
    EXPECT_EQ(est.bottleneck.name, "cores");
}

TEST(ThroughputModel, LineRateBindsWhenComputeIsAmple)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(25.0));
    const ExecutionGraph g = single_stage_graph(hw);
    const auto est = estimate_throughput(g, hw, mtu_traffic(10.0));
    EXPECT_NEAR(est.capacity.gbps(), 25.0, 1e-9);
    EXPECT_EQ(est.bottleneck.kind, TermKind::kLineRate);
}

TEST(ThroughputModel, AchievedIsMinOfOfferAndCapacity)
{
    const HardwareModel hw = small_nic();
    const ExecutionGraph g = single_stage_graph(hw);
    const auto low = estimate_throughput(g, hw, mtu_traffic(5.0));
    EXPECT_NEAR(low.achieved.gbps(), 5.0, 1e-9);
    const auto high = estimate_throughput(g, hw, mtu_traffic(100.0));
    EXPECT_NEAR(high.achieved.gbps(), high.capacity.gbps(), 1e-9);
}

TEST(ThroughputModel, ParallelismScalesCapacity)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    VertexParams p1;
    p1.parallelism = 1;
    VertexParams p4;
    p4.parallelism = 4;
    const auto est1 = estimate_throughput(single_stage_graph(hw, p1), hw,
                                          mtu_traffic(10.0));
    const auto est4 = estimate_throughput(single_stage_graph(hw, p4), hw,
                                          mtu_traffic(10.0));
    EXPECT_NEAR(est4.capacity.bits_per_sec(),
                4.0 * est1.capacity.bits_per_sec(), 1.0);
}

TEST(ThroughputModel, PartitionScalesCapacity)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    VertexParams half;
    half.partition = 0.5;
    const auto full = estimate_throughput(single_stage_graph(hw), hw,
                                          mtu_traffic(10.0));
    const auto part = estimate_throughput(single_stage_graph(hw, half), hw,
                                          mtu_traffic(10.0));
    EXPECT_NEAR(part.capacity.bits_per_sec(),
                0.5 * full.capacity.bits_per_sec(), 1.0);
}

TEST(ThroughputModel, SharedMemoryTermUsesAggregateBeta)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    // Two-stage graph moves each packet once over memory (beta = 1) on the
    // cores->accel edge; add beta on the accel->egress edge too.
    ExecutionGraph g = two_stage_graph(hw);
    g.edge(2).params.beta = 1.0;
    const auto est = estimate_throughput(g, hw, mtu_traffic(10.0));
    bool found = false;
    for (const auto& t : est.terms) {
        if (t.kind == TermKind::kMemory) {
            EXPECT_NEAR(t.limit.gbps(), 80.0 / 2.0, 1e-9);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ThroughputModel, InterfaceTermAppearsOnlyWithAlpha)
{
    const HardwareModel hw = small_nic();
    const ExecutionGraph g = single_stage_graph(hw);
    const auto est = estimate_throughput(g, hw, mtu_traffic(10.0));
    for (const auto& t : est.terms)
        EXPECT_NE(t.kind, TermKind::kInterface);
}

TEST(ThroughputModel, DedicatedEdgeBecomesTerm)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    ExecutionGraph g = single_stage_graph(hw);
    g.edge(0).params.dedicated_bw = Bandwidth::from_gbps(7.0);
    const auto est = estimate_throughput(g, hw, mtu_traffic(10.0));
    EXPECT_NEAR(est.capacity.gbps(), 7.0, 1e-9);
    EXPECT_EQ(est.bottleneck.kind, TermKind::kEdge);
}

TEST(ThroughputModel, DeltaScalesEdgeDemand)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    ExecutionGraph g = single_stage_graph(hw);
    g.edge(0).params.dedicated_bw = Bandwidth::from_gbps(7.0);
    g.edge(0).params.delta = 0.5; // only half the traffic crosses this edge
    g.edge(1).params.delta = 0.5;
    const auto est = estimate_throughput(g, hw, mtu_traffic(10.0));
    // The edge allows 7 / 0.5 = 14 Gbps of total ingress W.
    EXPECT_NEAR(est.capacity.gbps(), 14.0, 1e-9);
}

TEST(ThroughputModel, FanOutSplitsLoad)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    // Two parallel single-core stages, 50/50 split: capacity doubles
    // compared to one stage at parallelism 1.
    ExecutionGraph g("fanout");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    VertexParams one;
    one.parallelism = 1;
    const auto a = g.add_ip_vertex("a", *hw.find_ip("cores"), one);
    const auto b = g.add_ip_vertex("b", *hw.find_ip("cores"), one);
    g.add_edge(in, a, EdgeParams{0.5, 0, 0, {}});
    g.add_edge(in, b, EdgeParams{0.5, 0, 0, {}});
    g.add_edge(a, out, EdgeParams{0.5, 0, 0, {}});
    g.add_edge(b, out, EdgeParams{0.5, 0, 0, {}});
    const auto est = estimate_throughput(g, hw, mtu_traffic(10.0));

    VertexParams p1;
    p1.parallelism = 1;
    const auto single = estimate_throughput(single_stage_graph(hw, p1), hw,
                                            mtu_traffic(10.0));
    EXPECT_NEAR(est.capacity.bits_per_sec(),
                2.0 * single.capacity.bits_per_sec(), 1.0);
}

TEST(ThroughputModel, RateLimiterBinds)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    ExecutionGraph g = single_stage_graph(hw);
    insert_rate_limiter(g, *g.find_vertex("cores"),
                        Bandwidth::from_gbps(3.0), 8);
    const auto est = estimate_throughput(g, hw, mtu_traffic(10.0));
    EXPECT_NEAR(est.capacity.gbps(), 3.0, 1e-9);
    EXPECT_EQ(est.bottleneck.kind, TermKind::kRateLimit);
}

TEST(ThroughputModel, TermsSortedAscending)
{
    const HardwareModel hw = small_nic();
    const auto est = estimate_throughput(two_stage_graph(hw), hw,
                                         mtu_traffic(10.0));
    for (std::size_t i = 1; i < est.terms.size(); ++i)
        EXPECT_LE(est.terms[i - 1].limit.bits_per_sec(),
                  est.terms[i].limit.bits_per_sec());
}

TEST(ThroughputModel, SmallPacketsShrinkComputeCapacity)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    const ExecutionGraph g = single_stage_graph(hw);
    const auto small = estimate_throughput(
        g, hw, TrafficProfile::fixed(Bytes{64.0}, Bandwidth::from_gbps(10)));
    const auto large = estimate_throughput(g, hw, mtu_traffic(10.0));
    // Fixed per-packet cost dominates at 64 B.
    EXPECT_LT(small.capacity.bits_per_sec(),
              0.1 * large.capacity.bits_per_sec());
}

} // namespace
} // namespace lognic::core
