#include "lognic/core/optimizer.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"

namespace lognic::core {
namespace {

using test::small_nic;

/// Two parallel stages with capacity ratio 3:1 (engines); the knob is the
/// traffic split. Optimal throughput split sends 75% to the big stage.
ExecutionGraph
split_graph(const HardwareModel& hw, double to_a)
{
    ExecutionGraph g("split");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    VertexParams big;
    big.parallelism = 3;
    VertexParams small;
    small.parallelism = 1;
    const auto a = g.add_ip_vertex("a", *hw.find_ip("cores"), big);
    const auto b = g.add_ip_vertex("b", *hw.find_ip("cores"), small);
    g.add_edge(in, a, EdgeParams{to_a, 0, 0, {}});
    g.add_edge(in, b, EdgeParams{1.0 - to_a, 0, 0, {}});
    g.add_edge(a, out, EdgeParams{to_a, 0, 0, {}});
    g.add_edge(b, out, EdgeParams{1.0 - to_a, 0, 0, {}});
    return g;
}

void
apply_split(ExecutionGraph& g, const solver::Vector& x)
{
    const double s = x[0];
    g.edge(0).params.delta = s;
    g.edge(1).params.delta = 1.0 - s;
    g.edge(2).params.delta = s;
    g.edge(3).params.delta = 1.0 - s;
}

TEST(Optimizer, ContinuousSplitMaximizesThroughput)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    ContinuousProblem problem;
    problem.graph = split_graph(hw, 0.5);
    problem.traffic = test::mtu_traffic(10.0);
    problem.apply = [](ExecutionGraph& g, TrafficProfile&,
                       const solver::Vector& x) { apply_split(g, x); };
    problem.objective = Objective::kMaximizeThroughput;
    problem.bounds.lower = {0.05};
    problem.bounds.upper = {0.95};
    problem.x0 = {0.3};

    const Optimizer opt(hw);
    const auto res = opt.optimize(problem);
    EXPECT_NEAR(res.x[0], 0.75, 0.01);
}

TEST(Optimizer, ContinuousWithConstraint)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    ContinuousProblem problem;
    problem.graph = split_graph(hw, 0.5);
    problem.traffic = test::mtu_traffic(10.0);
    problem.apply = [](ExecutionGraph& g, TrafficProfile&,
                       const solver::Vector& x) { apply_split(g, x); };
    problem.objective = Objective::kMaximizeThroughput;
    // Cap the split below the unconstrained optimum of 0.75.
    problem.constraints.push_back([](const Report&) { return 0.0; });
    problem.bounds.lower = {0.05};
    problem.bounds.upper = {0.60};
    problem.x0 = {0.3};

    const Optimizer opt(hw);
    const auto res = opt.optimize(problem);
    EXPECT_TRUE(res.feasible);
    EXPECT_NEAR(res.x[0], 0.60, 0.02);
}

TEST(Optimizer, DiscreteParallelismSearch)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    // One stage, knob = engine count 1..8; capacity is monotone in engines,
    // so maximize-throughput must pick 8.
    DiscreteProblem problem;
    problem.graph = test::single_stage_graph(hw);
    problem.traffic = test::mtu_traffic(10.0);
    problem.apply = [](ExecutionGraph& g, TrafficProfile&,
                       const solver::IntVector& x) {
        g.vertex(*g.find_vertex("cores")).params.parallelism =
            static_cast<std::uint32_t>(x[0]);
    };
    problem.objective = Objective::kMaximizeThroughput;
    problem.ranges = {{1, 8, 1}};

    const Optimizer opt(hw);
    const auto res = opt.optimize(problem);
    EXPECT_EQ(res.xi, (solver::IntVector{8}));
    EXPECT_EQ(res.evaluations, 8u + 1u); // sweep + final re-evaluation
}

TEST(Optimizer, DiscreteConstraintRejectsCandidates)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    DiscreteProblem problem;
    problem.graph = test::single_stage_graph(hw);
    problem.traffic = test::mtu_traffic(10.0);
    problem.apply = [](ExecutionGraph& g, TrafficProfile&,
                       const solver::IntVector& x) {
        g.vertex(*g.find_vertex("cores")).params.parallelism =
            static_cast<std::uint32_t>(x[0]);
    };
    problem.objective = Objective::kMaximizeThroughput;
    // Reject capacities above 30 Gbps (so high engine counts are culled).
    problem.constraints.push_back([](const Report& r) {
        return r.throughput.capacity.gbps() - 30.0;
    });
    problem.ranges = {{1, 8, 1}};

    const Optimizer opt(hw);
    const auto res = opt.optimize(problem);
    EXPECT_TRUE(res.feasible);
    EXPECT_LE(res.report.throughput.capacity.gbps(), 30.0);
    EXPECT_EQ(res.xi, (solver::IntVector{3})); // 3 * 8.7 Gbps = 26.2
}

TEST(Optimizer, DiscreteMinimizeLatencyPrefersMoreEngines)
{
    const HardwareModel hw = small_nic(Bandwidth::from_gbps(1000.0));
    DiscreteProblem problem;
    problem.graph = test::single_stage_graph(hw);
    problem.traffic = test::mtu_traffic(20.0);
    problem.apply = [](ExecutionGraph& g, TrafficProfile&,
                       const solver::IntVector& x) {
        g.vertex(*g.find_vertex("cores")).params.parallelism =
            static_cast<std::uint32_t>(x[0]);
    };
    problem.objective = Objective::kMinimizeLatency;
    problem.ranges = {{1, 8, 1}};
    const Optimizer opt(hw);
    const auto res = opt.optimize(problem);
    // At 20 Gbps offered, 1 engine (8.7 Gbps) is saturated; queueing pushes
    // the optimum to the maximum parallelism.
    EXPECT_EQ(res.xi, (solver::IntVector{8}));
}

TEST(Optimizer, MissingPiecesThrow)
{
    const HardwareModel hw = small_nic();
    const Optimizer opt(hw);
    ContinuousProblem c;
    EXPECT_THROW(opt.optimize(c), std::invalid_argument);
    DiscreteProblem d;
    EXPECT_THROW(opt.optimize(d), std::invalid_argument);
}

} // namespace
} // namespace lognic::core
