/**
 * @file
 * Feasibility pruning: domain narrowing, the reject() soundness contract
 * (every pruned config is one the oracle would mark infeasible, with the
 * same constraint-violation value), byte-identical frontier reports with
 * pruning on/off at any thread count, the <= 50% solve budget on a
 * binding constraint, and the incremental-Materializer bit-identity the
 * batch evaluator relies on.
 */
#include "lognic/dse/prune.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/dse/explorer.hpp"
#include "lognic/dse/report.hpp"
#include "lognic/io/serialize.hpp"

using namespace lognic;
using dse::Config;
using dse::Constraint;
using dse::DesignSpace;
using dse::ExploreOptions;
using dse::PruneMode;
using dse::Pruner;

namespace {

io::Scenario
nf_base(double rate_gbps = 50.0)
{
    auto built = apps::make_nf_chain(apps::arm_only_placement());
    return io::Scenario{
        std::move(built.hw), std::move(built.graph),
        core::TrafficProfile::fixed(Bytes{1500.0},
                                    Bandwidth::from_gbps(rate_gbps))};
}

/// 16 placements x 4 line rates x 5 offered rates = 320 configs; the
/// ARM-only chain tops out near 10 Gb/s, full offload near 21.7, so a
/// 15 Gb/s floor structurally kills well over half the grid.
DesignSpace
constrained_space()
{
    DesignSpace space(nf_base());
    space.add("placement.nf_chain", {});
    space.add("line_rate_gbps", {10.0, 25.0, 50.0, 100.0});
    space.add("traffic.rate_gbps", {5.0, 10.0, 25.0, 50.0, 100.0});
    return space;
}

Constraint
tput_floor(double lower)
{
    Constraint con;
    con.metric = "throughput_gbps";
    con.lower = lower;
    return con;
}

std::vector<dse::ObjectiveSpec>
tput_p99()
{
    return {dse::objective_from_name("throughput_gbps"),
            dse::objective_from_name("p99_latency_us")};
}

/// Every config of the space, odometer order (last knob fastest), the
/// same enumeration the exhaustive strategy uses.
std::vector<Config>
all_configs(const DesignSpace& space)
{
    std::vector<Config> out;
    Config c(space.size(), 0);
    while (true) {
        out.push_back(c);
        std::size_t k = space.size();
        while (k > 0) {
            --k;
            if (++c[k] < space.knob(k).values.size())
                break;
            c[k] = 0;
            if (k == 0)
                return out;
        }
    }
}

} // namespace

TEST(PruneMode, NamesRoundTrip)
{
    for (PruneMode m :
         {PruneMode::kOff, PruneMode::kOn, PruneMode::kExplain})
        EXPECT_EQ(dse::prune_mode_from_name(dse::prune_mode_name(m)), m);
    EXPECT_THROW(dse::prune_mode_from_name("bogus"), std::invalid_argument);
}

TEST(Pruner, NarrowsOfferedRateDomainAgainstFloor)
{
    DesignSpace space(nf_base());
    space.add("placement.nf_chain", {});
    space.add("traffic.rate_gbps", {5.0, 10.0, 50.0});

    Pruner pruner(space, {tput_floor(15.0)});
    // Offered 5 and 10 Gb/s can never reach a 15 Gb/s throughput floor.
    EXPECT_TRUE(pruner.level_removed(1, 0));
    EXPECT_TRUE(pruner.level_removed(1, 1));
    EXPECT_FALSE(pruner.level_removed(1, 2));
    EXPECT_GE(pruner.stats().levels_removed, 2u);
    EXPECT_GE(pruner.stats().fixpoint_rounds, 1u);

    const std::string narration = pruner.explain();
    EXPECT_NE(narration.find("constraint throughput_gbps"),
              std::string::npos);
    EXPECT_NE(narration.find("level(s) survive"), std::string::npos);
    EXPECT_NE(narration.find("removed"), std::string::npos);
}

TEST(Pruner, CostRejectionIsExact)
{
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps", {10.0, 20.0, 40.0}, /*cost_weight=*/1.5);

    Constraint budget;
    budget.metric = "cost";
    budget.upper = 40.0;
    Pruner pruner(space, {budget});

    // 40 * 1.5 = 60 > 40: provably over budget, with the oracle's own
    // cost double in the reason.
    const auto r = pruner.reject({2});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->metric, "cost");
    EXPECT_TRUE(r->exact);
    EXPECT_EQ(r->value, space.cost({2}));
    EXPECT_EQ(r->why, "pruned: constraint violated: cost = "
                          + io::format_double(space.cost({2})));
    EXPECT_FALSE(pruner.reject({0}).has_value());
    EXPECT_TRUE(pruner.level_removed(0, 2));
}

TEST(Pruner, LatencyConstraintsAreNeverPruned)
{
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps", {10.0, 50.0});
    Constraint lat;
    lat.metric = "p99_latency_us";
    lat.upper = 0.0; // unsatisfiable — but it needs a solve to prove
    Pruner pruner(space, {lat});
    EXPECT_FALSE(pruner.reject({0}).has_value());
    EXPECT_FALSE(pruner.reject({1}).has_value());
    EXPECT_EQ(pruner.stats().levels_removed, 0u);
}

TEST(Pruner, RejectionsAgreeWithTheOracleEverywhere)
{
    // The soundness sweep: over every config of the constrained space,
    // a reject() must coincide with an oracle-infeasible evaluation, and
    // an exact rejection must carry the oracle's own violation message.
    const DesignSpace space = constrained_space();
    const auto objectives = tput_p99();
    const std::vector<Constraint> constraints{tput_floor(15.0)};
    Pruner pruner(space, constraints);

    std::size_t rejected = 0;
    for (const Config& c : all_configs(space)) {
        const auto r = pruner.reject(c);
        if (!r)
            continue;
        ++rejected;
        const auto eval =
            dse::evaluate_config(space, c, objectives, constraints);
        ASSERT_FALSE(eval.feasible);
        EXPECT_EQ(r->metric, "throughput_gbps");
        if (r->exact) {
            EXPECT_EQ(r->why, "pruned: " + eval.why);
        }
    }
    // The floor is binding: over half the 320-config grid is provably
    // infeasible from the term tables alone.
    EXPECT_GT(rejected, all_configs(space).size() / 2);
}

TEST(Pruner, PrunedReportIsByteIdenticalAndHalvesSolves)
{
    const DesignSpace space = constrained_space();
    const auto objectives = tput_p99();
    const std::vector<Constraint> constraints{tput_floor(15.0)};

    const auto run = [&](PruneMode mode, std::size_t threads) {
        ExploreOptions opts;
        opts.des.enabled = false;
        opts.exhaustive_limit = 1024;
        opts.prune = mode;
        opts.threads = threads;
        return dse::explore(space, objectives, constraints, opts);
    };

    const auto off = run(PruneMode::kOff, 1);
    const std::string want = dse::frontier_report_to_json(off).dump(-1);
    EXPECT_EQ(off.solves, 320u);
    EXPECT_EQ(off.pruned, 0u);
    ASSERT_FALSE(off.frontier.empty());

    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const auto on = run(PruneMode::kOn, threads);
        EXPECT_EQ(dse::frontier_report_to_json(on).dump(-1), want)
            << "threads " << threads;
        EXPECT_LE(on.solves, off.solves / 2) << "threads " << threads;
        EXPECT_EQ(on.solves + on.pruned, off.solves);
        EXPECT_GT(on.pruned_levels, 0u);
    }

    // kExplain behaves like kOn and narrates through prune_log.
    ExploreOptions opts;
    opts.des.enabled = false;
    opts.exhaustive_limit = 1024;
    opts.prune = PruneMode::kExplain;
    std::string narration;
    opts.prune_log = [&](const std::string& m) { narration = m; };
    const auto explain = dse::explore(space, objectives, constraints, opts);
    EXPECT_EQ(dse::frontier_report_to_json(explain).dump(-1), want);
    EXPECT_NE(narration.find("constraint throughput_gbps"),
              std::string::npos);
}

TEST(Pruner, OpaqueSpacesFallBackToCostOnlyPruning)
{
    // An unrecognized custom knob makes every capacity bound unusable;
    // throughput constraints must then never prune (soundness over
    // power), while exact cost pruning still works.
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps", {5.0, 50.0}, /*cost_weight=*/1.0);
    dse::Knob custom;
    custom.name = "custom.arbitrary";
    custom.values = {0.0, 1.0};
    custom.cost_weight = 100.0;
    custom.apply = [](io::Scenario&, double) {};
    space.add_custom(std::move(custom));

    Constraint budget;
    budget.metric = "cost";
    budget.upper = 60.0;
    Pruner pruner(space, {tput_floor(15.0), budget});

    // Offered 5 < 15 would be prunable with recognized paths — but the
    // custom knob could touch anything, so no throughput rejection.
    EXPECT_FALSE(pruner.reject({0, 0}).has_value());
    // Cost is declared per knob, not modeled: still exactly prunable.
    const auto r = pruner.reject({1, 1});
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->metric, "cost");
}

TEST(BatchEvaluator, IncrementalEvaluationIsBitIdenticalToFresh)
{
    // The batch evaluator patches one cached scenario per chunk instead
    // of rebuilding per config; results must be bit-identical to a fresh
    // evaluate_config at every config, at any thread count.
    const DesignSpace space = constrained_space();
    const auto objectives = tput_p99();
    const std::vector<Constraint> constraints{tput_floor(15.0)};
    const std::vector<Config> batch = all_configs(space);

    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        ExploreOptions opts;
        opts.des.enabled = false;
        opts.threads = threads;
        dse::BatchEvaluator ev(space, objectives, constraints, opts);
        const auto scored = ev.run_batch(batch);
        ASSERT_EQ(scored.size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            const auto fresh = dse::evaluate_config(space, batch[i],
                                                    objectives, constraints);
            ASSERT_EQ(scored[i].objectives.size(),
                      fresh.objectives.size());
            for (std::size_t o = 0; o < fresh.objectives.size(); ++o)
                EXPECT_EQ(scored[i].objectives[o], fresh.objectives[o])
                    << "config " << i << " objective " << o << " threads "
                    << threads;
            EXPECT_EQ(scored[i].feasible, fresh.feasible);
        }
        EXPECT_EQ(ev.solves(), batch.size());
    }
}
