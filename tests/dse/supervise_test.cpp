/**
 * @file
 * Kill-tolerant exploration supervision: ExploreJournal round-trips
 * bit-exactly, and an exploration killed after any checkpoint and
 * resumed produces a FrontierReport byte-identical to the uninterrupted
 * run — including the memo-cache counters in the report, which journal
 * replay must not perturb. The kill is simulated at the storage layer
 * exactly like tests/ckpt/resume_test.cpp: checkpoint after every
 * completion, clone the directory, delete generations newer than g.
 */
#include "lognic/dse/supervise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <string>
#include <unistd.h>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/ckpt/store.hpp"
#include "lognic/dse/report.hpp"
#include "lognic/io/checkpoint.hpp"

using namespace lognic;

namespace {

namespace fs = std::filesystem;

class TempDir {
  public:
    explicit TempDir(const std::string& tag)
        : path_((fs::temp_directory_path()
                 / ("lognic_dse_" + tag + "_" + std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

std::string
clone_killed_at(const std::string& src, const std::string& dst,
                std::uint64_t keep)
{
    fs::remove_all(dst);
    fs::create_directories(dst);
    for (const auto& entry : fs::directory_iterator(src))
        fs::copy(entry.path(), dst / entry.path().filename());
    ckpt::CheckpointStore probe(dst, dse::kExploreCheckpointKind,
                                ckpt::StoreOptions{1000});
    for (std::uint64_t g : probe.generations())
        if (g > keep)
            fs::remove(probe.path_for(g));
    return dst;
}

io::Scenario
nf_base()
{
    auto built = apps::make_nf_chain(apps::arm_only_placement());
    return io::Scenario{std::move(built.hw), std::move(built.graph),
                        core::TrafficProfile::fixed(
                            Bytes{1500.0}, Bandwidth::from_gbps(50.0))};
}

dse::DesignSpace
placement_space()
{
    dse::DesignSpace space(nf_base());
    space.add("placement.nf_chain", {});
    return space;
}

std::vector<dse::ObjectiveSpec>
tput_p99()
{
    return {dse::objective_from_name("throughput_gbps"),
            dse::objective_from_name("p99_latency_us")};
}

dse::ExploreOptions
fast_opts()
{
    dse::ExploreOptions opts;
    opts.des.replications = 1;
    opts.des.duration = 0.002;
    return opts;
}

} // namespace

TEST(ExploreJournal, BitExactThroughDumpAndParse)
{
    dse::ExploreJournal journal;

    dse::Evaluation good;
    good.objectives = {21.677419354838712, 4708.091500455128};
    journal.record_eval("cfg-a", good);

    dse::Evaluation bad;
    bad.objectives = {std::numeric_limits<double>::quiet_NaN(),
                      std::numeric_limits<double>::infinity()};
    bad.feasible = false;
    bad.finite = false;
    bad.why = "evaluation failed: \"quoted\" and\nnewline";
    journal.record_eval("cfg-b", bad);

    dse::DesValidation v;
    v.ok = true;
    v.seed = 0xbb40e38410af771aull;
    v.replications = 3;
    v.delivered_gbps = 21.558;
    v.mean_latency_us = 160.66507720949431;
    v.p99_latency_us = 184.7013804764558;
    v.drop_rate = 0.56529433642501503;
    v.throughput_disagreement = 0.0055394449781385989;
    v.p99_disagreement = -24.490288639479211;
    journal.record_des("cfg-a", v);

    const io::Json j = journal.to_json();
    dse::ExploreJournal back;
    back.load_json(io::Json::parse(j.dump(-1)));
    EXPECT_EQ(back.eval_count(), 2u);
    EXPECT_EQ(back.des_count(), 1u);
    // Re-serialization equality: every hex double/u64 survives untouched.
    EXPECT_EQ(back.to_json().dump(-1), j.dump(-1));

    dse::Evaluation eval_back;
    ASSERT_TRUE(back.lookup_eval("cfg-b", eval_back));
    EXPECT_TRUE(std::isnan(eval_back.objectives[0]));
    EXPECT_TRUE(std::isinf(eval_back.objectives[1]));
    dse::DesValidation des_back;
    ASSERT_TRUE(back.lookup_des("cfg-a", des_back));
    EXPECT_EQ(des_back.seed, v.seed);
    EXPECT_EQ(des_back.delivered_gbps, v.delivered_gbps);

    EXPECT_THROW(back.load_json(io::Json::parse("{\"evals\": 3}")),
                 std::runtime_error);
}

TEST(ExploreJournal, PrunedFlagRoundTripsAndDefaultsFalse)
{
    dse::ExploreJournal journal;
    dse::Evaluation pruned;
    pruned.objectives = {std::numeric_limits<double>::quiet_NaN(),
                         std::numeric_limits<double>::quiet_NaN()};
    pruned.feasible = false;
    pruned.pruned = true;
    pruned.why = "pruned: constraint violated: throughput_gbps = 5";
    journal.record_eval("cfg-pruned", pruned);
    dse::Evaluation solved;
    solved.objectives = {21.0, 4700.0};
    journal.record_eval("cfg-solved", solved);

    dse::ExploreJournal back;
    back.load_json(io::Json::parse(journal.to_json().dump(-1)));
    dse::Evaluation e;
    ASSERT_TRUE(back.lookup_eval("cfg-pruned", e));
    EXPECT_TRUE(e.pruned);
    EXPECT_FALSE(e.feasible);
    EXPECT_EQ(e.why, pruned.why);
    ASSERT_TRUE(back.lookup_eval("cfg-solved", e));
    EXPECT_FALSE(e.pruned);

    // A pre-pruning journal has no "pruned" field: every entry was a
    // real solve, and the parser must default accordingly.
    std::string legacy = journal.to_json().dump(-1);
    for (const std::string& needle :
         {std::string("\"pruned\":true,"), std::string("\"pruned\":false,")})
        for (std::size_t pos; (pos = legacy.find(needle))
                              != std::string::npos;)
            legacy.erase(pos, needle.size());
    ASSERT_EQ(legacy.find("\"pruned\":"), std::string::npos);
    dse::ExploreJournal old;
    old.load_json(io::Json::parse(legacy));
    ASSERT_TRUE(old.lookup_eval("cfg-pruned", e));
    EXPECT_FALSE(e.pruned);
}

TEST(SuperviseExploration, PrunedResumeMatchesUnprunedBaseline)
{
    // The cross-mode contract, through a kill: an uninterrupted
    // --prune=off run must byte-match a --prune=on supervised campaign
    // killed after an early checkpoint and resumed. Prune mode is
    // excluded from the campaign fingerprint, so the journal replays.
    auto space = placement_space();
    space.add("traffic.rate_gbps", {5.0, 10.0, 25.0, 50.0});
    const auto objectives = tput_p99();
    dse::Constraint floor;
    floor.metric = "throughput_gbps";
    floor.lower = 15.0;
    const std::vector<dse::Constraint> constraints{floor};

    auto off = fast_opts();
    off.des.enabled = false;
    off.prune = dse::PruneMode::kOff;
    const auto baseline = dse::explore(space, objectives, constraints, off);
    const std::string want =
        dse::frontier_report_to_json(baseline).dump(-1);

    auto on = off;
    on.prune = dse::PruneMode::kOn;
    TempDir full_dir("prune_full");
    ckpt::SupervisorOptions sup;
    sup.dir = full_dir.path();
    sup.checkpoint_every = 1;
    sup.retention = 1000;
    const auto full =
        dse::supervise_exploration(space, objectives, constraints, on, sup);
    EXPECT_EQ(dse::frontier_report_to_json(full.report).dump(-1), want);
    EXPECT_GT(full.report.pruned, 0u);
    ASSERT_GE(full.checkpoints, 2u);

    TempDir kill_dir("prune_kill");
    clone_killed_at(full_dir.path(), kill_dir.path(), 1);
    ckpt::SupervisorOptions resume_sup;
    resume_sup.dir = kill_dir.path();
    auto on8 = on;
    on8.threads = 8;
    const auto resumed = dse::supervise_exploration(
        space, objectives, constraints, on8, resume_sup);
    EXPECT_TRUE(resumed.resume.resumed);
    EXPECT_EQ(dse::frontier_report_to_json(resumed.report).dump(-1), want);
    // Journal replay preserves the pruned flags, so the report's pruned
    // count is resume-deterministic too.
    EXPECT_EQ(resumed.report.pruned, full.report.pruned);

    // And the off-mode resumes a journal written with pruning on.
    TempDir kill_dir2("prune_kill_off");
    clone_killed_at(full_dir.path(), kill_dir2.path(), 1);
    ckpt::SupervisorOptions resume_sup2;
    resume_sup2.dir = kill_dir2.path();
    const auto resumed_off = dse::supervise_exploration(
        space, objectives, constraints, off, resume_sup2);
    EXPECT_TRUE(resumed_off.resume.resumed);
    EXPECT_EQ(dse::frontier_report_to_json(resumed_off.report).dump(-1),
              want);
}

TEST(SuperviseExploration, SeamsMustBeUnset)
{
    TempDir dir("seams");
    ckpt::SupervisorOptions sup;
    sup.dir = dir.path();
    dse::ExploreOptions opts = fast_opts();
    opts.on_eval = [](const std::string&, const dse::Evaluation&) {};
    EXPECT_THROW(dse::supervise_exploration(placement_space(), tput_p99(),
                                            {}, opts, sup),
                 std::invalid_argument);
    EXPECT_THROW(dse::supervise_exploration(placement_space(), tput_p99(),
                                            {}, fast_opts(),
                                            ckpt::SupervisorOptions{}),
                 std::invalid_argument); // empty dir
}

TEST(SuperviseExploration, UninterruptedMatchesUnsupervised)
{
    TempDir dir("plain");
    ckpt::SupervisorOptions sup;
    sup.dir = dir.path();
    const auto space = placement_space();
    const auto supervised = dse::supervise_exploration(
        space, tput_p99(), {}, fast_opts(), sup);
    EXPECT_FALSE(supervised.resume.resumed);
    EXPECT_GE(supervised.checkpoints, 1u); // at least the final flush

    const auto plain = dse::explore(space, tput_p99(), {}, fast_opts());
    EXPECT_EQ(dse::frontier_report_to_json(supervised.report).dump(-1),
              dse::frontier_report_to_json(plain).dump(-1));
}

TEST(SuperviseExploration, ResumeAfterKillIsByteIdentical)
{
    const auto space = placement_space();
    const auto objectives = tput_p99();

    // Uninterrupted supervised run, checkpointing after every completion
    // so every kill point exists on disk.
    TempDir full_dir("full");
    ckpt::SupervisorOptions sup;
    sup.dir = full_dir.path();
    sup.checkpoint_every = 1;
    sup.retention = 1000;
    const auto full = dse::supervise_exploration(space, objectives, {},
                                                 fast_opts(), sup);
    const std::string want =
        dse::frontier_report_to_json(full.report).dump(-1);
    ASSERT_GE(full.checkpoints, 3u);

    // Resume from the state a SIGKILL would leave after generation g, for
    // an early, a middle, and a late kill.
    const std::uint64_t kills[] = {1, full.checkpoints / 2,
                                   full.checkpoints - 1};
    for (std::uint64_t keep : kills) {
        TempDir kill_dir("kill_" + std::to_string(keep));
        clone_killed_at(full_dir.path(), kill_dir.path(), keep);
        ckpt::SupervisorOptions resume_sup;
        resume_sup.dir = kill_dir.path();
        const auto resumed = dse::supervise_exploration(
            space, objectives, {}, fast_opts(), resume_sup);
        EXPECT_TRUE(resumed.resume.resumed);
        EXPECT_EQ(resumed.resume.generation, keep);
        EXPECT_EQ(dse::frontier_report_to_json(resumed.report).dump(-1),
                  want)
            << "kill after generation " << keep;
    }

    // And at a different thread count, still byte-identical.
    TempDir kill_dir("kill_threads");
    clone_killed_at(full_dir.path(), kill_dir.path(), 2);
    ckpt::SupervisorOptions resume_sup;
    resume_sup.dir = kill_dir.path();
    auto opts8 = fast_opts();
    opts8.threads = 8;
    const auto resumed = dse::supervise_exploration(space, objectives, {},
                                                    opts8, resume_sup);
    EXPECT_EQ(dse::frontier_report_to_json(resumed.report).dump(-1), want);
}

TEST(SuperviseExploration, ForeignCampaignRefused)
{
    TempDir dir("foreign");
    ckpt::SupervisorOptions sup;
    sup.dir = dir.path();
    const auto space = placement_space();
    (void)dse::supervise_exploration(space, tput_p99(), {}, fast_opts(),
                                     sup);

    // Same directory, different seed: a different campaign.
    auto other = fast_opts();
    other.seed = 1234;
    EXPECT_THROW(dse::supervise_exploration(space, tput_p99(), {}, other,
                                            sup),
                 std::runtime_error);

    // --no-resume starts fresh instead of throwing.
    ckpt::SupervisorOptions fresh = sup;
    fresh.resume = false;
    EXPECT_NO_THROW(dse::supervise_exploration(space, tput_p99(), {},
                                               other, fresh));
}

TEST(SuperviseExploration, CorruptNewestGenerationIsSkipped)
{
    TempDir dir("corrupt");
    ckpt::SupervisorOptions sup;
    sup.dir = dir.path();
    sup.checkpoint_every = 1;
    sup.retention = 1000;
    const auto space = placement_space();
    const auto full = dse::supervise_exploration(space, tput_p99(), {},
                                                 fast_opts(), sup);
    const std::string want =
        dse::frontier_report_to_json(full.report).dump(-1);

    // Truncate the newest generation mid-payload: a torn write.
    ckpt::CheckpointStore probe(dir.path(), dse::kExploreCheckpointKind,
                                ckpt::StoreOptions{1000});
    const auto gens = probe.generations();
    ASSERT_FALSE(gens.empty());
    const std::string newest = probe.path_for(gens.back());
    const auto contents = io::read_file_if_exists(newest);
    ASSERT_TRUE(contents.has_value());
    io::atomic_write_file(newest,
                          contents->substr(0, contents->size() / 2));

    const auto resumed = dse::supervise_exploration(space, tput_p99(), {},
                                                    fast_opts(), sup);
    EXPECT_TRUE(resumed.resume.resumed);
    ASSERT_FALSE(resumed.resume.rejected.empty());
    EXPECT_EQ(resumed.resume.rejected.front().path, newest);
    EXPECT_EQ(dse::frontier_report_to_json(resumed.report).dump(-1), want);
}
