/**
 * @file
 * BatchEvaluator accounting: within-batch duplicates cost exactly one
 * model solve (with identical counters at any thread count), and
 * constraint-violation messages carry the round-trip double formatter's
 * rendering of the violating value, not a truncated std::to_string.
 */
#include "lognic/dse/explorer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/io/serialize.hpp"

using namespace lognic;
using dse::Config;
using dse::Constraint;
using dse::DesignSpace;
using dse::ExploreOptions;

namespace {

io::Scenario
nf_base(double rate_gbps = 50.0)
{
    auto built = apps::make_nf_chain(apps::arm_only_placement());
    return io::Scenario{
        std::move(built.hw), std::move(built.graph),
        core::TrafficProfile::fixed(Bytes{1500.0},
                                    Bandwidth::from_gbps(rate_gbps))};
}

std::vector<dse::ObjectiveSpec>
tput_p99()
{
    return {dse::objective_from_name("throughput_gbps"),
            dse::objective_from_name("p99_latency_us")};
}

} // namespace

TEST(BatchEvaluator, WithinBatchDuplicatesCostOneSolve)
{
    DesignSpace space(nf_base());
    space.add("placement.nf_chain", {});
    // BatchEvaluator holds references: objectives and constraints must
    // outlive it.
    const auto objectives = tput_p99();
    const std::vector<Constraint> constraints;

    // Two distinct configs, each submitted multiple times in one batch.
    const std::vector<Config> batch{{3}, {3}, {7}, {3}, {7}};

    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ExploreOptions opts;
        opts.des.enabled = false;
        opts.threads = threads;
        std::atomic<std::uint64_t> journaled{0};
        opts.on_eval = [&](const std::string&, const dse::Evaluation&) {
            ++journaled;
        };
        dse::BatchEvaluator ev(space, objectives, constraints, opts);
        const auto scored = ev.run_batch(batch);
        ASSERT_EQ(scored.size(), batch.size());

        // 5 requests, 2 unique configs, 2 solves, 2 journal records —
        // identical at 1 and 8 threads. Within-batch duplicates are
        // recorded as cache misses (the insert happens after the batch);
        // the dedup map still collapses them onto one solve.
        EXPECT_EQ(ev.requests(), 5u) << "threads " << threads;
        EXPECT_EQ(ev.solves(), 2u) << "threads " << threads;
        EXPECT_EQ(ev.archive_size(), 2u) << "threads " << threads;
        EXPECT_EQ(journaled.load(), 2u) << "threads " << threads;
        const auto stats = ev.cache_stats();
        EXPECT_EQ(stats.misses, 5u) << "threads " << threads;
        EXPECT_EQ(stats.hits, 0u) << "threads " << threads;

        // Duplicates resolve to bitwise-identical scores.
        for (std::size_t o = 0; o < scored[0].objectives.size(); ++o) {
            EXPECT_EQ(scored[0].objectives[o], scored[1].objectives[o]);
            EXPECT_EQ(scored[0].objectives[o], scored[3].objectives[o]);
            EXPECT_EQ(scored[2].objectives[o], scored[4].objectives[o]);
        }
        EXPECT_EQ(scored[0].key, scored[1].key);
        EXPECT_EQ(scored[2].key, scored[4].key);
    }
}

TEST(BatchEvaluator, DuplicatesAcrossBatchesHitTheCache)
{
    DesignSpace space(nf_base());
    space.add("placement.nf_chain", {});
    const auto objectives = tput_p99();
    const std::vector<Constraint> constraints;
    ExploreOptions opts;
    opts.des.enabled = false;
    dse::BatchEvaluator ev(space, objectives, constraints, opts);

    (void)ev.run_batch({{5}});
    (void)ev.run_batch({{5}, {6}});
    EXPECT_EQ(ev.requests(), 3u);
    EXPECT_EQ(ev.solves(), 2u);
    EXPECT_EQ(ev.cache_stats().hits, 1u);
}

TEST(EvaluateConfig, ViolationMessageUsesRoundTripDoubleFormat)
{
    // A near-boundary violation: offered 10.1 Gb/s against a 10.2 floor.
    // The violating value is not exactly representable, so the message
    // must round-trip the full double — "%.17g", not std::to_string's
    // fixed six decimals.
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps", {10.1});
    Constraint floor;
    floor.metric = "throughput_gbps";
    floor.lower = 10.2;

    const auto eval =
        dse::evaluate_config(space, {0}, tput_p99(), {floor});
    ASSERT_FALSE(eval.feasible);
    const double v = eval.objectives[0];
    EXPECT_EQ(eval.why, "constraint violated: throughput_gbps = "
                            + io::format_double(v));

    // The rendered value parses back to the exact violating double.
    const std::string rendered = io::format_double(v);
    EXPECT_EQ(std::strtod(rendered.c_str(), nullptr), v);
    // And it is not the six-decimal truncation.
    EXPECT_NE(eval.why, "constraint violated: throughput_gbps = "
                            + std::to_string(v));
}
