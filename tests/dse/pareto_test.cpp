// Pareto machinery edge cases: dominance with mixed senses, ties on one
// objective, NaN/inf quarantine, single-objective degeneration, and
// frontier stability under input permutation.
#include "lognic/dse/pareto.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

using namespace lognic::dse;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

ScoredConfig
make(std::uint64_t id, std::vector<double> objectives, bool feasible = true)
{
    ScoredConfig s;
    s.id = id;
    s.key = "cfg-" + std::to_string(id);
    s.objectives = std::move(objectives);
    s.feasible = feasible;
    s.finite = all_finite(s.objectives);
    return s;
}

const std::vector<Sense> kMaxMin{Sense::kMaximize, Sense::kMinimize};

} // namespace

TEST(ParetoDominance, MixedSenses)
{
    const auto a = make(1, {10.0, 5.0}); // higher tput, lower latency
    const auto b = make(2, {8.0, 7.0});
    EXPECT_TRUE(dominates(a, b, kMaxMin));
    EXPECT_FALSE(dominates(b, a, kMaxMin));
}

TEST(ParetoDominance, EqualOnAllObjectivesDominatesNeither)
{
    const auto a = make(1, {10.0, 5.0});
    const auto b = make(2, {10.0, 5.0});
    EXPECT_FALSE(dominates(a, b, kMaxMin));
    EXPECT_FALSE(dominates(b, a, kMaxMin));
}

TEST(ParetoDominance, TieOnOneObjective)
{
    // Same throughput, strictly better latency: still dominates (weak
    // dominance with at least one strict improvement).
    const auto a = make(1, {10.0, 5.0});
    const auto b = make(2, {10.0, 6.0});
    EXPECT_TRUE(dominates(a, b, kMaxMin));
    EXPECT_FALSE(dominates(b, a, kMaxMin));
}

TEST(ParetoDominance, SizeMismatchThrows)
{
    const auto a = make(1, {10.0});
    const auto b = make(2, {10.0, 5.0});
    EXPECT_THROW(static_cast<void>(dominates(a, b, kMaxMin)),
                 std::invalid_argument);
}

TEST(ParetoDominance, IneligibleNeverDominatesOrIsDominated)
{
    const auto good = make(1, {10.0, 5.0});
    const auto nan = make(2, {kNan, 1.0});
    const auto inf = make(3, {kInf, 0.0}); // "infinitely good" — quarantined
    const auto infeasible = make(4, {100.0, 0.1}, /*feasible=*/false);
    for (const auto& bad : {nan, inf, infeasible}) {
        EXPECT_FALSE(dominates(bad, good, kMaxMin));
        EXPECT_FALSE(dominates(good, bad, kMaxMin));
    }
}

TEST(ParetoFrontier, QuarantinedNeverEnterFrontier)
{
    const std::vector<ScoredConfig> all{
        make(1, {10.0, 5.0}),
        make(2, {kNan, kNan}),
        make(3, {kInf, 0.0}),
        make(4, {100.0, 0.0}, /*feasible=*/false),
    };
    const auto frontier = pareto_frontier(all, kMaxMin);
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(all[frontier[0]].id, 1u);
}

TEST(ParetoFrontier, SingleObjectiveDegeneratesToArgmin)
{
    const std::vector<Sense> min{Sense::kMinimize};
    const std::vector<ScoredConfig> all{
        make(1, {3.0}), make(2, {1.0}), make(3, {2.0}), make(4, {1.0})};
    const auto frontier = pareto_frontier(all, min);
    // Both argmin ties survive (neither strictly dominates the other).
    ASSERT_EQ(frontier.size(), 2u);
    EXPECT_EQ(all[frontier[0]].id, 2u);
    EXPECT_EQ(all[frontier[1]].id, 4u);
}

TEST(ParetoFrontier, StableUnderPermutation)
{
    std::vector<ScoredConfig> all{
        make(5, {10.0, 9.0}), make(1, {9.0, 2.0}),  make(9, {7.0, 1.0}),
        make(3, {8.0, 1.5}),  make(7, {10.0, 9.5}), make(2, {1.0, 50.0}),
    };
    const auto ids_of = [&](const std::vector<ScoredConfig>& v) {
        std::vector<std::uint64_t> ids;
        for (std::size_t idx : pareto_frontier(v, kMaxMin))
            ids.push_back(v[idx].id);
        return ids;
    };
    const auto baseline = ids_of(all);
    ASSERT_FALSE(baseline.empty());
    std::vector<ScoredConfig> permuted = all;
    std::sort(permuted.begin(), permuted.end(),
              [](const ScoredConfig& a, const ScoredConfig& b) {
                  return a.id > b.id;
              });
    EXPECT_EQ(ids_of(permuted), baseline);
    std::reverse(permuted.begin(), permuted.end());
    EXPECT_EQ(ids_of(permuted), baseline);
}

TEST(ParetoFrontier, DominatedCountMatchesDefinition)
{
    const std::vector<ScoredConfig> all{
        make(1, {10.0, 1.0}), // dominates 2 and 3
        make(2, {9.0, 2.0}),
        make(3, {8.0, 3.0}),
        make(4, {11.0, 9.0}), // frontier too, dominates nobody
    };
    EXPECT_EQ(dominated_count(all[0], all, kMaxMin), 2u);
    EXPECT_EQ(dominated_count(all[3], all, kMaxMin), 0u);
}

TEST(DominanceSummary, MatchesBruteForceFrontierAndCounts)
{
    // The single-pass summary must equal the brute-force composition it
    // replaced: pareto_frontier() plus dominated_count() per member.
    // Deterministic pseudo-random population, quarantine and
    // infeasibility mixed in.
    std::vector<ScoredConfig> all;
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    const auto next = [&] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (std::uint64_t i = 0; i < 64; ++i) {
        const double tput = static_cast<double>(next() % 32);
        const double lat = static_cast<double>(next() % 32);
        auto s = make(i + 1, {tput, lat}, /*feasible=*/next() % 8 != 0);
        if (next() % 16 == 0)
            s.objectives[0] = kNan;
        s.finite = all_finite(s.objectives);
        all.push_back(std::move(s));
    }

    const DominanceSummary summary = dominance_summary(all, kMaxMin);
    EXPECT_EQ(summary.frontier, pareto_frontier(all, kMaxMin));
    ASSERT_EQ(summary.dominated.size(), all.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(summary.dominated[i], dominated_count(all[i], all, kMaxMin))
            << "candidate " << i;
}

TEST(DominanceSummary, EmptyAndAllIneligible)
{
    EXPECT_TRUE(dominance_summary({}, kMaxMin).frontier.empty());
    const std::vector<ScoredConfig> all{
        make(1, {kNan, 1.0}),
        make(2, {5.0, 2.0}, /*feasible=*/false),
    };
    const auto summary = dominance_summary(all, kMaxMin);
    EXPECT_TRUE(summary.frontier.empty());
    EXPECT_EQ(summary.dominated, (std::vector<std::uint64_t>{0, 0}));
}

TEST(NonDominatedSort, LayersAndQuarantine)
{
    const std::vector<ScoredConfig> all{
        make(1, {10.0, 1.0}), // front 0
        make(2, {9.0, 2.0}),  // front 1
        make(3, {8.0, 3.0}),  // front 2
        make(4, {kNan, 1.0}), // in no front
    };
    const auto fronts = non_dominated_sort(all, kMaxMin);
    ASSERT_EQ(fronts.size(), 3u);
    EXPECT_EQ(fronts[0], (std::vector<std::size_t>{0}));
    EXPECT_EQ(fronts[1], (std::vector<std::size_t>{1}));
    EXPECT_EQ(fronts[2], (std::vector<std::size_t>{2}));
}

TEST(CrowdingDistance, BoundariesInfiniteMiddleFinite)
{
    const std::vector<ScoredConfig> all{
        make(1, {1.0, 9.0}),
        make(2, {5.0, 5.0}),
        make(3, {9.0, 1.0}),
    };
    const std::vector<std::size_t> front{0, 1, 2};
    const auto dist = crowding_distance(front, all, kMaxMin);
    ASSERT_EQ(dist.size(), 3u);
    EXPECT_EQ(dist[0], kInf);
    EXPECT_EQ(dist[2], kInf);
    EXPECT_TRUE(std::isfinite(dist[1]));
    EXPECT_GT(dist[1], 0.0);
}

