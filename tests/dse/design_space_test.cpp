// DesignSpace: knob declaration by string path (reusing calib's path
// machinery for catalog paths), validation, materialization, canonical
// keys, and the rebuild/base-bound exclusion rule.
#include "lognic/dse/design_space.hpp"

#include <gtest/gtest.h>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/core/model.hpp"

using namespace lognic;
using dse::Config;
using dse::DesignSpace;

namespace {

io::Scenario
nf_base()
{
    auto built = apps::make_nf_chain(apps::arm_only_placement());
    return io::Scenario{std::move(built.hw), std::move(built.graph),
                        core::TrafficProfile::fixed(
                            Bytes{1500.0}, Bandwidth::from_gbps(20.0))};
}

} // namespace

TEST(DesignSpace, CatalogPathKnobMaterializes)
{
    DesignSpace space(nf_base());
    space.add("interface_gbps", {50.0, 100.0, 400.0});
    ASSERT_EQ(space.size(), 1u);
    EXPECT_EQ(space.combinations(), 3u);

    const auto sc = space.materialize({2});
    EXPECT_DOUBLE_EQ(sc.hw.interface_bandwidth().gbps(), 400.0);
    // The base scenario is untouched (bluefield2's interconnect is 200).
    EXPECT_DOUBLE_EQ(space.base().hw.interface_bandwidth().gbps(), 200.0);
}

TEST(DesignSpace, UnknownCatalogPathRejected)
{
    DesignSpace space(nf_base());
    EXPECT_THROW(space.add("ip.no-such-ip.fixed_cost_us", {1.0, 2.0}),
                 std::exception);
}

TEST(DesignSpace, VertexKnobsSetParams)
{
    DesignSpace space(nf_base());
    space.add("vertex.arm.parallelism", {1.0, 2.0, 4.0});
    space.add("vertex.arm.queue_capacity", {32.0, 128.0});
    const auto sc = space.materialize({2, 1});
    const auto id = sc.graph.find_vertex("arm");
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(sc.graph.vertex(*id).params.parallelism, 4u);
    EXPECT_EQ(sc.graph.vertex(*id).params.queue_capacity, 128u);
}

TEST(DesignSpace, VertexKnobValidation)
{
    DesignSpace space(nf_base());
    EXPECT_THROW(space.add("vertex.nope.parallelism", {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(space.add("vertex.arm.bogus_field", {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(space.add("vertex.arm.parallelism", {0.5, 2.0}),
                 std::invalid_argument); // non-integer
    EXPECT_THROW(space.add("vertex.arm.parallelism", {0.0, 2.0}),
                 std::invalid_argument); // below minimum
}

TEST(DesignSpace, TrafficRateKnob)
{
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps", {5.0, 10.0, 40.0});
    const auto sc = space.materialize({1});
    EXPECT_DOUBLE_EQ(sc.traffic.ingress_bandwidth().gbps(), 10.0);
}

TEST(DesignSpace, PlacementKnobDefaultsToAllPlacements)
{
    DesignSpace space(nf_base());
    space.add("placement.nf_chain", {});
    EXPECT_EQ(space.combinations(), apps::all_placements().size());
    // Level 0 is ARM-only; the last level offloads everything.
    const auto arm = space.materialize({0});
    EXPECT_TRUE(arm.graph.find_vertex("arm").has_value());
    const auto last = space.materialize(
        {static_cast<std::uint32_t>(apps::all_placements().size() - 1)});
    // Offloaded chain has accelerator vertices beyond the merged arm stage.
    EXPECT_GT(last.graph.vertex_count(), arm.graph.vertex_count());
}

TEST(DesignSpace, PlacementExcludesBaseBoundKnobs)
{
    // placement.* rebuilds hw+graph, so knobs bound to base-scenario names
    // must be rejected in either declaration order.
    DesignSpace a(nf_base());
    a.add("placement.nf_chain", {});
    EXPECT_THROW(a.add("vertex.arm.parallelism", {1.0, 2.0}),
                 std::invalid_argument);
    EXPECT_THROW(a.add("ip.arm.fixed_cost_us", {1.0, 2.0}),
                 std::invalid_argument);

    DesignSpace b(nf_base());
    b.add("vertex.arm.parallelism", {1.0, 2.0});
    EXPECT_THROW(b.add("placement.nf_chain", {}), std::invalid_argument);

    // Scenario-independent knobs compose with placement fine.
    DesignSpace c(nf_base());
    c.add("placement.nf_chain", {});
    EXPECT_NO_THROW(c.add("traffic.rate_gbps", {10.0, 20.0}));
}

TEST(DesignSpace, LevelAndConfigValidation)
{
    DesignSpace space(nf_base());
    EXPECT_THROW(space.add("interface_gbps", {}), std::invalid_argument);
    EXPECT_THROW(space.add("interface_gbps", {2.0, 1.0}),
                 std::invalid_argument); // not increasing
    EXPECT_THROW(space.add("interface_gbps", {1.0, 1.0}),
                 std::invalid_argument); // not strict
    space.add("interface_gbps", {50.0, 100.0});
    EXPECT_THROW(space.add("interface_gbps", {25.0, 75.0}),
                 std::invalid_argument); // duplicate
    EXPECT_THROW(space.validate({0, 0}), std::invalid_argument); // size
    EXPECT_THROW(space.validate({2}), std::invalid_argument); // level range
    EXPECT_NO_THROW(space.validate({1}));
}

TEST(DesignSpace, CanonicalKeyAndFingerprint)
{
    DesignSpace space(nf_base());
    space.add("interface_gbps", {50.0, 100.0});
    space.add("traffic.rate_gbps", {5.0, 10.0});
    const Config a{0, 1};
    const Config b{1, 0};
    EXPECT_NE(space.canonical_key(a), space.canonical_key(b));
    EXPECT_NE(space.fingerprint(a), space.fingerprint(b));
    EXPECT_EQ(space.canonical_key(a), space.canonical_key(Config{0, 1}));
    // Key names the knob and the level *value*, not the index.
    EXPECT_NE(space.canonical_key(a).find("interface_gbps="),
              std::string::npos);
}

TEST(DesignSpace, CostIsWeightedLevelSum)
{
    DesignSpace space(nf_base());
    space.add("interface_gbps", {50.0, 100.0}, /*cost_weight=*/2.0);
    space.add("traffic.rate_gbps", {5.0, 10.0}); // weight 0
    EXPECT_DOUBLE_EQ(space.cost({0, 1}), 100.0);
    EXPECT_DOUBLE_EQ(space.cost({1, 1}), 200.0);
}

TEST(DesignSpace, ConfigJsonNamesKnobs)
{
    DesignSpace space(nf_base());
    space.add("interface_gbps", {50.0, 100.0});
    const io::Json j = space.config_json({1});
    EXPECT_DOUBLE_EQ(j.at("interface_gbps").as_number(), 100.0);
}

TEST(DesignSpace, MaterializedScenarioIsModelable)
{
    DesignSpace space(nf_base());
    space.add("placement.nf_chain", {});
    space.add("traffic.rate_gbps", {5.0, 20.0});
    for (std::uint32_t p = 0; p < 16; ++p) {
        const auto sc = space.materialize({p, 1});
        const auto rep = core::Model(sc.hw).estimate(sc.graph, sc.traffic);
        EXPECT_GT(rep.throughput.capacity.gbps(), 0.0);
    }
}
