// The exploration engine: strategies, determinism across thread counts,
// memo-cache behavior, constraints, quarantine, DES validation of the
// frontier, and metrics publication.
#include "lognic/dse/explorer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/dse/report.hpp"
#include "lognic/dse/spec.hpp"
#include "lognic/obs/metrics.hpp"

using namespace lognic;
using dse::Config;
using dse::DesignSpace;
using dse::ExploreOptions;

namespace {

io::Scenario
nf_base(double rate_gbps = 20.0)
{
    auto built = apps::make_nf_chain(apps::arm_only_placement());
    return io::Scenario{
        std::move(built.hw), std::move(built.graph),
        core::TrafficProfile::fixed(Bytes{1500.0},
                                    Bandwidth::from_gbps(rate_gbps))};
}

DesignSpace
placement_space()
{
    DesignSpace space(nf_base(50.0));
    space.add("placement.nf_chain", {});
    return space;
}

std::vector<dse::ObjectiveSpec>
tput_p99()
{
    return {dse::objective_from_name("throughput_gbps"),
            dse::objective_from_name("p99_latency_us")};
}

ExploreOptions
fast_opts()
{
    ExploreOptions opts;
    opts.des.replications = 1;
    opts.des.duration = 0.002;
    return opts;
}

} // namespace

TEST(ObjectiveNames, SensesAndRejection)
{
    EXPECT_EQ(dse::objective_from_name("throughput_gbps").sense,
              dse::Sense::kMaximize);
    EXPECT_EQ(dse::objective_from_name("capacity_gbps").sense,
              dse::Sense::kMaximize);
    EXPECT_EQ(dse::objective_from_name("p99_latency_us").sense,
              dse::Sense::kMinimize);
    EXPECT_EQ(dse::objective_from_name("cost").sense, dse::Sense::kMinimize);
    EXPECT_THROW(dse::objective_from_name("bogus"), std::invalid_argument);
    EXPECT_THROW(dse::strategy_from_name("bogus"), std::invalid_argument);
    EXPECT_EQ(dse::strategy_from_name("nsga2"), dse::Strategy::kNsga2);
}

TEST(EvaluateConfig, ObjectivesAndConstraints)
{
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps", {5.0, 500.0});
    const auto objectives = tput_p99();

    const auto ok = dse::evaluate_config(space, {0}, objectives, {});
    ASSERT_EQ(ok.objectives.size(), 2u);
    EXPECT_TRUE(ok.feasible);
    EXPECT_TRUE(ok.finite);
    EXPECT_NEAR(ok.objectives[0], 5.0, 0.5); // delivered ~ offered

    // 500 Gbps into a ~22 Gbps chain: massive drops -> infeasible under a
    // drop-rate ceiling.
    dse::Constraint cap;
    cap.metric = "drop_rate";
    cap.upper = 0.01;
    const auto overload =
        dse::evaluate_config(space, {1}, objectives, {cap});
    EXPECT_FALSE(overload.feasible);
    EXPECT_NE(overload.why.find("drop_rate"), std::string::npos);
}

TEST(EvaluateConfig, ThrowingKnobQuarantines)
{
    DesignSpace space(nf_base());
    dse::Knob poison;
    poison.name = "poison";
    poison.values = {0.0, 1.0};
    poison.apply = [](io::Scenario&, double v) {
        if (v > 0.5)
            throw std::runtime_error("deliberately broken config");
    };
    space.add_custom(std::move(poison));
    const auto objectives = tput_p99();

    const auto bad = dse::evaluate_config(space, {1}, objectives, {});
    EXPECT_FALSE(bad.finite);
    EXPECT_FALSE(bad.feasible);
    ASSERT_EQ(bad.objectives.size(), 2u);
    EXPECT_TRUE(std::isnan(bad.objectives[0]));
    EXPECT_NE(bad.why.find("deliberately broken"), std::string::npos);

    // And end to end: quarantined configs are counted but never surface
    // in the frontier.
    auto opts = fast_opts();
    opts.des.enabled = false;
    const auto report =
        dse::explore(space, objectives, {}, opts);
    EXPECT_EQ(report.quarantined, 1u);
    for (const auto& e : report.frontier)
        EXPECT_EQ(e.config[0], 0u);
}

TEST(Explore, ExhaustiveFindsOptPlacementOnFrontier)
{
    const auto space = placement_space();
    auto opts = fast_opts();
    obs::MetricsRegistry metrics;
    const auto report =
        dse::explore(space, tput_p99(), {}, opts, &metrics);

    EXPECT_EQ(report.evaluated, 16u);
    EXPECT_EQ(report.requests, 16u);
    ASSERT_FALSE(report.frontier.empty());

    // The optimizer's placement must be on the frontier (it has the best
    // modelled throughput, so nothing can dominate it).
    const auto opt = apps::lognic_opt_placement(space.base().traffic);
    const auto placements = apps::all_placements();
    std::uint32_t opt_index = 0;
    for (std::uint32_t i = 0; i < placements.size(); ++i)
        if (placements[i].fw == opt.fw && placements[i].lb == opt.lb
            && placements[i].nat == opt.nat && placements[i].pe == opt.pe)
            opt_index = i;
    bool found = false;
    for (const auto& e : report.frontier)
        found = found || e.config[0] == opt_index;
    EXPECT_TRUE(found);

    // Frontier members carry DES validation with disagreement data.
    for (const auto& e : report.frontier) {
        EXPECT_TRUE(e.des_validated);
        EXPECT_TRUE(e.des.ok);
        EXPECT_EQ(e.des.replications, 1u);
    }

    const auto snap = metrics.snapshot();
    EXPECT_EQ(snap.counters.at("dse.requests"), 16u);
    EXPECT_EQ(snap.counters.at("dse.evaluations"), 16u);
    EXPECT_EQ(snap.counters.at("dse.frontier.size"),
              report.frontier.size());
    EXPECT_GE(snap.counters.at("dse.des.validated"), 1u);
}

TEST(Explore, ExhaustiveRefusesOversizedSpace)
{
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps", {1.0, 2.0, 3.0, 4.0});
    auto opts = fast_opts();
    opts.exhaustive_limit = 3;
    EXPECT_THROW(dse::explore(space, tput_p99(), {}, opts),
                 std::invalid_argument);
}

TEST(Explore, ReportByteIdenticalAcrossThreadCounts)
{
    const auto space = placement_space();
    auto opts = fast_opts();
    opts.threads = 1;
    const auto serial = dse::frontier_report_to_json(
                            dse::explore(space, tput_p99(), {}, opts))
                            .dump(-1);
    opts.threads = 8;
    const auto parallel = dse::frontier_report_to_json(
                              dse::explore(space, tput_p99(), {}, opts))
                              .dump(-1);
    EXPECT_EQ(serial, parallel);
}

TEST(Explore, MutationHitsMemoCacheAndIsDeterministic)
{
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps",
              {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0});
    space.add("vertex.arm.parallelism", {1.0, 2.0, 4.0, 8.0});
    space.add("interface_gbps", {25.0, 50.0, 100.0});

    auto opts = fast_opts();
    opts.strategy = dse::Strategy::kMutation;
    opts.budget = 128;
    opts.population = 8;
    opts.des.enabled = false;
    opts.threads = 1;

    const auto a = dse::explore(space, tput_p99(), {}, opts);
    // Stable-frontier neighbor revisits MUST hit the memo cache — the
    // acceptance gate for the memoized backend.
    EXPECT_GT(a.cache.hits, 0u);
    EXPECT_EQ(a.requests, a.cache.hits + a.cache.misses);
    EXPECT_LE(a.evaluated, a.cache.misses);

    opts.threads = 4;
    const auto b = dse::explore(space, tput_p99(), {}, opts);
    EXPECT_EQ(dse::frontier_report_to_json(a).dump(-1),
              dse::frontier_report_to_json(b).dump(-1));
}

TEST(Explore, Nsga2DeterministicAndBudgeted)
{
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps",
              {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0});
    space.add("vertex.arm.parallelism", {1.0, 2.0, 4.0, 8.0});
    space.add("vertex.arm.queue_capacity", {16.0, 64.0, 256.0});

    auto opts = fast_opts();
    opts.strategy = dse::Strategy::kNsga2;
    opts.population = 8;
    opts.generations = 4;
    opts.budget = 512;
    opts.des.enabled = false;

    opts.threads = 1;
    const auto a = dse::explore(space, tput_p99(), {}, opts);
    opts.threads = 8;
    const auto b = dse::explore(space, tput_p99(), {}, opts);
    EXPECT_EQ(dse::frontier_report_to_json(a).dump(-1),
              dse::frontier_report_to_json(b).dump(-1));
    EXPECT_FALSE(a.frontier.empty());
    // Population seeding + 4 generations of offspring, bounded by budget.
    EXPECT_LE(a.requests, 8u + 4u * 8u);
}

TEST(Explore, ConstraintsExcludeFromFrontier)
{
    DesignSpace space(nf_base());
    space.add("traffic.rate_gbps", {5.0, 10.0, 500.0});
    dse::Constraint cap;
    cap.metric = "drop_rate";
    cap.upper = 0.01;
    auto opts = fast_opts();
    opts.des.enabled = false;
    const auto report = dse::explore(space, tput_p99(), {cap}, opts);
    EXPECT_GE(report.infeasible, 1u);
    for (const auto& e : report.frontier)
        EXPECT_NE(e.config[0], 2u); // the 500 Gbps config violates
}

TEST(Explore, InputValidation)
{
    const auto space = placement_space();
    auto opts = fast_opts();
    EXPECT_THROW(dse::explore(space, {}, {}, opts), std::invalid_argument);
    EXPECT_THROW(dse::explore(space,
                              {dse::objective_from_name("cost"),
                               dse::objective_from_name("cost")},
                              {}, opts),
                 std::invalid_argument);
    dse::Constraint bad;
    bad.metric = "bogus_metric";
    EXPECT_THROW(dse::explore(space, tput_p99(), {bad}, opts),
                 std::invalid_argument);
    DesignSpace empty(nf_base());
    EXPECT_THROW(dse::explore(empty, tput_p99(), {}, opts),
                 std::invalid_argument);
}

TEST(Explore, DesSeedsArePureFunctionsOfTheConfig)
{
    const auto space = placement_space();
    auto opts = fast_opts();
    const auto a = dse::explore(space, tput_p99(), {}, opts);
    const auto b = dse::explore(space, tput_p99(), {}, opts);
    ASSERT_EQ(a.frontier.size(), b.frontier.size());
    for (std::size_t i = 0; i < a.frontier.size(); ++i) {
        EXPECT_EQ(a.frontier[i].des.seed, b.frontier[i].des.seed);
        EXPECT_EQ(a.frontier[i].des.delivered_gbps,
                  b.frontier[i].des.delivered_gbps);
    }
}

TEST(SampleSpec, ParsesAndRoundTrips)
{
    const auto doc = io::Json::parse(dse::sample_explore_spec());
    auto spec = dse::explore_spec_from_json(doc);
    EXPECT_EQ(spec.space.size(), 1u);
    EXPECT_EQ(spec.options.strategy, dse::Strategy::kExhaustive);
    ASSERT_EQ(spec.objectives.size(), 2u);
    EXPECT_EQ(spec.objectives[0].name, "throughput_gbps");

    // Malformed documents are rejected with named errors.
    io::Json bad = doc;
    EXPECT_THROW(dse::explore_spec_from_json(io::Json{}),
                 std::runtime_error);
    io::Json both = doc;
    both.set("scenario", io::Json{});
    EXPECT_THROW(dse::explore_spec_from_json(both), std::runtime_error);
}
