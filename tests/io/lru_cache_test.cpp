// The shared string-keyed LRU memo backend (extracted from calib's
// EvalCache, reused by the dse memo cache): counter semantics, recency
// refresh on lookup, no-op insert on present keys, and eviction order.
#include "lognic/io/lru_cache.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

using lognic::io::LruCache;

TEST(LruCache, RejectsZeroCapacity)
{
    EXPECT_THROW(LruCache<int>(0), std::invalid_argument);
}

TEST(LruCache, CountsHitsAndMisses)
{
    LruCache<int> cache(4);
    EXPECT_FALSE(cache.lookup("a").has_value());
    cache.insert("a", 1);
    const auto hit = cache.lookup("a");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, 1);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().evictions, 0u);
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.capacity(), 4u);
}

TEST(LruCache, EvictsLeastRecentlyUsed)
{
    LruCache<int> cache(2);
    cache.insert("a", 1);
    cache.insert("b", 2);
    // Touch "a" so "b" becomes the eviction victim.
    ASSERT_TRUE(cache.lookup("a").has_value());
    cache.insert("c", 3);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_TRUE(cache.lookup("a").has_value());
    EXPECT_FALSE(cache.lookup("b").has_value());
    EXPECT_TRUE(cache.lookup("c").has_value());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCache, InsertIsNoOpWhenPresent)
{
    LruCache<int> cache(2);
    cache.insert("a", 1);
    cache.insert("a", 99); // ignored: first value wins
    const auto v = cache.lookup("a");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(LruCache, LookupRefreshesRecencyWithoutInsert)
{
    LruCache<int> cache(2);
    cache.insert("a", 1);
    cache.insert("b", 2);
    ASSERT_TRUE(cache.lookup("a").has_value());
    ASSERT_TRUE(cache.lookup("b").has_value());
    // "a" is now the LRU entry again.
    cache.insert("c", 3);
    EXPECT_FALSE(cache.lookup("a").has_value());
    EXPECT_TRUE(cache.lookup("b").has_value());
}

TEST(LruCache, MissesOnEvictedKeysCountAsMisses)
{
    LruCache<int> cache(1);
    cache.insert("a", 1);
    cache.insert("b", 2); // evicts "a"
    EXPECT_FALSE(cache.lookup("a").has_value());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().evictions, 1u);
}
