#include "lognic/io/json.hpp"

#include <limits>

#include <gtest/gtest.h>

namespace lognic::io {
namespace {

TEST(Json, ScalarRoundTrips)
{
    EXPECT_EQ(Json::parse("null").type(), Json::Type::kNull);
    EXPECT_TRUE(Json::parse("true").as_bool());
    EXPECT_FALSE(Json::parse("false").as_bool());
    EXPECT_DOUBLE_EQ(Json::parse("42").as_number(), 42.0);
    EXPECT_DOUBLE_EQ(Json::parse("-3.5e2").as_number(), -350.0);
    EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, StringEscapes)
{
    const Json v = Json::parse(R"("a\"b\\c\nd\teA")");
    EXPECT_EQ(v.as_string(), "a\"b\\c\nd\teA");
    // Round trip through dump.
    const Json back = Json::parse(v.dump());
    EXPECT_EQ(back.as_string(), v.as_string());
}

TEST(Json, UnicodeEscapesEncodeUtf8)
{
    EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");  // é
    EXPECT_EQ(Json::parse(R"("€")").as_string(),
              "\xe2\x82\xac"); // €
}

TEST(Json, ArraysAndObjects)
{
    const Json v = Json::parse(R"({"a": [1, 2, 3], "b": {"c": true}})");
    EXPECT_EQ(v.at("a").as_array().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.0);
    EXPECT_TRUE(v.at("b").at("c").as_bool());
    EXPECT_TRUE(v.contains("a"));
    EXPECT_FALSE(v.contains("z"));
    EXPECT_THROW(v.at("z"), std::runtime_error);
}

TEST(Json, NumberOrFallback)
{
    const Json v = Json::parse(R"({"x": 5})");
    EXPECT_DOUBLE_EQ(v.number_or("x", 1.0), 5.0);
    EXPECT_DOUBLE_EQ(v.number_or("y", 1.0), 1.0);
}

TEST(Json, Builders)
{
    Json obj;
    obj.set("name", "test").set("count", 3);
    Json arr;
    arr.push_back(1.5).push_back("two");
    obj.set("items", arr);
    const Json round = Json::parse(obj.dump());
    EXPECT_EQ(round.at("name").as_string(), "test");
    EXPECT_DOUBLE_EQ(round.at("count").as_number(), 3.0);
    EXPECT_EQ(round.at("items").as_array().size(), 2u);
}

TEST(Json, TypeMismatchThrows)
{
    const Json v = Json::parse("42");
    EXPECT_THROW(v.as_string(), std::runtime_error);
    EXPECT_THROW(v.as_array(), std::runtime_error);
    EXPECT_THROW(v.as_object(), std::runtime_error);
    EXPECT_THROW(v.as_bool(), std::runtime_error);
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(Json::parse(""), std::runtime_error);
    EXPECT_THROW(Json::parse("{"), std::runtime_error);
    EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
    EXPECT_THROW(Json::parse("{\"a\" 1}"), std::runtime_error);
    EXPECT_THROW(Json::parse("tru"), std::runtime_error);
    EXPECT_THROW(Json::parse("1 2"), std::runtime_error);
    EXPECT_THROW(Json::parse("\"unterminated"), std::runtime_error);
    EXPECT_THROW(Json::parse("1e999"), std::runtime_error); // not finite
}

TEST(Json, WhitespaceTolerant)
{
    const Json v = Json::parse("  {\n\t\"a\" :\r [ 1 , 2 ]\n} ");
    EXPECT_EQ(v.at("a").as_array().size(), 2u);
}

TEST(Json, CompactAndPrettyDump)
{
    const Json v = Json::parse(R"({"a":[1,2],"b":"x"})");
    const std::string compact = v.dump(-1);
    EXPECT_EQ(compact.find('\n'), std::string::npos);
    const std::string pretty = v.dump(2);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    // Both parse back to the same document.
    EXPECT_EQ(Json::parse(compact).dump(-1), Json::parse(pretty).dump(-1));
}

TEST(Json, DeepNestingRoundTrip)
{
    std::string text = "1";
    for (int i = 0; i < 50; ++i)
        text = "[" + text + "]";
    Json v = Json::parse(text);
    for (int i = 0; i < 50; ++i)
        v = v.as_array()[0];
    EXPECT_DOUBLE_EQ(v.as_number(), 1.0);
}

TEST(Json, PreservesNumberPrecision)
{
    const double value = 1.2345678901234567e-3;
    Json v;
    v.set("x", value);
    EXPECT_DOUBLE_EQ(Json::parse(v.dump()).at("x").as_number(), value);
}

TEST(Json, NonFiniteNumbersSerializeAsNullAndRoundTrip)
{
    // RFC 8259 has no token for inf/nan; the writer used to emit them
    // bare, producing documents this very parser (and jq) rejected. They
    // must serialize as null so any document built from runtime metrics
    // stays machine-readable.
    const double inf = std::numeric_limits<double>::infinity();
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(Json{inf}.dump(), "null");
    EXPECT_EQ(Json{-inf}.dump(), "null");
    EXPECT_EQ(Json{nan}.dump(), "null");

    Json doc;
    doc.set("ok", 1.5);
    doc.set("undefined_stat", inf);
    Json arr;
    arr.push_back(Json{nan});
    arr.push_back(Json{2.0});
    doc.set("list", arr);
    const Json back = Json::parse(doc.dump(2)); // must not throw
    EXPECT_DOUBLE_EQ(back.at("ok").as_number(), 1.5);
    EXPECT_EQ(back.at("undefined_stat").type(), Json::Type::kNull);
    EXPECT_EQ(back.at("list").as_array()[0].type(), Json::Type::kNull);
    EXPECT_DOUBLE_EQ(back.at("list").as_array()[1].as_number(), 2.0);
}

TEST(Json, CopyOnWriteIsolation)
{
    Json a;
    a.set("k", 1);
    Json b = a; // shares the object node
    b.set("k", 2);
    EXPECT_DOUBLE_EQ(a.at("k").as_number(), 1.0);
    EXPECT_DOUBLE_EQ(b.at("k").as_number(), 2.0);
}

} // namespace
} // namespace lognic::io
