#include "lognic/io/serialize.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/apps/nvmeof.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/core/extensions.hpp"
#include "lognic/core/model.hpp"

namespace lognic::io {
namespace {

void
expect_same_estimates(const core::HardwareModel& hw_a,
                      const core::ExecutionGraph& g_a,
                      const core::HardwareModel& hw_b,
                      const core::ExecutionGraph& g_b,
                      const core::TrafficProfile& traffic)
{
    const core::Report a = core::Model(hw_a).estimate(g_a, traffic);
    const core::Report b = core::Model(hw_b).estimate(g_b, traffic);
    EXPECT_DOUBLE_EQ(a.throughput.capacity.bits_per_sec(),
                     b.throughput.capacity.bits_per_sec());
    EXPECT_DOUBLE_EQ(a.latency.mean.seconds(), b.latency.mean.seconds());
}

TEST(Serialize, HardwareModelRoundTrip)
{
    const core::HardwareModel hw = test::small_nic();
    const core::HardwareModel back =
        hardware_from_json(to_json(hw));
    EXPECT_EQ(back.name(), hw.name());
    EXPECT_DOUBLE_EQ(back.interface_bandwidth().gbps(),
                     hw.interface_bandwidth().gbps());
    EXPECT_DOUBLE_EQ(back.memory_bandwidth().gbps(),
                     hw.memory_bandwidth().gbps());
    EXPECT_DOUBLE_EQ(back.line_rate().gbps(), hw.line_rate().gbps());
    ASSERT_EQ(back.ip_count(), hw.ip_count());
    for (core::IpId i = 0; i < hw.ip_count(); ++i) {
        EXPECT_EQ(back.ip(i).name, hw.ip(i).name);
        EXPECT_EQ(back.ip(i).kind, hw.ip(i).kind);
        EXPECT_EQ(back.ip(i).max_engines, hw.ip(i).max_engines);
        EXPECT_DOUBLE_EQ(
            back.ip(i).roofline.engine().fixed_cost.seconds(),
            hw.ip(i).roofline.engine().fixed_cost.seconds());
        EXPECT_EQ(back.ip(i).roofline.ceilings().size(),
                  hw.ip(i).roofline.ceilings().size());
    }
}

TEST(Serialize, ServiceScvRoundTrips)
{
    core::HardwareModel hw = test::small_nic();
    core::IpSpec det;
    det.name = "pipeline-unit";
    det.kind = core::IpKind::kAccelerator;
    det.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_nanos(100.0),
                           Bandwidth::from_gbps(100.0)},
        {});
    det.service_scv = 0.0;
    hw.add_ip(det);
    const auto back = hardware_from_json(to_json(hw));
    EXPECT_DOUBLE_EQ(back.ip(*back.find_ip("pipeline-unit")).service_scv,
                     0.0);
    EXPECT_DOUBLE_EQ(back.ip(*back.find_ip("cores")).service_scv, 1.0);
}

TEST(Serialize, IpLinksRoundTrip)
{
    core::HardwareModel hw = test::small_nic();
    hw.set_ip_bandwidth(0, 1, Bandwidth::from_gbps(33.0));
    const core::HardwareModel back = hardware_from_json(to_json(hw));
    const auto bw = back.ip_bandwidth(0, 1);
    ASSERT_TRUE(bw.has_value());
    EXPECT_DOUBLE_EQ(bw->gbps(), 33.0);
}

TEST(Serialize, GraphRoundTripPreservesEstimates)
{
    const core::HardwareModel hw = test::small_nic();
    core::ExecutionGraph g = test::two_stage_graph(hw);
    g.vertex(*g.find_vertex("cores")).params.parallelism = 4;
    g.vertex(*g.find_vertex("cores")).params.overhead =
        Seconds::from_micros(0.7);
    g.edge(1).params.dedicated_bw = Bandwidth::from_gbps(18.0);

    const core::ExecutionGraph back = graph_from_json(to_json(g));
    EXPECT_EQ(back.vertex_count(), g.vertex_count());
    EXPECT_EQ(back.edge_count(), g.edge_count());
    expect_same_estimates(hw, g, hw, back, test::mtu_traffic(10.0));
}

TEST(Serialize, RateLimiterGraphRoundTrips)
{
    const core::HardwareModel hw = test::small_nic();
    core::ExecutionGraph g = test::single_stage_graph(hw);
    core::insert_rate_limiter(g, *g.find_vertex("cores"),
                              Bandwidth::from_gbps(4.0), 12);
    const core::ExecutionGraph back = graph_from_json(to_json(g));
    expect_same_estimates(hw, g, hw, back, test::mtu_traffic(10.0));
}

TEST(Serialize, TrafficProfileRoundTrip)
{
    const auto traffic = core::TrafficProfile::mixed(
        {{Bytes{64.0}, 0.25}, {Bytes{1500.0}, 0.75}},
        Bandwidth::from_gbps(12.5));
    const auto back = traffic_from_json(to_json(traffic));
    ASSERT_EQ(back.classes().size(), 2u);
    EXPECT_DOUBLE_EQ(back.classes()[0].weight, 0.25);
    EXPECT_DOUBLE_EQ(back.classes()[1].size.bytes(), 1500.0);
    EXPECT_DOUBLE_EQ(back.ingress_bandwidth().gbps(), 12.5);
}

TEST(Serialize, ScenarioStringRoundTrip)
{
    const Scenario scenario{test::small_nic(),
                            test::two_stage_graph(test::small_nic()),
                            test::mtu_traffic(8.0)};
    const std::string text = save_scenario(scenario);
    const Scenario back = load_scenario(text);
    expect_same_estimates(scenario.hw, scenario.graph, back.hw, back.graph,
                          scenario.traffic);
    // And the traffic itself round-trips.
    EXPECT_DOUBLE_EQ(back.traffic.ingress_bandwidth().gbps(), 8.0);
}

TEST(Serialize, CaseStudyGraphsRoundTrip)
{
    // A fan-out/fan-in case-study graph survives the trip with identical
    // model outputs.
    const auto sc = apps::make_panic_hybrid(0.5, 4);
    const auto hw_back = hardware_from_json(to_json(sc.hw));
    const auto g_back = graph_from_json(to_json(sc.graph));
    expect_same_estimates(sc.hw, sc.graph, hw_back, g_back,
                          test::mtu_traffic(80.0));
}

TEST(Serialize, SojournCurveIsDroppedWithNotice)
{
    // The curve is a callable and cannot be serialized; the round-tripped
    // spec keeps every other parameter but loses the override.
    const ssd::SsdGroundTruth drive;
    const auto workload = traffic::random_read_4k();
    const auto calib = ssd::calibrate(drive.characterize(workload, 12),
                                      workload.block_size);
    const auto scenario = apps::make_nvmeof_target(calib, workload);
    const auto back = hardware_from_json(to_json(scenario.hw));
    const auto ssd_ip = back.find_ip("ssd");
    ASSERT_TRUE(ssd_ip.has_value());
    EXPECT_EQ(back.ip(*ssd_ip).sojourn_curve, nullptr);
    EXPECT_EQ(back.ip(*ssd_ip).max_engines,
              scenario.hw.ip(*scenario.hw.find_ip("ssd")).max_engines);
}

TEST(Serialize, MalformedDocumentsThrow)
{
    EXPECT_THROW(hardware_from_json(Json::parse("{}")),
                 std::runtime_error);
    EXPECT_THROW(graph_from_json(Json::parse(R"({"name":"x"})")),
                 std::runtime_error);
    EXPECT_THROW(
        traffic_from_json(Json::parse(R"({"ingress_gbps": 1})")),
        std::runtime_error);
    // Unknown enum names are rejected.
    EXPECT_THROW(
        graph_from_json(Json::parse(
            R"({"name":"x","vertices":[{"name":"a","kind":"warp"}],)"
            R"("edges":[]})")),
        std::runtime_error);
}

} // namespace
} // namespace lognic::io
