/**
 * @file
 * Deterministic fuzzing of the JSON parser: random mutations of valid
 * documents must either parse cleanly or throw std::runtime_error — never
 * crash, hang, or corrupt memory (run under ASan in sanitizer builds).
 */
#include <gtest/gtest.h>
#include <random>

#include "../test_helpers.hpp"
#include "lognic/io/serialize.hpp"

namespace lognic::io {
namespace {

std::string
base_document()
{
    const Scenario scenario{test::small_nic(),
                            test::two_stage_graph(test::small_nic()),
                            test::mtu_traffic(8.0)};
    return save_scenario(scenario);
}

TEST(JsonFuzz, ByteMutationsNeverCrash)
{
    const std::string base = base_document();
    std::mt19937_64 rng(2024);
    std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
    std::uniform_int_distribution<int> byte(0, 255);

    int parsed_ok = 0;
    int rejected = 0;
    for (int round = 0; round < 500; ++round) {
        std::string doc = base;
        const int mutations = 1 + round % 8;
        for (int m = 0; m < mutations; ++m)
            doc[pos(rng)] = static_cast<char>(byte(rng));
        try {
            const Json v = Json::parse(doc);
            // Parsed documents must re-serialize without throwing.
            (void)v.dump(-1);
            ++parsed_ok;
        } catch (const std::runtime_error&) {
            ++rejected;
        }
    }
    EXPECT_EQ(parsed_ok + rejected, 500);
    EXPECT_GT(rejected, 0); // mutations do break documents
}

TEST(JsonFuzz, TruncationsNeverCrash)
{
    const std::string base = base_document();
    for (std::size_t len = 0; len < base.size();
         len += std::max<std::size_t>(1, base.size() / 200)) {
        const std::string doc = base.substr(0, len);
        try {
            (void)Json::parse(doc);
        } catch (const std::runtime_error&) {
            // expected for most prefixes
        }
    }
    SUCCEED();
}

TEST(JsonFuzz, ScenarioDecoderRejectsMutationsGracefully)
{
    // Even when the JSON parses, the scenario decoder may reject the
    // semantics; both outcomes are fine, crashes are not.
    const std::string base = base_document();
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<std::size_t> pos(0, base.size() - 1);
    int loaded = 0;
    for (int round = 0; round < 300; ++round) {
        std::string doc = base;
        // Digit-to-digit mutations keep documents parseable more often.
        const std::size_t p = pos(rng);
        if (std::isdigit(static_cast<unsigned char>(doc[p])))
            doc[p] = static_cast<char>('0' + (rng() % 10));
        else
            doc[p] = static_cast<char>('a' + (rng() % 26));
        try {
            (void)load_scenario(doc);
            ++loaded;
        } catch (const std::exception&) {
        }
    }
    EXPECT_GT(loaded, 0); // benign digit tweaks usually survive
}

TEST(JsonFuzz, RandomGarbageNeverCrashes)
{
    std::mt19937_64 rng(99);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<std::size_t> len(0, 256);
    for (int round = 0; round < 500; ++round) {
        std::string doc(len(rng), '\0');
        for (auto& c : doc)
            c = static_cast<char>(byte(rng));
        try {
            (void)Json::parse(doc);
        } catch (const std::runtime_error&) {
        }
    }
    SUCCEED();
}

} // namespace
} // namespace lognic::io
