#include "lognic/solver/linalg.hpp"

#include <gtest/gtest.h>

namespace lognic::solver {
namespace {

TEST(Matrix, InitializerListAndIndexing)
{
    const Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows)
{
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndMultiply)
{
    const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    const Matrix i = Matrix::identity(2);
    const Matrix ai = a * i;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            EXPECT_DOUBLE_EQ(ai(r, c), a(r, c));
}

TEST(Matrix, MultiplyKnownProduct)
{
    const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
    const Matrix p = a * b;
    EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(Matrix, ShapeMismatchThrows)
{
    const Matrix a(2, 3);
    const Matrix b(2, 3);
    EXPECT_THROW(a * b, std::invalid_argument);
    const Vector v{1.0, 2.0};
    EXPECT_THROW(a * v, std::invalid_argument);
    EXPECT_THROW(a + Matrix(3, 2), std::invalid_argument);
}

TEST(Matrix, TransposeRoundTrip)
{
    const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    const Matrix t = a.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    const Matrix tt = t.transposed();
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
}

TEST(SolveLu, SolvesKnownSystem)
{
    const Matrix a{{2.0, 1.0, -1.0}, {-3.0, -1.0, 2.0}, {-2.0, 1.0, 2.0}};
    const Vector x = solve_lu(a, {8.0, -11.0, -3.0});
    ASSERT_EQ(x.size(), 3u);
    EXPECT_NEAR(x[0], 2.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
    EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(SolveLu, PivotsZeroDiagonal)
{
    // Naive elimination without pivoting dies on the leading zero.
    const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    const Vector x = solve_lu(a, {3.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLu, SingularThrows)
{
    const Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(solve_lu(a, {1.0, 2.0}), std::runtime_error);
}

TEST(SolveCholesky, SolvesSpdSystem)
{
    const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    const Vector x = solve_cholesky(a, {10.0, 8.0});
    // Verify by substitution.
    const Vector back = a * x;
    EXPECT_NEAR(back[0], 10.0, 1e-12);
    EXPECT_NEAR(back[1], 8.0, 1e-12);
}

TEST(SolveCholesky, NonSpdThrows)
{
    const Matrix a{{1.0, 2.0}, {2.0, 1.0}}; // indefinite
    EXPECT_THROW(solve_cholesky(a, {1.0, 1.0}), std::runtime_error);
}

TEST(SolveCholesky, AgreesWithLu)
{
    const Matrix a{{6.0, 2.0, 1.0}, {2.0, 5.0, 2.0}, {1.0, 2.0, 4.0}};
    const Vector b{1.0, -2.0, 3.0};
    const Vector x1 = solve_cholesky(a, b);
    const Vector x2 = solve_lu(a, b);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x1[i], x2[i], 1e-10);
}

TEST(VectorHelpers, DotNormAxpyScaled)
{
    const Vector a{1.0, 2.0, 3.0};
    const Vector b{4.0, -5.0, 6.0};
    EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
    EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
    const Vector c = axpy(2.0, a, b);
    EXPECT_DOUBLE_EQ(c[0], 6.0);
    EXPECT_DOUBLE_EQ(c[1], -1.0);
    EXPECT_DOUBLE_EQ(c[2], 12.0);
    const Vector s = scaled(a, -1.0);
    EXPECT_DOUBLE_EQ(s[2], -3.0);
}

} // namespace
} // namespace lognic::solver
