#include "lognic/solver/least_squares.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace lognic::solver {
namespace {

TEST(LevenbergMarquardt, FitsLine)
{
    // y = 2x + 3 sampled exactly.
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0};
    const VectorFn residuals = [&](const Vector& p) {
        Vector r(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i)
            r[i] = p[0] * xs[i] + p[1] - (2.0 * xs[i] + 3.0);
        return r;
    };
    const auto fit = levenberg_marquardt(residuals, {0.0, 0.0});
    EXPECT_NEAR(fit.x[0], 2.0, 1e-6);
    EXPECT_NEAR(fit.x[1], 3.0, 1e-6);
    EXPECT_LT(fit.value, 1e-12);
}

TEST(LevenbergMarquardt, FitsExponentialDecay)
{
    // y = 5 exp(-0.7 x): nonlinear in the rate parameter.
    const std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0};
    const VectorFn residuals = [&](const Vector& p) {
        Vector r(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i)
            r[i] = p[0] * std::exp(-p[1] * xs[i])
                - 5.0 * std::exp(-0.7 * xs[i]);
        return r;
    };
    const auto fit = levenberg_marquardt(residuals, {1.0, 0.1});
    EXPECT_NEAR(fit.x[0], 5.0, 1e-4);
    EXPECT_NEAR(fit.x[1], 0.7, 1e-4);
}

TEST(LevenbergMarquardt, NoisyDataStillRecoversTrend)
{
    // Deterministic "noise" so the test is reproducible.
    const std::vector<double> xs{0.0, 1.0, 2.0, 3.0, 4.0, 5.0};
    const std::vector<double> noise{0.05, -0.04, 0.03, -0.02, 0.04, -0.05};
    const VectorFn residuals = [&](const Vector& p) {
        Vector r(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i)
            r[i] = p[0] * xs[i] + p[1] - (1.5 * xs[i] + 0.5 + noise[i]);
        return r;
    };
    const auto fit = levenberg_marquardt(residuals, {0.0, 0.0});
    EXPECT_NEAR(fit.x[0], 1.5, 0.05);
    EXPECT_NEAR(fit.x[1], 0.5, 0.10);
    EXPECT_EQ(fit.residuals.size(), xs.size());
}

TEST(LevenbergMarquardt, RespectsBounds)
{
    const VectorFn residuals = [](const Vector& p) {
        return Vector{p[0] - 10.0};
    };
    LeastSquaresOptions opts;
    opts.bounds.lower = {0.0};
    opts.bounds.upper = {4.0};
    const auto fit = levenberg_marquardt(residuals, {1.0}, opts);
    EXPECT_NEAR(fit.x[0], 4.0, 1e-9);
}

TEST(LevenbergMarquardt, AlreadyOptimalConvergesImmediately)
{
    const VectorFn residuals = [](const Vector& p) {
        return Vector{p[0] - 1.0, p[0] - 1.0};
    };
    const auto fit = levenberg_marquardt(residuals, {1.0});
    EXPECT_TRUE(fit.converged);
    EXPECT_LT(fit.value, 1e-20);
}

} // namespace
} // namespace lognic::solver
