#include "lognic/solver/special.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace lognic::solver {
namespace {

TEST(RegularizedGamma, ShapeOneIsExponentialCdf)
{
    for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 10.0}) {
        EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12)
            << x;
    }
}

TEST(RegularizedGamma, BoundaryValues)
{
    EXPECT_DOUBLE_EQ(regularized_gamma_p(3.0, 0.0), 0.0);
    EXPECT_NEAR(regularized_gamma_p(3.0, 1e6), 1.0, 1e-12);
    EXPECT_NEAR(regularized_gamma_q(2.0, 0.0), 1.0, 1e-12);
}

TEST(RegularizedGamma, KnownValues)
{
    // P(0.5, x) = erf(sqrt(x)).
    for (double x : {0.25, 1.0, 4.0}) {
        EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)),
                    1e-10)
            << x;
    }
    // Chi-square with 4 dof at its mean: P(2, 2) = 1 - 3e^{-2}.
    EXPECT_NEAR(regularized_gamma_p(2.0, 2.0), 1.0 - 3.0 * std::exp(-2.0),
                1e-12);
}

TEST(RegularizedGamma, MonotoneInX)
{
    double prev = -1.0;
    for (double x = 0.0; x < 20.0; x += 0.5) {
        const double v = regularized_gamma_p(3.7, x);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(RegularizedGamma, SeriesAndFractionAgreeAtCrossover)
{
    // The implementation switches branches at x = a + 1; both must agree
    // in a neighbourhood of the seam.
    for (double a : {0.7, 2.0, 11.0}) {
        const double left = regularized_gamma_p(a, a + 1.0 - 1e-9);
        const double right = regularized_gamma_p(a, a + 1.0 + 1e-9);
        EXPECT_NEAR(left, right, 1e-9) << a;
    }
}

TEST(RegularizedGamma, RejectsBadArguments)
{
    EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(regularized_gamma_p(-1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(regularized_gamma_p(1.0, -1.0), std::invalid_argument);
}

TEST(GammaQuantile, ExponentialQuantileExact)
{
    // k = 1, theta = m: quantile(p) = -m ln(1 - p).
    const double m = 2.5;
    EXPECT_NEAR(gamma_quantile(1.0, m, 0.99), -m * std::log(0.01), 1e-6);
    EXPECT_NEAR(gamma_quantile(1.0, m, 0.5), -m * std::log(0.5), 1e-6);
}

TEST(GammaQuantile, RoundTripsThroughCdf)
{
    for (double k : {0.5, 2.0, 7.3}) {
        for (double p : {0.1, 0.5, 0.9, 0.99}) {
            const double q = gamma_quantile(k, 1.7, p);
            EXPECT_NEAR(regularized_gamma_p(k, q / 1.7), p, 1e-9)
                << "k=" << k << " p=" << p;
        }
    }
}

TEST(GammaQuantile, RejectsBadArguments)
{
    EXPECT_THROW(gamma_quantile(0.0, 1.0, 0.5), std::invalid_argument);
    EXPECT_THROW(gamma_quantile(1.0, 0.0, 0.5), std::invalid_argument);
    EXPECT_THROW(gamma_quantile(1.0, 1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(gamma_quantile(1.0, 1.0, 1.0), std::invalid_argument);
}

} // namespace
} // namespace lognic::solver
