/**
 * @file
 * Solver edge cases the calibration subsystem leans on: rank-deficient
 * Jacobians, scale-aware finite-difference steps, bound-respecting probes,
 * structured non-convergence, and bound-clipped Nelder-Mead starts.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "lognic/solver/least_squares.hpp"
#include "lognic/solver/nelder_mead.hpp"

namespace lognic::solver {
namespace {

TEST(LevenbergMarquardtEdge, RankDeficientJacobianStillDescends)
{
    // Residuals depend only on p0 + p1: the Jacobian has rank 1 and
    // J^T J is singular. The Marquardt damping must keep the normal
    // equations solvable and the iterate finite.
    const VectorFn residuals = [](const Vector& p) {
        const double s = p[0] + p[1];
        return Vector{s - 4.0, 2.0 * (s - 4.0), -0.5 * (s - 4.0)};
    };
    const auto fit = levenberg_marquardt(residuals, {0.0, 0.0});
    ASSERT_EQ(fit.x.size(), 2u);
    EXPECT_TRUE(std::isfinite(fit.x[0]));
    EXPECT_TRUE(std::isfinite(fit.x[1]));
    EXPECT_NEAR(fit.x[0] + fit.x[1], 4.0, 1e-6);
    EXPECT_LT(fit.value, 1e-10);
}

TEST(LevenbergMarquardtEdge, ScaleAwareStepsHandleMixedMagnitudes)
{
    // A bandwidth-sized parameter (~1e9) next to a latency-sized one
    // (~1e-6): one absolute FD step cannot probe both, per-dimension
    // relative steps can.
    const VectorFn residuals = [](const Vector& p) {
        return Vector{(p[0] - 2.0e9) / 1.0e9, (p[1] - 3.0e-6) / 1.0e-6};
    };
    LeastSquaresOptions opts;
    opts.scales = {1.0e9, 1.0e-6};
    // Normalizing residuals by 1e9 shrinks the gradient too; tighten the
    // tolerance so the test measures FD-step accuracy, not the stop rule.
    opts.gradient_tolerance = 1e-16;
    const auto fit = levenberg_marquardt(residuals, {1.0e8, 1.0e-7}, opts);
    EXPECT_NEAR(fit.x[0] / 2.0e9, 1.0, 1e-6);
    EXPECT_NEAR(fit.x[1] / 3.0e-6, 1.0, 1e-6);
}

TEST(LevenbergMarquardtEdge, ScalesFloorCoversZeroInitialGuess)
{
    // |x_i| = 0 at the start: without the scale floor the FD step would
    // collapse to the 1e-8 default; with an explicit scale it stays
    // proportionate and the fit still lands.
    const VectorFn residuals = [](const Vector& p) {
        return Vector{(p[0] - 5.0e8) / 1.0e9};
    };
    LeastSquaresOptions opts;
    opts.scales = {1.0e9};
    opts.gradient_tolerance = 1e-16;
    const auto fit = levenberg_marquardt(residuals, {0.0}, opts);
    EXPECT_NEAR(fit.x[0] / 5.0e8, 1.0, 1e-6);
}

TEST(LevenbergMarquardtEdge, JacobianProbesStayInsideTheBox)
{
    // Start pinned to the upper bound: the forward FD probe would leave
    // the box, so the implementation must flip to a backward difference.
    // The residual function records any out-of-box evaluation.
    const double ub = 4.0;
    bool escaped = false;
    const VectorFn residuals = [&](const Vector& p) {
        if (p[0] > ub * (1.0 + 1e-12))
            escaped = true;
        return Vector{p[0] - 2.0};
    };
    LeastSquaresOptions opts;
    opts.bounds.lower = {0.0};
    opts.bounds.upper = {ub};
    const auto fit = levenberg_marquardt(residuals, {ub}, opts);
    EXPECT_FALSE(escaped);
    EXPECT_NEAR(fit.x[0], 2.0, 1e-6);
}

TEST(LevenbergMarquardtEdge, IterationLimitIsNotConverged)
{
    // Rosenbrock residuals need far more than 2 iterations.
    const VectorFn residuals = [](const Vector& p) {
        return Vector{10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]};
    };
    LeastSquaresOptions opts;
    opts.max_iterations = 2;
    const auto fit = levenberg_marquardt(residuals, {-1.2, 1.0}, opts);
    EXPECT_FALSE(fit.converged);
    EXPECT_EQ(fit.termination, LsTermination::kIterationLimit);
    EXPECT_EQ(fit.iterations, 2u);
}

TEST(LevenbergMarquardtEdge, ThrowOnFailureCarriesPartialResult)
{
    const VectorFn residuals = [](const Vector& p) {
        return Vector{10.0 * (p[1] - p[0] * p[0]), 1.0 - p[0]};
    };
    const Vector x0{-1.2, 1.0};
    const double initial_cost = [&] {
        const Vector r = residuals(x0);
        return 0.5 * (r[0] * r[0] + r[1] * r[1]);
    }();

    LeastSquaresOptions opts;
    opts.max_iterations = 2;
    opts.throw_on_failure = true;
    try {
        levenberg_marquardt(residuals, x0, opts);
        FAIL() << "expected NonConvergenceError";
    } catch (const NonConvergenceError& e) {
        // The partial result must be a usable iterate, not a husk: the
        // caller can inspect it or resume the fit from it.
        EXPECT_EQ(e.partial().termination, LsTermination::kIterationLimit);
        EXPECT_EQ(e.partial().iterations, 2u);
        ASSERT_EQ(e.partial().x.size(), 2u);
        EXPECT_TRUE(std::isfinite(e.partial().value));
        EXPECT_LT(e.partial().value, initial_cost);
        EXPECT_EQ(e.partial().residuals.size(), 2u);
        EXPECT_NE(std::string(e.what()).find("did not converge"),
                  std::string::npos);
    }
}

TEST(LevenbergMarquardtEdge, ConvergedRunDoesNotThrow)
{
    const VectorFn residuals = [](const Vector& p) {
        return Vector{p[0] - 3.0};
    };
    LeastSquaresOptions opts;
    opts.throw_on_failure = true;
    const auto fit = levenberg_marquardt(residuals, {0.0}, opts);
    EXPECT_TRUE(fit.converged);
    EXPECT_NEAR(fit.x[0], 3.0, 1e-8);
}

TEST(LevenbergMarquardtEdge, TerminationReasonsHaveDistinctNames)
{
    const LsTermination all[] = {
        LsTermination::kGradientTolerance,
        LsTermination::kStepTolerance,
        LsTermination::kStalled,
        LsTermination::kIterationLimit,
    };
    for (std::size_t i = 0; i < 4; ++i) {
        ASSERT_NE(to_string(all[i]), nullptr);
        EXPECT_NE(std::string(to_string(all[i])), "");
        for (std::size_t j = i + 1; j < 4; ++j)
            EXPECT_NE(std::string(to_string(all[i])),
                      std::string(to_string(all[j])));
    }
}

TEST(LevenbergMarquardtEdge, RecoversGroundTruthFromNoisyData)
{
    // y = 5 exp(-0.7 x) + 1 with deterministic "measurement noise",
    // fitted under bounds — the shape of a real calibration problem.
    const std::vector<double> xs{0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0};
    const std::vector<double> noise{0.02, -0.03, 0.01,  0.02,
                                    -0.02, 0.03, -0.01, 0.02};
    const VectorFn residuals = [&](const Vector& p) {
        Vector r(xs.size());
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double truth =
                5.0 * std::exp(-0.7 * xs[i]) + 1.0 + noise[i];
            r[i] = p[0] * std::exp(-p[1] * xs[i]) + p[2] - truth;
        }
        return r;
    };
    LeastSquaresOptions opts;
    opts.bounds.lower = {0.1, 0.01, 0.0};
    opts.bounds.upper = {50.0, 10.0, 10.0};
    const auto fit = levenberg_marquardt(residuals, {1.0, 0.1, 0.0}, opts);
    EXPECT_NEAR(fit.x[0], 5.0, 0.25);
    EXPECT_NEAR(fit.x[1], 0.7, 0.05);
    EXPECT_NEAR(fit.x[2], 1.0, 0.10);
}

TEST(NelderMeadEdge, OutOfBoxStartIsClampedBeforeEvaluation)
{
    // Start far outside the box; every evaluation must stay inside it.
    bool escaped = false;
    const Bounds box{{0.0, 0.0}, {1.0, 1.0}};
    const ObjectiveFn f = [&](const Vector& p) {
        if (!box.contains(p))
            escaped = true;
        const double a = p[0] - 0.3;
        const double b = p[1] - 0.6;
        return a * a + b * b;
    };
    NelderMeadOptions opts;
    opts.bounds = box;
    const auto fit = nelder_mead(f, {25.0, -7.0}, opts);
    EXPECT_FALSE(escaped);
    EXPECT_NEAR(fit.x[0], 0.3, 1e-4);
    EXPECT_NEAR(fit.x[1], 0.6, 1e-4);
}

TEST(NelderMeadEdge, CornerStartBuildsFeasibleSimplexAndConverges)
{
    // Starting exactly on the box corner, the default simplex construction
    // would step outside; the flipped construction must stay feasible and
    // still reach an interior optimum.
    bool escaped = false;
    const Bounds box{{0.0, 0.0}, {1.0, 1.0}};
    const ObjectiveFn f = [&](const Vector& p) {
        if (!box.contains(p))
            escaped = true;
        const double a = p[0] - 0.5;
        const double b = p[1] - 0.25;
        return a * a + 2.0 * b * b;
    };
    NelderMeadOptions opts;
    opts.bounds = box;
    const auto fit = nelder_mead(f, {1.0, 1.0}, opts);
    EXPECT_FALSE(escaped);
    EXPECT_NEAR(fit.x[0], 0.5, 1e-4);
    EXPECT_NEAR(fit.x[1], 0.25, 1e-4);
}

TEST(NelderMeadEdge, BoundaryOptimumIsReached)
{
    // The unconstrained minimum sits outside the box; the clipped search
    // must settle on the box face nearest to it.
    const Bounds box{{0.0}, {4.0}};
    const ObjectiveFn f = [](const Vector& p) {
        const double d = p[0] - 10.0;
        return d * d;
    };
    NelderMeadOptions opts;
    opts.bounds = box;
    const auto fit = nelder_mead(f, {1.0}, opts);
    EXPECT_NEAR(fit.x[0], 4.0, 1e-4);
}

} // namespace
} // namespace lognic::solver
