#include <cmath>
#include <gtest/gtest.h>

#include "lognic/solver/bfgs.hpp"
#include "lognic/solver/constrained.hpp"
#include "lognic/solver/nelder_mead.hpp"

namespace lognic::solver {
namespace {

double
sphere(const Vector& x)
{
    double s = 0.0;
    for (double v : x)
        s += (v - 1.0) * (v - 1.0);
    return s;
}

double
rosenbrock(const Vector& x)
{
    double s = 0.0;
    for (std::size_t i = 0; i + 1 < x.size(); ++i) {
        const double a = x[i + 1] - x[i] * x[i];
        const double b = 1.0 - x[i];
        s += 100.0 * a * a + b * b;
    }
    return s;
}

TEST(NelderMead, MinimizesSphere)
{
    const auto res = nelder_mead(sphere, {5.0, -3.0, 0.0});
    EXPECT_TRUE(res.converged);
    EXPECT_LT(res.value, 1e-8);
    for (double v : res.x)
        EXPECT_NEAR(v, 1.0, 1e-3);
}

TEST(NelderMead, MinimizesRosenbrock2D)
{
    NelderMeadOptions opts;
    opts.max_iterations = 5000;
    const auto res = nelder_mead(rosenbrock, {-1.2, 1.0}, opts);
    EXPECT_NEAR(res.x[0], 1.0, 1e-3);
    EXPECT_NEAR(res.x[1], 1.0, 1e-3);
}

TEST(NelderMead, HandlesNonSmoothObjective)
{
    const auto res = nelder_mead(
        [](const Vector& x) { return std::abs(x[0] - 2.0) + std::abs(x[1]); },
        {10.0, -7.0});
    EXPECT_NEAR(res.x[0], 2.0, 1e-4);
    EXPECT_NEAR(res.x[1], 0.0, 1e-4);
}

TEST(NelderMead, RespectsBounds)
{
    NelderMeadOptions opts;
    opts.bounds.lower = {2.0, -10.0};
    opts.bounds.upper = {10.0, 10.0};
    const auto res = nelder_mead(sphere, {5.0, 5.0}, opts);
    // Unconstrained optimum (1,1) is outside; the bound binds at x0 = 2.
    EXPECT_NEAR(res.x[0], 2.0, 1e-6);
    EXPECT_NEAR(res.x[1], 1.0, 1e-4);
}

TEST(NelderMead, ReportsEvaluations)
{
    const auto res = nelder_mead(sphere, {3.0});
    EXPECT_GT(res.evaluations, 0u);
    EXPECT_TRUE(res.converged);
}

TEST(Bfgs, MinimizesQuadraticExactly)
{
    const auto res = bfgs(sphere, {8.0, -2.0});
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 1.0, 1e-6);
    EXPECT_NEAR(res.x[1], 1.0, 1e-6);
}

TEST(Bfgs, MinimizesRosenbrock)
{
    BfgsOptions opts;
    opts.max_iterations = 2000;
    const auto res = bfgs(rosenbrock, {-1.2, 1.0}, opts);
    EXPECT_NEAR(res.x[0], 1.0, 1e-4);
    EXPECT_NEAR(res.x[1], 1.0, 1e-4);
}

TEST(Bfgs, UsesAnalyticGradientWhenProvided)
{
    const GradientFn grad = [](const Vector& x) {
        return Vector{2.0 * (x[0] - 1.0), 2.0 * (x[1] - 1.0)};
    };
    const auto res = bfgs(sphere, {4.0, 4.0}, {}, grad);
    EXPECT_TRUE(res.converged);
    EXPECT_NEAR(res.x[0], 1.0, 1e-6);
}

TEST(Bfgs, RespectsBounds)
{
    BfgsOptions opts;
    opts.bounds.lower = {3.0};
    opts.bounds.upper = {100.0};
    const auto res = bfgs(sphere, {50.0}, opts);
    EXPECT_NEAR(res.x[0], 3.0, 1e-6);
}

TEST(Constrained, EqualityConstraintOnCircle)
{
    // min x + y  s.t.  x^2 + y^2 = 2  ->  (-1, -1).
    const ObjectiveFn f = [](const Vector& x) { return x[0] + x[1]; };
    const std::vector<Constraint> cons{
        {Constraint::Type::kEquality,
         [](const Vector& x) { return x[0] * x[0] + x[1] * x[1] - 2.0; }}};
    ConstrainedOptions opts;
    opts.inner = InnerSolver::kBfgs;
    // Start in the minimizer's basin; (1, 1) is a KKT point too (a
    // constrained maximum), and penalty methods can land there otherwise.
    const auto res = minimize_constrained(f, {-0.5, -1.5}, cons, opts);
    EXPECT_TRUE(res.feasible);
    EXPECT_NEAR(res.x[0], -1.0, 1e-3);
    EXPECT_NEAR(res.x[1], -1.0, 1e-3);
}

TEST(Constrained, InequalityBecomesActive)
{
    // min (x-3)^2  s.t.  x <= 1  ->  x = 1.
    const ObjectiveFn f = [](const Vector& x) {
        return (x[0] - 3.0) * (x[0] - 3.0);
    };
    const std::vector<Constraint> cons{
        {Constraint::Type::kInequality,
         [](const Vector& x) { return x[0] - 1.0; }}};
    const auto res = minimize_constrained(f, {0.0}, cons);
    EXPECT_TRUE(res.feasible);
    EXPECT_NEAR(res.x[0], 1.0, 1e-3);
}

TEST(Constrained, InactiveConstraintLeavesOptimumAlone)
{
    const ObjectiveFn f = sphere; // optimum (1, 1)
    const std::vector<Constraint> cons{
        {Constraint::Type::kInequality,
         [](const Vector& x) { return x[0] + x[1] - 100.0; }}};
    const auto res = minimize_constrained(f, {5.0, 5.0}, cons);
    EXPECT_TRUE(res.feasible);
    EXPECT_NEAR(res.x[0], 1.0, 1e-3);
    EXPECT_NEAR(res.x[1], 1.0, 1e-3);
}

TEST(Constrained, ResourceAllocationProblem)
{
    // max min-style smooth stand-in: minimize 1/x + 4/y s.t. x + y <= 10.
    // KKT: y = 2x, x + y = 10 -> x = 10/3, y = 20/3.
    const ObjectiveFn f = [](const Vector& v) {
        return 1.0 / v[0] + 4.0 / v[1];
    };
    const std::vector<Constraint> cons{
        {Constraint::Type::kInequality,
         [](const Vector& v) { return v[0] + v[1] - 10.0; }}};
    ConstrainedOptions opts;
    opts.bounds.lower = {0.1, 0.1};
    opts.bounds.upper = {10.0, 10.0};
    const auto res = minimize_constrained(f, {1.0, 1.0}, cons, opts);
    EXPECT_TRUE(res.feasible);
    EXPECT_NEAR(res.x[0], 10.0 / 3.0, 0.05);
    EXPECT_NEAR(res.x[1], 20.0 / 3.0, 0.05);
}

} // namespace
} // namespace lognic::solver
