#include "lognic/solver/annealing.hpp"

#include <gtest/gtest.h>

namespace lognic::solver {
namespace {

double
int_sphere(const IntVector& x)
{
    double s = 0.0;
    for (auto v : x) {
        const double d = static_cast<double>(v) - 7.0;
        s += d * d;
    }
    return s;
}

TEST(SimulatedAnnealing, FindsOptimumOnSmoothLandscape)
{
    const std::vector<IntRange> ranges{{0, 20, 1}, {0, 20, 1}};
    const auto res = simulated_annealing(int_sphere, {0, 20}, ranges);
    EXPECT_EQ(res.x, (IntVector{7, 7}));
    EXPECT_DOUBLE_EQ(res.value, 0.0);
}

TEST(SimulatedAnnealing, EscapesLocalMinima)
{
    // A deceptive landscape: local minimum at x=2 (value 1), global at
    // x=18 (value 0), separated by a high barrier.
    const IntObjectiveFn f = [](const IntVector& x) {
        const auto v = x[0];
        if (v == 18)
            return 0.0;
        if (v == 2)
            return 1.0;
        if (v >= 5 && v <= 15)
            return 30.0; // barrier
        return 10.0;
    };
    AnnealingOptions opts;
    opts.iterations = 20000;
    opts.initial_temperature = 20.0;
    opts.cooling = 0.9995;
    opts.max_move = 4;
    const auto res =
        simulated_annealing(f, {2}, {{0, 20, 1}}, opts);
    EXPECT_EQ(res.x, (IntVector{18}));
}

TEST(SimulatedAnnealing, DeterministicForFixedSeed)
{
    const std::vector<IntRange> ranges{{0, 50, 1}, {0, 50, 1},
                                       {0, 50, 1}};
    AnnealingOptions opts;
    opts.seed = 99;
    const auto a = simulated_annealing(int_sphere, {}, ranges, opts);
    const auto b = simulated_annealing(int_sphere, {}, ranges, opts);
    EXPECT_EQ(a.x, b.x);
    EXPECT_DOUBLE_EQ(a.value, b.value);
}

TEST(SimulatedAnnealing, HonorsRangeStep)
{
    const std::vector<IntRange> ranges{{0, 20, 5}}; // only 0,5,10,15,20
    const auto res = simulated_annealing(int_sphere, {0}, ranges);
    EXPECT_TRUE(res.x[0] % 5 == 0);
    EXPECT_EQ(res.x[0], 5); // closest multiple of 5 to 7
}

TEST(SimulatedAnnealing, ClampsStartAndValidates)
{
    const auto res =
        simulated_annealing(int_sphere, {100}, {{0, 10, 1}});
    EXPECT_LE(res.x[0], 10);
    EXPECT_THROW(simulated_annealing(int_sphere, {}, {}),
                 std::invalid_argument);
    EXPECT_THROW(simulated_annealing(int_sphere, {1, 2}, {{0, 5, 1}}),
                 std::invalid_argument);
    EXPECT_THROW(simulated_annealing(int_sphere, {}, {{5, 1, 1}}),
                 std::invalid_argument);
}

TEST(SimulatedAnnealing, TracksBestEverVisited)
{
    // Even if late high-temperature moves wander off, the reported point
    // must be the best seen.
    AnnealingOptions opts;
    opts.iterations = 300;
    opts.initial_temperature = 100.0; // very hot: accepts almost anything
    opts.cooling = 1.0;               // never cools
    const auto res = simulated_annealing(
        int_sphere, {7, 7}, {{0, 20, 1}, {0, 20, 1}}, opts);
    EXPECT_DOUBLE_EQ(res.value, 0.0); // started at the optimum, kept it
}

TEST(SimulatedAnnealing, MatchesExhaustiveOnSmallSpaces)
{
    // On spaces small enough to enumerate, a reasonably-budgeted anneal
    // must find the same optimum the exhaustive search proves.
    const IntObjectiveFn f = [](const IntVector& x) {
        // A rugged but fully enumerable 2-D landscape.
        const double a = static_cast<double>(x[0]);
        const double b = static_cast<double>(x[1]);
        return (a - 11.0) * (a - 11.0) + (b - 3.0) * (b - 3.0)
            + 5.0 * ((x[0] + x[1]) % 3);
    };
    const std::vector<IntRange> ranges{{0, 15, 1}, {0, 15, 1}};
    const auto truth = exhaustive_search(f, ranges);
    AnnealingOptions opts;
    opts.iterations = 20000;
    opts.initial_temperature = 10.0;
    opts.cooling = 0.9995;
    const auto approx = simulated_annealing(f, {0, 15}, ranges, opts);
    EXPECT_DOUBLE_EQ(approx.value, truth.value);
}

} // namespace
} // namespace lognic::solver
