#include "lognic/solver/discrete.hpp"

#include <gtest/gtest.h>

namespace lognic::solver {
namespace {

double
int_sphere(const IntVector& x)
{
    double s = 0.0;
    for (auto v : x) {
        const double d = static_cast<double>(v) - 3.0;
        s += d * d;
    }
    return s;
}

TEST(ExhaustiveSearch, FindsGlobalOptimum)
{
    const std::vector<IntRange> ranges{{0, 10, 1}, {0, 10, 1}};
    const auto res = exhaustive_search(int_sphere, ranges);
    EXPECT_EQ(res.x, (IntVector{3, 3}));
    EXPECT_DOUBLE_EQ(res.value, 0.0);
    EXPECT_EQ(res.evaluations, 121u);
}

TEST(ExhaustiveSearch, HonorsStep)
{
    const std::vector<IntRange> ranges{{0, 10, 2}};
    const auto res = exhaustive_search(int_sphere, ranges);
    EXPECT_EQ(res.evaluations, 6u); // 0,2,4,6,8,10
    // 3 is not reachable; both 2 and 4 give value 1 and 2 comes first.
    EXPECT_DOUBLE_EQ(res.value, 1.0);
}

TEST(ExhaustiveSearch, GuardsAgainstBlowup)
{
    const std::vector<IntRange> ranges{{0, 999, 1}, {0, 999, 1}, {0, 999, 1}};
    EXPECT_THROW(exhaustive_search(int_sphere, ranges, 1000),
                 std::invalid_argument);
}

TEST(ExhaustiveSearch, RejectsBadRanges)
{
    EXPECT_THROW(exhaustive_search(int_sphere, {{0, 10, 0}}),
                 std::invalid_argument);
    EXPECT_THROW(exhaustive_search(int_sphere, {{5, 2, 1}}),
                 std::invalid_argument);
}

TEST(CoordinateDescent, FindsOptimumOnSeparableObjective)
{
    const std::vector<IntRange> ranges{{0, 20, 1}, {0, 20, 1}, {0, 20, 1}};
    const auto res = coordinate_descent(int_sphere, {20, 0, 10}, ranges);
    EXPECT_EQ(res.x, (IntVector{3, 3, 3}));
    EXPECT_DOUBLE_EQ(res.value, 0.0);
}

TEST(CoordinateDescent, ClampsStartIntoRange)
{
    const std::vector<IntRange> ranges{{0, 5, 1}};
    const auto res = coordinate_descent(int_sphere, {100}, ranges);
    EXPECT_EQ(res.x, (IntVector{3}));
}

TEST(CoordinateDescent, DimensionMismatchThrows)
{
    EXPECT_THROW(coordinate_descent(int_sphere, {1, 2}, {{0, 5, 1}}),
                 std::invalid_argument);
}

TEST(GridSearch, FindsMinimumOnGrid)
{
    const auto res = grid_search(
        [](const std::vector<double>& x) {
            return (x[0] - 0.5) * (x[0] - 0.5);
        },
        {{0.0, 1.0, 11}});
    EXPECT_NEAR(res.x[0], 0.5, 1e-12);
    EXPECT_EQ(res.evaluations, 11u);
}

TEST(GridSearch, CoversEndpoints)
{
    // Minimum at the upper endpoint must be found exactly.
    const auto res = grid_search(
        [](const std::vector<double>& x) { return -x[0]; },
        {{0.0, 2.0, 5}});
    EXPECT_DOUBLE_EQ(res.x[0], 2.0);
}

TEST(GridSearch, MultiDimensionalSweep)
{
    const auto res = grid_search(
        [](const std::vector<double>& x) {
            return (x[0] - 1.0) * (x[0] - 1.0) + (x[1] + 1.0) * (x[1] + 1.0);
        },
        {{-2.0, 2.0, 5}, {-2.0, 2.0, 5}});
    EXPECT_DOUBLE_EQ(res.x[0], 1.0);
    EXPECT_DOUBLE_EQ(res.x[1], -1.0);
    EXPECT_EQ(res.evaluations, 25u);
}

TEST(GridSearch, RejectsDegenerateRanges)
{
    EXPECT_THROW(grid_search([](const std::vector<double>&) { return 0.0; },
                             {{0.0, 1.0, 1}}),
                 std::invalid_argument);
}

} // namespace
} // namespace lognic::solver
