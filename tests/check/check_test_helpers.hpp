/**
 * @file
 * Shared builders for lognic::check tests: hand-built scenarios whose
 * queueing behaviour is known in closed form.
 */
#ifndef LOGNIC_TESTS_CHECK_TEST_HELPERS_HPP_
#define LOGNIC_TESTS_CHECK_TEST_HELPERS_HPP_

#include <utility>

#include "lognic/core/model.hpp"
#include "lognic/io/serialize.hpp"

namespace lognic::test {

/**
 * ingress -> worker -> egress with one engine, zero overhead, and free
 * edges: under Poisson arrivals and stochastic service the worker IS an
 * M/M/1/N queue (scv == 1) or an M/G/1 queue (0 < scv < 1, deep queue).
 * The arrival rate is set so rho = @p rho exactly.
 */
inline io::Scenario
degenerate_scenario(double rho, double scv, std::uint32_t capacity,
                    double size_bytes = 1024.0)
{
    core::HardwareModel hw("check-test-nic", Bandwidth::from_gbps(400.0),
                           Bandwidth::from_gbps(300.0),
                           Bandwidth::from_gbps(200.0));
    core::IpSpec spec;
    spec.name = "worker";
    spec.kind = core::IpKind::kCpuCores;
    spec.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(0.8),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    spec.max_engines = 1;
    spec.default_queue_capacity = capacity;
    spec.service_scv = scv;
    const core::IpId ip = hw.add_ip(spec);

    core::ExecutionGraph g("degenerate");
    const auto in = g.add_ingress();
    core::VertexParams params;
    params.parallelism = 1;
    const auto v = g.add_ip_vertex("worker", ip, params);
    const auto eg = g.add_egress();
    g.add_edge(in, v);
    g.add_edge(v, eg);

    const double mean_service =
        spec.roofline.engine().service_time(Bytes{size_bytes}).seconds();
    const double lambda = rho / mean_service;
    auto traffic = core::TrafficProfile::fixed(
        Bytes{size_bytes},
        Bandwidth::from_bytes_per_sec(lambda * size_bytes));
    return io::Scenario{std::move(hw), std::move(g), std::move(traffic)};
}

/// ingress -> parse -> crypto -> egress, offered load pinned to
/// @p rho x the model's mixed-traffic capacity.
inline io::Scenario
two_stage_scenario(double rho)
{
    core::HardwareModel hw("check-test-nic", Bandwidth::from_gbps(400.0),
                           Bandwidth::from_gbps(300.0),
                           Bandwidth::from_gbps(200.0));
    core::IpSpec parse;
    parse.name = "parse";
    parse.kind = core::IpKind::kCpuCores;
    parse.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(0.6),
                           Bandwidth::from_gigabytes_per_sec(6.0)},
        {});
    parse.max_engines = 4;
    parse.default_queue_capacity = 32;
    const core::IpId p = hw.add_ip(parse);
    core::IpSpec crypto;
    crypto.name = "crypto";
    crypto.kind = core::IpKind::kAccelerator;
    crypto.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.2),
                           Bandwidth::from_gigabytes_per_sec(3.0)},
        {});
    crypto.max_engines = 2;
    crypto.default_queue_capacity = 48;
    const core::IpId c = hw.add_ip(crypto);

    core::ExecutionGraph g("two-stage");
    const auto in = g.add_ingress();
    const auto v0 = g.add_ip_vertex("parse", p, {});
    const auto v1 = g.add_ip_vertex("crypto", c, {});
    const auto eg = g.add_egress();
    g.add_edge(in, v0);
    g.add_edge(v0, v1);
    g.add_edge(v1, eg);

    auto traffic = core::TrafficProfile::mixed(
        {{Bytes{256.0}, 0.3}, {Bytes{1500.0}, 0.7}},
        Bandwidth::from_gbps(1.0));
    const Bandwidth cap = core::Model(hw).throughput(g, traffic).capacity;
    traffic.set_ingress_bandwidth(Bandwidth{cap.bits_per_sec() * rho});
    return io::Scenario{std::move(hw), std::move(g), std::move(traffic)};
}

} // namespace lognic::test

#endif // LOGNIC_TESTS_CHECK_TEST_HELPERS_HPP_
