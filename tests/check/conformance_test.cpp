/**
 * @file
 * Differential conformance (satellite of the lognic::check harness): on
 * degenerate topologies the DES must reproduce the textbook closed forms,
 * and on general topologies it must stay inside the model's envelope.
 *
 * Tolerances mirror ConformanceTolerances' defaults and rationale: the
 * degenerate DES *is* the closed-form system, so deviations are pure
 * finite-horizon estimator noise — up to ~15% for slowly-mixing
 * occupancy/sojourn averages at high rho, a few percent for utilization
 * and blocking, with pinned seeds keeping every run reproducible.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "check_test_helpers.hpp"
#include "lognic/check/conformance.hpp"
#include "lognic/queueing/mg1.hpp"
#include "lognic/queueing/mm1n.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::check {
namespace {

sim::SimOptions
pinned_options(std::uint64_t seed)
{
    sim::SimOptions opts;
    opts.duration = 0.05;
    opts.warmup_fraction = 0.2;
    opts.seed = seed;
    return opts;
}

const sim::VertexStats&
worker_stats(const sim::SimResult& res)
{
    const auto it = std::find_if(
        res.vertex_stats.begin(), res.vertex_stats.end(),
        [](const sim::VertexStats& s) { return s.name == "worker"; });
    EXPECT_NE(it, res.vertex_stats.end());
    return *it;
}

TEST(DegenerateEquivalence, PoissonExponentialMatchesMm1n)
{
    // One vertex, one engine, Poisson arrivals, exponential service,
    // capacity 16, rho = 0.9: exactly an M/M/1/16 queue.
    const double rho = 0.9;
    const std::uint32_t capacity = 16;
    const io::Scenario sc = test::degenerate_scenario(rho, 1.0, capacity);
    const sim::SimOptions opts = pinned_options(20260808);
    const sim::SimResult res =
        sim::simulate(sc.hw, sc.graph, sc.traffic, opts);
    ASSERT_FALSE(res.truncated);
    ASSERT_GT(res.completed, 10000u);

    const auto view = single_queue_view(sc, opts);
    ASSERT_TRUE(view.has_value());
    EXPECT_DOUBLE_EQ(view->scv, 1.0);
    EXPECT_EQ(view->capacity, capacity);
    EXPECT_NEAR(view->lambda / view->mu, rho, 1e-9);

    const queueing::Mm1nQueue q(view->lambda, view->mu, capacity);
    const auto& vs = worker_stats(res);
    const ConformanceTolerances tol;
    EXPECT_NEAR(vs.mean_occupancy, q.mean_in_system(),
                tol.mm1n_occupancy_rel * q.mean_in_system()
                    + tol.mm1n_occupancy_abs);
    EXPECT_NEAR(vs.utilization, q.utilization(),
                tol.mm1n_utilization_abs);
    EXPECT_NEAR(res.drop_rate, q.blocking_probability(),
                tol.mm1n_drop_abs);
    EXPECT_NEAR(res.mean_latency.seconds(), q.mean_sojourn_time(),
                tol.mm1n_sojourn_rel * q.mean_sojourn_time());

    // The comparator agrees with the hand comparison above.
    EXPECT_TRUE(check_closed_forms(sc, opts, res).empty());
}

TEST(DegenerateEquivalence, GammaServiceMatchesMg1Sojourn)
{
    // scv = 0.25 gamma service, deep queue (no blocking), rho = 0.6:
    // Pollaczek-Khinchine applies.
    const double rho = 0.6, scv = 0.25;
    const io::Scenario sc = test::degenerate_scenario(rho, scv, 256);
    const sim::SimOptions opts = pinned_options(31337);
    const sim::SimResult res =
        sim::simulate(sc.hw, sc.graph, sc.traffic, opts);
    ASSERT_FALSE(res.truncated);
    EXPECT_EQ(res.dropped_total, 0u); // deep queue: P-K preconditions hold

    const auto view = single_queue_view(sc, opts);
    ASSERT_TRUE(view.has_value());
    EXPECT_DOUBLE_EQ(view->scv, scv);

    const queueing::Mg1Queue q(view->lambda, 1.0 / view->mu, scv);
    const ConformanceTolerances tol;
    EXPECT_NEAR(res.mean_latency.seconds(), q.mean_sojourn_time(),
                tol.mg1_sojourn_rel * q.mean_sojourn_time());
    EXPECT_NEAR(worker_stats(res).mean_occupancy, q.mean_in_system(),
                tol.mm1n_occupancy_rel * q.mean_in_system()
                    + tol.mm1n_occupancy_abs);
    EXPECT_TRUE(check_closed_forms(sc, opts, res).empty());
}

TEST(SingleQueueView, RejectsNonDegenerateShapes)
{
    const sim::SimOptions opts = pinned_options(1);
    // Two IP vertices: not a single queue.
    EXPECT_FALSE(
        single_queue_view(test::two_stage_scenario(0.5), opts).has_value());
    // Deterministic service (scv = 0): M/D/1/N is not covered.
    EXPECT_FALSE(
        single_queue_view(test::degenerate_scenario(0.5, 0.0, 32), opts)
            .has_value());
    // Deterministic arrivals break the Poisson assumption.
    sim::SimOptions det = opts;
    det.poisson_arrivals = false;
    EXPECT_FALSE(
        single_queue_view(test::degenerate_scenario(0.5, 1.0, 32), det)
            .has_value());
}

TEST(ModelVsSim, DegenerateAndDagScenariosStayInEnvelope)
{
    const sim::SimOptions opts = pinned_options(77);
    for (const io::Scenario& sc : {test::degenerate_scenario(0.7, 1.0, 32),
                                   test::two_stage_scenario(0.6)}) {
        const sim::SimResult res =
            sim::simulate(sc.hw, sc.graph, sc.traffic, opts);
        const auto vs = check_model_vs_sim(sc, res);
        EXPECT_TRUE(vs.empty())
            << sc.graph.name() << ": " << (vs.empty() ? "" : vs[0].message);
    }
}

TEST(Monotonicity, LadderIsCleanOnHonestSystem)
{
    const io::Scenario sc = test::degenerate_scenario(0.6, 1.0, 32);
    EXPECT_TRUE(
        check_latency_monotonicity(sc, pinned_options(5)).empty());
}

TEST(Monotonicity, ImpossibleSlackProvesTheCheckIsWired)
{
    // A floor *above* the previous rung's latency cannot be met, so the
    // oracle must fire — proving violations propagate out of the ladder.
    const io::Scenario sc = test::degenerate_scenario(0.6, 1.0, 32);
    ConformanceTolerances absurd;
    absurd.monotonic_slack_rel = -10.0;
    absurd.monotonic_slack_abs_us = 0.0;
    std::uint64_t sims = 0;
    const auto vs =
        check_latency_monotonicity(sc, pinned_options(5), absurd, &sims);
    EXPECT_FALSE(vs.empty());
    EXPECT_EQ(sims, 3u);
    EXPECT_EQ(vs[0].oracle, "conformance.monotonic");
}

} // namespace
} // namespace lognic::check
