/**
 * @file
 * The scenario generator: deterministic, always valid, and bounded to the
 * configured load regime.
 */
#include <gtest/gtest.h>

#include "lognic/check/generate.hpp"
#include "lognic/core/model.hpp"
#include "lognic/io/serialize.hpp"

namespace lognic::check {
namespace {

TEST(CheckRng, SameSeedSameStream)
{
    CheckRng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(CheckRng, Uniform01StaysInUnitInterval)
{
    CheckRng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform01();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(CheckRng, UniformU32CoversInclusiveRange)
{
    CheckRng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const std::uint32_t v = rng.uniform_u32(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3u;
        saw_hi |= v == 6u;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(GenerateScenario, SameSeedIsBitIdentical)
{
    const GeneratedScenario a = generate_scenario(12345);
    const GeneratedScenario b = generate_scenario(12345);
    EXPECT_EQ(io::to_json(a.scenario).dump(), io::to_json(b.scenario).dump());
    EXPECT_EQ(a.single_queue, b.single_queue);
    EXPECT_DOUBLE_EQ(a.target_utilization, b.target_utilization);
}

TEST(GenerateScenario, DifferentSeedsDiffer)
{
    const GeneratedScenario a = generate_scenario(1);
    const GeneratedScenario b = generate_scenario(2);
    EXPECT_NE(io::to_json(a.scenario).dump(), io::to_json(b.scenario).dump());
}

TEST(GenerateScenario, ManySeedsValidateAndStayInRegime)
{
    const GeneratorConfig cfg;
    std::size_t single = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        const GeneratedScenario gen = generate_scenario(seed, cfg);
        // generate_scenario validates internally; re-validate to make the
        // contract explicit in the test.
        EXPECT_NO_THROW(gen.scenario.graph.validate(gen.scenario.hw))
            << seed;
        EXPECT_GE(gen.target_utilization, cfg.rho_min) << seed;
        EXPECT_LE(gen.target_utilization, cfg.rho_max) << seed;
        EXPECT_GT(gen.scenario.traffic.ingress_bandwidth().bits_per_sec(),
                  0.0)
            << seed;
        if (gen.single_queue)
            ++single;
    }
    // With single_queue_fraction = 0.35 both branches must appear often.
    EXPECT_GT(single, 30u);
    EXPECT_LT(single, 170u);
}

TEST(GenerateScenario, SingleQueueDrawsPinRhoExactly)
{
    for (std::uint64_t seed = 0; seed < 400; ++seed) {
        const GeneratedScenario gen = generate_scenario(seed);
        if (!gen.single_queue)
            continue;
        ASSERT_EQ(gen.scenario.graph.vertex_count(), 3u) << seed;
        ASSERT_EQ(gen.scenario.traffic.classes().size(), 1u) << seed;
        const auto& cls = gen.scenario.traffic.classes()[0];
        const auto ip = gen.scenario.hw.find_ip("worker");
        ASSERT_TRUE(ip.has_value()) << seed;
        const double mean_service = gen.scenario.hw.ip(*ip)
                                        .roofline.engine()
                                        .service_time(cls.size)
                                        .seconds();
        const double lambda =
            gen.scenario.traffic.ingress_bandwidth().bytes_per_sec()
            / cls.size.bytes();
        EXPECT_NEAR(lambda * mean_service, gen.target_utilization, 1e-9)
            << seed;
    }
}

TEST(GenerateScenario, DagDrawsPinRhoAtModelCapacity)
{
    for (std::uint64_t seed = 0; seed < 100; ++seed) {
        const GeneratedScenario gen = generate_scenario(seed);
        if (gen.single_queue)
            continue;
        const core::Model model(gen.scenario.hw);
        const double capacity =
            model.throughput(gen.scenario.graph, gen.scenario.traffic)
                .capacity.bits_per_sec();
        const double offered =
            gen.scenario.traffic.ingress_bandwidth().bits_per_sec();
        EXPECT_NEAR(offered / capacity, gen.target_utilization, 1e-6)
            << seed;
    }
}

} // namespace
} // namespace lognic::check
