/**
 * @file
 * The randomized-trial harness: deterministic reports, clean runs on
 * honest code, minimal reproducing specs on failure, and a golden corpus
 * that loads, replays, and round-trips.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "check_test_helpers.hpp"
#include "lognic/check/harness.hpp"

namespace lognic::check {
namespace {

std::vector<std::filesystem::path>
corpus_files()
{
    std::vector<std::filesystem::path> files;
    for (const auto& entry :
         std::filesystem::directory_iterator(LOGNIC_CHECK_CORPUS_DIR))
        if (entry.path().extension() == ".json")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    return files;
}

CorpusEntry
load_entry(const std::filesystem::path& path)
{
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    return corpus_entry_from_json(io::Json::parse(buf.str()));
}

TEST(RunTrials, SmallBatchIsCleanAndAccountedFor)
{
    CheckOptions copts;
    copts.trials = 5;
    copts.seed = 7;
    copts.duration = 0.02;
    const CheckReport report = run_trials(copts);
    EXPECT_EQ(report.trials, 5u);
    EXPECT_EQ(report.violations, 0u);
    EXPECT_TRUE(report.failures.empty());
    // Each trial runs at least the base simulation, plus the
    // monotonicity ladder's three rungs when enabled.
    EXPECT_GE(report.sims_run, 5u * 4u);
}

TEST(RunTrials, SameSeedSameReportJson)
{
    CheckOptions copts;
    copts.trials = 3;
    copts.seed = 123;
    copts.duration = 0.02;
    EXPECT_EQ(to_json(run_trials(copts)).dump(2),
              to_json(run_trials(copts)).dump(2));
}

TEST(RunTrials, FailureCarriesMinimalReproducingSpec)
{
    // Impossible tolerance: every trial must fail, and the harness must
    // attach a spec that still reproduces some violation.
    CheckOptions copts;
    copts.trials = 1;
    copts.seed = 7;
    copts.duration = 0.02;
    copts.conformance.monotonic_slack_rel = -10.0;
    copts.conformance.monotonic_slack_abs_us = 0.0;
    const CheckReport report = run_trials(copts);
    ASSERT_EQ(report.failures.size(), 1u);
    const TrialFailure& f = report.failures[0];
    EXPECT_FALSE(f.violations.empty());
    ASSERT_TRUE(f.minimal_spec.contains("scenario"));
    ASSERT_TRUE(f.minimal_spec.contains("options"));
    // The spec is self-contained: it parses back into a runnable entry
    // that still fails under the same tolerances.
    const CorpusEntry entry = corpus_entry_from_json(f.minimal_spec);
    EXPECT_FALSE(check_scenario(entry.scenario, entry.options, copts,
                                entry.monotonicity)
                     .empty());
}

TEST(Corpus, EntriesLoadAndRoundTrip)
{
    const auto files = corpus_files();
    ASSERT_GE(files.size(), 3u);
    for (const auto& path : files) {
        const CorpusEntry entry = load_entry(path);
        EXPECT_FALSE(entry.name.empty()) << path;
        // to_json(corpus_entry_from_json(x)) is the identity on dumps.
        std::ifstream in(path);
        std::stringstream buf;
        buf << in.rdbuf();
        EXPECT_EQ(to_json(entry).dump(2) + "\n", buf.str()) << path;
    }
}

TEST(Corpus, GoldenEntriesReplayClean)
{
    std::vector<CorpusEntry> entries;
    for (const auto& path : corpus_files())
        entries.push_back(load_entry(path));
    const CheckReport report = replay_corpus(entries, {});
    EXPECT_EQ(report.corpus_entries, entries.size());
    EXPECT_EQ(report.violations, 0u)
        << to_json(report).dump(2);
}

TEST(Report, MergeAddsCountsAndConcatenatesFailures)
{
    CheckReport a;
    a.trials = 2;
    a.violations = 1;
    a.failures.push_back(TrialFailure{"x", 1, false, {}, io::Json{}});
    CheckReport b;
    b.corpus_entries = 3;
    b.sims_run = 9;
    const CheckReport m = merge(a, b);
    EXPECT_EQ(m.trials, 2u);
    EXPECT_EQ(m.corpus_entries, 3u);
    EXPECT_EQ(m.sims_run, 9u);
    EXPECT_EQ(m.violations, 1u);
    EXPECT_EQ(m.failures.size(), 1u);
}

TEST(Report, EmptyFailuresSerializeAsArray)
{
    const CheckReport report;
    const io::Json j = to_json(report);
    ASSERT_TRUE(j.contains("failures"));
    EXPECT_TRUE(j.at("failures").is_array()); // not null / not an object
}

} // namespace
} // namespace lognic::check
