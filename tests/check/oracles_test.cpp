/**
 * @file
 * Invariant oracles: silent on an honest simulation, loud on a tampered
 * one. Each tamper test corrupts one field of a real SimResult and
 * asserts the matching oracle (and only logic, not luck) flags it.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "check_test_helpers.hpp"
#include "lognic/check/oracles.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::check {
namespace {

sim::SimOptions
default_options()
{
    sim::SimOptions opts;
    opts.duration = 0.02;
    opts.warmup_fraction = 0.2;
    opts.seed = 99;
    return opts;
}

bool
fired(const std::vector<Violation>& vs, const std::string& oracle)
{
    return std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
        return v.oracle == oracle;
    });
}

class OraclesTest : public ::testing::Test {
  protected:
    OraclesTest()
        : scenario_(test::degenerate_scenario(0.7, 1.0, 32)),
          opts_(default_options()),
          result_(sim::simulate(scenario_.hw, scenario_.graph,
                                scenario_.traffic, opts_))
    {
    }

    io::Scenario scenario_;
    sim::SimOptions opts_;
    sim::SimResult result_;
};

TEST_F(OraclesTest, HonestRunHasNoViolations)
{
    const auto vs = check_invariants(scenario_, opts_, result_);
    EXPECT_TRUE(vs.empty()) << vs.size() << " violations, first: "
                            << (vs.empty() ? "" : vs[0].message);
}

TEST_F(OraclesTest, BrokenConservationIsFlagged)
{
    sim::SimResult bad = result_;
    bad.completed_total += 17; // phantom packets out of nowhere
    EXPECT_TRUE(fired(check_invariants(scenario_, opts_, bad),
                      "invariant.conservation"));
}

TEST_F(OraclesTest, UtilizationAboveOneIsFlagged)
{
    sim::SimResult bad = result_;
    ASSERT_FALSE(bad.vertex_stats.empty());
    bad.vertex_stats[0].utilization = 1.25;
    EXPECT_TRUE(
        fired(check_invariants(scenario_, opts_, bad), "invariant.range"));
}

TEST_F(OraclesTest, NegativeLatencyIsFlagged)
{
    sim::SimResult bad = result_;
    bad.mean_latency = Seconds{-1e-6};
    EXPECT_TRUE(
        fired(check_invariants(scenario_, opts_, bad), "invariant.range"));
}

TEST_F(OraclesTest, InconsistentDropRateIsFlagged)
{
    sim::SimResult bad = result_;
    bad.drop_rate = 0.5; // run had (almost) no drops at rho = 0.7
    EXPECT_TRUE(
        fired(check_invariants(scenario_, opts_, bad), "invariant.window"));
}

TEST_F(OraclesTest, ScaledUtilizationBreaksLittlesLaw)
{
    sim::SimResult bad = result_;
    const auto it = std::find_if(
        bad.vertex_stats.begin(), bad.vertex_stats.end(),
        [](const sim::VertexStats& s) { return s.name == "worker"; });
    ASSERT_NE(it, bad.vertex_stats.end());
    ASSERT_GE(it->served, InvariantTolerances{}.min_served);
    it->utilization *= 0.5; // accounting bug: busy time halved
    EXPECT_TRUE(
        fired(check_invariants(scenario_, opts_, bad), "invariant.little"));
}

TEST_F(OraclesTest, MetricsDivergingFromScalarsIsFlagged)
{
    sim::SimResult bad = result_;
    bad.completed += 100; // scalar view no longer matches the snapshot
    EXPECT_TRUE(
        fired(check_invariants(scenario_, opts_, bad), "invariant.metrics"));
}

TEST(ResolveShape, MirrorsSimulatorDefaults)
{
    // parallelism = 0 resolves to all engines; queue capacity 0 resolves
    // to the IP default — the same rules NicSimulator applies.
    io::Scenario sc = test::two_stage_scenario(0.5);
    const auto parse = sc.graph.find_vertex("parse");
    ASSERT_TRUE(parse.has_value());
    const auto shape = resolve_shape(sc, *parse, true);
    ASSERT_TRUE(shape.has_value());
    EXPECT_EQ(shape->engines, 4u);
    EXPECT_EQ(shape->capacity, 32u);
    EXPECT_EQ(shape->queue_count, 1u);
    EXPECT_FALSE(shape->rate_limiter);
    EXPECT_GT(shape->service_mean, 0.0);
}

TEST(ResolveShape, ExplicitParamsWin)
{
    io::Scenario sc = test::degenerate_scenario(0.5, 1.0, 16);
    const auto worker = sc.graph.find_vertex("worker");
    ASSERT_TRUE(worker.has_value());
    const auto shape = resolve_shape(sc, *worker, true);
    ASSERT_TRUE(shape.has_value());
    EXPECT_EQ(shape->engines, 1u); // parallelism = 1 beats max_engines
    EXPECT_EQ(shape->capacity, 16u);
    EXPECT_DOUBLE_EQ(shape->service_scv, 1.0);
}

} // namespace
} // namespace lognic::check
