/**
 * @file
 * Schema validation of the Chrome trace-event export, on real simulator
 * output for a paper scenario — the contract that ui.perfetto.dev and
 * chrome://tracing can open what `lognic trace` writes.
 */
#include "lognic/obs/trace.hpp"

#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/apps/inline_accel.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::obs {
namespace {

using test::mtu_traffic;
using test::small_nic;
using test::two_stage_graph;

sim::SimOptions
traced(ChromeTraceWriter& writer, std::uint64_t sample_every = 1)
{
    sim::SimOptions o;
    o.duration = 0.002;
    o.seed = 7;
    o.trace.sink = &writer;
    o.trace.sample_every = sample_every;
    return o;
}

TEST(TraceOptions, SamplingPredicate)
{
    ChromeTraceWriter w;
    TraceOptions off;
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.sampled(0));

    TraceOptions every{&w, 1, true};
    EXPECT_TRUE(every.enabled());
    EXPECT_TRUE(every.sampled(0));
    EXPECT_TRUE(every.sampled(17));

    TraceOptions nth{&w, 4, true};
    EXPECT_TRUE(nth.sampled(0));
    EXPECT_FALSE(nth.sampled(1));
    EXPECT_TRUE(nth.sampled(8));

    TraceOptions counters_only{&w, 0, true};
    EXPECT_TRUE(counters_only.enabled());
    EXPECT_FALSE(counters_only.sampled(0));
}

TEST(ChromeTraceWriter, EventPhasesMatchFormatSpec)
{
    ChromeTraceWriter w;
    const TrackId t = w.register_track("vertex-a");
    w.span(t, "serve", Seconds::from_micros(10.0),
           Seconds::from_micros(2.5));
    w.counter(t, "queue_depth", Seconds::from_micros(11.0), 3.0);
    w.instant(t, "drop", Seconds::from_micros(12.0));
    w.async_begin(42, "pkt", Seconds::from_micros(10.0));
    w.async_end(42, "pkt", Seconds::from_micros(13.0));
    EXPECT_EQ(w.event_count(), 5u);
    EXPECT_EQ(w.track_count(), 1u);

    const io::Json doc = w.json();
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
    const auto& events = doc.at("traceEvents").as_array();
    // 5 events + process_name + 1 thread_name.
    ASSERT_EQ(events.size(), 7u);

    // Every event carries the mandatory fields.
    for (const auto& e : events) {
        ASSERT_TRUE(e.is_object());
        EXPECT_TRUE(e.contains("ph"));
        EXPECT_TRUE(e.contains("pid"));
        EXPECT_TRUE(e.contains("name"));
    }

    // The complete span: ts/dur in microseconds.
    const auto& span = events[2];
    EXPECT_EQ(span.at("ph").as_string(), "X");
    EXPECT_EQ(span.at("name").as_string(), "serve");
    EXPECT_DOUBLE_EQ(span.at("ts").as_number(), 10.0);
    EXPECT_DOUBLE_EQ(span.at("dur").as_number(), 2.5);

    // The counter: name prefixed with the track, value under args.
    const auto& counter = events[3];
    EXPECT_EQ(counter.at("ph").as_string(), "C");
    EXPECT_EQ(counter.at("name").as_string(), "vertex-a.queue_depth");
    EXPECT_DOUBLE_EQ(counter.at("args").at("queue_depth").as_number(),
                     3.0);

    // The instant is thread-scoped.
    EXPECT_EQ(events[4].at("ph").as_string(), "i");
    EXPECT_EQ(events[4].at("s").as_string(), "t");

    // Async pair correlates on (cat, id); ids are hex strings (JSON
    // numbers are doubles and cannot hold a full uint64).
    EXPECT_EQ(events[5].at("ph").as_string(), "b");
    EXPECT_EQ(events[6].at("ph").as_string(), "e");
    EXPECT_EQ(events[5].at("cat").as_string(), "pkt");
    EXPECT_EQ(events[5].at("id").as_string(), "0x2a");
    EXPECT_EQ(events[5].at("id").as_string(),
              events[6].at("id").as_string());
}

TEST(ChromeTraceWriter, MetadataNamesEveryTrack)
{
    ChromeTraceWriter w;
    w.register_track("alpha");
    w.register_track("alpha/e0");
    const io::Json doc = w.json();
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].at("name").as_string(), "process_name");
    EXPECT_EQ(events[0].at("args").at("name").as_string(), "lognic-sim");
    EXPECT_EQ(events[1].at("name").as_string(), "thread_name");
    EXPECT_EQ(events[1].at("args").at("name").as_string(), "alpha");
    EXPECT_EQ(events[2].at("args").at("name").as_string(), "alpha/e0");
}

TEST(ChromeTraceWriter, RoundTripsThroughJsonParser)
{
    ChromeTraceWriter w;
    const TrackId t = w.register_track("v");
    w.span(t, "serve", Seconds::from_micros(1.0),
           Seconds::from_micros(1.0));
    std::ostringstream out;
    w.write(out);
    const io::Json parsed = io::Json::parse(out.str());
    EXPECT_EQ(parsed.at("traceEvents").as_array().size(), 3u);
}

/// End-to-end schema check on a paper scenario (the fig. 7/8 inline-
/// accelerator offload): per-vertex spans and queue-depth counters must
/// be present and well-formed.
TEST(SimulatorTrace, PaperScenarioProducesSpansAndCounters)
{
    const auto sc = apps::make_inline_accel(
        devices::LiquidIoKernel::kMd5, 12);
    ChromeTraceWriter w;
    const auto res = sim::simulate(
        sc.hw, sc.graph, mtu_traffic(10.0), traced(w));
    EXPECT_GT(res.completed, 0u);
    EXPECT_GT(w.event_count(), 0u);

    const io::Json doc = w.json();
    const auto& events = doc.at("traceEvents").as_array();
    std::set<std::string> track_names;
    std::size_t spans = 0, counters = 0, begins = 0, ends = 0;
    bool saw_queue_depth = false;
    for (const auto& e : events) {
        const std::string ph = e.at("ph").as_string();
        if (ph == "M" && e.at("name").as_string() == "thread_name")
            track_names.insert(e.at("args").at("name").as_string());
        if (ph == "X") {
            ++spans;
            // Spans carry non-negative microsecond timestamps/durations.
            EXPECT_GE(e.at("ts").as_number(), 0.0);
            EXPECT_GE(e.at("dur").as_number(), 0.0);
            const std::string name = e.at("name").as_string();
            EXPECT_TRUE(name == "serve" || name == "wait") << name;
        }
        if (ph == "C") {
            ++counters;
            const std::string name = e.at("name").as_string();
            if (name.find(".queue_depth") != std::string::npos)
                saw_queue_depth = true;
        }
        if (ph == "b")
            ++begins;
        if (ph == "e")
            ++ends;
    }
    EXPECT_GT(spans, 0u);
    EXPECT_GT(counters, 0u);
    EXPECT_TRUE(saw_queue_depth);
    // Every vertex of the graph contributes a named queue track plus
    // engine lanes ("<vertex>/e<k>").
    EXPECT_GE(track_names.size(), 2u);
    bool saw_engine_lane = false;
    for (const auto& n : track_names)
        saw_engine_lane |= n.find("/e") != std::string::npos;
    EXPECT_TRUE(saw_engine_lane);
    // Packet lifecycles: ends can lag begins (packets in flight at the
    // horizon never complete), never the reverse.
    EXPECT_GT(begins, 0u);
    EXPECT_LE(ends, begins);
}

TEST(SimulatorTrace, SamplingBoundsLifecycleSpans)
{
    const auto hw = small_nic();
    const auto g = two_stage_graph(hw);
    ChromeTraceWriter all;
    ChromeTraceWriter sampled;
    sim::simulate(hw, g, mtu_traffic(10.0), traced(all, 1));
    const auto res =
        sim::simulate(hw, g, mtu_traffic(10.0), traced(sampled, 8));

    auto count_begins = [](const ChromeTraceWriter& w) {
        const io::Json doc = w.json();
        std::size_t n = 0;
        for (const auto& e : doc.at("traceEvents").as_array())
            n += e.at("ph").as_string() == "b" ? 1 : 0;
        return n;
    };
    const std::size_t all_begins = count_begins(all);
    const std::size_t sampled_begins = count_begins(sampled);
    EXPECT_EQ(all_begins, res.generated);
    // Every-8th sampling: exactly ceil(generated / 8) lifecycles.
    EXPECT_EQ(sampled_begins, (res.generated + 7) / 8);
}

TEST(SimulatorTrace, CountersOnlyModeSuppressesLifecycles)
{
    const auto hw = small_nic();
    const auto g = two_stage_graph(hw);
    ChromeTraceWriter w;
    sim::simulate(hw, g, mtu_traffic(10.0), traced(w, 0));
    const io::Json doc = w.json();
    for (const auto& e : doc.at("traceEvents").as_array()) {
        const std::string ph = e.at("ph").as_string();
        EXPECT_TRUE(ph == "M" || ph == "C" || ph == "i") << ph;
    }
}

/// The overhead contract's correctness half: attaching a sink must not
/// change the simulation (no RNG draws, no event reordering) — traced and
/// untraced runs are bit-identical.
TEST(SimulatorTrace, TracingDoesNotPerturbSimulation)
{
    const auto hw = small_nic();
    const auto g = two_stage_graph(hw);
    sim::SimOptions plain;
    plain.duration = 0.005;
    plain.seed = 21;
    const auto a = sim::simulate(hw, g, mtu_traffic(12.0), plain);

    ChromeTraceWriter w;
    sim::SimOptions with_trace = plain;
    with_trace.trace.sink = &w;
    const auto b = sim::simulate(hw, g, mtu_traffic(12.0), with_trace);

    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_DOUBLE_EQ(a.delivered.gbps(), b.delivered.gbps());
    EXPECT_DOUBLE_EQ(a.mean_latency.seconds(), b.mean_latency.seconds());
    EXPECT_DOUBLE_EQ(a.p99_latency.seconds(), b.p99_latency.seconds());
    ASSERT_EQ(a.vertex_stats.size(), b.vertex_stats.size());
    for (std::size_t i = 0; i < a.vertex_stats.size(); ++i) {
        EXPECT_EQ(a.vertex_stats[i].served, b.vertex_stats[i].served);
        EXPECT_DOUBLE_EQ(a.vertex_stats[i].utilization,
                         b.vertex_stats[i].utilization);
    }
    // The structured snapshots agree too (identical numerics).
    EXPECT_EQ(a.metrics.to_json().dump(), b.metrics.to_json().dump());
}

TEST(SimulatorResult, MetricsSnapshotMirrorsScalarFields)
{
    const auto hw = small_nic();
    const auto g = two_stage_graph(hw);
    sim::SimOptions o;
    o.duration = 0.005;
    o.seed = 3;
    const auto res = sim::simulate(hw, g, mtu_traffic(10.0), o);
    ASSERT_FALSE(res.metrics.empty());
    EXPECT_EQ(res.metrics.counter_or_zero("sim.generated"),
              res.generated);
    EXPECT_EQ(res.metrics.counter_or_zero("sim.completed"),
              res.completed);
    EXPECT_EQ(res.metrics.counter_or_zero("sim.dropped"), res.dropped);
    EXPECT_DOUBLE_EQ(res.metrics.gauge_or("sim.delivered_gbps"),
                     res.delivered.gbps());
    EXPECT_DOUBLE_EQ(res.metrics.gauge_or("sim.drop_rate"),
                     res.drop_rate);
    // Per-vertex series exist for every measured vertex.
    for (const auto& vs : res.vertex_stats) {
        EXPECT_EQ(res.metrics.counter_or_zero("vertex." + vs.name
                                              + ".served"),
                  vs.served);
        EXPECT_DOUBLE_EQ(res.metrics.gauge_or("vertex." + vs.name
                                              + ".utilization"),
                         vs.utilization);
    }
    // The latency histogram integrates to the completed count.
    const auto& h = res.metrics.histograms.at("sim.latency_us");
    EXPECT_EQ(h.total, res.completed);
}

} // namespace
} // namespace lognic::obs
