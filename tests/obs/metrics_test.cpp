#include "lognic/obs/metrics.hpp"

#include <stdexcept>

#include <gtest/gtest.h>

namespace lognic::obs {
namespace {

TEST(Histogram, BucketsSamplesAtUpperBoundsInclusive)
{
    Histogram h({1.0, 10.0, 100.0});
    h.record(0.5);   // <= 1
    h.record(1.0);   // <= 1 (bound is inclusive)
    h.record(5.0);   // <= 10
    h.record(100.0); // <= 100
    h.record(250.0); // overflow
    ASSERT_EQ(h.counts().size(), 4u);
    EXPECT_EQ(h.counts()[0], 2u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_EQ(h.counts()[3], 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_NEAR(h.mean(), (0.5 + 1.0 + 5.0 + 100.0 + 250.0) / 5.0, 1e-12);
}

TEST(Histogram, RejectsMalformedBounds)
{
    EXPECT_THROW(Histogram({}), std::invalid_argument);
    EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, FindOrCreateSemantics)
{
    MetricsRegistry reg;
    reg.counter("a").add();
    reg.counter("a").add(2);
    EXPECT_EQ(reg.counter("a").value(), 3u);

    reg.gauge("g").set(1.5);
    reg.gauge("g").set(2.5); // last write wins
    EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);

    reg.histogram("h", {1.0, 2.0}).record(0.5);
    reg.histogram("h", {1.0, 2.0}).record(1.5); // same bounds: same hist
    EXPECT_EQ(reg.histogram("h", {1.0, 2.0}).total(), 2u);
    EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(MetricsRegistry, SnapshotExportsEverything)
{
    MetricsRegistry reg;
    reg.counter("c").add(7);
    reg.gauge("g").set(0.25);
    reg.histogram("h", {10.0}).record(3.0);
    const MetricsSnapshot s = reg.snapshot();
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.counter_or_zero("c"), 7u);
    EXPECT_EQ(s.counter_or_zero("missing"), 0u);
    EXPECT_DOUBLE_EQ(s.gauge_or("g"), 0.25);
    EXPECT_DOUBLE_EQ(s.gauge_or("missing", -1.0), -1.0);
    ASSERT_EQ(s.histograms.count("h"), 1u);
    EXPECT_EQ(s.histograms.at("h").total, 1u);
}

TEST(MetricsAggregate, CountersSumGaugesAverage)
{
    MetricsRegistry a;
    a.counter("n").add(10);
    a.gauge("util").set(0.2);
    MetricsRegistry b;
    b.counter("n").add(30);
    b.gauge("util").set(0.6);
    b.counter("only_b").add(1);

    const MetricsSnapshot agg =
        aggregate({a.snapshot(), b.snapshot()});
    EXPECT_EQ(agg.counter_or_zero("n"), 40u);
    EXPECT_EQ(agg.counter_or_zero("only_b"), 1u);
    // Gauges average over the snapshots that carry them.
    EXPECT_DOUBLE_EQ(agg.gauge_or("util"), 0.4);
}

TEST(MetricsAggregate, HistogramBucketsSumBucketwise)
{
    MetricsRegistry a;
    a.histogram("lat", {1.0, 2.0}).record(0.5);
    MetricsRegistry b;
    b.histogram("lat", {1.0, 2.0}).record(0.7);
    b.histogram("lat", {1.0, 2.0}).record(5.0);

    const MetricsSnapshot agg = aggregate({a.snapshot(), b.snapshot()});
    const HistogramSnapshot& h = agg.histograms.at("lat");
    EXPECT_EQ(h.counts[0], 2u);
    EXPECT_EQ(h.counts[2], 1u); // overflow bucket
    EXPECT_EQ(h.total, 3u);
    EXPECT_NEAR(h.sum, 6.2, 1e-12);
}

TEST(MetricsAggregate, MismatchedHistogramBoundsThrow)
{
    MetricsRegistry a;
    a.histogram("lat", {1.0, 2.0}).record(0.5);
    MetricsRegistry b;
    b.histogram("lat", {1.0, 3.0}).record(0.5);
    EXPECT_THROW(aggregate({a.snapshot(), b.snapshot()}),
                 std::invalid_argument);
}

TEST(MetricsAggregate, EmptyInputYieldsEmptySnapshot)
{
    EXPECT_TRUE(aggregate({}).empty());
    EXPECT_TRUE(MetricsSnapshot{}.empty());
}

TEST(MetricsSnapshot, JsonCarriesAllSections)
{
    MetricsRegistry reg;
    reg.counter("sim.dropped").add(4);
    reg.gauge("sim.drop_rate").set(0.04);
    reg.histogram("sim.latency_us", {1.0, 10.0}).record(2.0);
    const io::Json j = reg.snapshot().to_json();
    ASSERT_TRUE(j.is_object());
    EXPECT_DOUBLE_EQ(j.at("counters").at("sim.dropped").as_number(), 4.0);
    EXPECT_DOUBLE_EQ(j.at("gauges").at("sim.drop_rate").as_number(), 0.04);
    const io::Json& h = j.at("histograms").at("sim.latency_us");
    EXPECT_EQ(h.at("bounds").as_array().size(), 2u);
    EXPECT_EQ(h.at("counts").as_array().size(), 3u);
    EXPECT_DOUBLE_EQ(h.at("total").as_number(), 1.0);
}

TEST(MetricsSnapshot, JsonIsDeterministic)
{
    // std::map storage: identical insert orders or not, identical dump.
    MetricsRegistry a;
    a.counter("z").add(1);
    a.counter("a").add(2);
    MetricsRegistry b;
    b.counter("a").add(2);
    b.counter("z").add(1);
    EXPECT_EQ(a.snapshot().to_json().dump(), b.snapshot().to_json().dump());
}

} // namespace
} // namespace lognic::obs
