#include "lognic/obs/attribution.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::obs {
namespace {

using test::mtu_traffic;
using test::small_nic;
using test::two_stage_graph;

VertexObservation
obs_of(std::string name, double util, double occ = 0.0)
{
    VertexObservation v;
    v.name = std::move(name);
    v.utilization = util;
    v.mean_occupancy = occ;
    return v;
}

TEST(Attribute, RanksByUtilizationWithOccupancyTiebreak)
{
    const std::vector<VertexObservation> sim{
        obs_of("a", 0.3, 1.0), obs_of("b", 0.9, 0.5),
        obs_of("c", 0.9, 2.0), obs_of("d", 0.1, 0.0)};
    const auto report = attribute(sim, {}, 3);
    ASSERT_EQ(report.top.size(), 3u);
    EXPECT_EQ(report.top[0].name, "c"); // 0.9, higher occupancy
    EXPECT_EQ(report.top[1].name, "b");
    EXPECT_EQ(report.top[2].name, "a");
    EXPECT_TRUE(report.deltas.empty()); // no model side to join
}

TEST(Attribute, DeltasJoinByNameAndSortByMagnitude)
{
    const std::vector<VertexObservation> sim{
        obs_of("a", 0.50), obs_of("b", 0.80), obs_of("unmatched", 0.2)};
    const std::vector<VertexObservation> model{
        obs_of("a", 0.52), obs_of("b", 0.70), obs_of("model-only", 0.9)};
    const auto report = attribute(sim, model);
    ASSERT_EQ(report.deltas.size(), 2u);
    EXPECT_EQ(report.deltas[0].name, "b"); // |0.10| > |0.02|
    EXPECT_NEAR(report.deltas[0].delta, 0.10, 1e-12);
    EXPECT_NEAR(report.deltas[1].delta, -0.02, 1e-12);
}

TEST(Attribute, RenderAndJsonCarryBothSections)
{
    const auto report = attribute({obs_of("crypto", 0.75)},
                                  {obs_of("crypto", 0.80)});
    const std::string text = render(report);
    EXPECT_NE(text.find("crypto"), std::string::npos);
    EXPECT_NE(text.find("model-vs-sim"), std::string::npos);

    const io::Json j = to_json(report);
    ASSERT_EQ(j.at("top").as_array().size(), 1u);
    ASSERT_EQ(j.at("deltas").as_array().size(), 1u);
    EXPECT_NEAR(j.at("deltas").as_array()[0].at("delta").as_number(),
                -0.05, 1e-12);
}

TEST(ModelVertexUtilization, MatchesSimulatedUtilization)
{
    // The whole point of the report: the model's ρ and the measured
    // utilization must tell the same story on an uncongested scenario.
    const auto hw = small_nic();
    const auto g = two_stage_graph(hw);
    const auto traffic = mtu_traffic(8.0);

    const auto model = model_vertex_utilization(g, hw, traffic);
    ASSERT_EQ(model.size(), 2u); // cores + accel, passthroughs skipped

    sim::SimOptions o;
    o.duration = 0.02;
    o.seed = 5;
    const auto res = sim::simulate(hw, g, traffic, o);
    const auto report = attribute(sim::observations(res), model);
    ASSERT_EQ(report.deltas.size(), 2u);
    for (const auto& d : report.deltas) {
        EXPECT_GT(d.model_utilization, 0.0);
        EXPECT_NEAR(d.delta, 0.0, 0.05)
            << d.name << ": sim " << d.sim_utilization << " vs model "
            << d.model_utilization;
    }
}

TEST(ModelVertexUtilization, CapsRhoAtSaturation)
{
    // Overloaded vertex: ρ > 1 must be reported as 1 (a vertex cannot be
    // more than fully busy).
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::VertexParams p;
    p.parallelism = 1;
    const auto g = test::single_stage_graph(hw, p);
    const auto model = model_vertex_utilization(g, hw, mtu_traffic(100.0));
    ASSERT_EQ(model.size(), 1u);
    EXPECT_DOUBLE_EQ(model[0].utilization, 1.0);
}

TEST(PublishReport, ExportsModelEstimateAsMetrics)
{
    const auto hw = small_nic();
    const auto g = two_stage_graph(hw);
    const core::Model model(hw);
    const core::Report rep = model.estimate(g, mtu_traffic(8.0));

    MetricsRegistry reg;
    publish_report(rep, reg);
    const MetricsSnapshot s = reg.snapshot();
    EXPECT_EQ(s.counter_or_zero("model.estimates"), 1u);
    EXPECT_DOUBLE_EQ(s.gauge_or("model.capacity_gbps"),
                     rep.throughput.capacity.gbps());
    EXPECT_DOUBLE_EQ(s.gauge_or("model.mean_latency_us"),
                     rep.latency.mean.micros());
    EXPECT_DOUBLE_EQ(s.gauge_or("model.class.0.p99_us"),
                     rep.latency.per_class.at(0).p99.micros());
    // A second publish accumulates the counter, refreshes the gauges.
    publish_report(rep, reg);
    EXPECT_EQ(reg.snapshot().counter_or_zero("model.estimates"), 2u);
}

} // namespace
} // namespace lognic::obs
