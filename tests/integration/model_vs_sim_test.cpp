/**
 * @file
 * Integration tests: the analytical model and the packet-level simulator
 * are two independent implementations of the same semantics; on scenarios
 * within the model's assumptions they must agree. This is the in-repo
 * analogue of the paper's model-validation experiments.
 */
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/apps/inline_accel.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic {
namespace {

sim::SimOptions
long_run(std::uint64_t seed = 21)
{
    sim::SimOptions o;
    o.duration = 0.1;
    o.seed = seed;
    return o;
}

TEST(ModelVsSim, ThroughputAgreesBelowSaturation)
{
    const auto hw = test::small_nic();
    const auto g = test::two_stage_graph(hw);
    const core::Model model(hw);
    for (double load : {2.0, 8.0, 16.0}) {
        const auto traffic = test::mtu_traffic(load);
        const auto rep = model.throughput(g, traffic);
        const auto res = sim::simulate(hw, g, traffic, long_run());
        EXPECT_NEAR(res.delivered.gbps(), rep.achieved.gbps(),
                    0.05 * rep.achieved.gbps() + 0.2)
            << "load=" << load;
    }
}

TEST(ModelVsSim, SaturatedThroughputMatchesCapacity)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    core::VertexParams p;
    p.parallelism = 2;
    const auto g = test::single_stage_graph(hw, p);
    const core::Model model(hw);
    const auto traffic = test::mtu_traffic(100.0); // far over capacity
    const auto rep = model.throughput(g, traffic);
    const auto res = sim::simulate(hw, g, traffic, long_run());
    EXPECT_NEAR(res.delivered.gbps(), rep.capacity.gbps(),
                0.06 * rep.capacity.gbps());
}

TEST(ModelVsSim, LatencyAgreesAtModerateLoadSingleEngine)
{
    // The M/M/1/N latency model is exact for single-engine vertices.
    const auto hw = test::small_nic();
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 32;
    const auto g = test::single_stage_graph(hw, p);
    const core::Model model(hw);
    for (double load : {2.0, 5.0, 7.0}) {
        const auto traffic = test::mtu_traffic(load);
        const auto rep = model.latency(g, traffic);
        const auto res = sim::simulate(hw, g, traffic, long_run());
        EXPECT_NEAR(res.mean_latency.seconds(), rep.mean.seconds(),
                    0.08 * rep.mean.seconds())
            << "load=" << load;
    }
}

TEST(ModelVsSim, MultiEngineModelIsConservative)
{
    // With D engines the model books one M/M/1/N queue per engine; real
    // pooled queues (M/M/D) wait less, so the model upper-bounds the sim.
    const auto hw = test::small_nic();
    core::VertexParams p;
    p.parallelism = 8;
    const auto g = test::single_stage_graph(hw, p);
    const core::Model model(hw);
    const auto traffic = test::mtu_traffic(40.0);
    const auto rep = model.latency(g, traffic);
    const auto res = sim::simulate(hw, g, traffic, long_run());
    EXPECT_LE(res.mean_latency.seconds(), rep.mean.seconds() * 1.05);
    // But not absurdly so: within 3x at this load.
    EXPECT_GE(res.mean_latency.seconds(), rep.mean.seconds() / 3.0);
}

TEST(ModelVsSim, DropRatePredictedUnderOverload)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 8;
    const auto g = test::single_stage_graph(hw, p);
    const core::Model model(hw);
    const auto traffic = test::mtu_traffic(12.0); // ~1.4x capacity
    const auto rep = model.latency(g, traffic);
    const auto res = sim::simulate(hw, g, traffic, long_run());
    EXPECT_NEAR(res.drop_rate, rep.max_drop_probability, 0.03);
}

TEST(ModelVsSim, InlineAccelerationScenario)
{
    // Case-study #1 end to end: model and simulator agree on the achieved
    // bandwidth of the MD5 inline-acceleration graph at line rate.
    const auto sc = apps::make_inline_accel(devices::LiquidIoKernel::kMd5, 12);
    const core::Model model(sc.hw);
    const auto traffic = test::mtu_traffic(25.0);
    const auto rep = model.throughput(sc.graph, traffic);
    const auto res = sim::simulate(sc.hw, sc.graph, traffic, long_run());
    EXPECT_NEAR(res.delivered.gbps(), rep.achieved.gbps(),
                0.08 * rep.achieved.gbps());
}

TEST(ModelVsSim, PanicHybridParallelismSweepTracks)
{
    // Figures 18/19 shape: as IP4 parallelism rises, both model capacity
    // and simulated throughput rise then saturate together.
    const auto traffic = test::mtu_traffic(100.0);
    double prev_sim = 0.0;
    for (std::uint32_t d : {2u, 4u, 6u, 8u}) {
        const auto sc = apps::make_panic_hybrid(0.5, d);
        const core::Model model(sc.hw);
        // Under-provisioned IP4 sheds load; compare against the model's
        // goodput (delivered-under-drops) prediction, which is what a
        // testbed measures at the egress port.
        const auto rep = model.latency(sc.graph, traffic);
        const auto res =
            sim::simulate(sc.hw, sc.graph, traffic, long_run());
        const double predicted = rep.per_class[0].goodput.gbps();
        EXPECT_NEAR(res.delivered.gbps(), predicted,
                    0.12 * predicted + 0.5)
            << "D=" << d;
        EXPECT_GE(res.delivered.gbps(), prev_sim - 1.0);
        prev_sim = res.delivered.gbps();
    }
}

TEST(ModelVsSim, MixedTrafficProfile)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    const auto mixed = core::TrafficProfile::mixed(
        {{Bytes{64.0}, 0.2}, {Bytes{512.0}, 0.3}, {Bytes{1500.0}, 0.5}},
        Bandwidth::from_gbps(4.0));
    const core::Model model(hw);
    const auto rep = model.estimate(g, mixed);
    const auto res = sim::simulate(hw, g, mixed, long_run());
    EXPECT_NEAR(res.delivered.gbps(), rep.throughput.achieved.gbps(), 0.4);
    // Latency: same order of magnitude (mixed-class queueing is where the
    // model approximates hardest).
    EXPECT_NEAR(res.mean_latency.seconds(), rep.latency.mean.seconds(),
                0.5 * rep.latency.mean.seconds());
}

// Property sweep: achieved throughput never exceeds modelled capacity.
class CapacityBound : public testing::TestWithParam<double>
{
};

TEST_P(CapacityBound, SimNeverExceedsModelCapacity)
{
    const auto hw = test::small_nic();
    const auto g = test::two_stage_graph(hw);
    const core::Model model(hw);
    const auto traffic = test::mtu_traffic(GetParam());
    const auto rep = model.throughput(g, traffic);
    sim::SimOptions o;
    o.duration = 0.03;
    const auto res = sim::simulate(hw, g, traffic, o);
    EXPECT_LE(res.delivered.gbps(), rep.capacity.gbps() * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Loads, CapacityBound,
                         testing::Values(1.0, 5.0, 10.0, 20.0, 40.0, 80.0));

} // namespace
} // namespace lognic
