/**
 * @file
 * Cross-validation of the service-variability stack: the simulator's
 * gamma-distributed service sampling against the Pollaczek-Khinchine
 * closed form, across the SCV range.
 */
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/latency_model.hpp"
#include "lognic/queueing/mg1.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic {
namespace {

core::HardwareModel
nic_with_scv(double scv)
{
    core::HardwareModel hw("scv", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0),
                           Bandwidth::from_gbps(25.0));
    core::IpSpec ip;
    ip.name = "cores";
    ip.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.0),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    ip.max_engines = 1;
    ip.default_queue_capacity = 2048;
    ip.service_scv = scv;
    hw.add_ip(ip);
    return hw;
}

class ScvSweep : public testing::TestWithParam<double>
{
};

TEST_P(ScvSweep, SimulatorMatchesPollaczekKhinchine)
{
    const double scv = GetParam();
    const auto hw = nic_with_scv(scv);
    const auto g = test::single_stage_graph(hw);
    const double service = 1.375e-6;
    const double load = 0.7;
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1500.0},
        Bandwidth::from_bytes_per_sec(load / service * 1500.0));

    const double lambda = load / service;
    const queueing::Mg1Queue pk(lambda, service, scv);
    const double expected = pk.mean_sojourn_time();

    sim::SimOptions opts;
    opts.duration = 0.8;
    opts.seed = 31;
    const auto res = sim::simulate(hw, g, traffic, opts);
    EXPECT_NEAR(res.mean_latency.seconds(), expected, 0.07 * expected)
        << "scv=" << scv;

    // And the analytic model (which uses P-K below rho = 1 for scv < 1)
    // agrees with both.
    const auto est = core::estimate_latency(g, hw, traffic);
    if (scv <= 1.0) {
        EXPECT_NEAR(est.mean.seconds(), expected, 0.01 * expected)
            << "scv=" << scv;
    }
}

INSTANTIATE_TEST_SUITE_P(Variability, ScvSweep,
                         testing::Values(0.0, 0.25, 0.5, 1.0));

} // namespace
} // namespace lognic
