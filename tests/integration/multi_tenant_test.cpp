/**
 * @file
 * Multi-tenant end-to-end: the consolidation extension (S3.7 #1), the
 * tenant-graph merge, and the simulator must tell one consistent story
 * about a shared SmartNIC.
 */
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/extensions.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic {
namespace {

core::ExecutionGraph
tenant_graph(const core::HardwareModel& hw, const std::string& name,
             double share, double beta)
{
    core::ExecutionGraph g(name);
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    core::VertexParams vp;
    vp.partition = share;
    const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"), vp);
    g.add_edge(in, v, core::EdgeParams{1.0, 0.0, beta, {}});
    g.add_edge(v, out);
    return g;
}

TEST(MultiTenant, MergedGraphMatchesConsolidateCapacity)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    const auto g1 = tenant_graph(hw, "tenantA", 0.5, 1.0);
    const auto g2 = tenant_graph(hw, "tenantB", 0.5, 1.0);
    const auto traffic = test::mtu_traffic(10.0);
    const std::vector<core::TenantWorkload> tenants{
        {&g1, traffic, 1.0}, {&g2, traffic, 1.0}};

    const auto cons = core::consolidate(hw, tenants);
    const auto merged = core::merge_tenant_graphs(tenants);
    EXPECT_NO_THROW(merged.validate(hw));
    const auto direct = core::estimate_throughput(merged, hw, traffic);
    EXPECT_NEAR(direct.capacity.bits_per_sec(),
                cons.total_capacity.bits_per_sec(),
                0.001 * cons.total_capacity.bits_per_sec());
}

TEST(MultiTenant, MergedGraphPathsSplitByWeight)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    const auto g1 = tenant_graph(hw, "big", 0.75, 0.0);
    const auto g2 = tenant_graph(hw, "small", 0.25, 0.0);
    const auto traffic = test::mtu_traffic(10.0);
    const auto merged = core::merge_tenant_graphs(
        {{&g1, traffic, 3.0}, {&g2, traffic, 1.0}});
    const auto paths = merged.enumerate_paths();
    ASSERT_EQ(paths.size(), 2u);
    double wsum = 0.0;
    for (const auto& p : paths)
        wsum += p.weight;
    EXPECT_NEAR(wsum, 1.0, 1e-12);
    const double w0 = paths[0].weight;
    EXPECT_TRUE(std::abs(w0 - 0.75) < 1e-9 || std::abs(w0 - 0.25) < 1e-9);
}

TEST(MultiTenant, SimulatorRunsMergedGraphAndSharesResources)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    // Both tenants hammer the memory link (beta = 1 each way is encoded in
    // their graphs as a single crossing); each owns half the cores.
    const auto g1 = tenant_graph(hw, "tenantA", 0.5, 1.0);
    const auto g2 = tenant_graph(hw, "tenantB", 0.5, 1.0);
    const auto solo_traffic = test::mtu_traffic(20.0);
    const auto merged = core::merge_tenant_graphs(
        {{&g1, solo_traffic, 1.0}, {&g2, solo_traffic, 1.0}});
    const auto combined = test::mtu_traffic(40.0); // both tenants together

    sim::SimOptions opts;
    opts.duration = 0.05;
    const auto res = sim::simulate(hw, merged, combined, opts);
    // Everything fits (capacity: cores 2 x 0.5 x 69.8 = 69.8, memory 80):
    // the merged simulation delivers the combined offered load.
    EXPECT_NEAR(res.delivered.gbps(), 40.0, 2.0);

    // Per-tenant stats exist under prefixed names.
    bool saw_a = false;
    bool saw_b = false;
    for (const auto& vs : res.vertex_stats) {
        saw_a |= vs.name == "tenantA:cores";
        saw_b |= vs.name == "tenantB:cores";
    }
    EXPECT_TRUE(saw_a);
    EXPECT_TRUE(saw_b);
}

TEST(MultiTenant, SimAgreesWithModelOnSharedBottleneck)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    // Tenants share the memory link; drive it into saturation.
    const auto g1 = tenant_graph(hw, "tenantA", 0.5, 1.0);
    const auto g2 = tenant_graph(hw, "tenantB", 0.5, 1.0);
    const auto traffic = test::mtu_traffic(1.0); // placeholder per tenant
    const auto merged = core::merge_tenant_graphs(
        {{&g1, traffic, 1.0}, {&g2, traffic, 1.0}});

    const auto capacity =
        core::estimate_throughput(merged, hw, test::mtu_traffic(1.0))
            .capacity;
    const auto offered = core::TrafficProfile::fixed(
        Bytes{1500.0}, capacity * 0.9);
    sim::SimOptions opts;
    opts.duration = 0.05;
    const auto res = sim::simulate(hw, merged, offered, opts);
    EXPECT_NEAR(res.delivered.gbps(), 0.9 * capacity.gbps(),
                0.06 * capacity.gbps());
}

TEST(MultiTenant, MergeValidatesInput)
{
    EXPECT_THROW(core::merge_tenant_graphs({}), std::invalid_argument);
    const auto hw = test::small_nic();
    const auto g = tenant_graph(hw, "t", 1.0, 0.0);
    EXPECT_THROW(core::merge_tenant_graphs(
                     {{nullptr, test::mtu_traffic(1.0), 1.0}}),
                 std::invalid_argument);
    EXPECT_THROW(
        core::merge_tenant_graphs({{&g, test::mtu_traffic(1.0), 0.0}}),
        std::invalid_argument);
}

} // namespace
} // namespace lognic
