/**
 * @file
 * Randomized agreement sweep: generate random layered execution graphs on
 * a random hardware model, then check that the analytical model and the
 * packet-level simulator stay consistent — the strongest guard against
 * semantics drift between the two implementations.
 */
#include <gtest/gtest.h>
#include <random>

#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic {
namespace {

struct RandomScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    core::TrafficProfile traffic;
};

RandomScenario
generate(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    auto uniform = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng);
    };
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };

    core::HardwareModel hw("random", Bandwidth::from_gbps(uniform(50, 200)),
                           Bandwidth::from_gbps(uniform(40, 150)),
                           Bandwidth::from_gbps(uniform(20, 100)));

    const int n_ips = pick(2, 4);
    for (int i = 0; i < n_ips; ++i) {
        core::IpSpec spec;
        spec.name = "ip" + std::to_string(i);
        spec.kind = i == 0 ? core::IpKind::kCpuCores
                           : core::IpKind::kAccelerator;
        spec.roofline = core::ExtendedRoofline(
            core::ServiceModel{
                Seconds::from_micros(uniform(0.2, 2.0)),
                Bandwidth::from_gigabytes_per_sec(uniform(1.0, 8.0))},
            {});
        spec.max_engines = static_cast<std::uint32_t>(pick(1, 8));
        spec.default_queue_capacity =
            static_cast<std::uint32_t>(pick(8, 64));
        hw.add_ip(spec);
    }

    // A layered DAG: ingress -> layer1 (1..3 vertices) -> layer2 (1..2)
    // -> egress, with delta-weighted fanout.
    core::ExecutionGraph g("random-" + std::to_string(seed));
    const auto ingress = g.add_ingress();
    const auto egress = g.add_egress();

    std::vector<core::VertexId> prev{ingress};
    std::vector<double> prev_share{1.0};
    const int layers = pick(1, 3);
    for (int layer = 0; layer < layers; ++layer) {
        const int width = pick(1, 3);
        std::vector<core::VertexId> cur;
        std::vector<double> cur_share;
        // Random split of each upstream vertex's traffic across the layer.
        std::vector<double> weights(width);
        double wsum = 0.0;
        for (auto& w : weights) {
            w = uniform(0.2, 1.0);
            wsum += w;
        }
        for (int i = 0; i < width; ++i) {
            core::VertexParams params;
            params.parallelism = static_cast<std::uint32_t>(
                pick(1, static_cast<int>(
                            hw.ip(static_cast<core::IpId>(
                                      pick(0, n_ips - 1)))
                                .max_engines)));
            const core::IpId ip = static_cast<core::IpId>(
                pick(0, n_ips - 1));
            params.parallelism = std::min<std::uint32_t>(
                params.parallelism, hw.ip(ip).max_engines);
            if (params.parallelism == 0)
                params.parallelism = 1;
            const auto v = g.add_ip_vertex(
                "L" + std::to_string(layer) + "v" + std::to_string(i), ip,
                params);
            cur.push_back(v);
            cur_share.push_back(0.0);
        }
        for (std::size_t u = 0; u < prev.size(); ++u) {
            for (int i = 0; i < width; ++i) {
                const double delta =
                    prev_share[u] * weights[static_cast<std::size_t>(i)]
                    / wsum;
                if (delta <= 1e-6)
                    continue;
                g.add_edge(prev[u], cur[static_cast<std::size_t>(i)],
                           core::EdgeParams{delta, 0.0, 0.0, {}});
                cur_share[static_cast<std::size_t>(i)] += delta;
            }
        }
        prev = cur;
        prev_share = cur_share;
    }
    for (std::size_t u = 0; u < prev.size(); ++u) {
        g.add_edge(prev[u], egress,
                   core::EdgeParams{prev_share[u], 0.0, 0.0, {}});
    }

    const auto traffic = core::TrafficProfile::fixed(
        Bytes{uniform(200.0, 1500.0)},
        Bandwidth::from_gbps(uniform(1.0, 40.0)));
    return RandomScenario{std::move(hw), std::move(g), traffic};
}

class RandomGraphAgreement : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomGraphAgreement, ModelAndSimAgree)
{
    const RandomScenario sc = generate(GetParam());
    ASSERT_NO_THROW(sc.graph.validate(sc.hw));

    const core::Model model(sc.hw);
    const auto tput = model.throughput(sc.graph, sc.traffic);
    const auto lat = model.latency(sc.graph, sc.traffic);

    sim::SimOptions opts;
    opts.duration = 0.05;
    opts.seed = GetParam() * 7 + 1;
    const auto res = sim::simulate(sc.hw, sc.graph, sc.traffic, opts);

    // 1. Below saturation the simulator can never beat the model's
    // capacity. (Above it, fan-out paths may deliver more than the
    // *lossless* capacity, which is a statement about zero-drop operation.)
    if (sc.traffic.ingress_bandwidth().gbps() <= tput.capacity.gbps()) {
        EXPECT_LE(res.delivered.gbps(), tput.capacity.gbps() * 1.08 + 0.3)
            << sc.graph.name();
    }
    EXPECT_LE(res.delivered.gbps(),
              sc.traffic.ingress_bandwidth().gbps() * 1.05 + 0.3);

    // 2. Delivered tracks the model's goodput (survival-weighted offer).
    const double goodput = lat.per_class[0].goodput.gbps();
    EXPECT_NEAR(res.delivered.gbps(), goodput, 0.25 * goodput + 0.4)
        << sc.graph.name();

    // 3. Latency stays within a broad factor (multi-engine pooling makes
    // the model conservative; transfers are deterministic both sides).
    if (res.completed > 100) {
        EXPECT_LT(res.mean_latency.seconds(), lat.mean.seconds() * 1.6 + 1e-6)
            << sc.graph.name();
        EXPECT_GT(res.mean_latency.seconds(), lat.mean.seconds() / 6.0)
            << sc.graph.name();
    }

    // 4. Conservation in the sim.
    EXPECT_LE(res.completed + res.dropped, res.generated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphAgreement,
                         testing::Range<std::uint64_t>(1, 17));

} // namespace
} // namespace lognic
