#include "lognic/runner/sweep.hpp"

#include <gtest/gtest.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/io/serialize.hpp"

namespace lognic::runner {
namespace {

io::Scenario
tiny_scenario()
{
    auto sc = apps::make_inline_accel(devices::LiquidIoKernel::kCrc, 4);
    return io::Scenario{std::move(sc.hw), std::move(sc.graph),
                        core::TrafficProfile::fixed(
                            Bytes{1024.0}, Bandwidth::from_gbps(10.0))};
}

TEST(SweepSpec, ParsesGridAndRunnerKnobs)
{
    const std::string doc = sample_sweep_spec(tiny_scenario());
    const auto spec = sweep_spec_from_json(io::Json::parse(doc));
    EXPECT_EQ(spec.rates_gbps, (std::vector<double>{5.0, 12.0}));
    EXPECT_TRUE(spec.packet_sizes_bytes.empty());
    EXPECT_EQ(spec.options.replications, 2u);
    EXPECT_EQ(spec.options.threads, 2u);
    EXPECT_EQ(spec.options.root_seed, 42u);
    EXPECT_DOUBLE_EQ(spec.sim.duration, 0.002);
}

TEST(SweepSpec, RejectsMalformedDocuments)
{
    EXPECT_THROW(sweep_spec_from_json(io::Json::parse("{}")),
                 std::runtime_error);
    EXPECT_THROW(sweep_spec_from_json(io::Json::parse("[1,2]")),
                 std::runtime_error);
}

TEST(SweepSpec, GridIsCartesianProduct)
{
    auto spec = sweep_spec_from_json(
        io::Json::parse(sample_sweep_spec(tiny_scenario())));
    spec.packet_sizes_bytes = {256.0, 1024.0, 4096.0};
    const auto sweep = build_sweep(spec);
    EXPECT_EQ(sweep.size(), 6u); // 3 sizes x 2 rates
    EXPECT_EQ(sweep.point(0).label, "size=256B,rate=5Gbps");
    EXPECT_EQ(sweep.point(5).label, "size=4096B,rate=12Gbps");
}

TEST(Sweep, RunAggregatesPerPoint)
{
    const auto spec = sweep_spec_from_json(
        io::Json::parse(sample_sweep_spec(tiny_scenario())));
    const auto sweep = build_sweep(spec);
    const auto results = sweep.run(spec.options);
    ASSERT_EQ(results.size(), 2u);
    for (const auto& pr : results) {
        EXPECT_EQ(pr.stats.replications, 2u);
        EXPECT_EQ(pr.stats.seeds.size(), 2u);
        EXPECT_EQ(pr.stats.degenerate, 0u);
        EXPECT_GT(pr.stats.delivered_gbps.mean, 0.0);
        EXPECT_GT(pr.stats.mean_latency_us.mean, 0.0);
    }
    // Offering more load delivers at least as much traffic.
    EXPECT_GE(results[1].stats.delivered_gbps.mean,
              results[0].stats.delivered_gbps.mean - 1e-9);
}

TEST(Sweep, ResultsSerializeToJson)
{
    const auto spec = sweep_spec_from_json(
        io::Json::parse(sample_sweep_spec(tiny_scenario())));
    const auto results = build_sweep(spec).run(spec.options);
    const io::Json doc = sweep_results_json(results);
    ASSERT_TRUE(doc.is_object());
    const auto& points = doc.at("points").as_array();
    ASSERT_EQ(points.size(), 2u);
    for (const auto& p : points) {
        EXPECT_TRUE(p.contains("label"));
        EXPECT_TRUE(p.contains("seeds"));
        EXPECT_TRUE(p.at("delivered_gbps").contains("ci95"));
        // uint64 seeds travel as hex strings, not lossy doubles.
        EXPECT_TRUE(p.at("seeds").as_array().at(0).is_string());
        // The aggregated metrics snapshot rides along: replication-summed
        // counters and the cross-replication latency histogram.
        ASSERT_TRUE(p.contains("metrics"));
        const io::Json& m = p.at("metrics");
        EXPECT_GT(m.at("counters").at("sim.completed").as_number(), 0.0);
        EXPECT_TRUE(m.at("histograms").contains("sim.latency_us"));
    }
    // Round-trips through the parser.
    const io::Json reparsed = io::Json::parse(doc.dump());
    EXPECT_EQ(reparsed.at("points").as_array().size(), 2u);
}

} // namespace
} // namespace lognic::runner
