#include "lognic/runner/sweep.hpp"

#include <gtest/gtest.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/io/serialize.hpp"
#include "../test_helpers.hpp"

namespace lognic::runner {
namespace {

io::Scenario
tiny_scenario()
{
    auto sc = apps::make_inline_accel(devices::LiquidIoKernel::kCrc, 4);
    return io::Scenario{std::move(sc.hw), std::move(sc.graph),
                        core::TrafficProfile::fixed(
                            Bytes{1024.0}, Bandwidth::from_gbps(10.0))};
}

TEST(SweepSpec, ParsesGridAndRunnerKnobs)
{
    const std::string doc = sample_sweep_spec(tiny_scenario());
    const auto spec = sweep_spec_from_json(io::Json::parse(doc));
    EXPECT_EQ(spec.rates_gbps, (std::vector<double>{5.0, 12.0}));
    EXPECT_TRUE(spec.packet_sizes_bytes.empty());
    EXPECT_EQ(spec.options.replications, 2u);
    EXPECT_EQ(spec.options.threads, 2u);
    EXPECT_EQ(spec.options.root_seed, 42u);
    EXPECT_DOUBLE_EQ(spec.sim.duration, 0.002);
}

TEST(SweepSpec, RejectsMalformedDocuments)
{
    EXPECT_THROW(sweep_spec_from_json(io::Json::parse("{}")),
                 std::runtime_error);
    EXPECT_THROW(sweep_spec_from_json(io::Json::parse("[1,2]")),
                 std::runtime_error);
}

TEST(SweepSpec, GridIsCartesianProduct)
{
    auto spec = sweep_spec_from_json(
        io::Json::parse(sample_sweep_spec(tiny_scenario())));
    spec.packet_sizes_bytes = {256.0, 1024.0, 4096.0};
    const auto sweep = build_sweep(spec);
    EXPECT_EQ(sweep.size(), 6u); // 3 sizes x 2 rates
    EXPECT_EQ(sweep.point(0).label, "size=256B,rate=5Gbps");
    EXPECT_EQ(sweep.point(5).label, "size=4096B,rate=12Gbps");
}

TEST(Sweep, RunAggregatesPerPoint)
{
    const auto spec = sweep_spec_from_json(
        io::Json::parse(sample_sweep_spec(tiny_scenario())));
    const auto sweep = build_sweep(spec);
    const auto results = sweep.run(spec.options);
    ASSERT_EQ(results.size(), 2u);
    for (const auto& pr : results) {
        EXPECT_EQ(pr.stats.replications, 2u);
        EXPECT_EQ(pr.stats.seeds.size(), 2u);
        EXPECT_EQ(pr.stats.degenerate, 0u);
        EXPECT_GT(pr.stats.delivered_gbps.mean, 0.0);
        EXPECT_GT(pr.stats.mean_latency_us.mean, 0.0);
    }
    // Offering more load delivers at least as much traffic.
    EXPECT_GE(results[1].stats.delivered_gbps.mean,
              results[0].stats.delivered_gbps.mean - 1e-9);
}

TEST(Sweep, ResultsSerializeToJson)
{
    const auto spec = sweep_spec_from_json(
        io::Json::parse(sample_sweep_spec(tiny_scenario())));
    const auto results = build_sweep(spec).run(spec.options);
    const io::Json doc = sweep_results_json(results);
    ASSERT_TRUE(doc.is_object());
    const auto& points = doc.at("points").as_array();
    ASSERT_EQ(points.size(), 2u);
    for (const auto& p : points) {
        EXPECT_TRUE(p.contains("label"));
        EXPECT_TRUE(p.contains("seeds"));
        EXPECT_TRUE(p.at("delivered_gbps").contains("ci95"));
        // uint64 seeds travel as hex strings, not lossy doubles.
        EXPECT_TRUE(p.at("seeds").as_array().at(0).is_string());
        // The aggregated metrics snapshot rides along: replication-summed
        // counters and the cross-replication latency histogram.
        ASSERT_TRUE(p.contains("metrics"));
        const io::Json& m = p.at("metrics");
        EXPECT_GT(m.at("counters").at("sim.completed").as_number(), 0.0);
        EXPECT_TRUE(m.at("histograms").contains("sim.latency_us"));
    }
    // Round-trips through the parser.
    const io::Json reparsed = io::Json::parse(doc.dump());
    EXPECT_EQ(reparsed.at("points").as_array().size(), 2u);
}

/// Four points: two healthy, one whose simulator construction throws
/// (impossible parallelism), one the event-budget watchdog truncates.
Sweep
mixed_health_sweep()
{
    const auto hw = test::small_nic();
    Sweep sweep;
    for (int i = 0; i < 4; ++i) {
        SweepPoint pt{"p" + std::to_string(i), hw,
                      test::single_stage_graph(hw),
                      test::mtu_traffic(4.0 + i), {}};
        pt.options.duration = 0.004;
        if (i == 1)
            pt.graph.vertex(*pt.graph.find_vertex("cores"))
                .params.parallelism = 99; // > max_engines: throws
        if (i == 2) {
            pt.options.watchdog.max_events = 1500; // truncates mid-run
            // No warmup, so the partial window still measures something.
            pt.options.warmup_fraction = 0.0;
        }
        sweep.add(pt);
    }
    return sweep;
}

// The acceptance scenario: a campaign with one throwing and one
// watchdog-limited point completes, returns results for every point that
// produced data, and reports exactly one FailedPoint and exactly one
// TruncationRecord — identically for any thread count.
TEST(SweepGuarded, IsolatesFailuresAndTruncations)
{
    const Sweep sweep = mixed_health_sweep();
    SweepOptions so;
    so.replications = 1;
    so.max_retries = 1;

    std::vector<SweepReport> reports;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4},
                                std::size_t{8}}) {
        so.threads = threads;
        reports.push_back(sweep.run_guarded(so));
    }

    const SweepReport& rep = reports.front();
    EXPECT_FALSE(rep.complete());

    ASSERT_EQ(rep.failed.size(), 1u);
    EXPECT_EQ(rep.failed[0].index, 1u);
    EXPECT_EQ(rep.failed[0].label, "p1");
    EXPECT_EQ(rep.failed[0].attempts, 2u); // initial + 1 retry
    EXPECT_FALSE(rep.failed[0].error.empty());

    ASSERT_EQ(rep.truncated.size(), 1u);
    EXPECT_EQ(rep.truncated[0].index, 2u);
    EXPECT_EQ(rep.truncated[0].label, "p2");
    EXPECT_EQ(rep.truncated[0].reason, "event_budget");
    EXPECT_GT(rep.truncated[0].sim_time_reached, 0.0);
    EXPECT_LT(rep.truncated[0].sim_time_reached, 0.004);

    // The failed point is excluded; the truncated one still yields (partial)
    // aggregates alongside the two healthy points.
    ASSERT_EQ(rep.results.size(), 3u);
    EXPECT_EQ(rep.results[0].label, "p0");
    EXPECT_EQ(rep.results[1].label, "p2");
    EXPECT_EQ(rep.results[2].label, "p3");
    for (const auto& pr : rep.results)
        EXPECT_GT(pr.stats.delivered_gbps.mean, 0.0);

    // Bit-identical across thread counts.
    for (std::size_t r = 1; r < reports.size(); ++r) {
        const SweepReport& other = reports[r];
        ASSERT_EQ(other.results.size(), rep.results.size());
        for (std::size_t i = 0; i < rep.results.size(); ++i) {
            EXPECT_EQ(other.results[i].label, rep.results[i].label);
            EXPECT_EQ(other.results[i].stats.seeds,
                      rep.results[i].stats.seeds);
            EXPECT_EQ(other.results[i].stats.delivered_gbps.mean,
                      rep.results[i].stats.delivered_gbps.mean);
        }
        ASSERT_EQ(other.failed.size(), 1u);
        EXPECT_EQ(other.failed[0].seed, rep.failed[0].seed);
        ASSERT_EQ(other.truncated.size(), 1u);
        EXPECT_EQ(other.truncated[0].sim_time_reached,
                  rep.truncated[0].sim_time_reached);
    }
}

TEST(SweepGuarded, RunFailsFastOnTheSameCampaign)
{
    const Sweep sweep = mixed_health_sweep();
    SweepOptions so;
    so.threads = 2;
    // run() is the fail-fast view: the underlying validation error
    // resurfaces unchanged instead of being converted to a record.
    EXPECT_THROW(sweep.run(so), std::invalid_argument);
}

TEST(SweepGuarded, RetriesRederiveSeedsDeterministically)
{
    // A healthy sweep must produce identical results whether or not retry
    // budget exists (attempt 0 always keeps the classic derived seed).
    const auto spec = sweep_spec_from_json(
        io::Json::parse(sample_sweep_spec(tiny_scenario())));
    const auto sweep = build_sweep(spec);
    SweepOptions with_retries = spec.options;
    with_retries.max_retries = 3;
    const auto a = sweep.run_guarded(spec.options);
    const auto b = sweep.run_guarded(with_retries);
    EXPECT_TRUE(a.complete());
    ASSERT_EQ(a.results.size(), b.results.size());
    for (std::size_t i = 0; i < a.results.size(); ++i) {
        EXPECT_EQ(a.results[i].stats.seeds, b.results[i].stats.seeds);
        EXPECT_EQ(a.results[i].stats.delivered_gbps.mean,
                  b.results[i].stats.delivered_gbps.mean);
    }
}

TEST(SweepGuarded, ReportSerializesToJson)
{
    const Sweep sweep = mixed_health_sweep();
    SweepOptions so;
    so.threads = 2;
    const auto report = sweep.run_guarded(so);
    const io::Json doc = to_json(report);

    // Consumers of the unguarded format keep working: same "points" array.
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(doc.at("points").as_array().size(), report.results.size());
    EXPECT_FALSE(doc.at("complete").as_bool());

    const auto& failed = doc.at("failed").as_array();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0].at("label").as_string(), "p1");
    EXPECT_DOUBLE_EQ(failed[0].at("attempts").as_number(), 1.0);
    EXPECT_TRUE(failed[0].at("seed").is_string()); // hex, not lossy double
    EXPECT_FALSE(failed[0].at("error").as_string().empty());

    const auto& truncated = doc.at("truncated").as_array();
    ASSERT_EQ(truncated.size(), 1u);
    EXPECT_EQ(truncated[0].at("reason").as_string(), "event_budget");
    EXPECT_GT(truncated[0].at("sim_time_reached").as_number(), 0.0);

    // Round-trips through the parser.
    const io::Json reparsed = io::Json::parse(doc.dump());
    EXPECT_EQ(reparsed.at("failed").as_array().size(), 1u);
}

TEST(SweepSpec, ParsesGuardRailKnobs)
{
    auto base = tiny_scenario();
    io::Json doc = io::Json::parse(sample_sweep_spec(base));
    io::JsonObject root = doc.as_object();
    io::JsonObject sw = root.at("sweep").as_object();
    sw.emplace("max_retries", io::Json(2.0));
    sw.emplace("max_sim_events", io::Json(50000.0));
    sw.emplace("deadline_seconds", io::Json(10.0));
    sw.emplace("faults", io::Json::parse(
        R"([{"at": 0.001, "kind": "slowdown", "target": "cores",
             "factor": 2.0}])"));
    root["sweep"] = io::Json(std::move(sw));

    const auto spec = sweep_spec_from_json(io::Json(std::move(root)));
    EXPECT_EQ(spec.options.max_retries, 2u);
    EXPECT_EQ(spec.sim.watchdog.max_events, 50000u);
    EXPECT_DOUBLE_EQ(spec.sim.watchdog.wall_clock_seconds, 10.0);
    ASSERT_EQ(spec.sim.faults.events.size(), 1u);
    EXPECT_EQ(spec.sim.faults.events[0].target, "cores");

    // Negative guard-rail values are rejected.
    io::JsonObject bad_sw = doc.at("sweep").as_object();
    bad_sw.emplace("max_retries", io::Json(-1.0));
    io::JsonObject bad_root = doc.as_object();
    bad_root["sweep"] = io::Json(std::move(bad_sw));
    EXPECT_THROW(sweep_spec_from_json(io::Json(std::move(bad_root))),
                 std::runtime_error);
}

} // namespace
} // namespace lognic::runner
