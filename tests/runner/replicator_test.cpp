#include "lognic/runner/replicator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "lognic/runner/seed.hpp"

namespace lognic::runner {
namespace {

sim::SimResult
fake_result(double gbps, double mean_us, std::uint64_t completed)
{
    sim::SimResult r;
    r.delivered = Bandwidth::from_gbps(gbps);
    r.delivered_ops = OpsRate::from_mops(gbps / 8.0);
    r.mean_latency = Seconds::from_micros(completed > 0 ? mean_us : 0.0);
    r.p50_latency = r.mean_latency;
    r.p99_latency = r.mean_latency;
    r.completed = completed;
    r.generated = completed;
    return r;
}

TEST(Summarize, EmptyAndSingleton)
{
    const Summary empty = summarize({});
    EXPECT_EQ(empty.n, 0u);
    EXPECT_DOUBLE_EQ(empty.mean, 0.0);

    const Summary one = summarize({3.5});
    EXPECT_EQ(one.n, 1u);
    EXPECT_DOUBLE_EQ(one.mean, 3.5);
    EXPECT_DOUBLE_EQ(one.stddev, 0.0);
    EXPECT_DOUBLE_EQ(one.ci_half, 0.0);
}

TEST(Summarize, MeanStddevAndT95Interval)
{
    // n = 5, mean 3, sample stddev sqrt(2.5); t_{0.975, 4} = 2.776.
    const Summary s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
    EXPECT_EQ(s.n, 5u);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
    EXPECT_NEAR(s.ci_half, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
}

TEST(Replicator, SeedsAreDerivedAndDistinct)
{
    const Replicator rep(64, 42);
    const auto seeds = rep.seeds();
    ASSERT_EQ(seeds.size(), 64u);
    std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
    EXPECT_EQ(unique.size(), seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i)
        EXPECT_EQ(seeds[i], derive_seed(42, i));
}

TEST(Replicator, AggregatesAcrossReplications)
{
    const Replicator rep(4, 1);
    const auto res = rep.run([](std::uint64_t seed) {
        // Deterministic pseudo-results keyed off the seed's low bits so
        // aggregation itself (not the simulator) is under test.
        const double x = static_cast<double>(seed % 7);
        return fake_result(10.0 + x, 5.0 + x, 100);
    });
    EXPECT_EQ(res.replications, 4u);
    EXPECT_EQ(res.degenerate, 0u);
    EXPECT_EQ(res.seeds, rep.seeds());
    EXPECT_EQ(res.delivered_gbps.n, 4u);
    EXPECT_EQ(res.mean_latency_us.n, 4u);
    // Latency tracks throughput by construction: mean offsets match.
    EXPECT_NEAR(res.mean_latency_us.mean - 5.0,
                res.delivered_gbps.mean - 10.0, 1e-9);
}

TEST(Replicator, DegenerateReplicationsExcludedFromLatency)
{
    // One replication completed nothing: its sentinel-0.0 latencies must
    // not drag the latency mean down, but its zero throughput is real.
    std::vector<std::uint64_t> seeds{1, 2, 3};
    std::vector<sim::SimResult> results{
        fake_result(10.0, 8.0, 100),
        fake_result(0.0, 0.0, 0), // degenerate
        fake_result(10.0, 12.0, 100),
    };
    const auto agg = Replicator::aggregate(seeds, results);
    EXPECT_EQ(agg.replications, 3u);
    EXPECT_EQ(agg.degenerate, 1u);
    EXPECT_EQ(agg.mean_latency_us.n, 2u);
    EXPECT_DOUBLE_EQ(agg.mean_latency_us.mean, 10.0);
    EXPECT_EQ(agg.delivered_gbps.n, 3u);
    EXPECT_NEAR(agg.delivered_gbps.mean, 20.0 / 3.0, 1e-12);
}

TEST(Replicator, AggregatesMetricsSnapshots)
{
    // Counters sum, gauges average across replications; empty snapshots
    // (e.g. from a fake or legacy result) simply don't contribute.
    std::vector<std::uint64_t> seeds{1, 2, 3};
    std::vector<sim::SimResult> results{
        fake_result(10.0, 8.0, 100),
        fake_result(12.0, 9.0, 120),
        fake_result(0.0, 0.0, 0),
    };
    obs::MetricsRegistry r0;
    r0.counter("sim.dropped").add(5);
    r0.gauge("sim.drop_rate").set(0.05);
    results[0].metrics = r0.snapshot();
    obs::MetricsRegistry r1;
    r1.counter("sim.dropped").add(7);
    r1.gauge("sim.drop_rate").set(0.07);
    results[1].metrics = r1.snapshot();

    const auto agg = Replicator::aggregate(seeds, results);
    EXPECT_EQ(agg.metrics.counter_or_zero("sim.dropped"), 12u);
    EXPECT_DOUBLE_EQ(agg.metrics.gauge_or("sim.drop_rate"), 0.06);

    // All-empty snapshots yield an empty aggregate.
    const auto none =
        Replicator::aggregate({9}, {fake_result(1.0, 1.0, 10)});
    EXPECT_TRUE(none.metrics.empty());
}

TEST(Replicator, RunResultsIndependentOfThreadCount)
{
    const Replicator rep(8, 99);
    auto fn = [](std::uint64_t seed) {
        return fake_result(static_cast<double>(seed % 100),
                           static_cast<double>(seed % 10), 10);
    };
    const auto serial = rep.run(fn, 1);
    const auto parallel = rep.run(fn, 4);
    EXPECT_EQ(serial.seeds, parallel.seeds);
    EXPECT_DOUBLE_EQ(serial.delivered_gbps.mean,
                     parallel.delivered_gbps.mean);
    EXPECT_DOUBLE_EQ(serial.delivered_gbps.stddev,
                     parallel.delivered_gbps.stddev);
    EXPECT_DOUBLE_EQ(serial.mean_latency_us.mean,
                     parallel.mean_latency_us.mean);
}

TEST(Replicator, RunGuardedIsolatesThrowingReplications)
{
    const Replicator rep(4, 7);
    const auto seeds = rep.seeds();
    auto fn = [&seeds](std::uint64_t seed) -> sim::SimResult {
        if (seed == seeds[1])
            throw std::runtime_error("replication exploded");
        return fake_result(10.0, 5.0, 100);
    };
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const auto out = rep.run_guarded(fn, threads);
        EXPECT_FALSE(out.complete());
        ASSERT_EQ(out.failed.size(), 1u);
        EXPECT_EQ(out.failed[0].replication, 1u);
        EXPECT_EQ(out.failed[0].seed, seeds[1]);
        EXPECT_NE(out.failed[0].error.find("exploded"), std::string::npos);
        // Survivors aggregate as a 3-replication batch.
        EXPECT_EQ(out.stats.replications, 3u);
        ASSERT_EQ(out.stats.seeds.size(), 3u);
        EXPECT_EQ(out.stats.seeds[0], seeds[0]);
        EXPECT_EQ(out.stats.seeds[1], seeds[2]);
        EXPECT_DOUBLE_EQ(out.stats.delivered_gbps.mean, 10.0);
    }
    // The unguarded entry point fails fast on the same function.
    EXPECT_THROW(rep.run(fn), std::runtime_error);
}

TEST(Replicator, RunGuardedWithNoFailuresMatchesRun)
{
    const Replicator rep(3, 5);
    auto fn = [](std::uint64_t seed) {
        return fake_result(static_cast<double>(seed % 11), 4.0, 10);
    };
    const auto guarded = rep.run_guarded(fn, 2);
    const auto plain = rep.run(fn, 2);
    EXPECT_TRUE(guarded.complete());
    EXPECT_EQ(guarded.stats.seeds, plain.seeds);
    EXPECT_DOUBLE_EQ(guarded.stats.delivered_gbps.mean,
                     plain.delivered_gbps.mean);
}

TEST(Replicator, ZeroReplicationsThrows)
{
    const Replicator rep(0, 1);
    EXPECT_THROW(rep.run([](std::uint64_t) { return fake_result(1, 1, 1); }),
                 std::invalid_argument);
}

TEST(Replicator, AggregateSizeMismatchThrows)
{
    EXPECT_THROW(Replicator::aggregate({1, 2}, {fake_result(1, 1, 1)}),
                 std::invalid_argument);
}

} // namespace
} // namespace lognic::runner
