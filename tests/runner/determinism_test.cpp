/**
 * @file
 * The determinism suite the parallel runner's contract rests on:
 *  (a) a fixed seed reproduces an identical SimResult, bit for bit;
 *  (b) runner output is identical at 1 thread and at hardware concurrency;
 *  (c) derived replication seeds are pairwise distinct and pinned to
 *      platform-independent constants.
 */
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/runner/seed.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::runner {
namespace {

void
expect_identical(const sim::SimResult& a, const sim::SimResult& b)
{
    EXPECT_EQ(a.delivered.bits_per_sec(), b.delivered.bits_per_sec());
    EXPECT_EQ(a.delivered_ops.per_sec(), b.delivered_ops.per_sec());
    EXPECT_EQ(a.mean_latency.seconds(), b.mean_latency.seconds());
    EXPECT_EQ(a.p50_latency.seconds(), b.p50_latency.seconds());
    EXPECT_EQ(a.p99_latency.seconds(), b.p99_latency.seconds());
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.drop_rate, b.drop_rate);
    ASSERT_EQ(a.vertex_stats.size(), b.vertex_stats.size());
    for (std::size_t i = 0; i < a.vertex_stats.size(); ++i) {
        EXPECT_EQ(a.vertex_stats[i].name, b.vertex_stats[i].name);
        EXPECT_EQ(a.vertex_stats[i].utilization,
                  b.vertex_stats[i].utilization);
        EXPECT_EQ(a.vertex_stats[i].mean_occupancy,
                  b.vertex_stats[i].mean_occupancy);
        EXPECT_EQ(a.vertex_stats[i].served, b.vertex_stats[i].served);
        EXPECT_EQ(a.vertex_stats[i].dropped, b.vertex_stats[i].dropped);
    }
}

TEST(Determinism, SameSeedSameSimReport)
{
    const auto sc = apps::make_inline_accel(devices::LiquidIoKernel::kMd5, 8);
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1024.0}, Bandwidth::from_gbps(20.0));
    sim::SimOptions opts;
    opts.duration = 0.005;
    opts.seed = 1234;
    const auto first = sim::simulate(sc.hw, sc.graph, traffic, opts);
    const auto second = sim::simulate(sc.hw, sc.graph, traffic, opts);
    expect_identical(first, second);
    EXPECT_GT(first.completed, 0u);
}

void
expect_identical(const std::vector<PointResult>& a,
                 const std::vector<PointResult>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_EQ(a[i].label, b[i].label);
        EXPECT_EQ(a[i].stats.seeds, b[i].stats.seeds);
        EXPECT_EQ(a[i].stats.degenerate, b[i].stats.degenerate);
        for (auto pick :
             {&ReplicationResult::delivered_gbps,
              &ReplicationResult::delivered_mops,
              &ReplicationResult::mean_latency_us,
              &ReplicationResult::p50_latency_us,
              &ReplicationResult::p99_latency_us,
              &ReplicationResult::drop_rate}) {
            const Summary& sa = a[i].stats.*pick;
            const Summary& sb = b[i].stats.*pick;
            EXPECT_EQ(sa.n, sb.n);
            EXPECT_EQ(sa.mean, sb.mean);
            EXPECT_EQ(sa.stddev, sb.stddev);
            EXPECT_EQ(sa.ci_half, sb.ci_half);
        }
    }
}

TEST(Determinism, SweepIdenticalAcrossThreadCounts)
{
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1500.0}, Bandwidth::from_gbps(80.0));
    Sweep sweep;
    for (std::uint32_t d = 1; d <= 4; ++d) {
        const auto sc = apps::make_panic_hybrid(0.5, d);
        sim::SimOptions opts;
        opts.duration = 0.004;
        sweep.add(SweepPoint{"D=" + std::to_string(d), sc.hw, sc.graph,
                             traffic, opts});
    }

    SweepOptions serial;
    serial.threads = 1;
    serial.replications = 2;
    serial.root_seed = 42;
    SweepOptions parallel = serial;
    parallel.threads = std::max(2u, std::thread::hardware_concurrency());

    expect_identical(sweep.run(serial), sweep.run(parallel));
}

TEST(Determinism, ReplicationSeedsDistinct)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t root : {0ull, 42ull, 0xFFFFFFFFFFFFFFFFull}) {
        seen.clear();
        for (std::uint64_t i = 0; i < 1000; ++i)
            seen.insert(derive_seed(root, i));
        EXPECT_EQ(seen.size(), 1000u) << "seed collision under root "
                                      << root;
    }
}

TEST(Determinism, ReplicationSeedsPinnedAcrossPlatforms)
{
    // SplitMix64 derivation is pure 64-bit integer arithmetic; these
    // constants must never change, on any platform or compiler. If this
    // test fails, the seeding scheme changed and every recorded figure
    // seed is invalidated — bump the root seeds everywhere or revert.
    static_assert(derive_seed(42, 0) == 0xbdd732262feb6e95ull);
    EXPECT_EQ(derive_seed(42, 0), 0xbdd732262feb6e95ull);
    EXPECT_EQ(derive_seed(42, 1), 0x28efe333b266f103ull);
    EXPECT_EQ(derive_seed(42, 2), 0x47526757130f9f52ull);
    EXPECT_EQ(derive_seed(42, 3), 0x581ce1ff0e4ae394ull);
    EXPECT_EQ(derive_seed(7, 0), 0x63cbe1e459320dd7ull);
}

} // namespace
} // namespace lognic::runner
