#include "lognic/runner/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lognic::runner {
namespace {

TEST(ThreadPool, RunsSubmittedTasks)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksMaySubmitTasks)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] {
        ++count;
        for (int i = 0; i < 10; ++i)
            pool.submit([&count] { ++count; });
    });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns)
{
    ThreadPool pool(2);
    pool.wait_idle(); // no tasks: must not hang
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        std::vector<std::atomic<int>> hits(257);
        parallel_for(hits.size(), threads,
                     [&](std::size_t i) { ++hits[i]; });
        for (const auto& h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST(ParallelFor, SerialPathRunsInOrderOnCaller)
{
    std::vector<std::size_t> order;
    const auto caller = std::this_thread::get_id();
    bool same_thread = true;
    parallel_for(8, 1, [&](std::size_t i) {
        order.push_back(i);
        same_thread = same_thread && std::this_thread::get_id() == caller;
    });
    std::vector<std::size_t> expected(8);
    std::iota(expected.begin(), expected.end(), std::size_t{0});
    EXPECT_EQ(order, expected);
    EXPECT_TRUE(same_thread);
}

TEST(ParallelFor, ZeroIterationsIsNoop)
{
    parallel_for(0, 4, [](std::size_t) { FAIL() << "body ran"; });
}

TEST(ParallelFor, RethrowsFirstException)
{
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        EXPECT_THROW(
            parallel_for(64, threads,
                         [](std::size_t i) {
                             if (i == 5)
                                 throw std::runtime_error("boom");
                         }),
            std::runtime_error);
    }
}

TEST(ThreadPool, WaitIdleRethrowsTaskExceptionAndPoolStaysUsable)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task blew up"); });
    try {
        pool.wait_idle();
        FAIL() << "expected runtime_error";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "task blew up");
    }
    // The stored exception was consumed; the pool keeps working.
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, OnlyFirstExceptionSurvivesABatch)
{
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i)
        pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait_idle(), std::runtime_error);
    // Later exceptions from the same batch were dropped, not queued up.
    pool.wait_idle();
}

TEST(ParallelFor, MoreThreadsThanWorkIsFine)
{
    std::vector<std::atomic<int>> hits(3);
    parallel_for(hits.size(), 16, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits)
        EXPECT_EQ(h.load(), 1);
}

} // namespace
} // namespace lognic::runner
