#include "lognic/queueing/mm1n.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace lognic::queueing {
namespace {

TEST(Mm1nQueue, RejectsInvalidArguments)
{
    EXPECT_THROW(Mm1nQueue(0.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Mm1nQueue(-1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Mm1nQueue(1.0, 0.0, 4), std::invalid_argument);
    EXPECT_THROW(Mm1nQueue(1.0, -2.0, 4), std::invalid_argument);
    EXPECT_THROW(Mm1nQueue(1.0, 1.0, 0), std::invalid_argument);
}

TEST(Mm1nQueue, ProbabilitiesSumToOne)
{
    const Mm1nQueue q(3.0, 5.0, 6);
    double sum = 0.0;
    for (std::uint32_t k = 0; k <= 6; ++k)
        sum += q.prob(k);
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(q.prob(7), 0.0);
}

TEST(Mm1nQueue, HandComputedExample)
{
    // lambda=1, mu=2, N=3: rho=0.5; P3 = 0.125/1.875 = 1/15;
    // L = 11/15; lambda_e = 14/15; W = 11/14; Q = 11/14 - 1/2 = 2/7.
    const Mm1nQueue q(1.0, 2.0, 3);
    EXPECT_NEAR(q.blocking_probability(), 1.0 / 15.0, 1e-12);
    EXPECT_NEAR(q.mean_in_system(), 11.0 / 15.0, 1e-12);
    EXPECT_NEAR(q.effective_arrival_rate(), 14.0 / 15.0, 1e-12);
    EXPECT_NEAR(q.mean_queueing_delay(), 2.0 / 7.0, 1e-12);
}

TEST(Mm1nQueue, PaperClosedFormMatchesLittlesLaw)
{
    // Eq. 12 must be algebraically identical to Q = L/lambda_e - 1/mu.
    for (double lambda : {0.2, 0.9, 1.7, 3.0, 7.5}) {
        for (double mu : {1.0, 2.5, 4.0}) {
            for (std::uint32_t n : {1u, 2u, 5u, 16u, 64u}) {
                const Mm1nQueue q(lambda, mu, n);
                EXPECT_NEAR(q.paper_closed_form_delay(),
                            q.mean_queueing_delay(), 1e-9)
                    << "lambda=" << lambda << " mu=" << mu << " N=" << n;
            }
        }
    }
}

TEST(Mm1nQueue, UnitRhoUsesExactLimits)
{
    const Mm1nQueue q(2.0, 2.0, 5);
    // P_k = 1/(N+1), L = N/2, Q = (N-1)/(2 mu).
    EXPECT_NEAR(q.prob(0), 1.0 / 6.0, 1e-12);
    EXPECT_NEAR(q.prob(5), 1.0 / 6.0, 1e-12);
    EXPECT_NEAR(q.mean_in_system(), 2.5, 1e-12);
    EXPECT_NEAR(q.paper_closed_form_delay(), (5.0 - 1.0) / (2.0 * 2.0), 1e-9);
    EXPECT_NEAR(q.paper_closed_form_delay(), q.mean_queueing_delay(), 1e-9);
}

TEST(Mm1nQueue, ContinuousAcrossUnitRho)
{
    // The near-1 branch must agree with the general formula just outside it.
    const Mm1nQueue just_below(1.0 - 1e-8, 1.0, 8);
    const Mm1nQueue at_one(1.0, 1.0, 8);
    EXPECT_NEAR(just_below.mean_queueing_delay(),
                at_one.mean_queueing_delay(), 1e-4);
    EXPECT_NEAR(just_below.blocking_probability(),
                at_one.blocking_probability(), 1e-4);
}

TEST(Mm1nQueue, ClosedFormConsistentAcrossUnitRhoWindowSweep)
{
    // Sweep rho across [1 - 1e-5, 1 + 1e-5] and require the Eq. 12 closed
    // form to track the exact Little's-law identity Q = L/lambda_e - 1/mu
    // to 1e-9 relative everywhere, for shallow and deep queues alike.
    // This fails before the near-unit-rho consistency fix two ways: the
    // old 1e-6 window substituted the rho == 1 limit (N-1)/(2 mu) inside
    // (error O(eps N^2 / 12), ~2e-5 relative at N = 256), and just
    // outside it the cancelling textbook expression was ill-conditioned
    // (~1e-6 relative at N = 2, rho = 1 - 1e-5).
    const double mu = 2.0;
    const double offsets[] = {-10.0, -5.0,  -2.0, -1.01, -0.99, -0.5,
                              -0.25, 0.0,   0.25, 0.5,   0.99,  1.01,
                              2.0,   5.0,   10.0};
    for (std::uint32_t n : {2u, 8u, 64u, 256u}) {
        for (double off : offsets) {
            const double rho = 1.0 + 1e-6 * off;
            const Mm1nQueue q(rho * mu, mu, n);
            const double reference = q.mean_queueing_delay();
            const double paper = q.paper_closed_form_delay();
            EXPECT_NEAR(paper, reference, 1e-9 * std::abs(reference))
                << "rho=1+" << off << "e-6 N=" << n;
        }
    }
}

TEST(Mm1nQueue, ClosedFormContinuousAtStableWindowEdge)
{
    // Crossing the stable-evaluation window edge (|rho - 1| = 1e-3) must
    // not step: the explicit Eq. 12 form is well-conditioned again by
    // there, so both branches agree to ~1e-9 relative.
    // The straddle is +-1e-12 so the genuine slope of Q (about N^2/12 in
    // rho) contributes under 1e-8 even at N = 256; anything beyond the
    // tolerance would be a branch step, not the function's own change.
    const double mu = 1.0;
    for (std::uint32_t n : {2u, 16u, 256u}) {
        for (double side : {-1.0, 1.0}) {
            const Mm1nQueue inside(1.0 + side * (1e-3 - 1e-12), mu, n);
            const Mm1nQueue outside(1.0 + side * (1e-3 + 1e-12), mu, n);
            const double a = inside.paper_closed_form_delay();
            const double b = outside.paper_closed_form_delay();
            EXPECT_NEAR(a, b, 1e-7 * std::abs(a))
                << "side=" << side << " N=" << n;
        }
    }
}

TEST(Mm1nQueue, ExtremeOverloadWithDeepQueueStaysFinite)
{
    // Regression: rho^N overflows double for rho = 16, N = 256; the
    // closed form must use the reciprocal tail and stay exact.
    const Mm1nQueue q(16.0, 1.0, 256);
    EXPECT_TRUE(std::isfinite(q.paper_closed_form_delay()));
    EXPECT_TRUE(std::isfinite(q.mean_queueing_delay()));
    EXPECT_NEAR(q.paper_closed_form_delay(), q.mean_queueing_delay(),
                1e-6 * q.mean_queueing_delay());
    // Deep overload: the queue is essentially always full, so waiting is
    // about (N - 1) services.
    EXPECT_NEAR(q.mean_queueing_delay(), 255.0, 1.0);
    EXPECT_NEAR(q.blocking_probability(), 1.0 - 1.0 / 16.0, 1e-9);
}

TEST(Mm1nQueue, BlockingIncreasesWithLoad)
{
    double prev = -1.0;
    for (double lambda : {0.5, 1.0, 2.0, 4.0, 8.0}) {
        const Mm1nQueue q(lambda, 2.0, 4);
        EXPECT_GT(q.blocking_probability(), prev);
        prev = q.blocking_probability();
    }
}

TEST(Mm1nQueue, DelayDecreasesWithCapacityUnderOverload)
{
    // Overloaded (rho > 1): a smaller queue means less waiting.
    const Mm1nQueue small(4.0, 2.0, 2);
    const Mm1nQueue large(4.0, 2.0, 16);
    EXPECT_LT(small.mean_queueing_delay(), large.mean_queueing_delay());
}

TEST(Mm1nQueue, ConvergesToMm1ForLargeCapacity)
{
    const double lambda = 3.0;
    const double mu = 5.0;
    const Mm1Queue ref(lambda, mu);
    const Mm1nQueue big(lambda, mu, 400);
    EXPECT_NEAR(big.mean_queueing_delay(), ref.mean_queueing_delay(), 1e-9);
    EXPECT_NEAR(big.mean_in_system(), ref.mean_in_system(), 1e-9);
    EXPECT_LT(big.blocking_probability(), 1e-12);
}

TEST(Mm1nQueue, ThroughputCappedByServiceRate)
{
    const Mm1nQueue q(100.0, 2.0, 8);
    EXPECT_LE(q.throughput(), 2.0);
    EXPECT_GT(q.throughput(), 1.9); // nearly saturated
}

TEST(Mm1nQueue, UtilizationMatchesEffectiveLoad)
{
    const Mm1nQueue q(1.0, 2.0, 4);
    // In steady state, accepted rate = mu * P(busy).
    EXPECT_NEAR(q.effective_arrival_rate(), 2.0 * q.utilization(), 1e-12);
}

TEST(Mm1Queue, RejectsUnstableLoad)
{
    EXPECT_THROW(Mm1Queue(2.0, 2.0), std::invalid_argument);
    EXPECT_THROW(Mm1Queue(3.0, 2.0), std::invalid_argument);
    EXPECT_THROW(Mm1Queue(-1.0, 2.0), std::invalid_argument);
}

TEST(Mm1Queue, TextbookValues)
{
    const Mm1Queue q(1.0, 2.0);
    EXPECT_DOUBLE_EQ(q.rho(), 0.5);
    EXPECT_DOUBLE_EQ(q.mean_in_system(), 1.0);
    EXPECT_DOUBLE_EQ(q.mean_sojourn_time(), 1.0);
    EXPECT_DOUBLE_EQ(q.mean_queueing_delay(), 0.5);
}

TEST(MmcQueue, SingleServerMatchesMm1)
{
    const MmcQueue mmc(1.0, 2.0, 1);
    const Mm1Queue mm1(1.0, 2.0);
    EXPECT_NEAR(mmc.mean_queueing_delay(), mm1.mean_queueing_delay(), 1e-12);
    EXPECT_NEAR(mmc.mean_in_system(), mm1.mean_in_system(), 1e-12);
    EXPECT_NEAR(mmc.prob_wait(), 0.5, 1e-12); // Erlang C at rho=0.5, c=1
}

TEST(MmcQueue, PoolingReducesDelay)
{
    // Same total capacity: one fast server vs c slow servers vs c pooled.
    const MmcQueue pooled(3.0, 1.0, 4);    // 4 servers of rate 1
    const Mm1Queue split(3.0 / 4.0, 1.0);  // one of the 4 separate queues
    EXPECT_LT(pooled.mean_queueing_delay(), split.mean_queueing_delay());
}

TEST(MmcQueue, RejectsUnstableLoad)
{
    EXPECT_THROW(MmcQueue(4.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(MmcQueue(1.0, 1.0, 0), std::invalid_argument);
}

TEST(MmcQueue, ErlangCDecreasesWithServers)
{
    double prev = 1.1;
    for (std::uint32_t c : {2u, 4u, 8u, 16u}) {
        const MmcQueue q(1.5, 1.0, c);
        EXPECT_LT(q.prob_wait(), prev);
        prev = q.prob_wait();
    }
}

// Property sweep: Little's law L = lambda_e * W holds everywhere.
class Mm1nProperty
    : public testing::TestWithParam<std::tuple<double, double, std::uint32_t>>
{
};

TEST_P(Mm1nProperty, LittlesLawHolds)
{
    const auto [lambda, mu, n] = GetParam();
    const Mm1nQueue q(lambda, mu, n);
    EXPECT_NEAR(q.mean_in_system(),
                q.effective_arrival_rate() * q.mean_sojourn_time(), 1e-9);
}

TEST_P(Mm1nProperty, DelayNonNegativeAndBounded)
{
    const auto [lambda, mu, n] = GetParam();
    const Mm1nQueue q(lambda, mu, n);
    EXPECT_GE(q.mean_queueing_delay(), -1e-12);
    // Waiting can never exceed N-1 services ahead of you.
    EXPECT_LE(q.mean_queueing_delay(),
              static_cast<double>(n) / mu + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, Mm1nProperty,
    testing::Combine(testing::Values(0.1, 0.5, 0.99, 1.0, 1.5, 4.0),
                     testing::Values(1.0, 3.0),
                     testing::Values(1u, 2u, 8u, 32u)));

} // namespace
} // namespace lognic::queueing
