#include "lognic/queueing/mg1.hpp"

#include <gtest/gtest.h>

#include "lognic/queueing/mm1n.hpp"

namespace lognic::queueing {
namespace {

TEST(Mg1Queue, RejectsBadParameters)
{
    EXPECT_THROW(Mg1Queue(-1.0, 1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(Mg1Queue(1.0, 0.0, 0.0), std::invalid_argument);
    EXPECT_THROW(Mg1Queue(1.0, 0.5, -0.1), std::invalid_argument);
    EXPECT_THROW(Mg1Queue(2.0, 0.5, 0.0), std::invalid_argument); // rho=1
}

TEST(Mg1Queue, ExponentialServiceMatchesMm1)
{
    // SCV = 1 reduces Pollaczek-Khinchine to the M/M/1 formulas.
    const Mg1Queue mg1(3.0, 0.2, 1.0);
    const Mm1Queue mm1(3.0, 5.0);
    EXPECT_NEAR(mg1.mean_queueing_delay(), mm1.mean_queueing_delay(),
                1e-12);
    EXPECT_NEAR(mg1.mean_in_system(), mm1.mean_in_system(), 1e-12);
}

TEST(Md1Queue, HalvesTheExponentialWait)
{
    // Deterministic service waits exactly half as long as exponential.
    const Mg1Queue exp_q(3.0, 0.2, 1.0);
    const Md1Queue det_q(3.0, 0.2);
    EXPECT_NEAR(det_q.mean_queueing_delay(),
                0.5 * exp_q.mean_queueing_delay(), 1e-12);
}

TEST(Md1Queue, TextbookValue)
{
    // rho = 0.5, E[S] = 1: Wq = rho / (2 mu (1 - rho)) = 0.5.
    const Md1Queue q(0.5, 1.0);
    EXPECT_NEAR(q.mean_queueing_delay(), 0.5, 1e-12);
    EXPECT_NEAR(q.mean_sojourn_time(), 1.5, 1e-12);
    EXPECT_NEAR(q.mean_in_system(), 0.75, 1e-12);
}

TEST(Mg1Queue, WaitGrowsWithVariability)
{
    double prev = -1.0;
    for (double scv : {0.0, 0.5, 1.0, 2.0, 4.0}) {
        const Mg1Queue q(2.0, 0.3, scv);
        EXPECT_GT(q.mean_queueing_delay(), prev);
        prev = q.mean_queueing_delay();
    }
}

TEST(Mg1Queue, ZeroArrivalMeansNoWait)
{
    const Mg1Queue q(0.0, 0.3, 1.0);
    EXPECT_DOUBLE_EQ(q.mean_queueing_delay(), 0.0);
    EXPECT_DOUBLE_EQ(q.mean_sojourn_time(), 0.3);
}

} // namespace
} // namespace lognic::queueing
