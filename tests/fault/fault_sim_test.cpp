/**
 * @file
 * Fault injection through the packet-level simulators: every fault kind
 * observably bends the measured behavior in the right direction, packet
 * conservation holds under fire, and the empty plan stays bit-identical
 * to a fault-free run.
 */
#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/devices/panic_proto.hpp"
#include "lognic/fault/fault_plan.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "lognic/sim/panic.hpp"

namespace lognic::fault {
namespace {

using test::mtu_traffic;
using test::single_stage_graph;
using test::small_nic;

sim::SimOptions
quick(std::uint64_t seed = 7)
{
    sim::SimOptions o;
    o.duration = 0.03;
    o.seed = seed;
    return o;
}

FaultEvent
event(FaultKind kind, double at, const std::string& target)
{
    FaultEvent e;
    e.kind = kind;
    e.at = at;
    e.target = target;
    return e;
}

void
expect_conserved(const sim::SimResult& r)
{
    EXPECT_EQ(r.generated,
              r.completed_total + r.dropped_total + r.in_flight);
}

TEST(FaultSim, EmptyPlanIsBitIdenticalToNoPlan)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto plain = sim::simulate(hw, g, mtu_traffic(10.0), quick());
    sim::SimOptions with_empty = quick();
    with_empty.faults = FaultPlan{};
    const auto faulted = sim::simulate(hw, g, mtu_traffic(10.0), with_empty);
    EXPECT_EQ(plain.generated, faulted.generated);
    EXPECT_EQ(plain.completed, faulted.completed);
    EXPECT_EQ(plain.dropped, faulted.dropped);
    EXPECT_DOUBLE_EQ(plain.mean_latency.seconds(),
                     faulted.mean_latency.seconds());
    EXPECT_DOUBLE_EQ(plain.p99_latency.seconds(),
                     faulted.p99_latency.seconds());
    EXPECT_DOUBLE_EQ(plain.delivered.gbps(), faulted.delivered.gbps());
}

TEST(FaultSim, EngineFailureCutsThroughput)
{
    // 8 engines at ~8.7 Gbps each; offered 30 Gbps needs 4. Losing 6
    // engines at one third of the run leaves 2 (~17 Gbps): delivery must
    // drop and drops must be attributed.
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    const auto g = single_stage_graph(hw);
    const auto base = sim::simulate(hw, g, mtu_traffic(30.0), quick());

    sim::SimOptions o = quick();
    auto fail = event(FaultKind::kEngineFail, 0.01, "cores");
    fail.count = 6;
    o.faults.events.push_back(fail);
    const auto res = sim::simulate(hw, g, mtu_traffic(30.0), o);

    EXPECT_LT(res.delivered.gbps(), base.delivered.gbps() - 3.0);
    EXPECT_GT(res.metrics.counter_or_zero("sim.fault_events"), 0u);
    EXPECT_GT(res.metrics.counter_or_zero("sim.dropped_by_cause.overflow"),
              0u);
    expect_conserved(res);
}

TEST(FaultSim, RecoveryRestoresCapacity)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    const auto g = single_stage_graph(hw);

    sim::SimOptions permanent = quick();
    auto fail = event(FaultKind::kEngineFail, 0.005, "cores");
    fail.count = 7;
    permanent.faults.events.push_back(fail);

    sim::SimOptions transient = quick();
    fail.duration = 0.005; // auto-recover at t = 0.01 of 0.03
    transient.faults.events.push_back(fail);

    const auto res_perm = sim::simulate(hw, g, mtu_traffic(30.0), permanent);
    const auto res_tran = sim::simulate(hw, g, mtu_traffic(30.0), transient);
    EXPECT_GT(res_tran.delivered.gbps(), res_perm.delivered.gbps() + 3.0);
    expect_conserved(res_perm);
    expect_conserved(res_tran);
}

TEST(FaultSim, InServiceDropPolicyCountsEngineFailDrops)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    const auto g = single_stage_graph(hw);
    sim::SimOptions o = quick();
    o.faults.in_service_policy = InServicePolicy::kDrop;
    auto fail = event(FaultKind::kEngineFail, 0.01, "cores");
    fail.count = 8; // kill everything: whoever is on an engine is lost
    o.faults.events.push_back(fail);
    const auto res = sim::simulate(hw, g, mtu_traffic(20.0), o);
    EXPECT_GT(
        res.metrics.counter_or_zero("sim.dropped_by_cause.engine_fail"), 0u);
    expect_conserved(res);
}

TEST(FaultSim, SlowdownInflatesLatency)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto base = sim::simulate(hw, g, mtu_traffic(5.0), quick());

    sim::SimOptions o = quick();
    auto slow = event(FaultKind::kSlowdown, 0.0, "cores");
    slow.factor = 3.0;
    o.faults.events.push_back(slow);
    const auto res = sim::simulate(hw, g, mtu_traffic(5.0), o);
    EXPECT_GT(res.mean_latency.seconds(),
              1.5 * base.mean_latency.seconds());
    expect_conserved(res);
}

TEST(FaultSim, DropBurstLosesPacketsWithCause)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    sim::SimOptions o = quick();
    auto burst = event(FaultKind::kDropBurst, 0.01, "cores");
    burst.probability = 0.5;
    burst.duration = 0.01;
    o.faults.events.push_back(burst);
    const auto res = sim::simulate(hw, g, mtu_traffic(10.0), o);
    EXPECT_GT(res.metrics.counter_or_zero("sim.dropped_by_cause.burst"), 0u);
    expect_conserved(res);
}

TEST(FaultSim, LinkDegradationShapesTransfers)
{
    // Memory-bound pipeline (two crossings per packet): halving the
    // memory link halves the sustainable rate.
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::ExecutionGraph g("memory-bound");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"));
    g.add_edge(in, v, core::EdgeParams{1.0, 0.0, 1.0, {}});
    g.add_edge(v, out, core::EdgeParams{1.0, 0.0, 1.0, {}});

    const auto base = sim::simulate(hw, g, mtu_traffic(36.0), quick());
    sim::SimOptions o = quick();
    auto degrade = event(FaultKind::kLinkDegrade, 0.0, "memory");
    degrade.factor = 0.5;
    o.faults.events.push_back(degrade);
    const auto res = sim::simulate(hw, g, mtu_traffic(36.0), o);
    // 80 Gbps / 2 crossings = 40 sustainable before; 20 after.
    EXPECT_NEAR(base.delivered.gbps(), 36.0, 2.0);
    EXPECT_LT(res.delivered.gbps(), 24.0);
    expect_conserved(res);
}

TEST(FaultSim, QueueCapacityReductionCausesOverflow)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    const auto g = single_stage_graph(hw);
    const auto base = sim::simulate(hw, g, mtu_traffic(30.0), quick());

    sim::SimOptions o = quick();
    auto shrink = event(FaultKind::kQueueCapacity, 0.005, "cores");
    shrink.capacity = 1;
    o.faults.events.push_back(shrink);
    const auto res = sim::simulate(hw, g, mtu_traffic(30.0), o);
    EXPECT_GT(res.metrics.counter_or_zero("sim.dropped_by_cause.overflow"),
              base.metrics.counter_or_zero("sim.dropped_by_cause.overflow"));
    expect_conserved(res);
}

TEST(FaultSim, UnknownTargetThrowsAtConstruction)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    sim::SimOptions o = quick();
    o.faults.events.push_back(
        event(FaultKind::kEngineFail, 0.01, "warp-core"));
    try {
        sim::NicSimulator bad(hw, g, mtu_traffic(5.0), o);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("warp-core"),
                  std::string::npos)
            << e.what();
    }
    // Link events only accept the reserved shared-link names.
    sim::SimOptions o2 = quick();
    auto degrade = event(FaultKind::kLinkDegrade, 0.0, "cores");
    degrade.factor = 0.5;
    o2.faults.events.push_back(degrade);
    EXPECT_THROW(sim::NicSimulator(hw, g, mtu_traffic(5.0), o2),
                 std::invalid_argument);
}

TEST(FaultSim, FaultedRunsAreSeedDeterministic)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    const auto g = single_stage_graph(hw);
    sim::SimOptions o = quick(99);
    o.faults = fault_plan_from_json(io::Json::parse(
        R"({"faults": [
             {"at": 0.005, "kind": "engine_fail", "target": "cores",
              "count": 5, "duration": 0.01},
             {"at": 0.012, "kind": "drop_burst", "target": "cores",
              "probability": 0.3, "duration": 0.004}],
            "in_service_policy": "drop"})"));
    const auto a = sim::simulate(hw, g, mtu_traffic(25.0), o);
    const auto b = sim::simulate(hw, g, mtu_traffic(25.0), o);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed_total, b.completed_total);
    EXPECT_EQ(a.dropped_total, b.dropped_total);
    EXPECT_DOUBLE_EQ(a.mean_latency.seconds(), b.mean_latency.seconds());
    EXPECT_DOUBLE_EQ(a.delivered.gbps(), b.delivered.gbps());
    expect_conserved(a);
}

TEST(FaultSim, FaultInstantsAppearOnTraceTimeline)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    sim::SimOptions o = quick();
    auto fail = event(FaultKind::kEngineFail, 0.01, "cores");
    fail.duration = 0.005;
    o.faults.events.push_back(fail);
    obs::ChromeTraceWriter writer;
    o.trace.sink = &writer;
    (void)sim::simulate(hw, g, mtu_traffic(5.0), o);
    const std::string doc = writer.dump();
    EXPECT_NE(doc.find("faults"), std::string::npos);
    EXPECT_NE(doc.find("engine_fail:cores"), std::string::npos);
}

// --- PANIC ------------------------------------------------------------------

sim::PanicConfig
panic_two_units()
{
    sim::PanicConfig cfg = devices::panic_defaults();
    cfg.units.push_back(devices::panic_unit(
        "crypto", Seconds::from_nanos(120.0), Bandwidth::from_gbps(100.0),
        2, 8));
    cfg.units.push_back(devices::panic_unit(
        "compress", Seconds::from_nanos(200.0), Bandwidth::from_gbps(80.0),
        2, 8));
    cfg.chains.push_back(sim::PanicChain{{0, 1}, 1.0});
    return cfg;
}

TEST(FaultPanic, EmptyPlanIsBitIdentical)
{
    const auto cfg = panic_two_units();
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{512.0}, Bandwidth::from_gbps(20.0));
    sim::SimOptions o;
    o.duration = 0.01;
    const auto plain = sim::simulate_panic(cfg, traffic, o);
    o.faults = FaultPlan{};
    const auto faulted = sim::simulate_panic(cfg, traffic, o);
    EXPECT_EQ(plain.generated, faulted.generated);
    EXPECT_EQ(plain.completed, faulted.completed);
    EXPECT_DOUBLE_EQ(plain.mean_latency.seconds(),
                     faulted.mean_latency.seconds());
}

TEST(FaultPanic, UnitFailureDegradesAndConserves)
{
    const auto cfg = panic_two_units();
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{512.0}, Bandwidth::from_gbps(25.0));
    sim::SimOptions o;
    o.duration = 0.01;
    const auto base = sim::simulate_panic(cfg, traffic, o);

    auto fail = event(FaultKind::kEngineFail, 0.003, "crypto");
    fail.count = 1;
    o.faults.events.push_back(fail);
    const auto res = sim::simulate_panic(cfg, traffic, o);
    EXPECT_LT(res.delivered.gbps(), base.delivered.gbps());
    EXPECT_GT(res.metrics.counter_or_zero("sim.fault_events"), 0u);
    expect_conserved(res);

    // Determinism of the faulted run.
    const auto res2 = sim::simulate_panic(cfg, traffic, o);
    EXPECT_EQ(res.generated, res2.generated);
    EXPECT_EQ(res.completed_total, res2.completed_total);
    EXPECT_DOUBLE_EQ(res.delivered.gbps(), res2.delivered.gbps());
}

TEST(FaultPanic, FabricDegradeSlowsDelivery)
{
    const auto cfg = panic_two_units();
    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1024.0}, Bandwidth::from_gbps(40.0));
    sim::SimOptions o;
    o.duration = 0.01;
    const auto base = sim::simulate_panic(cfg, traffic, o);

    auto degrade = event(FaultKind::kLinkDegrade, 0.0, "fabric");
    degrade.factor = 0.2;
    o.faults.events.push_back(degrade);
    const auto res = sim::simulate_panic(cfg, traffic, o);
    EXPECT_LT(res.delivered.gbps(), base.delivered.gbps());
    expect_conserved(res);

    // Unknown unit targets throw with the PANIC reserved link name rule.
    sim::SimOptions bad;
    bad.duration = 0.01;
    bad.faults.events.push_back(
        event(FaultKind::kEngineFail, 0.001, "no-such-unit"));
    EXPECT_THROW(sim::simulate_panic(cfg, traffic, bad),
                 std::invalid_argument);
}

} // namespace
} // namespace lognic::fault
