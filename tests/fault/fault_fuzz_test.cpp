/**
 * @file
 * Fault-injection fuzzing: random layered graphs x random fault plans.
 * Whatever the schedule throws at the simulator, three invariants must
 * hold — no crash, packet conservation, and bit-identical reruns for the
 * same seed — and a faulted sweep must not depend on its thread count.
 */
#include <gtest/gtest.h>
#include <random>

#include "lognic/fault/fault_plan.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic {
namespace {

struct RandomScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    core::TrafficProfile traffic;
    std::vector<std::string> ip_vertices;
};

/// A slimmed-down version of the integration suite's layered-DAG
/// generator: random hardware, 1-2 layers of 1-3 IP vertices with
/// delta-weighted fanout, random fixed-size traffic.
RandomScenario
generate(std::uint64_t seed)
{
    std::mt19937_64 rng(seed);
    auto uniform = [&](double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng);
    };
    auto pick = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
    };

    core::HardwareModel hw("fuzz", Bandwidth::from_gbps(uniform(50, 200)),
                           Bandwidth::from_gbps(uniform(40, 150)),
                           Bandwidth::from_gbps(uniform(20, 100)));
    const int n_ips = pick(2, 3);
    for (int i = 0; i < n_ips; ++i) {
        core::IpSpec spec;
        spec.name = "ip" + std::to_string(i);
        spec.kind = i == 0 ? core::IpKind::kCpuCores
                           : core::IpKind::kAccelerator;
        spec.roofline = core::ExtendedRoofline(
            core::ServiceModel{
                Seconds::from_micros(uniform(0.2, 2.0)),
                Bandwidth::from_gigabytes_per_sec(uniform(1.0, 8.0))},
            {});
        spec.max_engines = static_cast<std::uint32_t>(pick(2, 8));
        spec.default_queue_capacity =
            static_cast<std::uint32_t>(pick(8, 64));
        hw.add_ip(spec);
    }

    core::ExecutionGraph g("fuzz-" + std::to_string(seed));
    const auto ingress = g.add_ingress();
    const auto egress = g.add_egress();
    std::vector<std::string> names;

    std::vector<core::VertexId> prev{ingress};
    std::vector<double> prev_share{1.0};
    const int layers = pick(1, 2);
    for (int layer = 0; layer < layers; ++layer) {
        const int width = pick(1, 3);
        std::vector<core::VertexId> cur;
        std::vector<double> cur_share;
        std::vector<double> weights(static_cast<std::size_t>(width));
        double wsum = 0.0;
        for (auto& w : weights) {
            w = uniform(0.2, 1.0);
            wsum += w;
        }
        for (int i = 0; i < width; ++i) {
            const core::IpId ip =
                static_cast<core::IpId>(pick(0, n_ips - 1));
            core::VertexParams params;
            params.parallelism = static_cast<std::uint32_t>(
                pick(1, static_cast<int>(hw.ip(ip).max_engines)));
            const std::string name =
                "L" + std::to_string(layer) + "v" + std::to_string(i);
            cur.push_back(g.add_ip_vertex(name, ip, params));
            cur_share.push_back(0.0);
            names.push_back(name);
        }
        for (std::size_t u = 0; u < prev.size(); ++u) {
            for (int i = 0; i < width; ++i) {
                const double delta =
                    prev_share[u] * weights[static_cast<std::size_t>(i)]
                    / wsum;
                if (delta <= 1e-6)
                    continue;
                g.add_edge(prev[u], cur[static_cast<std::size_t>(i)],
                           core::EdgeParams{delta, 0.0, 0.0, {}});
                cur_share[static_cast<std::size_t>(i)] += delta;
            }
        }
        prev = cur;
        prev_share = cur_share;
    }
    for (std::size_t u = 0; u < prev.size(); ++u)
        g.add_edge(prev[u], egress,
                   core::EdgeParams{prev_share[u], 0.0, 0.0, {}});

    const auto traffic = core::TrafficProfile::fixed(
        Bytes{uniform(200.0, 1500.0)},
        Bandwidth::from_gbps(uniform(1.0, 30.0)));
    return RandomScenario{std::move(hw), std::move(g), traffic,
                          std::move(names)};
}

/// A dense random fault schedule over the scenario's IP vertices, plus a
/// deterministic shared-link degradation so link faults get fuzzed too.
fault::FaultPlan
make_plan(const RandomScenario& sc, std::uint64_t seed, double horizon)
{
    fault::RandomFaultConfig cfg;
    cfg.horizon = horizon;
    cfg.mtbf = horizon / 4.0;
    cfg.mttr = horizon / 8.0;
    cfg.max_engines_per_fault = 2;
    auto plan = fault::random_fault_plan(seed, sc.ip_vertices, cfg);

    fault::FaultEvent degrade;
    degrade.at = horizon / 3.0;
    degrade.kind = fault::FaultKind::kLinkDegrade;
    degrade.target = seed % 2 == 0 ? "memory" : "interface";
    degrade.factor = 0.6;
    degrade.duration = horizon / 4.0;
    plan.events.push_back(degrade);
    if (seed % 3 == 0)
        plan.in_service_policy = fault::InServicePolicy::kDrop;
    return plan;
}

void
expect_identical(const sim::SimResult& a, const sim::SimResult& b)
{
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed_total, b.completed_total);
    EXPECT_EQ(a.dropped_total, b.dropped_total);
    EXPECT_EQ(a.in_flight, b.in_flight);
    EXPECT_EQ(a.delivered.gbps(), b.delivered.gbps());
    EXPECT_EQ(a.mean_latency.seconds(), b.mean_latency.seconds());
    EXPECT_EQ(a.events_executed, b.events_executed);
}

class FaultFuzz : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FaultFuzz, RandomPlanOnRandomGraphConservesAndReplays)
{
    const std::uint64_t seed = GetParam();
    const RandomScenario sc = generate(seed);
    ASSERT_NO_THROW(sc.graph.validate(sc.hw));

    sim::SimOptions opts;
    opts.duration = 0.02;
    opts.seed = seed * 13 + 5;
    opts.faults = make_plan(sc, seed, opts.duration);

    // No crash: the simulator itself asserts packet conservation at end of
    // run (it throws std::logic_error on violation), so a clean return
    // already covers the invariant; re-check it from the reported terms.
    sim::SimResult res;
    ASSERT_NO_THROW(res = sim::simulate(sc.hw, sc.graph, sc.traffic, opts));
    EXPECT_EQ(res.generated,
              res.completed_total + res.dropped_total + res.in_flight);
    EXPECT_GT(res.generated, 0u);

    // Same seed, same everything.
    const auto again = sim::simulate(sc.hw, sc.graph, sc.traffic, opts);
    expect_identical(res, again);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz,
                         testing::Range<std::uint64_t>(1, 13));

// Acceptance criterion: a faulted sweep is bit-identical for a fixed root
// seed regardless of how many worker threads execute it.
TEST(FaultFuzzSweep, FaultedSweepIsThreadCountInvariant)
{
    runner::Sweep sweep;
    for (std::uint64_t s = 1; s <= 3; ++s) {
        const RandomScenario sc = generate(s);
        runner::SweepPoint pt{sc.graph.name(), sc.hw, sc.graph, sc.traffic,
                              {}};
        pt.options.duration = 0.01;
        pt.options.faults = make_plan(sc, s, pt.options.duration);
        if (s == 2)
            pt.options.watchdog.max_events = 4000; // force a truncation
        sweep.add(pt);
    }

    runner::SweepOptions base;
    base.replications = 2;
    base.root_seed = 99;

    std::vector<runner::SweepReport> reports;
    for (std::size_t threads : {std::size_t{1}, std::size_t{4},
                                std::size_t{8}}) {
        runner::SweepOptions so = base;
        so.threads = threads;
        reports.push_back(sweep.run_guarded(so));
    }

    const auto& ref = reports.front();
    EXPECT_TRUE(ref.failed.empty());
    ASSERT_EQ(ref.results.size(), 3u);
    for (std::size_t r = 1; r < reports.size(); ++r) {
        const auto& other = reports[r];
        ASSERT_EQ(other.results.size(), ref.results.size());
        for (std::size_t i = 0; i < ref.results.size(); ++i) {
            EXPECT_EQ(other.results[i].label, ref.results[i].label);
            EXPECT_EQ(other.results[i].stats.seeds, ref.results[i].stats.seeds);
            EXPECT_EQ(other.results[i].stats.delivered_gbps.mean,
                      ref.results[i].stats.delivered_gbps.mean);
            EXPECT_EQ(other.results[i].stats.mean_latency_us.mean,
                      ref.results[i].stats.mean_latency_us.mean);
            EXPECT_EQ(other.results[i].stats.drop_rate.mean,
                      ref.results[i].stats.drop_rate.mean);
        }
        ASSERT_EQ(other.truncated.size(), ref.truncated.size());
        for (std::size_t i = 0; i < ref.truncated.size(); ++i) {
            EXPECT_EQ(other.truncated[i].index, ref.truncated[i].index);
            EXPECT_EQ(other.truncated[i].reason, ref.truncated[i].reason);
            EXPECT_EQ(other.truncated[i].sim_time_reached,
                      ref.truncated[i].sim_time_reached);
        }
        EXPECT_EQ(other.failed.size(), ref.failed.size());
    }
}

} // namespace
} // namespace lognic
