#include "lognic/fault/degradation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "../test_helpers.hpp"

namespace lognic::fault {
namespace {

FaultEvent
engine_fail(double at, const std::string& target, std::uint32_t count,
            double duration = 0.0)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kEngineFail;
    e.target = target;
    e.count = count;
    e.duration = duration;
    return e;
}

TEST(DegradationCurve, HasOnePointPerFailedEngineAndDegradesMonotonically)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    const auto g = test::single_stage_graph(hw);
    const auto traffic = test::mtu_traffic(60.0);

    const auto curve = degradation_curve(hw, g, traffic, "cores");
    EXPECT_EQ(curve.vertex, "cores");
    EXPECT_EQ(curve.base_engines, 8u);
    ASSERT_EQ(curve.points.size(), 9u); // k = 0..8 inclusive

    for (std::size_t k = 0; k + 1 < curve.points.size(); ++k) {
        EXPECT_EQ(curve.points[k].engines_failed, k);
        EXPECT_EQ(curve.points[k].engines_left, 8u - k);
        // Losing one more engine never increases capacity or throughput.
        EXPECT_GE(curve.points[k].capacity.gbps(),
                  curve.points[k + 1].capacity.gbps());
        EXPECT_GE(curve.points[k].achieved.gbps(),
                  curve.points[k + 1].achieved.gbps());
    }
    // The all-engines-lost point passes nothing.
    EXPECT_EQ(curve.points.back().engines_left, 0u);
    EXPECT_DOUBLE_EQ(curve.points.back().achieved.gbps(), 0.0);
    EXPECT_DOUBLE_EQ(curve.points.back().capacity.gbps(), 0.0);
}

TEST(DegradationCurve, MaxFractionLimitsThePointsAndSkipsTheZeroPoint)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    const auto curve =
        degradation_curve(hw, g, test::mtu_traffic(10.0), "cores", 0.5);
    ASSERT_EQ(curve.points.size(), 5u); // k = 0..4
    EXPECT_GT(curve.points.back().engines_left, 0u);
}

TEST(DegradationCurve, RejectsBadVertexAndFraction)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    const auto traffic = test::mtu_traffic(10.0);
    EXPECT_THROW(degradation_curve(hw, g, traffic, "no-such-vertex"),
                 std::invalid_argument);
    EXPECT_THROW(degradation_curve(hw, g, traffic, "cores", 0.0),
                 std::invalid_argument);
    EXPECT_THROW(degradation_curve(hw, g, traffic, "cores", 1.5),
                 std::invalid_argument);
}

TEST(DegradationCurve, SerializesToJson)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    const auto curve =
        degradation_curve(hw, g, test::mtu_traffic(10.0), "cores", 0.25);
    const auto j = to_json(curve);
    EXPECT_EQ(j.at("vertex").as_string(), "cores");
    EXPECT_DOUBLE_EQ(j.at("base_engines").as_number(), 8.0);
    EXPECT_EQ(j.at("points").as_array().size(), curve.points.size());
    const auto& p0 = j.at("points").as_array().front();
    EXPECT_TRUE(p0.contains("achieved_gbps"));
    EXPECT_TRUE(p0.contains("mean_latency_us"));
}

// The acceptance criterion for the degraded-mode model: up to 50% of the
// bottleneck vertex's engines failed, the analytical curve's delivered
// throughput must agree with the faulted simulator within the same kind of
// tolerance band model_vs_sim_test uses for healthy operating points.
TEST(DegradationVsSim, DeliveredThroughputAgreesUpToHalfTheEnginesFailed)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    const auto g = test::single_stage_graph(hw);
    // 8 engines deliver ~69.8 Gbps at MTU, so 60 Gbps offered is
    // unsaturated at k <= 1 and saturated from k = 2 on — the band covers
    // both regimes of the curve.
    const auto traffic = test::mtu_traffic(60.0);
    const auto curve = degradation_curve(hw, g, traffic, "cores", 0.5);
    ASSERT_EQ(curve.points.size(), 5u);

    for (const DegradationPoint& pt : curve.points) {
        sim::SimOptions opts;
        opts.duration = 0.05;
        opts.seed = 7;
        if (pt.engines_failed > 0)
            opts.faults.events.push_back(
                engine_fail(0.0, "cores", pt.engines_failed));
        const auto res = sim::simulate(hw, g, traffic, opts);
        const double model = pt.achieved.gbps();
        EXPECT_NEAR(res.delivered.gbps(), model, 0.06 * model + 0.3)
            << pt.engines_failed << " engines failed";
    }
}

TEST(ApplyFaultsAt, ReplaysTheTimelineHonoringDurations)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    FaultPlan plan;
    plan.events.push_back(engine_fail(0.01, "cores", 4, /*duration=*/0.01));

    // Before the fault: untouched (parallelism 0 = all engines).
    auto before = apply_faults_at(plan, 0.005, hw, g);
    const auto vid = *before.graph.find_vertex("cores");
    EXPECT_EQ(before.graph.vertex(vid).params.parallelism, 0u);

    // During the outage window: 4 of 8 engines gone.
    auto during = apply_faults_at(plan, 0.015, hw, g);
    EXPECT_EQ(during.graph.vertex(vid).params.parallelism, 4u);

    // After the repair: back to full strength.
    auto after = apply_faults_at(plan, 0.025, hw, g);
    EXPECT_EQ(after.graph.vertex(vid).params.parallelism, 0u);
}

TEST(ApplyFaultsAt, FloorsAFullyFailedVertexAtOneEngine)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    FaultPlan plan;
    plan.events.push_back(engine_fail(0.0, "cores", 50));
    const auto sc = apply_faults_at(plan, 0.01, hw, g);
    EXPECT_EQ(sc.graph.vertex(*sc.graph.find_vertex("cores"))
                  .params.parallelism,
              1u);
}

TEST(ApplyFaultsAt, ScalesSharedLinkBandwidth)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    FaultPlan plan;
    FaultEvent degrade;
    degrade.at = 0.0;
    degrade.kind = FaultKind::kLinkDegrade;
    degrade.target = "memory";
    degrade.factor = 0.5;
    plan.events.push_back(degrade);

    const auto sc = apply_faults_at(plan, 0.01, hw, g);
    EXPECT_DOUBLE_EQ(sc.hw.memory_bandwidth().gbps(),
                     0.5 * hw.memory_bandwidth().gbps());
    EXPECT_DOUBLE_EQ(sc.hw.interface_bandwidth().gbps(),
                     hw.interface_bandwidth().gbps());
}

TEST(ApplyFaultsAt, SlowdownScalesAccelerationAndModelLatency)
{
    const auto hw = test::small_nic(Bandwidth::from_gbps(1000.0));
    const auto g = test::single_stage_graph(hw);
    const auto traffic = test::mtu_traffic(10.0);
    FaultPlan plan;
    FaultEvent slow;
    slow.at = 0.0;
    slow.kind = FaultKind::kSlowdown;
    slow.target = "cores";
    slow.factor = 2.0;
    plan.events.push_back(slow);

    // The slowdown lands in the A_i acceleration factor (C_i / A_i), which
    // the latency model charges as compute time.
    const auto sc = apply_faults_at(plan, 0.01, hw, g);
    EXPECT_DOUBLE_EQ(sc.graph.vertex(*sc.graph.find_vertex("cores"))
                         .params.acceleration,
                     0.5);
    const core::Model base_model(hw);
    const core::Model faulted_model(sc.hw);
    const auto base = base_model.estimate(g, traffic);
    const auto degraded = faulted_model.estimate(sc.graph, traffic);
    EXPECT_GT(degraded.latency.mean.seconds(), base.latency.mean.seconds());
}

TEST(ApplyFaultsAt, OverridesQueueCapacity)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    FaultPlan plan;
    FaultEvent cap;
    cap.at = 0.0;
    cap.kind = FaultKind::kQueueCapacity;
    cap.target = "cores";
    cap.capacity = 3;
    plan.events.push_back(cap);

    const auto sc = apply_faults_at(plan, 0.01, hw, g);
    EXPECT_EQ(sc.graph.vertex(*sc.graph.find_vertex("cores"))
                  .params.queue_capacity,
              3u);
}

TEST(ApplyFaultsAt, UnknownTargetThrowsNamingIt)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    FaultPlan plan;
    plan.events.push_back(engine_fail(0.0, "warp-core", 1));
    try {
        apply_faults_at(plan, 0.01, hw, g);
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("warp-core"), std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace lognic::fault
