#include "lognic/fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace lognic::fault {
namespace {

FaultEvent
engine_fail(double at, const std::string& target, std::uint32_t count = 1)
{
    FaultEvent e;
    e.at = at;
    e.kind = FaultKind::kEngineFail;
    e.target = target;
    e.count = count;
    return e;
}

TEST(FaultPlan, KindNamesRoundTrip)
{
    for (FaultKind kind :
         {FaultKind::kEngineFail, FaultKind::kEngineRecover,
          FaultKind::kSlowdown, FaultKind::kLinkDegrade,
          FaultKind::kDropBurst, FaultKind::kQueueCapacity}) {
        EXPECT_EQ(fault_kind_from_string(to_string(kind)), kind);
    }
    EXPECT_THROW(fault_kind_from_string("meltdown"), std::invalid_argument);
    EXPECT_EQ(in_service_policy_from_string(
                  to_string(InServicePolicy::kDrop)),
              InServicePolicy::kDrop);
    EXPECT_THROW(in_service_policy_from_string("shrug"),
                 std::invalid_argument);
}

TEST(FaultPlan, ValidateEnforcesPerKindRanges)
{
    FaultPlan ok;
    ok.events.push_back(engine_fail(0.01, "cores", 2));
    EXPECT_NO_THROW(ok.validate());

    // Empty target.
    FaultPlan bad = ok;
    bad.events[0].target.clear();
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    // Negative time.
    bad = ok;
    bad.events[0].at = -1.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    // Zero engines.
    bad = ok;
    bad.events[0].count = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    // Slowdown must slow things down.
    bad = ok;
    bad.events[0].kind = FaultKind::kSlowdown;
    bad.events[0].factor = 0.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    // Link degradation must be a real degradation in (0, 1].
    bad = ok;
    bad.events[0].kind = FaultKind::kLinkDegrade;
    bad.events[0].target = "memory";
    bad.events[0].factor = 1.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad.events[0].factor = 0.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    // Drop probability in (0, 1].
    bad = ok;
    bad.events[0].kind = FaultKind::kDropBurst;
    bad.events[0].probability = 0.0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
    bad.events[0].probability = 1.5;
    EXPECT_THROW(bad.validate(), std::invalid_argument);

    // Queue capacity >= 1.
    bad = ok;
    bad.events[0].kind = FaultKind::kQueueCapacity;
    bad.events[0].capacity = 0;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(FaultPlan, ValidationErrorsNameTheEvent)
{
    FaultPlan plan;
    plan.events.push_back(engine_fail(0.01, "cores"));
    plan.events.push_back(engine_fail(0.02, "accel", 0));
    try {
        plan.validate();
        FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("#1"), std::string::npos) << what;
        EXPECT_NE(what.find("accel"), std::string::npos) << what;
    }
}

TEST(FaultPlan, SortedOrdersByTimeStably)
{
    FaultPlan plan;
    plan.events.push_back(engine_fail(0.02, "late"));
    plan.events.push_back(engine_fail(0.01, "first"));
    plan.events.push_back(engine_fail(0.01, "second"));
    const auto sorted = plan.sorted();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].target, "first");
    EXPECT_EQ(sorted[1].target, "second");
    EXPECT_EQ(sorted[2].target, "late");
}

TEST(FaultPlan, RandomPlansAreSeedDeterministic)
{
    const std::vector<std::string> targets{"cores", "accel"};
    const auto a = random_fault_plan(7, targets);
    const auto b = random_fault_plan(7, targets);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.events[i].at, b.events[i].at);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].target, b.events[i].target);
        EXPECT_DOUBLE_EQ(a.events[i].duration, b.events[i].duration);
    }
    EXPECT_NO_THROW(a.validate());

    // A different seed gives a genuinely different timeline (with a dense
    // enough config that a plan is near-certain to have events).
    RandomFaultConfig dense;
    dense.mtbf = 0.005;
    const auto c = random_fault_plan(8, targets, dense);
    const auto d = random_fault_plan(9, targets, dense);
    ASSERT_FALSE(c.events.empty());
    const bool differs = c.events.size() != d.events.size()
        || c.events[0].at != d.events[0].at;
    EXPECT_TRUE(differs);
}

TEST(FaultPlan, RandomPlanStaysInsideHorizon)
{
    RandomFaultConfig cfg;
    cfg.horizon = 0.02;
    cfg.mtbf = 0.003;
    cfg.mttr = 0.002;
    const auto plan = random_fault_plan(11, {"u"}, cfg);
    for (const auto& e : plan.events) {
        EXPECT_GE(e.at, 0.0);
        EXPECT_LT(e.at, cfg.horizon);
    }
}

TEST(FaultPlanJson, RoundTripsThroughJson)
{
    FaultPlan plan;
    plan.in_service_policy = InServicePolicy::kDrop;
    plan.events.push_back(engine_fail(0.01, "cores", 3));
    FaultEvent degrade;
    degrade.at = 0.02;
    degrade.kind = FaultKind::kLinkDegrade;
    degrade.target = "memory";
    degrade.factor = 0.5;
    degrade.duration = 0.005;
    plan.events.push_back(degrade);

    const auto parsed = fault_plan_from_json(to_json(plan));
    EXPECT_EQ(parsed.in_service_policy, InServicePolicy::kDrop);
    ASSERT_EQ(parsed.events.size(), 2u);
    EXPECT_DOUBLE_EQ(parsed.events[0].at, 0.01);
    EXPECT_EQ(parsed.events[0].kind, FaultKind::kEngineFail);
    EXPECT_EQ(parsed.events[0].count, 3u);
    EXPECT_EQ(parsed.events[1].kind, FaultKind::kLinkDegrade);
    EXPECT_DOUBLE_EQ(parsed.events[1].factor, 0.5);
    EXPECT_DOUBLE_EQ(parsed.events[1].duration, 0.005);
}

TEST(FaultPlanJson, SamplePlanParses)
{
    const auto plan =
        fault_plan_from_json(io::Json::parse(sample_fault_plan()));
    EXPECT_FALSE(plan.empty());
    EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlanJson, AcceptsBareEventArray)
{
    const auto plan = fault_plan_from_json(io::Json::parse(
        R"([{"at": 0.01, "kind": "engine_fail", "target": "cores"}])"));
    ASSERT_EQ(plan.events.size(), 1u);
    EXPECT_EQ(plan.events[0].target, "cores");
    EXPECT_EQ(plan.in_service_policy, InServicePolicy::kRequeue);
}

TEST(FaultPlanJson, RejectsMalformedDocuments)
{
    EXPECT_THROW(fault_plan_from_json(io::Json::parse("42")),
                 std::runtime_error);
    EXPECT_THROW(fault_plan_from_json(io::Json::parse(
                     R"([{"kind": "engine_fail"}])")),
                 std::runtime_error); // missing target
    EXPECT_THROW(fault_plan_from_json(io::Json::parse(
                     R"([{"at": 0.1, "kind": "warp", "target": "x"}])")),
                 std::runtime_error);
}

} // namespace
} // namespace lognic::fault
