/**
 * @file
 * Kill/resume supervision: journals round-trip bit-exactly, and a run
 * killed after any completion and resumed from its checkpoint directory
 * produces a report *byte-identical* to the uninterrupted run — at 1 and
 * 8 threads, with corrupt newest generations skipped by name, foreign
 * campaigns refused, and failed points retried with exponential backoff.
 *
 * The kill is simulated at the storage layer: the supervisor checkpoints
 * after every completion (checkpoint_every=1, retention high enough to
 * keep them all), then we clone the directory and delete every generation
 * newer than g — exactly the on-disk state a SIGKILL after the g-th
 * publication leaves behind — and resume from the clone.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/ckpt/journal.hpp"
#include "lognic/ckpt/supervisor.hpp"
#include "lognic/io/checkpoint.hpp"
#include "lognic/io/serialize.hpp"
#include "../test_helpers.hpp"

namespace lognic::ckpt {
namespace {

namespace fs = std::filesystem;

class TempDir {
  public:
    explicit TempDir(const std::string& tag)
        : path_((fs::temp_directory_path()
                 / ("lognic_resume_" + tag + "_"
                    + std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

/// Clone @p src and delete every generation newer than @p keep — the
/// directory a kill right after the keep-th publication would leave.
std::string
clone_killed_at(const std::string& src, const std::string& dst,
                const std::string& kind, std::uint64_t keep)
{
    fs::remove_all(dst);
    fs::create_directories(dst);
    for (const auto& entry : fs::directory_iterator(src))
        fs::copy(entry.path(), dst / entry.path().filename());
    CheckpointStore probe(dst, kind, StoreOptions{1000});
    for (std::uint64_t g : probe.generations())
        if (g > keep)
            fs::remove(probe.path_for(g));
    return dst;
}

// --- journal round trips ------------------------------------------------------

sim::SimResult
tiny_sim_result(std::uint64_t seed)
{
    const auto hw = test::small_nic();
    const auto graph = test::single_stage_graph(hw);
    const auto traffic = test::mtu_traffic(8.0);
    sim::SimOptions opts;
    opts.duration = sim::SimTime{0.002};
    opts.seed = seed;
    return sim::NicSimulator(hw, graph, traffic, opts).run();
}

TEST(JournalRoundTrip, TaskJournalIsBitExactThroughDumpAndParse)
{
    TaskJournal journal;
    runner::CompletedTask ok;
    ok.ok = true;
    ok.seed = 0xdeadbeefcafef00dull;
    ok.attempts = 2;
    ok.result = tiny_sim_result(7);
    journal.record(3, ok);

    runner::CompletedTask bad;
    bad.ok = false;
    bad.seed = 17;
    bad.attempts = 3;
    bad.error = "simulated failure: \"quoted\" and\nnewline";
    journal.record(9, bad);

    const io::Json j = journal.to_json();
    TaskJournal back;
    back.load_json(io::Json::parse(j.dump(-1)));
    EXPECT_EQ(back.size(), 2u);
    EXPECT_EQ(back.failed_count(), 1u);
    // Re-serialization equality is the strongest bit-exactness check:
    // every hex-encoded double and u64 must survive untouched.
    EXPECT_EQ(back.to_json().dump(-1), j.dump(-1));

    runner::CompletedTask out;
    ASSERT_TRUE(back.lookup(3, out));
    EXPECT_EQ(out.seed, ok.seed);
    EXPECT_EQ(out.result.completed_total, ok.result.completed_total);
    EXPECT_EQ(out.result.mean_latency.seconds(),
              ok.result.mean_latency.seconds()); // bit-identical
    ASSERT_TRUE(back.lookup(9, out));
    EXPECT_EQ(out.error, bad.error);
    EXPECT_FALSE(back.lookup(0, out));

    EXPECT_EQ(back.erase_failed(), 1u);
    EXPECT_EQ(back.size(), 1u);
}

TEST(JournalRoundTrip, CheckJournalKeysUnitsByStableStrings)
{
    CheckJournal journal;
    check::TrialOutcome t;
    t.single_queue = true;
    t.sims_run = 4;
    journal.record("trial:0", t);
    check::TrialOutcome c;
    c.sims_run = 1;
    journal.record("corpus:fig18-regression", c);

    const io::Json j = journal.to_json();
    CheckJournal back;
    back.load_json(io::Json::parse(j.dump(-1)));
    EXPECT_EQ(back.size(), 2u);
    EXPECT_EQ(back.to_json().dump(-1), j.dump(-1));
    check::TrialOutcome out;
    ASSERT_TRUE(back.lookup("trial:0", out));
    EXPECT_TRUE(out.single_queue);
    EXPECT_EQ(out.sims_run, 4u);
    EXPECT_FALSE(back.lookup("trial:1", out));
}

TEST(JournalRoundTrip, FitJournalCarriesNonFiniteLosses)
{
    FitJournal journal;
    calib::StartRecord rec;
    rec.outcome.index = 2;
    rec.outcome.seed = 0xffffffffffffffffull;
    rec.outcome.initial_loss = 1e-300;
    rec.outcome.final_loss = std::numeric_limits<double>::infinity();
    rec.outcome.failed = true;
    rec.outcome.message = "solver diverged";
    rec.x = {2.0, -0.0};
    rec.residuals = {std::numeric_limits<double>::quiet_NaN()};
    rec.convergence = {1.0, 0.5, 0.25};
    journal.record(2, rec);

    const io::Json j = journal.to_json();
    FitJournal back;
    back.load_json(io::Json::parse(j.dump(-1)));
    EXPECT_EQ(back.to_json().dump(-1), j.dump(-1));
    calib::StartRecord out;
    ASSERT_TRUE(back.lookup(2, out));
    EXPECT_TRUE(std::isinf(out.outcome.final_loss));
    EXPECT_TRUE(std::isnan(out.residuals.at(0)));
    EXPECT_TRUE(std::signbit(out.x.at(1)));
    EXPECT_EQ(out.convergence, rec.convergence);
}

TEST(JournalRoundTrip, MalformedDocumentsAreRejected)
{
    TaskJournal journal;
    EXPECT_THROW(journal.load_json(io::Json::parse("[]")),
                 std::runtime_error);
    EXPECT_THROW(journal.load_json(io::Json::parse("{\"tasks\": 3}")),
                 std::runtime_error);
    // Duplicate keys would silently drop work — refused.
    EXPECT_THROW(
        journal.load_json(io::Json::parse(
            R"({"tasks": [{"task": "0x1", "ok": false, "seed": "0x0",
                "attempts": "0x1", "error": ""},
               {"task": "0x1", "ok": false, "seed": "0x0",
                "attempts": "0x1", "error": ""}]})")),
        std::runtime_error);
}

// --- supervised sweeps: kill anywhere, resume, byte-identical -----------------

runner::Sweep
small_sweep()
{
    const auto hw = test::small_nic();
    runner::Sweep sweep;
    for (int i = 0; i < 2; ++i) {
        runner::SweepPoint pt{"p" + std::to_string(i), hw,
                              test::single_stage_graph(hw),
                              test::mtu_traffic(6.0 + 4.0 * i),
                              {}};
        pt.options.duration = sim::SimTime{0.002};
        sweep.add(pt);
    }
    return sweep;
}

TEST(SuperviseSweep, ResumeIsByteIdenticalAfterAnyKillPoint)
{
    const runner::Sweep sweep = small_sweep();
    runner::SweepOptions base;
    base.replications = 2; // 4 tasks total

    const std::string baseline =
        runner::to_json(sweep.run_guarded(base)).dump(2);

    for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        runner::SweepOptions so = base;
        so.threads = threads;

        // One supervised pass that checkpoints after every completion.
        TempDir full("sweep_full_t" + std::to_string(threads));
        SupervisorOptions sup;
        sup.dir = full.path();
        sup.checkpoint_every = 1;
        sup.retention = 100;
        const SupervisedSweep uninterrupted =
            supervise_sweep(sweep, so, sup);
        EXPECT_EQ(runner::to_json(uninterrupted.report).dump(2), baseline)
            << "threads=" << threads;
        EXPECT_FALSE(uninterrupted.resume.resumed);
        EXPECT_GE(uninterrupted.checkpoints, 5u); // 4 ticks + final flush

        // Kill after each checkpoint publication in turn and resume.
        CheckpointStore probe(full.path(), "sweep", StoreOptions{1000});
        const auto gens = probe.generations();
        ASSERT_GE(gens.size(), 2u);
        for (std::uint64_t keep : {gens.front(), gens[gens.size() / 2]}) {
            TempDir killed("sweep_kill_t" + std::to_string(threads) + "_g"
                           + std::to_string(keep));
            clone_killed_at(full.path(), killed.path(), "sweep", keep);
            SupervisorOptions rsup;
            rsup.dir = killed.path();
            const SupervisedSweep resumed =
                supervise_sweep(sweep, so, rsup);
            EXPECT_TRUE(resumed.resume.resumed);
            EXPECT_GT(resumed.resume.completed, 0u);
            EXPECT_EQ(runner::to_json(resumed.report).dump(2), baseline)
                << "threads=" << threads << " killed after gen " << keep;
        }

        // Resuming the *finished* directory replays everything.
        SupervisorOptions again;
        again.dir = full.path();
        const SupervisedSweep replay = supervise_sweep(sweep, so, again);
        EXPECT_TRUE(replay.resume.resumed);
        EXPECT_EQ(replay.resume.completed, 4u);
        EXPECT_EQ(runner::to_json(replay.report).dump(2), baseline);
    }
}

TEST(SuperviseSweep, CorruptNewestGenerationIsSkippedByName)
{
    const runner::Sweep sweep = small_sweep();
    runner::SweepOptions so;
    so.replications = 1;

    TempDir dir("sweep_corrupt");
    SupervisorOptions sup;
    sup.dir = dir.path();
    sup.checkpoint_every = 1;
    sup.retention = 100;
    const std::string baseline =
        runner::to_json(supervise_sweep(sweep, so, sup).report).dump(2);

    // Tear the newest generation mid-payload.
    CheckpointStore probe(dir.path(), "sweep", StoreOptions{1000});
    const auto gens = probe.generations();
    ASSERT_FALSE(gens.empty());
    const std::string newest = probe.path_for(gens.back());
    std::ifstream in(newest, std::ios::binary);
    std::string data(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>{});
    in.close();
    std::ofstream out(newest, std::ios::binary | std::ios::trunc);
    out << data.substr(0, data.size() * 2 / 3);
    out.close();

    std::vector<std::string> logged;
    SupervisorOptions rsup;
    rsup.dir = dir.path();
    rsup.log = [&logged](const std::string& m) { logged.push_back(m); };
    const SupervisedSweep resumed = supervise_sweep(sweep, so, rsup);
    EXPECT_TRUE(resumed.resume.resumed);
    ASSERT_EQ(resumed.resume.rejected.size(), 1u);
    EXPECT_EQ(resumed.resume.rejected[0].path, newest);
    EXPECT_NE(resumed.resume.rejected[0].reason.find("truncated"),
              std::string::npos);
    EXPECT_EQ(runner::to_json(resumed.report).dump(2), baseline);
    // The skip is reported to the diagnostics sink, path and reason both.
    bool saw_skip = false;
    for (const auto& m : logged)
        saw_skip = saw_skip || (m.find("skipping") != std::string::npos
                                && m.find(newest) != std::string::npos);
    EXPECT_TRUE(saw_skip);
}

TEST(SuperviseSweep, RefusesAForeignCampaignsJournal)
{
    const runner::Sweep sweep = small_sweep();
    runner::SweepOptions so;
    so.replications = 1;

    TempDir dir("sweep_foreign");
    SupervisorOptions sup;
    sup.dir = dir.path();
    supervise_sweep(sweep, so, sup);

    runner::SweepOptions other = so;
    other.root_seed = 43; // different campaign, same directory
    EXPECT_THROW(supervise_sweep(sweep, other, sup), std::runtime_error);
}

TEST(SuperviseSweep, RetriesFailedPointsWithExponentialBackoff)
{
    // One deterministically-throwing point (impossible parallelism): every
    // retry round re-fails it identically, consuming the full budget.
    const auto hw = test::small_nic();
    runner::Sweep sweep;
    runner::SweepPoint good{"good", hw, test::single_stage_graph(hw),
                            test::mtu_traffic(6.0), {}};
    good.options.duration = sim::SimTime{0.002};
    sweep.add(good);
    runner::SweepPoint bad = good;
    bad.label = "bad";
    bad.graph.vertex(*bad.graph.find_vertex("cores"))
        .params.parallelism = 99; // > max_engines: construction throws
    sweep.add(bad);

    runner::SweepOptions so;
    so.replications = 1;

    TempDir dir("sweep_retry");
    std::vector<double> sleeps;
    SupervisorOptions sup;
    sup.dir = dir.path();
    sup.retry_rounds = 2;
    sup.backoff_initial_seconds = 0.25;
    sup.backoff_multiplier = 2.0;
    sup.sleep_fn = [&sleeps](double s) { sleeps.push_back(s); };

    const SupervisedSweep out = supervise_sweep(sweep, so, sup);
    EXPECT_EQ(out.retry_rounds_used, 2u);
    EXPECT_EQ(sleeps, (std::vector<double>{0.25, 0.5}));
    ASSERT_EQ(out.report.failed.size(), 1u);
    EXPECT_EQ(out.report.failed[0].label, "bad");
    ASSERT_EQ(out.report.results.size(), 1u);
    EXPECT_EQ(out.report.results[0].label, "good");

    // The deterministic failure is also identical to the unsupervised run.
    const runner::SweepReport plain = sweep.run_guarded(so);
    EXPECT_EQ(runner::to_json(out.report).dump(2),
              runner::to_json(plain).dump(2));
}

TEST(SuperviseSweep, RejectsPresetHooksAndBadOptions)
{
    const runner::Sweep sweep = small_sweep();
    TempDir dir("sweep_invalid");
    SupervisorOptions sup;
    sup.dir = dir.path();

    runner::SweepOptions hooked;
    hooked.resume_lookup = [](std::size_t, runner::CompletedTask&) {
        return false;
    };
    EXPECT_THROW(supervise_sweep(sweep, hooked, sup),
                 std::invalid_argument);

    SupervisorOptions nodir;
    EXPECT_THROW(supervise_sweep(sweep, {}, nodir), std::invalid_argument);
    SupervisorOptions zero = sup;
    zero.checkpoint_every = 0;
    EXPECT_THROW(supervise_sweep(sweep, {}, zero), std::invalid_argument);
}

// --- supervised checks --------------------------------------------------------

check::CheckOptions
small_check()
{
    check::CheckOptions copts;
    copts.trials = 4;
    copts.seed = 11;
    copts.duration = 0.002;
    copts.monotonicity = false; // 1 sim per trial keeps this fast
    copts.minimize = false;
    return copts;
}

TEST(SuperviseCheck, ResumeIsByteIdenticalAfterAnyKillPoint)
{
    const check::CheckOptions copts = small_check();
    const std::string baseline =
        check::to_json(check::run_trials(copts)).dump(2);

    TempDir full("check_full");
    SupervisorOptions sup;
    sup.dir = full.path();
    sup.checkpoint_every = 1;
    sup.retention = 100;
    const SupervisedCheck uninterrupted =
        supervise_check(copts, {}, sup);
    EXPECT_EQ(check::to_json(uninterrupted.report).dump(2), baseline);

    CheckpointStore probe(full.path(), "check", StoreOptions{1000});
    const auto gens = probe.generations();
    ASSERT_GE(gens.size(), 2u);
    for (std::uint64_t keep : {gens.front(), gens[gens.size() / 2]}) {
        TempDir killed("check_kill_g" + std::to_string(keep));
        clone_killed_at(full.path(), killed.path(), "check", keep);
        SupervisorOptions rsup;
        rsup.dir = killed.path();
        const SupervisedCheck resumed = supervise_check(copts, {}, rsup);
        EXPECT_TRUE(resumed.resume.resumed);
        EXPECT_GT(resumed.resume.completed, 0u);
        EXPECT_EQ(check::to_json(resumed.report).dump(2), baseline)
            << "killed after gen " << keep;
    }
}

TEST(SuperviseCheck, FingerprintCoversTrialCountAndSeed)
{
    const check::CheckOptions copts = small_check();
    TempDir dir("check_foreign");
    SupervisorOptions sup;
    sup.dir = dir.path();
    supervise_check(copts, {}, sup);

    check::CheckOptions other = small_check();
    other.seed = 12;
    EXPECT_THROW(supervise_check(other, {}, sup), std::runtime_error);
}

// --- calibration starts resume through the fit engine -------------------------

calib::FitProblem
quadratic_problem()
{
    calib::FitProblem p;
    p.residuals = [](const solver::Vector& x) {
        return solver::Vector{x[0] - 2.0, 3.0 * (x[1] - 0.5)};
    };
    p.x0 = {0.5, 0.1};
    p.bounds.lower = {0.0, 0.0};
    p.bounds.upper = {10.0, 10.0};
    return p;
}

TEST(FitResume, JournaledStartsReplayBitIdentically)
{
    calib::FitOptions opts;
    opts.starts = 4;

    // Full run, journaling every start.
    FitJournal journal;
    calib::FitOptions recording = opts;
    recording.resume_lookup = journal.lookup_fn();
    recording.on_start_complete = journal.record_fn();
    const calib::FitOutcome full =
        calib::fit_residuals(quadratic_problem(), recording);
    EXPECT_EQ(journal.size(), 4u);

    // Persist the journal and resume from a *partial* copy (starts 0, 1),
    // as a kill after the second checkpoint would leave it.
    {
        FitJournal cut;
        for (std::size_t k : {std::size_t{0}, std::size_t{1}}) {
            calib::StartRecord r;
            ASSERT_TRUE(journal.lookup(k, r));
            cut.record(k, r);
        }
        cut.load_json(io::Json::parse(cut.to_json().dump(-1)));
        calib::FitOptions resuming = opts;
        resuming.resume_lookup = cut.lookup_fn();
        const calib::FitOutcome resumed =
            calib::fit_residuals(quadratic_problem(), resuming);
        ASSERT_EQ(resumed.starts.size(), full.starts.size());
        EXPECT_EQ(resumed.x, full.x); // bit-identical
        EXPECT_EQ(resumed.loss, full.loss);
        EXPECT_EQ(resumed.convergence, full.convergence);
        for (std::size_t i = 0; i < full.starts.size(); ++i) {
            EXPECT_EQ(resumed.starts[i].seed, full.starts[i].seed);
            EXPECT_EQ(resumed.starts[i].final_loss,
                      full.starts[i].final_loss);
        }
    }

    // Fully-journaled resume recomputes nothing.
    calib::FitOptions replay = opts;
    replay.resume_lookup = journal.lookup_fn();
    const calib::FitOutcome replayed =
        calib::fit_residuals(quadratic_problem(), replay);
    EXPECT_EQ(replayed.x, full.x);
    EXPECT_EQ(replayed.loss, full.loss);
    // Journaled starts replay with their *original* solve counters — the
    // report is indistinguishable from the uninterrupted run's.
    EXPECT_EQ(replayed.model_solves(), full.model_solves());
}

} // namespace
} // namespace lognic::ckpt
