/**
 * @file
 * Checkpoint frame format and generation store: checksums, bit-exact hex
 * encodings, the atomic-rename publication protocol, and the
 * corrupt/torn/skewed-generation rejection corpus. Every defect must be
 * detected *by name* and skipped in favor of an older valid generation —
 * silently loading damaged state is the one unforgivable failure mode.
 */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "lognic/ckpt/store.hpp"
#include "lognic/io/checkpoint.hpp"

namespace lognic {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test.
class TempDir {
  public:
    explicit TempDir(const std::string& tag)
        : path_((fs::temp_directory_path()
                 / ("lognic_ckpt_" + tag + "_"
                    + std::to_string(::getpid())))
                    .string())
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

void
write_raw(const std::string& path, const std::string& contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

std::string
read_raw(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

// --- FNV-1a -------------------------------------------------------------------

// Published FNV-1a 64 reference vectors.
TEST(Fnv1a, MatchesReferenceVectors)
{
    EXPECT_EQ(io::fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(io::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(io::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a, SensitiveToEveryByte)
{
    const std::string base(256, 'x');
    const std::uint64_t h = io::fnv1a64(base);
    for (std::size_t i = 0; i < base.size(); i += 17) {
        std::string flipped = base;
        flipped[i] ^= 0x01;
        EXPECT_NE(io::fnv1a64(flipped), h) << "byte " << i;
    }
}

// --- hex encodings ------------------------------------------------------------

TEST(HexCodec, DoubleRoundTripsBitExactly)
{
    const double cases[] = {0.0,
                            -0.0,
                            1.0,
                            -1.5,
                            3.141592653589793,
                            1e-300,
                            -1e308,
                            std::numeric_limits<double>::denorm_min(),
                            std::numeric_limits<double>::max(),
                            std::numeric_limits<double>::infinity(),
                            -std::numeric_limits<double>::infinity(),
                            std::numeric_limits<double>::quiet_NaN()};
    for (double v : cases) {
        const double back = io::double_from_hex(io::double_to_hex(v), "t");
        EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
                  std::bit_cast<std::uint64_t>(v))
            << io::double_to_hex(v);
    }
}

TEST(HexCodec, U64RoundTripsAndParsesStrictly)
{
    for (std::uint64_t v :
         std::initializer_list<std::uint64_t>{
             0, 1, 42, 0xdeadbeefcafef00dull,
             std::numeric_limits<std::uint64_t>::max()}) {
        EXPECT_EQ(io::parse_u64(io::u64_to_hex(v), "t"), v);
    }
    EXPECT_EQ(io::parse_u64("12345", "t"), 12345u);
    EXPECT_EQ(io::parse_u64(" 7 ", "t"), 7u);
    EXPECT_THROW(io::parse_u64("", "t"), std::runtime_error);
    EXPECT_THROW(io::parse_u64("12x", "t"), std::runtime_error);
    EXPECT_THROW(io::parse_u64("-3", "t"), std::runtime_error);
    EXPECT_THROW(io::parse_u64("99999999999999999999999", "t"),
                 std::runtime_error);
    // The context lands in the error message.
    try {
        io::parse_u64("bogus", "spec field seed");
        FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("spec field seed"),
                  std::string::npos);
    }
}

TEST(HexCodec, ParseU64RejectsSignsOctalPrefixAndHexGarbage)
{
    // The hand-rolled parser (replacing raw std::stoull) must reject
    // everything stoull silently tolerated or misread.
    EXPECT_THROW(io::parse_u64("+5", "t"), std::runtime_error); // sign
    EXPECT_THROW(io::parse_u64("0x", "t"), std::runtime_error); // no digits
    EXPECT_THROW(io::parse_u64("0xg1", "t"), std::runtime_error);
    EXPECT_THROW(io::parse_u64("0x1g", "t"), std::runtime_error);
    EXPECT_THROW(io::parse_u64("1 2", "t"), std::runtime_error);
    EXPECT_THROW(io::parse_u64("0x10000000000000000", "t"),
                 std::runtime_error); // hex overflow
    // Leading zeros are decimal, never octal.
    EXPECT_EQ(io::parse_u64("0777", "t"), 777u);
    // Hex is case-insensitive and whitespace-trimmed.
    EXPECT_EQ(io::parse_u64(" 0X1a ", "t"), 26u);
    EXPECT_EQ(io::parse_u64("0xffffffffffffffff", "t"),
              std::numeric_limits<std::uint64_t>::max());
}

// --- frame encode/decode ------------------------------------------------------

TEST(Frame, RoundTripsBinaryPayloads)
{
    io::CheckpointFrame frame;
    frame.kind = "sweep";
    frame.payload = std::string("line1\nline2\0binary\xff tail", 24);
    const std::string encoded = io::encode_frame(frame);

    std::string reason;
    const auto back = io::decode_frame(encoded, &reason);
    ASSERT_TRUE(back.has_value()) << reason;
    EXPECT_EQ(back->version, io::kCheckpointVersion);
    EXPECT_EQ(back->kind, "sweep");
    EXPECT_EQ(back->payload, frame.payload);
}

TEST(Frame, RejectsBadKinds)
{
    io::CheckpointFrame frame;
    frame.kind = "";
    EXPECT_THROW(io::encode_frame(frame), std::exception);
    frame.kind = "has space";
    EXPECT_THROW(io::encode_frame(frame), std::exception);
}

TEST(Frame, NamesEveryDefect)
{
    io::CheckpointFrame frame;
    frame.kind = "check";
    frame.payload = "{\"journal\":{}}";
    const std::string good = io::encode_frame(frame);

    std::string reason;
    // Torn write: payload cut short.
    EXPECT_FALSE(
        io::decode_frame(good.substr(0, good.size() - 3), &reason));
    EXPECT_NE(reason.find("truncated"), std::string::npos) << reason;
    // Bit rot: one payload byte flipped.
    std::string rotted = good;
    rotted[rotted.size() - 2] ^= 0x20;
    EXPECT_FALSE(io::decode_frame(rotted, &reason));
    EXPECT_NE(reason.find("checksum"), std::string::npos) << reason;
    // Wrong magic.
    std::string magic = good;
    magic[0] = 'X';
    EXPECT_FALSE(io::decode_frame(magic, &reason));
    EXPECT_NE(reason.find("magic"), std::string::npos) << reason;
    // Version skew: a frame from a future format.
    std::string future = good;
    const auto sp = future.find(' ');
    future.replace(sp + 1, 1, "9"); // version 1 -> 9
    EXPECT_FALSE(io::decode_frame(future, &reason));
    EXPECT_NE(reason.find("version skew"), std::string::npos) << reason;
    // Empty file.
    EXPECT_FALSE(io::decode_frame("", &reason));
}

TEST(Frame, GarbageHeaderNumbersRejectedByNameNotCrash)
{
    io::CheckpointFrame frame;
    frame.kind = "check";
    frame.payload = "payload";
    const std::string good = io::encode_frame(frame);
    const std::size_t nl = good.find('\n');
    ASSERT_NE(nl, std::string::npos);

    // Header layout: magic version kind size checksum. Swap the numeric
    // fields for garbage a raw stoull would crash on (out_of_range) or
    // silently misparse, and check each is rejected with its field named.
    const auto with_field = [&](std::size_t index, const std::string& val) {
        std::vector<std::string> tok;
        std::size_t pos = 0;
        const std::string header = good.substr(0, nl);
        while (pos <= header.size()) {
            const std::size_t sp = header.find(' ', pos);
            tok.push_back(header.substr(pos, sp - pos));
            if (sp == std::string::npos)
                break;
            pos = sp + 1;
        }
        tok[index] = val;
        std::string out;
        for (std::size_t i = 0; i < tok.size(); ++i)
            out += (i != 0 ? " " : "") + tok[i];
        return out + good.substr(nl);
    };

    std::string reason;
    // Payload size overflowing u64: the pre-fix crash case.
    EXPECT_FALSE(io::decode_frame(
        with_field(3, "99999999999999999999999"), &reason));
    EXPECT_NE(reason.find("payload size"), std::string::npos) << reason;
    EXPECT_NE(reason.find("out of range"), std::string::npos) << reason;
    // Non-numeric checksum.
    EXPECT_FALSE(io::decode_frame(with_field(4, "0xnope"), &reason));
    EXPECT_NE(reason.find("checksum"), std::string::npos) << reason;
    // Signed version.
    EXPECT_FALSE(io::decode_frame(with_field(1, "-1"), &reason));
    EXPECT_NE(reason.find("version"), std::string::npos) << reason;
}

// --- atomic_write_file --------------------------------------------------------

TEST(AtomicWrite, CreatesAndReplaces)
{
    TempDir dir("atomic");
    const std::string path = dir.path() + "/file.txt";
    io::atomic_write_file(path, "first");
    EXPECT_EQ(read_raw(path), "first");
    io::atomic_write_file(path, "second");
    EXPECT_EQ(read_raw(path), "second");
    // No temporary left behind.
    EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(AtomicWrite, NamesThePathOnFailure)
{
    const std::string path = "/nonexistent-dir-zzz/file.txt";
    try {
        io::atomic_write_file(path, "x");
        FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent-dir-zzz"),
                  std::string::npos)
            << e.what();
    }
}

// --- the generation store -----------------------------------------------------

TEST(Store, SaveLoadRoundTripsNewestGeneration)
{
    TempDir dir("store");
    ckpt::CheckpointStore store(dir.path(), "sweep");
    EXPECT_FALSE(store.load_latest().has_value());

    EXPECT_EQ(store.save("gen one"), 1u);
    EXPECT_EQ(store.save("gen two"), 2u);
    const auto loaded = store.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->generation, 2u);
    EXPECT_EQ(loaded->payload, "gen two");
}

TEST(Store, ResumesNumberingAcrossInstances)
{
    TempDir dir("renum");
    {
        ckpt::CheckpointStore store(dir.path(), "sim");
        store.save("a");
        store.save("b");
    }
    ckpt::CheckpointStore reopened(dir.path(), "sim");
    EXPECT_EQ(reopened.save("c"), 3u);
    EXPECT_EQ(reopened.load_latest()->payload, "c");
}

TEST(Store, PrunesBeyondRetention)
{
    TempDir dir("retention");
    ckpt::CheckpointStore store(dir.path(), "calib",
                                ckpt::StoreOptions{2});
    for (int i = 0; i < 5; ++i)
        store.save("g" + std::to_string(i));
    const auto gens = store.generations();
    ASSERT_EQ(gens.size(), 2u);
    EXPECT_EQ(gens[0], 4u);
    EXPECT_EQ(gens[1], 5u);
}

TEST(Store, FallsBackPastCorruptTornAndSkewedGenerations)
{
    TempDir dir("fallback");
    ckpt::CheckpointStore store(dir.path(), "check",
                                ckpt::StoreOptions{10});
    store.save("oldest good");
    store.save("middle good");
    store.save("newest");

    // Newest: flipped payload byte (checksum mismatch).
    {
        std::string data = read_raw(store.path_for(3));
        data[data.size() - 1] ^= 0x01;
        write_raw(store.path_for(3), data);
    }
    // Middle stays good; write a torn 4th and a version-skewed 5th
    // directly (simulating a crashed writer and a future producer).
    {
        ckpt::CheckpointStore again(dir.path(), "check",
                                    ckpt::StoreOptions{10});
        again.save("torn candidate");
        std::string data = read_raw(store.path_for(4));
        write_raw(store.path_for(4), data.substr(0, data.size() / 2));
        std::string future = read_raw(store.path_for(2));
        const auto sp = future.find(' ');
        future.replace(sp + 1, 1, "8");
        write_raw(store.path_for(5), future);
    }

    std::vector<ckpt::Rejected> rejected;
    const auto loaded = store.load_latest(&rejected);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->generation, 2u);
    EXPECT_EQ(loaded->payload, "middle good");
    ASSERT_EQ(rejected.size(), 3u);
    EXPECT_NE(rejected[0].reason.find("version skew"), std::string::npos);
    EXPECT_NE(rejected[1].reason.find("truncated"), std::string::npos);
    EXPECT_NE(rejected[2].reason.find("checksum"), std::string::npos);
}

TEST(Store, IgnoresTmpLeftoversAndForeignKinds)
{
    TempDir dir("tmp");
    ckpt::CheckpointStore store(dir.path(), "sweep");
    store.save("real");
    // A crashed writer's leftover and unrelated files must not be scanned.
    write_raw(dir.path() + "/sweep-00000099.lnck.tmp", "junk");
    write_raw(dir.path() + "/notes.txt", "junk");

    // A frame of a different kind renamed into this store's namespace is
    // rejected as a kind mismatch, not loaded.
    ckpt::CheckpointStore other(dir.path(), "calib");
    other.save("calib payload");
    fs::rename(other.path_for(1), store.path_for(50));

    std::vector<ckpt::Rejected> rejected;
    const auto loaded = store.load_latest(&rejected);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->payload, "real");
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_NE(rejected[0].reason.find("kind mismatch"), std::string::npos);
}

TEST(Store, ScanSurvivesGarbageNeighborFilenames)
{
    TempDir dir("garbage");
    ckpt::CheckpointStore store(dir.path(), "sweep");
    store.save("real");

    // Files somebody else dropped next to ours: wrong digit-run length
    // (including one long enough to overflow a raw stoull), non-digit
    // characters in the generation slot, and a missing generation
    // entirely. The scan must skip every one without throwing.
    write_raw(dir.path() + "/sweep-99999999999999999999999.lnck", "junk");
    write_raw(dir.path() + "/sweep-0000001x.lnck", "junk");
    write_raw(dir.path() + "/sweep-1.lnck", "junk");
    write_raw(dir.path() + "/sweep-.lnck", "junk");
    write_raw(dir.path() + "/sweep-деадбиф.lnck", "junk");

    const auto gens = store.generations();
    ASSERT_EQ(gens.size(), 1u);
    EXPECT_EQ(gens[0], 1u);
    const auto loaded = store.load_latest();
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->payload, "real");

    // A reopened store resumes numbering from the real generation, not
    // from any of the garbage.
    ckpt::CheckpointStore reopened(dir.path(), "sweep");
    EXPECT_EQ(reopened.save("next"), 2u);
}

TEST(Store, RejectsInvalidConstruction)
{
    TempDir dir("invalid");
    EXPECT_THROW(ckpt::CheckpointStore(dir.path(), ""),
                 std::runtime_error);
    EXPECT_THROW(
        ckpt::CheckpointStore(dir.path(), "x", ckpt::StoreOptions{0}),
        std::runtime_error);
}

} // namespace
} // namespace lognic
