/**
 * @file
 * Event-boundary DES snapshots: segmented execution (begin / advance /
 * finalize) must be invisible — bit-identical to run() for every segment
 * size — and a mid-run save_state() restored through a JSON dump/parse
 * cycle into a *fresh* simulator must complete to the identical result.
 * Exercised across the behaviors a checkpoint must capture faithfully:
 * overload drops, deterministic service, burst modulation, and
 * fault-plan replay (engine fail-stop with requeue, drop bursts). The
 * unsupported-configuration guards (tracing, watchdog, API misuse) must
 * throw rather than silently produce a snapshot that cannot resume.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lognic/ckpt/journal.hpp"
#include "lognic/fault/fault_plan.hpp"
#include "lognic/obs/trace.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "../test_helpers.hpp"

namespace lognic::ckpt {
namespace {

/// One self-contained simulation setup (owns hw/graph/traffic so the
/// simulator's references stay valid).
struct SimCase {
    std::string name;
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    core::TrafficProfile traffic;
    sim::SimOptions options;
};

SimCase
make_case(const std::string& name, double rate_gbps)
{
    auto hw = test::small_nic();
    auto graph = test::single_stage_graph(hw);
    SimCase s{name, hw, std::move(graph), test::mtu_traffic(rate_gbps), {}};
    s.options.duration = 0.002;
    s.options.seed = 19;
    return s;
}

/// The scenario corpus: every behavior a snapshot must carry.
std::vector<SimCase>
corpus()
{
    std::vector<SimCase> all;
    all.push_back(make_case("plain", 8.0));
    all.push_back(make_case("overload", 60.0)); // > line rate: drops

    SimCase det = make_case("deterministic", 10.0);
    det.options.exponential_service = false;
    det.options.poisson_arrivals = false;
    all.push_back(std::move(det));

    SimCase burst = make_case("burst", 12.0);
    burst.options.burst.enabled = true;
    all.push_back(std::move(burst));

    SimCase faulted = make_case("faulted", 14.0);
    fault::FaultEvent fail;
    fail.kind = fault::FaultKind::kEngineFail;
    fail.at = 0.0005;
    fail.target = "cores";
    fail.count = 6;
    fail.duration = 0.0005; // auto-recovery mid-run
    faulted.options.faults.events.push_back(fail);
    fault::FaultEvent drop;
    drop.kind = fault::FaultKind::kDropBurst;
    drop.at = 0.001;
    drop.target = "cores";
    drop.probability = 0.5;
    drop.duration = 0.0004;
    faulted.options.faults.events.push_back(drop);
    all.push_back(std::move(faulted));
    return all;
}

/// Canonical bit-exact rendering (hex doubles, full metrics snapshot).
std::string
render(const sim::SimResult& r)
{
    return sim_result_to_json(r).dump(-1);
}

TEST(SimSnapshot, SegmentationIsInvisibleForEverySegmentSize)
{
    for (const SimCase& s : corpus()) {
        const std::string expected = render(
            sim::NicSimulator(s.hw, s.graph, s.traffic, s.options).run());
        ASSERT_FALSE(expected.empty());
        for (std::uint64_t seg :
             {std::uint64_t{1}, std::uint64_t{97}, std::uint64_t{4096},
              std::uint64_t{1} << 40}) {
            sim::NicSimulator sim(s.hw, s.graph, s.traffic, s.options);
            sim.begin();
            while (!sim.advance(seg)) {
            }
            EXPECT_EQ(render(sim.finalize()), expected)
                << s.name << " seg=" << seg;
        }
    }
}

TEST(SimSnapshot, MidRunSnapshotResumesToTheIdenticalResult)
{
    for (const SimCase& s : corpus()) {
        const std::string expected = render(
            sim::NicSimulator(s.hw, s.graph, s.traffic, s.options).run());

        // Drive a prefix, snapshot at several event boundaries, and for
        // each snapshot resume a fresh simulator through a dump -> parse
        // cycle (what the checkpoint file actually stores).
        sim::NicSimulator primary(s.hw, s.graph, s.traffic, s.options);
        primary.begin();
        std::vector<std::string> snapshots;
        bool done = false;
        while (!done) {
            snapshots.push_back(primary.save_state().dump(-1));
            done = primary.advance(700);
        }
        EXPECT_EQ(render(primary.finalize()), expected) << s.name;
        ASSERT_GE(snapshots.size(), 2u) << s.name;

        for (std::size_t i : {std::size_t{0}, snapshots.size() / 2,
                              snapshots.size() - 1}) {
            sim::NicSimulator resumed(s.hw, s.graph, s.traffic, s.options);
            resumed.load_state(io::Json::parse(snapshots[i]));
            while (!resumed.advance(1234)) {
            }
            EXPECT_EQ(render(resumed.finalize()), expected)
                << s.name << " snapshot " << i << "/" << snapshots.size();
        }
    }
}

TEST(SimSnapshot, SimResultJsonRoundTripsBitExactly)
{
    for (const SimCase& s : corpus()) {
        const sim::SimResult r =
            sim::NicSimulator(s.hw, s.graph, s.traffic, s.options).run();
        const io::Json j = sim_result_to_json(r);
        const sim::SimResult back =
            sim_result_from_json(io::Json::parse(j.dump(-1)));
        EXPECT_EQ(sim_result_to_json(back).dump(-1), j.dump(-1)) << s.name;
    }
}

// --- guards -------------------------------------------------------------------

/// No-op sink: its presence alone must disqualify segmented execution.
class NullSink final : public obs::TraceSink {
  public:
    obs::TrackId register_track(const std::string&) override { return 0; }
    void span(obs::TrackId, const std::string&, Seconds, Seconds) override {}
    void counter(obs::TrackId, const std::string&, Seconds, double) override
    {
    }
    void instant(obs::TrackId, const std::string&, Seconds) override {}
    void async_begin(std::uint64_t, const std::string&, Seconds) override {}
    void async_end(std::uint64_t, const std::string&, Seconds) override {}
};

TEST(SimSnapshotGuards, UnsnapshotableConfigurationsAreRefused)
{
    const SimCase s = make_case("guards", 8.0);

    NullSink sink;
    sim::SimOptions traced = s.options;
    traced.trace.sink = &sink;
    sim::NicSimulator with_trace(s.hw, s.graph, s.traffic, traced);
    EXPECT_THROW(with_trace.begin(), std::logic_error);

    sim::SimOptions watched = s.options;
    watched.watchdog.max_events = 1000;
    sim::NicSimulator with_watchdog(s.hw, s.graph, s.traffic, watched);
    EXPECT_THROW(with_watchdog.begin(), std::logic_error);
}

TEST(SimSnapshotGuards, ApiMisuseThrowsInsteadOfCorruptingState)
{
    const SimCase s = make_case("misuse", 8.0);

    sim::NicSimulator fresh(s.hw, s.graph, s.traffic, s.options);
    EXPECT_THROW(fresh.advance(100), std::logic_error);
    EXPECT_THROW(fresh.finalize(), std::logic_error);

    sim::NicSimulator sim(s.hw, s.graph, s.traffic, s.options);
    sim.begin();
    EXPECT_THROW(sim.begin(), std::logic_error);
    EXPECT_THROW(sim.run(), std::logic_error);
    EXPECT_THROW(sim.advance(0), std::invalid_argument);
    const io::Json snap = sim.save_state();
    EXPECT_THROW(sim.load_state(snap), std::logic_error);
    while (!sim.advance(10000)) {
    }
    sim.finalize();
    EXPECT_THROW(sim.finalize(), std::logic_error);
    EXPECT_THROW(sim.advance(1), std::logic_error);
}

TEST(SimSnapshotGuards, SnapshotConfigFingerprintIsEnforced)
{
    const SimCase s = make_case("fingerprint", 8.0);
    sim::NicSimulator source(s.hw, s.graph, s.traffic, s.options);
    source.begin();
    source.advance(500);
    const io::Json snap = source.save_state();

    // Same topology, different seed: a different run — refused.
    sim::SimOptions other = s.options;
    other.seed = 20;
    sim::NicSimulator mismatched(s.hw, s.graph, s.traffic, other);
    EXPECT_THROW(mismatched.load_state(snap), std::runtime_error);

    // Identical configuration: accepted.
    sim::NicSimulator matched(s.hw, s.graph, s.traffic, s.options);
    matched.load_state(snap);
}

} // namespace
} // namespace lognic::ckpt
