#include <gtest/gtest.h>

#include "lognic/ssd/calibration.hpp"
#include "lognic/ssd/ssd_model.hpp"
#include "lognic/traffic/io_workload.hpp"

namespace lognic::ssd {
namespace {

TEST(SsdGroundTruth, RejectsBadSpecs)
{
    SsdSpec no_channels;
    no_channels.parallelism = 0;
    EXPECT_THROW(SsdGroundTruth{no_channels}, std::invalid_argument);
    SsdSpec bad_waf;
    bad_waf.fragmented_waf = 0.5;
    EXPECT_THROW(SsdGroundTruth{bad_waf}, std::invalid_argument);
}

TEST(SsdGroundTruth, ReadsFasterThanFragmentedWrites)
{
    const SsdGroundTruth ssd;
    const auto rd = traffic::random_read_4k();
    const auto wr = traffic::random_mixed_4k(0.0); // pure random write
    // Writes acknowledge fast (low base latency) but pay the WAF in
    // channel occupancy on a fragmented drive, so their capacity is lower.
    EXPECT_GT(ssd.capacity(rd).bits_per_sec(),
              ssd.capacity(wr).bits_per_sec());
    EXPECT_LT(ssd.base_latency(wr).seconds(),
              ssd.base_latency(rd).seconds());
}

TEST(SsdGroundTruth, LargerBlocksGiveHigherBandwidth)
{
    const SsdGroundTruth ssd;
    EXPECT_GT(ssd.capacity(traffic::random_read_128k()).bits_per_sec(),
              ssd.capacity(traffic::random_read_4k()).bits_per_sec());
}

TEST(SsdGroundTruth, SequentialBeatsRandom)
{
    const SsdGroundTruth ssd;
    traffic::IoWorkload seq = traffic::random_read_4k();
    seq.random = false;
    EXPECT_GT(ssd.capacity(seq).bits_per_sec(),
              ssd.capacity(traffic::random_read_4k()).bits_per_sec());
}

TEST(SsdGroundTruth, GcOverlapLeavesPureWorkloadsAlone)
{
    // The mixed-workload GC overlap benefit must vanish at both endpoints
    // so that pure-workload calibrations remain exact.
    SsdSpec with_gc;
    SsdSpec without_gc = with_gc;
    without_gc.gc_overlap_gain = 0.0;
    const SsdGroundTruth a(with_gc);
    const SsdGroundTruth b(without_gc);
    for (double r : {0.0, 1.0}) {
        const auto w = traffic::random_mixed_4k(r);
        EXPECT_NEAR(a.capacity(w).bits_per_sec(),
                    b.capacity(w).bits_per_sec(), 1.0);
    }
    // But helps in the middle.
    const auto mid = traffic::random_mixed_4k(0.5);
    EXPECT_GT(a.capacity(mid).bits_per_sec(),
              b.capacity(mid).bits_per_sec());
}

TEST(SsdGroundTruth, CharacterizationLatencyRisesWithLoad)
{
    const SsdGroundTruth ssd;
    const auto samples = ssd.characterize(traffic::random_read_4k(), 10);
    ASSERT_EQ(samples.size(), 10u);
    for (std::size_t i = 1; i < samples.size(); ++i) {
        EXPECT_GT(samples[i].offered.per_sec(),
                  samples[i - 1].offered.per_sec());
        EXPECT_GE(samples[i].latency.seconds(),
                  samples[i - 1].latency.seconds());
    }
    // The knee: high-load latency well above the low-load latency.
    EXPECT_GT(samples.back().latency.seconds(),
              1.3 * samples.front().latency.seconds());
}

TEST(SsdGroundTruth, CharacterizeValidatesArguments)
{
    const SsdGroundTruth ssd;
    EXPECT_THROW(ssd.characterize(traffic::random_read_4k(), 1),
                 std::invalid_argument);
    EXPECT_THROW(ssd.characterize(traffic::random_read_4k(), 10, 1.5),
                 std::invalid_argument);
}

TEST(Calibration, RecoversGroundTruthParameters)
{
    const SsdGroundTruth ssd;
    const auto workload = traffic::random_read_4k();
    const auto samples = ssd.characterize(workload, 14);
    const auto calib = calibrate(samples, workload.block_size);

    // (c, s) are only identified jointly through the capacity knee c/s —
    // the latency curve is nearly invariant to trading channels against
    // occupancy — so the recovery guarantees are: the capacity (the
    // LogNIC-relevant quantity), the base latency, and a plausible
    // parallelism.
    EXPECT_NEAR(calib.capacity.bits_per_sec(),
                ssd.capacity(workload).bits_per_sec(),
                0.05 * ssd.capacity(workload).bits_per_sec());
    EXPECT_NEAR(calib.base_latency.seconds(),
                ssd.base_latency(workload).seconds(),
                0.06 * ssd.base_latency(workload).seconds());
    EXPECT_GE(calib.parallelism, 2u);
    EXPECT_LE(calib.parallelism, 64u);
}

TEST(Calibration, PredictsHeldOutLatencies)
{
    const SsdGroundTruth ssd;
    const auto workload = traffic::sequential_write_4k();
    const auto calib =
        calibrate(ssd.characterize(workload, 12), workload.block_size);
    // Validate on characterization points not used densely by the fit.
    for (const auto& s : ssd.characterize(workload, 7, 0.9)) {
        const double predicted =
            calib.predict_latency(s.offered).seconds();
        EXPECT_NEAR(predicted, s.latency.seconds(),
                    0.12 * s.latency.seconds());
    }
}

TEST(Calibration, NeedsEnoughSamples)
{
    EXPECT_THROW(calibrate({}, Bytes::from_kib(4.0)), std::invalid_argument);
    SsdGroundTruth ssd;
    auto samples = ssd.characterize(traffic::random_read_4k(), 12);
    samples.resize(2);
    EXPECT_THROW(calibrate(samples, Bytes::from_kib(4.0)),
                 std::invalid_argument);
}

TEST(Calibration, ToIpSpecRoundTrips)
{
    const SsdGroundTruth ssd;
    const auto workload = traffic::random_read_4k();
    const auto calib =
        calibrate(ssd.characterize(workload, 12), workload.block_size);
    const core::IpSpec spec = calib.to_ip_spec("ssd", workload.block_size);
    EXPECT_EQ(spec.kind, core::IpKind::kStorage);
    EXPECT_EQ(spec.max_engines, calib.parallelism);
    // One engine's request time at the block size equals the fitted s.
    EXPECT_NEAR(
        spec.roofline.engine().service_time(workload.block_size).seconds(),
        calib.service_time.seconds(), 1e-12);
    // Full-parallelism roofline reproduces parallelism / s exactly (the
    // calibration's capacity differs only by the channel-count rounding).
    const double expected_bps = static_cast<double>(spec.max_engines)
        * workload.block_size.bytes() / calib.service_time.seconds();
    EXPECT_NEAR(spec.roofline
                    .attainable(workload.block_size, spec.max_engines)
                    .bytes_per_sec(),
                expected_bps, 0.001 * expected_bps);
    EXPECT_NEAR(calib.capacity.bytes_per_sec(), expected_bps,
                0.10 * expected_bps);
}

TEST(Calibration, MixedWorkloadGapMatchesPaperDirection)
{
    // The paper: a model calibrated on pure read/write underestimates the
    // measured mixed bandwidth by ~14.6% because GC overlaps reads.
    const SsdGroundTruth ssd;
    const double cr =
        ssd.capacity(traffic::random_mixed_4k(1.0)).bits_per_sec();
    const double cw =
        ssd.capacity(traffic::random_mixed_4k(0.0)).bits_per_sec();
    for (double r : {0.3, 0.5, 0.7}) {
        const double model = 1.0 / (r / cr + (1.0 - r) / cw);
        const double measured =
            ssd.capacity(traffic::random_mixed_4k(r)).bits_per_sec();
        EXPECT_GT(measured, model); // model under-predicts
        EXPECT_LT(measured, 1.40 * model);
    }
}

} // namespace
} // namespace lognic::ssd
