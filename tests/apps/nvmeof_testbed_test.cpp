#include <gtest/gtest.h>

#include "lognic/apps/nvmeof.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::apps {
namespace {

TEST(NvmeOfTestbed, GraphValidatesAndMirrorsTarget)
{
    const ssd::SsdGroundTruth drive;
    const auto workload = traffic::random_read_4k();
    const auto testbed = make_nvmeof_testbed(drive, workload);
    EXPECT_NO_THROW(testbed.graph.validate(testbed.hw));
    EXPECT_EQ(testbed.graph.vertex_count(), 5u);
    const auto& ssd_spec = testbed.hw.ip(testbed.ssd);
    EXPECT_EQ(ssd_spec.kind, core::IpKind::kStorage);
    EXPECT_EQ(ssd_spec.max_engines, drive.spec().parallelism);
    // The testbed uses the *real* occupancy, not a fitted curve.
    EXPECT_EQ(ssd_spec.sojourn_curve, nullptr);
    EXPECT_NEAR(
        ssd_spec.roofline.engine().service_time(workload.block_size)
            .seconds(),
        drive.mean_occupancy(workload).seconds(), 1e-12);
}

TEST(NvmeOfTestbed, LowLoadLatencyEqualsDeviceBaseLatency)
{
    const ssd::SsdGroundTruth drive;
    const auto workload = traffic::random_read_4k();
    const auto testbed = make_nvmeof_testbed(drive, workload);
    sim::SimOptions opts;
    opts.duration = 0.05;
    const auto traffic = core::TrafficProfile::fixed(
        workload.block_size,
        drive.capacity(workload) * 0.05); // nearly idle
    const auto res =
        sim::simulate(testbed.hw, testbed.graph, traffic, opts);
    // Latency = SSD base latency + core stages + transfers (~8 us).
    const double floor = drive.base_latency(workload).seconds();
    EXPECT_GT(res.mean_latency.seconds(), floor);
    EXPECT_LT(res.mean_latency.seconds(), floor + 15e-6);
}

TEST(NvmeOfTestbed, CapacityTracksGroundTruth)
{
    const ssd::SsdGroundTruth drive;
    for (const auto& workload :
         {traffic::random_read_4k(), traffic::sequential_write_4k()}) {
        const auto testbed = make_nvmeof_testbed(drive, workload);
        const auto cap =
            core::Model(testbed.hw)
                .throughput(testbed.graph,
                            core::TrafficProfile::fixed(
                                workload.block_size,
                                Bandwidth::from_gbps(1.0)))
                .capacity;
        EXPECT_NEAR(cap.bits_per_sec(),
                    drive.capacity(workload).bits_per_sec(),
                    0.01 * drive.capacity(workload).bits_per_sec())
            << workload.name;
    }
}

TEST(NvmeOfTestbed, ModelAndTestbedAgreeAcrossLoads)
{
    // The headline Figure-6 property as a regression test: < 10% latency
    // error at every load point for 4KB random reads.
    const ssd::SsdGroundTruth drive;
    const auto workload = traffic::random_read_4k();
    const auto calib = ssd::calibrate(drive.characterize(workload, 14),
                                      workload.block_size);
    const auto target = make_nvmeof_target(calib, workload);
    const auto testbed = make_nvmeof_testbed(drive, workload);
    const core::Model model(target.hw);
    for (double frac : {0.3, 0.6, 0.9}) {
        const auto traffic = core::TrafficProfile::fixed(
            workload.block_size, calib.capacity * frac);
        const auto rep = model.latency(target.graph, traffic);
        sim::SimOptions opts;
        opts.duration = 0.1;
        opts.seed = 6;
        const auto res =
            sim::simulate(testbed.hw, testbed.graph, traffic, opts);
        EXPECT_NEAR(rep.mean.seconds(), res.mean_latency.seconds(),
                    0.10 * res.mean_latency.seconds())
            << frac;
    }
}

} // namespace
} // namespace lognic::apps
