#include <gtest/gtest.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/apps/microservices.hpp"
#include "lognic/apps/nf_chain.hpp"
#include "lognic/apps/nvmeof.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/core/model.hpp"
#include "lognic/traffic/profiles.hpp"

namespace lognic::apps {
namespace {

core::TrafficProfile
mtu(double gbps)
{
    return core::TrafficProfile::fixed(Bytes{1500.0},
                                       Bandwidth::from_gbps(gbps));
}

// --- Case study #1: inline acceleration --------------------------------------

TEST(InlineAccel, ScenarioValidates)
{
    for (auto k : devices::liquidio_kernels()) {
        const auto sc = make_inline_accel(k);
        EXPECT_NO_THROW(sc.graph.validate(sc.hw)) << devices::to_string(k);
    }
}

TEST(InlineAccel, Figure9SaturationCores)
{
    // The paper: MD5/KASUMI/HFA max out at 9/8/11 NIC cores at MTU rate.
    const struct {
        devices::LiquidIoKernel kernel;
        unsigned cores;
    } expected[] = {{devices::LiquidIoKernel::kMd5, 9},
                    {devices::LiquidIoKernel::kKasumi, 8},
                    {devices::LiquidIoKernel::kHfa, 11}};
    for (const auto& e : expected) {
        double saturated = 0.0;
        {
            const auto sc = make_inline_accel(e.kernel, 16);
            saturated = core::Model(sc.hw)
                            .throughput(sc.graph, mtu(25.0))
                            .capacity.bits_per_sec();
        }
        unsigned need = 16;
        for (unsigned c = 1; c <= 16; ++c) {
            const auto sc = make_inline_accel(e.kernel, c);
            const double cap = core::Model(sc.hw)
                                   .throughput(sc.graph, mtu(25.0))
                                   .capacity.bits_per_sec();
            if (cap >= 0.999 * saturated) {
                need = c;
                break;
            }
        }
        EXPECT_EQ(need, e.cores) << devices::to_string(e.kernel);
    }
}

TEST(InlineAccel, Figure10MinLawHolds)
{
    // Achieved bandwidth ~ min(P_IP2 * pktsize, 25 Gbps).
    const auto sc = make_inline_accel(devices::LiquidIoKernel::kCrc, 16);
    const core::Model model(sc.hw);
    for (double size : {64.0, 256.0, 1024.0, 1500.0}) {
        const auto est = model.throughput(
            sc.graph,
            core::TrafficProfile::fixed(Bytes{size},
                                        Bandwidth::from_gbps(25.0)));
        const double accel_bw =
            devices::liquidio_accel_rate(devices::LiquidIoKernel::kCrc)
                .per_sec()
            * size * 8.0;
        const double expected = std::min(accel_bw, 25e9);
        EXPECT_NEAR(est.capacity.bits_per_sec(), expected, 0.05 * expected)
            << size;
    }
}

TEST(InlineAccel, Figure5GranularityCliff)
{
    const auto sc =
        make_inline_accel_unbounded(devices::LiquidIoKernel::kCrc, 16);
    const core::Model model(sc.hw);
    auto mops_at = [&](double granularity) {
        const auto est = model.throughput(
            sc.graph,
            core::TrafficProfile::fixed(Bytes{granularity},
                                        Bandwidth::from_gbps(200.0)));
        return est.capacity.bytes_per_sec() / granularity / 1e6;
    };
    const double peak = mops_at(512.0);
    EXPECT_GT(mops_at(2048.0), 0.90 * peak);      // flat until 2 KB
    EXPECT_LT(mops_at(8192.0), 0.30 * peak);      // cliff past 4 KB
    EXPECT_NEAR(mops_at(16384.0) / peak, 0.14, 0.02); // paper: 13.6%
}

// --- Case study #2: NVMe-oF --------------------------------------------------

TEST(NvmeOf, ScenarioMatchesFigure2cShape)
{
    const ssd::SsdGroundTruth ssd;
    const auto workload = traffic::random_read_4k();
    const auto calib = ssd::calibrate(ssd.characterize(workload, 12),
                                      workload.block_size);
    const auto sc = make_nvmeof_target(calib, workload);
    EXPECT_NO_THROW(sc.graph.validate(sc.hw));
    EXPECT_EQ(sc.graph.vertex_count(), 5u); // in, submit, ssd, complete, out
    const auto paths = sc.graph.enumerate_paths();
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_EQ(paths[0].edges.size(), 4u);
}

TEST(NvmeOf, LatencyHockeyStickWithRate)
{
    const ssd::SsdGroundTruth ssd;
    const auto workload = traffic::random_read_4k();
    const auto calib = ssd::calibrate(ssd.characterize(workload, 12),
                                      workload.block_size);
    const auto sc = make_nvmeof_target(calib, workload);
    const core::Model model(sc.hw);
    const double cap_gbps = calib.capacity.gbps();
    const auto low = model.latency(
        sc.graph, core::TrafficProfile::fixed(
                      workload.block_size,
                      Bandwidth::from_gbps(0.1 * cap_gbps)));
    const auto high = model.latency(
        sc.graph, core::TrafficProfile::fixed(
                      workload.block_size,
                      Bandwidth::from_gbps(0.95 * cap_gbps)));
    EXPECT_GT(high.mean.seconds(), 1.2 * low.mean.seconds());
}

TEST(NvmeOf, MixedModelUnderestimatesGroundTruth)
{
    const ssd::SsdGroundTruth ssd;
    const auto rd = traffic::random_mixed_4k(1.0);
    const auto wr = traffic::random_mixed_4k(0.0);
    const auto calib_rd =
        ssd::calibrate(ssd.characterize(rd, 12), rd.block_size);
    const auto calib_wr =
        ssd::calibrate(ssd.characterize(wr, 12), wr.block_size);
    for (double r : {0.2, 0.5, 0.8}) {
        const auto modeled =
            mixed_model_bandwidth(calib_rd, calib_wr, r);
        const auto measured = ssd.capacity(traffic::random_mixed_4k(r));
        EXPECT_GT(measured.bits_per_sec(), modeled.bits_per_sec()) << r;
        // Single-digit-to-~20% gap, same regime as the paper's 14.6%.
        EXPECT_LT(measured.bits_per_sec(), 1.30 * modeled.bits_per_sec())
            << r;
    }
    EXPECT_THROW(mixed_model_bandwidth(calib_rd, calib_wr, 1.5),
                 std::invalid_argument);
}

// --- Case study #3: microservice parallelism ---------------------------------

TEST(Microservices, CatalogHasFiveWorkloads)
{
    EXPECT_EQ(e3_workloads().size(), 5u);
    for (auto w : e3_workloads())
        EXPECT_GE(e3_stages(w).size(), 3u);
}

TEST(Microservices, PipelineBuilderValidates)
{
    const auto alloc = equal_partition_alloc(E3Workload::kNfvFin);
    const auto sc = make_e3_pipeline(E3Workload::kNfvFin, alloc);
    EXPECT_NO_THROW(sc.graph.validate(sc.hw));
    EXPECT_EQ(sc.stage_vertices.size(),
              e3_stages(E3Workload::kNfvFin).size());
    EXPECT_THROW(make_e3_pipeline(E3Workload::kNfvFin, {1, 2}),
                 std::invalid_argument);
    EXPECT_THROW(make_e3_pipeline(E3Workload::kNfvFin, {8, 8, 8, 8}),
                 std::invalid_argument);
    EXPECT_THROW(make_e3_pipeline(E3Workload::kNfvFin, {0, 8, 4, 4}),
                 std::invalid_argument);
}

TEST(Microservices, EqualPartitionDistributesRemainder)
{
    const auto alloc = equal_partition_alloc(E3Workload::kRtaShm, 16);
    ASSERT_EQ(alloc.size(), 3u); // 3 stages
    EXPECT_EQ(alloc[0] + alloc[1] + alloc[2], 16u);
    EXPECT_EQ(alloc[0], 6u);
    EXPECT_EQ(alloc[1], 5u);
}

TEST(Microservices, OptBeatsRoundRobinAndEqualPartition)
{
    // The case-study headline: LogNIC-opt outperforms both heuristics on
    // throughput for every workload.
    for (auto w : e3_workloads()) {
        const auto traffic = core::TrafficProfile::fixed(
            e3_request_size(), Bandwidth::from_gbps(5.0));
        const auto opt_alloc = lognic_opt_alloc(w, traffic);
        const auto opt = make_e3_pipeline(w, opt_alloc);
        const auto rr = make_e3_run_to_completion(w);
        const auto eq = make_e3_pipeline(w, equal_partition_alloc(w));
        const double opt_cap = core::Model(opt.hw)
                                   .throughput(opt.graph, traffic)
                                   .capacity.bits_per_sec();
        const double rr_cap = core::Model(rr.hw)
                                  .throughput(rr.graph, traffic)
                                  .capacity.bits_per_sec();
        const double eq_cap = core::Model(eq.hw)
                                  .throughput(eq.graph, traffic)
                                  .capacity.bits_per_sec();
        EXPECT_GT(opt_cap, rr_cap * 1.05) << to_string(w);
        EXPECT_GT(opt_cap, eq_cap * 1.05) << to_string(w);
    }
}

TEST(Microservices, OptAllocRespectsBudget)
{
    const auto traffic = core::TrafficProfile::fixed(
        e3_request_size(), Bandwidth::from_gbps(5.0));
    const auto alloc = lognic_opt_alloc(E3Workload::kNfvDin, traffic, 16);
    std::uint32_t total = 0;
    for (auto c : alloc) {
        EXPECT_GE(c, 1u);
        total += c;
    }
    EXPECT_EQ(total, 16u);
}

// --- Case study #4: NF placement ---------------------------------------------

TEST(NfChain, PlacementEnumerationComplete)
{
    EXPECT_EQ(all_placements().size(), 16u);
    const auto arm = arm_only_placement();
    EXPECT_FALSE(arm.fw || arm.lb || arm.nat || arm.pe);
    const auto acc = accelerator_only_placement();
    EXPECT_TRUE(acc.fw && acc.lb && acc.nat && acc.pe);
    EXPECT_FALSE(acc.offloaded(devices::NetworkFunction::kDpi));
}

TEST(NfChain, ScenariosValidate)
{
    for (const auto& p : all_placements()) {
        const auto sc = make_nf_chain(p);
        EXPECT_NO_THROW(sc.graph.validate(sc.hw)) << p.to_string();
    }
}

TEST(NfChain, ArmWins64BytesAcceleratorWinsMtu)
{
    const core::TrafficProfile small = core::TrafficProfile::fixed(
        Bytes{64.0}, Bandwidth::from_gbps(40.0));
    const core::TrafficProfile large = mtu(90.0);

    auto capacity = [](const NfPlacement& p,
                       const core::TrafficProfile& t) {
        const auto sc = make_nf_chain(p);
        return core::Model(sc.hw)
            .throughput(sc.graph, t)
            .capacity.bits_per_sec();
    };
    EXPECT_GT(capacity(arm_only_placement(), small),
              capacity(accelerator_only_placement(), small));
    EXPECT_GT(capacity(accelerator_only_placement(), large),
              capacity(arm_only_placement(), large));
}

TEST(NfChain, OptDominatesBothBaselines)
{
    for (double size : {64.0, 256.0, 512.0, 1500.0}) {
        const auto t = core::TrafficProfile::fixed(
            Bytes{size}, Bandwidth::from_gbps(50.0));
        const auto opt = lognic_opt_placement(t);
        auto capacity = [&](const NfPlacement& p) {
            const auto sc = make_nf_chain(p);
            return core::Model(sc.hw)
                .throughput(sc.graph, t)
                .capacity.bits_per_sec();
        };
        EXPECT_GE(capacity(opt) * 1.0001, capacity(arm_only_placement()))
            << size;
        EXPECT_GE(capacity(opt) * 1.0001,
                  capacity(accelerator_only_placement()))
            << size;
    }
}

// --- Case study #5: PANIC ----------------------------------------------------

TEST(PanicModels, Figure15OptimalCredits)
{
    // The paper's optimizer suggestion: 5/4/4/4 credits for profiles 1-4.
    const Bandwidth offered = Bandwidth::from_gbps(90.0);
    EXPECT_EQ(lognic_optimal_credits(traffic::panic_profile(1, offered)), 5u);
    EXPECT_EQ(lognic_optimal_credits(traffic::panic_profile(2, offered)), 4u);
    EXPECT_EQ(lognic_optimal_credits(traffic::panic_profile(3, offered)), 4u);
    EXPECT_EQ(lognic_optimal_credits(traffic::panic_profile(4, offered)), 4u);
}

TEST(PanicModels, ChainCapacityMonotoneInCredits)
{
    const auto tp = traffic::panic_profile(1, Bandwidth::from_gbps(90.0));
    double prev = 0.0;
    for (std::uint32_t c = 1; c <= 8; ++c) {
        const double cap =
            lognic_panic_chain_capacity(tp, c).bits_per_sec();
        EXPECT_GE(cap, prev);
        prev = cap;
    }
}

TEST(PanicModels, Figure16OptimalSplitIsProportional)
{
    // A2:A3 capacity is 7:3, so the latency-optimal split of the 80% is
    // X = 56 ("steers traffic in proportion to computing capability").
    for (double size : {64.0, 512.0, 1500.0}) {
        const auto tp = core::TrafficProfile::fixed(
            Bytes{size}, Bandwidth::from_gbps(size < 100.0 ? 18.0 : 70.0));
        EXPECT_NEAR(lognic_opt_split(tp), 56.0, 2.0) << size;
    }
}

TEST(PanicModels, Figure18OptimalParallelism)
{
    const auto tp = mtu(100.0);
    EXPECT_EQ(lognic_opt_parallelism(0.5, tp), 6u);
    EXPECT_EQ(lognic_opt_parallelism(0.8, tp), 4u);
}

TEST(PanicModels, BuildersValidate)
{
    EXPECT_THROW(make_panic_parallel_chain(0.0), std::invalid_argument);
    EXPECT_THROW(make_panic_parallel_chain(85.0), std::invalid_argument);
    EXPECT_THROW(make_panic_hybrid(0.5, 0), std::invalid_argument);
    EXPECT_THROW(make_panic_hybrid(1.5, 4), std::invalid_argument);
    EXPECT_THROW(make_panic_pipelined_chain(0), std::invalid_argument);

    const auto par = make_panic_parallel_chain(56.0);
    EXPECT_NO_THROW(par.graph.validate(par.hw));
    const auto hyb = make_panic_hybrid(0.5, 6);
    EXPECT_NO_THROW(hyb.graph.validate(hyb.hw));
    EXPECT_EQ(hyb.graph.enumerate_paths().size(), 3u);
}

TEST(PanicModels, MeanRequestSizeIsPacketCountMean)
{
    const auto tp = traffic::panic_profile(1, Bandwidth::from_gbps(1.0));
    // Equal bytes at 64/512: total pkts per byte = 0.5/64 + 0.5/512.
    EXPECT_NEAR(mean_request_size(tp).bytes(),
                1.0 / (0.5 / 64.0 + 0.5 / 512.0), 1e-9);
}

} // namespace
} // namespace lognic::apps
