#include "lognic/sim/nic_simulator.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/extensions.hpp"
#include "lognic/queueing/mm1n.hpp"

namespace lognic::sim {
namespace {

using test::mtu_traffic;
using test::single_stage_graph;
using test::small_nic;
using test::two_stage_graph;

SimOptions
quick(std::uint64_t seed = 7)
{
    SimOptions o;
    o.duration = 0.03;
    o.seed = seed;
    return o;
}

TEST(NicSimulator, DeliversOfferedLoadWhenUnderProvisioned)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto res = simulate(hw, g, mtu_traffic(5.0), quick());
    EXPECT_NEAR(res.delivered.gbps(), 5.0, 0.25);
    EXPECT_LT(res.drop_rate, 0.01);
}

TEST(NicSimulator, ConservesPackets)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto res = simulate(hw, g, mtu_traffic(5.0), quick());
    // Everything generated is either delivered, dropped, or still in
    // flight at the horizon — but warmup-period deliveries are not counted
    // in `completed`, so use an inequality.
    EXPECT_LE(res.completed + res.dropped, res.generated);
    EXPECT_GT(res.completed, 0u);
    // The lifetime counters satisfy conservation *exactly* (the simulator
    // itself throws on violation; pin the identity here too).
    EXPECT_EQ(res.generated,
              res.completed_total + res.dropped_total + res.in_flight);
    EXPECT_GE(res.completed_total, res.completed);
    EXPECT_FALSE(res.truncated);
}

TEST(NicSimulator, DropsUnderOverload)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 4;
    const auto g = single_stage_graph(hw, p);
    // 1 engine at ~8.7 Gbps, offered 40 Gbps: most packets must drop.
    const auto res = simulate(hw, g, mtu_traffic(40.0), quick());
    EXPECT_GT(res.drop_rate, 0.5);
    EXPECT_NEAR(res.delivered.gbps(), 8.7, 1.0);
}

TEST(NicSimulator, DropAccountingFollowsMeasurementWindow)
{
    // Regression: drops used to be counted over the whole run while
    // completions were windowed, biasing drop_rate high. Both now follow
    // the (warmup_end, horizon] convention.
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 4;
    const auto g = single_stage_graph(hw, p);

    // Warmup covering almost the whole run: heavy overload, yet the
    // *reported* (windowed) drops are a sliver of the lifetime drops the
    // cause counters see — nearly every drop happened inside the warmup.
    // (warmup_fraction = 1.0 is rejected at construction these days.)
    SimOptions all_warmup = quick();
    all_warmup.warmup_fraction = 0.99;
    const auto warm = simulate(hw, g, mtu_traffic(40.0), all_warmup);
    EXPECT_GT(warm.generated, 0u);
    EXPECT_GT(warm.dropped_total, 0u);
    EXPECT_LT(warm.dropped, warm.dropped_total / 10);
    EXPECT_LE(warm.drop_rate, 1.0);

    // The same scenario with a normal warmup reports plenty of drops, and
    // the windowed rate stays a valid probability.
    const auto res = simulate(hw, g, mtu_traffic(40.0), quick());
    EXPECT_GT(res.dropped, 0u);
    EXPECT_GT(res.drop_rate, 0.5);
    EXPECT_LE(res.drop_rate, 1.0);
    // Windowed drops can never exceed lifetime generated.
    EXPECT_LT(res.dropped, res.generated);
}

TEST(NicSimulator, ReproducibleForSameSeed)
{
    const auto hw = small_nic();
    const auto g = two_stage_graph(hw);
    const auto a = simulate(hw, g, mtu_traffic(10.0), quick(123));
    const auto b = simulate(hw, g, mtu_traffic(10.0), quick(123));
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_DOUBLE_EQ(a.mean_latency.seconds(), b.mean_latency.seconds());
    const auto c = simulate(hw, g, mtu_traffic(10.0), quick(124));
    EXPECT_NE(a.generated, c.generated);
}

TEST(NicSimulator, MatchesMm1nQueueTheory)
{
    // Single engine, finite queue, Poisson arrivals, exponential service:
    // the simulated mean sojourn must match the M/M/1/N closed form.
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 16;
    const auto g = single_stage_graph(hw, p);
    SimOptions o;
    o.duration = 0.4; // long run for tight statistics
    o.seed = 11;
    const auto res = simulate(hw, g, mtu_traffic(6.0), o);

    const double service = 1.375e-6;
    const double lambda = 6e9 / 12000.0;
    const queueing::Mm1nQueue q(lambda, 1.0 / service, 16);
    const double expected = q.mean_sojourn_time();
    EXPECT_NEAR(res.mean_latency.seconds(), expected, 0.06 * expected);
    EXPECT_NEAR(res.drop_rate, q.blocking_probability(), 0.01);
}

TEST(NicSimulator, DeterministicServiceReducesLatencySpread)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    SimOptions exp_opts = quick();
    SimOptions det_opts = quick();
    det_opts.exponential_service = false;
    det_opts.poisson_arrivals = false;
    const auto exp_res = simulate(hw, g, mtu_traffic(15.0), exp_opts);
    const auto det_res = simulate(hw, g, mtu_traffic(15.0), det_opts);
    // A paced deterministic system has (almost) no queueing at 60% load.
    EXPECT_LT(det_res.p99_latency.seconds(),
              exp_res.p99_latency.seconds());
    EXPECT_NEAR(det_res.mean_latency.micros(), 1.375, 0.1);
}

TEST(NicSimulator, SharedLinkContentionSlowsTransfers)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    // Memory-heavy edge at high load: the 80 Gbps memory link saturates.
    core::ExecutionGraph g("memory-bound");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"));
    g.add_edge(in, v, core::EdgeParams{1.0, 0.0, 1.0, {}});
    g.add_edge(v, out, core::EdgeParams{1.0, 0.0, 1.0, {}});
    // Two memory crossings per packet cap the sustainable load at
    // 80 / 2 = 40 Gbps. Below that, everything is delivered...
    const auto ok = simulate(hw, g, mtu_traffic(36.0), quick());
    EXPECT_NEAR(ok.delivered.gbps(), 36.0, 2.0);
    // ...and far above it, delivered stays capped (it lands *below* the
    // ideal 40 Gbps because transfers of packets that later drop still
    // burn memory bandwidth -- a real effect admission control would fix).
    const auto over = simulate(hw, g, mtu_traffic(100.0), quick());
    EXPECT_LT(over.delivered.gbps(), 42.0);
    EXPECT_GT(over.delivered.gbps(), 20.0);
}

TEST(NicSimulator, RateLimiterShapesThroughput)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::ExecutionGraph g = single_stage_graph(hw);
    core::insert_rate_limiter(g, *g.find_vertex("cores"),
                              Bandwidth::from_gbps(3.0), 8);
    const auto res = simulate(hw, g, mtu_traffic(20.0), quick());
    EXPECT_NEAR(res.delivered.gbps(), 3.0, 0.4);
}

TEST(NicSimulator, FanOutFollowsDeltaWeights)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::ExecutionGraph g("fanout");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    core::VertexParams fast;
    fast.parallelism = 8;
    const auto a = g.add_ip_vertex("a", *hw.find_ip("cores"), fast);
    const auto b = g.add_ip_vertex("b", *hw.find_ip("cores"), fast);
    g.add_edge(in, a, core::EdgeParams{0.9, 0, 0, {}});
    g.add_edge(in, b, core::EdgeParams{0.1, 0, 0, {}});
    g.add_edge(a, out, core::EdgeParams{0.9, 0, 0, {}});
    g.add_edge(b, out, core::EdgeParams{0.1, 0, 0, {}});
    // All traffic fits; delivered equals offered regardless of split.
    const auto res = simulate(hw, g, mtu_traffic(10.0), quick());
    EXPECT_NEAR(res.delivered.gbps(), 10.0, 0.5);
}

TEST(NicSimulator, MixedTrafficDeliversBothClasses)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    const auto mixed = core::TrafficProfile::mixed(
        {{Bytes{64.0}, 0.5}, {Bytes{1500.0}, 0.5}},
        Bandwidth::from_gbps(2.0));
    const auto res = simulate(hw, g, mixed, quick());
    EXPECT_NEAR(res.delivered.gbps(), 2.0, 0.3);
}

TEST(NicSimulator, InvalidConfigThrows)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    SimOptions bad;
    bad.duration = 0.0;
    EXPECT_THROW(NicSimulator(hw, g, mtu_traffic(1.0), bad),
                 std::invalid_argument);

    core::ExecutionGraph broken;
    broken.add_ingress();
    EXPECT_THROW(NicSimulator(hw, broken, mtu_traffic(1.0), quick()),
                 std::invalid_argument);
}

TEST(NicSimulator, ValidatesWarmupFractionRange)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    for (double wf : {1.0, 1.5, -0.1}) {
        SimOptions bad = quick();
        bad.warmup_fraction = wf;
        EXPECT_THROW(NicSimulator(hw, g, mtu_traffic(1.0), bad),
                     std::invalid_argument)
            << "warmup_fraction = " << wf;
    }
    // The boundary values inside [0, 1) are accepted.
    SimOptions zero = quick();
    zero.warmup_fraction = 0.0;
    EXPECT_NO_THROW(NicSimulator(hw, g, mtu_traffic(1.0), zero));
}

TEST(NicSimulator, EventBudgetTruncatesDeterministically)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    SimOptions o = quick();
    o.watchdog.max_events = 5000;
    const auto a = simulate(hw, g, mtu_traffic(10.0), o);
    EXPECT_TRUE(a.truncated);
    EXPECT_EQ(a.truncation_reason, "event_budget");
    EXPECT_LT(a.sim_time_reached, o.duration);
    // Conservation holds mid-run too: everything not yet out is in flight.
    EXPECT_EQ(a.generated,
              a.completed_total + a.dropped_total + a.in_flight);
    // The budget cut is at a deterministic simulated instant.
    const auto b = simulate(hw, g, mtu_traffic(10.0), o);
    EXPECT_DOUBLE_EQ(a.sim_time_reached, b.sim_time_reached);
    EXPECT_EQ(a.generated, b.generated);
}

} // namespace
} // namespace lognic::sim
