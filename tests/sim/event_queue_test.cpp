#include "lognic/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <utility>
#include <vector>

namespace lognic::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(3.0, [&] { order.push_back(3); });
    q.schedule_at(1.0, [&] { order.push_back(1); });
    q.schedule_at(2.0, [&] { order.push_back(2); });
    q.run_until(10.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule_at(1.0, [&order, i] { order.push_back(i); });
    q.run_until(2.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonStopsExecution)
{
    EventQueue q;
    int ran = 0;
    q.schedule_at(1.0, [&] { ++ran; });
    q.schedule_at(5.0, [&] { ++ran; });
    q.run_until(2.0);
    EXPECT_EQ(ran, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    q.run_until(10.0);
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
        ++count;
        if (count < 10)
            q.schedule_in(1.0, tick);
    };
    q.schedule_at(0.0, tick);
    q.run_until(100.0);
    EXPECT_EQ(count, 10);
    EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, SchedulingIntoThePastThrows)
{
    EventQueue q;
    q.schedule_at(5.0, [] {});
    q.run_until(5.0);
    EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue q;
    double seen = -1.0;
    q.schedule_at(2.5, [&] { seen = q.now(); });
    q.run_until(10.0);
    EXPECT_DOUBLE_EQ(seen, 2.5);
}

/// Counts copies of itself; a move costs nothing.
struct CopyTracker {
    int* copies;
    explicit CopyTracker(int* c) : copies(c) {}
    CopyTracker(const CopyTracker& o) : copies(o.copies) { ++*copies; }
    CopyTracker(CopyTracker&& o) noexcept : copies(o.copies) {}
    CopyTracker& operator=(const CopyTracker& o)
    {
        copies = o.copies;
        ++*copies;
        return *this;
    }
    CopyTracker& operator=(CopyTracker&& o) noexcept
    {
        copies = o.copies;
        return *this;
    }
};

TEST(EventQueue, DispatchNeverCopiesActions)
{
    // Regression: the old priority_queue-based loop copied every Event
    // (including its std::function state) off the heap per dispatch. The
    // binary heap moves events out, so captured state is copied only while
    // the closure is converted to std::function at schedule time.
    EventQueue q;
    int copies = 0;
    int ran = 0;
    for (int i = 0; i < 64; ++i) {
        CopyTracker t(&copies);
        q.schedule_at(static_cast<double>(i % 7),
                      [t = std::move(t), &ran] {
                          ++ran;
                          (void)t;
                      });
    }
    const int copies_after_scheduling = copies;
    q.run_until(100.0);
    EXPECT_EQ(ran, 64);
    EXPECT_EQ(copies, copies_after_scheduling)
        << "dispatch loop copied captured state";
}

TEST(EventQueue, HeapStressMatchesSortedOrder)
{
    // Many events with random times (and deliberate duplicates) must run
    // in exact (time, seq) order — the determinism contract every seeded
    // replication relies on.
    EventQueue q;
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<int> coarse(0, 49);
    std::vector<std::pair<double, int>> expected;
    std::vector<std::pair<double, int>> actual;
    for (int i = 0; i < 2000; ++i) {
        const double when = static_cast<double>(coarse(rng)) * 0.125;
        expected.emplace_back(when, i);
        q.schedule_at(when, [&actual, when, i] {
            actual.emplace_back(when, i);
        });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    q.run_until(1000.0);
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(q.executed(), 2000u);
}

} // namespace
} // namespace lognic::sim
