#include "lognic/sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <random>
#include <type_traits>
#include <utility>
#include <vector>

// ---------------------------------------------------------------------------
// Global allocation counter. Replacing the replaceable global operator new
// lets SteadyStateSchedulingIsAllocationFree assert the tentpole property
// directly: once the calendar reaches its high-water population, schedule +
// dispatch perform zero heap allocations. The replacement affects the whole
// test binary, but only that one test reads the counter around a critical
// region, so the other tests are unaffected.
//
// Disabled under ASan: the sanitizer pairs its own operator-new interceptor
// with its free interceptor, and a malloc-backed replacement in the
// executable trips alloc-dealloc-mismatch on allocations made inside
// unsanitized libraries (e.g. gtest). Under ASan the counting test is
// skipped — that build's job is catching slab/action lifetime bugs, and
// the allocation-freedom claim is covered by every non-sanitized run.
// ---------------------------------------------------------------------------

#if defined(__SANITIZE_ADDRESS__)
#define LOGNIC_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LOGNIC_TEST_ASAN 1
#endif
#endif

namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
} // namespace

#ifndef LOGNIC_TEST_ASAN

void*
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc{};
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

#endif // !LOGNIC_TEST_ASAN

namespace lognic::sim {
namespace {

// The hot-path contract, checked at compile time: actions and events are
// trivially copyable so the heap can sift them as raw bytes, and the
// canonical simulator capture shape (this + packet pointer + id + scalars)
// fits the inline budget.
static_assert(std::is_trivially_copyable_v<EventQueue::Action>,
              "calendar actions must sift as raw bytes");
static_assert(std::is_trivially_destructible_v<EventQueue::Action>,
              "popping an event must not run destructors");

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(3.0, [&order] { order.push_back(3); });
    q.schedule_at(1.0, [&order] { order.push_back(1); });
    q.schedule_at(2.0, [&order] { order.push_back(2); });
    q.run_until(10.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule_at(1.0, [&order, i] { order.push_back(i); });
    q.run_until(2.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, FifoTiesSurviveInterleavedPops)
{
    // Tie-break must hold even when equal-time events are scheduled across
    // intervening pops (so their seq values are not contiguous) and the
    // heap has been reshaped in between.
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(5.0, [&order] { order.push_back(0); });
    q.schedule_at(1.0, [&order, &q] {
        order.push_back(-1);
        q.schedule_at(5.0, [&order] { order.push_back(2); });
    });
    q.schedule_at(5.0, [&order] { order.push_back(1); });
    q.schedule_at(2.0, [&order, &q] {
        order.push_back(-2);
        q.schedule_at(5.0, [&order] { order.push_back(3); });
    });
    q.run_until(10.0);
    EXPECT_EQ(order, (std::vector<int>{-1, -2, 0, 1, 2, 3}));
}

TEST(EventQueue, HorizonStopsExecution)
{
    EventQueue q;
    int ran = 0;
    q.schedule_at(1.0, [&ran] { ++ran; });
    q.schedule_at(5.0, [&ran] { ++ran; });
    q.run_until(2.0);
    EXPECT_EQ(ran, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    q.run_until(10.0);
    EXPECT_EQ(ran, 2);
}

/// Trivially copyable self-rescheduling functor: the idiom event closures
/// use now that the calendar rejects std::function-style captures.
struct Ticker {
    EventQueue* q;
    int* count;
    void operator()() const
    {
        ++*count;
        if (*count < 10)
            q->schedule_in(1.0, *this);
    }
};
static_assert(std::is_trivially_copyable_v<Ticker>);

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    q.schedule_at(0.0, Ticker{&q, &count});
    q.run_until(100.0);
    EXPECT_EQ(count, 10);
    EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, SchedulingIntoThePastThrows)
{
    EventQueue q;
    q.schedule_at(5.0, [] {});
    q.run_until(5.0);
    EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue q;
    double seen = -1.0;
    q.schedule_at(2.5, [&seen, &q] { seen = q.now(); });
    q.run_until(10.0);
    EXPECT_DOUBLE_EQ(seen, 2.5);
}

TEST(EventQueue, SteadyStateSchedulingIsAllocationFree)
{
    // The tentpole property: after the calendar reaches its high-water
    // population once, scheduling and dispatching perform zero heap
    // allocations — actions live inline in the event record and the heap's
    // backing vector is already at capacity.
#ifdef LOGNIC_TEST_ASAN
    GTEST_SKIP() << "allocation counting is disabled under ASan "
                    "(interceptor pairing); see the operator new note above";
#endif
    EventQueue q;
    std::uint64_t fired = 0;
    // Warm-up pass: grow the backing vector to 256 pending events.
    for (int i = 0; i < 256; ++i)
        q.schedule_at(1.0 + 0.001 * i, [&fired] { ++fired; });
    q.run_until(10.0);
    ASSERT_EQ(fired, 256u);

    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 256; ++i)
        q.schedule_at(20.0 + 0.001 * (i % 13), [&fired] { ++fired; });
    q.run_until(30.0);
    const std::uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(fired, 512u);
    EXPECT_EQ(after, before)
        << "steady-state schedule/dispatch touched the heap";
}

TEST(EventQueue, RunLimitsDrainedAndHorizonOutcomes)
{
    EventQueue q;
    int ran = 0;
    q.schedule_at(1.0, [&ran] { ++ran; });
    q.schedule_at(9.0, [&ran] { ++ran; });
    // Horizon cuts the run short with an event still pending.
    EXPECT_EQ(q.run_until(5.0, RunLimits{}), RunOutcome::kHorizon);
    EXPECT_EQ(ran, 1);
    EXPECT_DOUBLE_EQ(q.now(), 5.0);
    // The calendar empties before the next horizon.
    EXPECT_EQ(q.run_until(50.0, RunLimits{}), RunOutcome::kDrained);
    EXPECT_EQ(ran, 2);
    EXPECT_DOUBLE_EQ(q.now(), 50.0);
}

TEST(EventQueue, RunLimitsEventBudgetStopsDeterministically)
{
    EventQueue q;
    int count = 0;
    q.schedule_at(0.0, Ticker{&q, &count}); // 10 self-rescheduled ticks
    RunLimits limits;
    limits.max_events = 4;
    EXPECT_EQ(q.run_until(100.0, limits), RunOutcome::kEventBudget);
    EXPECT_EQ(count, 4);
    // now() stays at the last executed event (tick #4 at t=3), NOT the
    // horizon, so callers can report how far the truncated run got.
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
    EXPECT_FALSE(q.empty());
    // The budget is per-call: a fresh call finishes the run.
    EXPECT_EQ(q.run_until(100.0, RunLimits{}), RunOutcome::kDrained);
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunLimitsAbortStopsBetweenEvents)
{
    EventQueue q;
    int count = 0;
    for (int i = 0; i < 8; ++i)
        q.schedule_at(static_cast<double>(i), [&count] { ++count; });
    RunLimits limits;
    bool abort_now = false;
    limits.should_abort = [&abort_now] { return abort_now; };
    limits.check_interval = 1; // poll before every event
    EXPECT_EQ(q.run_until(100.0, limits), RunOutcome::kDrained);
    EXPECT_EQ(count, 8);

    for (int i = 0; i < 8; ++i)
        q.schedule_at(200.0 + static_cast<double>(i), [&count, &abort_now] {
            ++count;
            abort_now = count >= 11; // trip after the 3rd event of this batch
        });
    EXPECT_EQ(q.run_until(1000.0, limits), RunOutcome::kAborted);
    EXPECT_EQ(count, 11);
    EXPECT_DOUBLE_EQ(q.now(), 202.0);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, HeapStressMatchesSortedOrder)
{
    // Many events with random times (and deliberate duplicates) must run
    // in exact (time, seq) order — the determinism contract every seeded
    // replication relies on.
    EventQueue q;
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<int> coarse(0, 49);
    std::vector<std::pair<double, int>> expected;
    std::vector<std::pair<double, int>> actual;
    for (int i = 0; i < 2000; ++i) {
        const double when = static_cast<double>(coarse(rng)) * 0.125;
        expected.emplace_back(when, i);
        q.schedule_at(when, [&actual, when, i] {
            actual.emplace_back(when, i);
        });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto& a, const auto& b) {
                         return a.first < b.first;
                     });
    q.run_until(1000.0);
    EXPECT_EQ(actual, expected);
    EXPECT_EQ(q.executed(), 2000u);
}

} // namespace
} // namespace lognic::sim
