#include "lognic/sim/event_queue.hpp"

#include <gtest/gtest.h>
#include <vector>

namespace lognic::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(3.0, [&] { order.push_back(3); });
    q.schedule_at(1.0, [&] { order.push_back(1); });
    q.schedule_at(2.0, [&] { order.push_back(2); });
    q.run_until(10.0);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule_at(1.0, [&order, i] { order.push_back(i); });
    q.run_until(2.0);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonStopsExecution)
{
    EventQueue q;
    int ran = 0;
    q.schedule_at(1.0, [&] { ++ran; });
    q.schedule_at(5.0, [&] { ++ran; });
    q.run_until(2.0);
    EXPECT_EQ(ran, 1);
    EXPECT_DOUBLE_EQ(q.now(), 2.0);
    q.run_until(10.0);
    EXPECT_EQ(ran, 2);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
        ++count;
        if (count < 10)
            q.schedule_in(1.0, tick);
    };
    q.schedule_at(0.0, tick);
    q.run_until(100.0);
    EXPECT_EQ(count, 10);
    EXPECT_DOUBLE_EQ(q.now(), 100.0);
}

TEST(EventQueue, SchedulingIntoThePastThrows)
{
    EventQueue q;
    q.schedule_at(5.0, [] {});
    q.run_until(5.0);
    EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, NowAdvancesToEventTime)
{
    EventQueue q;
    double seen = -1.0;
    q.schedule_at(2.5, [&] { seen = q.now(); });
    q.run_until(10.0);
    EXPECT_DOUBLE_EQ(seen, 2.5);
}

} // namespace
} // namespace lognic::sim
