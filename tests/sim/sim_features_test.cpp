#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::sim {
namespace {

using test::mtu_traffic;
using test::single_stage_graph;
using test::small_nic;
using test::two_stage_graph;

SimOptions
quick(std::uint64_t seed = 7)
{
    SimOptions o;
    o.duration = 0.04;
    o.seed = seed;
    return o;
}

TEST(VertexStatsSim, UtilizationMatchesOfferedLoad)
{
    const auto hw = small_nic();
    core::VertexParams p;
    p.parallelism = 1;
    const auto g = single_stage_graph(hw, p);
    // 1 engine at 1.375 us/req; 5 Gbps = 416.7 kpps -> rho = 0.573.
    const auto res = simulate(hw, g, mtu_traffic(5.0), quick());
    ASSERT_EQ(res.vertex_stats.size(), 1u);
    const auto& vs = res.vertex_stats[0];
    EXPECT_EQ(vs.name, "cores");
    EXPECT_NEAR(vs.utilization, 5e9 / 12000.0 * 1.375e-6, 0.04);
    EXPECT_GT(vs.served, 1000u);
    EXPECT_EQ(vs.dropped, 0u);
}

TEST(VertexStatsSim, OccupancyMatchesLittlesLaw)
{
    const auto hw = small_nic();
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 32;
    const auto g = single_stage_graph(hw, p);
    SimOptions o = quick();
    o.duration = 0.2;
    const auto res = simulate(hw, g, mtu_traffic(6.0), o);
    const auto& vs = res.vertex_stats[0];
    // L = lambda * W (sojourn at this vertex ~ total latency since the
    // chain has one serving stage).
    const double lambda = 6e9 / 12000.0;
    const double expected = lambda * res.mean_latency.seconds();
    EXPECT_NEAR(vs.mean_occupancy, expected, 0.1 * expected);
}

TEST(VertexStatsSim, BusiestIdentifiesBottleneck)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    // cores (8 engines, fast) feeding accel (2 engines, slower aggregate).
    const auto g = two_stage_graph(hw);
    const auto res = simulate(hw, g, mtu_traffic(40.0), quick());
    ASSERT_EQ(res.vertex_stats.size(), 2u);
    // accel aggregate ~45.3 Gbps < cores ~69.8 Gbps: accel is busiest.
    EXPECT_EQ(res.busiest().name, "accel");
    EXPECT_GT(res.busiest().utilization, 0.8);
    EXPECT_LT(res.vertex_stats[0].utilization,
              res.busiest().utilization); // cores are less loaded
}

TEST(VertexStatsSim, DropsAttributedToTheFullVertex)
{
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 4;
    const auto g = single_stage_graph(hw, p);
    const auto res = simulate(hw, g, mtu_traffic(40.0), quick());
    EXPECT_EQ(res.vertex_stats[0].dropped, res.dropped);
    EXPECT_GT(res.dropped, 0u);
}

TEST(VertexStatsSim, EmptyBusiestIsSafe)
{
    const SimResult empty;
    EXPECT_EQ(empty.busiest().name, "");
    EXPECT_DOUBLE_EQ(empty.busiest().utilization, 0.0);
}

TEST(BurstArrivals, PreservesMeanRate)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    SimOptions o = quick();
    o.duration = 0.2;
    o.burst.enabled = true;
    o.burst.on = Seconds::from_micros(40.0);
    o.burst.off = Seconds::from_micros(60.0);
    o.burst.intensity = 2.0; // 2.0 * 0.4 = 0.8 <= 1 OK
    const auto res = simulate(hw, g, mtu_traffic(5.0), o);
    EXPECT_NEAR(res.delivered.gbps(), 5.0, 0.3);
}

TEST(BurstArrivals, IncreaseTailLatency)
{
    const auto hw = small_nic();
    core::VertexParams p;
    p.parallelism = 2;
    const auto g = single_stage_graph(hw, p);
    SimOptions smooth = quick(3);
    smooth.duration = 0.2;
    SimOptions bursty = smooth;
    bursty.burst.enabled = true;
    bursty.burst.on = Seconds::from_micros(30.0);
    bursty.burst.off = Seconds::from_micros(70.0);
    bursty.burst.intensity = 3.0; // 3.0 * 0.3 = 0.9 <= 1
    const auto a = simulate(hw, g, mtu_traffic(10.0), smooth);
    const auto b = simulate(hw, g, mtu_traffic(10.0), bursty);
    EXPECT_GT(b.p99_latency.seconds(), a.p99_latency.seconds());
    EXPECT_GT(b.mean_latency.seconds(), a.mean_latency.seconds());
}

TEST(BurstArrivals, ValidatesParameters)
{
    const auto hw = small_nic();
    const auto g = single_stage_graph(hw);
    SimOptions o = quick();
    o.burst.enabled = true;
    o.burst.intensity = 5.0; // 5.0 * 0.5 > 1: cannot preserve the mean
    EXPECT_THROW(NicSimulator(hw, g, mtu_traffic(1.0), o),
                 std::invalid_argument);

    SimOptions paced = quick();
    paced.burst.enabled = true;
    paced.poisson_arrivals = false;
    EXPECT_THROW(NicSimulator(hw, g, mtu_traffic(1.0), paced),
                 std::invalid_argument);

    SimOptions bad = quick();
    bad.burst.enabled = true;
    bad.burst.on = Seconds{0.0};
    EXPECT_THROW(NicSimulator(hw, g, mtu_traffic(1.0), bad),
                 std::invalid_argument);
}

TEST(PerInputQueues, IsolateVictimFromAggressor)
{
    // Two inputs into one IP: a well-behaved 2 Gbps flow and a 60 Gbps
    // aggressor. With a shared FIFO the aggressor occupies the whole
    // buffer and the victim's packets drop alongside; with per-input
    // queues the victim keeps its own slots.
    auto build = [](bool per_input) {
        const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
        core::ExecutionGraph g(per_input ? "isolated" : "shared");
        const auto in = g.add_ingress();
        const auto out = g.add_egress();
        core::VertexParams upstream;
        upstream.parallelism = 2; // the accel IP has two engines
        const auto fast_a = g.add_ip_vertex("pre-a", *hw.find_ip("accel"),
                                            upstream);
        const auto fast_b = g.add_ip_vertex("pre-b", *hw.find_ip("accel"),
                                            upstream);
        core::VertexParams shared;
        shared.parallelism = 1;
        shared.queue_capacity = 16;
        shared.per_input_queues = per_input;
        const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"),
                                       shared);
        // Victim: ~3% of packets; aggressor: 97%.
        g.add_edge(in, fast_a, core::EdgeParams{0.03, 0, 0, {}});
        g.add_edge(in, fast_b, core::EdgeParams{0.97, 0, 0, {}});
        g.add_edge(fast_a, v, core::EdgeParams{0.03, 0, 0, {}});
        g.add_edge(fast_b, v, core::EdgeParams{0.97, 0, 0, {}});
        g.add_edge(v, out);
        return std::pair{hw, g};
    };

    SimOptions o = quick(5);
    o.duration = 0.1;
    const auto traffic = mtu_traffic(60.0); // cores (1 engine) overloads

    const auto [hw_s, g_s] = build(false);
    const auto shared_res = simulate(hw_s, g_s, traffic, o);
    const auto [hw_i, g_i] = build(true);
    const auto isolated_res = simulate(hw_i, g_i, traffic, o);

    // Both saturate the single core similarly...
    EXPECT_NEAR(isolated_res.delivered.gbps(), shared_res.delivered.gbps(),
                2.0);
    // ...but the per-input discipline serves the victim queue every other
    // round (RR), so the victim's share of the *served* packets rises far
    // above its 3% arrival share. Proxy: with per-input queues the victim
    // queue never overflows, so total drops shift entirely onto the
    // aggressor and delivered packets skew small... measure via vertex
    // drops: both drop heavily, but the isolated victim keeps a bounded
    // queue -> RR guarantees it ~half the service slots. Observable
    // effect: mean occupancy of the shared vertex is lower when split
    // (victim queue is short).
    const auto find = [](const SimResult& r, const char* name) {
        for (const auto& vs : r.vertex_stats) {
            if (vs.name == std::string(name))
                return vs;
        }
        return VertexStats{};
    };
    const auto vs_shared = find(shared_res, "cores");
    const auto vs_isolated = find(isolated_res, "cores");
    EXPECT_GT(vs_shared.mean_occupancy, vs_isolated.mean_occupancy);
    EXPECT_GT(vs_isolated.utilization, 0.95); // still work conserving
}

TEST(PerInputQueues, SingleInputBehavesLikeSharedFifo)
{
    const auto hw = small_nic();
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 16;
    p.per_input_queues = true; // no-op with one in-edge
    const auto g = single_stage_graph(hw, p);
    const auto iso = simulate(hw, g, mtu_traffic(6.0), quick(9));
    core::VertexParams q = p;
    q.per_input_queues = false;
    const auto g2 = single_stage_graph(hw, q);
    const auto fifo = simulate(hw, g2, mtu_traffic(6.0), quick(9));
    EXPECT_DOUBLE_EQ(iso.mean_latency.seconds(),
                     fifo.mean_latency.seconds());
    EXPECT_EQ(iso.completed, fifo.completed);
}

} // namespace
} // namespace lognic::sim
