#include "lognic/sim/panic.hpp"

#include <gtest/gtest.h>

#include "lognic/devices/panic_proto.hpp"
#include "lognic/traffic/profiles.hpp"

namespace lognic::sim {
namespace {

PanicConfig
one_unit_chain(std::uint32_t credits)
{
    PanicConfig cfg = devices::panic_defaults();
    cfg.units.push_back(devices::panic_unit(
        "u", Seconds::from_nanos(100.0), Bandwidth::from_gbps(100.0), 1,
        credits));
    cfg.chains.push_back(PanicChain{{0}, 1.0});
    return cfg;
}

SimOptions
quick()
{
    SimOptions o;
    o.duration = 0.01;
    o.seed = 3;
    return o;
}

TEST(PanicSim, NoDropsBelowCapacity)
{
    // Unit capacity ~29 Gbps (141 ns per 512 B packet); at 15 Gbps the
    // bounded scheduler buffer never overflows.
    const auto cfg = one_unit_chain(4);
    const auto res = simulate_panic(
        cfg, core::TrafficProfile::fixed(Bytes{512.0},
                                         Bandwidth::from_gbps(15.0)),
        quick());
    EXPECT_EQ(res.dropped, 0u);
    EXPECT_GT(res.completed, 0u);
}

TEST(PanicSim, ShedsLoadWhenSchedulerBufferFills)
{
    const auto cfg = one_unit_chain(4);
    const auto res = simulate_panic(
        cfg, core::TrafficProfile::fixed(Bytes{512.0},
                                         Bandwidth::from_gbps(60.0)),
        quick());
    EXPECT_GT(res.drop_rate, 0.2);
}

TEST(PanicSim, ThroughputMonotoneInCredits)
{
    // Overloaded unit: more credits -> larger window -> more throughput,
    // saturating at the unit's compute capacity.
    double prev = 0.0;
    for (std::uint32_t credits : {1u, 2u, 4u, 8u}) {
        const auto cfg = one_unit_chain(credits);
        const auto res = simulate_panic(
            cfg, core::TrafficProfile::fixed(Bytes{512.0},
                                             Bandwidth::from_gbps(60.0)),
            quick());
        EXPECT_GE(res.delivered.gbps(), prev - 0.5);
        prev = res.delivered.gbps();
    }
    EXPECT_GT(prev, 20.0);
}

TEST(PanicSim, LatencyGrowsWithCredits)
{
    // Under overload, once credits exceed the window knee they only add
    // buffering (queueing delay) — the Figure 15 takeaway ("fewer credits
    // reduce the latency").
    const auto low = simulate_panic(
        one_unit_chain(2),
        core::TrafficProfile::fixed(Bytes{512.0},
                                    Bandwidth::from_gbps(60.0)),
        quick());
    const auto high = simulate_panic(
        one_unit_chain(8),
        core::TrafficProfile::fixed(Bytes{512.0},
                                    Bandwidth::from_gbps(60.0)),
        quick());
    EXPECT_GT(high.mean_latency.seconds(), low.mean_latency.seconds());
}

TEST(PanicSim, ChainTraversesAllUnits)
{
    PanicConfig cfg = devices::panic_defaults();
    for (int i = 0; i < 3; ++i) {
        cfg.units.push_back(devices::panic_unit(
            "u" + std::to_string(i), Seconds::from_nanos(200.0),
            Bandwidth::from_gbps(100.0), 1, 8));
    }
    cfg.chains.push_back(PanicChain{{0, 1, 2}, 1.0});
    const auto res = simulate_panic(
        cfg, core::TrafficProfile::fixed(Bytes{256.0},
                                         Bandwidth::from_gbps(1.0)),
        quick());
    // Light load: latency ~ rmt + 4 fabric traversals + 3 services.
    const double service_ns = 200.0 + 256.0 * 8.0 / 100.0;
    const double hop_ns =
        cfg.hop_latency.nanos() + 256.0 * 8.0 / 100.0;
    const double expected_ns =
        cfg.rmt_latency.nanos() + 4.0 * hop_ns + 3.0 * service_ns;
    EXPECT_NEAR(res.mean_latency.nanos(), expected_ns, 0.25 * expected_ns);
}

TEST(PanicSim, RejectsBadConfigs)
{
    PanicConfig empty = devices::panic_defaults();
    EXPECT_THROW(simulate_panic(empty, core::TrafficProfile{}, quick()),
                 std::invalid_argument);

    PanicConfig bad_chain = one_unit_chain(4);
    bad_chain.chains[0].units = {5};
    EXPECT_THROW(simulate_panic(bad_chain, core::TrafficProfile{}, quick()),
                 std::invalid_argument);

    PanicConfig no_credit = one_unit_chain(4);
    no_credit.units[0].credits = 0;
    EXPECT_THROW(simulate_panic(no_credit, core::TrafficProfile{}, quick()),
                 std::invalid_argument);
}

TEST(PanicCreditCapacity, WindowFormula)
{
    PanicConfig cfg = devices::panic_defaults();
    const PanicUnit unit = devices::panic_unit(
        "u", Seconds::from_nanos(100.0), Bandwidth::from_gbps(1e6), 1, 2);
    const Bytes request{1000.0};
    // service 100 ns; rtt = 2 * 20 ns + 8000 b / 100 G = 120 ns.
    // window = 2 * 1000 B / 220 ns = 72.7 Gbps; compute = 80 Gbps.
    const Bandwidth cap = panic_credit_capacity(unit, request, cfg);
    EXPECT_NEAR(cap.gbps(), 2.0 * 8000.0 / 220.0, 0.5);
}

TEST(PanicCreditCapacity, ComputeCapsTheWindow)
{
    PanicConfig cfg = devices::panic_defaults();
    const PanicUnit unit = devices::panic_unit(
        "u", Seconds::from_micros(1.0), Bandwidth::from_gbps(1e6), 1, 64);
    const Bandwidth cap = panic_credit_capacity(unit, Bytes{1000.0}, cfg);
    // 64-credit window is huge; 1 us/op compute (8 Gbps) binds.
    EXPECT_NEAR(cap.gbps(), 8.0, 0.01);
}

TEST(PanicCreditCapacity, SimulatorAgreesWithAnalyticWindow)
{
    for (std::uint32_t credits : {1u, 2u, 3u}) {
        PanicConfig cfg = devices::panic_defaults();
        cfg.units.push_back(devices::panic_unit(
            "u", Seconds::from_nanos(300.0), Bandwidth::from_gbps(1e6), 1,
            credits));
        cfg.chains.push_back(PanicChain{{0}, 1.0});
        const Bytes pkt{512.0};
        SimOptions o;
        o.duration = 0.02;
        o.exponential_service = false; // deterministic matches the formula
        o.poisson_arrivals = false;
        const auto res = simulate_panic(
            cfg,
            core::TrafficProfile::fixed(pkt, Bandwidth::from_gbps(50.0)),
            o);
        const Bandwidth analytic =
            panic_credit_capacity(cfg.units[0], pkt, cfg);
        EXPECT_NEAR(res.delivered.gbps(), analytic.gbps(),
                    0.15 * analytic.gbps())
            << "credits=" << credits;
    }
}

} // namespace
} // namespace lognic::sim
