#include "lognic/sim/packet_slab.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../test_helpers.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::sim {
namespace {

using test::mtu_traffic;
using test::single_stage_graph;
using test::small_nic;

struct Record {
    std::uint64_t serial{0};
    double payload{0.0};
};

TEST(Slab, RecyclesSlotsLifo)
{
    Slab<Record> slab(4);
    Record* a = slab.acquire();
    Record* b = slab.acquire();
    EXPECT_EQ(slab.in_use(), 2u);
    slab.release(b);
    slab.release(a);
    // LIFO: the most recently released slot is handed out first.
    EXPECT_EQ(slab.acquire(), a);
    EXPECT_EQ(slab.acquire(), b);
    EXPECT_EQ(slab.in_use(), 2u);
}

TEST(Slab, HandlesStayStableAcrossGrowth)
{
    // Chunks are never freed or moved: a pointer acquired early must keep
    // its contents while the slab grows by several more chunks (events
    // capture Packet* inline, so any relocation would be a read of freed
    // or stale memory).
    Slab<Record> slab(2);
    std::vector<Record*> live;
    for (std::uint64_t i = 0; i < 64; ++i)
        live.push_back(slab.acquire(Record{i, static_cast<double>(i) * 0.5}));
    EXPECT_GE(slab.capacity(), 64u);
    EXPECT_EQ(slab.in_use(), 64u);
    for (std::uint64_t i = 0; i < 64; ++i) {
        EXPECT_EQ(live[i]->serial, i);
        EXPECT_DOUBLE_EQ(live[i]->payload, static_cast<double>(i) * 0.5);
    }
    for (Record* r : live)
        slab.release(r);
    EXPECT_EQ(slab.in_use(), 0u);
}

TEST(Slab, AcquireConstructsInPlace)
{
    Slab<Record> slab;
    Record* r = slab.acquire(Record{42, 1.5});
    EXPECT_EQ(r->serial, 42u);
    EXPECT_DOUBLE_EQ(r->payload, 1.5);
    slab.release(r);
    // A recycled slot is re-constructed, not left holding stale state.
    Record* again = slab.acquire();
    EXPECT_EQ(again, r);
    EXPECT_EQ(again->serial, 0u);
    EXPECT_DOUBLE_EQ(again->payload, 0.0);
}

TEST(Slab, SteadyStateChurnNeverGrowsPastHighWater)
{
    Slab<Record> slab(8);
    // In-flight population of 3, churned many times: one chunk suffices.
    Record* window[3] = {nullptr, nullptr, nullptr};
    for (int round = 0; round < 1000; ++round) {
        for (auto& slot : window)
            slot = slab.acquire();
        for (auto& slot : window)
            slab.release(slot);
    }
    EXPECT_EQ(slab.capacity(), 8u);
    EXPECT_EQ(slab.in_use(), 0u);
}

TEST(Slab, SimulatorResultsIdenticalUnderHeavySlotReuse)
{
    // The slab's determinism contract, exercised end to end: an overloaded
    // run drops most packets, so slots recycle constantly — and two runs
    // with the same seed must still agree bit for bit on every statistic.
    // (Recycling order is a pure function of event order; nothing may key
    // on pointer values.) ASan runs this test too, which catches any
    // release-then-read on a recycled slot.
    const auto hw = small_nic(Bandwidth::from_gbps(1000.0));
    core::VertexParams p;
    p.parallelism = 1;
    p.queue_capacity = 4;
    const auto g = single_stage_graph(hw, p);
    SimOptions o;
    o.duration = 0.03;
    o.seed = 11;
    const auto a = simulate(hw, g, mtu_traffic(40.0), o);
    const auto b = simulate(hw, g, mtu_traffic(40.0), o);
    EXPECT_GT(a.dropped_total, 0u);
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.completed_total, b.completed_total);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.dropped_total, b.dropped_total);
    EXPECT_EQ(a.in_flight, b.in_flight);
    EXPECT_DOUBLE_EQ(a.mean_latency.seconds(), b.mean_latency.seconds());
    EXPECT_DOUBLE_EQ(a.p50_latency.seconds(), b.p50_latency.seconds());
    EXPECT_DOUBLE_EQ(a.p99_latency.seconds(), b.p99_latency.seconds());
    EXPECT_DOUBLE_EQ(a.delivered.gbps(), b.delivered.gbps());
}

} // namespace
} // namespace lognic::sim
