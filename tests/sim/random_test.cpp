#include "lognic/sim/random.hpp"

#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace lognic::sim {
namespace {

// --- weighted_index -----------------------------------------------------------

TEST(WeightedIndex, ThrowsOnEmptyWeights)
{
    // Regression: std::discrete_distribution on an empty range is UB; the
    // manual CDF sampler must reject it loudly.
    Rng rng(1);
    EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
}

TEST(WeightedIndex, ThrowsOnAllZeroWeights)
{
    Rng rng(1);
    EXPECT_THROW(rng.weighted_index({0.0, 0.0, 0.0}),
                 std::invalid_argument);
}

TEST(WeightedIndex, ThrowsOnNegativeOrNonFiniteWeights)
{
    Rng rng(1);
    EXPECT_THROW(rng.weighted_index({1.0, -0.5}), std::invalid_argument);
    EXPECT_THROW(rng.weighted_index(
                     {1.0, std::numeric_limits<double>::infinity()}),
                 std::invalid_argument);
    EXPECT_THROW(rng.weighted_index(
                     {std::numeric_limits<double>::quiet_NaN()}),
                 std::invalid_argument);
}

TEST(WeightedIndex, NeverReturnsZeroWeightBucket)
{
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t pick =
            rng.weighted_index({0.0, 1.0, 0.0, 2.0, 0.0});
        EXPECT_TRUE(pick == 1 || pick == 3) << "picked " << pick;
    }
}

TEST(WeightedIndex, TrailingZeroWeightsNeverSelected)
{
    // The FP-sliver fallback must land on the last *positive* bucket, not
    // the last bucket.
    Rng rng(11);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(rng.weighted_index({0.0, 3.0, 0.0}), 1u);
}

TEST(WeightedIndex, ConsumesExactlyOneUniformDraw)
{
    // The sampler draws one uniform from the shared engine per call, so a
    // same-seeded Rng stays stream-aligned with hand-rolled inversion.
    Rng a(123);
    Rng b(123);
    const std::vector<double> w{2.0, 1.0, 1.0};
    for (int i = 0; i < 100; ++i) {
        const double u = b.uniform() * 4.0;
        const std::size_t expect = u < 2.0 ? 0 : (u < 3.0 ? 1 : 2);
        EXPECT_EQ(a.weighted_index(w), expect);
    }
    // Streams stay synchronized afterwards.
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(WeightedIndex, FrequenciesMatchWeights)
{
    Rng rng(42);
    const std::vector<double> w{1.0, 3.0};
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        ones += rng.weighted_index(w) == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

// --- with_scv -----------------------------------------------------------------

TEST(WithScv, ZeroScvIsDeterministic)
{
    Rng rng(5);
    EXPECT_DOUBLE_EQ(rng.with_scv(3.5, 0.0), 3.5);
    EXPECT_DOUBLE_EQ(rng.with_scv(3.5, -1.0), 3.5);
    // ...and consumes no engine state.
    Rng fresh(5);
    EXPECT_DOUBLE_EQ(rng.uniform(), fresh.uniform());
}

TEST(WithScv, ScvOneMatchesGammaShapeOne)
{
    // Regression for the exact `scv == 1.0` special case: every scv > 0
    // must route through the same gamma sampler so engine streams are
    // continuous across a sweep through the exponential point.
    Rng rng(99);
    std::mt19937_64 ref(99);
    for (int i = 0; i < 50; ++i) {
        const double expect =
            std::gamma_distribution<double>(1.0, 4.0)(ref);
        EXPECT_DOUBLE_EQ(rng.with_scv(4.0, 1.0), expect);
    }
}

TEST(WithScv, StreamContinuousAcrossExponentialPoint)
{
    // scv = 1 and scv = 1 - 1e-9 (both shape >= 1) must consume the same
    // amount of engine state and produce nearly identical samples; the old
    // exponential special case broke both properties.
    Rng a(2024);
    Rng b(2024);
    for (int i = 0; i < 50; ++i) {
        const double xa = a.with_scv(2.0, 1.0);
        const double xb = b.with_scv(2.0, 1.0 - 1e-9);
        EXPECT_NEAR(xa, xb, 1e-6 * (1.0 + xa));
    }
    // Identical residual engine state.
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(WithScv, SampleMomentsMatchRequested)
{
    Rng rng(7);
    const double mean = 5.0;
    const double scv = 0.25;
    double sum = 0.0, sumsq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.with_scv(mean, scv);
        EXPECT_GT(x, 0.0);
        sum += x;
        sumsq += x * x;
    }
    const double m = sum / n;
    const double var = sumsq / n - m * m;
    EXPECT_NEAR(m, mean, 0.05 * mean);
    EXPECT_NEAR(var / (m * m), scv, 0.05);
}

TEST(WithScv, DeterministicForSeed)
{
    Rng a(31337);
    Rng b(31337);
    for (int i = 0; i < 20; ++i)
        EXPECT_DOUBLE_EQ(a.with_scv(1.0, 0.5), b.with_scv(1.0, 0.5));
}

} // namespace
} // namespace lognic::sim
