#include "lognic/sim/stats.hpp"

#include <gtest/gtest.h>

#include "lognic/runner/replicator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace lognic::sim {
namespace {

TEST(LatencyRecorder, MeanAndQuantiles)
{
    LatencyRecorder r;
    for (double us : {5.0, 1.0, 4.0, 2.0, 3.0})
        r.record(1.0, Seconds::from_micros(us));
    r.seal();
    EXPECT_NEAR(r.mean()->micros(), 3.0, 1e-12);
    EXPECT_NEAR(r.p50()->micros(), 3.0, 1e-12);
    EXPECT_NEAR(r.quantile(1.0)->micros(), 5.0, 1e-12);
    EXPECT_NEAR(r.quantile(0.0)->micros(), 1.0, 1e-12);
    EXPECT_NEAR(r.max()->micros(), 5.0, 1e-12);
}

TEST(LatencyRecorder, NearestRankQuantiles)
{
    // 10 samples, 1..10 us.
    LatencyRecorder r;
    for (int i = 10; i >= 1; --i)
        r.record(1.0, Seconds::from_micros(static_cast<double>(i)));
    r.seal();
    EXPECT_NEAR(r.quantile(0.0)->micros(), 1.0, 1e-12);  // rank 1 (min)
    EXPECT_NEAR(r.quantile(0.5)->micros(), 5.0, 1e-12);  // ceil(5) = 5
    EXPECT_NEAR(r.quantile(0.99)->micros(), 10.0, 1e-12); // ceil(9.9) = 10
    EXPECT_NEAR(r.quantile(1.0)->micros(), 10.0, 1e-12); // rank n (max)
    EXPECT_NEAR(r.quantile(0.41)->micros(), 5.0, 1e-12); // ceil(4.1) = 5
}

TEST(LatencyRecorder, WarmupSamplesDropped)
{
    LatencyRecorder r(10.0);
    r.record(5.0, Seconds::from_micros(100.0)); // warmup, dropped
    r.record(15.0, Seconds::from_micros(2.0));
    r.seal();
    EXPECT_EQ(r.count(), 1u);
    EXPECT_NEAR(r.mean()->micros(), 2.0, 1e-12);
}

TEST(LatencyRecorder, WarmupBoundaryInstantIsExcluded)
{
    // The measurement window is the half-open (warmup_end, horizon]: a
    // completion at exactly warmup_end still belongs to the warmup.
    LatencyRecorder r(10.0);
    r.record(10.0, Seconds::from_micros(1.0));
    EXPECT_EQ(r.count(), 0u);
    r.record(10.0 + 1e-9, Seconds::from_micros(1.0));
    EXPECT_EQ(r.count(), 1u);
}

TEST(LatencyRecorder, EmptyIsNullopt)
{
    const LatencyRecorder r;
    EXPECT_FALSE(r.mean().has_value());
    EXPECT_FALSE(r.p99().has_value());
    EXPECT_FALSE(r.quantile(0.0).has_value());
    EXPECT_FALSE(r.max().has_value());
}

TEST(LatencyRecorder, QuantileRangeChecked)
{
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(1.0));
    r.seal();
    EXPECT_THROW(r.quantile(1.5), std::invalid_argument);
    EXPECT_THROW(r.quantile(-0.1), std::invalid_argument);
}

TEST(LatencyRecorder, UnsealedOrderedReadsThrow)
{
    // The seal contract: quantile/max on a recorder with unsorted samples
    // must refuse rather than sort behind a const accessor (that lazy
    // sort was a data race for concurrent replication readers).
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(2.0));
    EXPECT_FALSE(r.sealed());
    EXPECT_THROW(r.quantile(0.5), std::logic_error);
    EXPECT_THROW(r.max(), std::logic_error);
    // mean() and count() need no ordering and work in the write phase.
    EXPECT_NEAR(r.mean()->micros(), 2.0, 1e-12);
    EXPECT_EQ(r.count(), 1u);
}

TEST(LatencyRecorder, RecordingAfterSealRequiresReseal)
{
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(1.0));
    r.record(1.0, Seconds::from_micros(3.0));
    r.seal();
    EXPECT_NEAR(r.p50()->micros(), 1.0, 1e-12);
    r.record(1.0, Seconds::from_micros(0.5)); // reopens the write phase
    EXPECT_FALSE(r.sealed());
    EXPECT_THROW(r.quantile(0.0), std::logic_error);
    r.seal();
    EXPECT_NEAR(r.quantile(0.0)->micros(), 0.5, 1e-12);
}

TEST(LatencyRecorder, SealIsIdempotent)
{
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(4.0));
    r.seal();
    r.seal();
    EXPECT_TRUE(r.sealed());
    EXPECT_NEAR(r.p50()->micros(), 4.0, 1e-12);
}

TEST(LatencyRecorder, SingleSampleQuantiles)
{
    // n = 1: every q collapses to the single sample (rank clamped to
    // [1, 1]).
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(7.0));
    r.seal();
    EXPECT_NEAR(r.quantile(0.0)->micros(), 7.0, 1e-12);
    EXPECT_NEAR(r.quantile(0.5)->micros(), 7.0, 1e-12);
    EXPECT_NEAR(r.quantile(1.0)->micros(), 7.0, 1e-12);
}

TEST(LatencyRecorder, InteriorRankNotInflatedByFloatingPointOvershoot)
{
    // Regression: 0.07 * 100 evaluates to 7.0000000000000009 in binary
    // floating point, and ceil() turned that ulp into rank 8 — reporting
    // the 8th of 100 samples for the 7th percentile. The rank computation
    // must snap values a few ulps past an exact integer back onto it.
    LatencyRecorder r;
    for (int i = 100; i >= 1; --i)
        r.record(1.0, Seconds::from_micros(static_cast<double>(i)));
    r.seal();
    // Every q here has q * 100 exactly integral in real arithmetic but
    // one ulp high in floating point.
    EXPECT_NEAR(r.quantile(0.07)->micros(), 7.0, 1e-12);
    EXPECT_NEAR(r.quantile(0.14)->micros(), 14.0, 1e-12);
    EXPECT_NEAR(r.quantile(0.28)->micros(), 28.0, 1e-12);
    EXPECT_NEAR(r.quantile(0.55)->micros(), 55.0, 1e-12);
    // Genuinely fractional q * n still rounds up (nearest-rank rule).
    EXPECT_NEAR(r.quantile(0.075)->micros(), 8.0, 1e-12);
    EXPECT_NEAR(r.quantile(0.551)->micros(), 56.0, 1e-12);
}

TEST(LatencyRecorder, SealedReadsAgreeWithReplicationAggregation)
{
    // The runner's replication path aggregates the simulator's sealed
    // p50/p99 fields; a single replication's summary must reproduce the
    // sealed reads exactly — in particular the single-sample case, where
    // every quantile is that sample.
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(42.0));
    r.seal();
    SimResult one;
    one.completed = 1;
    one.mean_latency = *r.mean();
    one.p50_latency = *r.p50();
    one.p99_latency = *r.p99();
    const auto agg = runner::Replicator::aggregate(
        std::vector<std::uint64_t>{7u}, std::vector<SimResult>{one});
    ASSERT_EQ(agg.p50_latency_us.n, 1u);
    EXPECT_DOUBLE_EQ(agg.p50_latency_us.mean, r.p50()->micros());
    EXPECT_DOUBLE_EQ(agg.p99_latency_us.mean, r.p99()->micros());
    EXPECT_DOUBLE_EQ(agg.p50_latency_us.mean, agg.p99_latency_us.mean);
}

TEST(WindowedCounter, CountsOnlyInsideMeasurementWindow)
{
    WindowedCounter c(10.0);
    c.record(5.0);  // warmup
    c.record(10.0); // exactly at the boundary: still warmup
    EXPECT_EQ(c.count(), 0u);
    c.record(10.0 + 1e-9);
    c.record(20.0);
    EXPECT_EQ(c.count(), 2u);
}

TEST(WindowedCounter, ZeroWarmupCountsEverythingPositive)
{
    WindowedCounter c;
    c.record(0.0); // the boundary itself is excluded even at warmup 0
    c.record(1e-12);
    EXPECT_EQ(c.count(), 1u);
}

TEST(WindowedCounter, UpperEdgeClampsToHorizon)
{
    // The documented window is (warmup_end, horizon]: an event at exactly
    // the horizon counts, one past it (e.g. a drain-time completion after
    // the run's nominal end) must not inflate the accounting.
    WindowedCounter c(1.0, 10.0);
    c.record(5.0);
    c.record(10.0); // closed upper edge: counted
    EXPECT_EQ(c.count(), 2u);
    c.record(10.0 + 1e-9); // past the horizon: ignored
    c.record(50.0);
    EXPECT_EQ(c.count(), 2u);
}

TEST(WindowedCounter, DefaultHorizonIsUnbounded)
{
    WindowedCounter c(1.0);
    c.record(std::numeric_limits<double>::max());
    EXPECT_EQ(c.count(), 1u);
}

TEST(ThroughputMeter, RatesOverMeasurementWindow)
{
    ThroughputMeter m(1.0);
    m.record(0.5, Bytes{1000.0}); // warmup, dropped
    m.record(1.5, Bytes{1250.0});
    m.record(2.0, Bytes{1250.0});
    // 2500 B over the (1.0, 3.0] window = 1250 B/s = 10 kbit/s.
    EXPECT_NEAR(m.bandwidth(3.0).bits_per_sec(), 10000.0, 1e-9);
    EXPECT_NEAR(m.rate(3.0).per_sec(), 1.0, 1e-12);
    EXPECT_EQ(m.requests(), 2u);
    EXPECT_DOUBLE_EQ(m.total().bytes(), 2500.0);
}

TEST(ThroughputMeter, WarmupBoundaryInstantIsExcluded)
{
    ThroughputMeter m(1.0);
    m.record(1.0, Bytes{1000.0}); // exactly at the boundary: warmup
    EXPECT_EQ(m.requests(), 0u);
    m.record(1.0 + 1e-9, Bytes{1000.0});
    EXPECT_EQ(m.requests(), 1u);
}

TEST(ThroughputMeter, DegenerateWindowIsZero)
{
    ThroughputMeter m(5.0);
    m.record(6.0, Bytes{100.0});
    EXPECT_DOUBLE_EQ(m.bandwidth(5.0).bits_per_sec(), 0.0);
    EXPECT_DOUBLE_EQ(m.rate(4.0).per_sec(), 0.0);
}

TEST(ThroughputMeter, ZeroWidthWindowNeverInfOrNan)
{
    // measure_end == warmup_end divides by zero without the guard; the
    // rates must come back as finite zeros, never inf/NaN (a truncated
    // run that died inside its warmup hits exactly this).
    ThroughputMeter m(2.0);
    m.record(3.0, Bytes{1e6});
    const double bw = m.bandwidth(2.0).bits_per_sec();
    const double ops = m.rate(2.0).per_sec();
    EXPECT_TRUE(std::isfinite(bw));
    EXPECT_TRUE(std::isfinite(ops));
    EXPECT_DOUBLE_EQ(bw, 0.0);
    EXPECT_DOUBLE_EQ(ops, 0.0);
    // Inverted window (measure_end < warmup_end): same rule.
    EXPECT_DOUBLE_EQ(m.bandwidth(0.0).bits_per_sec(), 0.0);
    EXPECT_DOUBLE_EQ(m.rate(-1.0).per_sec(), 0.0);
    // An empty meter with a zero-width window is 0/0 territory: still 0.
    const ThroughputMeter empty(2.0);
    EXPECT_DOUBLE_EQ(empty.bandwidth(2.0).bits_per_sec(), 0.0);
    EXPECT_DOUBLE_EQ(empty.rate(2.0).per_sec(), 0.0);
}

} // namespace
} // namespace lognic::sim
