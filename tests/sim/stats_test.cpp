#include "lognic/sim/stats.hpp"

#include <gtest/gtest.h>

namespace lognic::sim {
namespace {

TEST(LatencyRecorder, MeanAndQuantiles)
{
    LatencyRecorder r;
    for (double us : {1.0, 2.0, 3.0, 4.0, 5.0})
        r.record(1.0, Seconds::from_micros(us));
    EXPECT_EQ(r.count(), 5u);
    EXPECT_NEAR(r.mean()->micros(), 3.0, 1e-12);
    EXPECT_NEAR(r.p50()->micros(), 3.0, 1e-12);
    EXPECT_NEAR(r.quantile(1.0)->micros(), 5.0, 1e-12);
    EXPECT_NEAR(r.quantile(0.0)->micros(), 1.0, 1e-12);
    EXPECT_NEAR(r.max()->micros(), 5.0, 1e-12);
}

TEST(LatencyRecorder, NearestRankQuantiles)
{
    // Nearest rank: value at 1-based rank max(1, ceil(q * n)).
    LatencyRecorder r;
    for (int us = 1; us <= 10; ++us)
        r.record(1.0, Seconds::from_micros(static_cast<double>(us)));
    EXPECT_NEAR(r.quantile(0.0)->micros(), 1.0, 1e-12);  // rank 1 (min)
    EXPECT_NEAR(r.quantile(0.5)->micros(), 5.0, 1e-12);  // ceil(5) = 5
    EXPECT_NEAR(r.quantile(0.99)->micros(), 10.0, 1e-12); // ceil(9.9) = 10
    EXPECT_NEAR(r.quantile(1.0)->micros(), 10.0, 1e-12); // rank n (max)
    EXPECT_NEAR(r.quantile(0.41)->micros(), 5.0, 1e-12); // ceil(4.1) = 5
}

TEST(LatencyRecorder, WarmupSamplesDropped)
{
    LatencyRecorder r(10.0);
    r.record(5.0, Seconds::from_micros(100.0));  // during warmup
    r.record(15.0, Seconds::from_micros(2.0));
    EXPECT_EQ(r.count(), 1u);
    EXPECT_NEAR(r.mean()->micros(), 2.0, 1e-12);
}

TEST(LatencyRecorder, WarmupBoundaryInstantIsExcluded)
{
    // Regression: completions at exactly warmup_end belong to the warmup —
    // the measurement window is (warmup_end, horizon], matching the
    // simulator's occupancy accounting.
    LatencyRecorder r(10.0);
    r.record(10.0, Seconds::from_micros(100.0)); // exactly at the boundary
    EXPECT_EQ(r.count(), 0u);
    r.record(10.0 + 1e-9, Seconds::from_micros(3.0)); // just past it
    EXPECT_EQ(r.count(), 1u);
}

TEST(LatencyRecorder, EmptyIsNullopt)
{
    const LatencyRecorder r;
    EXPECT_FALSE(r.mean().has_value());
    EXPECT_FALSE(r.p99().has_value());
    EXPECT_FALSE(r.quantile(0.0).has_value());
    EXPECT_FALSE(r.max().has_value());
}

TEST(LatencyRecorder, QuantileRangeChecked)
{
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(1.0));
    EXPECT_THROW(r.quantile(1.5), std::invalid_argument);
    EXPECT_THROW(r.quantile(-0.1), std::invalid_argument);
}

TEST(LatencyRecorder, RecordingAfterQuantileKeepsSorted)
{
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(5.0));
    r.record(1.0, Seconds::from_micros(1.0));
    EXPECT_NEAR(r.p50()->micros(), 1.0, 1e-12);
    r.record(1.0, Seconds::from_micros(0.5));
    EXPECT_NEAR(r.quantile(0.0)->micros(), 0.5, 1e-12);
}

TEST(LatencyRecorder, SingleSampleQuantiles)
{
    // n = 1: rank max(1, ceil(q)) is 1 for every q in [0, 1] — the lone
    // sample is simultaneously min, median, and max.
    LatencyRecorder r;
    r.record(1.0, Seconds::from_micros(7.0));
    EXPECT_NEAR(r.quantile(0.0)->micros(), 7.0, 1e-12);
    EXPECT_NEAR(r.quantile(0.5)->micros(), 7.0, 1e-12);
    EXPECT_NEAR(r.quantile(1.0)->micros(), 7.0, 1e-12);
}

TEST(WindowedCounter, CountsOnlyInsideMeasurementWindow)
{
    WindowedCounter c(10.0);
    c.record(5.0);  // warmup
    c.record(10.0); // exactly at the boundary: still warmup
    EXPECT_EQ(c.count(), 0u);
    c.record(10.0 + 1e-9);
    c.record(20.0);
    EXPECT_EQ(c.count(), 2u);
}

TEST(WindowedCounter, ZeroWarmupCountsEverythingPositive)
{
    WindowedCounter c;
    c.record(0.0); // the boundary itself is excluded even at warmup 0
    c.record(1e-12);
    EXPECT_EQ(c.count(), 1u);
}

TEST(ThroughputMeter, RatesOverMeasurementWindow)
{
    ThroughputMeter m(1.0);
    m.record(0.5, Bytes{1000.0}); // warmup, dropped
    m.record(1.5, Bytes{1250.0});
    m.record(2.0, Bytes{1250.0});
    // 2500 B over the (1.0, 3.0] window = 1250 B/s = 10 kbit/s.
    EXPECT_NEAR(m.bandwidth(3.0).bits_per_sec(), 10000.0, 1e-9);
    EXPECT_NEAR(m.rate(3.0).per_sec(), 1.0, 1e-12);
    EXPECT_EQ(m.requests(), 2u);
    EXPECT_DOUBLE_EQ(m.total().bytes(), 2500.0);
}

TEST(ThroughputMeter, WarmupBoundaryInstantIsExcluded)
{
    ThroughputMeter m(1.0);
    m.record(1.0, Bytes{1000.0}); // exactly at the boundary: warmup
    EXPECT_EQ(m.requests(), 0u);
    m.record(1.0 + 1e-9, Bytes{1000.0});
    EXPECT_EQ(m.requests(), 1u);
}

TEST(ThroughputMeter, DegenerateWindowIsZero)
{
    ThroughputMeter m(5.0);
    m.record(6.0, Bytes{100.0});
    EXPECT_DOUBLE_EQ(m.bandwidth(5.0).bits_per_sec(), 0.0);
    EXPECT_DOUBLE_EQ(m.rate(4.0).per_sec(), 0.0);
}

} // namespace
} // namespace lognic::sim
