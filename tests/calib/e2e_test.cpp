/**
 * @file
 * End-to-end calibration: DES-generate measurements from the true
 * LiquidIO CN2360 catalog, warp the catalog, and check the calibrator
 * recovers a catalog that generalizes to held-out workloads — the ISSUE's
 * round-trip acceptance criterion — with bit-identical reports across
 * thread counts and demonstrable cache effectiveness.
 */
#include <gtest/gtest.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/calib/calibrator.hpp"

namespace lognic::calib {
namespace {

struct RoundTrip {
    Dataset data;
    ParameterSpace space;
    solver::Vector x_true;
};

/// DES measurements from the true catalog + a 2.0x/0.5x-warped base.
RoundTrip
liquidio_round_trip()
{
    const auto sc =
        apps::make_inline_accel(devices::LiquidIoKernel::kMd5, 16);

    GenerationSpec gen;
    gen.rates_gbps = {4.0, 8.0, 14.0, 20.0};
    gen.packet_sizes_bytes = {512.0, 1024.0};
    gen.root_seed = 11;
    gen.threads = 4;
    gen.sim.duration = 0.002;

    const core::TrafficProfile base = core::TrafficProfile::fixed(
        Bytes{1024}, devices::liquidio_line_rate());
    Dataset data = generate_dataset(sc.hw, sc.graph, base, gen);

    Candidate truth{sc.hw, {sc.graph}};
    ParameterSpace probe(truth);
    probe.add("ip.md5.fixed_cost_us");
    probe.add("ip.cores-md5.fixed_cost_us");
    const solver::Vector x_true = probe.initial();
    const Candidate warped =
        probe.apply({x_true[0] * 2.0, x_true[1] * 0.5});

    ParameterSpace space(warped);
    space.add("ip.md5.fixed_cost_us");
    space.add("ip.cores-md5.fixed_cost_us");
    return RoundTrip{std::move(data), std::move(space), x_true};
}

CalibratorOptions
round_trip_options()
{
    CalibratorOptions opts;
    opts.fit.backend = Backend::kLeastSquares;
    opts.fit.starts = 2;
    opts.fit.seed = 11;
    opts.loss.throughput_weight = 1.0;
    opts.loss.latency_weight = 0.25;
    opts.holdout_fraction = 0.25;
    return opts;
}

TEST(CalibEndToEnd, RecoversLiquidIoCatalogWithinTenPercentOnHoldout)
{
    const RoundTrip rt = liquidio_round_trip();
    obs::MetricsRegistry metrics;
    const Calibrator calibrator(rt.space, rt.data, round_trip_options());
    const CalibrationReport report = calibrator.fit(&metrics);

    // The acceptance criterion: the fitted catalog predicts held-out
    // workloads within 10% mean relative throughput error.
    ASSERT_GT(report.holdout_error.observations, 0u);
    EXPECT_LT(report.holdout_error.throughput, 0.10)
        << render(report);
    EXPECT_LT(report.train_error.throughput, 0.10);
    EXPECT_LT(report.best_loss, report.initial_loss);

    // The warped MD5 engine cost (the parameter the data pins down
    // hardest) must come back near its true value.
    ASSERT_EQ(report.fitted.size(), 2u);
    EXPECT_NEAR(report.fitted[0] / rt.x_true[0], 1.0, 0.15);

    // Cache effectiveness is part of the contract, not incidental.
    EXPECT_GT(report.cache_hits, 0u);
    EXPECT_GT(report.model_solves, 0u);

    // The report carries a reloadable catalog.
    EXPECT_TRUE(report.fitted_hardware.contains("name"));

    // Convergence and goodness-of-fit reached the metrics registry.
    const obs::MetricsSnapshot snap = metrics.snapshot();
    EXPECT_EQ(snap.counter_or_zero("calib.model_solves"),
              report.model_solves);
    EXPECT_EQ(snap.counter_or_zero("calib.cache.hits"), report.cache_hits);
    EXPECT_NEAR(snap.gauge_or("calib.loss.best"), report.best_loss, 1e-12);
    EXPECT_GT(snap.gauge_or("calib.convergence.evaluations"), 0.0);
    EXPECT_TRUE(snap.histograms.count("calib.residual.abs_rel_throughput_error"));
}

TEST(CalibEndToEnd, ReportJsonIsBitIdenticalAcrossThreadCounts)
{
    const RoundTrip rt = liquidio_round_trip();

    CalibratorOptions serial = round_trip_options();
    serial.fit.threads = 1;
    CalibratorOptions parallel = round_trip_options();
    parallel.fit.threads = 8;

    const CalibrationReport a =
        Calibrator(rt.space, rt.data, serial).fit();
    const CalibrationReport b =
        Calibrator(rt.space, rt.data, parallel).fit();
    EXPECT_EQ(to_json(a).dump(), to_json(b).dump());
}

TEST(CalibEndToEnd, KFoldCrossValidationReportsEveryFold)
{
    const RoundTrip rt = liquidio_round_trip();
    CalibratorOptions opts = round_trip_options();
    opts.holdout_fraction = 0.0;
    opts.k_folds = 3;

    const CalibrationReport report =
        Calibrator(rt.space, rt.data, opts).fit();
    ASSERT_EQ(report.folds.size(), 3u);
    for (const auto& fold : report.folds) {
        EXPECT_FALSE(fold.failed) << fold.message;
        EXPECT_LT(fold.validation_error, 0.25) << "fold " << fold.fold;
    }
}

TEST(CalibEndToEnd, CalibratorValidatesItsInputs)
{
    const RoundTrip rt = liquidio_round_trip();

    // Empty dataset.
    EXPECT_THROW(Calibrator(rt.space, Dataset{}, round_trip_options()),
                 std::invalid_argument);

    // Observation referencing a graph the candidate does not carry.
    Dataset bad = rt.data;
    Observation stray = rt.data.observation(0);
    stray.graph_index = 3;
    bad.add(stray);
    EXPECT_THROW(Calibrator(rt.space, bad, round_trip_options()),
                 std::invalid_argument);

    // k_folds == 1 is meaningless (use 0 to disable).
    CalibratorOptions one_fold = round_trip_options();
    one_fold.k_folds = 1;
    EXPECT_THROW(Calibrator(rt.space, rt.data, one_fold),
                 std::invalid_argument);
}

} // namespace
} // namespace lognic::calib
