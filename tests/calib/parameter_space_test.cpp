/**
 * @file
 * ParameterSpace: path grammar, default bounds, apply/extract symmetry,
 * and the error taxonomy for malformed parameter definitions.
 */
#include <gtest/gtest.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/calib/parameter_space.hpp"

namespace lognic::calib {
namespace {

Candidate
crc_candidate()
{
    const auto sc =
        apps::make_inline_accel(devices::LiquidIoKernel::kCrc, 4);
    return Candidate{sc.hw, {sc.graph}};
}

TEST(CalibParameterSpace, HardwarePathsReadTheCatalog)
{
    ParameterSpace space(crc_candidate());
    space.add("interface_gbps");
    space.add("memory_gbps");
    space.add("line_rate_gbps");
    space.add("ip.crc.fixed_cost_us");
    space.add("ip.cores-crc.byte_rate_gbps");
    space.add("ip.crc.ceiling.cmi.gbps");

    const solver::Vector x = space.initial();
    ASSERT_EQ(x.size(), 6u);
    EXPECT_NEAR(x[0], 40.0, 1e-9); // I/O interconnect
    EXPECT_NEAR(x[1], 50.0, 1e-9); // CMI
    EXPECT_NEAR(x[2], 25.0, 1e-9); // 25 GbE
    EXPECT_NEAR(x[3], 1.0 / 2.8, 1e-6); // 2.8 Mops CRC engine
    EXPECT_NEAR(x[5], 50.0, 1e-9); // the CMI feed ceiling
}

TEST(CalibParameterSpace, DefaultBoundsBracketTheBaseValue)
{
    ParameterSpace space(crc_candidate());
    space.add("memory_gbps");
    const solver::Bounds b = space.bounds();
    ASSERT_EQ(b.lower.size(), 1u);
    EXPECT_NEAR(b.lower[0], 50.0 / 8.0, 1e-9);
    EXPECT_NEAR(b.upper[0], 50.0 * 8.0, 1e-9);
}

TEST(CalibParameterSpace, ApplyAndExtractAreInverses)
{
    ParameterSpace space(crc_candidate());
    space.add("ip.crc.fixed_cost_us");
    space.add("memory_gbps");
    space.add("graph.0.vertex.nic-cores.overhead_us", 0.0, 5.0);

    const solver::Vector x{0.75, 33.0, 1.25};
    const Candidate applied = space.apply(x);
    const solver::Vector back = space.extract(applied);
    ASSERT_EQ(back.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(back[i], x[i], 1e-9) << space.parameter(i).name;

    // apply() must not disturb the stored base.
    EXPECT_NEAR(space.initial()[1], 50.0, 1e-9);
    // The mutation is visible in the candidate's catalog itself.
    EXPECT_NEAR(applied.hw.memory_bandwidth().gbps(), 33.0, 1e-9);
}

TEST(CalibParameterSpace, ScalesNeverCollapseToZero)
{
    ParameterSpace space(crc_candidate());
    space.add("graph.0.vertex.nic-cores.overhead_us", 0.0, 5.0);
    const solver::Vector s = space.scales();
    ASSERT_EQ(s.size(), 1u);
    EXPECT_GT(s[0], 0.0); // base overhead is 0; the span keeps scale alive
}

TEST(CalibParameterSpace, FindLocatesParametersByName)
{
    ParameterSpace space(crc_candidate());
    space.add("memory_gbps");
    space.add("interface_gbps");
    ASSERT_TRUE(space.find("interface_gbps").has_value());
    EXPECT_EQ(*space.find("interface_gbps"), 1u);
    EXPECT_FALSE(space.find("line_rate_gbps").has_value());
}

TEST(CalibParameterSpace, RejectsMalformedDefinitions)
{
    ParameterSpace space(crc_candidate());
    // Unknown paths, at every level of the grammar.
    EXPECT_THROW(space.add("bogus"), std::invalid_argument);
    EXPECT_THROW(space.add("ip.nosuch.fixed_cost_us"),
                 std::invalid_argument);
    EXPECT_THROW(space.add("ip.crc.nosuch_field"), std::invalid_argument);
    EXPECT_THROW(space.add("ip.crc.ceiling.nosuch.gbps"),
                 std::invalid_argument);
    EXPECT_THROW(space.add("graph.7.vertex.nic-cores.overhead_us"),
                 std::invalid_argument);
    EXPECT_THROW(space.add("graph.0.vertex.nosuch.overhead_us"),
                 std::invalid_argument);

    // Duplicates.
    space.add("memory_gbps");
    EXPECT_THROW(space.add("memory_gbps"), std::invalid_argument);

    // Default bounds around a zero base would collapse.
    EXPECT_THROW(space.add("graph.0.vertex.nic-cores.overhead_us"),
                 std::invalid_argument);

    // Inverted or negative explicit bounds.
    EXPECT_THROW(space.add("interface_gbps", 50.0, 10.0),
                 std::invalid_argument);
    EXPECT_THROW(space.add("interface_gbps", -5.0, 10.0),
                 std::invalid_argument);
}

TEST(CalibParameterSpace, ApplyRejectsSizeMismatch)
{
    ParameterSpace space(crc_candidate());
    space.add("memory_gbps");
    EXPECT_THROW(space.apply({1.0, 2.0}), std::invalid_argument);
}

} // namespace
} // namespace lognic::calib
