/**
 * @file
 * Loss composition (weights, relative/absolute residuals, pseudo-Huber)
 * and the LRU evaluation cache the calibrator memoizes model solves with.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/calib/cache.hpp"
#include "lognic/calib/loss.hpp"

namespace lognic::calib {
namespace {

Observation
observation(double thpt_gbps, double mean_us, double p99_us)
{
    Observation obs;
    obs.label = "o";
    obs.traffic = core::TrafficProfile::fixed(Bytes{512},
                                              Bandwidth::from_gbps(5.0));
    obs.throughput = Bandwidth::from_gbps(thpt_gbps);
    obs.mean_latency = Seconds::from_micros(mean_us);
    obs.p99_latency = Seconds::from_micros(p99_us);
    return obs;
}

TEST(CalibLoss, HuberizeIsIdentityWhenDisabled)
{
    EXPECT_DOUBLE_EQ(huberize(0.37, 0.0), 0.37);
    EXPECT_DOUBLE_EQ(huberize(-2.5, 0.0), -2.5);
}

TEST(CalibLoss, HuberizeCompressesOutliersButKeepsSignAndCore)
{
    const double delta = 1.0;
    // Small residuals pass nearly unchanged...
    EXPECT_NEAR(huberize(0.01, delta), 0.01, 1e-5);
    // ...large ones are compressed below their input...
    EXPECT_LT(huberize(100.0, delta), 100.0);
    EXPECT_GT(huberize(100.0, delta), 0.0);
    // ...sign is preserved and the transform is odd.
    EXPECT_DOUBLE_EQ(huberize(-3.0, delta), -huberize(3.0, delta));
    // Monotone in |r|.
    EXPECT_LT(huberize(1.0, delta), huberize(2.0, delta));
}

TEST(CalibLoss, ComponentsFollowActiveWeights)
{
    LossOptions loss;
    EXPECT_EQ(components_per_observation(loss), 2u); // thpt + mean lat
    loss.p99_weight = 0.5;
    EXPECT_EQ(components_per_observation(loss), 3u);
    loss.latency_weight = 0.0;
    loss.throughput_weight = 0.0;
    EXPECT_EQ(components_per_observation(loss), 1u);
}

TEST(CalibLoss, JsonRoundTripAndValidation)
{
    LossOptions loss;
    loss.throughput_weight = 2.0;
    loss.latency_weight = 0.5;
    loss.p99_weight = 0.25;
    loss.kind = ResidualKind::kAbsolute;
    loss.huber_delta = 1.5;
    const LossOptions back = loss_from_json(to_json(loss));
    EXPECT_DOUBLE_EQ(back.throughput_weight, 2.0);
    EXPECT_DOUBLE_EQ(back.latency_weight, 0.5);
    EXPECT_DOUBLE_EQ(back.p99_weight, 0.25);
    EXPECT_EQ(back.kind, ResidualKind::kAbsolute);
    EXPECT_DOUBLE_EQ(back.huber_delta, 1.5);

    io::Json bad = to_json(loss);
    bad.set("throughput_weight", -1.0);
    EXPECT_THROW(loss_from_json(bad), std::runtime_error);

    io::Json inert = to_json(loss);
    inert.set("throughput_weight", 0.0);
    inert.set("latency_weight", 0.0);
    inert.set("p99_weight", 0.0);
    EXPECT_THROW(loss_from_json(inert), std::runtime_error);

    EXPECT_THROW(residual_kind_from_string("nope"), std::invalid_argument);
    EXPECT_EQ(residual_kind_from_string("relative"),
              ResidualKind::kRelative);
}

TEST(CalibLoss, AppendResidualsWeightsComponentsAndObservations)
{
    Prediction pred;
    pred.throughput = Bandwidth::from_gbps(6.0);
    pred.mean_latency = Seconds::from_micros(20.0);

    Observation obs = observation(5.0, 10.0, 0.0);

    LossOptions loss;
    loss.throughput_weight = 1.0;
    loss.latency_weight = 0.5;

    solver::Vector r;
    append_residuals(loss, obs, pred, r);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_NEAR(r[0], (6.0 - 5.0) / 5.0, 1e-12);
    EXPECT_NEAR(r[1], 0.5 * (20.0 - 10.0) / 10.0, 1e-12);

    // Observation weights enter as sqrt(w), so the squared loss scales
    // linearly with the weight.
    obs.weight = 4.0;
    solver::Vector rw;
    append_residuals(loss, obs, pred, rw);
    EXPECT_NEAR(rw[0], 2.0 * r[0], 1e-12);

    // Absolute residuals use canonical units (Gbps and microseconds).
    LossOptions abs = loss;
    abs.kind = ResidualKind::kAbsolute;
    obs.weight = 1.0;
    solver::Vector ra;
    append_residuals(abs, obs, pred, ra);
    EXPECT_NEAR(ra[0], 1.0, 1e-9);
    EXPECT_NEAR(ra[1], 0.5 * 10.0, 1e-9);
}

TEST(CalibLoss, PredictRunsTheAnalyticalModel)
{
    const auto sc =
        apps::make_inline_accel(devices::LiquidIoKernel::kCrc, 4);
    const Candidate cand{sc.hw, {sc.graph}};
    const Observation obs = observation(2.0, 10.0, 0.0);
    const Prediction pred = predict(cand, obs);
    EXPECT_GT(pred.throughput.gbps(), 0.0);
    EXPECT_LE(pred.throughput.gbps(), 5.0 + 1e-9); // capped by offered
    EXPECT_GT(pred.mean_latency.seconds(), 0.0);
}

TEST(CalibLoss, TotalLossIsHalfSquaredNorm)
{
    EXPECT_DOUBLE_EQ(total_loss({3.0, 4.0}), 0.5 * 25.0);
    EXPECT_DOUBLE_EQ(total_loss({}), 0.0);
}

TEST(CalibCache, LruEvictsLeastRecentlyUsed)
{
    EvalCache cache(2);
    cache.insert({1.0}, {10.0});
    cache.insert({2.0}, {20.0});
    // Touch {1.0} so {2.0} becomes the eviction victim.
    ASSERT_TRUE(cache.lookup({1.0}).has_value());
    cache.insert({3.0}, {30.0});

    EXPECT_TRUE(cache.lookup({1.0}).has_value());
    EXPECT_FALSE(cache.lookup({2.0}).has_value());
    EXPECT_TRUE(cache.lookup({3.0}).has_value());
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().hits, 3u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CalibCache, KeyIsBitExact)
{
    EvalCache cache(4);
    cache.insert({1.0}, {1.0});
    EXPECT_FALSE(cache.lookup({1.0 + 1e-15}).has_value());
    EXPECT_TRUE(cache.lookup({1.0}).has_value());
    EXPECT_NE(cache_key({0.0}), cache_key({-0.0})); // distinct bit patterns
}

TEST(CalibCache, RejectsZeroCapacity)
{
    EXPECT_THROW(EvalCache(0), std::invalid_argument);
}

TEST(CalibCache, CachedResidualsCountsModelSolvesOnce)
{
    std::size_t calls = 0;
    CachedResiduals cached(
        [&calls](const solver::Vector& x) {
            ++calls;
            return solver::Vector{x[0] - 1.0};
        },
        16);

    const auto a = cached({3.0});
    const auto b = cached({3.0});
    const auto c = cached({4.0});
    EXPECT_EQ(a, b);
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(cached.underlying_evaluations(), 2u);
    EXPECT_EQ(cached.requests(), 3u);
    EXPECT_EQ(cached.stats().hits, 1u);
    EXPECT_EQ(cached.stats().misses, 2u);
    EXPECT_EQ(c.size(), 1u);

    // Convergence trace is the running best and only improves.
    ASSERT_FALSE(cached.convergence().empty());
    for (std::size_t i = 1; i < cached.convergence().size(); ++i)
        EXPECT_LE(cached.convergence()[i], cached.convergence()[i - 1]);
}

TEST(CalibCache, SharedLruBackendPreservesHitCounts)
{
    // EvalCache now delegates to the shared io::LruCache (also the dse
    // memo backend). Replaying the same access pattern against both must
    // yield identical hit/miss/eviction counts — the extraction
    // guarantee that calibration reports are unchanged.
    EvalCache adapted(2);
    io::LruCache<solver::Vector> raw(2);
    const std::vector<solver::Vector> pattern{
        {1.0}, {2.0}, {1.0}, {3.0}, {2.0}, {3.0}, {1.0}, {1.0}, {3.0}};
    for (const auto& x : pattern) {
        if (!adapted.lookup(x).has_value())
            adapted.insert(x, x);
        if (!raw.lookup(cache_key(x)).has_value())
            raw.insert(cache_key(x), x);
    }
    EXPECT_EQ(adapted.stats().hits, raw.stats().hits);
    EXPECT_EQ(adapted.stats().misses, raw.stats().misses);
    EXPECT_EQ(adapted.stats().evictions, raw.stats().evictions);
    EXPECT_GT(adapted.stats().hits, 0u);
    EXPECT_GT(adapted.stats().evictions, 0u);
    EXPECT_EQ(adapted.size(), raw.size());
}

} // namespace
} // namespace lognic::calib
