/**
 * @file
 * The generic fit engine (fit_residuals): backend coverage, multi-start
 * determinism across thread counts, cache effectiveness, and failure
 * semantics — plus CalibrationReport serialization and rendering.
 */
#include <cmath>
#include <gtest/gtest.h>

#include "lognic/calib/calibrator.hpp"

namespace lognic::calib {
namespace {

/// Residuals whose least-squares optimum is (2, 0.5) inside the box.
FitProblem
quadratic_problem()
{
    FitProblem p;
    p.residuals = [](const solver::Vector& x) {
        return solver::Vector{x[0] - 2.0, 3.0 * (x[1] - 0.5)};
    };
    p.x0 = {0.5, 0.1};
    p.bounds.lower = {0.0, 0.0};
    p.bounds.upper = {10.0, 10.0};
    return p;
}

TEST(CalibBackend, StringsRoundTrip)
{
    for (Backend b : {Backend::kLeastSquares, Backend::kNelderMead,
                      Backend::kAnnealing})
        EXPECT_EQ(backend_from_string(to_string(b)), b);
    EXPECT_THROW(backend_from_string("gradient_descent"),
                 std::invalid_argument);
}

TEST(CalibFitEngine, EveryBackendRecoversTheQuadraticOptimum)
{
    for (Backend b : {Backend::kLeastSquares, Backend::kNelderMead,
                      Backend::kAnnealing}) {
        FitOptions opts;
        opts.backend = b;
        opts.starts = 2;
        const FitOutcome fit = fit_residuals(quadratic_problem(), opts);
        EXPECT_NEAR(fit.x[0], 2.0, 1e-2) << to_string(b);
        EXPECT_NEAR(fit.x[1], 0.5, 1e-2) << to_string(b);
        EXPECT_LT(fit.loss, 1e-3) << to_string(b);
        ASSERT_EQ(fit.starts.size(), 2u) << to_string(b);
        EXPECT_EQ(fit.residuals.size(), 2u) << to_string(b);
    }
}

TEST(CalibFitEngine, CacheServesRepeatEvaluations)
{
    FitOptions opts;
    opts.starts = 3;
    const FitOutcome fit = fit_residuals(quadratic_problem(), opts);
    // Priming at x0 plus the incumbent re-read guarantee hits; the ISSUE
    // acceptance criterion is that memoization demonstrably reduces model
    // solves.
    EXPECT_GT(fit.cache_hits(), 0u);
    EXPECT_GT(fit.model_solves(), 0u);
    EXPECT_EQ(fit.model_solves(), fit.cache_misses());
    for (const auto& s : fit.starts) {
        EXPECT_GE(s.cache_hits, 1u) << "start " << s.index;
        EXPECT_LT(s.final_loss, s.initial_loss + 1e-12);
    }
    // The winning trace is monotone non-increasing.
    ASSERT_FALSE(fit.convergence.empty());
    for (std::size_t i = 1; i < fit.convergence.size(); ++i)
        EXPECT_LE(fit.convergence[i], fit.convergence[i - 1]);
}

TEST(CalibFitEngine, BitIdenticalAcrossThreadCounts)
{
    FitOptions serial;
    serial.starts = 6;
    serial.threads = 1;
    FitOptions parallel = serial;
    parallel.threads = 8;

    const FitOutcome a = fit_residuals(quadratic_problem(), serial);
    const FitOutcome b = fit_residuals(quadratic_problem(), parallel);

    ASSERT_EQ(a.x.size(), b.x.size());
    for (std::size_t i = 0; i < a.x.size(); ++i)
        EXPECT_EQ(a.x[i], b.x[i]); // bit-identical, not merely close
    EXPECT_EQ(a.loss, b.loss);
    EXPECT_EQ(a.convergence, b.convergence);
    ASSERT_EQ(a.starts.size(), b.starts.size());
    for (std::size_t i = 0; i < a.starts.size(); ++i) {
        EXPECT_EQ(a.starts[i].seed, b.starts[i].seed);
        EXPECT_EQ(a.starts[i].final_loss, b.starts[i].final_loss);
        EXPECT_EQ(a.starts[i].cache_hits, b.starts[i].cache_hits);
        EXPECT_EQ(a.starts[i].model_solves, b.starts[i].model_solves);
    }
}

TEST(CalibFitEngine, ValidatesItsInputs)
{
    FitOptions opts;
    FitProblem empty;
    EXPECT_THROW(fit_residuals(empty, opts), std::invalid_argument);

    FitProblem ok = quadratic_problem();
    opts.starts = 0;
    EXPECT_THROW(fit_residuals(ok, opts), std::invalid_argument);

    // Annealing needs a finite box to discretize.
    FitProblem unbounded = quadratic_problem();
    unbounded.bounds = {};
    FitOptions anneal;
    anneal.backend = Backend::kAnnealing;
    EXPECT_THROW(fit_residuals(unbounded, anneal), std::invalid_argument);
}

TEST(CalibFitEngine, SurvivesPartialStartFailures)
{
    // Starts away from x0 land in the poisoned region and throw; start 0
    // (at x0) succeeds. run_guarded semantics: the fit still wins.
    FitProblem p = quadratic_problem();
    p.residuals = [](const solver::Vector& x) {
        if (x[0] > 4.0)
            throw std::runtime_error("poisoned region");
        return solver::Vector{x[0] - 2.0, 3.0 * (x[1] - 0.5)};
    };
    FitOptions opts;
    opts.starts = 8;
    const FitOutcome fit = fit_residuals(p, opts);
    EXPECT_NEAR(fit.x[0], 2.0, 1e-3);
    std::size_t failed = 0;
    for (const auto& s : fit.starts) {
        if (s.failed) {
            ++failed;
            EXPECT_NE(s.message.find("poisoned"), std::string::npos);
        }
    }
    EXPECT_GT(failed, 0u);
    EXPECT_LT(failed, fit.starts.size());
}

TEST(CalibFitEngine, ThrowsWhenEveryStartFails)
{
    FitProblem p = quadratic_problem();
    p.residuals = [](const solver::Vector&) -> solver::Vector {
        throw std::runtime_error("device unreachable");
    };
    FitOptions opts;
    opts.starts = 3;
    EXPECT_THROW(fit_residuals(p, opts), std::runtime_error);
}

TEST(CalibReport, JsonRoundTripPreservesEveryField)
{
    CalibrationReport r;
    r.device = "unit-nic";
    r.backend = "least_squares";
    r.seed = 0xdeadbeefULL;
    r.starts = 2;
    r.parameter_names = {"a", "b"};
    r.initial = {1.0, 2.0};
    r.fitted = {1.5, 2.5};
    r.lower = {0.0, 0.0};
    r.upper = {10.0, 10.0};
    r.initial_loss = 4.0;
    r.best_loss = 0.25;
    r.converged = true;
    r.message = "gradient below tolerance";
    r.train_error = {7, 0.02, 0.04, 0.06};
    r.holdout_error = {3, 0.03, 0.05, 0.08};
    r.start_outcomes.push_back(
        {0, 42, 4.0, 0.25, true, false, "ok", 11, 30, 5, 30});
    r.folds.push_back({0, 0.02, 0.05, false, ""});
    r.folds.push_back({1, 0.021, 0.2, true, "fold exploded"});
    ResidualRecord rec;
    rec.label = "p0";
    rec.holdout = true;
    rec.observed_throughput_gbps = 5.0;
    rec.predicted_throughput_gbps = 5.2;
    rec.throughput_rel_error = 0.04;
    rec.observed_latency_us = 10.0;
    rec.predicted_latency_us = 9.0;
    rec.latency_rel_error = -0.1;
    r.residuals.push_back(rec);
    r.warnings.push_back({"b", "insensitive", "norm tiny", 1e-7});
    r.cache_hits = 5;
    r.cache_misses = 30;
    r.model_solves = 30;
    r.convergence = {4.0, 1.0, 0.25};
    r.fitted_hardware.set("name", std::string("unit-nic"));

    const CalibrationReport back = report_from_json(to_json(r));
    // Byte-identical re-serialization is the strongest round-trip check
    // (io::Json objects dump deterministically).
    EXPECT_EQ(to_json(back).dump(), to_json(r).dump());
    EXPECT_EQ(back.seed, 0xdeadbeefULL);
    EXPECT_EQ(back.parameter_names, r.parameter_names);
    ASSERT_EQ(back.folds.size(), 2u);
    EXPECT_TRUE(back.folds[1].failed);
    ASSERT_EQ(back.residuals.size(), 1u);
    EXPECT_TRUE(back.residuals[0].holdout);
    ASSERT_EQ(back.warnings.size(), 1u);
    EXPECT_EQ(back.warnings[0].kind, "insensitive");
}

TEST(CalibReport, RejectsInconsistentDocuments)
{
    CalibrationReport r;
    r.device = "unit-nic";
    r.parameter_names = {"a"};
    r.initial = {1.0};
    r.fitted = {1.0};
    io::Json j = to_json(r);
    j.set("fitted", io::Json{io::JsonArray{}}); // size mismatch vs names
    EXPECT_THROW(report_from_json(j), std::runtime_error);
}

TEST(CalibReport, RenderMentionsTheEssentials)
{
    CalibrationReport r;
    r.device = "render-nic";
    r.backend = "nelder_mead";
    r.starts = 1;
    r.parameter_names = {"memory_gbps"};
    r.initial = {50.0};
    r.fitted = {41.0};
    r.lower = {10.0};
    r.upper = {100.0};
    r.initial_loss = 2.0;
    r.best_loss = 0.1;
    r.converged = true;
    r.train_error = {4, 0.05, 0.02, 0.09};
    r.warnings.push_back({"memory_gbps", "at_bound", "on the face", 41.0});

    const std::string text = render(r);
    EXPECT_NE(text.find("render-nic"), std::string::npos);
    EXPECT_NE(text.find("memory_gbps"), std::string::npos);
    EXPECT_NE(text.find("nelder_mead"), std::string::npos);
    EXPECT_NE(text.find("at_bound"), std::string::npos);
}

} // namespace
} // namespace lognic::calib
