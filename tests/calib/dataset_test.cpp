/**
 * @file
 * Dataset: JSON round-trips, deterministic splitting/folding, and
 * thread-count-invariant DES generation.
 */
#include <gtest/gtest.h>

#include <set>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/calib/dataset.hpp"

namespace lognic::calib {
namespace {

Observation
sample_observation(const std::string& label, double gbps)
{
    Observation obs;
    obs.label = label;
    obs.traffic = core::TrafficProfile::fixed(Bytes{512},
                                              Bandwidth::from_gbps(gbps));
    obs.throughput = Bandwidth::from_gbps(0.9 * gbps);
    obs.mean_latency = Seconds::from_micros(12.5);
    obs.p99_latency = Seconds::from_micros(40.0);
    obs.weight = 2.0;
    return obs;
}

Dataset
sample_dataset(std::size_t n)
{
    Dataset data;
    for (std::size_t i = 0; i < n; ++i)
        data.add(sample_observation("obs-" + std::to_string(i),
                                    1.0 + static_cast<double>(i)));
    return data;
}

TEST(CalibDataset, ObservationRoundTripsThroughJson)
{
    const Observation obs = sample_observation("p42", 7.5);
    const Observation back = observation_from_json(to_json(obs));
    EXPECT_EQ(back.label, "p42");
    EXPECT_EQ(back.graph_index, 0u);
    EXPECT_NEAR(back.throughput.gbps(), obs.throughput.gbps(), 1e-9);
    EXPECT_NEAR(back.mean_latency.micros(), 12.5, 1e-9);
    EXPECT_NEAR(back.p99_latency.micros(), 40.0, 1e-9);
    EXPECT_NEAR(back.weight, 2.0, 1e-12);
    EXPECT_NEAR(back.traffic.ingress_bandwidth().gbps(), 7.5, 1e-9);
}

TEST(CalibDataset, ObservationRejectsNonPositiveWeight)
{
    io::Json j = to_json(sample_observation("bad", 1.0));
    j.set("weight", 0.0);
    EXPECT_THROW(observation_from_json(j), std::runtime_error);
}

TEST(CalibDataset, DatasetRoundTripsThroughJson)
{
    const Dataset data = sample_dataset(5);
    const Dataset back = dataset_from_json(to_json(data));
    ASSERT_EQ(back.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(back.observation(i).label, data.observation(i).label);
        // The seconds<->micros conversion may cost a ULP per trip, so
        // compare values, not bytes.
        EXPECT_NEAR(back.observation(i).mean_latency.micros(),
                    data.observation(i).mean_latency.micros(), 1e-9);
        EXPECT_NEAR(back.observation(i).throughput.gbps(),
                    data.observation(i).throughput.gbps(), 1e-12);
    }
    // Serializing the same dataset twice is byte-identical (the property
    // the cross-thread determinism contract leans on).
    EXPECT_EQ(to_json(data).dump(), to_json(data).dump());
}

TEST(CalibDataset, SplitIsDeterministicAndCoversEverything)
{
    const Dataset data = sample_dataset(40);
    const auto [train_a, hold_a] = data.split(0.3, 99);
    const auto [train_b, hold_b] = data.split(0.3, 99);
    EXPECT_EQ(to_json(train_a).dump(), to_json(train_b).dump());
    EXPECT_EQ(to_json(hold_a).dump(), to_json(hold_b).dump());
    EXPECT_EQ(train_a.size() + hold_a.size(), data.size());
    EXPECT_GE(train_a.size(), 1u);
    EXPECT_GE(hold_a.size(), 1u); // 40 draws at 30% — vanishing miss odds

    // Membership is disjoint.
    std::set<std::string> seen;
    for (const auto& o : train_a.observations())
        EXPECT_TRUE(seen.insert(o.label).second);
    for (const auto& o : hold_a.observations())
        EXPECT_TRUE(seen.insert(o.label).second);
    EXPECT_EQ(seen.size(), data.size());
}

TEST(CalibDataset, SplitZeroFractionKeepsEverythingInTrain)
{
    const Dataset data = sample_dataset(6);
    const auto [train, hold] = data.split(0.0, 1);
    EXPECT_EQ(train.size(), 6u);
    EXPECT_TRUE(hold.empty());
}

TEST(CalibDataset, SplitRejectsOutOfRangeFractions)
{
    const Dataset data = sample_dataset(4);
    EXPECT_THROW(data.split(-0.1, 1), std::invalid_argument);
    EXPECT_THROW(data.split(1.0, 1), std::invalid_argument);
}

TEST(CalibDataset, KFoldsPartitionValidationSetsExactly)
{
    const Dataset data = sample_dataset(11);
    const auto folds = data.k_folds(3, 7);
    ASSERT_EQ(folds.size(), 3u);
    std::set<std::string> validated;
    for (const auto& [train, validation] : folds) {
        EXPECT_EQ(train.size() + validation.size(), data.size());
        for (const auto& o : validation.observations())
            EXPECT_TRUE(validated.insert(o.label).second)
                << o.label << " validated twice";
    }
    EXPECT_EQ(validated.size(), data.size());

    // Same seed, same folds.
    const auto again = data.k_folds(3, 7);
    for (std::size_t f = 0; f < folds.size(); ++f)
        EXPECT_EQ(to_json(folds[f].second).dump(),
                  to_json(again[f].second).dump());
}

TEST(CalibDataset, KFoldsRejectsDegenerateCounts)
{
    const Dataset data = sample_dataset(5);
    EXPECT_THROW(data.k_folds(1, 1), std::invalid_argument);
    EXPECT_THROW(data.k_folds(6, 1), std::invalid_argument);
}

TEST(CalibDataset, GenerateIsBitIdenticalAcrossThreadCounts)
{
    const auto sc =
        apps::make_inline_accel(devices::LiquidIoKernel::kCrc, 4);
    const core::TrafficProfile base = core::TrafficProfile::fixed(
        Bytes{512}, Bandwidth::from_gbps(2.0));

    GenerationSpec spec;
    spec.rates_gbps = {1.0, 2.0, 4.0};
    spec.packet_sizes_bytes = {256.0, 1024.0};
    spec.replications = 2;
    spec.root_seed = 5;
    spec.sim.duration = 0.001;

    spec.threads = 1;
    const Dataset serial = generate_dataset(sc.hw, sc.graph, base, spec);
    spec.threads = 8;
    const Dataset parallel = generate_dataset(sc.hw, sc.graph, base, spec);

    ASSERT_EQ(serial.size(), 6u);
    EXPECT_EQ(to_json(serial).dump(), to_json(parallel).dump());
    for (const auto& obs : serial.observations()) {
        EXPECT_GT(obs.throughput.gbps(), 0.0) << obs.label;
        EXPECT_GT(obs.mean_latency.seconds(), 0.0) << obs.label;
    }
}

TEST(CalibDataset, GenerateKeepsBaseProfileWhenAxesAreEmpty)
{
    const auto sc =
        apps::make_inline_accel(devices::LiquidIoKernel::kCrc, 4);
    const core::TrafficProfile base = core::TrafficProfile::fixed(
        Bytes{512}, Bandwidth::from_gbps(2.0));

    GenerationSpec spec;
    spec.sim.duration = 0.001;
    const Dataset data = generate_dataset(sc.hw, sc.graph, base, spec);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_NEAR(data.observation(0).traffic.ingress_bandwidth().gbps(),
                2.0, 1e-12);
}

TEST(CalibDataset, GenerateRejectsBadSpecs)
{
    const auto sc =
        apps::make_inline_accel(devices::LiquidIoKernel::kCrc, 4);
    const core::TrafficProfile base;

    GenerationSpec spec;
    spec.replications = 0;
    EXPECT_THROW(generate_dataset(sc.hw, sc.graph, base, spec),
                 std::invalid_argument);

    spec.replications = 1;
    spec.rates_gbps = {-1.0};
    EXPECT_THROW(generate_dataset(sc.hw, sc.graph, base, spec),
                 std::invalid_argument);

    spec.rates_gbps = {1.0};
    spec.packet_sizes_bytes = {0.0};
    EXPECT_THROW(generate_dataset(sc.hw, sc.graph, base, spec),
                 std::invalid_argument);
}

} // namespace
} // namespace lognic::calib
