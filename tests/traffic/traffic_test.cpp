#include <gtest/gtest.h>

#include "lognic/traffic/io_workload.hpp"
#include "lognic/traffic/profiles.hpp"

namespace lognic::traffic {
namespace {

TEST(Profiles, StandardPacketSizesMatchPaperSweep)
{
    const auto sizes = standard_packet_sizes();
    ASSERT_EQ(sizes.size(), 6u);
    EXPECT_DOUBLE_EQ(sizes.front().bytes(), 64.0);
    EXPECT_DOUBLE_EQ(sizes.back().bytes(), 1500.0);
}

TEST(Profiles, EqualByteMixSplitsBandwidthEqually)
{
    const auto p = equal_byte_mix({Bytes{64.0}, Bytes{512.0}},
                                  Bandwidth::from_gbps(10.0));
    ASSERT_EQ(p.classes().size(), 2u);
    EXPECT_DOUBLE_EQ(p.classes()[0].weight, 0.5);
    EXPECT_DOUBLE_EQ(p.classes()[1].weight, 0.5);
}

TEST(Profiles, PanicProfilesMatchPaperCompositions)
{
    const Bandwidth bw = Bandwidth::from_gbps(1.0);
    EXPECT_EQ(panic_profile(1, bw).classes().size(), 2u);
    EXPECT_EQ(panic_profile(2, bw).classes().size(), 3u);
    EXPECT_EQ(panic_profile(3, bw).classes().size(), 4u);
    EXPECT_EQ(panic_profile(4, bw).classes().size(), 5u);
    EXPECT_THROW(panic_profile(0, bw), std::invalid_argument);
    EXPECT_THROW(panic_profile(5, bw), std::invalid_argument);
    // Profile 3 contains a 1500 B flow, profile 2 does not.
    const auto p3 = panic_profile(3, bw);
    bool has_mtu = false;
    for (const auto& c : p3.classes())
        has_mtu |= c.size.bytes() == 1500.0;
    EXPECT_TRUE(has_mtu);
}

TEST(IoWorkloads, NamedWorkloadsMatchPaper)
{
    const auto rrd4 = random_read_4k();
    EXPECT_EQ(rrd4.name, "4KB-RRD");
    EXPECT_DOUBLE_EQ(rrd4.block_size.bytes(), 4096.0);
    EXPECT_DOUBLE_EQ(rrd4.read_fraction, 1.0);
    EXPECT_TRUE(rrd4.random);

    const auto rrd128 = random_read_128k();
    EXPECT_DOUBLE_EQ(rrd128.block_size.kib(), 128.0);

    const auto swr4 = sequential_write_4k();
    EXPECT_DOUBLE_EQ(swr4.read_fraction, 0.0);
    EXPECT_FALSE(swr4.random);
}

TEST(IoWorkloads, MixedValidatesRatio)
{
    EXPECT_THROW(random_mixed_4k(-0.1), std::invalid_argument);
    EXPECT_THROW(random_mixed_4k(1.1), std::invalid_argument);
    EXPECT_DOUBLE_EQ(random_mixed_4k(0.7).read_fraction, 0.7);
}

} // namespace
} // namespace lognic::traffic
