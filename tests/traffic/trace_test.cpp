#include "lognic/traffic/trace.hpp"

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::traffic {
namespace {

TEST(PacketTrace, MeanBandwidthFromSizesAndRate)
{
    PacketTrace trace;
    trace.sizes = {Bytes{500.0}, Bytes{1500.0}};
    trace.mean_rate = OpsRate{1e6}; // 1 Mpps of 1000 B mean
    EXPECT_NEAR(trace.mean_bandwidth().gbps(), 8.0, 1e-9);
    EXPECT_DOUBLE_EQ(PacketTrace{}.mean_bandwidth().bits_per_sec(), 0.0);
}

TEST(PacketTrace, SynthesisMatchesProfileStatistics)
{
    const auto profile = core::TrafficProfile::mixed(
        {{Bytes{64.0}, 0.5}, {Bytes{1500.0}, 0.5}},
        Bandwidth::from_gbps(10.0));
    const auto trace = synthesize_trace(profile, 20000, 7);
    ASSERT_EQ(trace.sizes.size(), 20000u);
    // The trace's mean bandwidth reproduces the profile's offered load.
    EXPECT_NEAR(trace.mean_bandwidth().gbps(), 10.0, 0.4);
    // Byte split is ~50/50.
    double small_bytes = 0.0;
    double total = 0.0;
    for (Bytes s : trace.sizes) {
        total += s.bytes();
        if (s.bytes() == 64.0)
            small_bytes += s.bytes();
    }
    EXPECT_NEAR(small_bytes / total, 0.5, 0.03);
}

TEST(PacketTrace, SynthesisDeterministicPerSeed)
{
    const auto profile = core::TrafficProfile::fixed(
        Bytes{512.0}, Bandwidth::from_gbps(1.0));
    const auto a = synthesize_trace(profile, 100, 3);
    const auto b = synthesize_trace(profile, 100, 3);
    EXPECT_EQ(a.sizes.size(), b.sizes.size());
    for (std::size_t i = 0; i < a.sizes.size(); ++i)
        EXPECT_DOUBLE_EQ(a.sizes[i].bytes(), b.sizes[i].bytes());
}

TEST(HistogramProfile, RoundTripsSynthesizedTrace)
{
    const auto profile = core::TrafficProfile::mixed(
        {{Bytes{64.0}, 0.3}, {Bytes{512.0}, 0.3}, {Bytes{1500.0}, 0.4}},
        Bandwidth::from_gbps(6.0));
    const auto trace = synthesize_trace(profile, 50000, 11);
    const auto back = histogram_profile(trace);
    ASSERT_EQ(back.classes().size(), 3u);
    EXPECT_NEAR(back.ingress_bandwidth().gbps(), 6.0, 0.3);
    // Weights recover within sampling noise.
    for (const auto& c : back.classes()) {
        for (const auto& orig : profile.classes()) {
            if (orig.size.bytes() == c.size.bytes()) {
                EXPECT_NEAR(c.weight, orig.weight, 0.04);
            }
        }
    }
}

TEST(HistogramProfile, Validation)
{
    EXPECT_THROW(histogram_profile(PacketTrace{}), std::invalid_argument);
    PacketTrace no_rate;
    no_rate.sizes = {Bytes{64.0}};
    EXPECT_THROW(histogram_profile(no_rate), std::invalid_argument);
    PacketTrace too_many;
    too_many.mean_rate = OpsRate{1.0};
    for (int i = 1; i <= 30; ++i)
        too_many.sizes.push_back(Bytes{64.0 * i});
    EXPECT_THROW(histogram_profile(too_many, 16), std::invalid_argument);
}

TEST(TraceReplay, DeliveredMatchesModelOnHistogram)
{
    const auto hw = test::small_nic();
    const auto g = test::single_stage_graph(hw);
    const auto profile = core::TrafficProfile::mixed(
        {{Bytes{256.0}, 0.4}, {Bytes{1500.0}, 0.6}},
        Bandwidth::from_gbps(5.0));
    const auto trace = synthesize_trace(profile, 100000, 5);

    sim::SimOptions opts;
    opts.duration = 0.05;
    const auto res = sim::simulate_trace(hw, g, trace, opts);
    const auto rep =
        core::Model(hw).throughput(g, histogram_profile(trace));
    EXPECT_NEAR(res.delivered.gbps(), rep.achieved.gbps(),
                0.08 * rep.achieved.gbps() + 0.1);
    EXPECT_GT(res.completed, 1000u);
}

TEST(TraceReplay, PreservesRecordedOrderEffects)
{
    // An adversarial trace: long runs of MTU packets then runs of mice.
    // Replay must produce both classes; the histogram view is identical
    // to a shuffled trace, but replay keeps the pattern (observable as a
    // heavier tail than a well-mixed arrival order would give).
    const auto hw = test::small_nic();
    core::VertexParams p;
    p.parallelism = 1;
    const auto g = test::single_stage_graph(hw, p);

    PacketTrace runs;
    for (int block = 0; block < 50; ++block) {
        for (int i = 0; i < 100; ++i)
            runs.sizes.push_back(Bytes{1500.0});
        for (int i = 0; i < 100; ++i)
            runs.sizes.push_back(Bytes{64.0});
    }
    runs.mean_rate = OpsRate{780000.0}; // MTU runs transiently overload
    runs.poisson = false; // paced: isolate the ordering effect

    PacketTrace mixed = runs;
    // Interleave perfectly.
    mixed.sizes.clear();
    for (int i = 0; i < 5000; ++i) {
        mixed.sizes.push_back(Bytes{1500.0});
        mixed.sizes.push_back(Bytes{64.0});
    }

    sim::SimOptions opts;
    opts.duration = 0.1;
    opts.exponential_service = false;
    const auto bursty = sim::simulate_trace(hw, g, runs, opts);
    const auto smooth = sim::simulate_trace(hw, g, mixed, opts);
    // Long MTU runs overload the single engine transiently: worse tail.
    EXPECT_GT(bursty.p99_latency.seconds(), smooth.p99_latency.seconds());
}

} // namespace
} // namespace lognic::traffic
