/**
 * @file
 * Parameter catalog for the Broadcom Stingray PS1100R SmartNIC JBOF (case
 * study #2, S4.3): 100 GbE NetXtreme NIC, 8x 3.0 GHz ARM A72 cores, 8 GB
 * DDR4, FlexSPARX accelerators, NVMe SSD attached over PCIe.
 *
 * The NVMe-oF (NVMe-over-RDMA) target program splits across two core
 * stages — submission-path handling (RDMA receive + NVMe command
 * fabrication) and completion-path handling (response build + RDMA send) —
 * around an opaque SSD IP calibrated by curve fitting (lognic/ssd).
 */
#ifndef LOGNIC_DEVICES_STINGRAY_HPP_
#define LOGNIC_DEVICES_STINGRAY_HPP_

#include "lognic/core/hardware_model.hpp"

namespace lognic::devices {

/**
 * Base hardware model: 100 GbE line rate, SoC interconnect 200 Gbps
 * (interface), DDR4 150 Gbps (memory), with two core IPs registered:
 * "cores-submit" (submission path) and "cores-complete" (completion path).
 * The SSD IP is workload-calibrated; add it via HardwareModel::add_ip with
 * ssd::CalibratedSsd::to_ip_spec.
 */
core::HardwareModel stingray_ps1100r();

/// PCIe link bandwidth between the SoC and the SSD (dedicated edge BW_mn).
Bandwidth stingray_ssd_link();

/// Per-I/O core cost of the NVMe-oF submission path.
Seconds stingray_submit_cost();

/// Per-I/O core cost of the NVMe-oF completion path.
Seconds stingray_complete_cost();

} // namespace lognic::devices

#endif // LOGNIC_DEVICES_STINGRAY_HPP_
