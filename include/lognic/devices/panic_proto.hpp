/**
 * @file
 * Parameter catalog for the PANIC academic prototype (case study #5, S4.6).
 *
 * Provides (a) defaults for the credit-scheduler simulator (sim/panic.hpp)
 * matching the prototype's 100 Gbps switching fabric, and (b) a generic
 * HardwareModel exposing four configurable compute units as IPs for the
 * Model-2/Model-3 experiments (Figures 16-19).
 */
#ifndef LOGNIC_DEVICES_PANIC_PROTO_HPP_
#define LOGNIC_DEVICES_PANIC_PROTO_HPP_

#include "lognic/core/hardware_model.hpp"
#include "lognic/sim/panic.hpp"

namespace lognic::devices {

/// Fabric/RMT defaults for the PANIC prototype.
sim::PanicConfig panic_defaults();

/**
 * A compute unit as a PanicUnit: per-engine op cost @p fixed, streaming
 * rate @p stream, with @p parallelism engines and @p credits buffer slots.
 */
sim::PanicUnit panic_unit(const std::string& name, Seconds fixed,
                          Bandwidth stream, std::uint32_t parallelism = 1,
                          std::uint32_t credits = 8);

/**
 * Hardware model for the Model-2 "Parallelized Chain" scenario: three
 * accelerators A1/A2/A3 whose computing-throughput ratio is the paper's
 * 4:7:3 (40/70/30 Gbps at MTU).
 */
core::HardwareModel panic_parallel_chain_hw();

/**
 * Hardware model for the modified Model-3 scenario of Figures 18/19: four
 * units; IP4's parallelism is the swept knob (up to 8 engines of
 * 11.5 Gbps each).
 */
core::HardwareModel panic_hybrid_chain_hw();

} // namespace lognic::devices

#endif // LOGNIC_DEVICES_PANIC_PROTO_HPP_
