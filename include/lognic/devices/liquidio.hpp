/**
 * @file
 * Parameter catalog for the Marvell LiquidIO-II CN2360 SmartNIC (paper
 * Figure 8; case studies #1 and #3).
 *
 * Physical card: 25 GbE, 16x 1.5 GHz cnMIPS cores, 4 GB DRAM, on-chip
 * crypto units (CRC, MD5, 3DES, AES, SMS4, KASUMI, SHA-1) fed by the
 * coherent memory interconnect (CMI, 50 Gbps), and off-chip HFA and ZIP
 * engines fed by the I/O interconnect (40 Gbps).
 *
 * Calibration (documented in DESIGN.md S5): accelerator op rates are
 * derived from the paper's Figure 5 statement that at 16 KB access
 * granularity CRC/3DES/MD5/HFA reach 13.6/17.3/21.2/25.8% of their peak —
 * i.e. peak = ceiling_bw / 16KiB / fraction. NIC-core per-request costs for
 * each offload kernel are chosen so that MD5/KASUMI/HFA saturate at the
 * paper's 9/8/11 cores under MTU line rate (Figure 9).
 */
#ifndef LOGNIC_DEVICES_LIQUIDIO_HPP_
#define LOGNIC_DEVICES_LIQUIDIO_HPP_

#include <string>
#include <vector>

#include "lognic/core/hardware_model.hpp"

namespace lognic::devices {

/// Accelerator kernels available on the CN2360.
enum class LiquidIoKernel {
    kCrc,
    kMd5,
    k3Des,
    kAes,
    kSms4,
    kKasumi,
    kSha1,
    kHfa, ///< hyper finite automata (off-chip)
    kZip, ///< (de)compression (off-chip)
};

const char* to_string(LiquidIoKernel kernel);

/// All kernels, in a stable order.
std::vector<LiquidIoKernel> liquidio_kernels();

/// True for the off-chip engines (HFA, ZIP) fed by the I/O interconnect.
bool is_off_chip(LiquidIoKernel kernel);

/// Peak operation rate of an accelerator (the calibrated P_IP2).
OpsRate liquidio_accel_rate(LiquidIoKernel kernel);

/**
 * Base hardware model: 25 GbE line rate, I/O interconnect (interface,
 * 40 Gbps), CMI (memory, 50 Gbps), with one IP registered per accelerator
 * (named as to_string(kernel)).
 *
 * NIC-core IPs are scenario-specific (the per-request cost depends on the
 * offloaded kernel's orchestration); add them with add_core_ip().
 */
core::HardwareModel liquidio_cn2360();

/**
 * Register a NIC-core IP running the orchestration loop for @p kernel
 * (RX/TX processing plus accelerator prep/submission/completion handling).
 *
 * @param cores Engines exposed (up to the card's 16).
 * @return The new IP's id; its name is "cores-" + to_string(kernel).
 */
core::IpId add_core_ip(core::HardwareModel& hw, LiquidIoKernel kernel,
                       std::uint32_t cores = 16);

/// Per-request NIC-core orchestration cost for @p kernel at @p packet size.
Seconds liquidio_core_cost(LiquidIoKernel kernel, Bytes packet);

/// The card's port speed (25 GbE).
Bandwidth liquidio_line_rate();

} // namespace lognic::devices

#endif // LOGNIC_DEVICES_LIQUIDIO_HPP_
