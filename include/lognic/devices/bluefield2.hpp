/**
 * @file
 * Parameter catalog for the NVIDIA/Mellanox BlueField-2 DPU (case study #4,
 * S4.5): 100 GbE, 8x 2.5 GHz ARM A72 cores, 16 GB DRAM, and inline
 * accelerators for Crypto, RegEx, Hashing, and Connection Tracking.
 *
 * The network-function chain FW -> LB -> DPI -> NAT -> PE can place each NF
 * on the ARM complex or (except DPI) on an accelerator. Calibration keeps
 * the paper's qualitative structure: per-packet fixed costs dominate small
 * packets (so ARM placement wins at 64 B, offload prep being dearer than
 * the NF itself), streaming rates dominate MTU packets (so accelerators
 * win), and one accelerator (the hashing unit used by the LB) has a low
 * streaming ceiling so that blind "accelerator-first" placement loses at
 * large packets — the effect the LogNIC optimizer exploits.
 */
#ifndef LOGNIC_DEVICES_BLUEFIELD2_HPP_
#define LOGNIC_DEVICES_BLUEFIELD2_HPP_

#include <vector>

#include "lognic/core/hardware_model.hpp"

namespace lognic::devices {

/// The five network functions of the middlebox chain.
enum class NetworkFunction {
    kFirewall,   ///< FW: ACL / pattern match (accelerable via RegEx)
    kLoadBalancer, ///< LB: L4 hashing (accelerable via Hashing unit)
    kDpi,        ///< deep packet inspection (ARM only, per the paper)
    kNat,        ///< address translation (accelerable via ConnTrack)
    kEncryption, ///< PE: packet encryption (accelerable via Crypto)
};

const char* to_string(NetworkFunction nf);
std::vector<NetworkFunction> nf_chain_order();

/// True when the NF has a hardware-accelerated implementation.
bool nf_accelerable(NetworkFunction nf);

/// Name of the accelerator IP serving @p nf (throws for DPI).
const char* nf_accelerator(NetworkFunction nf);

/// Per-packet cost of running @p nf on one ARM core.
Seconds bf2_arm_cost(NetworkFunction nf, Bytes packet);

/// Per-packet ARM-side preparation overhead to offload @p nf (O_i).
Seconds bf2_offload_prep(NetworkFunction nf);

/**
 * Base hardware model: 100 GbE, on-chip interconnect 200 Gbps (interface),
 * DRAM 120 Gbps (memory), with the four accelerator IPs registered
 * ("regex", "hash", "conntrack", "crypto"). ARM IPs are placement-specific;
 * add them with add_arm_ip().
 */
core::HardwareModel bluefield2();

/**
 * Register an ARM-cores IP whose per-request cost is @p fixed plus payload
 * streaming for @p streamed_passes traversals of the packet.
 *
 * @return the new IP's id; name must be unique within @p hw.
 */
core::IpId add_arm_ip(core::HardwareModel& hw, const std::string& name,
                      Seconds fixed, double streamed_passes,
                      std::uint32_t cores = 8);

/// Per-core payload streaming rate of the A72 complex.
Bandwidth bf2_arm_stream_rate();

} // namespace lognic::devices

#endif // LOGNIC_DEVICES_BLUEFIELD2_HPP_
