/**
 * @file
 * Simulated annealing over integer design spaces.
 *
 * Exhaustive enumeration stops scaling past a few tens of thousands of
 * configurations (e.g. per-stage parallelism across long service chains,
 * joint placement + sizing searches). Annealing trades optimality
 * guarantees for coverage: random single-coordinate moves, Metropolis
 * acceptance, geometric cooling. Deterministic for a fixed seed.
 */
#ifndef LOGNIC_SOLVER_ANNEALING_HPP_
#define LOGNIC_SOLVER_ANNEALING_HPP_

#include <cstdint>

#include "lognic/solver/discrete.hpp"

namespace lognic::solver {

struct AnnealingOptions {
    std::size_t iterations{5000};
    double initial_temperature{1.0};
    double cooling{0.995};          ///< geometric factor per iteration
    std::uint64_t seed{1};
    /// Maximum +/- step per move, in units of the dimension's step.
    std::int64_t max_move{2};
};

/**
 * Minimize @p f over the box given by @p ranges, starting from @p x0
 * (clamped into range; empty = range lower bounds).
 *
 * Returns the best point *ever visited* (not the final state).
 */
IntSearchResult simulated_annealing(const IntObjectiveFn& f, IntVector x0,
                                    const std::vector<IntRange>& ranges,
                                    const AnnealingOptions& opts = {});

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_ANNEALING_HPP_
