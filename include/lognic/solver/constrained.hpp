/**
 * @file
 * Constrained minimization via the augmented-Lagrangian method.
 *
 * The paper uses SciPy's SLSQP; this module provides the equivalent
 * capability — minimize f(x) subject to equality and inequality constraints
 * plus box bounds — built on the in-repo BFGS/Nelder-Mead solvers. The
 * augmented-Lagrangian outer loop converts constraints into an adaptive
 * penalty with multiplier estimates, which is robust for the small, mildly
 * nonlinear problems the LogNIC optimizer produces.
 */
#ifndef LOGNIC_SOLVER_CONSTRAINED_HPP_
#define LOGNIC_SOLVER_CONSTRAINED_HPP_

#include <vector>

#include "lognic/solver/objective.hpp"

namespace lognic::solver {

/// One scalar constraint.
struct Constraint {
    enum class Type {
        kEquality,   ///< g(x) == 0
        kInequality, ///< g(x) <= 0
    };
    Type type{Type::kInequality};
    ObjectiveFn fn;
};

/// Which inner (unconstrained) solver drives the subproblems.
enum class InnerSolver {
    kBfgs,       ///< quasi-Newton; best for smooth objectives
    kNelderMead, ///< derivative-free; best for min()/kinked objectives
};

struct ConstrainedOptions {
    std::size_t max_outer_iterations{30};
    double constraint_tolerance{1e-6}; ///< max violation accepted as feasible
    double initial_penalty{10.0};
    double penalty_growth{4.0};
    InnerSolver inner{InnerSolver::kNelderMead};
    Bounds bounds{};
    std::size_t inner_max_iterations{2000};
};

/// Result including final constraint violation.
struct ConstrainedResult : SolveResult {
    double max_violation{0.0};
    bool feasible{false};
};

/// Minimize f(x) subject to @p constraints and box bounds.
ConstrainedResult minimize_constrained(
    const ObjectiveFn& f, Vector x0,
    const std::vector<Constraint>& constraints,
    const ConstrainedOptions& opts = {});

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_CONSTRAINED_HPP_
