/**
 * @file
 * Minimal dense linear algebra for the solver module.
 *
 * The optimizer and curve-fitting code only ever solve small (dimension
 * <= a few dozen) dense systems, so this is a straightforward row-major
 * matrix with LU and Cholesky factorizations — no BLAS, no expression
 * templates, no allocation tricks.
 */
#ifndef LOGNIC_SOLVER_LINALG_HPP_
#define LOGNIC_SOLVER_LINALG_HPP_

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace lognic::solver {

using Vector = std::vector<double>;

/// Dense row-major matrix.
class Matrix {
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
    /// Build from nested braces; all rows must have equal length.
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double& operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    double operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    Matrix transposed() const;
    Matrix operator*(const Matrix& rhs) const;
    Vector operator*(const Vector& v) const;
    Matrix operator+(const Matrix& rhs) const;
    Matrix& operator*=(double s);

  private:
    std::size_t rows_{0};
    std::size_t cols_{0};
    std::vector<double> data_;
};

/**
 * Solve A x = b by LU factorization with partial pivoting.
 *
 * @throws std::invalid_argument on shape mismatch.
 * @throws std::runtime_error if A is (numerically) singular.
 */
Vector solve_lu(Matrix a, Vector b);

/**
 * Solve A x = b for symmetric positive definite A via Cholesky.
 *
 * @throws std::runtime_error if A is not positive definite.
 */
Vector solve_cholesky(const Matrix& a, const Vector& b);

// --- Vector helpers ----------------------------------------------------------

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
Vector axpy(double alpha, const Vector& x, const Vector& y); ///< alpha*x + y
Vector scaled(const Vector& x, double alpha);

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_LINALG_HPP_
