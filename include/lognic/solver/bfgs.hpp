/**
 * @file
 * BFGS quasi-Newton minimizer with Armijo backtracking line search.
 *
 * The paper's SLSQP solver combines the Han-Powell quasi-Newton method with
 * BFGS updates of the B-matrix (S3.8); this module provides that quasi-Newton
 * core. Gradients are numerical (central differences) unless supplied.
 */
#ifndef LOGNIC_SOLVER_BFGS_HPP_
#define LOGNIC_SOLVER_BFGS_HPP_

#include "lognic/solver/objective.hpp"

namespace lognic::solver {

struct BfgsOptions {
    std::size_t max_iterations{500};
    double gradient_tolerance{1e-8}; ///< stop when ||grad||_inf is below this
    double step_tolerance{1e-12};    ///< stop when the step is this small
    double gradient_step{1e-6};      ///< numerical-gradient step size
    Bounds bounds{};                 ///< iterates are projected into the box
};

/// Gradient callback; when absent, a numerical gradient is used.
using GradientFn = std::function<Vector(const Vector&)>;

/// Minimize @p f starting from @p x0.
SolveResult bfgs(const ObjectiveFn& f, Vector x0, const BfgsOptions& opts = {},
                 const GradientFn& grad = nullptr);

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_BFGS_HPP_
