/**
 * @file
 * Levenberg-Marquardt nonlinear least squares.
 *
 * Used for the paper's SSD calibration methodology (S4.3, S4.7) and as the
 * default backend of the `lognic::calib` subsystem: fit a small parametric
 * latency/throughput predictor to observed samples and extract LogNIC
 * parameters from the fit.
 */
#ifndef LOGNIC_SOLVER_LEAST_SQUARES_HPP_
#define LOGNIC_SOLVER_LEAST_SQUARES_HPP_

#include <stdexcept>

#include "lognic/solver/objective.hpp"

namespace lognic::solver {

/// Why a Levenberg-Marquardt run stopped.
enum class LsTermination {
    kGradientTolerance, ///< converged: gradient below tolerance
    kStepTolerance,     ///< converged: accepted step below tolerance
    kStalled,           ///< no descent step found (damping saturated)
    kIterationLimit,    ///< budget exhausted before any tolerance was met
};

const char* to_string(LsTermination reason);

struct LeastSquaresOptions {
    std::size_t max_iterations{200};
    double gradient_tolerance{1e-10};
    double step_tolerance{1e-12};
    double initial_damping{1e-3};
    Bounds bounds{};
    /**
     * Finite-difference Jacobian step, *relative to each parameter's
     * magnitude*: h_i = relative_step * max(|x_i|, scale_i). Parameters
     * spanning wildly different scales (bandwidths in bits/s next to
     * service times in seconds) each get a proportionate perturbation
     * instead of one absolute step.
     */
    double relative_step{1e-6};
    /**
     * Per-dimension typical magnitudes (the scale_i floor above), used
     * where a parameter sits at or near zero. Empty: a uniform floor of
     * 1e-8 per dimension.
     */
    Vector scales{};
    /**
     * When true, a run that ends without meeting a convergence tolerance
     * (kStalled or kIterationLimit) throws NonConvergenceError carrying
     * the full partial result instead of returning it.
     */
    bool throw_on_failure{false};
};

/// Result of a fit; value is the final sum of squared residuals.
struct LeastSquaresResult : SolveResult {
    Vector residuals; ///< residual vector at the solution
    LsTermination termination{LsTermination::kIterationLimit};
};

/**
 * Structured non-convergence report: thrown (when opted into) instead of
 * silently handing back the last iterate. Carries the partial result so
 * callers can still inspect or resume from it.
 */
class NonConvergenceError : public std::runtime_error {
  public:
    explicit NonConvergenceError(LeastSquaresResult partial);

    const LeastSquaresResult& partial() const { return partial_; }

  private:
    LeastSquaresResult partial_;
};

/**
 * Minimize 0.5 * ||r(x)||^2 with the Levenberg-Marquardt algorithm.
 *
 * @param residual_fn Residual vector r(x); its length must not vary with x.
 * @param x0 Initial parameter guess.
 * @throws NonConvergenceError per LeastSquaresOptions::throw_on_failure.
 */
LeastSquaresResult levenberg_marquardt(const VectorFn& residual_fn, Vector x0,
                                       const LeastSquaresOptions& opts = {});

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_LEAST_SQUARES_HPP_
