/**
 * @file
 * Levenberg-Marquardt nonlinear least squares.
 *
 * Used for the paper's SSD calibration methodology (S4.3, S4.7): fit a small
 * parametric latency/throughput curve to observed (io-depth, latency,
 * throughput) samples and extract LogNIC IP parameters from the fit.
 */
#ifndef LOGNIC_SOLVER_LEAST_SQUARES_HPP_
#define LOGNIC_SOLVER_LEAST_SQUARES_HPP_

#include "lognic/solver/objective.hpp"

namespace lognic::solver {

struct LeastSquaresOptions {
    std::size_t max_iterations{200};
    double gradient_tolerance{1e-10};
    double step_tolerance{1e-12};
    double initial_damping{1e-3};
    Bounds bounds{};
};

/// Result of a fit; value is the final sum of squared residuals.
struct LeastSquaresResult : SolveResult {
    Vector residuals; ///< residual vector at the solution
};

/**
 * Minimize 0.5 * ||r(x)||^2 with the Levenberg-Marquardt algorithm.
 *
 * @param residual_fn Residual vector r(x); its length must not vary with x.
 * @param x0 Initial parameter guess.
 */
LeastSquaresResult levenberg_marquardt(const VectorFn& residual_fn, Vector x0,
                                       const LeastSquaresOptions& opts = {});

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_LEAST_SQUARES_HPP_
