/**
 * @file
 * Common objective-function plumbing shared by every solver.
 */
#ifndef LOGNIC_SOLVER_OBJECTIVE_HPP_
#define LOGNIC_SOLVER_OBJECTIVE_HPP_

#include <functional>
#include <limits>
#include <string>

#include "lognic/solver/linalg.hpp"

namespace lognic::solver {

/// Scalar objective f: R^n -> R. Solvers always minimize.
using ObjectiveFn = std::function<double(const Vector&)>;

/// Vector-valued function (residuals, constraint sets).
using VectorFn = std::function<Vector(const Vector&)>;

/// Simple per-dimension box bounds. Empty vectors mean "unbounded".
struct Bounds {
    Vector lower; ///< empty, or one entry per dimension
    Vector upper; ///< empty, or one entry per dimension

    /// Clamp @p x into the box (no-op for unbounded dimensions).
    Vector clamp(Vector x) const;

    /// True when @p x satisfies every bound.
    bool contains(const Vector& x) const;
};

/// Result of a solver run.
struct SolveResult {
    Vector x;                ///< best point found
    double value{std::numeric_limits<double>::infinity()}; ///< f(x)
    std::size_t iterations{0};
    std::size_t evaluations{0};
    bool converged{false};
    std::string message;
};

/**
 * Central-difference numerical gradient.
 *
 * @param f Objective.
 * @param x Evaluation point.
 * @param step Relative step (scaled by max(1, |x_i|)).
 */
Vector numerical_gradient(const ObjectiveFn& f, const Vector& x,
                          double step = 1e-6);

/// Forward-difference Jacobian of a vector function (rows = outputs).
Matrix numerical_jacobian(const VectorFn& f, const Vector& x,
                          double step = 1e-6);

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_OBJECTIVE_HPP_
