/**
 * @file
 * Nelder-Mead downhill simplex minimizer.
 *
 * The paper's optimizer offers Nelder-Mead as the local-search fallback
 * (S3.8); it is also the workhorse here for the non-smooth objectives that
 * LogNIC produces (min() of several terms is only piecewise differentiable).
 * Box bounds are honored by clamping trial points into the feasible box.
 */
#ifndef LOGNIC_SOLVER_NELDER_MEAD_HPP_
#define LOGNIC_SOLVER_NELDER_MEAD_HPP_

#include "lognic/solver/objective.hpp"

namespace lognic::solver {

struct NelderMeadOptions {
    std::size_t max_iterations{2000};
    double f_tolerance{1e-10};  ///< stop when simplex f-spread is below this
    double x_tolerance{1e-10};  ///< stop when simplex diameter is below this
    double initial_step{0.1};   ///< relative size of the initial simplex
    Bounds bounds{};
};

/// Minimize @p f starting from @p x0.
SolveResult nelder_mead(const ObjectiveFn& f, Vector x0,
                        const NelderMeadOptions& opts = {});

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_NELDER_MEAD_HPP_
