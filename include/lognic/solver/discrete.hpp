/**
 * @file
 * Discrete / integer design-space search.
 *
 * Several LogNIC optimizer knobs are inherently integral — NIC-core counts
 * (D_vi), queue credits (N_vi), placement choices. The paper sweeps these by
 * enumerating model evaluations; this module provides exhaustive search for
 * small spaces and greedy coordinate descent for larger ones.
 */
#ifndef LOGNIC_SOLVER_DISCRETE_HPP_
#define LOGNIC_SOLVER_DISCRETE_HPP_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

namespace lognic::solver {

/// A point in an integer design space.
using IntVector = std::vector<std::int64_t>;

/// Objective over the integer space; solvers minimize.
using IntObjectiveFn = std::function<double(const IntVector&)>;

/// Inclusive per-dimension integer range.
struct IntRange {
    std::int64_t lo{0};
    std::int64_t hi{0};
    std::int64_t step{1};

    std::size_t count() const
    {
        return hi < lo
            ? 0
            : static_cast<std::size_t>((hi - lo) / step) + 1;
    }
};

struct IntSearchResult {
    IntVector x;
    double value{std::numeric_limits<double>::infinity()};
    std::size_t evaluations{0};
};

/**
 * Exhaustively enumerate the cross product of @p ranges.
 *
 * @throws std::invalid_argument if the space exceeds @p max_points
 * (protects against accidental combinatorial blowups).
 */
IntSearchResult exhaustive_search(const IntObjectiveFn& f,
                                  const std::vector<IntRange>& ranges,
                                  std::size_t max_points = 2'000'000);

/**
 * Greedy coordinate descent: repeatedly sweep each dimension over its full
 * range holding the others fixed, until a full pass makes no improvement.
 * Finds local optima only, but evaluates O(passes * sum(range sizes)) points.
 */
IntSearchResult coordinate_descent(const IntObjectiveFn& f, IntVector x0,
                                   const std::vector<IntRange>& ranges,
                                   std::size_t max_passes = 20);

/// Continuous grid search over box ranges (for coarse seeding).
struct GridRange {
    double lo{0.0};
    double hi{0.0};
    std::size_t points{2}; ///< >= 2 samples including both endpoints
};

struct GridSearchResult {
    std::vector<double> x;
    double value{std::numeric_limits<double>::infinity()};
    std::size_t evaluations{0};
};

GridSearchResult grid_search(
    const std::function<double(const std::vector<double>&)>& f,
    const std::vector<GridRange>& ranges, std::size_t max_points = 2'000'000);

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_DISCRETE_HPP_
