/**
 * @file
 * Special functions for the tail-latency extension: the regularized
 * incomplete gamma function and a gamma-distribution quantile.
 */
#ifndef LOGNIC_SOLVER_SPECIAL_HPP_
#define LOGNIC_SOLVER_SPECIAL_HPP_

namespace lognic::solver {

/**
 * Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a),
 * for a > 0, x >= 0. Series expansion for x < a + 1, Lentz continued
 * fraction otherwise; absolute accuracy ~1e-12.
 */
double regularized_gamma_p(double a, double x);

/// Upper tail Q(a, x) = 1 - P(a, x).
double regularized_gamma_q(double a, double x);

/**
 * Quantile of the gamma distribution with shape @p k and scale @p theta:
 * the t with P(k, t/theta) = @p p. Bisection refined from the
 * Wilson-Hilferty start; @p p in (0, 1).
 */
double gamma_quantile(double k, double theta, double p);

} // namespace lognic::solver

#endif // LOGNIC_SOLVER_SPECIAL_HPP_
