/**
 * @file
 * Bottleneck attribution: rank the simulator's per-vertex measurements,
 * line them up against the analytical model's per-vertex operating points,
 * and report where (and by how much) the two disagree.
 *
 * This is the paper's case-study workflow (§4) as a library call: every
 * figure is a hunt for the vertex whose min() term binds, and model
 * validation is the claim that the analytical ρ and the measured
 * utilization tell the same story. The report makes that comparison a
 * first-class artifact instead of something eyeballed across two printouts.
 */
#ifndef LOGNIC_OBS_ATTRIBUTION_HPP_
#define LOGNIC_OBS_ATTRIBUTION_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/io/json.hpp"
#include "lognic/obs/metrics.hpp"

namespace lognic::obs {

/// One vertex as measured by a simulator.
struct VertexObservation {
    std::string name;
    double utilization{0.0};   ///< fraction of (engine x time) serving
    double mean_occupancy{0.0}; ///< time-averaged queue + in-service
    std::uint64_t served{0};
    std::uint64_t dropped{0};
};

/// Measured vs. modeled operating point of one vertex.
struct VertexDelta {
    std::string name;
    double sim_utilization{0.0};
    /// The model's offered load ρ for the vertex, capped at 1 (a vertex
    /// cannot be more than fully busy; ρ > 1 means the model predicts
    /// saturation, which the sim measures as utilization ≈ 1).
    double model_utilization{0.0};
    double delta{0.0}; ///< sim - model
};

/// Top-k bottleneck ranking plus the per-vertex model-vs-sim comparison.
struct BottleneckReport {
    /// Vertices by descending utilization (mean wait breaks ties), at most
    /// the requested k.
    std::vector<VertexObservation> top;
    /// Every matched vertex, by descending |delta|.
    std::vector<VertexDelta> deltas;
};

/**
 * The model's per-vertex utilization (ρ from Eq. 11, capped at 1) for each
 * non-passthrough vertex, in graph vertex order.
 *
 * Precondition: the graph validates against @p hw.
 */
std::vector<VertexObservation>
model_vertex_utilization(const core::ExecutionGraph& graph,
                         const core::HardwareModel& hw,
                         const core::TrafficProfile& traffic);

/**
 * Build the report: rank @p sim by utilization, and join against
 * @p model by vertex name for the delta table. Vertices present on only
 * one side are skipped in `deltas`.
 */
BottleneckReport attribute(const std::vector<VertexObservation>& sim,
                           const std::vector<VertexObservation>& model,
                           std::size_t top_k = 3);

/// Aligned-text rendering of a report.
std::string render(const BottleneckReport& report);

io::Json to_json(const BottleneckReport& report);

/**
 * Publish an analytical-model estimate into @p registry: capacity /
 * achieved throughput, mean and per-class p99 latency, and the maximum
 * drop probability — the model-side mirror of the simulators' snapshots.
 */
void publish_report(const core::Report& report, MetricsRegistry& registry);

} // namespace lognic::obs

#endif // LOGNIC_OBS_ATTRIBUTION_HPP_
