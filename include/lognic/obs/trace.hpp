/**
 * @file
 * Execution tracing for the simulators — the "where did the time go"
 * counterpart of the analytical model's bottleneck attribution.
 *
 * The simulator emits *spans* (a packet waiting in a queue, an engine
 * serving a request), *counter samples* (queue depth, busy engines,
 * scheduler credits), *instants* (drops), and *async lifecycle markers*
 * (packet arrival → completion) into a TraceSink. The bundled
 * ChromeTraceWriter serializes them as Chrome trace-event JSON, which
 * Perfetto (https://ui.perfetto.dev) and chrome://tracing open directly.
 *
 * Overhead contract: tracing is strictly opt-in. With no sink attached
 * (`TraceOptions::sink == nullptr`, the default) the simulator's only cost
 * is a null-pointer test per hook site; no allocation, no RNG draw, no
 * change to event ordering. Simulation results are bit-identical with and
 * without a sink attached — the trace is a pure observer (pinned by the
 * obs test suite). Per-packet span volume is bounded by sampling: with
 * `sample_every == N` only every Nth generated packet carries lifecycle
 * spans; counter tracks are per-state-change and can be disabled
 * separately.
 */
#ifndef LOGNIC_OBS_TRACE_HPP_
#define LOGNIC_OBS_TRACE_HPP_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "lognic/core/units.hpp"
#include "lognic/io/json.hpp"

namespace lognic::obs {

/// Handle for a named track (a Chrome trace "thread" lane).
using TrackId = std::uint32_t;

/**
 * Receiver of trace events. Implementations must be cheap: the simulator
 * calls these from its hot path. All timestamps are simulated time.
 */
class TraceSink {
  public:
    virtual ~TraceSink() = default;

    /// Register a named track; returns its id. Idempotence is up to the
    /// caller (register each track once, at setup time).
    virtual TrackId register_track(const std::string& name) = 0;

    /// Complete span [start, start + duration) on @p track (ph "X").
    virtual void span(TrackId track, const std::string& name, Seconds start,
                      Seconds duration) = 0;

    /// Counter sample: @p series on @p track has @p value from @p t (ph "C").
    virtual void counter(TrackId track, const std::string& series, Seconds t,
                         double value) = 0;

    /// Instant event on @p track (ph "i").
    virtual void instant(TrackId track, const std::string& name,
                         Seconds t) = 0;

    /// Async span delimiters correlated by (@p name, @p id) (ph "b"/"e").
    /// Used for packet lifecycles, which hop across tracks.
    virtual void async_begin(std::uint64_t id, const std::string& name,
                             Seconds t) = 0;
    virtual void async_end(std::uint64_t id, const std::string& name,
                           Seconds t) = 0;
};

/// Simulator-side tracing knobs; carried inside sim::SimOptions.
struct TraceOptions {
    /// Non-owning; nullptr (default) disables tracing entirely. The sink
    /// must outlive the simulation.
    TraceSink* sink{nullptr};
    /// Every Nth generated packet carries lifecycle spans (1 = all).
    /// 0 suppresses per-packet spans, keeping only counter tracks.
    std::uint64_t sample_every{1};
    /// Emit per-vertex counter tracks (queue depth, busy engines, credits).
    bool counters{true};

    bool enabled() const { return sink != nullptr; }
    /// True when packet @p id should carry lifecycle spans.
    bool sampled(std::uint64_t id) const
    {
        return sink != nullptr && sample_every != 0
            && id % sample_every == 0;
    }
};

/**
 * Chrome trace-event / Perfetto-compatible JSON writer.
 *
 * Buffers events in memory; `json()` produces the standard
 * `{"traceEvents": [...], "displayTimeUnit": "ms"}` document with
 * process/thread metadata naming every registered track. Timestamps are
 * emitted in microseconds, as the format requires.
 */
class ChromeTraceWriter final : public TraceSink {
  public:
    TrackId register_track(const std::string& name) override;
    void span(TrackId track, const std::string& name, Seconds start,
              Seconds duration) override;
    void counter(TrackId track, const std::string& series, Seconds t,
                 double value) override;
    void instant(TrackId track, const std::string& name, Seconds t) override;
    void async_begin(std::uint64_t id, const std::string& name,
                     Seconds t) override;
    void async_end(std::uint64_t id, const std::string& name,
                   Seconds t) override;

    std::size_t event_count() const { return events_.size(); }
    std::size_t track_count() const { return tracks_.size(); }

    /// The full trace-event document.
    io::Json json() const;
    /// Serialized document (compact by default; trace files get large).
    std::string dump(int indent = -1) const;
    /// Write the document to @p out. @throws std::runtime_error on failure.
    void write(std::ostream& out, int indent = -1) const;

  private:
    enum class Phase : std::uint8_t {
        kComplete,   ///< "X"
        kCounter,    ///< "C"
        kInstant,    ///< "i"
        kAsyncBegin, ///< "b"
        kAsyncEnd,   ///< "e"
    };
    struct Event {
        Phase phase;
        TrackId track{0};
        std::string name;
        double ts_us{0.0};
        double dur_us{0.0};   ///< kComplete only
        double value{0.0};    ///< kCounter only
        std::uint64_t id{0};  ///< async only
    };

    std::vector<std::string> tracks_;
    std::vector<Event> events_;
};

} // namespace lognic::obs

#endif // LOGNIC_OBS_TRACE_HPP_
