/**
 * @file
 * Structured metrics: counters, gauges, and fixed-bucket histograms that
 * the simulators and the analytical model's reporting layer publish into.
 *
 * A MetricsRegistry is the mutable collection an instrumented component
 * writes while running; a MetricsSnapshot is the immutable, name-keyed
 * export it hands back to callers. Snapshots aggregate across replications
 * with fixed semantics: counters and histogram buckets sum, gauges
 * average. Names are dot-separated paths ("vertex.crypto.utilization") so
 * downstream tooling can group by prefix.
 *
 * Registries are deterministic containers (std::map, stable iteration) —
 * snapshot JSON is byte-identical across runs and thread counts for a
 * deterministic simulation.
 */
#ifndef LOGNIC_OBS_METRICS_HPP_
#define LOGNIC_OBS_METRICS_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lognic/io/json.hpp"

namespace lognic::obs {

/// Monotonically increasing event count.
class Counter {
  public:
    void add(std::uint64_t delta = 1) { value_ += delta; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_{0};
};

/// Last-write-wins scalar measurement.
class Gauge {
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_{0.0};
};

/**
 * Fixed-bucket histogram: bucket i counts samples <= bounds[i]; one
 * implicit overflow bucket counts the rest. Bounds are set at creation
 * and never change, so bucket-wise aggregation across replications is
 * well-defined.
 */
class Histogram {
  public:
    /// @p upper_bounds must be non-empty and strictly increasing.
    /// @throws std::invalid_argument otherwise.
    explicit Histogram(std::vector<double> upper_bounds);

    void record(double sample);

    const std::vector<double>& bounds() const { return bounds_; }
    /// bounds().size() + 1 entries; the last is the overflow bucket.
    const std::vector<std::uint64_t>& counts() const { return counts_; }
    std::uint64_t total() const { return total_; }
    double sum() const { return sum_; }
    double mean() const;

    /**
     * Replace the recorded contents wholesale (checkpoint restore); the
     * bucket layout stays as constructed. @p sum is the running double
     * sum, restored bit-exactly.
     * @throws std::invalid_argument when counts.size() != bounds().size()+1.
     */
    void restore(std::vector<std::uint64_t> counts, std::uint64_t total,
                 double sum);

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_{0};
    double sum_{0.0};
};

/// Immutable export of one Histogram.
struct HistogramSnapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t total{0};
    double sum{0.0};
};

/// Immutable, name-keyed export of a registry (or an aggregate of many).
struct MetricsSnapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    bool empty() const
    {
        return counters.empty() && gauges.empty() && histograms.empty();
    }

    /// Counter value or 0 when absent.
    std::uint64_t counter_or_zero(const std::string& name) const;
    /// Gauge value or @p fallback when absent.
    double gauge_or(const std::string& name, double fallback = 0.0) const;

    io::Json to_json() const;
};

/**
 * Aggregate replication snapshots: counters and histogram buckets sum,
 * gauges average over the snapshots that carry them. Histograms with
 * mismatched bounds throw (they are not comparable).
 */
MetricsSnapshot aggregate(const std::vector<MetricsSnapshot>& snapshots);

/// The mutable collection an instrumented component publishes into.
class MetricsRegistry {
  public:
    /// Find-or-create by name; references stay valid for the registry's
    /// lifetime (node-based map storage).
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /// @p upper_bounds is used only on first creation; later lookups with
    /// different bounds throw std::invalid_argument.
    Histogram& histogram(const std::string& name,
                         std::vector<double> upper_bounds);

    MetricsSnapshot snapshot() const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace lognic::obs

#endif // LOGNIC_OBS_METRICS_HPP_
