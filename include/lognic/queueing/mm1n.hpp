/**
 * @file
 * Closed-form queueing models used by the LogNIC latency analysis.
 *
 * The paper (Eq. 9-12) models each IP block's request queue as an M/M/1/N
 * queue: Poisson arrivals (rate lambda), exponential service (rate mu), one
 * logical server (the virtual shared queue abstraction merges the per-engine
 * queues), and a finite capacity of N requests in the system. Arrivals that
 * find the system full are dropped, which is exactly how a SmartNIC ingress
 * queue sheds load.
 *
 * The formulas here are exact, including at the rho == 1 singularity where
 * the textbook expressions are 0/0: every quantity — distribution moments
 * and the Eq. 12 closed form alike — is evaluated through numerically
 * stable direct sums in the ill-conditioned region around rho = 1, so mean
 * occupancy, blocking probability, throughput, and queueing delay stay
 * mutually consistent (Little's law) to machine precision across it.
 */
#ifndef LOGNIC_QUEUEING_MM1N_HPP_
#define LOGNIC_QUEUEING_MM1N_HPP_

#include <cstdint>

namespace lognic::queueing {

/// An M/M/1/N queue (capacity counts the request in service).
class Mm1nQueue {
  public:
    /**
     * @param lambda Offered arrival rate (requests/sec), > 0.
     * @param mu Service rate (requests/sec), > 0.
     * @param capacity Maximum requests in the system (N >= 1).
     *
     * @throws std::invalid_argument on non-positive rates or capacity == 0.
     */
    Mm1nQueue(double lambda, double mu, std::uint32_t capacity);

    double lambda() const { return lambda_; }
    double mu() const { return mu_; }
    std::uint32_t capacity() const { return capacity_; }

    /// Offered load rho = lambda / mu (may exceed 1 for a finite queue).
    double rho() const { return rho_; }

    /// Steady-state probability of exactly k requests in the system.
    double prob(std::uint32_t k) const;

    /// Blocking (drop) probability: P[system full] = prob(N).
    double blocking_probability() const { return prob(capacity_); }

    /// Mean number of requests in the system (the paper's L).
    double mean_in_system() const;

    /// Effective (accepted) arrival rate: lambda_e = lambda * (1 - P_N).
    double effective_arrival_rate() const;

    /// Mean total sojourn time W = L / lambda_e (Little's law).
    double mean_sojourn_time() const;

    /**
     * Mean waiting-in-queue delay, the paper's Q (Eq. 9):
     * Q = L / lambda_e - 1 / mu.
     */
    double mean_queueing_delay() const;

    /**
     * The paper's closed form for Q (Eq. 12):
     * Q = (1/mu) * (rho/(1-rho) - N*rho^N/(1-rho^N)).
     *
     * Mathematically identical to mean_queueing_delay(); kept as a separate
     * entry point so tests can pin the equivalence and so model code can
     * cite Eq. 12 directly.
     */
    double paper_closed_form_delay() const;

    /// Server utilization: fraction of time the engine is busy.
    double utilization() const { return 1.0 - prob(0); }

    /// Accepted throughput (= effective arrival rate in steady state).
    double throughput() const { return effective_arrival_rate(); }

  private:
    double lambda_;
    double mu_;
    std::uint32_t capacity_;
    double rho_;
};

/// An M/M/1 queue (infinite capacity); requires rho < 1.
class Mm1Queue {
  public:
    /// @throws std::invalid_argument unless 0 <= lambda < mu.
    Mm1Queue(double lambda, double mu);

    double rho() const { return rho_; }
    double mean_in_system() const { return rho_ / (1.0 - rho_); }
    double mean_sojourn_time() const { return 1.0 / (mu_ - lambda_); }
    double mean_queueing_delay() const { return rho_ / (mu_ - lambda_); }

  private:
    double lambda_;
    double mu_;
    double rho_;
};

/// An M/M/c queue (c parallel engines, infinite capacity); requires rho < 1.
class MmcQueue {
  public:
    /// @throws std::invalid_argument unless lambda < c * mu and c >= 1.
    MmcQueue(double lambda, double mu, std::uint32_t servers);

    /// Per-server utilization lambda / (c * mu).
    double rho() const { return rho_; }

    /// Erlang-C probability that an arriving request must wait.
    double prob_wait() const { return erlang_c_; }

    /// Mean waiting-in-queue delay.
    double mean_queueing_delay() const;

    /// Mean requests in the system.
    double mean_in_system() const;

  private:
    double lambda_;
    double mu_;
    std::uint32_t servers_;
    double rho_;
    double erlang_c_;
};

} // namespace lognic::queueing

#endif // LOGNIC_QUEUEING_MM1N_HPP_
