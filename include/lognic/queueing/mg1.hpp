/**
 * @file
 * M/G/1 and M/D/1 queueing via the Pollaczek-Khinchine formula.
 *
 * The paper's Eq. 9-12 assume exponential service (M/M/1/N). Hardware IP
 * blocks — fixed-function accelerators, PANIC compute units — serve in
 * near-deterministic time, halving the queueing delay; these closed forms
 * let analyses pick the service-time model that matches the engine.
 */
#ifndef LOGNIC_QUEUEING_MG1_HPP_
#define LOGNIC_QUEUEING_MG1_HPP_

namespace lognic::queueing {

/**
 * An M/G/1 queue characterized by the first two moments of its service
 * time. Requires rho = lambda * mean_service < 1.
 */
class Mg1Queue {
  public:
    /**
     * @param lambda Poisson arrival rate (>= 0).
     * @param mean_service E[S] (> 0).
     * @param service_scv Squared coefficient of variation of S:
     *   Var(S)/E[S]^2. 0 = deterministic, 1 = exponential.
     * @throws std::invalid_argument on bad parameters or rho >= 1.
     */
    Mg1Queue(double lambda, double mean_service, double service_scv);

    double rho() const { return rho_; }

    /// Pollaczek-Khinchine mean waiting time:
    /// Wq = lambda E[S^2] / (2 (1 - rho)).
    double mean_queueing_delay() const;

    /// Mean sojourn time Wq + E[S].
    double mean_sojourn_time() const;

    /// Mean number in system (Little).
    double mean_in_system() const;

  private:
    double lambda_;
    double mean_service_;
    double scv_;
    double rho_;
};

/// M/D/1: deterministic service (SCV = 0).
class Md1Queue : public Mg1Queue {
  public:
    Md1Queue(double lambda, double mean_service)
        : Mg1Queue(lambda, mean_service, 0.0)
    {
    }
};

} // namespace lognic::queueing

#endif // LOGNIC_QUEUEING_MG1_HPP_
