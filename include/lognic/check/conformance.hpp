/**
 * @file
 * Differential comparators (lognic::check): the same scenario evaluated
 * through the analytical model, the discrete-event simulator, and — where
 * the topology degenerates to a single queue — the textbook closed forms,
 * with agreement asserted within stated tolerances.
 *
 * Tolerance rationale (each comparator's violations carry the numbers):
 *  - model vs DES: the model is a queueing-theory approximation of the
 *    simulated system (M/M/1/N per vertex, independence across vertices),
 *    so the bands are coarse — factor bands on latency, additive bands on
 *    goodput — matching the validation envelopes the repository's
 *    integration tests established empirically.
 *  - DES vs closed form: on a degenerate topology the two describe the
 *    *identical* stochastic system, so the bands are purely statistical
 *    (finite-horizon estimator noise), much tighter than model bands.
 *  - monotonicity: mean latency is non-decreasing in offered load for
 *    these networks (each vertex's sojourn time grows with its arrival
 *    rate, and saturation upstream can only hold downstream load
 *    constant); the slack absorbs common-random-number residual noise.
 */
#ifndef LOGNIC_CHECK_CONFORMANCE_HPP_
#define LOGNIC_CHECK_CONFORMANCE_HPP_

#include <optional>
#include <vector>

#include "lognic/check/oracles.hpp"

namespace lognic::check {

struct ConformanceTolerances {
    // --- analytical model vs DES -------------------------------------------
    /// Delivered throughput may not exceed modelled capacity by more than
    /// this (relative + absolute headroom for finite-horizon burstiness).
    double capacity_rel{0.08};
    double capacity_abs_gbps{0.3};
    /// Delivered vs modelled achieved throughput (goodput tracking).
    double goodput_rel{0.25};
    double goodput_abs_gbps{0.4};
    /// Simulated mean latency must lie in
    /// [model / latency_factor_low, model * factor_high(rho)] (+abs).
    /// Asymmetric because the model's per-vertex M/M/1/N treatment (one
    /// merged server per vertex, per-class capacity partitioning) is
    /// conservative for multi-engine vertices — the simulator's true
    /// D-server queue can run well below the estimate, while overshooting
    /// grows with load: near saturation the sojourn mean is dominated by
    /// the queue tail, where the model's partitioned-queue approximation
    /// undershoots and the DES estimator's variance blows up as
    /// 1/(1-rho). The upper factor therefore scales with the highest
    /// vertex utilization the run actually measured:
    ///   factor_high(rho) = latency_factor_high
    ///                      + latency_rho_gain * rho / (1 - min(rho, rho_knee))
    /// (about 2.0x at rho = 0.3, 9.2x at rho = 0.95 with the defaults).
    double latency_factor_high{1.6};
    double latency_rho_gain{0.8};
    double latency_rho_knee{0.9};
    double latency_factor_low{6.0};
    double latency_abs_us{1.0};
    /// Simulated drop rate vs the model's implied drop fraction
    /// (1 - achieved/offered); single-class scenarios only.
    double drop_abs{0.05};
    /// Minimum windowed completions before latency bands apply.
    std::uint64_t min_completed{200};

    // --- DES vs closed forms (degenerate single-queue topologies) ----------
    // The relative bands look loose for "the identical stochastic system"
    // because the time-average estimators mix slowly at high load: the
    // occupancy autocorrelation time scales like E[S]/(1-rho)^2, so a
    // 40 ms window at rho ~ 0.95 holds only a few hundred effectively
    // independent samples and the sample mean sits within ~15% of the
    // closed form at the few-sigma level. 20% keeps seeds reproducible
    // while still catching structural errors (wrong N convention, wrong
    // rho) which shift these statistics by O(1) factors.
    double mm1n_occupancy_rel{0.20};
    double mm1n_occupancy_abs{0.08};
    double mm1n_drop_abs{0.02};
    double mm1n_utilization_abs{0.04};
    double mm1n_sojourn_rel{0.20};
    double mg1_sojourn_rel{0.15};

    // --- latency monotonicity in offered load ------------------------------
    double monotonic_slack_rel{0.12};
    double monotonic_slack_abs_us{1.0};
};

/// Model-vs-DES agreement for one (scenario, result) pair.
std::vector<Violation>
check_model_vs_sim(const io::Scenario& sc, const sim::SimResult& res,
                   const ConformanceTolerances& tol = {});

/**
 * The single queue a degenerate scenario reduces to, when it does:
 * exactly one IP vertex between ingress and egress, one engine, default
 * (free) edges, zero overhead, one packet class, Poisson arrivals, no
 * bursts, no faults, stochastic service. Then the DES is *exactly* an
 * M/M/1/N queue (scv == 1) or an M/G/1 queue with gamma service
 * (0 < scv < 1, compared only while blocking is negligible).
 */
struct SingleQueueView {
    double lambda{0.0};  ///< request arrival rate, 1/s
    double mu{0.0};      ///< service rate, 1/s
    std::uint32_t capacity{1};
    double scv{1.0};
    std::string vertex;
};

std::optional<SingleQueueView>
single_queue_view(const io::Scenario& sc, const sim::SimOptions& opts);

/// Closed-form agreement; empty when the scenario is not degenerate.
std::vector<Violation>
check_closed_forms(const io::Scenario& sc, const sim::SimOptions& opts,
                   const sim::SimResult& res,
                   const ConformanceTolerances& tol = {});

/**
 * Run a three-point offered-load ladder (0.6x, 1.0x, 1.4x the profile's
 * BW_in) with identical seeds and assert mean latency is non-decreasing
 * within the slack. Runs its own simulations; @p sims_run (if non-null)
 * is incremented per run for the harness's accounting.
 */
std::vector<Violation>
check_latency_monotonicity(const io::Scenario& sc,
                           const sim::SimOptions& opts,
                           const ConformanceTolerances& tol = {},
                           std::uint64_t* sims_run = nullptr);

} // namespace lognic::check

#endif // LOGNIC_CHECK_CONFORMANCE_HPP_
