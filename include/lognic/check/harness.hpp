/**
 * @file
 * The conformance harness (lognic::check): randomized differential
 * trials, golden-corpus replay, violation reports with minimal
 * reproducing specs.
 *
 * A trial draws a scenario from the seed-deterministic generator, runs it
 * through the DES once, and feeds the result to every oracle: the
 * invariant oracles (oracles.hpp), the model-vs-DES comparators, the
 * closed-form comparators on degenerate topologies, and a latency-vs-load
 * monotonicity ladder (conformance.hpp). Trial seeds derive from the root
 * seed with runner::derive_seed, so `check --trials N --seed S` names the
 * exact same N scenarios on every machine — a reported violation is
 * reproducible by (S, trial index) alone, and additionally ships as a
 * self-contained JSON spec (scenario + options) that can be replayed
 * directly or committed to the golden corpus under tests/check/corpus/.
 */
#ifndef LOGNIC_CHECK_HARNESS_HPP_
#define LOGNIC_CHECK_HARNESS_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lognic/check/conformance.hpp"
#include "lognic/check/generate.hpp"
#include "lognic/check/oracles.hpp"

namespace lognic::check {

/// Outcome of one failing trial or corpus entry.
struct TrialFailure {
    std::string name;
    /// Generator seed (0 for corpus entries, which carry no generator).
    std::uint64_t generator_seed{0};
    bool single_queue{false};
    std::vector<Violation> violations;
    /// Self-contained reproducing spec (a CorpusEntry document), shrunk
    /// when minimization found a smaller still-failing variant.
    io::Json minimal_spec;
};

/**
 * Everything one trial (or corpus entry) contributed to the report, in
 * the form a checkpoint journal stores and a resumed run replays. Keys
 * are stable strings — "trial:<index>" / "corpus:<name>" — so a resumed
 * `lognic check` skips exactly the work already done and the merged
 * report is byte-identical to an uninterrupted run.
 */
struct TrialOutcome {
    bool single_queue{false};
    std::uint64_t sims_run{0};    ///< simulations this unit executed
    std::uint64_t violations{0};
    bool failed{false};
    TrialFailure failure;         ///< valid only when failed
};

/// Resume source: true + filled outcome when @p key is already journaled.
using TrialLookup =
    std::function<bool(const std::string& key, TrialOutcome& out)>;

/// Completion sink: fired once per freshly-run trial/corpus entry.
using TrialHook =
    std::function<void(const std::string& key, const TrialOutcome&)>;

struct CheckOptions {
    std::uint64_t trials{50};
    std::uint64_t seed{7};
    /// Simulated duration per run, seconds.
    double duration{0.05};
    double warmup_fraction{0.2};
    /// Run the offered-load ladder (3 extra simulations per trial).
    bool monotonicity{true};
    /// Shrink failing specs before reporting them.
    bool minimize{true};
    GeneratorConfig generator{};
    InvariantTolerances invariants{};
    ConformanceTolerances conformance{};
    /// Checkpoint/resume seams (see lognic::ckpt). Hooks never change
    /// what the harness computes, only whether a unit is re-run.
    TrialLookup resume_lookup{};
    TrialHook on_trial_complete{};
};

/**
 * One golden-corpus entry: a pinned scenario plus the run options it must
 * stay clean under. The JSON layout is exactly what a failing trial's
 * minimal_spec contains, so promoting a regression into the corpus is a
 * file copy.
 */
struct CorpusEntry {
    std::string name;
    io::Scenario scenario;
    sim::SimOptions options{};
    bool monotonicity{true};
};

io::Json to_json(const CorpusEntry& entry);
CorpusEntry corpus_entry_from_json(const io::Json& j);

struct CheckReport {
    std::uint64_t trials{0};
    std::uint64_t corpus_entries{0};
    std::uint64_t single_queue_trials{0};
    std::uint64_t sims_run{0};
    std::uint64_t violations{0};
    std::vector<TrialFailure> failures;
};

io::Json to_json(const CheckReport& report);

/// Merge two reports (e.g. corpus replay + random trials).
CheckReport merge(CheckReport a, const CheckReport& b);

/**
 * All oracles against one explicit (scenario, options) pair. The
 * monotonicity ladder runs only when both @p run_monotonicity and
 * opts-independent preconditions hold. @p sims_run (if non-null)
 * accumulates the number of simulations executed.
 */
std::vector<Violation>
check_scenario(const io::Scenario& sc, const sim::SimOptions& opts,
               const CheckOptions& copts, bool run_monotonicity = true,
               std::uint64_t* sims_run = nullptr);

/// N randomized trials under the root seed.
CheckReport run_trials(const CheckOptions& copts);

/// Replay pinned entries (the golden corpus).
CheckReport replay_corpus(const std::vector<CorpusEntry>& entries,
                          const CheckOptions& copts);

} // namespace lognic::check

#endif // LOGNIC_CHECK_HARNESS_HPP_
