/**
 * @file
 * Seed-deterministic random scenario generation for the conformance
 * harness (lognic::check).
 *
 * The harness cross-validates three independent implementations of the
 * LogNIC semantics (analytical model, discrete-event simulator, textbook
 * closed forms), so its inputs must be (a) reproducible from a single
 * 64-bit seed on every platform — a violation report is useless if the
 * scenario cannot be regenerated elsewhere — and (b) bounded so the
 * bottleneck utilization lands in a configurable regime instead of
 * arbitrarily deep overload or idle, where every comparator trivially
 * agrees (all-drops or all-zeros) and the run checks nothing.
 *
 * Platform stability is why this file carries its own PRNG: the std::
 * engines are exactly specified but the std:: *distributions* are
 * implementation-defined, so a generator built on them produces different
 * scenarios per standard library. CheckRng is a SplitMix64 stream (the
 * same construction runner::derive_seed uses) with hand-rolled uniform
 * draws — identical output everywhere.
 */
#ifndef LOGNIC_CHECK_GENERATE_HPP_
#define LOGNIC_CHECK_GENERATE_HPP_

#include <cstdint>

#include "lognic/io/serialize.hpp"
#include "lognic/runner/seed.hpp"

namespace lognic::check {

/// Platform-stable PRNG: a SplitMix64 stream with explicit bit-to-double
/// conversions (no std:: distributions anywhere in the draw path).
class CheckRng {
  public:
    explicit CheckRng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next_u64()
    {
        state_ += runner::kSplitMix64Gamma;
        return runner::splitmix64_mix(state_);
    }

    /// Uniform in [0, 1): the top 53 bits as a double mantissa.
    double uniform01()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform01();
    }

    /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
    std::uint32_t uniform_u32(std::uint32_t lo, std::uint32_t hi)
    {
        const std::uint64_t span =
            static_cast<std::uint64_t>(hi) - lo + 1;
        return lo + static_cast<std::uint32_t>(next_u64() % span);
    }

    bool bernoulli(double p) { return uniform01() < p; }

  private:
    std::uint64_t state_;
};

/**
 * Bounds for the scenario generator. The defaults keep scenarios small
 * enough that a single check trial (one base run plus the monotonicity
 * ladder) finishes in tens of milliseconds, while still exercising
 * fan-out, multi-engine vertices, mixed packet sizes, shared-medium
 * transfers, and non-exponential service.
 */
struct GeneratorConfig {
    // --- topology -----------------------------------------------------------
    std::uint32_t max_ips{3};
    std::uint32_t max_layers{2};
    std::uint32_t max_width{2};
    // --- hardware catalog ---------------------------------------------------
    double min_fixed_cost_us{0.4};
    double max_fixed_cost_us{2.0};
    double min_byte_rate_gigabytes{2.0};
    double max_byte_rate_gigabytes{8.0};
    std::uint32_t max_engines{4};
    std::uint32_t min_queue_capacity{8};
    std::uint32_t max_queue_capacity{64};
    // --- traffic ------------------------------------------------------------
    std::uint32_t max_classes{2};
    double min_packet_bytes{256.0};
    double max_packet_bytes{1500.0};
    /**
     * Offered-load regime: BW_in is set to u x the analytical model's
     * capacity with u drawn uniformly from [rho_min, rho_max], so the
     * bottleneck vertex's utilization is pinned to the regime under test
     * (the model capacity is load-independent, which makes this exact for
     * the binding term). M/G/1 single-queue scenarios additionally clamp
     * u to <= 0.8 — the Pollaczek-Khinchine comparison assumes an
     * effectively infinite queue, so blocking must stay negligible.
     */
    double rho_min{0.3};
    double rho_max{0.95};
    /// Fraction of scenarios that degenerate to a single queue (one IP,
    /// one engine, free transfers) so the closed-form oracles get steady
    /// exercise; the rest are layered DAGs.
    double single_queue_fraction{0.35};
    /// Per-edge probability that a DAG edge crosses the shared interface
    /// (alpha = delta) or the memory subsystem (beta = delta).
    double shared_medium_fraction{0.2};
};

/// One generated conformance input.
struct GeneratedScenario {
    io::Scenario scenario;
    /// True when the topology degenerates to a single queue (closed-form
    /// comparable).
    bool single_queue{false};
    /// The drawn load fraction u (the target bottleneck utilization).
    double target_utilization{0.0};
};

/**
 * Generate the scenario for @p seed. Pure function of (seed, cfg): the
 * same pair yields a byte-identical io::save_scenario() document on every
 * platform. The result always passes ExecutionGraph::validate().
 */
GeneratedScenario generate_scenario(std::uint64_t seed,
                                    const GeneratorConfig& cfg = {});

} // namespace lognic::check

#endif // LOGNIC_CHECK_GENERATE_HPP_
