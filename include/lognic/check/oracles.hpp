/**
 * @file
 * Invariant oracles over a single DES run (lognic::check).
 *
 * These are properties every simulation result must satisfy regardless of
 * the scenario — conservation laws, range constraints, and internal
 * consistency between the scalar result fields and the structured metrics
 * snapshot. A violation here is a simulator (or metrics-publishing) bug,
 * never a property of the input.
 *
 * Each oracle states its tolerance explicitly in the Violation it emits:
 *  - exact identities (packet conservation, scalar <-> snapshot equality)
 *    use zero or pure floating-point slack;
 *  - statistical identities (Little's law on the servers) use a
 *    k-sigma band derived from the sample count plus an edge-effect
 *    allowance for requests straddling the measurement window.
 */
#ifndef LOGNIC_CHECK_ORACLES_HPP_
#define LOGNIC_CHECK_ORACLES_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lognic/io/serialize.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::check {

/// One oracle failure, with the numbers needed to judge it.
struct Violation {
    /// Dotted oracle id, e.g. "invariant.conservation" or
    /// "conformance.mm1n.occupancy".
    std::string oracle;
    /// What it fired on (a vertex or metric name); empty for run-level.
    std::string subject;
    std::string message;
    double measured{0.0};
    double expected{0.0};
    double tolerance{0.0};
};

io::Json to_json(const Violation& v);

/// Inverse of to_json(Violation) — checkpoint journals round-trip
/// violations through JSON. Note the doubles travel as JSON numbers here;
/// journals that need bit-exactness encode them separately (the ckpt
/// journal stores hex bit patterns alongside).
Violation violation_from_json(const io::Json& j);

struct InvariantTolerances {
    /// Relative slack on identities that are exact up to floating point.
    double rel_eps{1e-9};
    /// Width of the statistical band for Little's-law checks, in standard
    /// deviations of the busy-time estimator.
    double little_sigmas{6.0};
    /// Extra relative slack on the Little's-law identity. The vertex
    /// `served` counter spans the whole run while utilization is windowed,
    /// so the comparison couples the warmup-period completion rate to the
    /// window's; their difference is a sub-percent stationarity residual,
    /// bounded loosely here. A real accounting bug (e.g. comparing
    /// lifetime counts against windowed time without rescaling) shifts
    /// the ratio by the warmup fraction itself — an order of magnitude
    /// above this slack.
    double little_rel{0.02};
    /// Minimum served requests before a statistical check is meaningful.
    std::uint64_t min_served{200};
};

/**
 * The simulator's resolved per-vertex configuration, recomputed
 * independently from the scenario (the same resolution rules
 * NicSimulator applies: parallelism 0 means all engines, queue capacity
 * 0 means the IP default, service mean from the roofline engine scaled by
 * partition share and acceleration). Oracles compare the run against this
 * independently derived shape, so a resolution bug on either side shows
 * up as a violation.
 *
 * Returns nullopt for passthrough (ingress/egress) vertices.
 */
struct VertexShape {
    std::uint32_t engines{1};
    std::uint32_t capacity{1};
    std::size_t queue_count{1};
    std::uint32_t per_queue_capacity{1};
    /// Mean service time for class 0, seconds.
    double service_mean{0.0};
    /// Squared coefficient of variation of the service draw the simulator
    /// makes (0 when options force deterministic service).
    double service_scv{1.0};
    bool rate_limiter{false};
};

std::optional<VertexShape>
resolve_shape(const io::Scenario& sc, core::VertexId v,
              bool exponential_service);

/**
 * Run every invariant oracle against @p res (produced by simulating
 * @p sc under @p opts). Returns the violations found (empty = clean).
 *
 * Checked: packet conservation; utilization/drop-rate/occupancy ranges;
 * occupancy >= busy servers and <= buffer bound; quantile ordering;
 * empty-window sentinels; scalar fields == metrics snapshot (the warmup
 * accounting consistency check: both views are computed over the same
 * (warmup_end, horizon] window, so any disagreement means one side used
 * the wrong window); drop_rate == dropped/offered; throughput-counter
 * identity delivered_ops * window == completed; Little's law on each
 * vertex's servers (single-class, fault-free, burst-free runs only —
 * the preconditions under which E[S] is known exactly).
 */
std::vector<Violation>
check_invariants(const io::Scenario& sc, const sim::SimOptions& opts,
                 const sim::SimResult& res,
                 const InvariantTolerances& tol = {});

} // namespace lognic::check

#endif // LOGNIC_CHECK_ORACLES_HPP_
