/**
 * @file
 * Packet traces: recorded (or synthesized) packet-size sequences.
 *
 * Real deployments feed the model from captured traffic. A PacketTrace is
 * the raw capture: packet sizes in arrival order plus the mean arrival
 * rate. The simulator can replay it verbatim (order effects included),
 * and histogram_profile() reduces it to the dist_size/BW_in profile the
 * analytical model consumes — the trace-to-model on-ramp.
 */
#ifndef LOGNIC_TRAFFIC_TRACE_HPP_
#define LOGNIC_TRAFFIC_TRACE_HPP_

#include <cstdint>
#include <vector>

#include "lognic/core/traffic_profile.hpp"

namespace lognic::traffic {

struct PacketTrace {
    /// Packet sizes in arrival order; replayed cyclically.
    std::vector<Bytes> sizes;
    /// Mean packet arrival rate.
    OpsRate mean_rate{OpsRate{0.0}};
    /// Exponential inter-arrival gaps (true) or exact pacing (false).
    bool poisson{true};

    /// Mean offered bandwidth of the trace.
    Bandwidth mean_bandwidth() const;
};

/**
 * Synthesize a trace by sampling @p count packets from @p profile
 * (deterministic for a fixed @p seed) — the stand-in for a packet capture.
 */
PacketTrace synthesize_trace(const core::TrafficProfile& profile,
                             std::size_t count, std::uint64_t seed = 1);

/**
 * Reduce a trace to the model's traffic profile: one packet class per
 * distinct size (byte-weighted), BW_in from the trace's mean rate.
 *
 * @throws std::invalid_argument on an empty trace, zero rate, or more
 * than @p max_classes distinct sizes (captures should be bucketed first).
 */
core::TrafficProfile histogram_profile(const PacketTrace& trace,
                                       std::size_t max_classes = 16);

} // namespace lognic::traffic

#endif // LOGNIC_TRAFFIC_TRACE_HPP_
