/**
 * @file
 * Storage I/O workload descriptors for the NVMe-oF case study (S4.3).
 */
#ifndef LOGNIC_TRAFFIC_IO_WORKLOAD_HPP_
#define LOGNIC_TRAFFIC_IO_WORKLOAD_HPP_

#include <string>

#include "lognic/core/units.hpp"

namespace lognic::traffic {

/// One I/O pattern offered to an NVMe-oF target.
struct IoWorkload {
    std::string name;
    Bytes block_size{Bytes::from_kib(4.0)};
    double read_fraction{1.0}; ///< 1.0 = pure read, 0.0 = pure write
    bool random{true};         ///< random vs sequential addressing
    std::uint32_t queue_depth{32};
};

/// 4KB random read (the paper's 4KB-RRD).
IoWorkload random_read_4k(std::uint32_t depth = 32);

/// 128KB random read (128KB-RRD).
IoWorkload random_read_128k(std::uint32_t depth = 32);

/// 4KB sequential write (4KB-SWR).
IoWorkload sequential_write_4k(std::uint32_t depth = 32);

/// 4KB random mixed read/write at the given read ratio (Figure 7 sweep).
IoWorkload random_mixed_4k(double read_fraction, std::uint32_t depth = 32);

} // namespace lognic::traffic

#endif // LOGNIC_TRAFFIC_IO_WORKLOAD_HPP_
