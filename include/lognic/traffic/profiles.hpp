/**
 * @file
 * Traffic profile builders, including every named profile used in the
 * paper's evaluation (S4).
 */
#ifndef LOGNIC_TRAFFIC_PROFILES_HPP_
#define LOGNIC_TRAFFIC_PROFILES_HPP_

#include <vector>

#include "lognic/core/traffic_profile.hpp"

namespace lognic::traffic {

/// The packet-size sweep used by Figures 10, 13, and 14.
std::vector<Bytes> standard_packet_sizes();

/// Fixed-size traffic at the given offered load.
core::TrafficProfile fixed_size(Bytes packet, Bandwidth offered);

/**
 * A mix of flow sizes with the ingress bandwidth split *equally by bytes*
 * across the sizes — the construction of the PANIC profiles in S4.6.
 */
core::TrafficProfile equal_byte_mix(const std::vector<Bytes>& sizes,
                                    Bandwidth offered);

/**
 * The four mixed traffic profiles of Figure 15:
 *   1: 64B/512B        2: 64B/512B/1024B
 *   3: 64B/256B/512B/1500B   4: 64B/128B/256B/1024B/1500B
 *
 * @throws std::invalid_argument unless 1 <= index <= 4.
 */
core::TrafficProfile panic_profile(int index, Bandwidth offered);

/// Packet arrival process used by the simulator.
struct ArrivalProcess {
    enum class Kind {
        kPoisson, ///< exponential inter-arrival (datacenter default, S3.6)
        kPaced,   ///< deterministic inter-arrival (hardware packet generator)
    };
    Kind kind{Kind::kPoisson};
};

} // namespace lognic::traffic

#endif // LOGNIC_TRAFFIC_PROFILES_HPP_
