/**
 * @file
 * Slab/free-list recycler for in-flight packet state.
 *
 * Both simulators allocate one record per packet arrival and retire it at
 * delivery or drop — millions of times per run. A general-purpose heap
 * round trip per packet is pure overhead: the records are identical in
 * size, their population is bounded by the in-flight window, and their
 * lifetime nests inside the simulator's. The slab exploits all three
 * (see DESIGN.md §10):
 *
 *  - storage grows in fixed-size chunks that are never freed or moved
 *    until the slab dies, so `T*` handles stay stable for the packet's
 *    whole flight and events can capture them inline;
 *  - retired slots go on a LIFO free list and are handed back to the next
 *    `acquire()`, so steady state performs zero heap traffic — the heap
 *    is touched only when the in-flight high-water mark grows;
 *  - recycling order is a pure function of the event order, so a seeded
 *    run acquires the same logical slots in the same sequence every time
 *    (nothing may key on pointer *values*, which vary run to run).
 *
 * Single-threaded by design, like the simulators that own it.
 */
#ifndef LOGNIC_SIM_PACKET_SLAB_HPP_
#define LOGNIC_SIM_PACKET_SLAB_HPP_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace lognic::sim {

template <typename T>
class Slab {
  public:
    /// @p chunk_capacity objects are added per growth step.
    explicit Slab(std::size_t chunk_capacity = 1024)
        : chunk_capacity_(chunk_capacity > 0 ? chunk_capacity : 1)
    {
    }

    Slab(const Slab&) = delete;
    Slab& operator=(const Slab&) = delete;

    /// Construct a T in a recycled (or freshly grown) slot.
    template <typename... Args>
    T* acquire(Args&&... args)
    {
        if (free_.empty())
            grow();
        T* slot = free_.back();
        free_.pop_back();
        return ::new (static_cast<void*>(slot))
            T(std::forward<Args>(args)...);
    }

    /// Destroy @p obj and push its slot onto the free list (LIFO reuse).
    void release(T* obj)
    {
        obj->~T();
        free_.push_back(obj);
    }

    /// Total slots across all chunks (the high-water mark, rounded up).
    std::size_t capacity() const { return chunks_.size() * chunk_capacity_; }

    /// Live objects (acquired and not yet released).
    std::size_t in_use() const { return capacity() - free_.size(); }

  private:
    /// Raw, correctly-aligned storage for one T; construction is explicit.
    struct alignas(alignof(T)) Slot {
        unsigned char bytes[sizeof(T)];
    };

    void grow()
    {
        chunks_.push_back(std::make_unique<Slot[]>(chunk_capacity_));
        Slot* base = chunks_.back().get();
        // Reverse push so acquire() walks the chunk front to back. The
        // cast yields an address for placement-new, not yet an object;
        // acquire() materializes the T.
        for (std::size_t i = chunk_capacity_; i-- > 0;)
            free_.push_back(reinterpret_cast<T*>(base[i].bytes));
    }

    std::size_t chunk_capacity_;
    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::vector<T*> free_;
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_PACKET_SLAB_HPP_
