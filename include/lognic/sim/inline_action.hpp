/**
 * @file
 * Small-buffer-optimized event action for the DES hot path.
 *
 * `InlineAction` replaces `std::function<void()>` on the event calendar.
 * The difference that matters at millions of events per second: the
 * callable is stored *inline* in the event record, never on the heap, and
 * is required (at compile time) to be trivially copyable and trivially
 * destructible. That buys three things:
 *
 *  - `EventQueue::schedule_at` never allocates — libstdc++'s
 *    `std::function` spills any capture larger than 16 bytes to the heap,
 *    and every simulator closure capturing `this` plus a packet pointer
 *    plus a couple of scalars is larger than that;
 *  - heap sifts move raw bytes — no copy constructors, no destructor
 *    bookkeeping, so the calendar's Event records stay memcpy-friendly;
 *  - event destruction is free — popping an event runs no destructor.
 *
 * The capacity is a hard compile-time budget: a closure that outgrows
 * `kCapacity` (or captures a non-trivially-copyable payload such as a
 * `std::string` or `std::function` by value) fails to compile with a
 * static_assert naming the violated constraint, rather than silently
 * reintroducing allocations. Capture heavyweight state by pointer or
 * reference — the simulator owns it elsewhere (e.g. the packet slab).
 */
#ifndef LOGNIC_SIM_INLINE_ACTION_HPP_
#define LOGNIC_SIM_INLINE_ACTION_HPP_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lognic::sim {

class InlineAction {
  public:
    /**
     * Inline payload budget in bytes. Sized for the largest simulator
     * closure (`this` + packet pointer + a vertex id + four 8-byte
     * scalars = 56 bytes); together with the invoke pointer and the
     * (when, seq) key this keeps one Event at 80 bytes. Growing a closure
     * past the budget is a compile error — prefer slimming the capture.
     */
    static constexpr std::size_t kCapacity = 56;

    InlineAction() = default;

    /// Wrap any trivially-copyable callable that fits the inline budget.
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InlineAction>>>
    InlineAction(F&& fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kCapacity,
                      "InlineAction: closure exceeds the inline budget; "
                      "capture large state by pointer (e.g. a slab Packet*)");
        static_assert(alignof(Fn) <= alignof(void*),
                      "InlineAction: over-aligned closures are not "
                      "supported on the event hot path");
        static_assert(std::is_trivially_copyable_v<Fn>,
                      "InlineAction: event closures must be trivially "
                      "copyable (no std::function/std::string captures)");
        static_assert(std::is_trivially_destructible_v<Fn>,
                      "InlineAction: event closures must be trivially "
                      "destructible (events are dropped without running "
                      "destructors)");
        ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
        invoke_ = [](void* storage) {
            (*std::launder(reinterpret_cast<Fn*>(storage)))();
        };
    }

    void operator()() { invoke_(storage_); }

    explicit operator bool() const { return invoke_ != nullptr; }

  private:
    void (*invoke_)(void*){nullptr};
    alignas(alignof(void*)) unsigned char storage_[kCapacity]{};
};

static_assert(std::is_trivially_copyable_v<InlineAction>,
              "InlineAction must stay memcpy-friendly: heap sifts move "
              "event records as raw bytes");

} // namespace lognic::sim

#endif // LOGNIC_SIM_INLINE_ACTION_HPP_
