/**
 * @file
 * Measurement helpers: latency distributions and throughput meters with
 * warmup trimming.
 *
 * Warmup convention (applied uniformly across the sim): the measurement
 * window is the half-open interval (warmup_end, horizon] — a completion at
 * exactly `warmup_end` still belongs to the warmup and is discarded, while
 * one at exactly `horizon` is counted. The per-vertex area accounting in
 * the simulator uses the same boundaries.
 */
#ifndef LOGNIC_SIM_STATS_HPP_
#define LOGNIC_SIM_STATS_HPP_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "lognic/core/units.hpp"
#include "lognic/sim/event_queue.hpp"

namespace lognic::sim {

/**
 * Collects per-request latencies; samples at or before the warmup cut are
 * dropped.
 *
 * Threading contract — record, seal, then read:
 *
 *  1. a single writer calls record() while the simulation runs;
 *  2. that writer calls seal() exactly when recording is done — the one
 *     place the sample buffer is sorted;
 *  3. after seal(), every accessor is a pure const read, safe to call
 *     concurrently from any number of threads (replication aggregators
 *     read p50/p99 of finished runs in parallel).
 *
 * quantile()/p50()/p99()/max() on an unsealed, non-empty recorder throw
 * std::logic_error rather than sorting behind a `const` facade — the
 * lazy-sort-under-const scheme this replaces was a data race the moment
 * two readers touched the same recorder. mean() and count() do not need
 * sorted data and work in either phase. record() after seal() reopens the
 * write phase (and requires a new seal() before ordered reads).
 *
 * Empty-set behaviour is explicit: every statistic returns `std::nullopt`
 * when no sample survived the warmup trim. Callers that aggregate across
 * replications (the runner's Replicator) must check for absence rather
 * than averaging in a fake 0.
 */
class LatencyRecorder {
  public:
    explicit LatencyRecorder(SimTime warmup_end = 0.0)
        : warmup_end_(warmup_end)
    {
    }

    void record(SimTime completion_time, Seconds latency);

    /**
     * End the write phase: sort the samples once. Idempotent. After this,
     * all accessors are thread-safe const reads until the next record().
     */
    void seal();

    bool sealed() const { return sorted_; }

    std::size_t count() const { return samples_.size(); }
    std::optional<Seconds> mean() const;
    /**
     * Nearest-rank quantile on the sorted samples: for n samples, returns
     * the value at 1-based rank max(1, ceil(q * n)). q = 0 and q = 1 are
     * handled exactly as the minimum (rank 1) and maximum (rank n), and
     * the interior rank computation snaps q * n values that floating
     * point put one ulp past an exact integer back onto it (0.07 * 100
     * must mean rank 7, not 8). With a single sample every q returns that
     * sample.
     * @throws std::invalid_argument when q is outside [0, 1].
     * @throws std::logic_error when samples exist but seal() has not been
     *         called since the last record().
     */
    std::optional<Seconds> quantile(double q) const;
    std::optional<Seconds> p50() const { return quantile(0.50); }
    std::optional<Seconds> p99() const { return quantile(0.99); }
    /// @throws std::logic_error on an unsealed, non-empty recorder.
    std::optional<Seconds> max() const;

    /// Raw samples in their current order (insertion order before seal(),
    /// sorted after). Checkpointing captures them pre-seal: mean() is a
    /// float sum over this order, so a restored recorder must replay the
    /// exact insertion order to stay bit-identical.
    const std::vector<double>& samples() const { return samples_; }

    /// Replace the recorder's state wholesale (checkpoint restore).
    void restore(std::vector<double> samples, bool sealed)
    {
        samples_ = std::move(samples);
        sorted_ = sealed;
    }

  private:
    SimTime warmup_end_;
    std::vector<double> samples_; ///< seconds; sorted by seal()
    bool sorted_{false};
};

/**
 * Counts events inside the measurement window (warmup_end, horizon] —
 * the same half-open convention every other recorder uses. Used for drop
 * and offered-load accounting so drop_rate compares drops and arrivals
 * over the *same* window (counting warmup drops while discarding warmup
 * completions biases drop_rate high at short horizons).
 *
 * Both window edges are enforced: an event at or before `warmup_end` or
 * after `horizon` is ignored, so drain-time completions past the horizon
 * cannot inflate drop/offered-load accounting. The horizon defaults to
 * +infinity for callers that only need the warmup cut.
 */
class WindowedCounter {
  public:
    explicit WindowedCounter(
        SimTime warmup_end = 0.0,
        SimTime horizon = std::numeric_limits<SimTime>::infinity())
        : warmup_end_(warmup_end), horizon_(horizon)
    {
    }

    /// Count the event iff it falls inside (warmup_end, horizon].
    void record(SimTime t)
    {
        if (t > warmup_end_ && t <= horizon_)
            ++count_;
    }

    std::uint64_t count() const { return count_; }

    /// Replace the count wholesale (checkpoint restore).
    void restore(std::uint64_t count) { count_ = count; }

  private:
    SimTime warmup_end_;
    SimTime horizon_;
    std::uint64_t count_{0};
};

/// Counts delivered bytes/requests after warmup; yields rates.
class ThroughputMeter {
  public:
    explicit ThroughputMeter(SimTime warmup_end = 0.0)
        : warmup_end_(warmup_end)
    {
    }

    void record(SimTime completion_time, Bytes payload);

    std::uint64_t requests() const { return requests_; }
    Bytes total() const { return Bytes{bytes_}; }

    /**
     * Delivered bandwidth over (warmup_end, measure_end]. A zero-width or
     * inverted window (measure_end <= warmup_end, e.g. a run truncated
     * inside its warmup) yields a safe 0 rate, never inf/NaN — nothing can
     * have been recorded in such a window, so 0 is also the honest value.
     */
    Bandwidth bandwidth(SimTime measure_end) const;
    /// Delivered request rate over the same window; same zero-window rule.
    OpsRate rate(SimTime measure_end) const;

    /// Replace the totals wholesale (checkpoint restore). @p bytes is the
    /// running double sum, restored bit-exactly.
    void restore(double bytes, std::uint64_t requests)
    {
        bytes_ = bytes;
        requests_ = requests;
    }

  private:
    SimTime warmup_end_;
    double bytes_{0.0};
    std::uint64_t requests_{0};
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_STATS_HPP_
