/**
 * @file
 * Measurement helpers: latency distributions and throughput meters with
 * warmup trimming.
 */
#ifndef LOGNIC_SIM_STATS_HPP_
#define LOGNIC_SIM_STATS_HPP_

#include <cstdint>
#include <vector>

#include "lognic/core/units.hpp"
#include "lognic/sim/event_queue.hpp"

namespace lognic::sim {

/// Collects per-request latencies; samples before the warmup cut are dropped.
class LatencyRecorder {
  public:
    explicit LatencyRecorder(SimTime warmup_end = 0.0)
        : warmup_end_(warmup_end)
    {
    }

    void record(SimTime completion_time, Seconds latency);

    std::size_t count() const { return samples_.size(); }
    Seconds mean() const;
    /// Quantile in [0, 1]; nearest-rank on the sorted samples.
    Seconds quantile(double q) const;
    Seconds p50() const { return quantile(0.50); }
    Seconds p99() const { return quantile(0.99); }
    Seconds max() const;

  private:
    SimTime warmup_end_;
    mutable std::vector<double> samples_; ///< seconds; sorted lazily
    mutable bool sorted_{false};
};

/// Counts delivered bytes/requests after warmup; yields rates.
class ThroughputMeter {
  public:
    explicit ThroughputMeter(SimTime warmup_end = 0.0)
        : warmup_end_(warmup_end)
    {
    }

    void record(SimTime completion_time, Bytes payload);

    std::uint64_t requests() const { return requests_; }
    Bytes total() const { return Bytes{bytes_}; }

    /// Delivered bandwidth over (warmup_end, measure_end].
    Bandwidth bandwidth(SimTime measure_end) const;
    /// Delivered request rate over the same window.
    OpsRate rate(SimTime measure_end) const;

  private:
    SimTime warmup_end_;
    double bytes_{0.0};
    std::uint64_t requests_{0};
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_STATS_HPP_
