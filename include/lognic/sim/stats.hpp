/**
 * @file
 * Measurement helpers: latency distributions and throughput meters with
 * warmup trimming.
 *
 * Warmup convention (applied uniformly across the sim): the measurement
 * window is the half-open interval (warmup_end, horizon] — a completion at
 * exactly `warmup_end` still belongs to the warmup and is discarded. The
 * per-vertex area accounting in the simulator uses the same boundary.
 */
#ifndef LOGNIC_SIM_STATS_HPP_
#define LOGNIC_SIM_STATS_HPP_

#include <cstdint>
#include <optional>
#include <vector>

#include "lognic/core/units.hpp"
#include "lognic/sim/event_queue.hpp"

namespace lognic::sim {

/**
 * Collects per-request latencies; samples at or before the warmup cut are
 * dropped.
 *
 * Empty-set behaviour is explicit: every statistic returns `std::nullopt`
 * when no sample survived the warmup trim. Callers that aggregate across
 * replications (the runner's Replicator) must check for absence rather
 * than averaging in a fake 0.
 */
class LatencyRecorder {
  public:
    explicit LatencyRecorder(SimTime warmup_end = 0.0)
        : warmup_end_(warmup_end)
    {
    }

    void record(SimTime completion_time, Seconds latency);

    std::size_t count() const { return samples_.size(); }
    std::optional<Seconds> mean() const;
    /**
     * Nearest-rank quantile on the sorted samples: for n samples, returns
     * the value at 1-based rank max(1, ceil(q * n)). q = 0 is therefore
     * defined as the minimum (rank 1) and q = 1 as the maximum (rank n).
     * @throws std::invalid_argument when q is outside [0, 1].
     */
    std::optional<Seconds> quantile(double q) const;
    std::optional<Seconds> p50() const { return quantile(0.50); }
    std::optional<Seconds> p99() const { return quantile(0.99); }
    std::optional<Seconds> max() const;

  private:
    SimTime warmup_end_;
    mutable std::vector<double> samples_; ///< seconds; sorted lazily
    mutable bool sorted_{false};
};

/**
 * Counts events inside the measurement window (warmup_end, horizon] —
 * the same half-open convention every other recorder uses. Used for drop
 * and offered-load accounting so drop_rate compares drops and arrivals
 * over the *same* window (counting warmup drops while discarding warmup
 * completions biases drop_rate high at short horizons).
 */
class WindowedCounter {
  public:
    explicit WindowedCounter(SimTime warmup_end = 0.0)
        : warmup_end_(warmup_end)
    {
    }

    /// Count the event iff it falls after the warmup cut.
    void record(SimTime t)
    {
        if (t > warmup_end_)
            ++count_;
    }

    std::uint64_t count() const { return count_; }

  private:
    SimTime warmup_end_;
    std::uint64_t count_{0};
};

/// Counts delivered bytes/requests after warmup; yields rates.
class ThroughputMeter {
  public:
    explicit ThroughputMeter(SimTime warmup_end = 0.0)
        : warmup_end_(warmup_end)
    {
    }

    void record(SimTime completion_time, Bytes payload);

    std::uint64_t requests() const { return requests_; }
    Bytes total() const { return Bytes{bytes_}; }

    /// Delivered bandwidth over (warmup_end, measure_end].
    Bandwidth bandwidth(SimTime measure_end) const;
    /// Delivered request rate over the same window.
    OpsRate rate(SimTime measure_end) const;

  private:
    SimTime warmup_end_;
    double bytes_{0.0};
    std::uint64_t requests_{0};
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_STATS_HPP_
