/**
 * @file
 * Simulator of the PANIC programmable NIC (Lin et al., OSDI '20), the
 * academic prototype used by the paper's case study #5 (S4.6).
 *
 * PANIC's architecture: an RMT pipeline stamps each packet with an
 * offloading chain; a switching fabric moves packets between components; a
 * central scheduler steers packets to compute units using a pull/push
 * credit mechanism — each unit exposes `credits` buffer slots, a packet is
 * dispatched only while a credit is available, and the credit returns to
 * the scheduler once the unit finishes the packet. Credits therefore bound
 * the per-unit in-flight window: too few credits stall the pipeline (the
 * credit-return round trip is exposed), more credits buy throughput at the
 * cost of queueing latency — exactly the Figure 15 trade-off.
 */
#ifndef LOGNIC_SIM_PANIC_HPP_
#define LOGNIC_SIM_PANIC_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "lognic/core/roofline.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::sim {

/// One PANIC compute unit.
struct PanicUnit {
    std::string name;
    core::ServiceModel service; ///< per-engine request service time
    std::uint32_t parallelism{1};
    std::uint32_t credits{8}; ///< scheduler-visible buffer slots
};

/// A per-packet offloading chain: the unit indices to traverse in order.
struct PanicChain {
    std::vector<std::size_t> units;
    double weight{1.0}; ///< fraction of packets following this chain
};

struct PanicConfig {
    std::vector<PanicUnit> units;
    std::vector<PanicChain> chains;
    Bandwidth fabric_bw{Bandwidth::from_gbps(100.0)};
    Seconds hop_latency{Seconds::from_nanos(500.0)}; ///< per fabric hop
    Seconds rmt_latency{Seconds::from_nanos(300.0)}; ///< parse + descriptor
    /// Per-unit pending slots at the central scheduler (the on-chip packet
    /// buffer share); overflow drops the packet. Bounded buffering is what
    /// makes over-provisioned credits cost latency instead of just memory.
    std::uint32_t scheduler_queue_capacity{16};
};

/**
 * Run the PANIC simulator under @p traffic.
 *
 * @throws std::invalid_argument on an empty/invalid configuration.
 */
SimResult simulate_panic(const PanicConfig& config,
                         const core::TrafficProfile& traffic,
                         SimOptions options = {});

/**
 * The analytic credit-window capacity of one unit (used by the LogNIC side
 * of case study #5): a window of `credits` requests of size @p request over
 * a (service + credit round-trip) cycle caps the unit's throughput at
 *
 *     credits * request / (service_time + 2 * hop + request / fabric).
 *
 * The unit's compute capacity still applies; the returned value is the
 * min of both.
 */
Bandwidth panic_credit_capacity(const PanicUnit& unit, Bytes request,
                                const PanicConfig& config);

} // namespace lognic::sim

#endif // LOGNIC_SIM_PANIC_HPP_
