/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal calendar: schedule closures at absolute simulated times and run
 * until a horizon. Ties are broken by insertion order (FIFO), which keeps
 * component behaviour deterministic for a fixed seed.
 *
 * The calendar is a hand-rolled binary min-heap over a std::vector rather
 * than std::priority_queue: top() of the standard adaptor is const, so the
 * dispatch loop would have to *copy* every Event (and its std::function
 * action) off the heap. The explicit heap moves events out instead, keeping
 * the hot loop allocation- and copy-free per dispatch.
 */
#ifndef LOGNIC_SIM_EVENT_QUEUE_HPP_
#define LOGNIC_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <vector>

namespace lognic::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Why a limited run_until() returned.
enum class RunOutcome {
    kDrained,     ///< the calendar emptied before the horizon
    kHorizon,     ///< simulated time reached the horizon
    kEventBudget, ///< RunLimits::max_events exhausted
    kAborted,     ///< RunLimits::should_abort returned true
};

/**
 * Watchdog limits for run_until. The event budget is deterministic (the
 * same run always stops at the same event); should_abort is for
 * wall-clock deadlines and is polled only every check_interval events to
 * keep clock reads off the hot path.
 */
struct RunLimits {
    std::uint64_t max_events{0}; ///< events per run_until call; 0 = unlimited
    std::function<bool()> should_abort;
    std::uint64_t check_interval{4096};
};

class EventQueue {
  public:
    using Action = std::function<void()>;

    SimTime now() const { return now_; }

    /// Schedule @p action at absolute time @p when (>= now).
    void schedule_at(SimTime when, Action action);

    /// Schedule @p action @p delay seconds from now.
    void schedule_in(SimTime delay, Action action)
    {
        schedule_at(now_ + delay, std::move(action));
    }

    /// Run events until the queue drains or simulated time passes @p horizon.
    void run_until(SimTime horizon);

    /**
     * run_until with a watchdog. On kEventBudget/kAborted, now() stays at
     * the last executed event's time (it does NOT advance to the horizon),
     * so callers can report how far the truncated run got.
     */
    RunOutcome run_until(SimTime horizon, const RunLimits& limits);

    /// Number of events executed so far.
    std::uint64_t executed() const { return executed_; }

    bool empty() const { return events_.empty(); }

  private:
    struct Event {
        SimTime when;
        std::uint64_t seq; ///< FIFO tie-break
        Action action;
    };

    /// Strict (time, seq) ordering: the heap's min is the next event.
    static bool earlier(const Event& a, const Event& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    /// Remove and return the minimum; moves, never copies, the action.
    Event pop_top();

    std::vector<Event> events_; ///< binary min-heap by (when, seq)
    SimTime now_{0.0};
    std::uint64_t next_seq_{0};
    std::uint64_t executed_{0};
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_EVENT_QUEUE_HPP_
