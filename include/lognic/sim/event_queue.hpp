/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal calendar: schedule callables at absolute simulated times and
 * run until a horizon. Ties are broken by insertion order (FIFO), which
 * keeps component behaviour deterministic for a fixed seed.
 *
 * Hot-path memory model (see DESIGN.md §10): the calendar is built to be
 * allocation-free in steady state.
 *
 *  - Actions are `InlineAction`s — typed, small-buffer-optimized callables
 *    stored inline in the event record. `schedule_at` never touches the
 *    heap (closures that would not fit inline fail to compile).
 *  - Event records are trivially copyable, so the hand-rolled binary
 *    min-heap sifts them as raw bytes. Sifting uses hole insertion: the
 *    displaced slot travels down (or up) as a hole and the moving event is
 *    written exactly once, instead of one three-way `std::swap` of full
 *    Event structs per level.
 *  - The heap's backing vector only ever grows; once a run reaches its
 *    high-water event population, scheduling is pointer-bump cheap.
 *
 * The (when, seq) strict total order makes dispatch order independent of
 * the heap's internal layout, so these optimizations are bit-identical to
 * the previous representation by construction — the determinism test
 * suite is the oracle.
 */
#ifndef LOGNIC_SIM_EVENT_QUEUE_HPP_
#define LOGNIC_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "lognic/sim/inline_action.hpp"

namespace lognic::sim {

/// Simulated time in seconds.
using SimTime = double;

/// Why a limited run_until() returned.
enum class RunOutcome {
    kDrained,     ///< the calendar emptied before the horizon
    kHorizon,     ///< simulated time reached the horizon
    kEventBudget, ///< RunLimits::max_events exhausted
    kAborted,     ///< RunLimits::should_abort returned true
};

/**
 * Watchdog limits for run_until. The event budget is deterministic (the
 * same run always stops at the same event); should_abort is for
 * wall-clock deadlines and is polled only every check_interval events to
 * keep clock reads off the hot path. (should_abort stays a std::function:
 * it is cold configuration state, not an event.)
 */
struct RunLimits {
    std::uint64_t max_events{0}; ///< events per run_until call; 0 = unlimited
    std::function<bool()> should_abort;
    std::uint64_t check_interval{4096};
};

class EventQueue {
  public:
    /// Inline typed action; converting from a closure is allocation-free.
    using Action = InlineAction;

    SimTime now() const { return now_; }

    /// Schedule @p action at absolute time @p when (>= now). Returns the
    /// sequence number assigned (the FIFO tie-break) — checkpointing
    /// records it so a restored calendar replays the exact (when, seq)
    /// dispatch order.
    std::uint64_t schedule_at(SimTime when, Action action);

    /// Schedule @p action @p delay seconds from now.
    std::uint64_t schedule_in(SimTime delay, Action action)
    {
        return schedule_at(now_ + delay, action);
    }

    /// Run events until the queue drains or simulated time passes @p horizon.
    void run_until(SimTime horizon);

    /**
     * run_until with a watchdog. On kEventBudget/kAborted, now() stays at
     * the last executed event's time (it does NOT advance to the horizon),
     * so callers can report how far the truncated run got.
     */
    RunOutcome run_until(SimTime horizon, const RunLimits& limits);

    /// Number of events executed so far.
    std::uint64_t executed() const { return executed_; }

    bool empty() const { return events_.empty(); }

    /// Pending-event count (for snapshot sanity checks).
    std::size_t size() const { return events_.size(); }

    /// Next sequence number to be assigned (checkpoint state).
    std::uint64_t next_seq() const { return next_seq_; }

    // --- snapshot restore (see lognic::ckpt) -----------------------------
    //
    // A calendar of InlineActions cannot be serialized directly (the
    // closures hold raw pointers into the simulator); instead the owner
    // records enough metadata to *reconstruct* each pending event and
    // replays it here. restore_clock() first, then one restore_event()
    // per pending event with its original (when, seq) pair: the heap's
    // dispatch order depends only on (when, seq), so the restored run is
    // bit-identical to the uninterrupted one.

    /**
     * Reset clock state on an empty calendar.
     * @throws std::logic_error when events are pending.
     */
    void restore_clock(SimTime now, std::uint64_t next_seq,
                       std::uint64_t executed);

    /**
     * Re-insert a pending event with its original sequence number.
     * @throws std::logic_error on seq >= next_seq() or when < now().
     */
    void restore_event(SimTime when, std::uint64_t seq, Action action);

  private:
    struct Event {
        SimTime when;
        std::uint64_t seq; ///< FIFO tie-break
        Action action;
    };
    static_assert(std::is_trivially_copyable_v<Event>,
                  "Event must sift as raw bytes");

    /// Strict (time, seq) ordering: the heap's min is the next event.
    static bool earlier(const Event& a, const Event& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    /// Remove and return the minimum (hole-insertion sift-down).
    Event pop_top();

    std::vector<Event> events_; ///< binary min-heap by (when, seq)
    SimTime now_{0.0};
    std::uint64_t next_seq_{0};
    std::uint64_t executed_{0};
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_EVENT_QUEUE_HPP_
