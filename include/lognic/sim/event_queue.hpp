/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal calendar: schedule closures at absolute simulated times and run
 * until a horizon. Ties are broken by insertion order (FIFO), which keeps
 * component behaviour deterministic for a fixed seed.
 *
 * The calendar is a hand-rolled binary min-heap over a std::vector rather
 * than std::priority_queue: top() of the standard adaptor is const, so the
 * dispatch loop would have to *copy* every Event (and its std::function
 * action) off the heap. The explicit heap moves events out instead, keeping
 * the hot loop allocation- and copy-free per dispatch.
 */
#ifndef LOGNIC_SIM_EVENT_QUEUE_HPP_
#define LOGNIC_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <vector>

namespace lognic::sim {

/// Simulated time in seconds.
using SimTime = double;

class EventQueue {
  public:
    using Action = std::function<void()>;

    SimTime now() const { return now_; }

    /// Schedule @p action at absolute time @p when (>= now).
    void schedule_at(SimTime when, Action action);

    /// Schedule @p action @p delay seconds from now.
    void schedule_in(SimTime delay, Action action)
    {
        schedule_at(now_ + delay, std::move(action));
    }

    /// Run events until the queue drains or simulated time passes @p horizon.
    void run_until(SimTime horizon);

    /// Number of events executed so far.
    std::uint64_t executed() const { return executed_; }

    bool empty() const { return events_.empty(); }

  private:
    struct Event {
        SimTime when;
        std::uint64_t seq; ///< FIFO tie-break
        Action action;
    };

    /// Strict (time, seq) ordering: the heap's min is the next event.
    static bool earlier(const Event& a, const Event& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seq < b.seq;
    }

    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    /// Remove and return the minimum; moves, never copies, the action.
    Event pop_top();

    std::vector<Event> events_; ///< binary min-heap by (when, seq)
    SimTime now_{0.0};
    std::uint64_t next_seq_{0};
    std::uint64_t executed_{0};
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_EVENT_QUEUE_HPP_
