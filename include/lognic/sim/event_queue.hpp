/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A minimal calendar: schedule closures at absolute simulated times and run
 * until a horizon. Ties are broken by insertion order (FIFO), which keeps
 * component behaviour deterministic for a fixed seed.
 */
#ifndef LOGNIC_SIM_EVENT_QUEUE_HPP_
#define LOGNIC_SIM_EVENT_QUEUE_HPP_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace lognic::sim {

/// Simulated time in seconds.
using SimTime = double;

class EventQueue {
  public:
    using Action = std::function<void()>;

    SimTime now() const { return now_; }

    /// Schedule @p action at absolute time @p when (>= now).
    void schedule_at(SimTime when, Action action);

    /// Schedule @p action @p delay seconds from now.
    void schedule_in(SimTime delay, Action action)
    {
        schedule_at(now_ + delay, std::move(action));
    }

    /// Run events until the queue drains or simulated time passes @p horizon.
    void run_until(SimTime horizon);

    /// Number of events executed so far.
    std::uint64_t executed() const { return executed_; }

    bool empty() const { return events_.empty(); }

  private:
    struct Event {
        SimTime when;
        std::uint64_t seq; ///< FIFO tie-break
        Action action;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    SimTime now_{0.0};
    std::uint64_t next_seq_{0};
    std::uint64_t executed_{0};
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_EVENT_QUEUE_HPP_
