/**
 * @file
 * Packet-level discrete-event simulator of the LogNIC hardware model.
 *
 * This is the repository's stand-in for the paper's physical SmartNIC
 * testbeds: it takes the *same* hardware model, execution graph, and traffic
 * profile the analytical model takes, but instead of closed forms it
 * simulates individual packets through queues, parallel engines, and
 * contended interconnect/memory links. Every "Measured" series in the
 * reproduced figures comes from this simulator; every "LogNIC" series from
 * the analytical model — so model validation compares two independent
 * implementations of the same semantics.
 *
 * Semantics mirrored from the model:
 *  - ingress offers BW_in of traffic with the profile's packet mix
 *    (Poisson arrivals by default, matching the M/M/1/N assumptions);
 *  - each IP vertex has a finite queue (N_vi, drop on overflow), D_vi
 *    engines, and a per-request service time drawn from the IP's roofline
 *    engine model at the vertex's request granularity;
 *  - edges move data over the shared interface and/or memory links (FIFO
 *    bandwidth servers, so contention emerges) and optional dedicated links;
 *  - the computation-transfer overhead O_i is charged as latency between
 *    service completion and the outbound transfer.
 */
#ifndef LOGNIC_SIM_NIC_SIMULATOR_HPP_
#define LOGNIC_SIM_NIC_SIMULATOR_HPP_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/fault/fault_plan.hpp"
#include "lognic/io/json.hpp"
#include "lognic/obs/attribution.hpp"
#include "lognic/obs/metrics.hpp"
#include "lognic/obs/trace.hpp"
#include "lognic/sim/event_queue.hpp"
#include "lognic/sim/random.hpp"
#include "lognic/sim/stats.hpp"
#include "lognic/traffic/trace.hpp"

namespace lognic::sim {

/**
 * ON/OFF burst modulation of the arrival process: the instantaneous rate
 * alternates between `intensity` x nominal (ON) and a compensating low
 * rate (OFF) so the long-run mean stays at the profile's BW_in. Models the
 * "burst degree" dimension of traffic profiles (S2.4).
 */
struct BurstModel {
    bool enabled{false};
    Seconds on{Seconds::from_micros(50.0)};
    Seconds off{Seconds::from_micros(50.0)};
    /// Rate multiplier during ON periods; must satisfy
    /// intensity * on/(on+off) <= 1 so the OFF rate stays non-negative.
    double intensity{1.8};
};

/**
 * Watchdog limits for a single run. The event budget is deterministic —
 * the same configuration truncates at the same simulated instant on every
 * machine — while the wall-clock deadline is a last-resort guard whose
 * trigger point varies with host load. 0 disables either limit.
 */
struct WatchdogOptions {
    std::uint64_t max_events{0};     ///< simulated-event budget (0 = off)
    double wall_clock_seconds{0.0};  ///< host-time deadline (0 = off)
};

struct SimOptions {
    /// Simulated duration in seconds.
    SimTime duration{0.05};
    /// Fraction of the duration treated as warmup (stats discarded).
    double warmup_fraction{0.2};
    std::uint64_t seed{42};
    /// Exponential service times (matches the model's M/M/1/N assumption);
    /// false gives deterministic service.
    bool exponential_service{true};
    /// Poisson arrivals; false gives a paced (deterministic) generator.
    bool poisson_arrivals{true};
    /// Optional burst modulation (requires poisson_arrivals).
    BurstModel burst;
    /**
     * Fault schedule replayed mid-run (engines offline, degraded links,
     * drop bursts, ...). An empty plan is the default and is guaranteed
     * bit-identical to a build without fault support: no extra RNG draws,
     * no behavioral branches taken.
     */
    fault::FaultPlan faults;
    /// Runaway-run protection; truncated runs return partial results.
    WatchdogOptions watchdog;
    /**
     * Observability: attach a TraceSink to record packet lifecycle spans
     * and per-vertex counter tracks. Default-off; with no sink the
     * simulator's hot path pays a null-pointer test and nothing else, and
     * results are bit-identical to an untraced run (tracing never draws
     * from the RNG).
     */
    obs::TraceOptions trace{};
};

/**
 * Check option invariants: duration > 0, warmup_fraction in [0, 1), a
 * well-formed burst model (positive phases, intensity >= 1 and
 * intensity * on/(on+off) <= 1, Poisson arrivals), a valid fault plan,
 * non-negative watchdog limits.
 *
 * Called by the simulator constructors; also usable standalone to vet
 * options parsed from user input. @throws std::invalid_argument.
 */
void validate(const SimOptions& options);

/// Per-vertex measurement (IP and rate-limiter vertices only).
struct VertexStats {
    std::string name;
    /// Fraction of (engine x time) spent serving, in [0, 1].
    double utilization{0.0};
    /// Time-averaged requests in the system (queue + in service).
    double mean_occupancy{0.0};
    std::uint64_t served{0};
    std::uint64_t dropped{0};
};

struct SimResult {
    Bandwidth delivered{Bandwidth{0.0}};   ///< app bytes/s out of egress
    OpsRate delivered_ops{OpsRate{0.0}};
    /// Latency fields hold the empty-set sentinel 0.0 when `completed` is
    /// zero (nothing finished after warmup); check before aggregating.
    Seconds mean_latency{0.0};
    Seconds p50_latency{0.0};
    Seconds p99_latency{0.0};
    /// Packets generated over the whole run, warmup included (the offered
    /// load; kept lifetime-wide so callers can sanity-check the generator).
    std::uint64_t generated{0};
    std::uint64_t completed{0};
    /**
     * Drops inside the measurement window (warmup_end, horizon] — the same
     * convention completions use. `drop_rate` divides these by the
     * arrivals in the same window, so it is an unbiased estimate of the
     * steady-state drop probability even at short horizons; it is NOT
     * dropped / generated (those span different windows).
     */
    std::uint64_t dropped{0};
    double drop_rate{0.0};
    /**
     * Lifetime (whole-run) accounting, the terms of the packet-
     * conservation invariant the simulator asserts at end of run:
     *   generated == completed_total + dropped_total + in_flight.
     * `in_flight` counts packets still inside the device when the run
     * ended (mid-transfer, queued, or in service) — nonzero even for
     * healthy runs, and large for truncated ones.
     */
    std::uint64_t completed_total{0};
    std::uint64_t dropped_total{0};
    std::uint64_t in_flight{0};
    /**
     * Watchdog outcome. A truncated run carries valid partial statistics
     * normalized to `sim_time_reached` (not the requested duration);
     * truncation_reason is "event_budget" or "wall_clock".
     */
    bool truncated{false};
    std::string truncation_reason;
    double sim_time_reached{0.0};
    std::uint64_t events_executed{0};
    /// Per-vertex breakdown; the most utilized vertex is the measured
    /// bottleneck (the sim-side counterpart of the model's min() term).
    std::vector<VertexStats> vertex_stats;
    /**
     * Structured snapshot of every measurement above (and a latency
     * histogram the scalar fields cannot carry): "sim.*" counters/gauges
     * plus "vertex.<name>.*" series. The scalar fields remain as the
     * quick-access view; the snapshot is what the runner aggregates
     * across replications and what tooling serializes.
     */
    obs::MetricsSnapshot metrics;

    /// The vertex with the highest utilization; empty stats if none.
    const VertexStats& busiest() const;
};

/// The per-vertex measurements as attribution observations.
std::vector<obs::VertexObservation> observations(const SimResult& result);

class NicSimulator {
  public:
    /**
     * Build a simulator instance. The graph is validated against @p hw.
     * The referenced hardware model and graph must outlive the simulator.
     */
    NicSimulator(const core::HardwareModel& hw,
                 const core::ExecutionGraph& graph,
                 const core::TrafficProfile& traffic, SimOptions options = {});
    ~NicSimulator();

    NicSimulator(const NicSimulator&) = delete;
    NicSimulator& operator=(const NicSimulator&) = delete;

    /// Run the full simulation and collect results. Call once.
    SimResult run();

    // --- segmented (checkpointable) execution ----------------------------
    //
    // begin() / advance() / save_state() / load_state() / finalize() run
    // the same simulation as run(), cut into event-budget segments with a
    // serializable snapshot at every segment boundary. The segmentation is
    // invisible to the results: the event budget is per-advance() call and
    // dispatch order depends only on (when, seq), so
    //
    //     begin(); while (!advance(k)) {} finalize();
    //
    // is bit-identical to run() for every k — and so is any prefix run in
    // one process, snapshotted, and resumed via load_state() in another.
    //
    // Restrictions (all throw): tracing must be off (trace spans are
    // streamed out, not snapshotable), trace replay is unsupported, and
    // the watchdog must be unset (segment budgets subsume it).

    /// Start segmented execution. Call once, before any advance().
    void begin();

    /**
     * Execute up to @p max_events events (> 0). Returns true when the run
     * is finished (calendar drained or horizon reached) — after which
     * finalize() collects the result.
     */
    bool advance(std::uint64_t max_events);

    /**
     * Serialize the complete mid-run state (clock, calendar, RNG, packet
     * and vertex state, recorders) at the current event boundary. Doubles
     * travel as hex bit patterns, so a dump → parse → load round-trip is
     * bit-exact. Callable between begin()/advance() calls.
     */
    io::Json save_state() const;

    /**
     * Restore a snapshot into a *fresh* simulator built from the same
     * (hw, graph, traffic, options). Replaces begin(): call advance()
     * next. @throws std::runtime_error on a config-fingerprint mismatch
     * or malformed snapshot, std::logic_error after begin()/run().
     */
    void load_state(const io::Json& snapshot);

    /// Collect results after advance() returned true. Call once.
    SimResult finalize();

  private:
    friend SimResult simulate_trace(const core::HardwareModel&,
                                    const core::ExecutionGraph&,
                                    const traffic::PacketTrace&,
                                    SimOptions);
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Convenience: build, run, return.
SimResult simulate(const core::HardwareModel& hw,
                   const core::ExecutionGraph& graph,
                   const core::TrafficProfile& traffic,
                   SimOptions options = {});

/**
 * Replay a packet trace through the graph: sizes arrive in recorded order
 * (cyclically) at the trace's mean rate. Order effects — bursts of large
 * packets, alternating patterns — are preserved, unlike the histogram
 * profile the analytical model sees.
 */
SimResult simulate_trace(const core::HardwareModel& hw,
                         const core::ExecutionGraph& graph,
                         const traffic::PacketTrace& trace,
                         SimOptions options = {});

} // namespace lognic::sim

#endif // LOGNIC_SIM_NIC_SIMULATOR_HPP_
