/**
 * @file
 * Random-number utilities for the simulator.
 *
 * One Rng instance per simulation keeps runs reproducible for a given seed.
 */
#ifndef LOGNIC_SIM_RANDOM_HPP_
#define LOGNIC_SIM_RANDOM_HPP_

#include <cstdint>
#include <random>
#include <vector>

namespace lognic::sim {

class Rng {
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform in [0, 1).
    double uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /// Exponential with the given mean (> 0).
    double exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /**
     * Positive sample with the given mean and squared coefficient of
     * variation: 0 = deterministic, 1 = exponential, otherwise gamma with
     * shape 1/scv.
     */
    double with_scv(double mean, double scv)
    {
        if (scv <= 0.0)
            return mean;
        if (scv == 1.0)
            return exponential(mean);
        const double shape = 1.0 / scv;
        return std::gamma_distribution<double>(shape, mean / shape)(
            engine_);
    }

    /// Index sampled from (unnormalized, non-negative) weights.
    std::size_t weighted_index(const std::vector<double>& weights)
    {
        std::discrete_distribution<std::size_t> d(weights.begin(),
                                                  weights.end());
        return d(engine_);
    }

    /// Bernoulli with probability @p p of true.
    bool coin(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_RANDOM_HPP_
