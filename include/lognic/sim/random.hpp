/**
 * @file
 * Random-number utilities for the simulator.
 *
 * One Rng instance per simulation keeps runs reproducible for a given seed.
 */
#ifndef LOGNIC_SIM_RANDOM_HPP_
#define LOGNIC_SIM_RANDOM_HPP_

#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace lognic::sim {

class Rng {
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /// Uniform in [0, 1).
    double uniform()
    {
        return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
    }

    /// Exponential with the given mean (> 0).
    double exponential(double mean)
    {
        return std::exponential_distribution<double>(1.0 / mean)(engine_);
    }

    /**
     * Positive sample with the given mean and squared coefficient of
     * variation: 0 = deterministic, otherwise gamma with shape 1/scv
     * (shape 1, i.e. scv = 1, is exactly the exponential distribution).
     *
     * Every scv > 0 goes through the same gamma sampler: an exact-compare
     * special case for scv == 1 would draw from a different engine stream
     * than scv = 1 ± epsilon and make sweep results discontinuous across
     * the exponential point.
     */
    double with_scv(double mean, double scv)
    {
        if (scv <= 0.0)
            return mean;
        const double shape = 1.0 / scv;
        return std::gamma_distribution<double>(shape, mean / shape)(
            engine_);
    }

    /**
     * Index sampled from (unnormalized, non-negative, finite) weights via
     * a manual CDF walk — one uniform draw, no allocation (this sits on
     * the per-packet steering hot path).
     *
     * @throws std::invalid_argument on empty, all-zero, negative, or
     * non-finite weights (std::discrete_distribution makes those UB).
     */
    std::size_t weighted_index(const std::vector<double>& weights)
    {
        double total = 0.0;
        for (double w : weights) {
            if (!(w >= 0.0) || !std::isfinite(w))
                throw std::invalid_argument(
                    "Rng::weighted_index: weights must be finite and "
                    "non-negative");
            total += w;
        }
        if (weights.empty() || total <= 0.0)
            throw std::invalid_argument(
                "Rng::weighted_index: need at least one positive weight");
        double u = uniform() * total;
        std::size_t last_positive = 0;
        for (std::size_t i = 0; i < weights.size(); ++i) {
            if (weights[i] <= 0.0)
                continue;
            last_positive = i;
            u -= weights[i];
            if (u < 0.0)
                return i;
        }
        // Floating-point accumulation can leave u barely non-negative
        // after the last subtraction; attribute the sliver to the final
        // positive-weight bucket.
        return last_positive;
    }

    /// Bernoulli with probability @p p of true.
    bool coin(double p)
    {
        return std::bernoulli_distribution(p)(engine_);
    }

    std::mt19937_64& engine() { return engine_; }

    /**
     * Exact engine state as text (the standard stream representation:
     * 312 decimal words + position). Every distribution here is
     * constructed fresh per draw, so the engine state IS the whole RNG
     * state — restore_state() resumes the stream mid-run bit-exactly.
     */
    std::string save_state() const
    {
        std::ostringstream os;
        os << engine_;
        return os.str();
    }

    /// @throws std::runtime_error on malformed state text.
    void restore_state(const std::string& state)
    {
        std::istringstream is(state);
        is >> engine_;
        if (is.fail())
            throw std::runtime_error("Rng::restore_state: malformed state");
    }

  private:
    std::mt19937_64 engine_;
};

} // namespace lognic::sim

#endif // LOGNIC_SIM_RANDOM_HPP_
