/**
 * @file
 * Parameter sensitivity analysis: which Table-2 knob moves the estimate?
 *
 * For every configurable parameter of a scenario — per-vertex parallelism
 * and partition, per-edge delta, the shared interface/memory bandwidths,
 * and the port speed — compute the log-log elasticity of the modelled
 * capacity and mean latency (d ln output / d ln parameter, by central
 * finite differences on multiplicative perturbations). An elasticity of
 * +1 on capacity means "scales proportionally"; 0 means "not the
 * bottleneck, don't bother". This ranks optimization targets before any
 * design work — the S2.3 "performance analysis" promise made quantitative.
 */
#ifndef LOGNIC_CORE_SENSITIVITY_HPP_
#define LOGNIC_CORE_SENSITIVITY_HPP_

#include <string>
#include <vector>

#include "lognic/core/model.hpp"

namespace lognic::core {

/// Sensitivity of the two outputs to one parameter.
struct Sensitivity {
    std::string parameter;       ///< e.g. "vertex:cores:parallelism"
    double capacity_elasticity{0.0};
    double latency_elasticity{0.0};
};

struct SensitivityOptions {
    /// Relative perturbation applied each way (central differences).
    double perturbation{0.05};
    /// Include integer knobs (parallelism) via +/- 1 engine differences.
    bool include_parallelism{true};
};

/**
 * Analyze every configurable parameter of the scenario. Results are
 * sorted by descending |capacity elasticity| (ties by latency impact).
 *
 * @throws std::invalid_argument on a malformed graph.
 */
std::vector<Sensitivity> analyze_sensitivity(
    const ExecutionGraph& graph, const HardwareModel& hw,
    const TrafficProfile& traffic, const SensitivityOptions& opts = {});

} // namespace lognic::core

#endif // LOGNIC_CORE_SENSITIVITY_HPP_
