/**
 * @file
 * LogNIC latency modeling (paper S3.6, Eq. 5-12).
 *
 * The latency of a path through the execution graph accumulates, per hop:
 * the source vertex's queueing delay Q_i (M/M/1/N, Eq. 9-12), its compute
 * time C_i / A_i (Eq. 7), the computation-transfer overhead O_i, and the
 * data movement time g_e / BW_e (interface + memory shares, Eq. 7). The
 * application latency is the traffic-weighted average over all paths
 * (Eq. 8).
 */
#ifndef LOGNIC_CORE_LATENCY_MODEL_HPP_
#define LOGNIC_CORE_LATENCY_MODEL_HPP_

#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"

namespace lognic::core {

class SolveScratch;

/// Latency contribution of one hop (one edge plus its source vertex).
struct HopLatency {
    std::string vertex;       ///< source vertex name
    Seconds queueing{0.0};    ///< Q_i
    Seconds compute{0.0};     ///< C_i / A_i
    Seconds overhead{0.0};    ///< O_i
    Seconds transfer{0.0};    ///< g_e / BW_e
    Seconds total() const
    {
        return queueing + compute + overhead + transfer;
    }
};

/// Latency of one ingress->egress path.
struct PathLatency {
    std::vector<HopLatency> hops;
    double weight{1.0}; ///< w_Pk (Eq. 8)
    Seconds total{0.0}; ///< Eq. 6
};

struct LatencyEstimate {
    /// T_attainable: traffic-weighted mean latency (Eq. 8).
    Seconds mean{0.0};
    std::vector<PathLatency> paths;
    /// Worst per-vertex packet-drop probability Pro_N across the graph.
    double max_drop_probability{0.0};
    /**
     * Predicted *delivered* bandwidth under finite-queue drops:
     * BW_in * sum_p w_p * prod_{v in p} (1 - Pro_N(v)). Matches the
     * attainable throughput when no queue saturates; under overload it is
     * what a testbed actually measures at the egress port.
     */
    Bandwidth goodput{Bandwidth{0.0}};
    /**
     * Approximate 99th-percentile latency — an extension beyond the paper
     * (S4.7 lists tail estimation as a limitation). Each vertex's sojourn
     * (Q_i + C_i) is treated as an independent random variable with the
     * modelled mean and the IP's service variability; each path's total is
     * moment-matched to a shifted gamma distribution (the deterministic
     * overhead/transfer parts are the shift), and the reported value
     * solves the path-weighted mixture's 1% survival. Exact for a single
     * M/M/1 stage; validated against the simulator elsewhere.
     */
    Seconds p99{0.0};
};

/**
 * Estimate latency for one packet class of @p traffic.
 *
 * Validates the graph; throws std::invalid_argument on malformed input.
 * An optional @p scratch reuses cached topology artifacts and per-vertex
 * analyses across solves over small deltas (bit-identical results; see
 * solve_scratch.hpp for the invalidation contract).
 */
LatencyEstimate estimate_latency(const ExecutionGraph& graph,
                                 const HardwareModel& hw,
                                 const TrafficProfile& traffic,
                                 std::size_t class_index = 0,
                                 SolveScratch* scratch = nullptr);

} // namespace lognic::core

#endif // LOGNIC_CORE_LATENCY_MODEL_HPP_
