/**
 * @file
 * Strong unit types used throughout LogNIC.
 *
 * The model juggles bandwidths (bits/s), data sizes (bytes), times (seconds),
 * and operation rates (ops/s). Mixing these up silently is the classic failure
 * mode of analytical-model code, so each quantity gets a distinct wrapper type
 * with only the physically meaningful operators defined. All wrappers store
 * double and are trivially copyable; there is no runtime cost.
 */
#ifndef LOGNIC_CORE_UNITS_HPP_
#define LOGNIC_CORE_UNITS_HPP_

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace lognic {

namespace detail {

/// CRTP base providing the shared arithmetic for scalar unit wrappers.
template <typename Derived>
struct UnitBase {
    double v{0.0};

    constexpr UnitBase() = default;
    constexpr explicit UnitBase(double value) : v(value) {}

    constexpr double value() const { return v; }

    friend constexpr Derived operator+(Derived a, Derived b)
    {
        return Derived{a.v + b.v};
    }
    friend constexpr Derived operator-(Derived a, Derived b)
    {
        return Derived{a.v - b.v};
    }
    friend constexpr Derived operator*(Derived a, double s)
    {
        return Derived{a.v * s};
    }
    friend constexpr Derived operator*(double s, Derived a)
    {
        return Derived{a.v * s};
    }
    friend constexpr Derived operator/(Derived a, double s)
    {
        return Derived{a.v / s};
    }
    /// Ratio of two like quantities is dimensionless.
    friend constexpr double operator/(Derived a, Derived b)
    {
        return a.v / b.v;
    }
    friend constexpr auto operator<=>(Derived a, Derived b)
    {
        return a.v <=> b.v;
    }
    friend constexpr bool operator==(Derived a, Derived b)
    {
        return a.v == b.v;
    }
    Derived& operator+=(Derived o)
    {
        v += o.v;
        return static_cast<Derived&>(*this);
    }
    Derived& operator-=(Derived o)
    {
        v -= o.v;
        return static_cast<Derived&>(*this);
    }
};

} // namespace detail

/// A duration. Canonical unit: seconds.
struct Seconds : detail::UnitBase<Seconds> {
    using UnitBase::UnitBase;
    constexpr double seconds() const { return v; }
    constexpr double millis() const { return v * 1e3; }
    constexpr double micros() const { return v * 1e6; }
    constexpr double nanos() const { return v * 1e9; }
    static constexpr Seconds from_micros(double us) { return Seconds{us * 1e-6}; }
    static constexpr Seconds from_nanos(double ns) { return Seconds{ns * 1e-9}; }
    static constexpr Seconds from_millis(double ms) { return Seconds{ms * 1e-3}; }
};

/// A data size. Canonical unit: bytes.
struct Bytes : detail::UnitBase<Bytes> {
    using UnitBase::UnitBase;
    constexpr double bytes() const { return v; }
    constexpr double bits() const { return v * 8.0; }
    constexpr double kib() const { return v / 1024.0; }
    static constexpr Bytes from_kib(double k) { return Bytes{k * 1024.0}; }
    static constexpr Bytes from_bits(double b) { return Bytes{b / 8.0}; }
};

/// A data rate. Canonical unit: bits per second.
struct Bandwidth : detail::UnitBase<Bandwidth> {
    using UnitBase::UnitBase;
    constexpr double bits_per_sec() const { return v; }
    constexpr double gbps() const { return v / 1e9; }
    constexpr double bytes_per_sec() const { return v / 8.0; }
    constexpr double gigabytes_per_sec() const { return v / 8e9; }
    static constexpr Bandwidth from_gbps(double g) { return Bandwidth{g * 1e9}; }
    static constexpr Bandwidth from_mbps(double m) { return Bandwidth{m * 1e6}; }
    static constexpr Bandwidth
    from_bytes_per_sec(double bps)
    {
        return Bandwidth{bps * 8.0};
    }
    static constexpr Bandwidth
    from_gigabytes_per_sec(double gBps)
    {
        return Bandwidth{gBps * 8e9};
    }
};

/// An operation rate (requests/packets/ops per second).
struct OpsRate : detail::UnitBase<OpsRate> {
    using UnitBase::UnitBase;
    constexpr double per_sec() const { return v; }
    constexpr double mops() const { return v / 1e6; }
    static constexpr OpsRate from_mops(double m) { return OpsRate{m * 1e6}; }
    static constexpr OpsRate from_kops(double k) { return OpsRate{k * 1e3}; }
};

// --- Cross-type physics -----------------------------------------------------

/// Transfer time of a payload over a link: bytes / bandwidth.
constexpr Seconds
operator/(Bytes size, Bandwidth bw)
{
    return Seconds{size.bits() / bw.bits_per_sec()};
}

/// Amount of data moved in a given time at a given rate.
constexpr Bytes
operator*(Bandwidth bw, Seconds t)
{
    return Bytes::from_bits(bw.bits_per_sec() * t.seconds());
}

constexpr Bytes
operator*(Seconds t, Bandwidth bw)
{
    return bw * t;
}

/// Rate achieved moving a payload in a given time.
constexpr Bandwidth
operator/(Bytes size, Seconds t)
{
    return Bandwidth{size.bits() / t.seconds()};
}

/// Per-packet service rate for a byte-rate engine and a packet size.
constexpr OpsRate
packets_per_sec(Bandwidth bw, Bytes pkt)
{
    return OpsRate{bw.bits_per_sec() / pkt.bits()};
}

/// Byte rate of an op-rate engine handling fixed-size packets.
constexpr Bandwidth
to_bandwidth(OpsRate r, Bytes pkt)
{
    return Bandwidth{r.per_sec() * pkt.bits()};
}

/// Mean service time of one operation.
constexpr Seconds
service_time(OpsRate r)
{
    return Seconds{1.0 / r.per_sec()};
}

inline std::ostream&
operator<<(std::ostream& os, Seconds s)
{
    return os << s.micros() << "us";
}

inline std::ostream&
operator<<(std::ostream& os, Bytes b)
{
    return os << b.bytes() << "B";
}

inline std::ostream&
operator<<(std::ostream& os, Bandwidth b)
{
    return os << b.gbps() << "Gbps";
}

inline std::ostream&
operator<<(std::ostream& os, OpsRate r)
{
    return os << r.mops() << "Mops";
}

} // namespace lognic

#endif // LOGNIC_CORE_UNITS_HPP_
