/**
 * @file
 * LogNIC generalization extensions (paper S3.7).
 *
 * Extension #1: consolidate multiple tenants' execution graphs on one
 * SmartNIC — shared mediums see the weighted sum of every tenant's demand,
 * and each tenant's achievable performance follows from its traffic share.
 *
 * Extension #2 (mixed traffic) lives in Model (core/model.hpp).
 *
 * Extension #3: accommodate non-work-conserving IPs by inserting a
 * rate-limiter pseudo-IP in front of them.
 */
#ifndef LOGNIC_CORE_EXTENSIONS_HPP_
#define LOGNIC_CORE_EXTENSIONS_HPP_

#include <vector>

#include "lognic/core/model.hpp"

namespace lognic::core {

/// One tenant's offloaded program and its traffic share.
struct TenantWorkload {
    const ExecutionGraph* graph{nullptr};
    TrafficProfile traffic;
    /// w_Gi: this tenant's fraction of total ingress data. Normalized.
    double weight{1.0};
};

/// Per-tenant slice of a consolidated estimate.
struct TenantEstimate {
    Bandwidth capacity{Bandwidth::from_gbps(0.0)}; ///< tenant's share
    Seconds latency{0.0};
};

struct ConsolidatedEstimate {
    /// Whole-SmartNIC attainable throughput across all tenants.
    Bandwidth total_capacity{Bandwidth::from_gbps(0.0)};
    /// Weighted-average latency across tenants.
    Seconds mean_latency{0.0};
    /// The entity that binds the whole NIC.
    ThroughputTerm bottleneck;
    std::vector<TenantEstimate> tenants;
};

/**
 * Extension #1: estimate the consolidated performance of several programs
 * sharing one SmartNIC.
 *
 * Tenant graphs must already encode their resource split via the node
 * partition parameter gamma_vi (each tenant's vertices own a share of the
 * physical IPs). Shared interface/memory demand is the w_Gi-weighted sum of
 * each tenant's per-edge alpha/beta.
 *
 * All tenants must target single-class traffic profiles (combine with
 * extension #2 by consolidating per class).
 *
 * @throws std::invalid_argument on empty input or null graphs.
 */
ConsolidatedEstimate consolidate(const HardwareModel& hw,
                                 const std::vector<TenantWorkload>& tenants);

/**
 * Extension #3: insert a rate-limiter pseudo-IP in front of vertex
 * @p target, re-routing all of its current in-edges through the limiter.
 *
 * @param limit The shaping rate of the limiter.
 * @param queue_capacity The limiter's fixed queue, capturing the computation
 *   resource idleness of the non-work-conserving IP.
 * @return The id of the inserted vertex.
 */
VertexId insert_rate_limiter(ExecutionGraph& graph, VertexId target,
                             Bandwidth limit, std::uint32_t queue_capacity);

/**
 * Model the recirculation path (S2.1): a packet re-enters vertex
 * @p target for @p extra_passes additional execution rounds. Since the
 * execution graph is a DAG, recirculation is unrolled: the vertex is
 * cloned per pass, chained behind the original, and every pass's node
 * partition gamma is divided by (extra_passes + 1) — all passes share the
 * same physical IP, so each owns an equal time slice of it.
 *
 * The target's original out-edges move to the last pass; the internal
 * recirculation hops carry the vertex's ingress delta and no shared-medium
 * usage (the recirculate path is internal to the pipeline).
 *
 * @return the ids of the cloned pass vertices, in chain order.
 * @throws std::invalid_argument for non-IP targets or zero passes.
 */
std::vector<VertexId> unroll_recirculation(ExecutionGraph& graph,
                                           VertexId target,
                                           std::uint32_t extra_passes);

/**
 * Merge several tenants' graphs into one simulatable graph: each tenant
 * keeps its own ingress/egress pair (names prefixed with the tenant
 * graph's name), and every edge's delta/alpha/beta is scaled by the
 * tenant's normalized weight so that all Table-2 fractions are expressed
 * relative to the *total* ingress data W. Estimating the merged graph
 * reproduces consolidate()'s shared-medium accounting, and the simulator
 * runs it directly — true multi-tenant simulation with shared links.
 *
 * Tenant graphs must target single-class traffic; the merged graph is
 * driven with a single profile carrying the combined BW_in.
 *
 * @throws std::invalid_argument on empty/null input.
 */
ExecutionGraph merge_tenant_graphs(const std::vector<TenantWorkload>& tenants);

} // namespace lognic::core

#endif // LOGNIC_CORE_EXTENSIONS_HPP_
