/**
 * @file
 * The LogNIC estimator facade (paper S3.8, Figure 4a).
 *
 * Takes a software execution graph, a hardware model, and a traffic profile;
 * produces throughput and latency reports. Mixed packet-size profiles are
 * handled per extension #2 (S3.7): each packet class is estimated at its
 * own operating point (with its bandwidth share and a partitioned queue
 * capacity) and the results are dist_size-weighted.
 */
#ifndef LOGNIC_CORE_MODEL_HPP_
#define LOGNIC_CORE_MODEL_HPP_

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/latency_model.hpp"
#include "lognic/core/throughput_model.hpp"
#include "lognic/core/traffic_profile.hpp"

namespace lognic::core {

/// Throughput across all packet classes of a profile.
struct ThroughputReport {
    /// dist_size-weighted attainable capacity (extension #2).
    Bandwidth capacity{Bandwidth::from_gbps(0.0)};
    /// dist_size-weighted achieved throughput under the offered load.
    Bandwidth achieved{Bandwidth::from_gbps(0.0)};
    /// Per-class single-profile estimates (same order as profile classes).
    std::vector<ThroughputEstimate> per_class;

    /// Bottleneck of the class with the lowest capacity.
    const ThroughputTerm& bottleneck() const;
};

/// Latency across all packet classes of a profile.
struct LatencyReport {
    /// dist_size-weighted mean latency (Eq. 8 + extension #2).
    Seconds mean{0.0};
    std::vector<LatencyEstimate> per_class;
    double max_drop_probability{0.0};
};

struct Report {
    ThroughputReport throughput;
    LatencyReport latency;
};

class SolveScratch;

/// The estimator. Cheap to copy; holds the hardware model by value.
class Model {
  public:
    explicit Model(HardwareModel hw) : hw_(std::move(hw)) {}

    const HardwareModel& hardware() const { return hw_; }

    /**
     * The optional @p scratch caches topology artifacts and per-vertex
     * analyses across repeated solves over small scenario deltas
     * (bit-identical results; single-class profiles only — mixed
     * profiles partition queues per class and ignore the scratch). The
     * caller owns invalidation; see solve_scratch.hpp.
     */
    ThroughputReport throughput(const ExecutionGraph& graph,
                                const TrafficProfile& traffic,
                                SolveScratch* scratch = nullptr) const;
    LatencyReport latency(const ExecutionGraph& graph,
                          const TrafficProfile& traffic,
                          SolveScratch* scratch = nullptr) const;
    Report estimate(const ExecutionGraph& graph,
                    const TrafficProfile& traffic,
                    SolveScratch* scratch = nullptr) const;

  private:
    HardwareModel hw_;
};

} // namespace lognic::core

#endif // LOGNIC_CORE_MODEL_HPP_
