/**
 * @file
 * Extended Roofline model for SmartNIC IP blocks (paper S3.2).
 *
 * The paper repurposes the classic Roofline in two ways:
 *  1. multiple bandwidth ceilings represent the different data feeds into an
 *     IP (SoC interconnect, memory hierarchy, dedicated fabrics);
 *  2. arithmetic intensity is replaced by *packet intensity* — IP-specific
 *     operations per packet transmission, which is packet-size dependent.
 *
 * Here an IP engine's compute capability is a per-request service-time
 * model (fixed cost + size-proportional cost); the roofline caps the
 * resulting aggregate byte throughput with each data-feed ceiling.
 */
#ifndef LOGNIC_CORE_ROOFLINE_HPP_
#define LOGNIC_CORE_ROOFLINE_HPP_

#include <string>
#include <vector>

#include "lognic/core/units.hpp"

namespace lognic::core {

/**
 * Per-engine request service model: t(size) = fixed_cost + size / byte_rate.
 *
 * The fixed cost captures per-operation work that does not scale with the
 * payload (descriptor parsing, signature setup, completion signalling); the
 * byte rate captures streaming work. Either part may be zero.
 */
struct ServiceModel {
    Seconds fixed_cost{0.0};
    Bandwidth byte_rate{Bandwidth::from_gbps(1e6)}; ///< "infinite" by default

    /// Service time for one request of @p size on one engine.
    Seconds service_time(Bytes size) const
    {
        return fixed_cost + size / byte_rate;
    }

    /// Single-engine request rate at @p size.
    OpsRate op_rate(Bytes size) const
    {
        return OpsRate{1.0 / service_time(size).seconds()};
    }

    /// Single-engine byte throughput at @p size.
    Bandwidth throughput(Bytes size) const
    {
        return to_bandwidth(op_rate(size), size);
    }

    /// Build from a pure operation rate (e.g. an accelerator's MOPS rating).
    static ServiceModel from_op_rate(OpsRate rate)
    {
        return ServiceModel{lognic::service_time(rate),
                            Bandwidth::from_gbps(1e6)};
    }
};

/// One named bandwidth ceiling (a data feed into the IP).
struct BandwidthCeiling {
    std::string name;
    Bandwidth bw;
};

/**
 * The extended Roofline of one IP block: engine compute capability plus the
 * bandwidth ceilings of every data feed it depends on.
 */
class ExtendedRoofline {
  public:
    ExtendedRoofline() = default;
    ExtendedRoofline(ServiceModel engine, std::vector<BandwidthCeiling> ceilings)
        : engine_(engine), ceilings_(std::move(ceilings))
    {
    }

    const ServiceModel& engine() const { return engine_; }
    const std::vector<BandwidthCeiling>& ceilings() const { return ceilings_; }

    /**
     * Attainable aggregate byte throughput for requests of @p size with
     * @p engines concurrent engines, scaled by partition share @p share
     * (gamma_vi in Table 2). Ceilings are scaled by the same share since a
     * partitioned IP also owns only its share of the feeds.
     */
    Bandwidth attainable(Bytes size, std::uint32_t engines,
                         double share = 1.0) const;

    /// Attainable request rate (ops/s) under the same limits.
    OpsRate attainable_ops(Bytes size, std::uint32_t engines,
                           double share = 1.0) const
    {
        return packets_per_sec(attainable(size, engines, share), size);
    }

    /// Name of the ceiling that binds at this operating point, or "compute".
    std::string binding_factor(Bytes size, std::uint32_t engines,
                               double share = 1.0) const;

  private:
    ServiceModel engine_{};
    std::vector<BandwidthCeiling> ceilings_{};
};

} // namespace lognic::core

#endif // LOGNIC_CORE_ROOFLINE_HPP_
