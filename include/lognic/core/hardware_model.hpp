/**
 * @file
 * The LogNIC hardware model of a SmartNIC (paper S3.2, Figure 2a).
 *
 * A SmartNIC is abstracted as: ingress/egress engines, N IP blocks (CPU
 * cores, accelerators, DSPs, ...), a shared interface (the on-chip
 * interconnect, with bandwidth BW_INTF), and a shared memory subsystem
 * (BW_MEM). IP-to-IP links may additionally have characterized dedicated
 * bandwidths (BW_mn) that override the shared mediums.
 */
#ifndef LOGNIC_CORE_HARDWARE_MODEL_HPP_
#define LOGNIC_CORE_HARDWARE_MODEL_HPP_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "lognic/core/roofline.hpp"
#include "lognic/core/units.hpp"

namespace lognic::core {

/// Index of an IP block within a HardwareModel.
using IpId = std::uint32_t;

/// What kind of hardware entity an IP block is.
enum class IpKind {
    kCpuCores,    ///< general-purpose wimpy cores (cnMIPS, ARM A72, ...)
    kAccelerator, ///< fixed-function engine (crypto, HFA, RegEx, ZIP, ...)
    kStorage,     ///< opaque storage device treated as an IP (e.g. an SSD)
    kDsp,         ///< digital signal processor
};

const char* to_string(IpKind kind);

/**
 * Empirical sojourn-time curve of an opaque IP: mean time a request spends
 * in the IP (queueing + service) as a function of the offered request rate
 * (requests/sec). The paper's S4.7 escape hatch for IPs whose internals
 * cannot be characterized (e.g. an SSD): obtain the latency-vs-throughput
 * curve as a whole and curve-fit it. When set, the latency model uses this
 * instead of the Eq. 9-12 M/M/1/N analysis for the vertex.
 */
using SojournCurve = std::function<Seconds(double lambda)>;

/// Description of one IP block.
struct IpSpec {
    std::string name;
    IpKind kind{IpKind::kCpuCores};
    ExtendedRoofline roofline;
    std::uint32_t max_engines{1};           ///< physical parallelism available
    std::uint32_t default_queue_capacity{8}; ///< N_vi when the graph is silent
    SojournCurve sojourn_curve;             ///< optional S4.7 override
    /**
     * Squared coefficient of variation of the engine's service time:
     * 1.0 = exponential (the paper's Eq. 9-12 assumption, right for
     * software kernels), 0.0 = deterministic (fixed-function hardware
     * pipelines). Below 1.0 and under rho < 1, the latency model switches
     * from M/M/1/N to the M/G/1 Pollaczek-Khinchine waiting time; the
     * simulator draws service times from a matching gamma distribution.
     */
    double service_scv{1.0};
};

/// The full hardware model (Table 2 "Hardware" parameters).
class HardwareModel {
  public:
    HardwareModel(std::string name, Bandwidth interface_bw,
                  Bandwidth memory_bw, Bandwidth line_rate);

    const std::string& name() const { return name_; }
    Bandwidth interface_bandwidth() const { return interface_bw_; }
    Bandwidth memory_bandwidth() const { return memory_bw_; }
    /// Wire/PCIe rate of the ingress and egress engines.
    Bandwidth line_rate() const { return line_rate_; }
    /// Override the port speed (e.g. for memory-fed microbenchmarks).
    void set_line_rate(Bandwidth rate) { line_rate_ = rate; }
    /// Override BW_INTF / BW_MEM (calibration fits these as free
    /// variables; see lognic::calib::ParameterSpace).
    void set_interface_bandwidth(Bandwidth bw) { interface_bw_ = bw; }
    void set_memory_bandwidth(Bandwidth bw) { memory_bw_ = bw; }

    /// Register an IP block; returns its id.
    IpId add_ip(IpSpec spec);

    const IpSpec& ip(IpId id) const;
    /// Mutable access to a registered IP (catalog calibration rewrites
    /// roofline parameters in place).
    IpSpec& ip(IpId id);
    std::size_t ip_count() const { return ips_.size(); }

    /// Find an IP by name; std::nullopt when absent.
    std::optional<IpId> find_ip(const std::string& name) const;

    /**
     * Record a characterized dedicated IP-to-IP bandwidth (BW_mn).
     * Symmetric: the reverse direction is implied.
     */
    void set_ip_bandwidth(IpId a, IpId b, Bandwidth bw);

    /// Dedicated bandwidth between two IPs, if characterized.
    std::optional<Bandwidth> ip_bandwidth(IpId a, IpId b) const;

    /// Every characterized dedicated link as (a, b, bw), insertion order.
    const std::vector<std::tuple<IpId, IpId, Bandwidth>>& ip_links() const
    {
        return ip_links_;
    }

  private:
    std::string name_;
    Bandwidth interface_bw_;
    Bandwidth memory_bw_;
    Bandwidth line_rate_;
    std::vector<IpSpec> ips_;
    std::vector<std::tuple<IpId, IpId, Bandwidth>> ip_links_;
};

} // namespace lognic::core

#endif // LOGNIC_CORE_HARDWARE_MODEL_HPP_
