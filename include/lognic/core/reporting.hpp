/**
 * @file
 * Human-readable rendering of model results and Graphviz export of
 * execution graphs — the "performance analysis" face of the model (S2.3):
 * show the bottleneck, every min() term, and the per-hop latency story
 * without the caller digging through structs.
 */
#ifndef LOGNIC_CORE_REPORTING_HPP_
#define LOGNIC_CORE_REPORTING_HPP_

#include <string>

#include "lognic/core/model.hpp"

namespace lognic::core {

/**
 * Render a full estimate as aligned text: per-class capacity with every
 * throughput term (ascending — the first line is the bottleneck), then the
 * weighted latency with per-path, per-hop breakdowns.
 */
std::string render_report(const Report& report,
                          const TrafficProfile& traffic);

/// Render only the throughput side.
std::string render_throughput(const ThroughputReport& report,
                              const TrafficProfile& traffic);

/// Render only the latency side.
std::string render_latency(const LatencyReport& report,
                           const TrafficProfile& traffic);

/**
 * Export the execution graph as a Graphviz digraph. Vertices show name,
 * kind, and the D/N/gamma parameters; edges show delta and their medium
 * usage (alpha/beta/dedicated).
 */
std::string to_dot(const ExecutionGraph& graph, const HardwareModel& hw);

} // namespace lognic::core

#endif // LOGNIC_CORE_REPORTING_HPP_
