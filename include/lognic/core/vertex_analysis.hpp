/**
 * @file
 * Per-vertex operating-point analysis shared by the throughput and latency
 * models.
 *
 * For one (graph, hardware, single-class traffic) operating point this
 * computes, per vertex: the request granularity (Eq. 7), the effective
 * aggregate performance P_vi (roofline-capped, partition-scaled), the
 * per-request service time C_i, and the M/M/1/N rates (Eq. 11).
 */
#ifndef LOGNIC_CORE_VERTEX_ANALYSIS_HPP_
#define LOGNIC_CORE_VERTEX_ANALYSIS_HPP_

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"

namespace lognic::core {

/// Operating point of one vertex under a given single-class traffic profile.
struct VertexAnalysis {
    /// Request granularity at the vertex: g_in * sum(delta_in) / indegree.
    Bytes request_size{Bytes{0.0}};
    /// Effective parallelism D_vi actually used.
    std::uint32_t parallelism{1};
    /// Effective queue capacity N_vi.
    std::uint32_t queue_capacity{1};
    /// Aggregate attainable performance P_vi (bytes rate; roofline-capped).
    Bandwidth attainable{Bandwidth::from_gbps(0.0)};
    /// Per-request compute time C_i = D * request_size / P_vi (Eq. 7).
    Seconds compute_time{0.0};
    /// Request arrival rate lambda (Eq. 11); depends on BW_in.
    double lambda{0.0};
    /// Request service rate mu = 1 / C_i (Eq. 11).
    double mu{0.0};
    /// Offered load rho = BW_in * sum(delta_in) / P_vi (Eq. 11).
    double rho{0.0};
    /// True for ingress/egress vertices, which neither queue nor compute.
    bool passthrough{false};
};

/**
 * Analyze vertex @p v of @p graph at the operating point given by
 * class @p class_index of @p traffic.
 *
 * Precondition: the graph validates against @p hw.
 */
VertexAnalysis analyze_vertex(const ExecutionGraph& graph,
                              const HardwareModel& hw, VertexId v,
                              const TrafficProfile& traffic,
                              std::size_t class_index = 0);

} // namespace lognic::core

#endif // LOGNIC_CORE_VERTEX_ANALYSIS_HPP_
