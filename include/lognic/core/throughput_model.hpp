/**
 * @file
 * LogNIC throughput modeling (paper S3.5, Eq. 1-4).
 *
 * The attainable throughput of an offloaded program equals the minimum over
 * every hardware entity the data plane touches of (capacity / demand per
 * unit of ingress data):
 *
 *   P_attainable = min( P_vi / sum(delta_in),       for every IP vertex
 *                       BW_eij / delta_eij,          for dedicated edges
 *                       BW_INTF / sum(alpha),        shared interface
 *                       BW_MEM  / sum(beta),         shared memory
 *                       line rate )                  ingress/egress engines
 */
#ifndef LOGNIC_CORE_THROUGHPUT_MODEL_HPP_
#define LOGNIC_CORE_THROUGHPUT_MODEL_HPP_

#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"

namespace lognic::core {

class SolveScratch;

/// What kind of hardware entity a throughput term corresponds to.
enum class TermKind {
    kIpCompute,  ///< an IP vertex's compute capacity (Eq. 1)
    kEdge,       ///< a dedicated-bandwidth edge (BW_mn)
    kInterface,  ///< the shared interface (Eq. 2)
    kMemory,     ///< the shared memory subsystem (Eq. 2)
    kLineRate,   ///< ingress/egress engine I/O rate
    kRateLimit,  ///< a rate-limiter pseudo-IP
};

const char* to_string(TermKind kind);

/// One term in the Eq. 4 min(): the throughput this entity alone allows.
struct ThroughputTerm {
    TermKind kind{TermKind::kIpCompute};
    std::string name;
    Bandwidth limit{Bandwidth::from_gbps(0.0)};
};

struct ThroughputEstimate {
    /// P_attainable (Eq. 4): the program's capacity.
    Bandwidth capacity{Bandwidth::from_gbps(0.0)};
    /// Achieved throughput: min(capacity, offered BW_in).
    Bandwidth achieved{Bandwidth::from_gbps(0.0)};
    /// The binding term (smallest limit).
    ThroughputTerm bottleneck;
    /// Every term, sorted ascending by limit.
    std::vector<ThroughputTerm> terms;
};

/**
 * Estimate throughput for one packet class of @p traffic.
 *
 * Validates the graph first; throws std::invalid_argument on a malformed
 * graph or out-of-range class index. An optional @p scratch reuses cached
 * topology artifacts and per-vertex analyses across solves over small
 * deltas (bit-identical results; see solve_scratch.hpp).
 */
ThroughputEstimate estimate_throughput(const ExecutionGraph& graph,
                                       const HardwareModel& hw,
                                       const TrafficProfile& traffic,
                                       std::size_t class_index = 0,
                                       SolveScratch* scratch = nullptr);

} // namespace lognic::core

#endif // LOGNIC_CORE_THROUGHPUT_MODEL_HPP_
