/**
 * @file
 * The software execution graph of a SmartNIC-offloaded program (paper S3.3).
 *
 * A program is a DAG whose vertices are (virtual) IP blocks or the
 * ingress/egress engines and whose edges are data movements over a
 * communication medium (the interface, the memory subsystem, or a dedicated
 * characterized link). Each vertex and edge carries the Table-2 software
 * parameters: delta (data transfer ratio), alpha/beta (interface/memory
 * medium usage), O (computation transfer overhead), D (parallelism), N
 * (queue capacity), gamma (node partition share), A (acceleration factor).
 */
#ifndef LOGNIC_CORE_EXECUTION_GRAPH_HPP_
#define LOGNIC_CORE_EXECUTION_GRAPH_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lognic/core/hardware_model.hpp"
#include "lognic/core/units.hpp"

namespace lognic::core {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Role of a vertex in the graph.
enum class VertexKind {
    kIngress,     ///< traffic enters here (wire or PCIe)
    kEgress,      ///< traffic leaves here
    kIp,          ///< a (virtual) IP block bound to a HardwareModel IP
    kRateLimiter, ///< shaping pseudo-IP inserted by extension #3 (S3.7)
};

const char* to_string(VertexKind kind);

/// Per-vertex software parameters (Table 2).
struct VertexParams {
    /// D_vi: engines this (virtual) IP uses. 0 means "all of the IP".
    std::uint32_t parallelism{0};
    /// N_vi: request queue capacity. 0 means "use the IP's default".
    std::uint32_t queue_capacity{0};
    /// gamma_vi: multiplexing share of the physical IP, in (0, 1].
    double partition{1.0};
    /// O_i: computation transfer overhead to trigger the *next* IP.
    Seconds overhead{0.0};
    /// A_i: acceleration factor applied to the compute time (C_i / A_i).
    double acceleration{1.0};
    /**
     * The paper's Figure-2b IP has m input queues with a round-robin
     * scheduler. When true, the vertex gives each in-edge its own queue
     * (capacity N_vi / indegree each) and engines pull round-robin —
     * providing per-input isolation: one overloaded input cannot occupy
     * the whole buffer. When false (default), inputs share one FIFO.
     */
    bool per_input_queues{false};
};

struct Vertex {
    std::string name;
    VertexKind kind{VertexKind::kIp};
    /// Bound hardware IP; meaningful only for kind == kIp.
    IpId ip{0};
    VertexParams params;
    /// For kRateLimiter: the shaping rate.
    Bandwidth rate_limit{Bandwidth::from_gbps(0.0)};
};

/// Per-edge software parameters (Table 2).
struct EdgeParams {
    /// delta_eij: fraction of the ingress data W transferred on this edge.
    double delta{1.0};
    /// alpha_eij: fraction of W crossing the shared interface on this edge.
    double alpha{0.0};
    /// beta_eij: fraction of W crossing the memory subsystem on this edge.
    double beta{0.0};
    /// Dedicated characterized bandwidth (BW_mn); overrides alpha/beta caps.
    std::optional<Bandwidth> dedicated_bw{};
};

struct Edge {
    VertexId from{0};
    VertexId to{0};
    EdgeParams params;
};

/**
 * A directed acyclic execution graph. Mutations are cheap; call validate()
 * (or any model entry point, which validates internally) before analysis.
 */
class ExecutionGraph {
  public:
    ExecutionGraph() = default;
    explicit ExecutionGraph(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    // --- construction --------------------------------------------------------

    VertexId add_ingress(const std::string& name = "ingress");
    VertexId add_egress(const std::string& name = "egress");
    VertexId add_ip_vertex(const std::string& name, IpId ip,
                           VertexParams params = {});
    VertexId add_rate_limiter(const std::string& name, Bandwidth limit,
                              std::uint32_t queue_capacity);
    EdgeId add_edge(VertexId from, VertexId to, EdgeParams params = {});

    // --- access --------------------------------------------------------------

    std::size_t vertex_count() const { return vertices_.size(); }
    std::size_t edge_count() const { return edges_.size(); }
    const Vertex& vertex(VertexId v) const;
    Vertex& vertex(VertexId v);
    const Edge& edge(EdgeId e) const;
    Edge& edge(EdgeId e);

    std::vector<EdgeId> out_edges(VertexId v) const;
    std::vector<EdgeId> in_edges(VertexId v) const;
    std::size_t in_degree(VertexId v) const { return in_edges(v).size(); }

    std::optional<VertexId> find_vertex(const std::string& name) const;
    std::vector<VertexId> ingress_vertices() const;
    std::vector<VertexId> egress_vertices() const;

    /// Sum of delta over incoming edges (the Sigma delta_eji of Eq. 1).
    double in_delta_sum(VertexId v) const;

    // --- validation & traversal ----------------------------------------------

    /**
     * Check structural invariants: at least one ingress and one egress, the
     * graph is acyclic, every vertex lies on some ingress->egress path,
     * parameters are in range (delta in [0,1], partition in (0,1], ...).
     *
     * @throws std::invalid_argument describing the first violation.
     */
    void validate(const HardwareModel& hw) const;

    /// Vertices in a topological order. @throws std::invalid_argument on cycles.
    std::vector<VertexId> topological_order() const;

    /// One ingress->egress path as an edge sequence.
    struct Path {
        std::vector<EdgeId> edges;
        double weight{1.0}; ///< w_Pk: product of branch fractions (Eq. 8)
    };

    /**
     * Enumerate every ingress->egress path with its traffic weight. Branch
     * weights at a fan-out vertex are delta_e / sum(sibling deltas).
     *
     * @throws std::invalid_argument if path count exceeds @p max_paths.
     */
    std::vector<Path> enumerate_paths(std::size_t max_paths = 4096) const;

  private:
    VertexId add_vertex(Vertex v);

    std::string name_;
    std::vector<Vertex> vertices_;
    std::vector<Edge> edges_;
};

} // namespace lognic::core

#endif // LOGNIC_CORE_EXECUTION_GRAPH_HPP_
