/**
 * @file
 * Reusable solve state for repeated Model::estimate calls over small
 * scenario deltas (the dse incremental-evaluation fast path).
 *
 * The throughput and latency models recompute, on every call, a set of
 * artifacts that depend only on slow-moving parts of the scenario:
 *
 *   - topology artifacts (topological order, ingress->egress paths,
 *     per-vertex out-edge lists, in-delta sums, ingress/egress lists)
 *     depend only on the graph's vertex/edge structure and edge params;
 *   - per-vertex operating points (analyze_vertex) depend on that
 *     vertex's params, the hardware catalog, and the traffic profile.
 *
 * A SolveScratch caches both layers. The *caller* owns invalidation: it
 * knows which knob changed between solves and calls invalidate() /
 * invalidate_analyses() / invalidate_vertex() accordingly (see
 * dse::Materializer for the mapping). Cached entries are the outputs of
 * the same pure functions the scratch-free path calls on identical
 * inputs, so a scratch-assisted solve is bit-identical to a fresh one —
 * the property the dse byte-identity gates rest on.
 *
 * The cache covers single-class traffic only; mixed profiles take the
 * general path (Model ignores the scratch for them).
 */
#ifndef LOGNIC_CORE_SOLVE_SCRATCH_HPP_
#define LOGNIC_CORE_SOLVE_SCRATCH_HPP_

#include <cstdint>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/core/vertex_analysis.hpp"

namespace lognic::core {

class SolveScratch {
  public:
    /// Drop everything (graph structure or edges changed / new scenario).
    void invalidate();
    /// Keep topology; drop every cached vertex analysis (hardware catalog
    /// or traffic profile changed).
    void invalidate_analyses();
    /// Keep topology; drop one vertex's cached analysis (its params
    /// changed).
    void invalidate_vertex(VertexId v);

    /// (Re)build the topology artifacts when stale. Called by the models.
    void ensure_topology(const ExecutionGraph& graph);

    /**
     * Cached analyze_vertex(). Precondition: ensure_topology() ran for
     * this graph and the cached entry (if valid) was computed against
     * value-identical (graph params, hw, traffic) inputs.
     */
    const VertexAnalysis& vertex_analysis(const ExecutionGraph& graph,
                                          const HardwareModel& hw, VertexId v,
                                          const TrafficProfile& traffic,
                                          std::size_t class_index);

    bool topology_valid() const { return topo_valid_; }
    const std::vector<VertexId>& topological_order() const
    {
        return topo_order_;
    }
    const std::vector<ExecutionGraph::Path>& paths() const { return paths_; }
    const std::vector<std::vector<EdgeId>>& out_edge_lists() const
    {
        return out_edges_;
    }
    double in_delta_sum(VertexId v) const { return in_delta_sums_.at(v); }
    const std::vector<VertexId>& ingresses() const { return ingresses_; }
    const std::vector<VertexId>& egresses() const { return egresses_; }

    /// Cache effectiveness counters (bench/telemetry only).
    std::uint64_t analysis_hits() const { return analysis_hits_; }
    std::uint64_t analysis_misses() const { return analysis_misses_; }
    std::uint64_t topology_builds() const { return topology_builds_; }

  private:
    bool topo_valid_{false};
    std::vector<VertexId> topo_order_;
    std::vector<ExecutionGraph::Path> paths_;
    std::vector<std::vector<EdgeId>> out_edges_;
    std::vector<double> in_delta_sums_;
    std::vector<VertexId> ingresses_;
    std::vector<VertexId> egresses_;
    std::vector<char> analysis_valid_;
    std::vector<VertexAnalysis> analyses_;
    std::uint64_t analysis_hits_{0};
    std::uint64_t analysis_misses_{0};
    std::uint64_t topology_builds_{0};
};

} // namespace lognic::core

#endif // LOGNIC_CORE_SOLVE_SCRATCH_HPP_
