/**
 * @file
 * The LogNIC optimizer (paper S3.8, Figure 4b).
 *
 * Exposes the configurable Table-2 parameters as decision variables: a user
 * supplies an `apply` callback that writes a candidate parameter vector into
 * a working copy of the execution graph, an objective (maximize throughput,
 * minimize latency, or custom), and optional constraints. Continuous knobs
 * (traffic splits, partition shares) are solved with the augmented-Lagrangian
 * / Nelder-Mead stack; discrete knobs (parallelism degrees, queue credits)
 * with exhaustive or coordinate-descent integer search.
 */
#ifndef LOGNIC_CORE_OPTIMIZER_HPP_
#define LOGNIC_CORE_OPTIMIZER_HPP_

#include <functional>

#include "lognic/core/model.hpp"
#include "lognic/solver/constrained.hpp"
#include "lognic/solver/discrete.hpp"

namespace lognic::core {

/// Built-in optimization goals.
enum class Objective {
    kMaximizeThroughput, ///< maximize weighted attainable capacity
    kMinimizeLatency,    ///< minimize weighted mean latency
};

/// A constraint over the model's report; feasible when value(report) <= 0.
using ReportConstraint = std::function<double(const Report&)>;

/// Result of an optimizer run.
struct OptimizationResult {
    solver::Vector x;          ///< continuous solution (continuous runs)
    solver::IntVector xi;      ///< integer solution (discrete runs)
    Report report;             ///< model report at the solution
    double objective_value{0.0};
    bool feasible{true};
    std::size_t evaluations{0};
};

/// A continuous design-space exploration problem.
struct ContinuousProblem {
    ExecutionGraph graph;      ///< template; apply() edits a working copy
    TrafficProfile traffic;
    /// Write candidate x into the working graph (and/or the traffic copy).
    std::function<void(ExecutionGraph&, TrafficProfile&,
                       const solver::Vector&)>
        apply;
    Objective objective{Objective::kMaximizeThroughput};
    /// Optional custom objective (minimized); overrides `objective`.
    std::function<double(const Report&)> custom_objective;
    std::vector<ReportConstraint> constraints;
    solver::Bounds bounds;
    solver::Vector x0;
};

/// A discrete (integer-knob) design-space exploration problem.
struct DiscreteProblem {
    ExecutionGraph graph;
    TrafficProfile traffic;
    std::function<void(ExecutionGraph&, TrafficProfile&,
                       const solver::IntVector&)>
        apply;
    Objective objective{Objective::kMaximizeThroughput};
    std::function<double(const Report&)> custom_objective;
    /// Candidates where any constraint is > 0 are rejected.
    std::vector<ReportConstraint> constraints;
    std::vector<solver::IntRange> ranges;
    /// When true (default), enumerate exhaustively; otherwise coordinate
    /// descent from `x0`.
    bool exhaustive{true};
    solver::IntVector x0;
};

/**
 * A stipulated performance bound for satisficing mode (Figure 4b). The
 * goal is met when requirement(report) <= 0 (e.g. `latency_us - 10`).
 * When no configuration meets every goal, the optimizer relaxes each goal
 * by `relax_step` per round ("relax goals/constraints" in the workflow)
 * before giving up.
 */
struct PerformanceGoal {
    std::string name;
    ReportConstraint requirement;
    double relax_step{0.0};
};

/// Satisficing over an integer design space: find *a* configuration that
/// meets the stipulated bounds (ties broken by the objective).
struct SatisficeProblem {
    ExecutionGraph graph;
    TrafficProfile traffic;
    std::function<void(ExecutionGraph&, TrafficProfile&,
                       const solver::IntVector&)>
        apply;
    std::vector<solver::IntRange> ranges;
    std::vector<PerformanceGoal> goals;
    /// Tie-break among satisfying configurations.
    Objective objective{Objective::kMaximizeThroughput};
    std::size_t max_relax_rounds{3};
};

struct SatisficeResult {
    solver::IntVector xi;
    Report report;
    bool satisfied{false};
    /// 0 = met as stipulated; k = met after k relaxation rounds.
    std::size_t relax_rounds_used{0};
    /// Slack granted to each goal (relax_step * rounds).
    std::vector<double> slack;
    std::size_t evaluations{0};
};

class Optimizer {
  public:
    explicit Optimizer(HardwareModel hw) : model_(std::move(hw)) {}
    explicit Optimizer(Model model) : model_(std::move(model)) {}

    const Model& model() const { return model_; }

    OptimizationResult optimize(const ContinuousProblem& problem) const;
    OptimizationResult optimize(const DiscreteProblem& problem) const;

    /// Figure-4b satisficing mode with goal relaxation.
    SatisficeResult satisfice(const SatisficeProblem& problem) const;

  private:
    double objective_value(const Report& report, Objective obj) const;

    Model model_;
};

} // namespace lognic::core

#endif // LOGNIC_CORE_OPTIMIZER_HPP_
