/**
 * @file
 * Traffic profiles (Table 2 "Traffic" parameters).
 *
 * A profile carries the offered ingress bandwidth (BW_in), the packet size
 * distribution (dist_size, a discrete distribution of packet classes), and
 * the ingress data-transfer granularity (g_in, defaulting to the packet size
 * of each class).
 */
#ifndef LOGNIC_CORE_TRAFFIC_PROFILE_HPP_
#define LOGNIC_CORE_TRAFFIC_PROFILE_HPP_

#include <optional>
#include <string>
#include <vector>

#include "lognic/core/units.hpp"

namespace lognic::core {

/// One class of packets within a profile.
struct PacketClass {
    Bytes size{Bytes{1500.0}};
    double weight{1.0}; ///< fraction of ingress *bytes* in this class
};

class TrafficProfile {
  public:
    /// Default: one MTU-sized class at 1 Gbps (a valid placeholder).
    /// (Defined out of line: GCC 12's inliner raises a spurious
    /// maybe-uninitialized on the NSDMI vector copy otherwise.)
    TrafficProfile();

    /// Single fixed packet size at the given offered rate.
    static TrafficProfile fixed(Bytes packet_size, Bandwidth ingress_bw);

    /**
     * Mixed packet sizes. Weights are normalized internally.
     *
     * @throws std::invalid_argument on empty class list or non-positive
     * weights/sizes.
     */
    static TrafficProfile mixed(std::vector<PacketClass> classes,
                                Bandwidth ingress_bw);

    Bandwidth ingress_bandwidth() const { return ingress_bw_; }
    void set_ingress_bandwidth(Bandwidth bw) { ingress_bw_ = bw; }

    const std::vector<PacketClass>& classes() const { return classes_; }

    /// Byte-weighted mean packet size.
    Bytes mean_packet_size() const;

    /**
     * Ingress granularity g_in for a class: the explicit override when set,
     * the class packet size otherwise.
     */
    Bytes granularity(std::size_t class_index) const;

    /// Override g_in for every class (e.g. DMA batch size).
    void set_granularity(Bytes g) { granularity_override_ = g; }

    /// A copy of this profile restricted to one class, same BW_in.
    TrafficProfile class_profile(std::size_t class_index) const;

  private:
    Bandwidth ingress_bw_{Bandwidth::from_gbps(1.0)};
    std::vector<PacketClass> classes_;
    std::optional<Bytes> granularity_override_;
};

} // namespace lognic::core

#endif // LOGNIC_CORE_TRAFFIC_PROFILE_HPP_
