/**
 * @file
 * Case study #5 (S4.6): hardware design-space exploration on the PANIC
 * prototype, covering the three scenarios:
 *
 *  #1 sizing an accelerator's request queue (credits) — Model 1
 *     "Pipelined Chain", credit-scheduler simulator + analytic window model;
 *  #2 steering traffic at the central scheduler — Model 2 "Parallelized
 *     Chain" with three accelerators of 4:7:3 computing throughput;
 *  #3 configuring IP hardware parallelism — modified Model 3 with the
 *     three execution paths IP1->IP3, IP1->IP4, IP2->IP4.
 */
#ifndef LOGNIC_APPS_PANIC_MODELS_HPP_
#define LOGNIC_APPS_PANIC_MODELS_HPP_

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/sim/panic.hpp"

namespace lognic::apps {

// --- Scenario #1: request-queue (credit) sizing ------------------------------

/**
 * Model 1 "Pipelined Chain": @p stages identical compute units in sequence,
 * each provisioned with @p credits scheduler credits.
 */
sim::PanicConfig make_panic_pipelined_chain(std::uint32_t credits,
                                            std::uint32_t stages = 3);

/**
 * Analytic chain capacity at @p credits for @p traffic: the credit-window
 * capacity of the bottleneck stage at the profile's packet-count mean size.
 */
Bandwidth lognic_panic_chain_capacity(const core::TrafficProfile& traffic,
                                      std::uint32_t credits,
                                      std::uint32_t stages = 3);

/**
 * The minimal credit provision that already achieves the chain's saturated
 * capacity (within @p tolerance) — the optimizer output behind the paper's
 * 5/4/4/4 suggestion.
 */
std::uint32_t lognic_optimal_credits(const core::TrafficProfile& traffic,
                                     std::uint32_t max_credits = 8,
                                     double tolerance = 1e-3);

/// Packet-count mean size of a profile (bytes moved per scheduled request).
Bytes mean_request_size(const core::TrafficProfile& traffic);

// --- Scenario #2: traffic steering -------------------------------------------

struct PanicParallelScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
};

/**
 * Model 2 "Parallelized Chain": ingress fans out to A1/A2/A3; A1 receives
 * a fixed 20% of traffic, A2 receives @p a2_percent, A3 the remaining
 * (80 - a2_percent). @throws std::invalid_argument outside (0, 80).
 */
PanicParallelScenario make_panic_parallel_chain(double a2_percent);

/**
 * LogNIC-suggested steering: the X minimizing modelled average latency
 * under @p traffic (continuous optimizer over the split).
 */
double lognic_opt_split(const core::TrafficProfile& traffic);

// --- Scenario #3: hardware parallelism ---------------------------------------

struct PanicHybridScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
};

/**
 * Modified Model 3: ingress splits 70/30 to IP1/IP2; IP1's traffic splits
 * @p ip3_fraction to IP3 and the rest to IP4; IP2's traffic all goes to
 * IP4. @p ip4_parallelism sets IP4's engine count (1..8).
 */
PanicHybridScenario make_panic_hybrid(double ip3_fraction,
                                      std::uint32_t ip4_parallelism);

/**
 * The smallest IP4 parallel degree achieving the configuration's saturated
 * throughput under @p traffic (the optimizer's suggestion: 6 for the
 * 50%/50% split, 4 for 80%/20%).
 */
std::uint32_t lognic_opt_parallelism(double ip3_fraction,
                                     const core::TrafficProfile& traffic,
                                     std::uint32_t max_parallelism = 8);

} // namespace lognic::apps

#endif // LOGNIC_APPS_PANIC_MODELS_HPP_
