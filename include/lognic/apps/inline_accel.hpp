/**
 * @file
 * Case study #1 (S4.2): bump-in-the-wire inline acceleration on the
 * LiquidIO-II CN2360.
 *
 * The offloaded program extends a UDP echo server: NIC cores pull packets
 * from the RX port, do L3/L4 processing, trigger an accelerator, catch the
 * completion, fabricate the response, and send it out. Following the
 * paper's setup, accelerator submission and completion are handled by the
 * same NIC cores, so the scenario models one run-to-completion core stage
 * whose per-request cost covers the full orchestration.
 */
#ifndef LOGNIC_APPS_INLINE_ACCEL_HPP_
#define LOGNIC_APPS_INLINE_ACCEL_HPP_

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/devices/liquidio.hpp"

namespace lognic::apps {

/// A fully-built inline-acceleration scenario.
struct InlineAccelScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    core::IpId cores; ///< the NIC-core IP
    core::IpId accel; ///< the accelerator IP
    core::VertexId cores_vertex;
    core::VertexId accel_vertex;
};

/**
 * Build the scenario for @p kernel with @p cores NIC cores active.
 *
 * The cores->accelerator edge crosses the CMI (memory medium, beta = 1)
 * for on-chip crypto units, or the I/O interconnect (interface medium,
 * alpha = 1) for the off-chip HFA/ZIP engines. The return transfer is a
 * digest/completion, not the payload, so it carries no medium usage.
 */
InlineAccelScenario make_inline_accel(devices::LiquidIoKernel kernel,
                                      std::uint32_t cores = 16);

/**
 * Variant for the Figure 5 granularity characterization: identical graph,
 * but the ingress/egress engines run at @p feed_rate instead of the 25 GbE
 * wire — the microbenchmark feeds the accelerator from on-card memory, so
 * the port speed must not cap the sweep.
 */
InlineAccelScenario make_inline_accel_unbounded(devices::LiquidIoKernel kernel,
                                                std::uint32_t cores = 16,
                                                Bandwidth feed_rate
                                                = Bandwidth::from_gbps(400.0));

} // namespace lognic::apps

#endif // LOGNIC_APPS_INLINE_ACCEL_HPP_
