/**
 * @file
 * Case study #3 (S4.4): E3 Microservice execution on the LiquidIO CN2360.
 *
 * Each E3 application is a service chain of stages executing on the NIC's
 * 16 cnMIPS cores. The paper compares three core-allocation schemes:
 *
 *  - round-robin (E3's default): every request is handled run-to-completion
 *    by one core chosen round-robin. All inter-request parallelism, no
 *    intra-request parallelism; the whole chain's code and working set
 *    thrash each core (modelled as a monolithic execution penalty).
 *  - equal partition: cores are split evenly across stages regardless of
 *    per-stage cost, so the heaviest stage bottlenecks the pipeline.
 *  - LogNIC-opt: the optimizer assigns per-stage core counts (D_vi) that
 *    maximize the modelled throughput under the core budget.
 */
#ifndef LOGNIC_APPS_MICROSERVICES_HPP_
#define LOGNIC_APPS_MICROSERVICES_HPP_

#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"

namespace lognic::apps {

/// The five E3 applications evaluated in the paper.
enum class E3Workload {
    kNfvFin, ///< flow monitoring
    kNfvDin, ///< intrusion detection
    kRtaSf,  ///< spam filter
    kRtaShm, ///< server health monitoring
    kIotDh,  ///< IoT data hub
};

const char* to_string(E3Workload workload);
std::vector<E3Workload> e3_workloads();

/// One stage of a service chain.
struct E3Stage {
    std::string name;
    Seconds fixed{0.0};        ///< per-request fixed compute
    double stream_passes{1.0}; ///< payload traversals on the core
};

/// The service chain of @p workload.
std::vector<E3Stage> e3_stages(E3Workload workload);

/// Relative compute inflation of monolithic run-to-completion execution
/// (I-cache and working-set thrash across the whole chain).
double e3_monolithic_penalty();

/// Cross-core request handoff overhead between pipelined stages (O_i).
Seconds e3_handoff_overhead();

/// E3 request size used throughout the case study.
Bytes e3_request_size();

struct MicroserviceScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    std::vector<core::VertexId> stage_vertices;
};

/**
 * Pipelined deployment: one vertex per stage with the given core counts.
 *
 * @throws std::invalid_argument when counts do not match the stage count,
 * any count is zero, or the total exceeds 16.
 */
MicroserviceScenario make_e3_pipeline(
    E3Workload workload, const std::vector<std::uint32_t>& cores_per_stage);

/// Run-to-completion deployment over @p total_cores (the RR policy).
MicroserviceScenario make_e3_run_to_completion(E3Workload workload,
                                               std::uint32_t total_cores = 16);

/// The equal-partition allocation (remainder cores go to the front stages).
std::vector<std::uint32_t> equal_partition_alloc(E3Workload workload,
                                                 std::uint32_t total = 16);

/**
 * LogNIC-opt: enumerate every composition of @p total cores over the
 * stages and return the allocation with the highest modelled throughput
 * (ties broken by lower modelled latency) under @p traffic.
 */
std::vector<std::uint32_t> lognic_opt_alloc(E3Workload workload,
                                            const core::TrafficProfile& traffic,
                                            std::uint32_t total = 16);

} // namespace lognic::apps

#endif // LOGNIC_APPS_MICROSERVICES_HPP_
