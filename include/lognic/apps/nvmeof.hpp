/**
 * @file
 * Case study #2 (S4.3): the NVMe-oF (NVMe-over-RDMA) target on the
 * Broadcom Stingray PS1100R JBOF — the paper's Figure 2c execution graph:
 *
 *   Ethernet ingress -> IP1 (cores, submission path) -> IP2 (NVMe SSD)
 *     -> IP3 (cores, completion path) -> Ethernet egress
 *
 * The SSD is an opaque IP: its LogNIC parameters come from the
 * characterize-then-curve-fit pipeline in lognic/ssd.
 */
#ifndef LOGNIC_APPS_NVMEOF_HPP_
#define LOGNIC_APPS_NVMEOF_HPP_

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/ssd/calibration.hpp"
#include "lognic/ssd/ssd_model.hpp"
#include "lognic/traffic/io_workload.hpp"

namespace lognic::apps {

struct NvmeOfScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    core::IpId ssd;
};

/**
 * Build the NVMe-oF target scenario for @p workload using SSD parameters
 * from @p calibrated.
 *
 * Edges 1/4 (wire <-> cores) stage payloads through DRAM (beta); edges 2/3
 * (cores <-> SSD) ride the dedicated PCIe link and DRAM, matching the
 * caption of the paper's Figure 2c.
 */
NvmeOfScenario make_nvmeof_target(const ssd::CalibratedSsd& calibrated,
                                  const traffic::IoWorkload& workload);

/**
 * The "testbed" counterpart of make_nvmeof_target: the same execution
 * graph, but the SSD IP carries the ground-truth device's occupancy,
 * parallelism, and pipeline delay instead of the fitted curve. Simulating
 * this scenario is the stand-in for measuring on the physical JBOF.
 */
NvmeOfScenario make_nvmeof_testbed(const ssd::SsdGroundTruth& drive,
                                   const traffic::IoWorkload& workload);

/**
 * The LogNIC estimate for a *mixed* read/write workload from two pure
 * calibrations (Figure 7's model line): the device time-shares between the
 * calibrated read capacity and the calibrated write capacity, so the mixed
 * capacity is the harmonic combination
 *
 *   1 / ( r / C_read + (1 - r) / C_write ).
 */
Bandwidth mixed_model_bandwidth(const ssd::CalibratedSsd& read_calib,
                                const ssd::CalibratedSsd& write_calib,
                                double read_fraction);

} // namespace lognic::apps

#endif // LOGNIC_APPS_NVMEOF_HPP_
