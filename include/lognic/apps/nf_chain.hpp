/**
 * @file
 * Case study #4 (S4.5): network-function placement on the BlueField-2.
 *
 * The middlebox chain FW -> LB -> DPI -> NAT -> PE runs on the DPU. Each
 * NF except DPI can be placed either on the ARM complex or on its matching
 * accelerator; ARM-resident NFs execute run-to-completion in one merged
 * core stage (whose cost also covers the descriptor preparation for every
 * offloaded NF), while offloaded NFs become accelerator vertices chained
 * in flow order, each hop crossing the SoC interconnect.
 */
#ifndef LOGNIC_APPS_NF_CHAIN_HPP_
#define LOGNIC_APPS_NF_CHAIN_HPP_

#include <array>
#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/devices/bluefield2.hpp"

namespace lognic::apps {

/// Placement choice: true = offload to the accelerator. DPI is always ARM.
struct NfPlacement {
    bool fw{false};
    bool lb{false};
    bool nat{false};
    bool pe{false};

    bool offloaded(devices::NetworkFunction nf) const;
    std::string to_string() const;
};

/// All 16 placement combinations.
std::vector<NfPlacement> all_placements();

/// Everything on ARM.
NfPlacement arm_only_placement();

/// Every accelerable NF on its accelerator.
NfPlacement accelerator_only_placement();

struct NfChainScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
};

/// Build the hardware model + execution graph for @p placement.
NfChainScenario make_nf_chain(const NfPlacement& placement);

/**
 * LogNIC-opt: enumerate all placements and return the one with the highest
 * modelled throughput under @p traffic (ties broken by lower latency).
 */
NfPlacement lognic_opt_placement(const core::TrafficProfile& traffic);

} // namespace lognic::apps

#endif // LOGNIC_APPS_NF_CHAIN_HPP_
