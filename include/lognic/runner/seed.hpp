/**
 * @file
 * Deterministic seed derivation for parallel replications.
 *
 * Every replication of every sweep point gets its own RNG seed, derived
 * from a single root seed with the SplitMix64 finalizer (Steele et al.,
 * "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014). The
 * scheme is pure 64-bit integer arithmetic, so derived seeds are identical
 * on every platform and independent of which thread happens to evaluate a
 * point — the property that makes runner results bit-identical regardless
 * of thread count.
 *
 * Derivation: seed(root, i) = splitmix64_mix(root + (i + 1) * GAMMA).
 * The mix function is a bijection on 64-bit values and the inputs are
 * pairwise distinct for distinct indices (GAMMA is odd), so derived seeds
 * never collide for the same root. Index 0 does not map to the root itself
 * (the +1), keeping the root reserved for deriving, never for running.
 */
#ifndef LOGNIC_RUNNER_SEED_HPP_
#define LOGNIC_RUNNER_SEED_HPP_

#include <cstdint>

namespace lognic::runner {

/// SplitMix64's golden-ratio increment (odd, hence a bijection mod 2^64).
inline constexpr std::uint64_t kSplitMix64Gamma = 0x9E3779B97F4A7C15ull;

/// The SplitMix64 output (finalizer) function: a 64-bit bijection.
constexpr std::uint64_t
splitmix64_mix(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Seed for replication @p index under @p root; stable across platforms.
constexpr std::uint64_t
derive_seed(std::uint64_t root, std::uint64_t index)
{
    return splitmix64_mix(root + (index + 1) * kSplitMix64Gamma);
}

} // namespace lognic::runner

#endif // LOGNIC_RUNNER_SEED_HPP_
