/**
 * @file
 * Replicated simulation runs with deterministic seeding and confidence
 * intervals.
 *
 * A single DES run is one draw from the distribution the simulator
 * defines; figure-quality numbers need several independent replications
 * and an honest error bar. The Replicator derives one seed per replication
 * from a root seed (see seed.hpp), runs them — optionally in parallel —
 * and aggregates each metric into mean / sample stddev / 95% Student-t
 * confidence half-width.
 *
 * Replications that complete zero requests after warmup are *degenerate*:
 * their SimResult latency fields hold the documented empty-set sentinel
 * (0.0) and are excluded from the latency summaries instead of being
 * averaged in as real data. Throughput and drop-rate summaries still see
 * every replication (a run that delivered nothing genuinely measured zero
 * throughput).
 */
#ifndef LOGNIC_RUNNER_REPLICATOR_HPP_
#define LOGNIC_RUNNER_REPLICATOR_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lognic/sim/nic_simulator.hpp"

namespace lognic::runner {

/// Mean/spread summary of one metric across replications.
struct Summary {
    std::size_t n{0};     ///< samples aggregated
    double mean{0.0};
    double stddev{0.0};   ///< sample standard deviation (n-1); 0 when n < 2
    double ci_half{0.0};  ///< 95% Student-t half-width; 0 when n < 2
};

/// Summarize raw samples (mean, sample stddev, 95% t-interval half-width).
Summary summarize(const std::vector<double>& samples);

struct ReplicationResult {
    std::size_t replications{0};
    /// Replications with zero completed requests; excluded from the
    /// latency summaries below.
    std::size_t degenerate{0};
    std::vector<std::uint64_t> seeds; ///< seeds[i] drove replication i
    Summary delivered_gbps;
    Summary delivered_mops;
    Summary mean_latency_us;
    Summary p50_latency_us;
    Summary p99_latency_us;
    Summary drop_rate;
    /**
     * Aggregate of every replication's structured snapshot: counters and
     * histogram buckets summed, gauges averaged (obs::aggregate
     * semantics). Empty when the per-replication snapshots were empty.
     */
    obs::MetricsSnapshot metrics;
};

/**
 * The resolved outcome of one guarded task (a replication, or one
 * point x replication cell of a sweep) in the form a checkpoint journal
 * stores and a resumed run replays. A resumed task is *not* re-simulated:
 * the recorded result (or recorded failure) is used verbatim, which is
 * what makes an interrupted-then-resumed run byte-identical to an
 * uninterrupted one at any thread count — every task is pure in its index,
 * so replaying a completed index is indistinguishable from re-running it.
 */
struct CompletedTask {
    bool ok{false};
    std::uint64_t seed{0};     ///< seed of the last attempt made
    std::size_t attempts{1};   ///< attempts consumed (retries included)
    std::string error;         ///< what() of the last failure when !ok
    sim::SimResult result;     ///< valid only when ok
};

/// Resume source: returns true and fills the outcome when @p task index
/// is already complete in the journal.
using TaskLookup = std::function<bool(std::size_t task, CompletedTask& out)>;

/// Completion sink: fired once per freshly-computed task (success or
/// exhausted-retries failure), from the worker thread that ran it.
using TaskHook = std::function<void(std::size_t task, const CompletedTask&)>;

struct ReplicatorHooks {
    TaskLookup lookup;
    TaskHook on_complete;
};

/// A replication whose simulation threw (see Replicator::run_guarded).
struct FailedReplication {
    std::size_t replication{0};
    std::uint64_t seed{0};
    std::string error;   ///< what() of the thrown exception
};

/// Guarded-run outcome: aggregates over the replications that completed,
/// plus a structured record per replication that threw.
struct GuardedReplication {
    ReplicationResult stats;
    std::vector<FailedReplication> failed;
    bool complete() const { return failed.empty(); }
};

class Replicator {
  public:
    Replicator(std::size_t replications, std::uint64_t root_seed)
        : replications_(replications), root_seed_(root_seed)
    {
    }

    std::size_t replications() const { return replications_; }
    std::uint64_t root_seed() const { return root_seed_; }

    /// The derived per-replication seeds (pairwise distinct, stable).
    std::vector<std::uint64_t> seeds() const;

    using SimFn = std::function<sim::SimResult(std::uint64_t seed)>;

    /**
     * Run fn(seed) once per replication — across @p threads threads when
     * > 1 — and aggregate. Results are identical for any thread count:
     * each replication depends only on its derived seed.
     */
    ReplicationResult run(const SimFn& fn, std::size_t threads = 1) const;

    /**
     * Failure-isolating run: a replication whose fn(seed) throws becomes a
     * FailedReplication record instead of aborting the batch; the
     * survivors aggregate as usual (stats.seeds lists only them). Same
     * thread-count-independence guarantee as run().
     */
    GuardedReplication run_guarded(const SimFn& fn,
                                   std::size_t threads = 1) const;

    /**
     * run_guarded() with checkpoint/resume hooks: replications satisfied
     * by hooks.lookup are replayed from their recorded outcome instead of
     * being simulated; freshly-computed outcomes (including failures) are
     * reported through hooks.on_complete. Empty hooks degrade to plain
     * run_guarded().
     */
    GuardedReplication run_guarded(const SimFn& fn, std::size_t threads,
                                   const ReplicatorHooks& hooks) const;

    /// Aggregate pre-computed results (results[i] came from seeds[i]).
    static ReplicationResult aggregate(
        const std::vector<std::uint64_t>& seeds,
        const std::vector<sim::SimResult>& results);

  private:
    std::size_t replications_;
    std::uint64_t root_seed_;
};

} // namespace lognic::runner

#endif // LOGNIC_RUNNER_REPLICATOR_HPP_
