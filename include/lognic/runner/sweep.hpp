/**
 * @file
 * Design-space sweeps: fan a grid of (device x app scenario x traffic x
 * option) points out across a thread pool, with N replications per point.
 *
 * Determinism contract: every (point, replication) pair gets a seed that
 * is a pure function of (root_seed, point index, replication index) — see
 * seed.hpp — and each simulation owns all of its state. Results are
 * therefore bit-identical for any thread count, which the determinism test
 * suite pins.
 *
 * Sweeps also travel as JSON documents (the same io layer scenarios use):
 *
 *   {
 *     "scenario": { ...a regular scenario document... },
 *     "sweep": {
 *       "rates_gbps":    [5, 10, 20],     // optional; default: base rate
 *       "packet_sizes":  [64, 1500],      // optional, bytes; default: base
 *       "replications":  3,               // default 1
 *       "threads":       4,               // default 1
 *       "root_seed":     42,              // default 42
 *       "duration":      0.01,            // seconds, default 0.05
 *       "warmup_fraction": 0.2            // default 0.2
 *     }
 *   }
 *
 * The grid is the cartesian product rates x sizes; an absent axis keeps
 * the base scenario's value for that dimension.
 */
#ifndef LOGNIC_RUNNER_SWEEP_HPP_
#define LOGNIC_RUNNER_SWEEP_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/io/serialize.hpp"
#include "lognic/runner/replicator.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::runner {

/// One evaluation point: a full scenario plus simulation options.
struct SweepPoint {
    std::string label;
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    core::TrafficProfile traffic;
    /// Per-point sim options; the seed field is ignored (the runner
    /// derives one per replication).
    sim::SimOptions options{};
};

struct SweepOptions {
    std::size_t threads{1};      ///< <= 1 runs serially on the caller
    std::size_t replications{1}; ///< DES replications per point
    std::uint64_t root_seed{42};
};

struct PointResult {
    std::size_t index{0};
    std::string label;
    ReplicationResult stats;
};

class Sweep {
  public:
    /// Append a point; returns its index (stable — seeds key off it).
    std::size_t add(SweepPoint point);

    std::size_t size() const { return points_.size(); }
    const SweepPoint& point(std::size_t i) const { return points_.at(i); }

    /**
     * Evaluate every point x replication, fanned across
     * options.threads threads, and aggregate per point. Bit-identical for
     * any thread count given the same root seed.
     */
    std::vector<PointResult> run(const SweepOptions& options = {}) const;

  private:
    std::vector<SweepPoint> points_;
};

// --- JSON sweep specs ---------------------------------------------------------

/// A parsed sweep document: base scenario + grid axes + runner knobs.
struct SweepSpec {
    io::Scenario base;
    std::vector<double> rates_gbps;        ///< empty: keep base rate
    std::vector<double> packet_sizes_bytes; ///< empty: keep base classes
    sim::SimOptions sim;
    SweepOptions options;
};

/// Parse a sweep document. @throws std::runtime_error on malformed specs.
SweepSpec sweep_spec_from_json(const io::Json& doc);

/// Expand the spec's grid into concrete points.
Sweep build_sweep(const SweepSpec& spec);

/// Per-point result as JSON (seeds rendered as hex strings — JSON numbers
/// are doubles and cannot hold a full uint64).
io::Json to_json(const PointResult& result);

/// The whole result set: {"points": [...]}.
io::Json sweep_results_json(const std::vector<PointResult>& results);

/// A small, fast-to-run sample sweep spec document (for `lognic example`).
std::string sample_sweep_spec(const io::Scenario& base);

} // namespace lognic::runner

#endif // LOGNIC_RUNNER_SWEEP_HPP_
