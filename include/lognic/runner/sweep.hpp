/**
 * @file
 * Design-space sweeps: fan a grid of (device x app scenario x traffic x
 * option) points out across a thread pool, with N replications per point.
 *
 * Determinism contract: every (point, replication) pair gets a seed that
 * is a pure function of (root_seed, point index, replication index) — see
 * seed.hpp — and each simulation owns all of its state. Results are
 * therefore bit-identical for any thread count, which the determinism test
 * suite pins.
 *
 * Sweeps also travel as JSON documents (the same io layer scenarios use):
 *
 *   {
 *     "scenario": { ...a regular scenario document... },
 *     "sweep": {
 *       "rates_gbps":    [5, 10, 20],     // optional; default: base rate
 *       "packet_sizes":  [64, 1500],      // optional, bytes; default: base
 *       "replications":  3,               // default 1
 *       "threads":       4,               // default 1
 *       "root_seed":     42,              // default 42
 *       "duration":      0.01,            // seconds, default 0.05
 *       "warmup_fraction": 0.2,           // default 0.2
 *       "max_retries":   1,               // default 0 (fail fast)
 *       "max_sim_events": 2000000,        // watchdog event budget (0=off)
 *       "deadline_seconds": 30,           // wall-clock per run (0=off)
 *       "faults": [ ...a fault-plan document... ]   // optional
 *     }
 *   }
 *
 * The grid is the cartesian product rates x sizes; an absent axis keeps
 * the base scenario's value for that dimension.
 *
 * Failure isolation: `run_guarded` never lets one bad point kill the
 * campaign. A replication that throws is retried up to max_retries times
 * with a deterministically re-derived seed; if every attempt throws, the
 * point is reported as a structured FailedPoint and the remaining points
 * still produce results. Replications the watchdog truncates keep their
 * partial statistics and are flagged with a TruncationRecord.
 */
#ifndef LOGNIC_RUNNER_SWEEP_HPP_
#define LOGNIC_RUNNER_SWEEP_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/io/serialize.hpp"
#include "lognic/runner/replicator.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::runner {

/// One evaluation point: a full scenario plus simulation options.
struct SweepPoint {
    std::string label;
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    core::TrafficProfile traffic;
    /// Per-point sim options; the seed field is ignored (the runner
    /// derives one per replication).
    sim::SimOptions options{};
};

struct SweepOptions {
    std::size_t threads{1};      ///< <= 1 runs serially on the caller
    std::size_t replications{1}; ///< DES replications per point
    std::uint64_t root_seed{42};
    /**
     * Extra attempts for a replication whose simulation *throws* (watchdog
     * truncation is a result, not a failure, and is never retried).
     * Attempt k > 0 re-derives its seed as derive_seed(seed_0, k), so
     * retry chains are as deterministic as first attempts — independent of
     * thread count and of which other points failed.
     */
    std::size_t max_retries{0};
    /**
     * Checkpoint/resume seams (see lognic::ckpt). Tasks are numbered
     * point * replications + replication; a task satisfied by
     * resume_lookup replays its journaled outcome instead of simulating,
     * and every freshly-computed task (success or exhausted-retries
     * failure) is reported through on_task_complete from the worker
     * thread that ran it. Hooks never alter what the sweep computes —
     * a resumed report is byte-identical to an uninterrupted one.
     */
    TaskLookup resume_lookup{};
    TaskHook on_task_complete{};
};

struct PointResult {
    std::size_t index{0};
    std::string label;
    ReplicationResult stats;
};

/// A point whose every replication attempt threw: the campaign carries on
/// and reports the failure as data instead of dying.
struct FailedPoint {
    std::size_t index{0};        ///< index into the sweep's point list
    std::string label;           ///< the point's parameters, human-readable
    std::size_t replication{0};  ///< first replication that failed
    std::uint64_t seed{0};       ///< seed of that replication's last attempt
    std::size_t attempts{1};     ///< attempts made (1 + retries)
    std::string error;           ///< what() of the last attempt
};

/// A replication the watchdog cut short. Its partial statistics *are*
/// aggregated into the point's result; this record flags them.
struct TruncationRecord {
    std::size_t index{0};
    std::string label;
    std::size_t replication{0};
    std::uint64_t seed{0};
    std::string reason;          ///< "event_budget" or "wall_clock"
    double sim_time_reached{0.0};///< simulated seconds actually covered
};

/// Everything a guarded campaign produced: per-point aggregates for every
/// point that yielded data, plus structured failure/truncation records.
struct SweepReport {
    std::vector<PointResult> results;      ///< healthy + truncated points
    std::vector<FailedPoint> failed;       ///< points with no data at all
    std::vector<TruncationRecord> truncated;
    bool complete() const { return failed.empty() && truncated.empty(); }
};

class Sweep {
  public:
    /// Append a point; returns its index (stable — seeds key off it).
    std::size_t add(SweepPoint point);

    std::size_t size() const { return points_.size(); }
    const SweepPoint& point(std::size_t i) const { return points_.at(i); }

    /**
     * Evaluate every point x replication, fanned across
     * options.threads threads, and aggregate per point. Bit-identical for
     * any thread count given the same root seed.
     *
     * Fail-fast view of run_guarded: if any point failed (threw on every
     * attempt), the first underlying exception is rethrown unchanged.
     */
    std::vector<PointResult> run(const SweepOptions& options = {}) const;

    /**
     * Failure-isolating evaluation: like run(), but a throwing point is
     * captured (after options.max_retries deterministic retries) as a
     * FailedPoint record instead of aborting the campaign, and
     * watchdog-truncated replications are flagged with TruncationRecords
     * while their partial statistics still aggregate. Deterministic for
     * any thread count.
     */
    SweepReport run_guarded(const SweepOptions& options = {}) const;

  private:
    std::vector<SweepPoint> points_;
};

// --- JSON sweep specs ---------------------------------------------------------

/// A parsed sweep document: base scenario + grid axes + runner knobs.
struct SweepSpec {
    io::Scenario base;
    std::vector<double> rates_gbps;        ///< empty: keep base rate
    std::vector<double> packet_sizes_bytes; ///< empty: keep base classes
    sim::SimOptions sim;
    SweepOptions options;
};

/// Parse a sweep document. @throws std::runtime_error on malformed specs.
SweepSpec sweep_spec_from_json(const io::Json& doc);

/// Expand the spec's grid into concrete points.
Sweep build_sweep(const SweepSpec& spec);

/// Per-point result as JSON (seeds rendered as hex strings — JSON numbers
/// are doubles and cannot hold a full uint64).
io::Json to_json(const PointResult& result);

/// The whole result set: {"points": [...]}.
io::Json sweep_results_json(const std::vector<PointResult>& results);

io::Json to_json(const FailedPoint& failure);
io::Json to_json(const TruncationRecord& record);

/// A guarded campaign: {"points": [...], "failed": [...],
/// "truncated": [...], "complete": bool}. The "points" array matches
/// sweep_results_json so consumers of the unguarded format keep working.
io::Json to_json(const SweepReport& report);

/// A small, fast-to-run sample sweep spec document (for `lognic example`).
std::string sample_sweep_spec(const io::Scenario& base);

} // namespace lognic::runner

#endif // LOGNIC_RUNNER_SWEEP_HPP_
