/**
 * @file
 * Fixed-size thread pool and a deterministic parallel-for.
 *
 * Deliberately work-stealing-free: one shared FIFO task queue guarded by a
 * mutex. Simulation replications are coarse (milliseconds each), so queue
 * contention is negligible and the simple design keeps the scheduling
 * reasoning — and therefore the determinism argument — trivial: a task's
 * *result* may only depend on its arguments, never on which worker ran it
 * or in what order.
 */
#ifndef LOGNIC_RUNNER_THREAD_POOL_HPP_
#define LOGNIC_RUNNER_THREAD_POOL_HPP_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lognic::runner {

class ThreadPool {
  public:
    /// Spawn @p threads workers; 0 means std::thread::hardware_concurrency.
    explicit ThreadPool(std::size_t threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t size() const { return workers_.size(); }

    /// Enqueue a task; it runs on some worker thread. Tasks may submit
    /// further tasks.
    void submit(std::function<void()> task);

    /**
     * Block until the queue is empty and every worker is idle. If any task
     * threw since the last wait, the *first* such exception is rethrown
     * here (and cleared) — a throw inside a worker never escapes the
     * worker thread, so it cannot std::terminate the process. Later
     * exceptions from the same batch are dropped.
     */
    void wait_idle();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    std::exception_ptr first_error_;
    std::size_t active_{0};
    bool stop_{false};
};

/**
 * Run body(0), ..., body(n-1) across @p threads threads; threads <= 1 runs
 * serially on the caller. Indices are claimed dynamically from a shared
 * counter, so *which* thread runs an index is nondeterministic — bodies
 * must write results keyed by their index and depend only on it. The first
 * exception thrown by any body is rethrown on the caller once all work has
 * drained (remaining indices are skipped).
 */
void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& body);

} // namespace lognic::runner

#endif // LOGNIC_RUNNER_THREAD_POOL_HPP_
