/**
 * @file
 * JSON exploration specs: the `lognic explore` document format.
 *
 *   {
 *     "scenario": { ...hardware + graph + traffic... },   // or:
 *     "dse": {
 *       "base": "nf_chain",            // ARM-only NF chain as the base
 *       "traffic": {"rate_gbps": 50, "packet_bytes": 1500},
 *       "knobs": [
 *         "placement.nf_chain",        // bare string: default levels
 *         {"path": "vertex.arm.parallelism", "values": [1, 2, 4],
 *          "cost_weight": 1.0}
 *       ],
 *       "objectives": ["throughput_gbps", "p99_latency_us"],
 *       "constraints": [{"metric": "drop_rate", "upper": 0.01}],
 *       "strategy": "exhaustive",      // mutation | nsga2
 *       "prune": "on",                 // off | explain (default on)
 *       "seed": 42, "budget": 256, "population": 16, "generations": 8,
 *       "exhaustive_limit": 65536,
 *       "cache_capacity": 65536, "cache_shards": 8,
 *       "des": {"enabled": true, "replications": 3, "duration": 0.01,
 *               "warmup_fraction": 0.2}
 *     }
 *   }
 *
 * Exactly one of "scenario" / dse."base" must be present. Thread count is
 * deliberately NOT part of the spec (it may never influence results);
 * the CLI wires --threads into ExploreOptions directly.
 */
#ifndef LOGNIC_DSE_SPEC_HPP_
#define LOGNIC_DSE_SPEC_HPP_

#include <string>
#include <vector>

#include "lognic/dse/design_space.hpp"
#include "lognic/dse/explorer.hpp"
#include "lognic/io/json.hpp"

namespace lognic::dse {

/// A parsed spec, ready to run.
struct ExploreSpec {
    DesignSpace space;
    std::vector<ObjectiveSpec> objectives;
    std::vector<Constraint> constraints;
    ExploreOptions options;

    explicit ExploreSpec(DesignSpace s) : space(std::move(s)) {}
};

/// Parse an exploration document.
/// @throws std::runtime_error / std::invalid_argument on malformed input.
ExploreSpec explore_spec_from_json(const io::Json& doc);

/**
 * The placement study spec (for `lognic example explore`): exhaustive
 * search over all 16 NF-chain placements, throughput vs p99 latency —
 * whose frontier contains the paper's LogNIC-opt placement (S4.5,
 * figures 13/14).
 */
std::string sample_explore_spec();

} // namespace lognic::dse

#endif // LOGNIC_DSE_SPEC_HPP_
