/**
 * @file
 * Kill-tolerant exploration supervision (lognic::dse on the lognic::ckpt
 * seams).
 *
 * ExploreJournal is the completed-work journal for an exploration
 * campaign: model-oracle Evaluations keyed by canonical config string,
 * plus DES validations of frontier members under the same keys. Both
 * round-trip through JSON bit-exactly (doubles as IEEE-754 hex, u64 as
 * hex strings), so a resumed run replays journaled outcomes verbatim.
 *
 * supervise_exploration() wraps explore() in the PR-8 supervision loop:
 * resume from the newest valid "explore" generation (fingerprint-checked
 * against the live campaign), wire the journal into the
 * resume_eval/on_eval and resume_des/on_des seams, publish a generation
 * every checkpoint_every completions, and always publish a final
 * checkpoint. A run SIGKILLed at any point and resumed produces a
 * FrontierReport byte-identical to the uninterrupted run, at any thread
 * count — journal replay satisfies the *work* of a memo-cache miss
 * without perturbing the miss count (see memo.hpp).
 */
#ifndef LOGNIC_DSE_SUPERVISE_HPP_
#define LOGNIC_DSE_SUPERVISE_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "lognic/ckpt/supervisor.hpp"
#include "lognic/dse/explorer.hpp"
#include "lognic/io/json.hpp"

namespace lognic::dse {

/// Frame kind used by exploration checkpoints.
inline constexpr const char* kExploreCheckpointKind = "explore";

/**
 * Journal of completed exploration units. Thread-safe: the record hooks
 * fire from evaluation worker threads. record_*_fn()'s optional @p after
 * callback runs outside the journal lock (the supervisor hangs the
 * periodic checkpoint there).
 */
class ExploreJournal {
  public:
    ExploreJournal() = default;

    /// {"evals": [{"key": ..., ...}], "des": [{"key": ..., ...}]}
    io::Json to_json() const;
    /// Replace the contents from a journal document.
    /// @throws std::runtime_error on malformed input.
    void load_json(const io::Json& j);

    std::size_t eval_count() const;
    std::size_t des_count() const;

    void record_eval(const std::string& key, Evaluation done);
    bool lookup_eval(const std::string& key, Evaluation& out) const;
    void record_des(const std::string& key, DesValidation done);
    bool lookup_des(const std::string& key, DesValidation& out) const;

    /// Adapters for the ExploreOptions seams. The journal must outlive
    /// the returned functions.
    EvalLookup eval_lookup_fn() const;
    EvalHook eval_record_fn(std::function<void()> after = {});
    DesLookup des_lookup_fn() const;
    DesHook des_record_fn(std::function<void()> after = {});

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Evaluation> evals_;
    std::map<std::string, DesValidation> des_;
};

// Bit-exact (de)serialization of journal entries; exposed for tests.
io::Json evaluation_to_json(const Evaluation& e);
Evaluation evaluation_from_json(const io::Json& j);
io::Json des_validation_to_json(const DesValidation& v);
DesValidation des_validation_from_json(const io::Json& j);

struct SupervisedExploration {
    FrontierReport report;
    ckpt::ResumeInfo resume;
    std::uint64_t checkpoints{0}; ///< generations published this run
};

/**
 * Run (or resume) an exploration under checkpoint supervision.
 * @p opts.resume_eval / on_eval / resume_des / on_des must be unset (the
 * supervisor owns those seams); throws std::invalid_argument otherwise.
 * A fingerprint mismatch against the stored campaign throws
 * std::runtime_error rather than mixing incompatible work.
 */
SupervisedExploration
supervise_exploration(const DesignSpace& space,
                      const std::vector<ObjectiveSpec>& objectives,
                      const std::vector<Constraint>& constraints,
                      ExploreOptions opts, const ckpt::SupervisorOptions& sup,
                      obs::MetricsRegistry* metrics = nullptr);

} // namespace lognic::dse

#endif // LOGNIC_DSE_SUPERVISE_HPP_
