/**
 * @file
 * FrontierReport serialization (schema "lognic-dse-frontier/1") and the
 * human-readable rendering behind `lognic explore`.
 *
 * The JSON document is deterministic byte-for-byte for a given
 * exploration outcome: objects are key-ordered maps, u64 identities
 * (seed, config fingerprints) travel as hex strings, and metric values
 * are plain JSON numbers written with the writer's fixed %.17g rule.
 * Thread count is deliberately absent from the document — reports from
 * --threads 1 and --threads 8 must compare byte-identical.
 */
#ifndef LOGNIC_DSE_REPORT_HPP_
#define LOGNIC_DSE_REPORT_HPP_

#include <string>

#include "lognic/dse/explorer.hpp"
#include "lognic/io/json.hpp"

namespace lognic::dse {

/// Schema tag of the emitted document.
inline constexpr const char* kFrontierReportSchema = "lognic-dse-frontier/1";

io::Json frontier_report_to_json(const FrontierReport& report);

/// Human-readable frontier table + search statistics.
std::string render(const FrontierReport& report);

} // namespace lognic::dse

#endif // LOGNIC_DSE_REPORT_HPP_
