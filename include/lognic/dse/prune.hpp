/**
 * @file
 * Feasibility pruning for the design-space explorer (lognic::dse).
 *
 * A Pruner derives, from the declared knob domains and the materialized
 * scenario skeleton, structural bounds on the model's metrics that can be
 * computed *without a model solve*:
 *
 *   cost             exactly separable: sum(level * cost_weight)
 *   capacity_gbps    Eq. 4 is a min() of per-entity terms, and — for
 *                    single-class traffic with recognized knob paths —
 *                    every term depends on at most one knob (a vertex's
 *                    attainable rate on its parallelism / its IP's
 *                    catalog entry, the shared interface / memory /
 *                    line-rate terms on their catalog knobs), so each
 *                    term is tabled per knob level by replaying the
 *                    model's own term construction
 *   throughput_gbps  min(capacity, offered rate) with the offered rate
 *                    tabled from the traffic knob
 *
 * Construction narrows each knob's level-set domain to a fixpoint
 * against the user's box constraints (interval arithmetic for cost,
 * per-term level tables for capacity/throughput; with a
 * scenario-rebuilding knob the tables are per *stratum* and a level dies
 * only when provably infeasible in every surviving stratum). reject()
 * then decides per config.
 *
 * Soundness contract: reject() returns a reason only for configs whose
 * real evaluation would *provably* violate a constraint. Boundary
 * decisions are bit-exact: per-config cost is computed by
 * DesignSpace::cost itself (same summation order as the model oracle)
 * and capacity terms are produced by the same pure term construction the
 * throughput model runs, so the pruner's comparison sees the identical
 * double the solver would. Terms it cannot table (unrecognized custom
 * knobs, mixed traffic, multi-knob terms) only ever *weaken* the bound
 * — a config is rejected on an upper bound below a lower constraint (or,
 * when the term set is complete, on the exact metric), never on a guess.
 * Latency and drop-rate constraints are never pruned; they need a solve.
 *
 * The domain-narrowing pass is the subspace view of the same bounds and
 * feeds --prune=explain and the dse.pruned.* stats; the per-config exact
 * checks stay authoritative so floating-point summation order cannot
 * disagree with the oracle at a constraint boundary.
 */
#ifndef LOGNIC_DSE_PRUNE_HPP_
#define LOGNIC_DSE_PRUNE_HPP_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "lognic/core/throughput_model.hpp"
#include "lognic/dse/design_space.hpp"

namespace lognic::dse {

/// Box feasibility constraint on any built-in metric (it need not also be
/// an objective). A candidate violating any constraint never enters the
/// frontier.
struct Constraint {
    std::string metric;
    double lower{-std::numeric_limits<double>::infinity()};
    double upper{std::numeric_limits<double>::infinity()};
};

/// Explorer pruning switch: kExplain behaves like kOn and additionally
/// narrates domains/derived bounds through ExploreOptions::prune_log.
enum class PruneMode { kOff, kOn, kExplain };

std::string prune_mode_name(PruneMode m);
/// @throws std::invalid_argument on unknown names ("off", "on", "explain").
PruneMode prune_mode_from_name(const std::string& name);

/// Machine-readable rejection record for one config.
struct PruneReason {
    std::string metric; ///< the violated constraint's metric
    double value{0.0};  ///< exact metric (exact=true) or its proven bound
    bool exact{true};   ///< false: one-sided bound proof (value >= metric)
    std::string why;    ///< "pruned: constraint violated: <metric> ..."
};

struct PruneStats {
    std::uint64_t rejected{0};       ///< reject() calls that pruned
    std::uint64_t admitted{0};       ///< reject() calls that passed
    std::uint64_t levels_removed{0}; ///< domain cells dead after narrowing
    std::uint64_t fixpoint_rounds{0};
};

class Pruner {
  public:
    /**
     * Derives bounds and narrows domains. Never throws on a well-formed
     * space: strata whose skeleton the model rejects are marked opaque
     * (no capacity pruning there) rather than failing construction.
     */
    Pruner(const DesignSpace& space,
           const std::vector<Constraint>& constraints);

    /**
     * Non-null when @p c is provably infeasible without a solve. Pure in
     * (space, constraints, c) apart from the admitted/rejected counters.
     */
    std::optional<PruneReason> reject(const Config& c);

    const PruneStats& stats() const { return stats_; }

    /// True when domain narrowing proved the whole level dead.
    bool level_removed(std::size_t knob, std::uint32_t level) const;

    /// Human-readable narration of domains, derived bounds, and removals
    /// (the --prune=explain output).
    std::string explain() const;

  private:
    /// One Eq. 4 term the pruner can reproduce without a solve.
    struct TermBound {
        core::TermKind kind{core::TermKind::kIpCompute};
        std::string name;
        int knob{-1}; ///< dependent knob index; -1 = constant
        Bandwidth constant{Bandwidth{0.0}};
        std::vector<Bandwidth> by_level;

        Bandwidth at(const Config& c) const
        {
            return knob < 0 ? constant : by_level[c[static_cast<std::size_t>(
                                             knob)]];
        }
    };

    /// Term tables for one rebuild-knob level (or the whole space).
    struct Stratum {
        bool terms_ok{false}; ///< capacity/throughput bounds usable
        bool complete{false}; ///< every model term is reproduced
        std::vector<TermBound> terms;
    };

    void build_term_tables();
    void narrow_domains();
    const Stratum& stratum_of(const Config& c) const;
    /// Upper bound on capacity for @p c (exact when stratum.complete).
    std::optional<Bandwidth> capacity_bound(const Config& c) const;
    Bandwidth offered(const Config& c) const;
    bool level_alive(std::size_t knob, std::size_t level) const;

    const DesignSpace& space_;
    std::vector<Constraint> constraints_;
    int rebuild_knob_{-1};
    int traffic_knob_{-1};
    bool single_class_{false};
    bool paths_recognized_{false}; ///< every knob path is classifiable
    Bandwidth offered_const_{Bandwidth{0.0}};
    std::vector<Bandwidth> offered_by_level_;
    std::vector<Stratum> strata_; ///< one per rebuild level; else size 1
    /// removed_why_[k][l]: non-empty when narrowing proved the cell dead.
    std::vector<std::vector<std::string>> removed_why_;
    PruneStats stats_;
};

} // namespace lognic::dse

#endif // LOGNIC_DSE_PRUNE_HPP_
