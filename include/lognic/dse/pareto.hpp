/**
 * @file
 * Pareto dominance machinery for multi-objective design-space search.
 *
 * Objective vectors mix senses (throughput is maximized, latency / drop
 * rate / cost minimized), so dominance is sense-aware: a dominates b when
 * a is at least as good in every objective and strictly better in one.
 *
 * Quarantine rule: a candidate whose objective vector contains any NaN or
 * infinity is *quarantined* — it never dominates, is never dominated, and
 * never enters a frontier or an NSGA front. Comparing against NaN would
 * make dominance non-transitive and the frontier dependent on visit
 * order; quarantining keeps every result a pure function of the candidate
 * *set*. Infeasible candidates (constraint violations) are excluded the
 * same way.
 *
 * Frontiers are returned sorted by ascending candidate id (a canonical
 * config fingerprint), so the result is stable under any permutation of
 * the input — the property the 1-vs-N-thread byte-identity gate rests on.
 */
#ifndef LOGNIC_DSE_PARETO_HPP_
#define LOGNIC_DSE_PARETO_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace lognic::dse {

/// Optimization direction of one objective.
enum class Sense { kMaximize, kMinimize };

/// Per-knob level indices: the genotype of one design point.
using Config = std::vector<std::uint32_t>;

/// One evaluated design point as the Pareto machinery sees it.
struct ScoredConfig {
    std::uint64_t id{0};          ///< canonical config fingerprint
    std::string key;              ///< canonical config string (exact)
    Config config;
    std::vector<double> objectives; ///< aligned with the objective specs
    bool feasible{true};          ///< all constraints satisfied
    bool finite{true};            ///< no NaN/inf objective (else quarantined)
    bool pruned{false};           ///< rejected without a solve (see memo.hpp)
    std::string why;              ///< violated constraint / failure reason
};

/// True when every objective of @p s is finite — the quarantine test.
bool all_finite(const std::vector<double>& objectives);

/// Candidates eligible for dominance comparison and frontier membership.
inline bool eligible(const ScoredConfig& s) { return s.feasible && s.finite; }

/**
 * Sense-aware strict Pareto dominance: a dominates b when a is
 * better-or-equal in every coordinate and strictly better in at least
 * one. Vectors must be the same size as @p senses; inputs are assumed
 * finite (quarantine first). Equal vectors dominate neither way.
 */
bool dominates(const std::vector<double>& a, const std::vector<double>& b,
               const std::vector<Sense>& senses);

/**
 * Candidate-level dominance applying the quarantine rule: an ineligible
 * candidate (non-finite objectives or constraint violation) never
 * dominates and is never dominated.
 */
bool dominates(const ScoredConfig& a, const ScoredConfig& b,
               const std::vector<Sense>& senses);

/**
 * Indices of the nondominated *eligible* candidates, sorted by ascending
 * (id, key) — a canonical order independent of input permutation.
 * Candidates with identical objective vectors are mutually nondominated
 * and all appear. With a single objective this degenerates to the argmin
 * (or argmax) set.
 */
std::vector<std::size_t> pareto_frontier(const std::vector<ScoredConfig>& all,
                                         const std::vector<Sense>& senses);

/// How many eligible members of @p all the candidate @p who dominates.
std::uint64_t dominated_count(const ScoredConfig& who,
                              const std::vector<ScoredConfig>& all,
                              const std::vector<Sense>& senses);

/**
 * Frontier membership and per-candidate dominated counts from ONE
 * O(N^2) pass over unordered candidate pairs (dominance is asymmetric,
 * so each pair needs at most two vector comparisons). Equivalent to
 * pareto_frontier() plus dominated_count() per member — which the
 * explorer used to recompute per frontier entry, at O(N) a call — and
 * pinned equal to that brute force by a regression test.
 */
struct DominanceSummary {
    /// == pareto_frontier(all, senses).
    std::vector<std::size_t> frontier;
    /// dominated[i] == dominated_count(all[i], all, senses).
    std::vector<std::uint64_t> dominated;
};

DominanceSummary dominance_summary(const std::vector<ScoredConfig>& all,
                                   const std::vector<Sense>& senses);

/**
 * NSGA-II fast non-dominated sort over the eligible members of @p all:
 * fronts[0] is the frontier, fronts[1] the frontier once fronts[0] is
 * removed, and so on. Quarantined/infeasible candidates appear in no
 * front (strategies rank them behind every front). Front-internal order
 * is ascending index — deterministic.
 */
std::vector<std::vector<std::size_t>>
non_dominated_sort(const std::vector<ScoredConfig>& all,
                   const std::vector<Sense>& senses);

/**
 * NSGA-II crowding distance for one front (indices into @p all), aligned
 * with @p front. Boundary points get +infinity; degenerate objective
 * ranges contribute zero.
 */
std::vector<double> crowding_distance(const std::vector<std::size_t>& front,
                                      const std::vector<ScoredConfig>& all,
                                      const std::vector<Sense>& senses);

} // namespace lognic::dse

#endif // LOGNIC_DSE_PARETO_HPP_
