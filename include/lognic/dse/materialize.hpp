/**
 * @file
 * Incremental scenario materialization for the design-space explorer.
 *
 * DesignSpace::materialize copies the whole base scenario and re-applies
 * every knob for every config. During a search, consecutive configs
 * usually differ in one or two non-rebuild knobs; a Materializer keeps
 * the last materialized scenario and patches only the changed knobs in
 * place, invalidating exactly the core::SolveScratch state the delta
 * touches:
 *
 *   PatchScope::kVertexParams  that vertex's cached analysis
 *   PatchScope::kTraffic       every cached analysis (BW_in feeds all)
 *   PatchScope::kCatalog       every cached analysis (hw feeds all)
 *   PatchScope::kNone / rebuild knobs  full re-materialize + full
 *                                      scratch invalidation
 *
 * Because every patchable knob's apply() is a pure assignment of its
 * level into its own field(s), a patched scenario is value-identical to
 * a fresh materialize of the same config — which makes incremental
 * evaluation bit-identical to fresh evaluation, independent of the
 * config order a Materializer saw. That is why the explorer may chunk
 * batches across threads arbitrarily without perturbing report bytes.
 *
 * Not thread-safe: one Materializer per worker.
 */
#ifndef LOGNIC_DSE_MATERIALIZE_HPP_
#define LOGNIC_DSE_MATERIALIZE_HPP_

#include <cstdint>
#include <optional>

#include "lognic/core/solve_scratch.hpp"
#include "lognic/dse/design_space.hpp"

namespace lognic::dse {

class Materializer {
  public:
    explicit Materializer(const DesignSpace& space);

    /**
     * The scenario for @p c — patched in place when every changed knob is
     * patchable, fully re-materialized otherwise. The reference stays
     * valid (and owned by this Materializer) until the next call.
     * @throws std::invalid_argument on an invalid config.
     */
    const io::Scenario& scenario(const Config& c);

    /// Solve cache tied to the current scenario, pre-invalidated per the
    /// scopes of the applied patches.
    core::SolveScratch& scratch() { return scratch_; }

    /**
     * Bumped whenever a (re)materialization or patch may have changed the
     * hardware model — callers holding a core::Model copy of hw rebuild
     * it when the epoch moves.
     */
    std::uint64_t hw_epoch() const { return hw_epoch_; }

    std::uint64_t full_builds() const { return full_builds_; }
    std::uint64_t patched_knobs() const { return patched_knobs_; }

  private:
    void build_full(const Config& c);

    const DesignSpace& space_;
    io::Scenario cached_;
    std::optional<Config> current_;
    core::SolveScratch scratch_;
    std::uint64_t hw_epoch_{0};
    std::uint64_t full_builds_{0};
    std::uint64_t patched_knobs_{0};
};

} // namespace lognic::dse

#endif // LOGNIC_DSE_MATERIALIZE_HPP_
