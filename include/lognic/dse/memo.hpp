/**
 * @file
 * Sharded memoized evaluation cache for the design-space explorer.
 *
 * Keys are canonical config strings (DesignSpace::canonical_key), values
 * are model-oracle Evaluations. Sharding by FNV-1a of the key bounds
 * per-shard LRU bookkeeping on big campaigns; each shard is the shared
 * io::LruCache backend also used by calib's per-start loss caches.
 *
 * The cache is NOT thread-safe and is only touched from the explorer's
 * serial batch coordinator — that is what makes hit/miss/eviction
 * counters (which appear in the FrontierReport) a pure function of the
 * candidate stream, identical at any thread count and across
 * kill/resume.
 */
#ifndef LOGNIC_DSE_MEMO_HPP_
#define LOGNIC_DSE_MEMO_HPP_

#include <optional>
#include <string>
#include <vector>

#include "lognic/io/lru_cache.hpp"

namespace lognic::dse {

/// Model-oracle outcome for one config (see explorer.hpp for semantics).
struct Evaluation {
    std::vector<double> objectives; ///< aligned with the objective specs
    bool feasible{true};
    bool finite{true};
    /**
     * True when the feasibility pruner proved a constraint violation
     * without a model solve. Pruned evaluations are infeasible-but-finite
     * (never quarantined) and carry NaN objectives; both are safe because
     * an infeasible candidate's objectives are never compared or
     * reported. The flag survives journal round-trips so resumed runs
     * count pruned work identically.
     */
    bool pruned{false};
    std::string why; ///< violated constraint or evaluation failure
};

class MemoCache {
  public:
    /// @throws std::invalid_argument when capacity or shards is zero.
    MemoCache(std::size_t capacity, std::size_t shards);

    std::optional<Evaluation> lookup(const std::string& key);
    void insert(const std::string& key, Evaluation value);

    /// Counters summed across shards.
    io::LruCacheStats stats() const;
    std::size_t size() const;
    std::size_t shard_count() const { return shards_.size(); }

  private:
    std::size_t shard_of(const std::string& key) const;

    std::vector<io::LruCache<Evaluation>> shards_;
};

} // namespace lognic::dse

#endif // LOGNIC_DSE_MEMO_HPP_
