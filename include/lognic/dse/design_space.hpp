/**
 * @file
 * Discrete design spaces for what-if exploration (lognic::dse).
 *
 * A DesignSpace is a base Scenario (hardware + execution graph + traffic)
 * plus an ordered list of *knobs*, each a named axis with a finite,
 * strictly increasing list of levels. A Config picks one level per knob;
 * materialize() produces the concrete scenario the model/DES evaluates.
 *
 * Knobs are declared by string path. Hardware-catalog paths reuse
 * calib::ParameterSpace's path machinery verbatim (same grammar, same
 * validation and error messages):
 *
 *   interface_gbps / memory_gbps / line_rate_gbps
 *   ip.<name>.fixed_cost_us / byte_rate_gbps / service_scv
 *   ip.<name>.ceiling.<ceiling>.gbps
 *   graph.<g>.vertex.<vname>.overhead_us
 *
 * dse adds the software/provisioning axes the case studies explore:
 *
 *   vertex.<name>.parallelism      per-vertex engine count D_vi
 *   vertex.<name>.queue_capacity   per-vertex queue depth N_vi
 *   traffic.rate_gbps              offered ingress load
 *   placement.nf_chain             NF-chain offload placement (16 levels,
 *                                  §4.5; replaces hw + graph wholesale)
 *
 * Scenario-rebuilding knobs (placement.*) are applied before all others
 * and are mutually exclusive with knobs whose accessors were resolved
 * against base-scenario names (ip.*, graph.*, vertex.*): an accessor
 * bound to "ip.crypto" has no defined meaning on a rebuilt hardware
 * model, so the combination is rejected at declaration time.
 *
 * Every Config has a canonical key ("name=<IEEE-754 hex>;...") and a
 * 64-bit FNV-1a fingerprint of it — the memo-cache key, journal key, and
 * deterministic candidate id respectively.
 */
#ifndef LOGNIC_DSE_DESIGN_SPACE_HPP_
#define LOGNIC_DSE_DESIGN_SPACE_HPP_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lognic/dse/pareto.hpp"
#include "lognic/io/json.hpp"
#include "lognic/io/serialize.hpp"

namespace lognic::dse {

/**
 * How the incremental materializer (dse::Materializer) may re-apply one
 * knob onto an already-materialized scenario, and what cached solve state
 * the delta invalidates. kNone forces a full re-materialization — the
 * safe default for custom knobs whose apply() could touch anything.
 */
enum class PatchScope {
    kNone,         ///< not patchable; any change re-materializes
    kVertexParams, ///< writes one vertex's params (invalidates its analysis)
    kTraffic,      ///< writes the traffic profile (invalidates all analyses)
    kCatalog,      ///< writes hw catalog / graph overheads (all analyses)
};

/// One discrete axis of the space.
struct Knob {
    std::string name;
    /// Ordered levels (strictly increasing); Config stores indices into
    /// this list.
    std::vector<double> values;
    /// Contribution of this knob to the built-in "cost" objective:
    /// cost += value * cost_weight.
    double cost_weight{0.0};
    /// Applied before every other knob; replaces hw + graph (placement.*).
    bool rebuilds_scenario{false};
    /// Accessor resolved against base-scenario names (ip.*, vertex.*, ...);
    /// incompatible with rebuilds_scenario knobs.
    bool base_bound{false};
    /// In-place patch contract; every apply() is a pure assignment of the
    /// level into its own field(s), so patching a delta yields a scenario
    /// value-identical to a full materialize.
    PatchScope patch{PatchScope::kNone};
    /// For PatchScope::kVertexParams: the vertex whose params apply()
    /// writes.
    std::string patch_vertex;
    std::function<void(io::Scenario&, double)> apply;
};

class DesignSpace {
  public:
    explicit DesignSpace(io::Scenario base);

    const io::Scenario& base() const { return base_; }

    /**
     * Declare the knob at @p path (grammar in the file header) with the
     * given levels. Returns the knob's index. @throws std::invalid_argument
     * on unknown paths, duplicate names, empty/non-increasing/non-finite
     * level lists, invalid levels for the path (e.g. non-integer
     * parallelism), or an incompatible rebuild/base-bound combination.
     * For placement.nf_chain an empty @p values means all 16 placements.
     */
    std::size_t add(const std::string& path, std::vector<double> values,
                    double cost_weight = 0.0);
    /// Fully custom knob (arbitrary apply).
    std::size_t add_custom(Knob k);

    std::size_t size() const { return knobs_.size(); }
    const Knob& knob(std::size_t i) const { return knobs_.at(i); }
    std::optional<std::size_t> find(const std::string& name) const;

    /// Total number of configs (product of level counts), saturating at
    /// UINT64_MAX.
    std::uint64_t combinations() const;

    /// @throws std::invalid_argument on size mismatch or out-of-range
    /// level indices.
    void validate(const Config& c) const;

    /// Base scenario with @p c applied (rebuild knobs first).
    io::Scenario materialize(const Config& c) const;

    /// The "cost" objective: sum of value * cost_weight over knobs.
    double cost(const Config& c) const;

    /// Canonical exact key: "name=<IEEE-754 hex>;..." in knob order.
    std::string canonical_key(const Config& c) const;
    /// FNV-1a 64 of canonical_key(): the deterministic candidate id.
    std::uint64_t fingerprint(const Config& c) const;

    /// {"knob name": level value, ...} for reports.
    io::Json config_json(const Config& c) const;

  private:
    io::Scenario base_;
    std::vector<Knob> knobs_;
};

} // namespace lognic::dse

#endif // LOGNIC_DSE_DESIGN_SPACE_HPP_
