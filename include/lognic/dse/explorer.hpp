/**
 * @file
 * The design-space exploration engine (lognic::dse).
 *
 * Model-first / DES-confirm pipeline: every candidate config is scored
 * with the analytical model (microseconds per solve), and only the
 * surviving Pareto frontier is promoted to packet-level DES validation
 * via runner::Replicator, recording the model-vs-DES disagreement per
 * candidate. Three seed-deterministic strategies:
 *
 *   kExhaustive  full grid; refuses spaces above exhaustive_limit
 *   kMutation    random immigrants + local ±1-level mutation of the
 *                incumbent frontier (hill climbing; mutated neighbors
 *                revisit configs, which the memo cache absorbs)
 *   kNsga2       NSGA-II-style evolutionary search: non-dominated
 *                sorting + crowding, binary tournaments, uniform
 *                crossover, 1/n-per-knob mutation
 *
 * Determinism discipline (same as calib/check/runner): candidate batches
 * are generated serially from runner::derive_seed chains, evaluated in
 * parallel with results keyed by batch index, and reduced in index
 * order; DES seeds are pure functions of the candidate fingerprint. The
 * FrontierReport is byte-identical at any --threads value, and — through
 * the resume/record seams an ExploreJournal plugs into — byte-identical
 * across a SIGKILL/resume cycle too.
 */
#ifndef LOGNIC_DSE_EXPLORER_HPP_
#define LOGNIC_DSE_EXPLORER_HPP_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "lognic/dse/design_space.hpp"
#include "lognic/dse/memo.hpp"
#include "lognic/dse/pareto.hpp"
#include "lognic/dse/prune.hpp"
#include "lognic/io/json.hpp"
#include "lognic/obs/metrics.hpp"

namespace lognic::dse {

enum class Strategy { kExhaustive, kMutation, kNsga2 };

std::string strategy_name(Strategy s);
/// @throws std::invalid_argument on unknown names.
Strategy strategy_from_name(const std::string& name);

/**
 * One objective by built-in name; the sense is a property of the metric:
 *
 *   capacity_gbps    max   dist-weighted attainable throughput
 *   throughput_gbps  max   achieved throughput under the offered load
 *   mean_latency_us  min   dist-weighted mean latency
 *   p99_latency_us   min   worst per-class p99 (conservative tail)
 *   drop_rate        min   worst per-vertex drop probability
 *   cost             min   DesignSpace::cost (knob cost_weight sum)
 */
struct ObjectiveSpec {
    std::string name;
    Sense sense{Sense::kMinimize};
};

/// @throws std::invalid_argument on unknown metric names.
ObjectiveSpec objective_from_name(const std::string& name);

// Constraint lives in prune.hpp (the pruner narrows domains against it);
// it is re-exported here for source compatibility.

/// DES validation outcome for one frontier candidate.
struct DesValidation {
    bool ok{false};
    std::string error; ///< first replication failure when !ok
    std::uint64_t seed{0};
    std::uint64_t replications{0};
    double delivered_gbps{0.0};
    double mean_latency_us{0.0};
    double p99_latency_us{0.0};
    double drop_rate{0.0};
    /// Relative model-vs-DES disagreement: (model - des) / des.
    double throughput_disagreement{0.0};
    double p99_disagreement{0.0};
};

/// Resume seams (wired by ExploreJournal / supervise_exploration). Keys
/// are canonical config strings.
using EvalLookup = std::function<bool(const std::string& key, Evaluation&)>;
using EvalHook =
    std::function<void(const std::string& key, const Evaluation&)>;
using DesLookup =
    std::function<bool(const std::string& key, DesValidation&)>;
using DesHook =
    std::function<void(const std::string& key, const DesValidation&)>;

struct DesOptions {
    bool enabled{true};
    std::size_t replications{3};
    double duration{0.01};
    double warmup_fraction{0.2};
};

struct ExploreOptions {
    Strategy strategy{Strategy::kExhaustive};
    std::uint64_t seed{42};
    std::size_t threads{1};
    /// Model-oracle request budget for kMutation/kNsga2 (a search stops
    /// before starting a batch once requests reach it).
    std::size_t budget{256};
    std::size_t population{16};
    std::size_t generations{8};
    /// kExhaustive refuses spaces with more combinations than this.
    std::uint64_t exhaustive_limit{1u << 16};
    std::size_t cache_capacity{1u << 16};
    std::size_t cache_shards{8};
    /**
     * Feasibility pruning (prune.hpp). kOn skips the model solve for
     * configs a Pruner proves infeasible; such configs still flow through
     * the serial batch coordinator as recorded misses with a synthesized
     * infeasible Evaluation, so requests/evaluated/infeasible/cache
     * counters — and the whole FrontierReport JSON — are byte-identical
     * to a kOff run. kExplain additionally narrates the derived domains
     * through prune_log.
     */
    PruneMode prune{PruneMode::kOn};
    /// Sink for --prune=explain narration (one multi-line message).
    std::function<void(const std::string&)> prune_log{};
    DesOptions des{};
    EvalLookup resume_eval{};
    EvalHook on_eval{};
    DesLookup resume_des{};
    DesHook on_des{};
};

/// One frontier member of the report.
struct FrontierEntry {
    std::uint64_t id{0};   ///< canonical fingerprint
    std::string key;       ///< canonical config string
    Config config;
    std::vector<double> objectives;
    /// Evaluated candidates this entry dominates.
    std::uint64_t dominated{0};
    bool des_validated{false};
    DesValidation des;
};

struct FrontierReport {
    Strategy strategy{Strategy::kExhaustive};
    std::uint64_t seed{0};
    std::vector<ObjectiveSpec> objectives;
    std::uint64_t requests{0};    ///< model-oracle requests (hits + misses)
    std::uint64_t evaluated{0};   ///< unique configs scored
    std::uint64_t quarantined{0}; ///< NaN/inf or failed evaluations
    std::uint64_t infeasible{0};  ///< constraint violations
    io::LruCacheStats cache;
    /**
     * Pruning/solve accounting — deliberately NOT serialized into the
     * report JSON, which stays byte-identical across prune modes. They
     * surface through the dse.pruned.* metrics channels instead.
     */
    std::uint64_t pruned{0};        ///< infeasible proven without a solve
    std::uint64_t pruned_levels{0}; ///< knob levels dead after narrowing
    std::uint64_t solves{0};        ///< model solves actually performed
    std::vector<FrontierEntry> frontier;
    /// {"knob name": level value} per frontier entry, same order.
    std::vector<io::Json> frontier_configs;
};

/**
 * Run the exploration. @throws std::invalid_argument on an empty space,
 * empty/unknown/duplicate objectives, unknown constraint metrics, or an
 * exhaustive run over a space above exhaustive_limit. When @p metrics is
 * non-null, publishes dse.* counters (cache hits/misses/evictions,
 * evaluations, frontier size, quarantined, infeasible, DES validations).
 */
FrontierReport explore(const DesignSpace& space,
                       const std::vector<ObjectiveSpec>& objectives,
                       const std::vector<Constraint>& constraints,
                       const ExploreOptions& opts,
                       obs::MetricsRegistry* metrics = nullptr);

/// Model-oracle scoring of one config — pure in (space, config,
/// objectives, constraints); the unit the memo cache and ExploreJournal
/// key by canonical config string.
Evaluation evaluate_config(const DesignSpace& space, const Config& c,
                           const std::vector<ObjectiveSpec>& objectives,
                           const std::vector<Constraint>& constraints);

/**
 * The serial batch coordinator the strategies feed. Memo lookups,
 * journal replay decisions, prune rejections, and cache inserts all
 * happen on the caller thread in batch order, so hit/miss/eviction
 * counters are a pure function of the candidate stream; only the model
 * solves for first-seen configs fan out to the thread pool, in
 * contiguous chunks that each reuse one incremental Materializer (bit-
 * identical to fresh evaluation per config, so chunking cannot perturb
 * results). Public so tests and the benchmark can drive batches — and
 * count solves — directly; explore() remains the normal entry point.
 */
class BatchEvaluator {
  public:
    /// @p pruner may be null (no pruning); it must outlive the evaluator.
    BatchEvaluator(const DesignSpace& space,
                   const std::vector<ObjectiveSpec>& objectives,
                   const std::vector<Constraint>& constraints,
                   const ExploreOptions& opts, Pruner* pruner = nullptr);

    /// Scores per batch index; duplicates within the batch cost one solve.
    std::vector<ScoredConfig> run_batch(const std::vector<Config>& batch);

    /// Every unique scored config, in canonical key order.
    std::vector<ScoredConfig> archive_vector() const;

    std::uint64_t requests() const; ///< cache hits + misses
    io::LruCacheStats cache_stats() const;
    std::size_t archive_size() const;
    /// Model solves actually performed (misses minus replays and prunes).
    std::uint64_t solves() const { return solves_; }
    /// Misses resolved by the pruner without a solve.
    std::uint64_t pruned() const { return pruned_; }

  private:
    const DesignSpace& space_;
    const std::vector<ObjectiveSpec>& objectives_;
    const std::vector<Constraint>& constraints_;
    const ExploreOptions& opts_;
    Pruner* pruner_;
    MemoCache cache_;
    std::map<std::string, ScoredConfig> archive_; ///< canonical key order
    std::uint64_t solves_{0};
    std::uint64_t pruned_{0};
};

} // namespace lognic::dse

#endif // LOGNIC_DSE_EXPLORER_HPP_
