/**
 * @file
 * Deterministic fault schedules for the simulators and the degraded-mode
 * model.
 *
 * A FaultPlan is a list of timed fault events — engine fail-stop and
 * recovery, engine slowdown, shared-link bandwidth degradation, transient
 * drop bursts, and queue-capacity reduction — that a simulator replays
 * mid-run and the analytical model can bake into a fault-adjusted
 * parameter set (see degradation.hpp). Plans are plain data: they
 * serialize to/from JSON exactly like sweep specs, and the random
 * generator derives every sample from an explicit seed, so a faulted run
 * is as reproducible as a fault-free one.
 *
 * Targets are referenced by *name*: an execution-graph vertex (or PANIC
 * unit) name for engine/queue/burst events, or one of the reserved link
 * names "interface" / "memory" ("fabric" for the PANIC simulator) for
 * link-degradation events. Name resolution happens inside the consumer,
 * which throws on an unknown target at construction time.
 */
#ifndef LOGNIC_FAULT_FAULT_PLAN_HPP_
#define LOGNIC_FAULT_FAULT_PLAN_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "lognic/io/json.hpp"

namespace lognic::fault {

enum class FaultKind {
    kEngineFail,    ///< take `count` engines of `target` offline
    kEngineRecover, ///< bring `count` engines of `target` back
    kSlowdown,      ///< multiply `target` service times by `factor` (> 1)
    kLinkDegrade,   ///< multiply a shared link's bandwidth by `factor` (< 1)
    kDropBurst,     ///< drop arrivals at `target` w.p. `probability`
    kQueueCapacity, ///< override `target` queue capacity with `capacity`
};

const char* to_string(FaultKind kind);
/// @throws std::invalid_argument on an unknown kind name.
FaultKind fault_kind_from_string(const std::string& name);

/// What happens to requests that are in service when their engine fails.
enum class InServicePolicy {
    kRequeue, ///< the request re-enters the head of its queue (default)
    kDrop,    ///< the request is lost (counted as an engine_fail drop)
};

const char* to_string(InServicePolicy policy);
InServicePolicy in_service_policy_from_string(const std::string& name);

/**
 * One timed fault. Only the fields its kind reads are meaningful; the
 * rest keep their defaults (validate() enforces the per-kind rules).
 * `duration > 0` schedules the automatic inverse event at `at + duration`
 * (recover / speed back up / restore bandwidth / end the burst / restore
 * capacity); `duration == 0` leaves the fault in force until a later
 * event counters it or the run ends.
 */
struct FaultEvent {
    double at{0.0};            ///< simulated seconds from run start
    FaultKind kind{FaultKind::kEngineFail};
    std::string target;        ///< vertex/unit name or reserved link name
    std::uint32_t count{1};    ///< engines failed/recovered
    double factor{1.0};        ///< slowdown (> 1) or link multiplier (0, 1)
    double duration{0.0};      ///< 0 = until countered / end of run
    double probability{1.0};   ///< drop-burst drop probability, in (0, 1]
    std::uint32_t capacity{1}; ///< queue-capacity override (>= 1)
};

struct FaultPlan {
    std::vector<FaultEvent> events;
    /// Applies to every engine-fail event in the plan.
    InServicePolicy in_service_policy{InServicePolicy::kRequeue};

    bool empty() const { return events.empty(); }

    /// Events ordered by (time, insertion order) — the replay order.
    std::vector<FaultEvent> sorted() const;

    /**
     * Check per-kind parameter ranges (times finite and >= 0, slowdown
     * factor >= 1, degrade factor in (0, 1], probability in (0, 1], ...).
     * @throws std::invalid_argument naming the offending event index,
     * kind, and target.
     */
    void validate() const;
};

// --- seeded random plans ------------------------------------------------------

/**
 * Knobs for random_fault_plan. Failures alternate with repairs per
 * target: exponential time-to-failure with mean @p mtbf, exponential
 * repair time with mean @p mttr, clipped to @p horizon.
 */
struct RandomFaultConfig {
    double horizon{0.05};        ///< generate events in [0, horizon)
    double mtbf{0.02};           ///< mean seconds between failures
    double mttr{0.005};          ///< mean seconds to repair
    std::uint32_t max_engines_per_fault{1}; ///< engines lost per failure
};

/**
 * A deterministic MTBF/MTTR fail-stop/recover timeline over @p targets.
 * Identical (seed, targets, config) inputs yield identical plans on every
 * platform.
 */
FaultPlan random_fault_plan(std::uint64_t seed,
                            const std::vector<std::string>& targets,
                            const RandomFaultConfig& config = {});

// --- JSON ---------------------------------------------------------------------

io::Json to_json(const FaultEvent& event);
io::Json to_json(const FaultPlan& plan);

/**
 * Parse {"faults": [...], "in_service_policy": "requeue"|"drop"} (or a
 * bare event array). The result is validate()d.
 * @throws std::runtime_error on malformed documents.
 */
FaultPlan fault_plan_from_json(const io::Json& doc);

/// A small commented-by-construction sample plan (for `lognic example`).
std::string sample_fault_plan();

} // namespace lognic::fault

#endif // LOGNIC_FAULT_FAULT_PLAN_HPP_
