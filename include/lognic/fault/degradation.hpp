/**
 * @file
 * Degraded-mode evaluation of the analytical LogNIC model.
 *
 * Two entry points:
 *
 *  - apply_faults_at(): replay a FaultPlan up to an instant t and bake the
 *    surviving state into a fault-adjusted (hardware, graph) pair — fewer
 *    engines (reduced D_vi), slower service (acceleration / factor),
 *    reduced queue capacities, scaled shared-link bandwidths. The regular
 *    Model then evaluates the degraded operating point with no special
 *    cases.
 *
 *  - degradation_curve(): sweep "fraction of one vertex's engines lost"
 *    from 0 to max_fraction and report the model's capacity / achieved
 *    throughput / mean latency at each step — the graceful-degradation
 *    curve operators read to see whether a device sheds load
 *    proportionally or collapses. Validated against the faulted simulator
 *    in tests/fault/degradation_test.cpp.
 */
#ifndef LOGNIC_FAULT_DEGRADATION_HPP_
#define LOGNIC_FAULT_DEGRADATION_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/fault/fault_plan.hpp"
#include "lognic/io/json.hpp"

namespace lognic::fault {

/// One step of a graceful-degradation curve.
struct DegradationPoint {
    std::uint32_t engines_failed{0};
    std::uint32_t engines_left{0};
    double fraction_failed{0.0};
    Bandwidth capacity{Bandwidth::from_gbps(0.0)};
    Bandwidth achieved{Bandwidth::from_gbps(0.0)};
    Seconds mean_latency{0.0};
};

struct DegradationCurve {
    std::string vertex;
    std::uint32_t base_engines{0};
    std::vector<DegradationPoint> points;
};

/**
 * Model throughput/latency vs. fraction of @p vertex's engines lost, one
 * point per failed engine up to floor(base * max_fraction). The fully-
 * failed point (zero engines left) reports zero capacity/throughput and
 * is only emitted when max_fraction reaches 1.
 *
 * @throws std::invalid_argument when @p vertex is not an IP vertex of
 * @p graph, or @p max_fraction is outside (0, 1].
 */
DegradationCurve degradation_curve(const core::HardwareModel& hw,
                                   const core::ExecutionGraph& graph,
                                   const core::TrafficProfile& traffic,
                                   const std::string& vertex,
                                   double max_fraction = 1.0);

io::Json to_json(const DegradationCurve& curve);

/// A fault-adjusted scenario (apply_faults_at output).
struct FaultedScenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
};

/**
 * Replay @p plan's events with at <= @p t (durations honored) and return
 * copies of @p hw / @p graph with the surviving fault state baked into
 * the Table-2 parameters. A fully-failed vertex keeps one engine — the
 * analytical queueing model cannot express a zero-server vertex — so
 * callers that need the all-engines-lost point should special-case it
 * (degradation_curve does).
 *
 * Unknown targets throw std::invalid_argument naming the target.
 */
FaultedScenario apply_faults_at(const FaultPlan& plan, double t,
                                const core::HardwareModel& hw,
                                const core::ExecutionGraph& graph);

} // namespace lognic::fault

#endif // LOGNIC_FAULT_DEGRADATION_HPP_
