/**
 * @file
 * The paper's SSD parameter-calibration pipeline (S4.3, S4.7): characterize
 * an opaque storage IP by sweeping load, then curve-fit a small queueing
 * model to the observed (rate, latency) samples, and emit a LogNIC IpSpec
 * with the extracted parameters.
 *
 * The fitted predictor is an M/M/c service station behind a fixed
 * pipeline delay:
 *   latency(lambda) = base + Wq(lambda, 1/s, c),   capacity = c / s,
 * with free parameters s (per-I/O channel occupancy), c (effective internal
 * parallelism), and base (low-load command latency). Levenberg-Marquardt
 * does the fitting.
 */
#ifndef LOGNIC_SSD_CALIBRATION_HPP_
#define LOGNIC_SSD_CALIBRATION_HPP_

#include <vector>

#include "lognic/core/hardware_model.hpp"
#include "lognic/ssd/ssd_model.hpp"

namespace lognic::ssd {

/// Parameters extracted from a characterization.
struct CalibratedSsd {
    Seconds service_time{0.0};     ///< fitted per-I/O channel occupancy
    std::uint32_t parallelism{1};  ///< fitted internal parallelism (rounded)
    Seconds base_latency{0.0};     ///< fitted low-load command latency
    Bandwidth capacity{Bandwidth{0.0}}; ///< c / s in bytes
    double fit_rmse{0.0};          ///< root-mean-square latency residual (s)

    /// Predicted mean latency at an offered I/O rate.
    Seconds predict_latency(OpsRate offered) const;

    /**
     * Pipeline latency beyond the occupancy itself; in a LogNIC execution
     * graph this becomes the SSD vertex's computation-transfer overhead
     * O_i (the model's C_i covers the occupancy part).
     */
    Seconds extra_latency() const;

    /**
     * Emit a LogNIC IP spec for the calibrated device: `parallelism`
     * engines whose per-request time at @p block equals the fitted service
     * time.
     */
    core::IpSpec to_ip_spec(const std::string& name, Bytes block,
                            std::uint32_t queue_capacity = 64) const;
};

/**
 * Fit the predictor to characterization samples.
 *
 * @param samples Open-loop (offered rate, latency) characterization points.
 * @param block The workload's block size (converts rates to bandwidth).
 * @throws std::invalid_argument with fewer than 3 samples.
 */
CalibratedSsd calibrate(const std::vector<SsdGroundTruth::Sample>& samples,
                        Bytes block);

} // namespace lognic::ssd

#endif // LOGNIC_SSD_CALIBRATION_HPP_
