/**
 * @file
 * A synthetic NVMe SSD with known internals — the stand-in for the Broadcom
 * Stingray JBOF's physical drive in case study #2 (S4.3).
 *
 * The paper treats the SSD as an opaque IP: its internals (command queues,
 * write cache, garbage collection) are hidden, so LogNIC parameters are
 * obtained by characterizing latency/throughput while sweeping load and
 * then curve fitting (S4.7). We reproduce that methodology against this
 * ground-truth device: it can be characterized exactly like real hardware,
 * and it exhibits the one behaviour the paper calls out as unmodelable —
 * garbage-collection interference under mixed random read/write traffic
 * (the ~14.6% Figure 7 gap).
 *
 * Two distinct per-I/O quantities (deliberately not conflated):
 *  - *channel occupancy*: how long one of the `parallelism` internal
 *    channels is busy per I/O. Capacity = parallelism / occupancy.
 *    Fragmented random writes pay a write-amplification factor here.
 *  - *base latency*: the command round-trip observed at low load (flash
 *    read access, or the fast write-cache acknowledgement). Under load the
 *    observed latency is base + M/M/c queueing over the channels.
 *
 * In *mixed* workloads the GC engine overlaps relocation work with
 * read-induced channel idle gaps, so the effective write amplification is
 * lower than the pure-write calibration point — which is exactly why a
 * model calibrated on pure workloads underestimates mixed performance.
 */
#ifndef LOGNIC_SSD_SSD_MODEL_HPP_
#define LOGNIC_SSD_SSD_MODEL_HPP_

#include <vector>

#include "lognic/core/units.hpp"
#include "lognic/traffic/io_workload.hpp"

namespace lognic::ssd {

struct SsdSpec {
    /// Per-channel streaming bandwidth.
    Bandwidth channel_read_bw{Bandwidth::from_gigabytes_per_sec(0.22)};
    Bandwidth channel_write_bw{Bandwidth::from_gigabytes_per_sec(0.22)};
    /// Fixed per-I/O channel occupancy (flash access / program).
    Seconds read_fixed{Seconds::from_micros(6.0)};
    Seconds write_fixed{Seconds::from_micros(12.0)};
    /// Extra fixed occupancy of random (vs sequential) addressing.
    Seconds random_penalty{Seconds::from_micros(1.0)};
    /// Independent internal channels.
    std::uint32_t parallelism{14};
    /// Fixed pipeline latency of a command beyond its data transfer
    /// (flash array access for reads; cache admission for writes). The
    /// low-load command latency is this plus the block transfer time,
    /// floored at the channel occupancy.
    Seconds read_latency_fixed{Seconds::from_micros(59.0)};
    Seconds write_latency_fixed{Seconds::from_micros(10.0)};
    /// Write amplification on a fragmented (preconditioned) drive.
    double fragmented_waf{2.1};
    /// Peak GC/read overlap benefit in mixed workloads (0 = none).
    double gc_overlap_gain{0.85};
};

class SsdGroundTruth {
  public:
    explicit SsdGroundTruth(SsdSpec spec = {});

    const SsdSpec& spec() const { return spec_; }

    /**
     * Mean channel occupancy per I/O of @p workload, including the
     * steady-state GC share. Capacity = parallelism / occupancy.
     */
    Seconds mean_occupancy(const traffic::IoWorkload& workload) const;

    /// Mean low-load command latency of @p workload.
    Seconds base_latency(const traffic::IoWorkload& workload) const;

    /// Steady-state bandwidth capacity for @p workload.
    Bandwidth capacity(const traffic::IoWorkload& workload) const;

    /// One open-loop characterization point.
    struct Sample {
        OpsRate offered{OpsRate{0.0}};
        OpsRate achieved{OpsRate{0.0}};
        Seconds latency{0.0};
    };

    /**
     * Open-loop characterization sweep: offer @p points rates from ~5% to
     * @p max_load_fraction of capacity and report achieved rate and mean
     * latency (base latency plus M/M/c queueing over the channels).
     */
    std::vector<Sample> characterize(const traffic::IoWorkload& workload,
                                     std::size_t points = 12,
                                     double max_load_fraction = 0.95) const;

  private:
    /// Per-I/O occupancy without GC interaction.
    Seconds pure_occupancy(const traffic::IoWorkload& w, bool read) const;

    SsdSpec spec_;
};

} // namespace lognic::ssd

#endif // LOGNIC_SSD_SSD_MODEL_HPP_
