/**
 * @file
 * Parameter spaces: expose a chosen subset of a hardware catalog (and,
 * optionally, execution-graph software parameters) as bounded free
 * variables for the calibrator.
 *
 * Table 2's device-side parameters (BW_INTF, BW_MEM, line rate, per-IP
 * service models and feed ceilings) and the per-vertex computation
 * overheads O_i are addressed by string paths, so calibration problems
 * travel as JSON. Paths:
 *
 *   interface_gbps                         BW_INTF
 *   memory_gbps                            BW_MEM
 *   line_rate_gbps                         ingress/egress engine rate
 *   ip.<name>.fixed_cost_us                engine per-request fixed cost
 *   ip.<name>.byte_rate_gbps               engine streaming rate
 *   ip.<name>.ceiling.<ceiling>.gbps       one named data-feed ceiling
 *   ip.<name>.service_scv                  engine service-time SCV
 *   graph.<g>.vertex.<vname>.overhead_us   O_i of one vertex in graph g
 *
 * Each parameter carries box bounds; unspecified bounds default to
 * [value/8, value*8] around the base catalog (a calibration is a
 * refinement, not a blind search).
 */
#ifndef LOGNIC_CALIB_PARAMETER_SPACE_HPP_
#define LOGNIC_CALIB_PARAMETER_SPACE_HPP_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/solver/objective.hpp"

namespace lognic::calib {

/**
 * A candidate device configuration: the hardware catalog plus the
 * program(s) whose software parameters may also be fitted. Observations
 * reference graphs by index.
 */
struct Candidate {
    core::HardwareModel hw;
    std::vector<core::ExecutionGraph> graphs;
};

/// One free variable of a calibration.
struct Parameter {
    std::string name;
    double lower{0.0};
    double upper{0.0};
    std::function<double(const Candidate&)> get;
    std::function<void(Candidate&, double)> set;
};

class ParameterSpace {
  public:
    explicit ParameterSpace(Candidate base);

    const Candidate& base() const { return base_; }

    /**
     * Expose the field at @p path (grammar in the file header) with
     * default bounds [base/8, base*8]. Returns the parameter's index.
     * @throws std::invalid_argument on unknown paths, duplicate names, or
     * a base value of zero (default bounds would collapse).
     */
    std::size_t add(const std::string& path);
    /// Same, with explicit bounds (lower < upper, lower >= 0 enforced for
    /// the built-in physical quantities).
    std::size_t add(const std::string& path, double lower, double upper);
    /// Fully custom parameter (arbitrary accessors).
    std::size_t add_custom(Parameter p);

    std::size_t size() const { return params_.size(); }
    const Parameter& parameter(std::size_t i) const
    {
        return params_.at(i);
    }
    std::optional<std::size_t> find(const std::string& name) const;

    /// Current base-catalog values, in parameter order.
    solver::Vector initial() const;
    solver::Bounds bounds() const;
    /**
     * Typical magnitude per dimension for scale-aware finite-difference
     * steps: max(|initial|, (upper - lower) / 1000).
     */
    solver::Vector scales() const;

    /// Base candidate with the parameter vector applied.
    /// @throws std::invalid_argument on a size mismatch.
    Candidate apply(const solver::Vector& x) const;
    /// Read the parameter vector back out of a candidate.
    solver::Vector extract(const Candidate& c) const;

  private:
    Candidate base_;
    std::vector<Parameter> params_;
};

} // namespace lognic::calib

#endif // LOGNIC_CALIB_PARAMETER_SPACE_HPP_
