/**
 * @file
 * Calibration datasets: the measured (traffic profile, device config) →
 * (throughput, latency) observation points the paper fits Table-2
 * parameters against (S4.3, S4.7).
 *
 * A Dataset is the ground truth side of a calibration problem. It can be
 * loaded from JSON (real testbed measurements) or generated synthetically
 * by running the packet-level DES simulator over a traffic grid — the
 * repository's stand-in for a physical SmartNIC. Generation fans out
 * across the lognic::runner thread pool with per-point derived seeds, so
 * a generated dataset is bit-identical for any thread count.
 */
#ifndef LOGNIC_CALIB_DATASET_HPP_
#define LOGNIC_CALIB_DATASET_HPP_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/io/json.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::calib {

/// One measured operating point.
struct Observation {
    std::string label;
    core::TrafficProfile traffic;
    /// Which program produced this point (index into the calibration
    /// problem's graph list) — per-workload calibration needs per-graph
    /// observations, single-program calibrations leave it 0.
    std::size_t graph_index{0};
    Bandwidth throughput{Bandwidth{0.0}}; ///< achieved egress bandwidth
    Seconds mean_latency{0.0};
    Seconds p99_latency{0.0}; ///< 0 = not measured
    double weight{1.0};       ///< relative weight in the loss
};

io::Json to_json(const Observation& obs);
/// @throws std::runtime_error on malformed documents.
Observation observation_from_json(const io::Json& j);

/// An ordered collection of observations with deterministic splitting.
class Dataset {
  public:
    /// Append an observation; returns its index.
    std::size_t add(Observation obs);

    std::size_t size() const { return observations_.size(); }
    bool empty() const { return observations_.empty(); }
    const Observation& observation(std::size_t i) const
    {
        return observations_.at(i);
    }
    const std::vector<Observation>& observations() const
    {
        return observations_;
    }

    /**
     * Deterministic train/holdout split: each observation is assigned by
     * a SplitMix64 hash of (seed, index), so the split depends only on
     * (seed, size) — never on thread count or insertion history. At least
     * one observation stays in train; a fraction of 0 keeps everything
     * in train.
     *
     * @param holdout_fraction in [0, 1).
     * @throws std::invalid_argument on an out-of-range fraction.
     */
    std::pair<Dataset, Dataset> split(double holdout_fraction,
                                      std::uint64_t seed) const;

    /**
     * Deterministic k folds for cross-validation: a seeded pseudo-random
     * permutation of the indices dealt round-robin into k validation
     * sets. Returns (train, validation) pairs, one per fold.
     *
     * @throws std::invalid_argument when k < 2 or k > size().
     */
    std::vector<std::pair<Dataset, Dataset>> k_folds(std::size_t k,
                                                     std::uint64_t seed) const;

  private:
    std::vector<Observation> observations_;
};

io::Json to_json(const Dataset& data);
Dataset dataset_from_json(const io::Json& j);

/**
 * Grid spec for DES-generated synthetic ground truth. The grid is the
 * cartesian product rates x packet sizes (an empty axis keeps the base
 * profile's value, mirroring runner sweep specs).
 */
struct GenerationSpec {
    std::vector<double> rates_gbps;
    std::vector<double> packet_sizes_bytes;
    std::size_t replications{1};
    std::uint64_t root_seed{42};
    std::size_t threads{1};
    sim::SimOptions sim{}; ///< per-run options; the seed field is ignored
};

/**
 * Run the DES simulator over the spec's grid and collect one observation
 * per point (replication-averaged). Seeds derive from
 * (root_seed, point index, replication index); results are bit-identical
 * across thread counts.
 *
 * @throws std::invalid_argument on an empty effective grid or zero
 * replications.
 */
Dataset generate_dataset(const core::HardwareModel& hw,
                         const core::ExecutionGraph& graph,
                         const core::TrafficProfile& base,
                         const GenerationSpec& spec);

} // namespace lognic::calib

#endif // LOGNIC_CALIB_DATASET_HPP_
