/**
 * @file
 * JSON calibration specs: the `lognic calibrate` document format.
 *
 *   {
 *     "scenario": { ...hardware + graph + traffic... },
 *     "calib": {
 *       "parameters": [
 *         "ip.md5.fixed_cost_us",                      // default bounds
 *         {"name": "memory_gbps", "lower": 10, "upper": 100}
 *       ],
 *       "loss": {"throughput_weight": 1.0, "latency_weight": 0.25,
 *                "p99_weight": 0, "kind": "relative", "huber_delta": 0},
 *       "backend": "least_squares",        // nelder_mead | annealing
 *       "starts": 4, "threads": 1, "seed": 42,
 *       "max_iterations": 200, "cache_capacity": 4096,
 *       "holdout_fraction": 0.25, "k_folds": 0,
 *       "dataset": [ ...observation documents... ],    // measured, or:
 *       "generate": {"rates_gbps": [...], "packet_sizes": [...],
 *                    "replications": 1, "duration": 0.004, "seed": 42}
 *     }
 *   }
 *
 * Exactly one of "dataset" / "generate" must be present: load measured
 * points, or synthesize ground truth by simulating the scenario itself.
 */
#ifndef LOGNIC_CALIB_SPEC_HPP_
#define LOGNIC_CALIB_SPEC_HPP_

#include <string>

#include "lognic/calib/calibrator.hpp"
#include "lognic/io/serialize.hpp"

namespace lognic::calib {

/// A parsed spec, ready to run.
struct CalibSpec {
    ParameterSpace space;
    Dataset data;
    CalibratorOptions options;
};

/**
 * Parse a calibration document. When the spec carries "generate", the DES
 * runs happen here (threaded per the spec's "threads").
 * @throws std::runtime_error on malformed documents.
 */
CalibSpec calib_spec_from_json(const io::Json& doc);

/// A small, fast-to-run sample spec (for `lognic example calib`).
std::string sample_calib_spec(const io::Scenario& base);

} // namespace lognic::calib

#endif // LOGNIC_CALIB_SPEC_HPP_
