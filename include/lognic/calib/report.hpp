/**
 * @file
 * CalibrationReport: everything a calibration run produced — the fitted
 * catalog, per-observation residuals, train/holdout goodness-of-fit,
 * per-start and per-fold outcomes, cache effectiveness, and
 * identifiability warnings for parameters the data cannot pin down.
 *
 * Reports round-trip through JSON (the `lognic calibrate` artifact format
 * CI schema-checks) and render as a human-readable summary.
 */
#ifndef LOGNIC_CALIB_REPORT_HPP_
#define LOGNIC_CALIB_REPORT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "lognic/io/json.hpp"
#include "lognic/solver/objective.hpp"

namespace lognic::calib {

/// Observed-vs-predicted record for one observation at the fitted point.
struct ResidualRecord {
    std::string label;
    bool holdout{false};
    double observed_throughput_gbps{0.0};
    double predicted_throughput_gbps{0.0};
    double throughput_rel_error{0.0}; ///< signed (pred - obs) / obs
    double observed_latency_us{0.0};
    double predicted_latency_us{0.0};
    double latency_rel_error{0.0};
};

/// A parameter the data cannot pin down, and why.
struct IdentifiabilityWarning {
    std::string parameter;
    /// "insensitive" (residuals barely move with the parameter),
    /// "collinear" (indistinguishable from another parameter), or
    /// "at_bound" (the fit pushed it onto a box face).
    std::string kind;
    std::string detail;
    double metric{0.0}; ///< sensitivity norm / |cosine| / bound value
};

/// Outcome of one multi-start fit attempt.
struct StartOutcome {
    std::size_t index{0};
    std::uint64_t seed{0};
    double initial_loss{0.0};
    double final_loss{0.0};
    bool converged{false};
    bool failed{false};      ///< the solve threw; error holds what()
    std::string message;     ///< termination reason or error text
    std::size_t iterations{0};
    std::uint64_t model_solves{0}; ///< uncached residual evaluations
    std::uint64_t cache_hits{0};
    std::uint64_t cache_misses{0};
};

/// Outcome of one cross-validation fold.
struct FoldOutcome {
    std::size_t fold{0};
    double train_error{0.0};      ///< mean |rel throughput error|, train
    double validation_error{0.0}; ///< same on the held-out fold
    bool failed{false};
    std::string message;
};

/// Mean absolute relative errors of a fitted catalog on one subset.
struct FitError {
    std::size_t observations{0};
    double throughput{0.0}; ///< mean |(pred - obs) / obs|
    double latency{0.0};
    double worst_throughput{0.0}; ///< max |(pred - obs) / obs|
};

struct CalibrationReport {
    std::string device;  ///< hardware model name
    std::string backend; ///< solver backend used
    std::uint64_t seed{0};
    std::size_t starts{0};

    std::vector<std::string> parameter_names;
    solver::Vector initial;       ///< base-catalog values
    solver::Vector fitted;        ///< calibrated values
    solver::Vector lower, upper;  ///< the box searched

    double initial_loss{0.0};
    double best_loss{0.0};
    bool converged{false};
    std::string message;

    FitError train_error;
    FitError holdout_error; ///< observations == 0 when no holdout

    std::vector<StartOutcome> start_outcomes;
    std::vector<FoldOutcome> folds;
    std::vector<ResidualRecord> residuals;
    std::vector<IdentifiabilityWarning> warnings;

    /// Aggregate cache effectiveness across starts (deterministic: each
    /// start owns its cache).
    std::uint64_t cache_hits{0};
    std::uint64_t cache_misses{0};
    std::uint64_t model_solves{0};

    /// Running-best loss after each model solve of the winning start.
    std::vector<double> convergence;

    /// The fitted hardware catalog, serialized (io::to_json form); callers
    /// reload it with io::hardware_from_json.
    io::Json fitted_hardware;
};

io::Json to_json(const CalibrationReport& report);
/// @throws std::runtime_error on malformed documents.
CalibrationReport report_from_json(const io::Json& j);

/// Human-readable multi-line summary.
std::string render(const CalibrationReport& report);

} // namespace lognic::calib

#endif // LOGNIC_CALIB_REPORT_HPP_
