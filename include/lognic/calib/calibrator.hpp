/**
 * @file
 * The calibrator: drive a solver backend over a (parameter space, dataset,
 * loss) problem with multi-start, bounds, per-start LRU memoization, and
 * optional k-fold cross-validation, and emit a CalibrationReport.
 *
 * Concurrency contract (inherited from lognic::runner): every start and
 * every fold derives its seed from the root seed and its index, owns all
 * of its state (including its eval cache), and results are reduced by
 * index — so a calibration is bit-identical for any thread count. A start
 * whose solve throws is captured as a failed StartOutcome (run_guarded
 * semantics); the calibration only fails if *every* start fails.
 *
 * Two layers:
 *  - fit_residuals(): the generic bounded multi-start engine over a raw
 *    residual function (what ssd::calibrate delegates to);
 *  - Calibrator: the model-aware layer that builds residuals from a
 *    ParameterSpace + Dataset + LossOptions, adds holdout/CV splits,
 *    identifiability analysis, and report generation.
 */
#ifndef LOGNIC_CALIB_CALIBRATOR_HPP_
#define LOGNIC_CALIB_CALIBRATOR_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lognic/calib/cache.hpp"
#include "lognic/calib/dataset.hpp"
#include "lognic/calib/loss.hpp"
#include "lognic/calib/parameter_space.hpp"
#include "lognic/calib/report.hpp"
#include "lognic/obs/metrics.hpp"

namespace lognic::calib {

/// Solver backend driven by the calibrator.
enum class Backend {
    kLeastSquares, ///< Levenberg-Marquardt on the residual vector
    kNelderMead,   ///< downhill simplex on 0.5*||r||^2
    kAnnealing,    ///< simulated annealing on a discretized box + polish
};

const char* to_string(Backend backend);
/// @throws std::invalid_argument on unknown names.
Backend backend_from_string(const std::string& name);

// --- the generic fit engine ---------------------------------------------------

/// A raw bounded residual-fitting problem.
struct FitProblem {
    solver::VectorFn residuals;
    solver::Vector x0;
    solver::Bounds bounds{};
    /// Typical per-dimension magnitudes for scale-aware FD steps and
    /// random-start spreads; empty derives them from x0 and the bounds.
    solver::Vector scales{};
};

/**
 * Everything one start produced, in the form a checkpoint journal stores
 * and a resumed fit replays: the public outcome plus the solution vector,
 * residuals, and convergence trace the engine needs to pick a winner and
 * build the report. A replayed start is indistinguishable from a re-run
 * one — starts are pure in their index.
 */
struct StartRecord {
    StartOutcome outcome;
    solver::Vector x;
    solver::Vector residuals;
    std::vector<double> convergence;
};

/// Resume source: true + filled record when start @p k is journaled.
using StartLookup = std::function<bool(std::size_t k, StartRecord& out)>;

/// Completion sink: fired once per freshly-computed start (failed ones
/// included), from the worker thread that ran it.
using StartHook = std::function<void(std::size_t k, const StartRecord&)>;

struct FitOptions {
    Backend backend{Backend::kLeastSquares};
    std::size_t starts{4};
    std::size_t threads{1};
    std::uint64_t seed{42};
    std::size_t cache_capacity{4096};
    std::size_t max_iterations{200};
    /// Checkpoint/resume seams (see lognic::ckpt). Inner fits (k-fold
    /// cross-validation) always run with cleared hooks: only top-level
    /// starts are checkpointable units.
    StartLookup resume_lookup{};
    StartHook on_start_complete{};
};

/// Engine outcome: the incumbent plus per-start records.
struct FitOutcome {
    solver::Vector x;
    double loss{0.0};
    bool converged{false};
    std::string message;
    std::vector<StartOutcome> starts;
    std::vector<double> convergence; ///< winning start's trace
    solver::Vector residuals;        ///< residual vector at x

    std::uint64_t cache_hits() const;
    std::uint64_t cache_misses() const;
    std::uint64_t model_solves() const;
};

/**
 * Multi-start bounded fit. Start 0 begins at problem.x0; start k > 0 at a
 * deterministic pseudo-random point in the box (seeded from
 * derive_seed(options.seed, k)). Starts fan across options.threads
 * runner threads; each owns a private eval cache. The best start wins
 * (ties broken by lower index).
 *
 * @throws std::invalid_argument on an empty problem or zero starts;
 * @throws std::runtime_error when every start fails.
 */
FitOutcome fit_residuals(const FitProblem& problem,
                         const FitOptions& options);

// --- the model-aware calibrator -----------------------------------------------

struct CalibratorOptions {
    FitOptions fit{};
    LossOptions loss{};
    /// Fraction of the dataset held out for goodness-of-fit validation
    /// (deterministic split keyed on fit.seed). 0 = no holdout.
    double holdout_fraction{0.0};
    /// k-fold cross-validation over the training set (k >= 2 enables it).
    std::size_t k_folds{0};
};

class Calibrator {
  public:
    /**
     * @param space The free parameters over a base candidate.
     * @param data Ground-truth observations.
     * @throws std::invalid_argument on an empty space or dataset, or when
     * an observation references a missing graph.
     */
    Calibrator(ParameterSpace space, Dataset data, CalibratorOptions opts);

    const ParameterSpace& space() const { return space_; }
    const Dataset& data() const { return data_; }

    /**
     * Run the calibration. When @p metrics is non-null, publishes
     * convergence and goodness-of-fit series into it
     * ("calib.*" counters/gauges plus a residual histogram).
     */
    CalibrationReport fit(obs::MetricsRegistry* metrics = nullptr) const;

  private:
    ParameterSpace space_;
    Dataset data_;
    CalibratorOptions opts_;
};

} // namespace lognic::calib

#endif // LOGNIC_CALIB_CALIBRATOR_HPP_
