/**
 * @file
 * Composable calibration losses: how far a candidate catalog's analytical
 * predictions sit from a dataset's measurements.
 *
 * The loss is expressed as a residual vector (one block per observation)
 * so that every solver backend can consume it: Levenberg-Marquardt takes
 * the residuals directly, the scalar backends minimize 0.5*||r||^2.
 * Components (throughput, mean latency, p99 latency) are weighted and may
 * be relative (dimensionless — the default, it balances Gbps against
 * microseconds) or absolute. An optional pseudo-Huber transform caps the
 * influence of outlier observations while staying smooth.
 */
#ifndef LOGNIC_CALIB_LOSS_HPP_
#define LOGNIC_CALIB_LOSS_HPP_

#include "lognic/calib/dataset.hpp"
#include "lognic/calib/parameter_space.hpp"
#include "lognic/core/model.hpp"
#include "lognic/io/json.hpp"
#include "lognic/solver/objective.hpp"

namespace lognic::calib {

/// How a residual compares prediction against observation.
enum class ResidualKind {
    kRelative, ///< (pred - obs) / obs  (obs must be nonzero)
    kAbsolute, ///< pred - obs, in the quantity's canonical unit
};

const char* to_string(ResidualKind kind);
ResidualKind residual_kind_from_string(const std::string& name);

struct LossOptions {
    double throughput_weight{1.0};
    double latency_weight{1.0};
    double p99_weight{0.0}; ///< 0 skips the p99 component entirely
    ResidualKind kind{ResidualKind::kRelative};
    /**
     * Pseudo-Huber scale delta: residuals far beyond delta contribute
     * linearly instead of quadratically. 0 disables the transform.
     */
    double huber_delta{0.0};
};

io::Json to_json(const LossOptions& loss);
LossOptions loss_from_json(const io::Json& j);

/// Residual components produced per observation under @p loss.
std::size_t components_per_observation(const LossOptions& loss);

/// Signed pseudo-Huber transform of one residual (identity when
/// delta == 0): sign(r) * delta * sqrt(2*(sqrt(1 + (r/delta)^2) - 1)).
double huberize(double r, double delta);

/// Analytical-model predictions for one observation.
struct Prediction {
    Bandwidth throughput{Bandwidth{0.0}};
    Seconds mean_latency{0.0};
    Seconds p99_latency{0.0};
};

/**
 * Run the analytical model for @p obs against a candidate catalog.
 * @throws std::out_of_range when obs.graph_index has no graph.
 */
Prediction predict(const Candidate& candidate, const Observation& obs);

/// Append the observation's weighted residual block to @p out.
void append_residuals(const LossOptions& loss, const Observation& obs,
                      const Prediction& pred, solver::Vector& out);

/**
 * Build the full residual function of a calibration problem:
 * r(x) = residuals of space.apply(x) against every observation of
 * @p data, in dataset order. The returned callable owns copies of its
 * inputs and is safe to evaluate from worker threads (each evaluation
 * builds its own candidate).
 */
solver::VectorFn make_residual_fn(const ParameterSpace& space,
                                  const Dataset& data,
                                  const LossOptions& loss);

/// 0.5 * ||r||^2 — the scalar objective every backend minimizes.
double total_loss(const solver::Vector& residuals);

} // namespace lognic::calib

#endif // LOGNIC_CALIB_LOSS_HPP_
