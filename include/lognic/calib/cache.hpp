/**
 * @file
 * LRU memoization for loss evaluations.
 *
 * Every loss evaluation is a full analytical-model solve per observation,
 * and the solvers revisit points: multi-start fits re-probe shared
 * corners after bound clamping, the calibrator re-evaluates the incumbent
 * for reporting, and finite-difference probes repeat across backtracking.
 * An EvalCache memoizes residual vectors keyed on the *bit pattern* of
 * the parameter vector — exact, no tolerance games — with LRU eviction.
 * The eviction/counter machinery itself lives in the shared
 * io::LruCache backend (also used by the dse memo cache); EvalCache is
 * the parameter-vector-keyed adapter with unchanged semantics.
 *
 * Caches are deliberately not thread-safe: the calibrator gives each
 * multi-start worker its own cache so hit/miss counts (and therefore
 * reports) stay bit-identical for any thread count.
 */
#ifndef LOGNIC_CALIB_CACHE_HPP_
#define LOGNIC_CALIB_CACHE_HPP_

#include <cstdint>
#include <optional>
#include <string>

#include "lognic/io/lru_cache.hpp"
#include "lognic/solver/objective.hpp"

namespace lognic::calib {

/// Bit-exact string key of a parameter vector.
std::string cache_key(const solver::Vector& x);

class EvalCache {
  public:
    using Stats = io::LruCacheStats;

    /// @throws std::invalid_argument when capacity is zero.
    explicit EvalCache(std::size_t capacity);

    /// Cached value for @p x, refreshing its recency; nullopt on a miss.
    std::optional<solver::Vector> lookup(const solver::Vector& x);
    /// Insert (no-op if present), evicting the least-recent entry at
    /// capacity.
    void insert(const solver::Vector& x, solver::Vector value);

    const Stats& stats() const { return cache_.stats(); }
    std::size_t size() const { return cache_.size(); }
    std::size_t capacity() const { return cache_.capacity(); }

  private:
    io::LruCache<solver::Vector> cache_;
};

/**
 * A residual function wrapped with memoization. Tracks how many
 * evaluations actually reached the underlying function (the model
 * solves) versus were served from cache, and records the running-best
 * loss after each underlying evaluation — the convergence trace the
 * calibrator publishes.
 */
class CachedResiduals {
  public:
    CachedResiduals(solver::VectorFn fn, std::size_t capacity);

    solver::Vector operator()(const solver::Vector& x);

    const EvalCache::Stats& stats() const { return cache_.stats(); }
    /// Evaluations that reached the underlying function.
    std::uint64_t underlying_evaluations() const { return underlying_; }
    /// Total requests (cache hits + underlying evaluations).
    std::uint64_t requests() const { return requests_; }
    /// Running best 0.5*||r||^2 after each *underlying* evaluation that
    /// improved on the incumbent: a monotone convergence trace.
    const std::vector<double>& convergence() const { return convergence_; }

  private:
    solver::VectorFn fn_;
    EvalCache cache_;
    std::uint64_t underlying_{0};
    std::uint64_t requests_{0};
    double best_{0.0};
    bool has_best_{false};
    std::vector<double> convergence_;
};

} // namespace lognic::calib

#endif // LOGNIC_CALIB_CACHE_HPP_
