/**
 * @file
 * Kill-tolerant run supervision (lognic::ckpt): wrap a sweep, a `lognic
 * check` run, a calibration, or a single long simulation in a
 * checkpoint/resume loop.
 *
 * The supervisor owns a CheckpointStore (one generation directory, one
 * frame kind per workload), a completed-work journal, and the hook wiring
 * into the workload's resume seams. The loop is:
 *
 *  1. resume: load the newest *valid* generation (torn/corrupt/skewed
 *     files are recorded in ResumeInfo::rejected and skipped — never
 *     silently loaded), verify its config fingerprint against the live
 *     run, and preload the journal;
 *  2. run with journal hooks: completed units are recorded as they
 *     finish, and every `checkpoint_every` completions a new generation
 *     is published via the atomic-rename protocol;
 *  3. (sweeps) retry: failed points are erased from the journal and
 *     re-run, up to `retry_rounds` extra passes with exponential backoff
 *     between them — transient failures (wall-clock truncation on a loaded
 *     host, resource exhaustion) heal, deterministic ones fail identically
 *     and are reported as data;
 *  4. final checkpoint: the finished journal is always published, so a
 *     later invocation resumes straight to the report.
 *
 * Resuming a finished or partial run is byte-identical to running it
 * uninterrupted, at any thread count: journaled outcomes replay verbatim,
 * and every unit's seed is a pure function of its index.
 *
 * A fingerprint mismatch (the checkpoint directory holds a journal for a
 * *different* campaign — other spec, other seed, other trial count)
 * throws rather than mixing incompatible work.
 */
#ifndef LOGNIC_CKPT_SUPERVISOR_HPP_
#define LOGNIC_CKPT_SUPERVISOR_HPP_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lognic/calib/calibrator.hpp"
#include "lognic/calib/spec.hpp"
#include "lognic/check/harness.hpp"
#include "lognic/ckpt/journal.hpp"
#include "lognic/ckpt/store.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::ckpt {

struct SupervisorOptions {
    /// Checkpoint directory (created when missing). Must be non-empty.
    std::string dir;
    /// Load the newest valid generation before running; false starts
    /// fresh (existing generations are kept and eventually pruned).
    bool resume{true};
    /// Completed units between periodic checkpoint publications (>= 1).
    /// For supervise_simulation this counts advance() segments instead.
    std::uint64_t checkpoint_every{8};
    /// Generations kept on disk.
    std::size_t retention{3};
    /// Extra passes over failed sweep points (0 = report failures as-is).
    std::size_t retry_rounds{0};
    /// Backoff before retry round r: initial * multiplier^(r-1) seconds.
    double backoff_initial_seconds{0.5};
    double backoff_multiplier{2.0};
    /// Test seam: called instead of a real sleep when set.
    std::function<void(double seconds)> sleep_fn{};
    /// Diagnostics sink (resume decisions, rejected generations, retry
    /// rounds). Unset = silent.
    std::function<void(const std::string&)> log{};
};

/// What resume found in the checkpoint directory.
struct ResumeInfo {
    bool resumed{false};          ///< a valid generation was loaded
    std::uint64_t generation{0};  ///< its number (when resumed)
    std::size_t completed{0};     ///< journal entries replayed
    /// Generations that could not be used (torn write, checksum mismatch,
    /// version skew) and why. Never silently loaded.
    std::vector<Rejected> rejected;
};

struct SupervisedSweep {
    runner::SweepReport report;
    ResumeInfo resume;
    std::uint64_t checkpoints{0};     ///< generations published this run
    std::size_t retry_rounds_used{0};
};

/**
 * Run (or resume) a guarded sweep under checkpoint supervision.
 * @p options.resume_lookup / on_task_complete must be unset (the
 * supervisor owns those seams); throws std::invalid_argument otherwise.
 */
SupervisedSweep supervise_sweep(const runner::Sweep& sweep,
                                runner::SweepOptions options,
                                const SupervisorOptions& sup);

struct SupervisedCheck {
    check::CheckReport report;
    ResumeInfo resume;
    std::uint64_t checkpoints{0};
};

/**
 * Run (or resume) a conformance-check campaign (corpus replay + random
 * trials, merged corpus-first exactly like `lognic check`).
 * @p copts.resume_lookup / on_trial_complete must be unset.
 */
SupervisedCheck supervise_check(check::CheckOptions copts,
                                const std::vector<check::CorpusEntry>& corpus,
                                const SupervisorOptions& sup);

struct SupervisedCalibration {
    calib::CalibrationReport report;
    ResumeInfo resume;
    std::uint64_t checkpoints{0};
};

/**
 * Run (or resume) a calibration: completed top-level starts replay from
 * the journal (fold fits re-run — they are cheap relative to starts and
 * never journal). @p opts.fit.resume_lookup / on_start_complete must be
 * unset.
 */
SupervisedCalibration supervise_calibration(calib::ParameterSpace space,
                                            calib::Dataset data,
                                            calib::CalibratorOptions opts,
                                            const SupervisorOptions& sup);

struct SupervisedSimulation {
    sim::SimResult result;
    ResumeInfo resume;
    std::uint64_t checkpoints{0};
    std::uint64_t segments{0};    ///< advance() calls this invocation
};

/**
 * Run (or resume) one long DES run in event-budget segments with a full
 * state snapshot published every `checkpoint_every` segments. @p sim must
 * be freshly constructed (no begin()/run() yet); resume feeds the newest
 * valid snapshot to load_state(), which validates the config fingerprint.
 * @p events_per_segment must be > 0.
 */
SupervisedSimulation supervise_simulation(sim::NicSimulator& sim,
                                          std::uint64_t events_per_segment,
                                          const SupervisorOptions& sup);

} // namespace lognic::ckpt

#endif // LOGNIC_CKPT_SUPERVISOR_HPP_
