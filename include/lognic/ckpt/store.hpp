/**
 * @file
 * Generation-numbered checkpoint store (lognic::ckpt).
 *
 * A store owns one directory and one frame kind. Each save() publishes a
 * new generation file `<kind>-<00000042>.lnck` via the io atomic-rename
 * protocol and prunes the oldest generations beyond the retention bound.
 * load_latest() scans generations newest-first and returns the first one
 * that decodes cleanly — a torn, corrupt, or version-skewed newest file is
 * *recorded* (path + reason) and skipped in favor of an older valid
 * generation, never silently loaded. That is the whole point of keeping
 * more than one generation: the failure mode of "crashed mid-publication"
 * or "disk ate a byte" costs one checkpoint interval, not the run.
 */
#ifndef LOGNIC_CKPT_STORE_HPP_
#define LOGNIC_CKPT_STORE_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace lognic::ckpt {

struct StoreOptions {
    /// Generations kept on disk; older ones are pruned after each save.
    /// At least 1.
    std::size_t retention{3};
};

/// A generation file that could not be used, and why.
struct Rejected {
    std::string path;
    std::string reason;
};

struct Loaded {
    std::uint64_t generation{0};
    std::string payload;
};

class CheckpointStore {
public:
    /// Creates @p dir (and parents) when missing.
    /// @throws std::runtime_error on invalid kind/options or mkdir failure.
    CheckpointStore(std::string dir, std::string kind, StoreOptions options = {});

    const std::string& dir() const { return dir_; }
    const std::string& kind() const { return kind_; }

    /// Publish @p payload as the next generation; returns its number.
    std::uint64_t save(const std::string& payload);

    /**
     * Newest valid generation, or nullopt when none exists. Generations
     * that fail to decode (torn payload, checksum mismatch, version skew,
     * wrong kind) are appended to @p rejected when non-null and skipped.
     * "*.tmp" leftovers from a crashed writer are ignored entirely.
     */
    std::optional<Loaded> load_latest(std::vector<Rejected>* rejected = nullptr) const;

    /// Generation numbers present on disk, ascending (valid or not).
    std::vector<std::uint64_t> generations() const;

    std::string path_for(std::uint64_t generation) const;

private:
    std::string dir_;
    std::string kind_;
    StoreOptions options_;
    std::uint64_t next_generation_{1};
};

} // namespace lognic::ckpt

#endif // LOGNIC_CKPT_STORE_HPP_
