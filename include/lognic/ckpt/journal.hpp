/**
 * @file
 * Completed-work journals (lognic::ckpt): the payloads a checkpoint
 * generation carries for sweep/replication campaigns, `lognic check`
 * runs, and calibration fits.
 *
 * A journal is a keyed map of finished units of work — task index →
 * runner::CompletedTask, "trial:<i>"/"corpus:<name>" → check::TrialOutcome,
 * start index → calib::StartRecord — that round-trips through JSON
 * *bit-exactly*: every double travels as the hex of its IEEE-754 bit
 * pattern and every u64 as a hex string (see io/checkpoint.hpp for why the
 * plain JSON number path cannot carry them). That bit-exactness is what
 * lets a resumed run replay journaled outcomes verbatim and still produce
 * a report byte-identical to an uninterrupted run.
 *
 * Journals are internally locked: the lookup_fn()/record_fn() adapters
 * plug straight into the runner/check/calib hook seams, whose hooks fire
 * from worker threads. record_fn() takes an optional `after` callback
 * fired outside the journal lock (the supervisor hangs its periodic
 * checkpoint there; calling to_json() from inside the lock would
 * deadlock).
 */
#ifndef LOGNIC_CKPT_JOURNAL_HPP_
#define LOGNIC_CKPT_JOURNAL_HPP_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "lognic/calib/calibrator.hpp"
#include "lognic/check/harness.hpp"
#include "lognic/io/json.hpp"
#include "lognic/runner/replicator.hpp"
#include "lognic/sim/nic_simulator.hpp"

namespace lognic::ckpt {

// --- bit-exact serialization of result types ----------------------------------

/// MetricsSnapshot with hex-encoded values (counters, gauges, histogram
/// bounds/counts/sum). Key order is the map's — deterministic.
io::Json metrics_to_json(const obs::MetricsSnapshot& m);
/// @throws std::runtime_error naming the offending field on bad input.
obs::MetricsSnapshot metrics_from_json(const io::Json& j);

/// Full-fidelity SimResult: every scalar, the per-vertex stats, and the
/// structured metrics snapshot, all bit-exact through a dump/parse cycle.
io::Json sim_result_to_json(const sim::SimResult& r);
sim::SimResult sim_result_from_json(const io::Json& j);

io::Json completed_task_to_json(const runner::CompletedTask& t);
runner::CompletedTask completed_task_from_json(const io::Json& j);

io::Json trial_outcome_to_json(const check::TrialOutcome& t);
check::TrialOutcome trial_outcome_from_json(const io::Json& j);

io::Json start_record_to_json(const calib::StartRecord& r);
calib::StartRecord start_record_from_json(const io::Json& j);

// --- journals -----------------------------------------------------------------

/**
 * Journal of completed sweep/replication tasks, keyed by task index
 * (point * replications + replication). Thread-safe.
 */
class TaskJournal {
public:
    TaskJournal() = default;

    /// {"tasks": [{"task": "<hex>", ...CompletedTask...}, ...]}
    io::Json to_json() const;
    /// Replace the contents from a journal document.
    /// @throws std::runtime_error on malformed input.
    void load_json(const io::Json& j);

    std::size_t size() const;
    /// Entries recorded as failures (ok == false).
    std::size_t failed_count() const;
    void record(std::size_t task, runner::CompletedTask done);
    bool lookup(std::size_t task, runner::CompletedTask& out) const;
    /// Drop failed entries so a retry round re-runs them; returns how many.
    std::size_t erase_failed();

    /// Adapter for SweepOptions::resume_lookup / ReplicatorHooks::lookup.
    /// The journal must outlive the returned function.
    runner::TaskLookup lookup_fn() const;
    /// Adapter for the completion hook; @p after (may be empty) runs after
    /// each record, outside the journal lock.
    runner::TaskHook record_fn(std::function<void()> after = {});

private:
    mutable std::mutex mutex_;
    std::map<std::size_t, runner::CompletedTask> tasks_;
};

/**
 * Journal of completed `lognic check` units, keyed "trial:<index>" /
 * "corpus:<name>". Thread-safe (the harness is currently serial, but the
 * seam does not promise that).
 */
class CheckJournal {
public:
    CheckJournal() = default;

    /// {"units": [{"key": "...", ...TrialOutcome...}, ...]}
    io::Json to_json() const;
    void load_json(const io::Json& j);

    std::size_t size() const;
    void record(const std::string& key, check::TrialOutcome done);
    bool lookup(const std::string& key, check::TrialOutcome& out) const;

    check::TrialLookup lookup_fn() const;
    check::TrialHook record_fn(std::function<void()> after = {});

private:
    mutable std::mutex mutex_;
    std::map<std::string, check::TrialOutcome> units_;
};

/**
 * Journal of completed calibration starts, keyed by start index.
 * Thread-safe; plugs into FitOptions::resume_lookup / on_start_complete
 * (only top-level starts journal — fold fits run with cleared hooks).
 */
class FitJournal {
public:
    FitJournal() = default;

    /// {"starts": [{"start": "<hex>", ...StartRecord...}, ...]}
    io::Json to_json() const;
    void load_json(const io::Json& j);

    std::size_t size() const;
    void record(std::size_t start, calib::StartRecord done);
    bool lookup(std::size_t start, calib::StartRecord& out) const;

    calib::StartLookup lookup_fn() const;
    calib::StartHook record_fn(std::function<void()> after = {});

private:
    mutable std::mutex mutex_;
    std::map<std::size_t, calib::StartRecord> starts_;
};

} // namespace lognic::ckpt

#endif // LOGNIC_CKPT_JOURNAL_HPP_
