/**
 * @file
 * JSON (de)serialization of the LogNIC system interface: hardware models,
 * execution graphs, and traffic profiles — the "predefined formats" the
 * paper's workflow consumes (S3.1, Figure 4a).
 *
 * Not serialized: IpSpec::sojourn_curve (an arbitrary callable). Loading a
 * hardware model that was saved with a curve yields the same roofline
 * parameters with the curve unset; re-attach it after loading (e.g. by
 * re-running ssd::calibrate).
 */
#ifndef LOGNIC_IO_SERIALIZE_HPP_
#define LOGNIC_IO_SERIALIZE_HPP_

#include "lognic/core/execution_graph.hpp"
#include "lognic/core/hardware_model.hpp"
#include "lognic/core/traffic_profile.hpp"
#include "lognic/io/json.hpp"

namespace lognic::io {

// --- hardware models ----------------------------------------------------------

Json to_json(const core::HardwareModel& hw);
/// @throws std::runtime_error on malformed documents.
core::HardwareModel hardware_from_json(const Json& j);

// --- execution graphs ---------------------------------------------------------

Json to_json(const core::ExecutionGraph& graph);
core::ExecutionGraph graph_from_json(const Json& j);

// --- traffic profiles ---------------------------------------------------------

Json to_json(const core::TrafficProfile& traffic);
core::TrafficProfile traffic_from_json(const Json& j);

// --- whole-scenario bundle -----------------------------------------------------

/// A complete model input: hardware + program + traffic in one document.
struct Scenario {
    core::HardwareModel hw;
    core::ExecutionGraph graph;
    core::TrafficProfile traffic;
};

Json to_json(const Scenario& scenario);
Scenario scenario_from_json(const Json& j);

/// Convenience: serialize to a pretty-printed document string.
std::string save_scenario(const Scenario& scenario);
/// Convenience: parse + decode in one call.
Scenario load_scenario(const std::string& text);

} // namespace lognic::io

#endif // LOGNIC_IO_SERIALIZE_HPP_
