/**
 * @file
 * A minimal self-contained JSON value, parser, and writer.
 *
 * LogNIC takes hardware models, execution graphs, and traffic profiles "in
 * predefined formats" (S3.1); this module provides that interchange format
 * without external dependencies. Supports the full JSON data model minus
 * exotica: no surrogate-pair escapes, numbers are IEEE doubles.
 */
#ifndef LOGNIC_IO_JSON_HPP_
#define LOGNIC_IO_JSON_HPP_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lognic::io {

class Json;
using JsonArray = std::vector<Json>;
/// std::map keeps key order deterministic for stable round-trips.
using JsonObject = std::map<std::string, Json>;

/**
 * Round-trip double formatting, shared with the JSON writer's number rule:
 * integral values below 1e15 print without a fraction ("12"), everything
 * else uses %.17g so the exact bit pattern survives a parse. Non-finite
 * values — which the JSON writer encodes as null — print as "nan", "inf",
 * or "-inf" for use in human-readable strings.
 */
std::string format_double(double value);

class Json {
  public:
    enum class Type {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Json() : type_(Type::kNull) {}
    Json(std::nullptr_t) : type_(Type::kNull) {}
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(double n) : type_(Type::kNumber), number_(n) {}
    Json(int n) : type_(Type::kNumber), number_(n) {}
    Json(unsigned n) : type_(Type::kNumber), number_(n) {}
    Json(long long n)
        : type_(Type::kNumber), number_(static_cast<double>(n))
    {
    }
    Json(const char* s) : type_(Type::kString), string_(s) {}
    Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
    Json(JsonArray a)
        : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a)))
    {
    }
    Json(JsonObject o)
        : type_(Type::kObject),
          object_(std::make_shared<JsonObject>(std::move(o)))
    {
    }

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    /// Typed accessors; throw std::runtime_error on type mismatch.
    bool as_bool() const;
    double as_number() const;
    const std::string& as_string() const;
    const JsonArray& as_array() const;
    const JsonObject& as_object() const;

    /// Object member access; throws when absent or not an object.
    const Json& at(const std::string& key) const;
    /// True when this is an object containing @p key.
    bool contains(const std::string& key) const;
    /// Optional member: returns @p fallback when absent.
    double number_or(const std::string& key, double fallback) const;

    /// Mutable object/array builders.
    Json& set(const std::string& key, Json value);
    Json& push_back(Json value);

    /// Serialize; @p indent < 0 means compact single-line output.
    std::string dump(int indent = 2) const;

    /// Parse a JSON document. @throws std::runtime_error with position
    /// info on malformed input.
    static Json parse(const std::string& text);

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    Type type_;
    bool bool_{false};
    double number_{0.0};
    std::string string_;
    std::shared_ptr<JsonArray> array_;
    std::shared_ptr<JsonObject> object_;
};

} // namespace lognic::io

#endif // LOGNIC_IO_JSON_HPP_
