/**
 * @file
 * Checkpoint frame format and crash-safe file replacement (lognic::io).
 *
 * A checkpoint file is one frame:
 *
 *     LOGNICCKPT <version> <kind> <payload-bytes> <fnv1a64-hex>\n
 *     <payload bytes>
 *
 * The header is a single ASCII line; the payload is an opaque byte string
 * (in practice a JSON document). The checksum is FNV-1a 64 over the payload
 * only, rendered as 16 lowercase hex digits. Decoding rejects — with a
 * reason, never silently — any frame whose magic, version, kind, size, or
 * checksum does not match: a torn write (short payload), a flipped bit, and
 * a file from a future format version all surface as a named defect the
 * caller can report and skip in favor of an older generation.
 *
 * atomic_write_file() is the publication protocol: write a temporary in
 * the same directory, fsync it, rename over the target, fsync the
 * directory. A reader concurrently scanning the directory observes either
 * the old file, the new file, or (for a fresh path) no file — never a
 * partial one. Leftover "*.tmp" files from a crashed writer are garbage by
 * construction and are ignored by checkpoint scans.
 *
 * The hex helpers exist because checkpoints must round-trip *bit-exactly*:
 * the JSON writer emits null for non-finite doubles (a calibration start
 * that failed has final_loss = inf) and %.17g for the rest, so doubles
 * inside checkpoint payloads are stored as the hex of their IEEE-754 bit
 * pattern and u64 values (seeds, counters) as hex strings, immune to the
 * double-precision limit of JSON numbers.
 */
#ifndef LOGNIC_IO_CHECKPOINT_HPP_
#define LOGNIC_IO_CHECKPOINT_HPP_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lognic::io {

/// Bumped on any incompatible change to frame or payload layout. Readers
/// reject other versions (version skew) rather than guessing.
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// FNV-1a 64-bit over @p data. Not cryptographic; detects torn writes and
/// bit rot, which is the threat model for a local checkpoint directory.
std::uint64_t fnv1a64(std::string_view data);

struct CheckpointFrame {
    std::uint32_t version{kCheckpointVersion};
    /// Workload tag ("sweep", "check", "calib", "sim"). A store only loads
    /// frames whose kind matches, so checkpoints from different workloads
    /// sharing a directory cannot be confused.
    std::string kind;
    std::string payload;
};

/**
 * Serialize header + payload. @p frame.kind must be non-empty and contain
 * no whitespace (it is a token in the header line); throws otherwise.
 */
std::string encode_frame(const CheckpointFrame& frame);

/**
 * Parse and verify one frame. Returns nullopt on any defect and, when
 * @p reason is non-null, stores why ("bad magic", "version skew: ...",
 * "truncated payload: ...", "checksum mismatch: ...").
 */
std::optional<CheckpointFrame> decode_frame(const std::string& data,
                                            std::string* reason = nullptr);

/**
 * Crash-safe replacement of @p path with @p contents: write "<path>.tmp",
 * fsync, rename over @p path, fsync the containing directory.
 * @throws std::runtime_error naming the path on any I/O failure.
 */
void atomic_write_file(const std::string& path, const std::string& contents);

/**
 * Whole-file read; nullopt when the file cannot be opened (missing or
 * unreadable — for checkpoint scans both mean "not a usable generation").
 * @throws std::runtime_error naming the path when a read fails mid-file.
 */
std::optional<std::string> read_file_if_exists(const std::string& path);

/// "0x" + 16 lowercase hex digits of the IEEE-754 bit pattern. Round-trips
/// every double bit-exactly, including ±inf, NaN payloads, and -0.0.
std::string double_to_hex(double value);

/// Inverse of double_to_hex(). @throws std::runtime_error naming
/// @p context on malformed input.
double double_from_hex(const std::string& text, const std::string& context);

/// "0x" + 16 lowercase hex digits.
std::string u64_to_hex(std::uint64_t value);

/**
 * Strict full-consumption unsigned parse: base 10, or 16 with a 0x/0X
 * prefix, optional surrounding ASCII whitespace, nothing else. @throws
 * std::runtime_error naming @p context (a JSON field or parameter path)
 * on empty input, trailing garbage, or overflow — so a malformed "seed"
 * in a spec reads as an error about that field, not a bare
 * std::invalid_argument from the bowels of the parser.
 */
std::uint64_t parse_u64(const std::string& text, const std::string& context);

} // namespace lognic::io

#endif // LOGNIC_IO_CHECKPOINT_HPP_
