/**
 * @file
 * Generic string-keyed LRU memo cache.
 *
 * Extracted from the per-start loss-evaluation cache in lognic::calib so
 * the same backend serves both the calibrator (bit-pattern parameter
 * vectors -> residual vectors) and the design-space explorer (canonical
 * config fingerprints -> objective evaluations). Semantics are exactly
 * the original EvalCache's: lookup counts a hit or a miss and refreshes
 * recency, insert is a no-op when the key is present and evicts the
 * least-recent entry at capacity.
 *
 * Deliberately not thread-safe: callers that need deterministic hit/miss
 * counters (calib per-start workers, the dse batch coordinator) own one
 * cache per serial access stream.
 */
#ifndef LOGNIC_IO_LRU_CACHE_HPP_
#define LOGNIC_IO_LRU_CACHE_HPP_

#include <cstdint>
#include <list>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace lognic::io {

struct LruCacheStats {
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t evictions{0};
};

template <typename Value>
class LruCache {
  public:
    using Stats = LruCacheStats;

    /// @throws std::invalid_argument when capacity is zero.
    explicit LruCache(std::size_t capacity) : capacity_(capacity)
    {
        if (capacity_ == 0)
            throw std::invalid_argument("LruCache: capacity must be > 0");
    }

    /// Cached value for @p key, refreshing its recency; nullopt on a miss.
    std::optional<Value> lookup(const std::string& key)
    {
        const auto it = index_.find(key);
        if (it == index_.end()) {
            ++stats_.misses;
            return std::nullopt;
        }
        ++stats_.hits;
        entries_.splice(entries_.begin(), entries_, it->second);
        return it->second->value;
    }

    /// Insert (no-op if present), evicting the least-recent entry at
    /// capacity.
    void insert(std::string key, Value value)
    {
        if (index_.count(key) != 0)
            return;
        entries_.push_front(Entry{key, std::move(value)});
        index_.emplace(std::move(key), entries_.begin());
        if (entries_.size() > capacity_) {
            index_.erase(entries_.back().key);
            entries_.pop_back();
            ++stats_.evictions;
        }
    }

    const Stats& stats() const { return stats_; }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

  private:
    struct Entry {
        std::string key;
        Value value;
    };

    std::size_t capacity_;
    std::list<Entry> entries_; ///< front = most recent
    std::unordered_map<std::string, typename std::list<Entry>::iterator>
        index_;
    Stats stats_;
};

} // namespace lognic::io

#endif // LOGNIC_IO_LRU_CACHE_HPP_
