/**
 * @file
 * Ablations of the model's own components against the simulator: what
 * accuracy does each modelling choice buy?
 *
 *  A. The M/M/1/N queueing term (Eq. 9-12): latency error with and
 *     without it as load rises — the "hop-sum only" strawman is what a
 *     queueing-blind model (e.g. plain LogP-style accounting) would say.
 *  B. The extended-Roofline ceilings (S3.2): throughput error at large
 *     access granularities with and without the data-feed ceilings —
 *     a compute-only Roofline misses the Figure-5 cliff entirely.
 *  C. The service-variability term: M/G/1 vs M/M/1 waiting for a
 *     deterministic hardware pipeline.
 */
#include "bench_util.hpp"
#include "lognic/apps/inline_accel.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

namespace {

core::HardwareModel
one_core_nic(double scv)
{
    core::HardwareModel hw("abl", Bandwidth::from_gbps(100.0),
                           Bandwidth::from_gbps(80.0),
                           Bandwidth::from_gbps(25.0));
    core::IpSpec ip;
    ip.name = "cores";
    ip.roofline = core::ExtendedRoofline(
        core::ServiceModel{Seconds::from_micros(1.0),
                           Bandwidth::from_gigabytes_per_sec(4.0)},
        {});
    ip.max_engines = 1;
    ip.default_queue_capacity = 256;
    ip.service_scv = scv;
    hw.add_ip(ip);
    return hw;
}

core::ExecutionGraph
chain(const core::HardwareModel& hw)
{
    core::ExecutionGraph g("chain");
    const auto in = g.add_ingress();
    const auto out = g.add_egress();
    const auto v = g.add_ip_vertex("cores", *hw.find_ip("cores"));
    g.add_edge(in, v);
    g.add_edge(v, out);
    return g;
}

/// Mean latency with every queueing term stripped (the strawman model).
double
hop_sum_only_us(const core::LatencyEstimate& est)
{
    double mean = 0.0;
    double wsum = 0.0;
    for (const auto& path : est.paths) {
        double total = path.total.seconds();
        for (const auto& hop : path.hops)
            total -= hop.queueing.seconds();
        mean += path.weight * total;
        wsum += path.weight;
    }
    return wsum > 0.0 ? mean / wsum * 1e6 : 0.0;
}

} // namespace

int
main()
{
    bench::banner("Ablation A",
                  "Latency (us) vs load: simulator, full model, and the "
                  "queueing-blind hop-sum strawman");
    {
        const auto hw = one_core_nic(1.0);
        const auto g = chain(hw);
        bench::header({"load%", "sim", "model", "no-queueing",
                       "model-err%", "strawman-err%"});
        for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9}) {
            const auto traffic =
                core::TrafficProfile::fixed(Bytes{1500.0},
                                            Bandwidth::from_gbps(8.7 * frac));
            const auto est =
                core::estimate_latency(g, hw, traffic);
            sim::SimOptions opts;
            opts.duration = 0.2;
            const auto res = sim::simulate(hw, g, traffic, opts);
            const double sim_us = res.mean_latency.micros();
            const double model_us = est.mean.micros();
            const double straw_us = hop_sum_only_us(est);
            bench::row(std::to_string(static_cast<int>(100.0 * frac)),
                       {sim_us, model_us, straw_us,
                        100.0 * std::abs(model_us - sim_us) / sim_us,
                        100.0 * std::abs(straw_us - sim_us) / sim_us});
        }
        bench::footnote("Without Eq. 9-12 the error explodes past 60% "
                        "load; with it the model stays within a few "
                        "percent.");
    }

    bench::banner("Ablation B",
                  "CRC MOPS at large granularity: with vs without the "
                  "extended-Roofline data-feed ceilings");
    {
        const auto with_sc =
            apps::make_inline_accel_unbounded(devices::LiquidIoKernel::kCrc);
        // Strip every data-feed limit — the per-IP ceilings *and* the
        // shared-medium accounting: a compute-only Roofline.
        core::HardwareModel stripped(
            "no-ceilings", Bandwidth::from_gbps(1e5),
            Bandwidth::from_gbps(1e5), with_sc.hw.line_rate());
        for (core::IpId i = 0; i < with_sc.hw.ip_count(); ++i) {
            core::IpSpec spec = with_sc.hw.ip(i);
            spec.roofline =
                core::ExtendedRoofline(spec.roofline.engine(), {});
            stripped.add_ip(std::move(spec));
        }
        bench::header({"granularity", "sim", "full-model", "no-ceilings"});
        for (double gsize : {2048.0, 4096.0, 8192.0, 16384.0}) {
            const auto traffic = core::TrafficProfile::fixed(
                Bytes{gsize}, Bandwidth::from_gbps(200.0));
            sim::SimOptions opts;
            opts.duration = 0.004;
            const auto res =
                sim::simulate(with_sc.hw, with_sc.graph, traffic, opts);
            const double full =
                core::Model(with_sc.hw)
                    .throughput(with_sc.graph, traffic)
                    .capacity.bytes_per_sec()
                / gsize / 1e6;
            const double no_ceil =
                core::Model(stripped)
                    .throughput(with_sc.graph, traffic)
                    .capacity.bytes_per_sec()
                / gsize / 1e6;
            bench::row(std::to_string(static_cast<int>(gsize)) + "B",
                       {res.delivered.bytes_per_sec() / gsize / 1e6, full,
                        no_ceil});
        }
        bench::footnote("A compute-only Roofline predicts a flat curve and "
                        "misses the memory-feed cliff the hardware (and "
                        "the full model) shows.");
    }

    bench::banner("Ablation C",
                  "Deterministic hardware pipeline at 80% load: M/G/1 "
                  "(scv-aware) vs plain M/M/1 waiting");
    {
        const auto hw_det = one_core_nic(0.0);
        const auto hw_exp = one_core_nic(1.0);
        const auto g_det = chain(hw_det);
        const auto traffic = core::TrafficProfile::fixed(
            Bytes{1500.0}, Bandwidth::from_gbps(0.8 * 8.7));
        sim::SimOptions opts;
        opts.duration = 0.2;
        const auto res = sim::simulate(hw_det, g_det, traffic, opts);
        const double scv_aware =
            core::estimate_latency(g_det, hw_det, traffic).mean.micros();
        const double mm1_only =
            core::estimate_latency(chain(hw_exp), hw_exp, traffic)
                .mean.micros();
        bench::header({"", "sim", "M/G/1", "M/M/1"});
        bench::row("latency(us)",
                   {res.mean_latency.micros(), scv_aware, mm1_only});
        bench::footnote(
            "The exponential-service assumption doubles the predicted "
            "wait for a deterministic engine; the SCV-aware term tracks "
            "the simulator.");
    }
    return 0;
}
