/**
 * @file
 * Figures 16 & 17: PANIC central-scheduler traffic steering (Model 2
 * "Parallelized Chain", accelerators A1:A2:A3 with 4:7:3 computing
 * throughput, traffic split 20% / X% / (80-X)%).
 *
 * Four static splits (10/70, 30/50, 50/30, 70/10) are compared against the
 * LogNIC-suggested X for 64B/512B/MTU traffic. Paper result: the optimizer
 * steers in proportion to accelerator capability (X = 56), cutting latency
 * by 11.7-57.2% and raising throughput by 16.3-159.1%.
 */
#include "bench_util.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

namespace {

struct SchemeResult {
    double tput_gbps;
    double latency_us;
};

SchemeResult
evaluate(double x_percent, const core::TrafficProfile& traffic)
{
    const auto sc = apps::make_panic_parallel_chain(x_percent);
    sim::SimOptions opts;
    opts.duration = 0.02;
    opts.seed = 9;
    const auto res = sim::simulate(sc.hw, sc.graph, traffic, opts);
    return {res.delivered.gbps(), res.mean_latency.micros()};
}

} // namespace

int
main()
{
    bench::banner("Figures 16 & 17",
                  "PANIC traffic steering: latency (us) and throughput "
                  "(Gbps) for static splits vs the LogNIC-suggested split");

    const struct {
        const char* name;
        Bytes size;
        Bandwidth offered;
    } profiles[] = {
        {"TP1(64B)", Bytes{64.0}, Bandwidth::from_gbps(18.0)},
        {"TP2(512B)", Bytes{512.0}, Bandwidth::from_gbps(55.0)},
        {"TP3(MTU)", Bytes{1500.0}, Bandwidth::from_gbps(75.0)},
    };
    const double static_splits[] = {10.0, 30.0, 50.0, 70.0};

    bench::header({"profile", "metric", "10/70", "30/50", "50/30", "70/10",
                   "LogNIC", "X*"});

    for (const auto& p : profiles) {
        const auto traffic = core::TrafficProfile::fixed(p.size, p.offered);
        const double x_opt = apps::lognic_opt_split(traffic);

        std::vector<double> lat;
        std::vector<double> thr;
        for (double x : static_splits) {
            const auto r = evaluate(x, traffic);
            lat.push_back(r.latency_us);
            thr.push_back(r.tput_gbps);
        }
        const auto opt = evaluate(x_opt, traffic);
        lat.push_back(opt.latency_us);
        lat.push_back(x_opt);
        thr.push_back(opt.tput_gbps);
        thr.push_back(x_opt);
        bench::row(p.name, lat);
        std::printf("%14s", "");
        bench::row("thr", thr);
    }

    bench::footnote(
        "Paper: LogNIC steers proportionally to capability (X ~ 56), "
        "reducing latency 11.7/15.6/38.4/57.2% and raising throughput "
        "16.3/11.4/84.8/159.1% vs the four static splits.");
    return 0;
}
