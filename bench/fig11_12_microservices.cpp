/**
 * @file
 * Figures 11 & 12: throughput and average latency of five E3 microservice
 * applications on the LiquidIO CN2360 under three core-allocation schemes:
 * round-robin (E3's default run-to-completion), equal partition, and
 * LogNIC-opt (per-stage D_vi from the optimizer).
 *
 * Paper result at 80% load: LogNIC-opt averages +34.8%/+36.4% throughput
 * and -22.4%/-22.8% latency over the two heuristics.
 */
#include "bench_util.hpp"
#include "lognic/apps/microservices.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

namespace {

struct SchemeResult {
    double tput_mrps;
    double latency_us;
};

SchemeResult
evaluate(const apps::MicroserviceScenario& sc,
         const core::TrafficProfile& traffic)
{
    sim::SimOptions opts;
    opts.duration = 0.05;
    const auto res = sim::simulate(sc.hw, sc.graph, traffic, opts);
    return {res.delivered_ops.mops(), res.mean_latency.micros()};
}

} // namespace

int
main()
{
    bench::banner("Figures 11 & 12",
                  "E3 microservices: throughput (MRPS) and mean latency "
                  "(us) under three NIC-core allocation schemes, 80% load");

    bench::header({"app", "RR-thr", "EQ-thr", "Opt-thr", "RR-lat", "EQ-lat",
                   "Opt-lat"});

    double thr_gain_rr = 0.0;
    double thr_gain_eq = 0.0;
    double lat_save_rr = 0.0;
    double lat_save_eq = 0.0;
    int n = 0;

    for (auto w : apps::e3_workloads()) {
        // Offered load: 80% of the best scheme's capacity (as in the paper,
        // all schemes see the same traffic).
        const auto probe_traffic = core::TrafficProfile::fixed(
            apps::e3_request_size(), Bandwidth::from_gbps(5.0));
        const auto opt_alloc = apps::lognic_opt_alloc(w, probe_traffic);
        const auto opt_sc = apps::make_e3_pipeline(w, opt_alloc);
        const double opt_capacity =
            core::Model(opt_sc.hw)
                .throughput(opt_sc.graph, probe_traffic)
                .capacity.bits_per_sec();
        const auto traffic = core::TrafficProfile::fixed(
            apps::e3_request_size(), Bandwidth{0.8 * opt_capacity});

        const auto rr =
            evaluate(apps::make_e3_run_to_completion(w), traffic);
        const auto eq = evaluate(
            apps::make_e3_pipeline(w, apps::equal_partition_alloc(w)),
            traffic);
        const auto opt = evaluate(opt_sc, traffic);

        bench::row(apps::to_string(w),
                   {rr.tput_mrps, eq.tput_mrps, opt.tput_mrps,
                    rr.latency_us, eq.latency_us, opt.latency_us});

        thr_gain_rr += opt.tput_mrps / rr.tput_mrps - 1.0;
        thr_gain_eq += opt.tput_mrps / eq.tput_mrps - 1.0;
        lat_save_rr += 1.0 - opt.latency_us / rr.latency_us;
        lat_save_eq += 1.0 - opt.latency_us / eq.latency_us;
        ++n;
    }

    std::printf("\nLogNIC-opt vs RR: throughput +%.1f%%, latency -%.1f%% "
                "(paper: +34.8%%, -22.4%%)\n",
                100.0 * thr_gain_rr / n, 100.0 * lat_save_rr / n);
    std::printf("LogNIC-opt vs EQ: throughput +%.1f%%, latency -%.1f%% "
                "(paper: +36.4%%, -22.8%%)\n",
                100.0 * thr_gain_eq / n, 100.0 * lat_save_eq / n);

    bench::footnote("All numbers measured on the packet-level simulator; "
                    "allocations come from the LogNIC optimizer.");
    return 0;
}
