/**
 * @file
 * google-benchmark microbenchmark of the calibration eval cache: how much
 * does LRU memoization save when a solver revisits parameter points?
 *
 * Every loss evaluation is one analytical-model solve per observation, and
 * real fits revisit points constantly (finite-difference probes repeat
 * across backtracking, multi-start fits re-probe clamped corners, the
 * calibrator re-reads the incumbent). The workload below replays a
 * solver-like access pattern — a small working set visited many times —
 * against the raw residual function and against CachedResiduals. CI runs
 * this binary with --benchmark_out=BENCH_calib.json and archives the
 * result, so cached-vs-uncached regressions show up in the artifacts.
 */
#include <benchmark/benchmark.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/calib/cache.hpp"
#include "lognic/calib/calibrator.hpp"
#include "lognic/calib/loss.hpp"

using namespace lognic;

namespace {

/// A LiquidIO MD5 calibration problem with an analytically synthesized
/// dataset (predictions of the true catalog over a rate grid) — no DES,
/// so the benchmark isolates model-solve cost.
struct Problem {
    calib::ParameterSpace space;
    calib::Dataset data;
    solver::VectorFn residuals;
};

Problem
make_problem()
{
    const auto sc =
        apps::make_inline_accel(devices::LiquidIoKernel::kMd5, 16);
    const calib::Candidate truth{sc.hw, {sc.graph}};

    calib::Dataset data;
    for (double gbps : {2.0, 4.0, 8.0, 12.0, 16.0, 20.0}) {
        for (double size : {256.0, 1024.0}) {
            calib::Observation obs;
            obs.traffic = core::TrafficProfile::fixed(
                Bytes{size}, Bandwidth::from_gbps(gbps));
            const calib::Prediction pred = calib::predict(truth, obs);
            obs.throughput = pred.throughput;
            obs.mean_latency = pred.mean_latency;
            data.add(std::move(obs));
        }
    }

    calib::ParameterSpace space(truth);
    space.add("ip.md5.fixed_cost_us");
    space.add("ip.cores-md5.fixed_cost_us");

    calib::LossOptions loss;
    loss.latency_weight = 0.25;
    solver::VectorFn fn = calib::make_residual_fn(space, data, loss);
    return Problem{std::move(space), std::move(data), std::move(fn)};
}

/// Solver-like access pattern: 8 distinct points, each visited 16 times.
std::vector<solver::Vector>
access_pattern(const calib::ParameterSpace& space)
{
    const solver::Vector x0 = space.initial();
    std::vector<solver::Vector> points;
    for (int k = 0; k < 8; ++k) {
        solver::Vector x = x0;
        x[0] *= 1.0 + 0.05 * k;
        x[1] *= 1.0 - 0.03 * k;
        points.push_back(std::move(x));
    }
    std::vector<solver::Vector> sequence;
    for (int rep = 0; rep < 16; ++rep)
        for (const auto& p : points)
            sequence.push_back(p);
    return sequence;
}

void
BM_LossEvaluationUncached(benchmark::State& state)
{
    const Problem problem = make_problem();
    const auto sequence = access_pattern(problem.space);
    for (auto _ : state) {
        for (const auto& x : sequence)
            benchmark::DoNotOptimize(problem.residuals(x));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(sequence.size()));
}
BENCHMARK(BM_LossEvaluationUncached);

void
BM_LossEvaluationCached(benchmark::State& state)
{
    const Problem problem = make_problem();
    const auto sequence = access_pattern(problem.space);
    for (auto _ : state) {
        // Fresh cache per iteration: the measured cost includes the 8
        // compulsory misses, exactly as a fit would pay them.
        calib::CachedResiduals cached(problem.residuals, 1024);
        for (const auto& x : sequence)
            benchmark::DoNotOptimize(cached(x));
        benchmark::DoNotOptimize(cached.stats().hits);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations())
                            * static_cast<std::int64_t>(sequence.size()));
}
BENCHMARK(BM_LossEvaluationCached);

/// The full engine on the same problem — the end-to-end number the two
/// microbenchmarks above explain.
void
BM_FitResiduals(benchmark::State& state)
{
    const Problem problem = make_problem();
    calib::FitProblem fit;
    fit.residuals = problem.residuals;
    fit.x0 = problem.space.initial();
    fit.x0[0] *= 1.5; // start away from the optimum
    fit.bounds = problem.space.bounds();
    fit.scales = problem.space.scales();
    calib::FitOptions opts;
    opts.starts = 2;
    for (auto _ : state) {
        benchmark::DoNotOptimize(calib::fit_residuals(fit, opts));
    }
}
BENCHMARK(BM_FitResiduals);

} // namespace

BENCHMARK_MAIN();
