/**
 * @file
 * Shared helpers for the figure-reproduction harnesses: each bench binary
 * regenerates one figure (or figure pair) of the paper's evaluation and
 * prints its series as aligned rows, `Measured` meaning the packet-level
 * simulator and `LogNIC` the analytical model.
 */
#ifndef LOGNIC_BENCH_BENCH_UTIL_HPP_
#define LOGNIC_BENCH_BENCH_UTIL_HPP_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace lognic::bench {

/**
 * Parse `--threads N` from a figure driver's argv (default 1 = serial;
 * `--threads 0` means hardware concurrency). Results are bit-identical for
 * any thread count — the runner derives seeds from point indices alone —
 * so the flag only changes wall-clock time.
 */
inline std::size_t
threads_arg(int argc, char** argv)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0) {
            char* end = nullptr;
            const long n = std::strtol(argv[i + 1], &end, 10);
            if (n < 0 || end == argv[i + 1] || *end != '\0') {
                std::fprintf(stderr, "bad --threads value '%s'\n",
                             argv[i + 1]);
                std::exit(2);
            }
            if (n == 0) {
                const unsigned hw = std::thread::hardware_concurrency();
                return hw > 0 ? hw : 1;
            }
            return static_cast<std::size_t>(n);
        }
    }
    return 1;
}

/// Print the figure banner.
inline void
banner(const std::string& figure, const std::string& caption)
{
    std::printf("=== %s ===\n", figure.c_str());
    std::printf("%s\n\n", caption.c_str());
}

/// Print a header row followed by a separator.
inline void
header(const std::vector<std::string>& columns)
{
    for (const auto& c : columns)
        std::printf("%14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < columns.size(); ++i)
        std::printf("%14s", "------------");
    std::printf("\n");
}

/// Print one row of mixed string/number cells.
inline void
row(const std::string& label, const std::vector<double>& values,
    const char* fmt = "%14.3f")
{
    std::printf("%14s", label.c_str());
    for (double v : values)
        std::printf(fmt, v);
    std::printf("\n");
}

inline void
footnote(const std::string& text)
{
    std::printf("\n%s\n\n", text.c_str());
}

} // namespace lognic::bench

#endif // LOGNIC_BENCH_BENCH_UTIL_HPP_
