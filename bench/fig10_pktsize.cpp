/**
 * @file
 * Figure 10: achieved bandwidth vs. packet size under line rate for six
 * LiquidIO-II engines (CRC, AES, MD5, SHA-1, SMS4, HFA).
 *
 * Paper result: achieved bandwidth ~ min(P_IP2 * packet_size, 25 Gbps) —
 * op-rate-bound engines scale linearly with packet size until the port
 * speed caps them.
 *
 * Accepts `--threads N` to fan the simulated (kernel x size) points across
 * the runner; output is byte-identical for any N.
 */
#include "bench_util.hpp"
#include "lognic/apps/inline_accel.hpp"
#include "lognic/core/model.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "lognic/traffic/profiles.hpp"

using namespace lognic;

int
main(int argc, char** argv)
{
    const std::size_t threads = bench::threads_arg(argc, argv);
    bench::banner("Figure 10",
                  "Achieved bandwidth (Gbps) vs packet size under 25 GbE "
                  "line rate");

    const std::vector<devices::LiquidIoKernel> kernels{
        devices::LiquidIoKernel::kCrc,  devices::LiquidIoKernel::kAes,
        devices::LiquidIoKernel::kMd5,  devices::LiquidIoKernel::kSha1,
        devices::LiquidIoKernel::kSms4, devices::LiquidIoKernel::kHfa};

    const auto sizes = traffic::standard_packet_sizes();
    std::vector<std::string> cols{"series"};
    for (Bytes s : sizes)
        cols.push_back(std::to_string(static_cast<int>(s.bytes())) + "B");
    bench::header(cols);

    runner::Sweep sweep;
    for (const auto kernel : kernels) {
        const auto sc = apps::make_inline_accel(kernel, 16);
        for (Bytes s : sizes) {
            sim::SimOptions opts;
            opts.duration = 0.008;
            sweep.add(runner::SweepPoint{
                std::string(devices::to_string(kernel)) + "/"
                    + std::to_string(static_cast<int>(s.bytes())) + "B",
                sc.hw, sc.graph,
                core::TrafficProfile::fixed(s, Bandwidth::from_gbps(25.0)),
                opts});
        }
    }
    runner::SweepOptions ropts;
    ropts.threads = threads;
    ropts.replications = 1;
    ropts.root_seed = 42;
    const auto results = sweep.run(ropts);

    for (std::size_t k = 0; k < kernels.size(); ++k) {
        const auto kernel = kernels[k];
        const auto sc = apps::make_inline_accel(kernel, 16);
        const core::Model model(sc.hw);
        std::vector<double> model_gbps;
        std::vector<double> sim_gbps;
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            const auto t = core::TrafficProfile::fixed(
                sizes[i], Bandwidth::from_gbps(25.0));
            model_gbps.push_back(
                model.throughput(sc.graph, t).achieved.gbps());
            sim_gbps.push_back(
                results[k * sizes.size() + i].stats.delivered_gbps.mean);
        }
        bench::row(std::string(devices::to_string(kernel)) + "/sim",
                   sim_gbps);
        bench::row(std::string(devices::to_string(kernel)) + "/model",
                   model_gbps);
    }

    bench::footnote(
        "Paper: bandwidth ~ MIN(P_IP2 x pktsize, 25 Gbps); small packets "
        "are op-rate-bound, MTU approaches line rate for the fast engines.");
    return 0;
}
