/**
 * @file
 * Figure 10: achieved bandwidth vs. packet size under line rate for six
 * LiquidIO-II engines (CRC, AES, MD5, SHA-1, SMS4, HFA).
 *
 * Paper result: achieved bandwidth ~ min(P_IP2 * packet_size, 25 Gbps) —
 * op-rate-bound engines scale linearly with packet size until the port
 * speed caps them.
 */
#include "bench_util.hpp"
#include "lognic/apps/inline_accel.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "lognic/traffic/profiles.hpp"

using namespace lognic;

int
main()
{
    bench::banner("Figure 10",
                  "Achieved bandwidth (Gbps) vs packet size under 25 GbE "
                  "line rate");

    const std::vector<devices::LiquidIoKernel> kernels{
        devices::LiquidIoKernel::kCrc,  devices::LiquidIoKernel::kAes,
        devices::LiquidIoKernel::kMd5,  devices::LiquidIoKernel::kSha1,
        devices::LiquidIoKernel::kSms4, devices::LiquidIoKernel::kHfa};

    const auto sizes = traffic::standard_packet_sizes();
    std::vector<std::string> cols{"series"};
    for (Bytes s : sizes)
        cols.push_back(std::to_string(static_cast<int>(s.bytes())) + "B");
    bench::header(cols);

    for (const auto kernel : kernels) {
        const auto sc = apps::make_inline_accel(kernel, 16);
        const core::Model model(sc.hw);
        std::vector<double> model_gbps;
        std::vector<double> sim_gbps;
        for (Bytes s : sizes) {
            const auto t =
                core::TrafficProfile::fixed(s, Bandwidth::from_gbps(25.0));
            model_gbps.push_back(
                model.throughput(sc.graph, t).achieved.gbps());
            sim::SimOptions opts;
            opts.duration = 0.008;
            sim_gbps.push_back(
                sim::simulate(sc.hw, sc.graph, t, opts).delivered.gbps());
        }
        bench::row(std::string(devices::to_string(kernel)) + "/sim",
                   sim_gbps);
        bench::row(std::string(devices::to_string(kernel)) + "/model",
                   model_gbps);
    }

    bench::footnote(
        "Paper: bandwidth ~ MIN(P_IP2 x pktsize, 25 Gbps); small packets "
        "are op-rate-bound, MTU approaches line rate for the fast engines.");
    return 0;
}
