/**
 * @file
 * Figures 13 & 14: NF-chain (FW->LB->DPI->NAT->PE) throughput and average
 * latency vs. packet size on the BlueField-2 under three placements:
 * ARM-only, Accelerator-only (offload-first), and LogNIC-opt (the
 * placement the optimizer picks per packet size).
 *
 * Paper result: LogNIC-opt saves 37.9%/27.3% latency and gains 81.9%/21.7%
 * throughput on average over ARM-only/Accelerator-only, because it
 * accounts for packet-size-dependent throughput and skips costly off-chip
 * hops when they do not pay.
 */
#include "bench_util.hpp"
#include "lognic/apps/nf_chain.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "lognic/traffic/profiles.hpp"

using namespace lognic;

namespace {

struct SchemeResult {
    double tput_gbps;
    double latency_us;
};

SchemeResult
evaluate(const apps::NfPlacement& placement,
         const core::TrafficProfile& traffic)
{
    const auto sc = apps::make_nf_chain(placement);
    sim::SimOptions opts;
    opts.duration = 0.02;
    const auto res = sim::simulate(sc.hw, sc.graph, traffic, opts);
    return {res.delivered.gbps(), res.mean_latency.micros()};
}

} // namespace

int
main()
{
    bench::banner("Figures 13 & 14",
                  "NF chain on BlueField-2: throughput (Gbps) and mean "
                  "latency (us) vs packet size for three placements");

    bench::header({"pktsize", "ARM-thr", "Accel-thr", "Opt-thr", "ARM-lat",
                   "Accel-lat", "Opt-lat"});

    double thr_gain_arm = 0.0;
    double thr_gain_acc = 0.0;
    double lat_save_arm = 0.0;
    double lat_save_acc = 0.0;
    int n = 0;

    for (Bytes size : traffic::standard_packet_sizes()) {
        // Offer 80% of the optimal placement's capacity for this size.
        const auto probe = core::TrafficProfile::fixed(
            size, Bandwidth::from_gbps(50.0));
        const auto opt_placement = apps::lognic_opt_placement(probe);
        const auto opt_sc = apps::make_nf_chain(opt_placement);
        const double capacity = core::Model(opt_sc.hw)
                                    .throughput(opt_sc.graph, probe)
                                    .capacity.bits_per_sec();
        const auto traffic =
            core::TrafficProfile::fixed(size, Bandwidth{0.8 * capacity});

        const auto arm = evaluate(apps::arm_only_placement(), traffic);
        const auto acc =
            evaluate(apps::accelerator_only_placement(), traffic);
        const auto opt = evaluate(opt_placement, traffic);

        bench::row(std::to_string(static_cast<int>(size.bytes())) + "B",
                   {arm.tput_gbps, acc.tput_gbps, opt.tput_gbps,
                    arm.latency_us, acc.latency_us, opt.latency_us});

        thr_gain_arm += opt.tput_gbps / arm.tput_gbps - 1.0;
        thr_gain_acc += opt.tput_gbps / acc.tput_gbps - 1.0;
        lat_save_arm += 1.0 - opt.latency_us / arm.latency_us;
        lat_save_acc += 1.0 - opt.latency_us / acc.latency_us;
        ++n;
    }

    std::printf("\nLogNIC-opt vs ARM-only:   throughput +%.1f%%, latency "
                "%+.1f%% (paper: +81.9%%, -37.9%%)\n",
                100.0 * thr_gain_arm / n, -100.0 * lat_save_arm / n);
    std::printf("LogNIC-opt vs Accel-only: throughput +%.1f%%, latency "
                "%+.1f%% (paper: +21.7%%, -27.3%%)\n",
                100.0 * thr_gain_acc / n, -100.0 * lat_save_acc / n);

    bench::footnote("ARM wins small packets (offload prep dominates), "
                    "accelerators win MTU (streaming dominates), and the "
                    "optimizer dominates both everywhere.");
    return 0;
}
