/**
 * @file
 * Figure 9: inline-acceleration throughput (MOPS) vs. NIC-core parallelism
 * at MTU line rate for MD5, KASUMI, and HFA on the LiquidIO-II.
 *
 * Paper result: throughput rises linearly with cores until the accelerator
 * (or line rate) binds; MD5/KASUMI/HFA need 9/8/11 cores to max out, the
 * spread coming from their different computation-transfer overheads O_IP1.
 */
#include "bench_util.hpp"
#include "lognic/apps/inline_accel.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

int
main()
{
    bench::banner("Figure 9",
                  "Throughput (MOPS) vs IP1 parallelism under MTU line rate "
                  "(25 GbE, 1500B packets)");

    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1500.0}, Bandwidth::from_gbps(25.0));
    const std::vector<devices::LiquidIoKernel> kernels{
        devices::LiquidIoKernel::kMd5, devices::LiquidIoKernel::kKasumi,
        devices::LiquidIoKernel::kHfa};
    const std::vector<unsigned> cores{1, 2, 4, 6, 8, 10, 12, 14, 16};

    std::vector<std::string> cols{"series"};
    for (unsigned c : cores)
        cols.push_back(std::to_string(c) + "c");
    cols.push_back("sat@");
    bench::header(cols);

    for (const auto kernel : kernels) {
        std::vector<double> model_mops;
        std::vector<double> sim_mops;
        double saturated = 0.0;
        unsigned need = 16;
        {
            const auto sc = apps::make_inline_accel(kernel, 16);
            saturated = core::Model(sc.hw)
                            .throughput(sc.graph, traffic)
                            .capacity.bits_per_sec();
        }
        for (unsigned c = 1; c <= 16; ++c) {
            const auto sc = apps::make_inline_accel(kernel, c);
            const double cap = core::Model(sc.hw)
                                   .throughput(sc.graph, traffic)
                                   .capacity.bits_per_sec();
            if (cap >= 0.999 * saturated && need == 16) {
                need = c;
            }
        }
        for (unsigned c : cores) {
            const auto sc = apps::make_inline_accel(kernel, c);
            const core::Model model(sc.hw);
            const auto est = model.throughput(sc.graph, traffic);
            model_mops.push_back(est.achieved.bits_per_sec() / 12000.0
                                 / 1e6);
            sim::SimOptions opts;
            opts.duration = 0.01;
            const auto res = sim::simulate(sc.hw, sc.graph, traffic, opts);
            sim_mops.push_back(res.delivered_ops.mops());
        }
        std::vector<double> model_row = model_mops;
        model_row.push_back(static_cast<double>(need));
        std::vector<double> sim_row = sim_mops;
        sim_row.push_back(static_cast<double>(need));
        bench::row(std::string(devices::to_string(kernel)) + "/sim", sim_row);
        bench::row(std::string(devices::to_string(kernel)) + "/model",
                   model_row);
    }

    bench::footnote(
        "Paper: MD5/KASUMI/HFA require 9/8/11 NIC cores to max out; "
        "model-vs-measured difference < 0.1% at MTU.");
    return 0;
}
