/**
 * @file
 * google-benchmark microbenchmarks of the model itself: how fast are
 * throughput estimation, latency estimation, path enumeration, the
 * discrete optimizer, and a simulator step. These quantify the paper's
 * "without actually deploying the program" value proposition — a model
 * evaluation must be orders of magnitude cheaper than an experiment.
 */
#include <benchmark/benchmark.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/apps/microservices.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/core/model.hpp"
#include "lognic/core/optimizer.hpp"
#include "lognic/io/serialize.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "lognic/solver/special.hpp"

using namespace lognic;

namespace {

const auto kScenario =
    apps::make_inline_accel(devices::LiquidIoKernel::kMd5, 12);
const auto kTraffic = core::TrafficProfile::fixed(
    Bytes{1500.0}, Bandwidth::from_gbps(25.0));

void
BM_ThroughputEstimate(benchmark::State& state)
{
    const core::Model model(kScenario.hw);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.throughput(kScenario.graph, kTraffic));
    }
}
BENCHMARK(BM_ThroughputEstimate);

void
BM_LatencyEstimate(benchmark::State& state)
{
    const core::Model model(kScenario.hw);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.latency(kScenario.graph, kTraffic));
    }
}
BENCHMARK(BM_LatencyEstimate);

void
BM_FullEstimate(benchmark::State& state)
{
    const core::Model model(kScenario.hw);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.estimate(kScenario.graph, kTraffic));
    }
}
BENCHMARK(BM_FullEstimate);

void
BM_PathEnumeration(benchmark::State& state)
{
    const auto sc = apps::make_panic_hybrid(0.5, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sc.graph.enumerate_paths());
    }
}
BENCHMARK(BM_PathEnumeration);

void
BM_GraphValidation(benchmark::State& state)
{
    for (auto _ : state) {
        kScenario.graph.validate(kScenario.hw);
    }
}
BENCHMARK(BM_GraphValidation);

void
BM_MicroserviceOptimizer(benchmark::State& state)
{
    const auto traffic = core::TrafficProfile::fixed(
        apps::e3_request_size(), Bandwidth::from_gbps(5.0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            apps::lognic_opt_alloc(apps::E3Workload::kRtaShm, traffic));
    }
}
BENCHMARK(BM_MicroserviceOptimizer);

void
BM_ScenarioSerializeRoundTrip(benchmark::State& state)
{
    const io::Scenario scenario{kScenario.hw, kScenario.graph, kTraffic};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            io::load_scenario(io::save_scenario(scenario)));
    }
}
BENCHMARK(BM_ScenarioSerializeRoundTrip);

void
BM_TailQuantile(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            solver::gamma_quantile(3.7, 1.3e-6, 0.99));
    }
}
BENCHMARK(BM_TailQuantile);

void
BM_SimulatorMillisecond(benchmark::State& state)
{
    for (auto _ : state) {
        sim::SimOptions opts;
        opts.duration = 0.001;
        benchmark::DoNotOptimize(
            sim::simulate(kScenario.hw, kScenario.graph, kTraffic, opts));
    }
}
BENCHMARK(BM_SimulatorMillisecond);

} // namespace

BENCHMARK_MAIN();
