/**
 * @file
 * google-benchmark microbenchmarks of the model itself: how fast are
 * throughput estimation, latency estimation, path enumeration, the
 * discrete optimizer, and a simulator step. These quantify the paper's
 * "without actually deploying the program" value proposition — a model
 * evaluation must be orders of magnitude cheaper than an experiment.
 */
#include <benchmark/benchmark.h>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/apps/microservices.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/core/model.hpp"
#include "lognic/core/optimizer.hpp"
#include "lognic/io/serialize.hpp"
#include "lognic/obs/trace.hpp"
#include "lognic/runner/replicator.hpp"
#include "lognic/runner/seed.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "lognic/solver/special.hpp"

using namespace lognic;

namespace {

const auto kScenario =
    apps::make_inline_accel(devices::LiquidIoKernel::kMd5, 12);
const auto kTraffic = core::TrafficProfile::fixed(
    Bytes{1500.0}, Bandwidth::from_gbps(25.0));

void
BM_ThroughputEstimate(benchmark::State& state)
{
    const core::Model model(kScenario.hw);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.throughput(kScenario.graph, kTraffic));
    }
}
BENCHMARK(BM_ThroughputEstimate);

void
BM_LatencyEstimate(benchmark::State& state)
{
    const core::Model model(kScenario.hw);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.latency(kScenario.graph, kTraffic));
    }
}
BENCHMARK(BM_LatencyEstimate);

void
BM_FullEstimate(benchmark::State& state)
{
    const core::Model model(kScenario.hw);
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.estimate(kScenario.graph, kTraffic));
    }
}
BENCHMARK(BM_FullEstimate);

void
BM_PathEnumeration(benchmark::State& state)
{
    const auto sc = apps::make_panic_hybrid(0.5, 4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sc.graph.enumerate_paths());
    }
}
BENCHMARK(BM_PathEnumeration);

void
BM_GraphValidation(benchmark::State& state)
{
    for (auto _ : state) {
        kScenario.graph.validate(kScenario.hw);
    }
}
BENCHMARK(BM_GraphValidation);

void
BM_MicroserviceOptimizer(benchmark::State& state)
{
    const auto traffic = core::TrafficProfile::fixed(
        apps::e3_request_size(), Bandwidth::from_gbps(5.0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            apps::lognic_opt_alloc(apps::E3Workload::kRtaShm, traffic));
    }
}
BENCHMARK(BM_MicroserviceOptimizer);

void
BM_ScenarioSerializeRoundTrip(benchmark::State& state)
{
    const io::Scenario scenario{kScenario.hw, kScenario.graph, kTraffic};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            io::load_scenario(io::save_scenario(scenario)));
    }
}
BENCHMARK(BM_ScenarioSerializeRoundTrip);

void
BM_TailQuantile(benchmark::State& state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            solver::gamma_quantile(3.7, 1.3e-6, 0.99));
    }
}
BENCHMARK(BM_TailQuantile);

void
BM_SimulatorMillisecond(benchmark::State& state)
{
    for (auto _ : state) {
        sim::SimOptions opts;
        opts.duration = 0.001;
        benchmark::DoNotOptimize(
            sim::simulate(kScenario.hw, kScenario.graph, kTraffic, opts));
    }
}
BENCHMARK(BM_SimulatorMillisecond);

/**
 * The observability overhead contract, measured: BM_SimulatorMillisecond
 * above is the tracing-disabled baseline (TraceOptions.sink == nullptr,
 * the default — the hot path pays one null-pointer test per hook).
 * The variants below attach a ChromeTraceWriter with full sampling and
 * with every-64th-packet sampling; comparing them against the baseline
 * quantifies the opt-in cost. The disabled path must stay within 2% of
 * the pre-observability simulator.
 */
void
BM_SimulatorMillisecondTraced(benchmark::State& state)
{
    const auto sample = static_cast<std::uint64_t>(state.range(0));
    for (auto _ : state) {
        obs::ChromeTraceWriter writer;
        sim::SimOptions opts;
        opts.duration = 0.001;
        opts.trace.sink = &writer;
        opts.trace.sample_every = sample;
        benchmark::DoNotOptimize(
            sim::simulate(kScenario.hw, kScenario.graph, kTraffic, opts));
        benchmark::DoNotOptimize(writer.event_count());
    }
}
BENCHMARK(BM_SimulatorMillisecondTraced)->Arg(1)->Arg(64);

void
BM_SeedDerivation(benchmark::State& state)
{
    std::uint64_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(runner::derive_seed(42, i++));
}
BENCHMARK(BM_SeedDerivation);

/**
 * 8 independent replications of a 0.5 ms run aggregated with CIs, at 1, 2,
 * and 4 pool threads — the runner's core fan-out path. Results are
 * identical across the Arg values; only wall-clock changes.
 */
void
BM_ReplicatedSimulation(benchmark::State& state)
{
    const auto threads = static_cast<std::size_t>(state.range(0));
    const runner::Replicator rep(8, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rep.run(
            [](std::uint64_t seed) {
                sim::SimOptions opts;
                opts.duration = 0.0005;
                opts.seed = seed;
                return sim::simulate(kScenario.hw, kScenario.graph,
                                     kTraffic, opts);
            },
            threads));
    }
}
BENCHMARK(BM_ReplicatedSimulation)->Arg(1)->Arg(2)->Arg(4);

} // namespace

BENCHMARK_MAIN();
