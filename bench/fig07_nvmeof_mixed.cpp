/**
 * @file
 * Figure 7: 4KB random-I/O bandwidth vs. read ratio on a fragmented
 * (preconditioned) SSD.
 *
 * The LogNIC line combines the two pure-workload calibrations (read-only
 * and write-only) harmonically; the measured line comes from the ground
 * truth device, whose garbage collector overlaps relocation work with
 * read-induced idle gaps in mixed workloads. Paper result: the model
 * under-predicts both read and write bandwidth by ~14.6%, the one effect
 * the calibrated parameters cannot capture.
 */
#include "bench_util.hpp"
#include "lognic/apps/nvmeof.hpp"

using namespace lognic;

int
main()
{
    bench::banner("Figure 7",
                  "4KB random I/O bandwidth (MB/s) vs read ratio on a "
                  "fragmented SSD");

    const ssd::SsdGroundTruth drive;
    const auto rd = traffic::random_mixed_4k(1.0);
    const auto wr = traffic::random_mixed_4k(0.0);
    const auto calib_rd =
        ssd::calibrate(drive.characterize(rd, 14), rd.block_size);
    const auto calib_wr =
        ssd::calibrate(drive.characterize(wr, 14), wr.block_size);

    bench::header({"read%", "RD-meas", "WR-meas", "RD-model", "WR-model",
                   "gap%"});

    double gap_sum = 0.0;
    int gap_count = 0;
    for (int pct = 0; pct <= 100; pct += 10) {
        const double r = pct / 100.0;
        const double measured_total =
            drive.capacity(traffic::random_mixed_4k(r))
                .bytes_per_sec();
        const double modeled_total =
            apps::mixed_model_bandwidth(calib_rd, calib_wr, r)
                .bytes_per_sec();
        const double gap =
            100.0 * (measured_total - modeled_total) / measured_total;
        if (pct > 0 && pct < 100) {
            gap_sum += gap;
            ++gap_count;
        }
        bench::row(std::to_string(pct),
                   {measured_total * r / 1e6,
                    measured_total * (1.0 - r) / 1e6,
                    modeled_total * r / 1e6,
                    modeled_total * (1.0 - r) / 1e6, gap});
    }
    std::printf("\nmean model under-prediction over mixed ratios: %.1f%%\n",
                gap_sum / static_cast<double>(gap_count));

    bench::footnote(
        "Paper: the model is ~14.6% below the characterization for both "
        "reads and writes because mixed-workload GC consumes less internal "
        "bandwidth than the pure-write calibration point implies.");
    return 0;
}
