/**
 * @file
 * Hardware design-space ablations (the S2.3 "guiding new hardware design"
 * use case, beyond the paper's PANIC scenarios): answer early-stage
 * sizing questions with model evaluations instead of prototypes.
 *
 *  A. CMI sizing: how does the Figure-5 granularity cliff move if the
 *     coherent memory interconnect is provisioned at 25/50/100/200 Gbps?
 *  B. Engine upgrade: is doubling an accelerator's op rate worth it, per
 *     packet size, given the 25 GbE port? (Where does the port, not the
 *     engine, bind?)
 *  C. Port upgrade: what would the same card do with a 50 GbE port?
 */
#include "bench_util.hpp"
#include "lognic/apps/inline_accel.hpp"
#include "lognic/core/model.hpp"
#include "lognic/traffic/profiles.hpp"

using namespace lognic;

namespace {

/// Rebuild the CRC inline scenario with a custom CMI provision.
apps::InlineAccelScenario
scenario_with_cmi(Bandwidth cmi)
{
    apps::InlineAccelScenario sc =
        apps::make_inline_accel_unbounded(devices::LiquidIoKernel::kCrc, 16);
    // Replace the hardware model: same IPs, different memory feed.
    core::HardwareModel hw(sc.hw.name() + "-whatif",
                           sc.hw.interface_bandwidth(), cmi,
                           sc.hw.line_rate());
    for (core::IpId i = 0; i < sc.hw.ip_count(); ++i) {
        core::IpSpec spec = sc.hw.ip(i);
        // The crypto units' data feed ceiling follows the CMI provision.
        if (spec.kind == core::IpKind::kAccelerator
            && !spec.roofline.ceilings().empty()
            && spec.roofline.ceilings()[0].name == "cmi") {
            spec.roofline = core::ExtendedRoofline(
                spec.roofline.engine(), {{"cmi", cmi}});
        }
        hw.add_ip(std::move(spec));
    }
    sc.hw = std::move(hw);
    return sc;
}

} // namespace

int
main()
{
    bench::banner("Ablation A",
                  "CRC throughput (MOPS) vs access granularity when the "
                  "CMI is provisioned at 25/50/100/200 Gbps");
    {
        bench::header(
            {"CMI", "512B", "2KB", "4KB", "8KB", "16KB", "knee(KB)"});
        for (double cmi_gbps : {25.0, 50.0, 100.0, 200.0}) {
            const auto sc =
                scenario_with_cmi(Bandwidth::from_gbps(cmi_gbps));
            const core::Model model(sc.hw);
            auto mops = [&](double g) {
                const auto t = core::TrafficProfile::fixed(
                    Bytes{g}, Bandwidth::from_gbps(300.0));
                return model.throughput(sc.graph, t).capacity
                           .bytes_per_sec()
                    / g / 1e6;
            };
            // Knee: first power-of-two granularity losing >= 5% of peak.
            const double peak = mops(512.0);
            double knee = 32.0;
            for (double g = 1024.0; g <= 32768.0; g *= 2.0) {
                if (mops(g) < 0.95 * peak) {
                    knee = g / 1024.0;
                    break;
                }
            }
            bench::row(std::to_string(static_cast<int>(cmi_gbps)) + "G",
                       {mops(512.0), mops(2048.0), mops(4096.0),
                        mops(8192.0), mops(16384.0), knee});
        }
        bench::footnote("Doubling the CMI pushes the cliff out one "
                        "granularity octave; the engine itself caps the "
                        "flat region.");
    }

    bench::banner("Ablation B",
                  "Is a 2x faster AES engine worth it? Achieved Gbps at "
                  "25 GbE line rate, stock vs upgraded");
    {
        bench::header({"pktsize", "stock", "2x-engine", "speedup%"});
        for (Bytes size : traffic::standard_packet_sizes()) {
            const auto stock =
                apps::make_inline_accel(devices::LiquidIoKernel::kAes, 16);
            auto upgraded = stock;
            {
                core::HardwareModel hw(
                    "liquidio-aes2x", stock.hw.interface_bandwidth(),
                    stock.hw.memory_bandwidth(), stock.hw.line_rate());
                for (core::IpId i = 0; i < stock.hw.ip_count(); ++i) {
                    core::IpSpec spec = stock.hw.ip(i);
                    if (spec.name == "aes") {
                        core::ServiceModel engine = spec.roofline.engine();
                        engine.fixed_cost = engine.fixed_cost / 2.0;
                        spec.roofline = core::ExtendedRoofline(
                            engine, spec.roofline.ceilings());
                    }
                    hw.add_ip(std::move(spec));
                }
                upgraded.hw = std::move(hw);
            }
            const auto traffic = core::TrafficProfile::fixed(
                size, Bandwidth::from_gbps(25.0));
            const double base = core::Model(stock.hw)
                                    .throughput(stock.graph, traffic)
                                    .capacity.gbps();
            const double fast = core::Model(upgraded.hw)
                                    .throughput(upgraded.graph, traffic)
                                    .capacity.gbps();
            bench::row(
                std::to_string(static_cast<int>(size.bytes())) + "B",
                {base, fast, 100.0 * (fast / base - 1.0)});
        }
        bench::footnote(
            "The upgrade pays (+~100%) below ~1 KB where the engine op "
            "rate binds; at MTU the 25 GbE port already binds and the "
            "faster engine buys nothing — the model answers the question "
            "for free.");
    }

    bench::banner("Ablation C",
                  "Same card behind a 50 GbE port: which engines keep up?");
    {
        bench::header({"engine", "25GbE", "50GbE", "gain%"});
        for (auto k :
             {devices::LiquidIoKernel::kCrc, devices::LiquidIoKernel::kAes,
              devices::LiquidIoKernel::kMd5,
              devices::LiquidIoKernel::kSms4}) {
            const auto traffic = core::TrafficProfile::fixed(
                Bytes{1500.0}, Bandwidth::from_gbps(50.0));
            const auto stock = apps::make_inline_accel(k, 16);
            auto fat = apps::make_inline_accel(k, 16);
            fat.hw.set_line_rate(Bandwidth::from_gbps(50.0));
            const double base = core::Model(stock.hw)
                                    .throughput(stock.graph, traffic)
                                    .capacity.gbps();
            const double wide = core::Model(fat.hw)
                                    .throughput(fat.graph, traffic)
                                    .capacity.gbps();
            bench::row(devices::to_string(k),
                       {base, wide, 100.0 * (wide / base - 1.0)});
        }
        bench::footnote(
            "Only CRC exploits a 50 GbE port at MTU before its engine "
            "(or the NIC cores) bind — port upgrades without engine "
            "upgrades strand bandwidth.");
    }
    return 0;
}
