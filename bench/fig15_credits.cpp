/**
 * @file
 * Figure 15: PANIC bandwidth vs. provisioned credits for the four mixed
 * traffic profiles (Model 1 "Pipelined Chain").
 *
 * Paper result: bandwidth rises with credits and saturates; LogNIC's
 * node-partition analysis suggests the minimal provision 5/4/4/4 for
 * profiles 1-4, and fewer credits also cut latency (21.8% for profile 1 at
 * 5 vs 8 credits).
 */
#include "bench_util.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/sim/panic.hpp"
#include "lognic/traffic/profiles.hpp"

using namespace lognic;

int
main()
{
    bench::banner("Figure 15",
                  "PANIC: measured bandwidth (Gbps) vs credits for four "
                  "mixed traffic profiles (Model 1 chain)");

    const Bandwidth offered = Bandwidth::from_gbps(90.0);
    std::vector<std::string> cols{"series"};
    for (int c = 1; c <= 8; ++c)
        cols.push_back(std::to_string(c) + "cr");
    cols.push_back("suggest");
    bench::header(cols);

    for (int profile = 1; profile <= 4; ++profile) {
        const auto tp = traffic::panic_profile(profile, offered);
        const std::uint32_t suggested = apps::lognic_optimal_credits(tp);

        std::vector<double> sim_bw;
        std::vector<double> model_bw;
        for (std::uint32_t credits = 1; credits <= 8; ++credits) {
            const auto cfg = apps::make_panic_pipelined_chain(credits);
            sim::SimOptions opts;
            opts.duration = 0.02;
            opts.seed = 17;
            // PANIC compute units are fixed-function hardware pipelines.
            opts.exponential_service = false;
            const auto res = sim::simulate_panic(cfg, tp, opts);
            sim_bw.push_back(res.delivered.gbps());
            model_bw.push_back(std::min(
                apps::lognic_panic_chain_capacity(tp, credits).gbps(),
                offered.gbps()));
        }
        // Latency comparison under the same saturating load: past the
        // knee, extra credits only buy buffer occupancy.
        auto latency_at = [&](std::uint32_t credits) {
            const auto cfg = apps::make_panic_pipelined_chain(credits);
            sim::SimOptions opts;
            opts.duration = 0.05;
            opts.seed = 29;
            opts.exponential_service = false;
            return sim::simulate_panic(cfg, tp, opts)
                .mean_latency.micros();
        };
        const double lat_at_suggested = latency_at(suggested);
        const double lat_at_8 = latency_at(8);
        std::vector<double> sim_row = sim_bw;
        sim_row.push_back(static_cast<double>(suggested));
        std::vector<double> model_row = model_bw;
        model_row.push_back(static_cast<double>(suggested));
        bench::row("TP" + std::to_string(profile) + "/sim", sim_row);
        bench::row("TP" + std::to_string(profile) + "/model", model_row);
        std::printf("%14s  latency @suggested %.2fus vs @8cr %.2fus "
                    "(drop %.1f%%)\n",
                    ("TP" + std::to_string(profile)).c_str(),
                    lat_at_suggested, lat_at_8,
                    100.0 * (1.0 - lat_at_suggested / lat_at_8));
    }

    bench::footnote(
        "Paper: suggested credits 5/4/4/4; profile 1 sees a 21.8% latency "
        "drop at 5 credits vs the default 8. Service-time variability and "
        "fabric-port contention make the measured knee softer than the "
        "analytic credit window.");
    return 0;
}
