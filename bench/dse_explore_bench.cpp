/**
 * @file
 * Exploration-throughput benchmark, the regression gate for the dse
 * search loop and its feasibility-pruning fast path. One workload, run
 * twice over the identical design space:
 *
 *  - `explore_unpruned`: exhaustive search with --prune=off — every
 *    config pays a model solve;
 *  - `explore_pruned`: the same search with --prune=on — configs the
 *    Pruner proves infeasible skip the solve but still flow through the
 *    serial batch coordinator, so both runs produce byte-identical
 *    lognic-dse-frontier/1 reports (asserted here; the binary exits
 *    non-zero on a mismatch).
 *
 * The space is the NF-chain placement study widened to > 10^5
 * combinations (placement x line rate x interface x memory x offered
 * rate) under a binding throughput floor, so most of the grid is
 * provably infeasible without a solve. Each mode runs `--repeat` times
 * (default 3) and reports the best (max configs/sec) pass. Results land
 * in `BENCH_dse.json` (override with `--out PATH`):
 *
 *     {"schema": "lognic-bench-dse/1", "space_combinations": ...,
 *      "frontier_identical": true, "solve_ratio": ..., "speedup": ...,
 *      "benchmarks": [
 *        {"name": ..., "configs": ..., "solves": ..., "frontier_size":
 *         ..., "wall_seconds": ..., "configs_per_sec": ...}, ...]}
 *
 * CI uploads the file as an artifact, checks frontier_identical, gates
 * solve_ratio <= 0.5 and speedup >= 2, and applies a coarse absolute
 * configs/sec floor (see .github/workflows/ci.yml). The search is
 * seed-deterministic, so config/solve counts are identical across runs
 * and machines — only the wall clock varies.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/dse/explorer.hpp"
#include "lognic/dse/report.hpp"
#include "lognic/io/serialize.hpp"

using namespace lognic;

namespace {

struct BenchResult {
    std::string name;
    std::uint64_t configs{0};
    std::uint64_t solves{0};
    std::uint64_t frontier_size{0};
    double wall_seconds{0.0};
    std::string report_json; ///< for the cross-mode identity check

    double configs_per_sec() const
    {
        return wall_seconds > 0.0
            ? static_cast<double>(configs) / wall_seconds
            : 0.0;
    }
};

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

std::vector<double>
levels(double first, double step, std::size_t count)
{
    std::vector<double> out;
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(first + step * static_cast<double>(i));
    return out;
}

/**
 * The placement study widened to 102,400 combinations: 16 placements x
 * 10 line rates x 8 interface widths x 4 memory widths x 20 offered
 * rates. The traffic knob is added last so the exhaustive odometer
 * varies it fastest — the incremental Materializer's cheapest patch.
 */
dse::DesignSpace
make_space()
{
    const auto built = apps::make_nf_chain(apps::arm_only_placement());
    io::Scenario base{built.hw, built.graph,
                      core::TrafficProfile::fixed(
                          Bytes{1500.0}, Bandwidth::from_gbps(50.0))};
    dse::DesignSpace space(std::move(base));
    space.add("placement.nf_chain", {});
    space.add("line_rate_gbps", levels(10.0, 10.0, 10));
    space.add("interface_gbps", levels(25.0, 25.0, 8));
    space.add("memory_gbps", levels(50.0, 50.0, 4));
    space.add("traffic.rate_gbps", levels(5.0, 5.0, 20));
    return space;
}

BenchResult
run_explore(const dse::DesignSpace& space, dse::PruneMode mode)
{
    const std::vector<dse::ObjectiveSpec> objectives{
        dse::objective_from_name("throughput_gbps"),
        dse::objective_from_name("p99_latency_us")};
    // The binding box constraint: a 20 Gb/s throughput floor. The fully
    // ARM-resident chain tops out near 10 Gb/s and full offload near
    // 21.7 Gb/s, so only offload-heavy placements on wide links at high
    // offered rates survive — most of the grid is provably infeasible
    // from the term tables alone.
    dse::Constraint floor;
    floor.metric = "throughput_gbps";
    floor.lower = 20.0;
    const std::vector<dse::Constraint> constraints{floor};

    dse::ExploreOptions opts;
    opts.strategy = dse::Strategy::kExhaustive;
    opts.exhaustive_limit = 1u << 17;
    opts.cache_capacity = 1u << 17;
    opts.des.enabled = false;
    opts.prune = mode;

    const double start = now_seconds();
    const dse::FrontierReport report =
        dse::explore(space, objectives, constraints, opts);
    const double wall = now_seconds() - start;

    BenchResult r;
    r.name = mode == dse::PruneMode::kOff ? "explore_unpruned"
                                          : "explore_pruned";
    r.configs = report.requests;
    r.solves = report.solves;
    r.frontier_size = report.frontier.size();
    r.wall_seconds = wall;
    r.report_json = dse::frontier_report_to_json(report).dump(2);
    return r;
}

/// Best-of-N: keep the pass with the highest configs/sec.
template <typename F>
BenchResult
best_of(int repeats, F&& run)
{
    BenchResult best = run();
    for (int i = 1; i < repeats; ++i) {
        BenchResult r = run();
        if (r.configs_per_sec() > best.configs_per_sec())
            best = r;
    }
    return best;
}

void
write_json(const std::string& path, const std::vector<BenchResult>& results,
           std::uint64_t combinations, bool identical, double solve_ratio,
           double speedup)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "dse_explore_bench: cannot open '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(f,
                 "{\n  \"schema\": \"lognic-bench-dse/1\",\n"
                 "  \"space_combinations\": %llu,\n"
                 "  \"frontier_identical\": %s,\n"
                 "  \"solve_ratio\": %.6f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"benchmarks\": [\n",
                 static_cast<unsigned long long>(combinations),
                 identical ? "true" : "false", solve_ratio, speedup);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult& r = results[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"configs\": %llu, "
                     "\"solves\": %llu, \"frontier_size\": %llu, "
                     "\"wall_seconds\": %.6f, "
                     "\"configs_per_sec\": %.1f}%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.configs),
                     static_cast<unsigned long long>(r.solves),
                     static_cast<unsigned long long>(r.frontier_size),
                     r.wall_seconds, r.configs_per_sec(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out = "BENCH_dse.json";
    int repeats = 3;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--out") == 0) {
            out = argv[i + 1];
        } else if (std::strcmp(argv[i], "--repeat") == 0) {
            repeats = std::max(1, std::atoi(argv[i + 1]));
        } else {
            std::fprintf(stderr,
                         "usage: dse_explore_bench [--out PATH] "
                         "[--repeat N]\n");
            return 2;
        }
    }

    const dse::DesignSpace space = make_space();

    // Warmup pass (untimed) so page faults and lazy init are off the
    // clock; the pruned mode is the cheap one.
    (void)run_explore(space, dse::PruneMode::kOn);

    const BenchResult unpruned = best_of(
        repeats, [&] { return run_explore(space, dse::PruneMode::kOff); });
    const BenchResult pruned = best_of(
        repeats, [&] { return run_explore(space, dse::PruneMode::kOn); });

    // The pruning contract: identical report bytes, strictly fewer
    // solves. A violation is a correctness bug, not a slow pass.
    const bool identical = unpruned.report_json == pruned.report_json;
    const double solve_ratio = unpruned.solves > 0
        ? static_cast<double>(pruned.solves)
              / static_cast<double>(unpruned.solves)
        : 1.0;
    const double speedup = unpruned.configs_per_sec() > 0.0
        ? pruned.configs_per_sec() / unpruned.configs_per_sec()
        : 0.0;

    std::printf("%-18s %10s %10s %10s %14s\n", "benchmark", "configs",
                "solves", "wall_s", "configs/sec");
    for (const BenchResult* r : {&unpruned, &pruned})
        std::printf("%-18s %10llu %10llu %10.4f %14.0f\n", r->name.c_str(),
                    static_cast<unsigned long long>(r->configs),
                    static_cast<unsigned long long>(r->solves),
                    r->wall_seconds, r->configs_per_sec());
    std::printf("\nsolve ratio %.4f, speedup %.2fx, frontier %s\n",
                solve_ratio, speedup,
                identical ? "identical" : "MISMATCH");

    write_json(out, {unpruned, pruned}, space.combinations(), identical,
               solve_ratio, speedup);
    std::printf("wrote %s\n", out.c_str());

    if (!identical) {
        std::fprintf(stderr,
                     "dse_explore_bench: pruned and unpruned frontier "
                     "reports differ\n");
        return 1;
    }
    return 0;
}
