/**
 * @file
 * google-benchmark microbenchmark of the design-space explorer's hot
 * loop: model-oracle evaluation with and without the sharded memo cache,
 * and a full mutation-strategy search over the NF-placement space.
 *
 * Local-mutation search re-proposes the neighbors of a stable frontier
 * round after round, so the memo hit rate — not the model solve — decides
 * campaign wall-clock. CI runs this binary with
 * --benchmark_out=BENCH_dse.json and archives the result, so cache or
 * evaluator regressions show up in the artifacts.
 */
#include <benchmark/benchmark.h>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/dse/explorer.hpp"
#include "lognic/dse/spec.hpp"
#include "lognic/io/json.hpp"

using namespace lognic;

namespace {

dse::ExploreSpec
make_spec()
{
    return dse::explore_spec_from_json(
        io::Json::parse(dse::sample_explore_spec()));
}

/// Raw model-oracle solves: the cost a memo hit avoids.
void
BM_evaluate_config(benchmark::State& state)
{
    const dse::ExploreSpec spec = make_spec();
    dse::Config c{0};
    std::uint32_t level = 0;
    for (auto _ : state) {
        c[0] = level;
        level = (level + 1) % 16;
        benchmark::DoNotOptimize(dse::evaluate_config(
            spec.space, c, spec.objectives, spec.constraints));
    }
}
BENCHMARK(BM_evaluate_config);

/// Exhaustive search over all 16 placements, DES validation off: the
/// pure search + frontier-extraction path.
void
BM_explore_exhaustive(benchmark::State& state)
{
    dse::ExploreSpec spec = make_spec();
    spec.options.des.enabled = false;
    spec.options.threads = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(dse::explore(
            spec.space, spec.objectives, spec.constraints, spec.options));
    }
}
BENCHMARK(BM_explore_exhaustive)->Arg(1)->Arg(4);

/// Mutation search: the memo-heavy strategy (stable-frontier neighbor
/// revisits hit the cache every round).
void
BM_explore_mutation(benchmark::State& state)
{
    dse::ExploreSpec spec = make_spec();
    spec.options.strategy = dse::Strategy::kMutation;
    spec.options.des.enabled = false;
    spec.options.budget = 128;
    spec.options.population = 8;
    std::uint64_t hits = 0;
    for (auto _ : state) {
        const auto report = dse::explore(
            spec.space, spec.objectives, spec.constraints, spec.options);
        hits += report.cache.hits;
        benchmark::DoNotOptimize(report);
    }
    state.counters["cache_hits_per_run"] = benchmark::Counter(
        static_cast<double>(hits), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_explore_mutation);

} // namespace

BENCHMARK_MAIN();
