/**
 * @file
 * Figure 6: NVMe-oF target latency vs. throughput for three I/O profiles
 * (4KB random read, 128KB random read, 4KB sequential write) on the
 * Stingray JBOF.
 *
 * Pipeline reproduced from the paper: (1) characterize the opaque SSD by
 * sweeping load, (2) curve-fit the LogNIC IP parameters, (3) predict the
 * end-to-end latency/throughput curve with the model, (4) compare against
 * the "testbed" (the packet-level simulator driving the same execution
 * graph). Paper errors: 0.89% / 0.24% / 2.75%.
 */
#include <cmath>

#include "bench_util.hpp"
#include "lognic/apps/nvmeof.hpp"
#include "lognic/core/model.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

int
main()
{
    bench::banner("Figure 6",
                  "NVMe-oF target: mean latency (us) vs throughput (GB/s) "
                  "for three I/O profiles");

    const ssd::SsdGroundTruth drive;
    const std::vector<traffic::IoWorkload> workloads{
        traffic::random_read_4k(), traffic::random_read_128k(),
        traffic::sequential_write_4k()};

    bench::header({"profile", "load%", "thr(GB/s)", "sim(us)", "model(us)",
                   "err%"});

    for (const auto& workload : workloads) {
        const auto calib = ssd::calibrate(drive.characterize(workload, 14),
                                          workload.block_size);
        const auto sc = apps::make_nvmeof_target(calib, workload);
        const auto testbed = apps::make_nvmeof_testbed(drive, workload);
        const core::Model model(sc.hw);

        double err_sum = 0.0;
        int err_count = 0;
        for (double frac : {0.2, 0.4, 0.6, 0.8, 0.9}) {
            const auto traffic = core::TrafficProfile::fixed(
                workload.block_size, calib.capacity * frac);
            const auto rep = model.latency(sc.graph, traffic);

            sim::SimOptions opts;
            opts.duration = workload.block_size.bytes() > 1e5 ? 0.4 : 0.1;
            opts.seed = 5;
            const auto res =
                sim::simulate(testbed.hw, testbed.graph, traffic, opts);

            const double err = 100.0
                * std::abs(rep.mean.seconds()
                           - res.mean_latency.seconds())
                / res.mean_latency.seconds();
            err_sum += err;
            ++err_count;
            bench::row(workload.name,
                       {100.0 * frac,
                        res.delivered.gigabytes_per_sec(),
                        res.mean_latency.micros(), rep.mean.micros(), err});
        }
        std::printf("%14s  mean model-vs-sim error: %.2f%%\n\n",
                    workload.name.c_str(),
                    err_sum / static_cast<double>(err_count));
    }

    bench::footnote(
        "Paper: predicted differences 0.89% (4KB-RRD), 0.24% (128KB-RRD), "
        "2.75% (4KB-SWR); latency hockey-sticks toward saturation.");
    return 0;
}
