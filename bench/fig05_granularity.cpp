/**
 * @file
 * Figure 5: accelerator throughput (MOPS) vs. data-access granularity for
 * CRC, 3DES, MD5, and HFA on the LiquidIO-II CN2360.
 *
 * Paper result: throughput is flat until ~4 KB, then drops as the engine's
 * data feed (CMI 50 Gbps for on-chip crypto, I/O interconnect 40 Gbps for
 * HFA) becomes the bottleneck; at 16 KB the engines reach only
 * 13.6 / 17.3 / 21.2 / 25.8 % of their peaks.
 *
 * The microbenchmark feeds the accelerators from on-card memory, so the
 * scenario uses the unbounded-ingress variant (the 25 GbE port must not cap
 * the sweep).
 *
 * Accepts `--threads N` to fan the 24 simulated (kernel x granularity)
 * points across the runner; output is byte-identical for any N.
 */
#include "bench_util.hpp"
#include "lognic/apps/inline_accel.hpp"
#include "lognic/core/model.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

int
main(int argc, char** argv)
{
    const std::size_t threads = bench::threads_arg(argc, argv);
    bench::banner("Figure 5",
                  "Accelerator throughput (MOPS) vs data access granularity "
                  "(1KB traffic accumulated to the access size)");

    const std::vector<double> granularities{512.0, 1024.0, 2048.0, 4096.0,
                                            8192.0, 16384.0};
    const std::vector<devices::LiquidIoKernel> kernels{
        devices::LiquidIoKernel::kCrc, devices::LiquidIoKernel::k3Des,
        devices::LiquidIoKernel::kMd5, devices::LiquidIoKernel::kHfa};

    bench::header({"series", "512B", "1KB", "2KB", "4KB", "8KB", "16KB",
                   "pct@16KB"});

    runner::Sweep sweep;
    for (const auto kernel : kernels) {
        const auto sc = apps::make_inline_accel_unbounded(kernel, 16);
        for (double g : granularities) {
            sim::SimOptions opts;
            opts.duration = 0.004;
            sweep.add(runner::SweepPoint{
                std::string(devices::to_string(kernel)) + "/"
                    + std::to_string(static_cast<int>(g)) + "B",
                sc.hw, sc.graph,
                core::TrafficProfile::fixed(Bytes{g},
                                            Bandwidth::from_gbps(200.0)),
                opts});
        }
    }
    runner::SweepOptions ropts;
    ropts.threads = threads;
    ropts.replications = 1;
    ropts.root_seed = 42;
    const auto results = sweep.run(ropts);

    for (std::size_t k = 0; k < kernels.size(); ++k) {
        const auto kernel = kernels[k];
        const auto sc = apps::make_inline_accel_unbounded(kernel, 16);
        const core::Model model(sc.hw);

        std::vector<double> model_mops;
        std::vector<double> sim_mops;
        for (std::size_t i = 0; i < granularities.size(); ++i) {
            const double g = granularities[i];
            const auto traffic = core::TrafficProfile::fixed(
                Bytes{g}, Bandwidth::from_gbps(200.0));
            const auto est = model.throughput(sc.graph, traffic);
            model_mops.push_back(est.capacity.bytes_per_sec() / g / 1e6);

            const auto& pr = results[k * granularities.size() + i];
            sim_mops.push_back(
                pr.stats.delivered_gbps.mean * 1e9 / 8.0 / g / 1e6);
        }
        std::vector<double> model_row = model_mops;
        model_row.push_back(100.0 * model_mops.back() / model_mops.front());
        std::vector<double> sim_row = sim_mops;
        sim_row.push_back(100.0 * sim_mops.back() / sim_mops.front());
        bench::row(std::string(devices::to_string(kernel)) + "/sim", sim_row);
        bench::row(std::string(devices::to_string(kernel)) + "/model",
                   model_row);
    }

    bench::footnote(
        "Paper: pct@16KB = 13.6 (CRC), 17.3 (3DES), 21.2 (MD5), 25.8 (HFA); "
        "drop begins past 4KB as the CMI/IO feed binds.");
    return 0;
}
