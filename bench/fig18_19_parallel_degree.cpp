/**
 * @file
 * Figures 18 & 19: latency and throughput vs. IP4's parallel degree on the
 * modified PANIC Model 3 (paths IP1->IP3, IP1->IP4, IP2->IP4) for two
 * traffic splits of IP1's output: 50%/50% and 80%/20%.
 *
 * Paper result: throughput rises with the parallel degree and saturates;
 * the optimizer suggests degree 6 for the 50/50 split and 4 for 80/20.
 *
 * Accepts `--threads N`: the 16 simulated design points fan out over the
 * runner's thread pool; per-point seeds derive from the point index, so
 * output is byte-identical for any N.
 */
#include "bench_util.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/core/model.hpp"
#include "lognic/runner/sweep.hpp"
#include "lognic/sim/nic_simulator.hpp"

using namespace lognic;

int
main(int argc, char** argv)
{
    const std::size_t threads = bench::threads_arg(argc, argv);
    bench::banner("Figures 18 & 19",
                  "PANIC Model-3: latency (us) and throughput (Gbps) vs "
                  "IP4 parallel degree for two traffic splits");

    const auto traffic = core::TrafficProfile::fixed(
        Bytes{1500.0}, Bandwidth::from_gbps(100.0));

    std::vector<std::string> cols{"series"};
    for (int d = 1; d <= 8; ++d)
        cols.push_back("D=" + std::to_string(d));
    cols.push_back("D*");
    bench::header(cols);

    const std::vector<double> splits{0.5, 0.8};

    // All (split x degree) simulation points go through one sweep.
    runner::Sweep sweep;
    for (double split : splits) {
        for (std::uint32_t d = 1; d <= 8; ++d) {
            const auto sc = apps::make_panic_hybrid(split, d);
            sim::SimOptions opts;
            opts.duration = 0.02;
            sweep.add(runner::SweepPoint{
                "split=" + std::to_string(split)
                    + ",D=" + std::to_string(d),
                sc.hw, sc.graph, traffic, opts});
        }
    }
    runner::SweepOptions ropts;
    ropts.threads = threads;
    ropts.replications = 1;
    ropts.root_seed = 13;
    const auto results = sweep.run(ropts);

    for (std::size_t s = 0; s < splits.size(); ++s) {
        const double split = splits[s];
        const std::uint32_t d_opt =
            apps::lognic_opt_parallelism(split, traffic);

        std::vector<double> sim_thr;
        std::vector<double> sim_lat;
        std::vector<double> model_thr;
        for (std::uint32_t d = 1; d <= 8; ++d) {
            const auto& pr = results[s * 8 + (d - 1)];
            sim_thr.push_back(pr.stats.delivered_gbps.mean);
            sim_lat.push_back(pr.stats.mean_latency_us.mean);
            const auto sc = apps::make_panic_hybrid(split, d);
            const core::Model model(sc.hw);
            model_thr.push_back(model.latency(sc.graph, traffic)
                                    .per_class[0]
                                    .goodput.gbps());
        }
        const std::string name = split == 0.5 ? "50/50" : "80/20";
        auto with_opt = [&](std::vector<double> v) {
            v.push_back(static_cast<double>(d_opt));
            return v;
        };
        bench::row(name + "/lat-sim", with_opt(sim_lat));
        bench::row(name + "/thr-sim", with_opt(sim_thr));
        bench::row(name + "/thr-model", with_opt(model_thr));
    }

    bench::footnote(
        "Paper: optimal parallel degree 6 (50/50 split) and 4 (80/20); "
        "latency falls then flattens, throughput rises then saturates.");
    return 0;
}
