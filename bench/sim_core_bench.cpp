/**
 * @file
 * Microbenchmark of the DES hot path, the regression gate for simulator
 * performance work. Three workloads exercise the three layers the
 * zero-allocation refactor touches:
 *
 *  - `event_churn`: raw EventQueue schedule/dispatch throughput — 64
 *    self-rescheduling timers keep a live heap while every dispatched
 *    event schedules its successor (the pure kernel cost, no packets);
 *  - `fig10_pktsweep`: the Figure-10 inline-accelerator scenario across
 *    packet sizes — NicSimulator's slab/queue/link path under line rate;
 *  - `panic_chain`: the Figure-15 PANIC pipelined chain at 8 credits —
 *    PanicSim's scheduler/credit/fabric path.
 *
 * Each workload runs `--repeat` times (default 3) and reports the best
 * (max events/sec) pass, so a background hiccup cannot fail a regression
 * gate. Results land in `BENCH_sim.json` (override with `--out PATH`):
 *
 *     {"schema": "lognic-bench-sim/1", "benchmarks": [
 *        {"name": ..., "events": ..., "wall_seconds": ...,
 *         "events_per_sec": ...}, ...]}
 *
 * CI uploads the file as an artifact and applies a coarse absolute floor
 * (see .github/workflows/ci.yml); PR-to-PR comparisons are done on the
 * archived artifacts. The simulated workloads are seed-deterministic, so
 * event counts are identical across runs and machines — only the wall
 * clock varies.
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "lognic/apps/inline_accel.hpp"
#include "lognic/apps/panic_models.hpp"
#include "lognic/sim/event_queue.hpp"
#include "lognic/sim/nic_simulator.hpp"
#include "lognic/sim/panic.hpp"
#include "lognic/traffic/profiles.hpp"

using namespace lognic;

namespace {

struct BenchResult {
    std::string name;
    std::uint64_t events{0};
    double wall_seconds{0.0};

    double events_per_sec() const
    {
        return wall_seconds > 0.0
            ? static_cast<double>(events) / wall_seconds
            : 0.0;
    }
};

double
now_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Self-rescheduling timer: every invocation schedules a copy of itself a
 * pseudo-random (xorshift, no lognic RNG) gap ahead, so the heap stays at
 * a constant population while every dispatch costs one schedule_in. This
 * is deliberately a trivially-copyable functor, the shape the typed event
 * queue stores inline.
 */
struct ChurnTimer {
    sim::EventQueue* q;
    std::uint64_t* remaining;
    std::uint64_t state;

    void operator()()
    {
        if (*remaining == 0)
            return;
        --*remaining;
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        const double gap =
            1e-6 * (1.0 + static_cast<double>(state % 1024) / 1024.0);
        q->schedule_in(gap, *this);
    }
};

BenchResult
run_event_churn(std::uint64_t total_events)
{
    sim::EventQueue q;
    std::uint64_t remaining = total_events;
    for (std::uint64_t i = 0; i < 64; ++i)
        q.schedule_at(static_cast<double>(i) * 1e-7,
                      ChurnTimer{&q, &remaining, i * 2654435761u + 1});
    const double start = now_seconds();
    q.run_until(1e18);
    const double wall = now_seconds() - start;
    return BenchResult{"event_churn", q.executed(), wall};
}

BenchResult
run_fig10_sweep()
{
    const auto sc = apps::make_inline_accel(devices::LiquidIoKernel::kCrc, 16);
    std::uint64_t events = 0;
    double wall = 0.0;
    for (const double size : {64.0, 256.0, 1024.0, 1500.0}) {
        const auto tp = core::TrafficProfile::fixed(
            Bytes{size}, Bandwidth::from_gbps(25.0));
        sim::SimOptions opts;
        opts.duration = 0.004;
        opts.seed = 42;
        const double start = now_seconds();
        const auto res = sim::simulate(sc.hw, sc.graph, tp, opts);
        wall += now_seconds() - start;
        events += res.events_executed;
    }
    return BenchResult{"fig10_pktsweep", events, wall};
}

BenchResult
run_panic_chain()
{
    const auto cfg = apps::make_panic_pipelined_chain(8);
    const auto tp =
        traffic::panic_profile(1, Bandwidth::from_gbps(90.0));
    sim::SimOptions opts;
    opts.duration = 0.02;
    opts.seed = 17;
    opts.exponential_service = false;
    const double start = now_seconds();
    const auto res = sim::simulate_panic(cfg, tp, opts);
    const double wall = now_seconds() - start;
    return BenchResult{"panic_chain", res.events_executed, wall};
}

/// Best-of-N: keep the pass with the highest events/sec.
template <typename F>
BenchResult
best_of(int repeats, F&& run)
{
    BenchResult best = run();
    for (int i = 1; i < repeats; ++i) {
        BenchResult r = run();
        if (r.events_per_sec() > best.events_per_sec())
            best = r;
    }
    return best;
}

void
write_json(const std::string& path, const std::vector<BenchResult>& results)
{
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "sim_core_bench: cannot open '%s'\n",
                     path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n  \"schema\": \"lognic-bench-sim/1\",\n"
                    "  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BenchResult& r = results[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"events\": %llu, "
                     "\"wall_seconds\": %.6f, \"events_per_sec\": %.1f}%s\n",
                     r.name.c_str(),
                     static_cast<unsigned long long>(r.events),
                     r.wall_seconds, r.events_per_sec(),
                     i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
}

} // namespace

int
main(int argc, char** argv)
{
    std::string out = "BENCH_sim.json";
    std::uint64_t churn_events = 2'000'000;
    int repeats = 3;
    for (int i = 1; i + 1 < argc; i += 2) {
        if (std::strcmp(argv[i], "--out") == 0) {
            out = argv[i + 1];
        } else if (std::strcmp(argv[i], "--churn-events") == 0) {
            churn_events = std::strtoull(argv[i + 1], nullptr, 10);
        } else if (std::strcmp(argv[i], "--repeat") == 0) {
            repeats = std::max(1, std::atoi(argv[i + 1]));
        } else {
            std::fprintf(stderr,
                         "usage: sim_core_bench [--out PATH] "
                         "[--churn-events N] [--repeat N]\n");
            return 2;
        }
    }

    // Warmup pass (untimed) so page faults and lazy init are off the clock.
    (void)run_event_churn(churn_events / 20 + 1);

    std::vector<BenchResult> results;
    results.push_back(
        best_of(repeats, [&] { return run_event_churn(churn_events); }));
    results.push_back(best_of(repeats, run_fig10_sweep));
    results.push_back(best_of(repeats, run_panic_chain));

    std::printf("%-16s %12s %10s %14s\n", "benchmark", "events", "wall_s",
                "events/sec");
    for (const BenchResult& r : results)
        std::printf("%-16s %12llu %10.4f %14.0f\n", r.name.c_str(),
                    static_cast<unsigned long long>(r.events),
                    r.wall_seconds, r.events_per_sec());

    write_json(out, results);
    std::printf("\nwrote %s\n", out.c_str());
    return 0;
}
