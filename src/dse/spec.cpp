#include "lognic/dse/spec.hpp"

#include <cmath>
#include <stdexcept>

#include "lognic/apps/nf_chain.hpp"
#include "lognic/io/checkpoint.hpp"
#include "lognic/io/serialize.hpp"

namespace lognic::dse {
namespace {

[[noreturn]] void
bad_spec(const std::string& why)
{
    throw std::runtime_error("explore spec: " + why);
}

/// Accepts a plain JSON number or a hex string (the checkpoint u64
/// convention), so seeds survive a round-trip above 2^53.
std::uint64_t
u64_field(const io::Json& j, const std::string& key, std::uint64_t fallback)
{
    if (!j.contains(key))
        return fallback;
    const io::Json& v = j.at(key);
    if (v.is_string())
        return io::parse_u64(v.as_string(), "explore spec field '" + key
                                                + "'");
    const double n = v.as_number();
    if (!(n >= 0) || n != std::floor(n))
        bad_spec("field '" + key + "' must be a non-negative integer");
    return static_cast<std::uint64_t>(n);
}

std::size_t
size_field(const io::Json& j, const std::string& key, std::size_t fallback)
{
    return static_cast<std::size_t>(
        u64_field(j, key, static_cast<std::uint64_t>(fallback)));
}

io::Scenario
base_scenario(const io::Json& doc, const io::Json& dse)
{
    const bool has_scenario = doc.contains("scenario");
    const bool has_base = dse.contains("base");
    if (has_scenario == has_base)
        bad_spec("exactly one of \"scenario\" / dse.\"base\" required");
    if (has_scenario)
        return io::scenario_from_json(doc.at("scenario"));
    const std::string base = dse.at("base").as_string();
    if (base != "nf_chain")
        bad_spec("unknown base '" + base + "' (nf_chain)");
    const auto built = apps::make_nf_chain(apps::arm_only_placement());
    double rate_gbps = 50.0;
    double packet_bytes = 1500.0;
    if (dse.contains("traffic")) {
        const io::Json& t = dse.at("traffic");
        rate_gbps = t.number_or("rate_gbps", rate_gbps);
        packet_bytes = t.number_or("packet_bytes", packet_bytes);
    }
    if (!(rate_gbps > 0.0) || !(packet_bytes > 0.0))
        bad_spec("traffic rate_gbps and packet_bytes must be > 0");
    io::Scenario sc{built.hw, built.graph,
                    core::TrafficProfile::fixed(
                        Bytes{packet_bytes},
                        Bandwidth::from_gbps(rate_gbps))};
    return sc;
}

} // namespace

ExploreSpec
explore_spec_from_json(const io::Json& doc)
{
    if (!doc.contains("dse"))
        bad_spec("missing \"dse\" section");
    const io::Json& dse = doc.at("dse");

    ExploreSpec spec{DesignSpace(base_scenario(doc, dse))};

    if (!dse.contains("knobs") || dse.at("knobs").as_array().empty())
        bad_spec("dse.\"knobs\" must list at least one knob");
    for (const io::Json& k : dse.at("knobs").as_array()) {
        if (k.is_string()) {
            spec.space.add(k.as_string(), {});
            continue;
        }
        const std::string path = k.at("path").as_string();
        std::vector<double> values;
        if (k.contains("values"))
            for (const io::Json& v : k.at("values").as_array())
                values.push_back(v.as_number());
        spec.space.add(path, std::move(values),
                       k.number_or("cost_weight", 0.0));
    }

    if (!dse.contains("objectives")
        || dse.at("objectives").as_array().empty())
        bad_spec("dse.\"objectives\" must list at least one objective");
    for (const io::Json& o : dse.at("objectives").as_array())
        spec.objectives.push_back(objective_from_name(o.as_string()));

    if (dse.contains("constraints")) {
        for (const io::Json& c : dse.at("constraints").as_array()) {
            Constraint con;
            con.metric = c.at("metric").as_string();
            objective_from_name(con.metric); // known-name check
            con.lower = c.number_or("lower", con.lower);
            con.upper = c.number_or("upper", con.upper);
            spec.constraints.push_back(std::move(con));
        }
    }

    ExploreOptions& opts = spec.options;
    if (dse.contains("strategy"))
        opts.strategy = strategy_from_name(dse.at("strategy").as_string());
    if (dse.contains("prune"))
        opts.prune = prune_mode_from_name(dse.at("prune").as_string());
    opts.seed = u64_field(dse, "seed", opts.seed);
    opts.budget = size_field(dse, "budget", opts.budget);
    opts.population = size_field(dse, "population", opts.population);
    opts.generations = size_field(dse, "generations", opts.generations);
    opts.exhaustive_limit =
        u64_field(dse, "exhaustive_limit", opts.exhaustive_limit);
    opts.cache_capacity =
        size_field(dse, "cache_capacity", opts.cache_capacity);
    opts.cache_shards = size_field(dse, "cache_shards", opts.cache_shards);
    if (dse.contains("des")) {
        const io::Json& d = dse.at("des");
        if (d.contains("enabled"))
            opts.des.enabled = d.at("enabled").as_bool();
        opts.des.replications =
            size_field(d, "replications", opts.des.replications);
        opts.des.duration = d.number_or("duration", opts.des.duration);
        opts.des.warmup_fraction =
            d.number_or("warmup_fraction", opts.des.warmup_fraction);
        if (!(opts.des.duration > 0.0))
            bad_spec("des.duration must be > 0");
        if (opts.des.warmup_fraction < 0.0 || opts.des.warmup_fraction >= 1.0)
            bad_spec("des.warmup_fraction must be in [0, 1)");
    }
    return spec;
}

std::string
sample_explore_spec()
{
    io::Json dse;
    dse.set("base", io::Json("nf_chain"));
    io::Json traffic;
    traffic.set("rate_gbps", io::Json(50.0));
    traffic.set("packet_bytes", io::Json(1500.0));
    dse.set("traffic", std::move(traffic));
    io::Json knobs{io::JsonArray{}};
    knobs.push_back(io::Json("placement.nf_chain"));
    dse.set("knobs", std::move(knobs));
    io::Json objectives{io::JsonArray{}};
    objectives.push_back(io::Json("throughput_gbps"));
    objectives.push_back(io::Json("p99_latency_us"));
    dse.set("objectives", std::move(objectives));
    dse.set("strategy", io::Json("exhaustive"));
    dse.set("seed", io::Json(42));
    io::Json des;
    des.set("enabled", io::Json(true));
    des.set("replications", io::Json(2));
    des.set("duration", io::Json(0.005));
    des.set("warmup_fraction", io::Json(0.2));
    dse.set("des", std::move(des));
    io::Json doc;
    doc.set("dse", std::move(dse));
    return doc.dump(2);
}

} // namespace lognic::dse
