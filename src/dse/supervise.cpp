/**
 * @file
 * Exploration supervision: checkpoint-store wiring, fingerprint-verified
 * resume, and periodic publication. The loop structure deliberately
 * mirrors src/ckpt/supervisor.cpp so the two read the same.
 */
#include "lognic/dse/supervise.hpp"

#include <stdexcept>
#include <utility>

#include "lognic/ckpt/store.hpp"
#include "lognic/io/checkpoint.hpp"
#include "lognic/io/serialize.hpp"

namespace lognic::dse {
namespace {

void
log_to(const ckpt::SupervisorOptions& sup, const std::string& message)
{
    if (sup.log)
        sup.log(message);
}

void
validate_options(const ckpt::SupervisorOptions& sup)
{
    if (sup.dir.empty())
        throw std::invalid_argument(
            "supervisor: checkpoint directory must be non-empty");
    if (sup.checkpoint_every == 0)
        throw std::invalid_argument(
            "supervisor: checkpoint_every must be >= 1");
    if (sup.retention == 0)
        throw std::invalid_argument("supervisor: retention must be >= 1");
}

std::string
make_payload(const io::Json& fingerprint, const io::Json& journal)
{
    io::Json doc;
    doc.set("fingerprint", fingerprint);
    doc.set("journal", journal);
    return doc.dump(-1);
}

ckpt::ResumeInfo
resume_into(const ckpt::CheckpointStore& store, const io::Json& fingerprint,
            const ckpt::SupervisorOptions& sup,
            const std::function<void(const io::Json&)>& load)
{
    ckpt::ResumeInfo info;
    if (!sup.resume)
        return info;
    const auto loaded = store.load_latest(&info.rejected);
    for (const auto& r : info.rejected)
        log_to(sup, "checkpoint: skipping " + r.path + ": " + r.reason);
    if (!loaded)
        return info;
    const io::Json doc = io::Json::parse(loaded->payload);
    const std::string want = fingerprint.dump(-1);
    const std::string have = doc.at("fingerprint").dump(-1);
    if (want != have)
        throw std::runtime_error(
            "checkpoint: fingerprint mismatch in '" + store.dir()
            + "': the stored journal belongs to a different campaign "
              "(stored "
            + have + ", running " + want
            + "); point --checkpoint at a fresh directory or rerun the "
              "original spec");
    load(doc.at("journal"));
    info.resumed = true;
    info.generation = loaded->generation;
    log_to(sup, "checkpoint: resumed from generation "
                    + std::to_string(loaded->generation) + " in '"
                    + store.dir() + "'");
    return info;
}

/// Same publisher as src/ckpt/supervisor.cpp: one mutex serializes the
/// completion count, journal serialization, and the store. Lock order is
/// publisher mutex -> journal mutex, never the reverse.
class Publisher {
  public:
    Publisher(ckpt::CheckpointStore& store,
              const ckpt::SupervisorOptions& sup, io::Json fingerprint,
              std::function<io::Json()> journal_json)
        : store_(store), sup_(sup), fingerprint_(std::move(fingerprint)),
          journal_json_(std::move(journal_json))
    {
    }

    void tick()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (++pending_ < sup_.checkpoint_every)
            return;
        pending_ = 0;
        publish_locked();
    }

    void flush()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        pending_ = 0;
        publish_locked();
    }

    std::uint64_t checkpoints() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return checkpoints_;
    }

  private:
    void publish_locked()
    {
        store_.save(make_payload(fingerprint_, journal_json_()));
        ++checkpoints_;
    }

    ckpt::CheckpointStore& store_;
    const ckpt::SupervisorOptions& sup_;
    io::Json fingerprint_;
    std::function<io::Json()> journal_json_;
    mutable std::mutex mutex_;
    std::uint64_t pending_{0};
    std::uint64_t checkpoints_{0};
};

/**
 * Everything that shapes the result stream, hashed or listed verbatim:
 * base scenario, knob grid, objectives, constraints, strategy, seed, and
 * search/DES options. Thread count is excluded on purpose — it may never
 * influence results, so checkpoints are portable across --threads. The
 * prune mode is excluded for the same reason: pruning may never change
 * the result stream, so a journal written under --prune=on resumes
 * cleanly under --prune=off and vice versa.
 */
io::Json
campaign_fingerprint(const DesignSpace& space,
                     const std::vector<ObjectiveSpec>& objectives,
                     const std::vector<Constraint>& constraints,
                     const ExploreOptions& opts)
{
    io::Json fp;
    fp.set("workload", io::Json("explore"));
    fp.set("scenario", io::Json(io::u64_to_hex(io::fnv1a64(
                           io::to_json(space.base()).dump(-1)))));
    std::string knobs;
    for (std::size_t i = 0; i < space.size(); ++i) {
        const Knob& k = space.knob(i);
        knobs += k.name;
        knobs += '=';
        for (double v : k.values)
            knobs += io::double_to_hex(v) + ",";
        knobs += '@' + io::double_to_hex(k.cost_weight) + ';';
    }
    fp.set("knobs", io::Json(io::u64_to_hex(io::fnv1a64(knobs))));
    std::string objs;
    for (const ObjectiveSpec& o : objectives)
        objs += o.name + (o.sense == Sense::kMaximize ? ":max;" : ":min;");
    fp.set("objectives", io::Json(objs));
    std::string cons;
    for (const Constraint& c : constraints)
        cons += c.metric + ":" + io::double_to_hex(c.lower) + ":"
                + io::double_to_hex(c.upper) + ";";
    fp.set("constraints", io::Json(cons));
    fp.set("strategy", io::Json(strategy_name(opts.strategy)));
    fp.set("seed", io::Json(io::u64_to_hex(opts.seed)));
    fp.set("budget", io::Json(static_cast<double>(opts.budget)));
    fp.set("population", io::Json(static_cast<double>(opts.population)));
    fp.set("generations", io::Json(static_cast<double>(opts.generations)));
    io::Json des;
    des.set("enabled", io::Json(opts.des.enabled));
    des.set("replications",
            io::Json(static_cast<double>(opts.des.replications)));
    des.set("duration", io::Json(io::double_to_hex(opts.des.duration)));
    des.set("warmup_fraction",
            io::Json(io::double_to_hex(opts.des.warmup_fraction)));
    fp.set("des", std::move(des));
    return fp;
}

} // namespace

// --- journal entry serialization ----------------------------------------------

io::Json
evaluation_to_json(const Evaluation& e)
{
    io::Json j;
    io::Json objectives{io::JsonArray{}};
    for (double v : e.objectives)
        objectives.push_back(io::Json(io::double_to_hex(v)));
    j.set("objectives", std::move(objectives));
    j.set("feasible", io::Json(e.feasible));
    j.set("finite", io::Json(e.finite));
    j.set("pruned", io::Json(e.pruned));
    j.set("why", io::Json(e.why));
    return j;
}

Evaluation
evaluation_from_json(const io::Json& j)
{
    Evaluation e;
    for (const io::Json& v : j.at("objectives").as_array())
        e.objectives.push_back(
            io::double_from_hex(v.as_string(), "evaluation objective"));
    e.feasible = j.at("feasible").as_bool();
    e.finite = j.at("finite").as_bool();
    // Absent in journals written before pruning existed; those entries
    // were all real solves.
    e.pruned = j.contains("pruned") && j.at("pruned").as_bool();
    e.why = j.at("why").as_string();
    return e;
}

io::Json
des_validation_to_json(const DesValidation& v)
{
    io::Json j;
    j.set("ok", io::Json(v.ok));
    j.set("error", io::Json(v.error));
    j.set("seed", io::Json(io::u64_to_hex(v.seed)));
    j.set("replications", io::Json(io::u64_to_hex(v.replications)));
    j.set("delivered_gbps", io::Json(io::double_to_hex(v.delivered_gbps)));
    j.set("mean_latency_us",
          io::Json(io::double_to_hex(v.mean_latency_us)));
    j.set("p99_latency_us", io::Json(io::double_to_hex(v.p99_latency_us)));
    j.set("drop_rate", io::Json(io::double_to_hex(v.drop_rate)));
    j.set("throughput_disagreement",
          io::Json(io::double_to_hex(v.throughput_disagreement)));
    j.set("p99_disagreement",
          io::Json(io::double_to_hex(v.p99_disagreement)));
    return j;
}

DesValidation
des_validation_from_json(const io::Json& j)
{
    const auto dbl = [&](const char* key) {
        return io::double_from_hex(j.at(key).as_string(),
                                   std::string("des validation ") + key);
    };
    DesValidation v;
    v.ok = j.at("ok").as_bool();
    v.error = j.at("error").as_string();
    v.seed = io::parse_u64(j.at("seed").as_string(), "des validation seed");
    v.replications = io::parse_u64(j.at("replications").as_string(),
                                   "des validation replications");
    v.delivered_gbps = dbl("delivered_gbps");
    v.mean_latency_us = dbl("mean_latency_us");
    v.p99_latency_us = dbl("p99_latency_us");
    v.drop_rate = dbl("drop_rate");
    v.throughput_disagreement = dbl("throughput_disagreement");
    v.p99_disagreement = dbl("p99_disagreement");
    return v;
}

// --- ExploreJournal -----------------------------------------------------------

io::Json
ExploreJournal::to_json() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    io::Json evals{io::JsonArray{}};
    for (const auto& [key, e] : evals_) {
        io::Json entry = evaluation_to_json(e);
        entry.set("key", io::Json(key));
        evals.push_back(std::move(entry));
    }
    io::Json des{io::JsonArray{}};
    for (const auto& [key, v] : des_) {
        io::Json entry = des_validation_to_json(v);
        entry.set("key", io::Json(key));
        des.push_back(std::move(entry));
    }
    io::Json j;
    j.set("evals", std::move(evals));
    j.set("des", std::move(des));
    return j;
}

void
ExploreJournal::load_json(const io::Json& j)
{
    std::map<std::string, Evaluation> evals;
    std::map<std::string, DesValidation> des;
    for (const io::Json& entry : j.at("evals").as_array())
        evals.emplace(entry.at("key").as_string(),
                      evaluation_from_json(entry));
    for (const io::Json& entry : j.at("des").as_array())
        des.emplace(entry.at("key").as_string(),
                    des_validation_from_json(entry));
    std::lock_guard<std::mutex> lock(mutex_);
    evals_ = std::move(evals);
    des_ = std::move(des);
}

std::size_t
ExploreJournal::eval_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return evals_.size();
}

std::size_t
ExploreJournal::des_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return des_.size();
}

void
ExploreJournal::record_eval(const std::string& key, Evaluation done)
{
    std::lock_guard<std::mutex> lock(mutex_);
    evals_.insert_or_assign(key, std::move(done));
}

bool
ExploreJournal::lookup_eval(const std::string& key, Evaluation& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = evals_.find(key);
    if (it == evals_.end())
        return false;
    out = it->second;
    return true;
}

void
ExploreJournal::record_des(const std::string& key, DesValidation done)
{
    std::lock_guard<std::mutex> lock(mutex_);
    des_.insert_or_assign(key, std::move(done));
}

bool
ExploreJournal::lookup_des(const std::string& key, DesValidation& out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = des_.find(key);
    if (it == des_.end())
        return false;
    out = it->second;
    return true;
}

EvalLookup
ExploreJournal::eval_lookup_fn() const
{
    return [this](const std::string& key, Evaluation& out) {
        return lookup_eval(key, out);
    };
}

EvalHook
ExploreJournal::eval_record_fn(std::function<void()> after)
{
    return [this, after = std::move(after)](const std::string& key,
                                            const Evaluation& done) {
        record_eval(key, done);
        if (after)
            after();
    };
}

DesLookup
ExploreJournal::des_lookup_fn() const
{
    return [this](const std::string& key, DesValidation& out) {
        return lookup_des(key, out);
    };
}

DesHook
ExploreJournal::des_record_fn(std::function<void()> after)
{
    return [this, after = std::move(after)](const std::string& key,
                                            const DesValidation& done) {
        record_des(key, done);
        if (after)
            after();
    };
}

// --- supervise_exploration ----------------------------------------------------

SupervisedExploration
supervise_exploration(const DesignSpace& space,
                      const std::vector<ObjectiveSpec>& objectives,
                      const std::vector<Constraint>& constraints,
                      ExploreOptions opts, const ckpt::SupervisorOptions& sup,
                      obs::MetricsRegistry* metrics)
{
    validate_options(sup);
    if (opts.resume_eval || opts.on_eval || opts.resume_des || opts.on_des)
        throw std::invalid_argument(
            "supervise_exploration: opts.resume_eval/on_eval/resume_des/"
            "on_des are owned by the supervisor and must be unset");

    ckpt::CheckpointStore store(sup.dir, kExploreCheckpointKind,
                                {sup.retention});
    const io::Json fingerprint =
        campaign_fingerprint(space, objectives, constraints, opts);

    ExploreJournal journal;
    SupervisedExploration result;
    result.resume = resume_into(store, fingerprint, sup,
                                [&](const io::Json& j) {
                                    journal.load_json(j);
                                });
    result.resume.completed = journal.eval_count() + journal.des_count();

    Publisher publisher(store, sup, fingerprint,
                        [&journal] { return journal.to_json(); });
    opts.resume_eval = journal.eval_lookup_fn();
    opts.on_eval = journal.eval_record_fn([&publisher] { publisher.tick(); });
    opts.resume_des = journal.des_lookup_fn();
    opts.on_des = journal.des_record_fn([&publisher] { publisher.tick(); });

    result.report = explore(space, objectives, constraints, opts, metrics);
    publisher.flush();
    result.checkpoints = publisher.checkpoints();
    log_to(sup, "checkpoint: exploration finished; "
                    + std::to_string(result.checkpoints)
                    + " generation(s) published to '" + store.dir() + "'");
    return result;
}

} // namespace lognic::dse
