#include "lognic/dse/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace lognic::dse {

bool
all_finite(const std::vector<double>& objectives)
{
    for (double v : objectives)
        if (!std::isfinite(v))
            return false;
    return true;
}

bool
dominates(const std::vector<double>& a, const std::vector<double>& b,
          const std::vector<Sense>& senses)
{
    if (a.size() != senses.size() || b.size() != senses.size())
        throw std::invalid_argument(
            "dominates: objective vector size mismatch");
    bool strictly_better = false;
    for (std::size_t i = 0; i < senses.size(); ++i) {
        // Normalize to "larger is better" so one comparison serves both
        // senses.
        const double x = senses[i] == Sense::kMaximize ? a[i] : -a[i];
        const double y = senses[i] == Sense::kMaximize ? b[i] : -b[i];
        if (x < y)
            return false;
        if (x > y)
            strictly_better = true;
    }
    return strictly_better;
}

bool
dominates(const ScoredConfig& a, const ScoredConfig& b,
          const std::vector<Sense>& senses)
{
    if (!eligible(a) || !eligible(b))
        return false;
    return dominates(a.objectives, b.objectives, senses);
}

namespace {

/// Canonical candidate order: by id, ties broken by the exact key.
bool
canonical_less(const ScoredConfig& a, const ScoredConfig& b)
{
    if (a.id != b.id)
        return a.id < b.id;
    return a.key < b.key;
}

} // namespace

std::vector<std::size_t>
pareto_frontier(const std::vector<ScoredConfig>& all,
                const std::vector<Sense>& senses)
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (!eligible(all[i]))
            continue;
        bool dominated = false;
        for (std::size_t j = 0; j < all.size() && !dominated; ++j) {
            if (j == i || !eligible(all[j]))
                continue;
            dominated =
                dominates(all[j].objectives, all[i].objectives, senses);
        }
        if (!dominated)
            out.push_back(i);
    }
    std::sort(out.begin(), out.end(), [&](std::size_t a, std::size_t b) {
        return canonical_less(all[a], all[b]);
    });
    return out;
}

std::uint64_t
dominated_count(const ScoredConfig& who, const std::vector<ScoredConfig>& all,
                const std::vector<Sense>& senses)
{
    if (!eligible(who))
        return 0;
    std::uint64_t n = 0;
    for (const auto& other : all) {
        if (!eligible(other))
            continue;
        if (dominates(who.objectives, other.objectives, senses))
            ++n;
    }
    return n;
}

DominanceSummary
dominance_summary(const std::vector<ScoredConfig>& all,
                  const std::vector<Sense>& senses)
{
    DominanceSummary out;
    out.dominated.assign(all.size(), 0);
    std::vector<char> is_dominated(all.size(), 0);
    for (std::size_t i = 0; i < all.size(); ++i) {
        if (!eligible(all[i]))
            continue;
        for (std::size_t j = i + 1; j < all.size(); ++j) {
            if (!eligible(all[j]))
                continue;
            // Strict dominance holds in at most one direction per pair.
            if (dominates(all[i].objectives, all[j].objectives, senses)) {
                ++out.dominated[i];
                is_dominated[j] = 1;
            } else if (dominates(all[j].objectives, all[i].objectives,
                                 senses)) {
                ++out.dominated[j];
                is_dominated[i] = 1;
            }
        }
        if (!is_dominated[i])
            out.frontier.push_back(i);
    }
    std::sort(out.frontier.begin(), out.frontier.end(),
              [&](std::size_t a, std::size_t b) {
                  return canonical_less(all[a], all[b]);
              });
    return out;
}

std::vector<std::vector<std::size_t>>
non_dominated_sort(const std::vector<ScoredConfig>& all,
                   const std::vector<Sense>& senses)
{
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < all.size(); ++i)
        if (eligible(all[i]))
            members.push_back(i);

    // dominated_by[i]: how many members dominate i; domins[i]: who i
    // dominates.
    std::vector<std::size_t> dominated_by(all.size(), 0);
    std::vector<std::vector<std::size_t>> domins(all.size());
    for (std::size_t a : members)
        for (std::size_t b : members) {
            if (a == b)
                continue;
            if (dominates(all[a].objectives, all[b].objectives, senses)) {
                domins[a].push_back(b);
                ++dominated_by[b];
            }
        }

    std::vector<std::vector<std::size_t>> fronts;
    std::vector<std::size_t> current;
    for (std::size_t i : members)
        if (dominated_by[i] == 0)
            current.push_back(i);
    while (!current.empty()) {
        fronts.push_back(current);
        std::vector<std::size_t> next;
        for (std::size_t i : current)
            for (std::size_t j : domins[i])
                if (--dominated_by[j] == 0)
                    next.push_back(j);
        std::sort(next.begin(), next.end());
        current = std::move(next);
    }
    return fronts;
}

std::vector<double>
crowding_distance(const std::vector<std::size_t>& front,
                  const std::vector<ScoredConfig>& all,
                  const std::vector<Sense>& senses)
{
    const double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(front.size(), 0.0);
    if (front.size() <= 2) {
        std::fill(dist.begin(), dist.end(), kInf);
        return dist;
    }
    for (std::size_t m = 0; m < senses.size(); ++m) {
        // Positions into `front`, ordered by objective m (ties by index so
        // the sort — and therefore the distances — are deterministic).
        std::vector<std::size_t> order(front.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      const double x = all[front[a]].objectives[m];
                      const double y = all[front[b]].objectives[m];
                      if (x != y)
                          return x < y;
                      return front[a] < front[b];
                  });
        const double lo = all[front[order.front()]].objectives[m];
        const double hi = all[front[order.back()]].objectives[m];
        dist[order.front()] = kInf;
        dist[order.back()] = kInf;
        const double range = hi - lo;
        if (range <= 0.0)
            continue;
        for (std::size_t i = 1; i + 1 < order.size(); ++i) {
            const double below = all[front[order[i - 1]]].objectives[m];
            const double above = all[front[order[i + 1]]].objectives[m];
            dist[order[i]] += (above - below) / range;
        }
    }
    return dist;
}

} // namespace lognic::dse
