#include "lognic/dse/materialize.hpp"

namespace lognic::dse {

Materializer::Materializer(const DesignSpace& space)
    : space_(space), cached_(space.base())
{
}

void
Materializer::build_full(const Config& c)
{
    cached_ = space_.materialize(c);
    scratch_.invalidate();
    ++hw_epoch_;
    ++full_builds_;
    current_ = c;
}

const io::Scenario&
Materializer::scenario(const Config& c)
{
    space_.validate(c);
    if (!current_) {
        build_full(c);
        return cached_;
    }
    if (c == *current_)
        return cached_;

    // A delta in any rebuild or non-patchable knob forfeits the cache.
    for (std::size_t k = 0; k < c.size(); ++k) {
        if (c[k] == (*current_)[k])
            continue;
        const Knob& knob = space_.knob(k);
        if (knob.rebuilds_scenario || knob.patch == PatchScope::kNone) {
            build_full(c);
            return cached_;
        }
    }

    try {
        for (std::size_t k = 0; k < c.size(); ++k) {
            if (c[k] == (*current_)[k])
                continue;
            const Knob& knob = space_.knob(k);
            knob.apply(cached_, knob.values[c[k]]);
            ++patched_knobs_;
            switch (knob.patch) {
              case PatchScope::kVertexParams: {
                const auto id = cached_.graph.find_vertex(knob.patch_vertex);
                if (id)
                    scratch_.invalidate_vertex(*id);
                else
                    scratch_.invalidate_analyses();
                break;
              }
              case PatchScope::kTraffic:
                scratch_.invalidate_analyses();
                break;
              case PatchScope::kCatalog:
                scratch_.invalidate_analyses();
                ++hw_epoch_;
                break;
              case PatchScope::kNone:
                break; // unreachable: handled above
            }
        }
    } catch (...) {
        // A throwing apply() leaves cached_ partially patched; drop the
        // cache so the next call rebuilds from scratch instead of
        // patching deltas against inconsistent state.
        current_.reset();
        scratch_.invalidate();
        ++hw_epoch_;
        throw;
    }
    current_ = c;
    return cached_;
}

} // namespace lognic::dse
